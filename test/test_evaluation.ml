open Rtec

let conf tp fp fn = { Evaluation.Metrics.tp; fp; fn }
let float_eq = Alcotest.float 1e-9

let test_metrics_arithmetic () =
  Alcotest.check float_eq "precision" 0.8 (Evaluation.Metrics.precision (conf 8 2 5));
  Alcotest.check float_eq "recall" (8. /. 13.) (Evaluation.Metrics.recall (conf 8 2 5));
  Alcotest.check float_eq "f1" (16. /. 23.) (Evaluation.Metrics.f1 (conf 8 2 5));
  Alcotest.check float_eq "empty agreement is perfect" 1. (Evaluation.Metrics.f1 (conf 0 0 0));
  Alcotest.check float_eq "all false positives" 0. (Evaluation.Metrics.f1 (conf 0 5 0));
  Alcotest.check float_eq "all false negatives" 0. (Evaluation.Metrics.f1 (conf 0 0 5));
  let sum = Evaluation.Metrics.add (conf 1 2 3) (conf 4 5 6) in
  Alcotest.(check int) "add tp" 5 sum.tp;
  Alcotest.(check int) "add fp" 7 sum.fp;
  Alcotest.(check int) "add fn" 9 sum.fn

let mk_result entries =
  List.map
    (fun (f, spans) -> ((Parser.parse_term f, Term.Atom "true"), Interval.of_list spans))
    entries

let test_compare_activity () =
  let predicted = mk_result [ ("act(v1)", [ (0, 10) ]); ("act(v2)", [ (5, 8) ]) ] in
  let reference = mk_result [ ("act(v1)", [ (5, 15) ]); ("act(v3)", [ (0, 4) ]) ] in
  let c =
    Evaluation.Metrics.compare_activity ~predicted ~reference ~indicator:("act", 1)
  in
  (* v1: tp 5 (5..10), fp 5 (0..5), fn 5 (10..15); v2: fp 3; v3: fn 4. *)
  Alcotest.(check int) "tp" 5 c.tp;
  Alcotest.(check int) "fp" 8 c.fp;
  Alcotest.(check int) "fn" 9 c.fn

let test_compare_identical () =
  let r = mk_result [ ("act(v1)", [ (0, 10) ]) ] in
  let c = Evaluation.Metrics.compare_activity ~predicted:r ~reference:r ~indicator:("act", 1) in
  Alcotest.check float_eq "identical results give f1 1" 1. (Evaluation.Metrics.f1 c)

let test_reported_activities () =
  let reported = Evaluation.Detection.reported in
  Alcotest.(check int) "eight activities" 8 (List.length reported);
  let tug = List.find (fun (a : Evaluation.Detection.activity) -> a.code = "tu") reported in
  Alcotest.(check (pair string int)) "tugging is binary" ("tugging", 2) tug.indicator;
  let h = List.find (fun (a : Evaluation.Detection.activity) -> a.code = "h") reported in
  Alcotest.(check (pair string int)) "h indicator" ("highSpeedNearCoast", 1) h.indicator

(* --- end-to-end figure pipeline (the paper's experiments in miniature) --- *)

let generations = lazy (Evaluation.Experiments.generate_all ())

(* The parallel similarity sweep must reproduce the sequential table
   exactly — same activities, same order, same floats — with telemetry
   both off and on (worker counters merge through per-domain
   accumulators). *)
let test_parallel_similarity_table () =
  let g = List.hd (Lazy.force generations) in
  let seq = Evaluation.Experiments.similarity_table g.session in
  let par = Evaluation.Experiments.similarity_table ~jobs:2 g.session in
  Alcotest.(check (list (pair string (float 0.)))) "jobs 2 = sequential" seq par;
  let with_metrics =
    Fun.protect
      ~finally:(fun () -> Telemetry.Metrics.disable ())
      (fun () ->
        Telemetry.Metrics.enable ();
        Evaluation.Experiments.similarity_table ~jobs:3 g.session)
  in
  Alcotest.(check (list (pair string (float 0.))))
    "jobs 3 with telemetry = sequential" seq with_metrics

let test_figure_2a_shape () =
  let best = Evaluation.Experiments.best_per_model (Lazy.force generations) in
  Alcotest.(check int) "six models" 6 (List.length best);
  let avg label =
    (List.find
       (fun (g : Evaluation.Experiments.generation) ->
         g.session.Adg.Session.model = label)
       best)
      .average
  in
  (* The ordering the paper reports: o1 best, then GPT-4o, then Llama-3,
     with GPT-4, Mistral and Gemma-2 clearly behind. *)
  Alcotest.(check bool) "o1 is best overall" true
    (List.for_all (fun m -> avg "o1" >= avg m) Adg.Profiles.models);
  Alcotest.(check bool) "GPT-4o above Llama-3" true (avg "GPT-4o" > avg "Llama-3");
  Alcotest.(check bool) "Llama-3 above GPT-4" true (avg "Llama-3" > avg "GPT-4");
  Alcotest.(check bool) "weak models below 0.7" true
    (avg "GPT-4" < 0.7 && avg "Mistral" < 0.7 && avg "Gemma-2" < 0.7);
  (* Gemma-2's trawling, expressed with the wrong fluent kind, scores 0. *)
  let gemma =
    List.find
      (fun (g : Evaluation.Experiments.generation) -> g.session.Adg.Session.model = "Gemma-2")
      best
  in
  Alcotest.check float_eq "Gemma-2 trawling similarity is 0" 0.
    (List.assoc "trawling" gemma.per_activity)

let test_figure_2b_small_increase () =
  let best = Evaluation.Experiments.best_per_model (Lazy.force generations) in
  let corrected = Evaluation.Experiments.correct_top best in
  Alcotest.(check int) "three corrected descriptions" 3 (List.length corrected);
  List.iter
    (fun (c : Evaluation.Experiments.corrected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: correction increases similarity (%.3f -> %.3f)"
           c.corrected_label c.generation.average c.corrected_average)
        true
        (c.corrected_average >= c.generation.average);
      Alcotest.(check bool)
        (Printf.sprintf "%s: increase is small (< 0.2)" c.corrected_label)
        true
        (c.corrected_average -. c.generation.average < 0.2))
    corrected;
  let labels =
    List.map
      (fun (c : Evaluation.Experiments.corrected) -> c.generation.session.Adg.Session.model)
      corrected
  in
  Alcotest.(check bool) "top three are o1, GPT-4o and Llama-3" true
    (List.mem "o1" labels && List.mem "GPT-4o" labels && List.mem "Llama-3" labels)

let test_figure_2c_shape () =
  let best = Evaluation.Experiments.best_per_model (Lazy.force generations) in
  let corrected = Evaluation.Experiments.correct_top best in
  let dataset =
    Maritime.Dataset.generate ~config:{ Maritime.Dataset.seed = 7; replicas = 1; nominal = 1 } ()
  in
  match Evaluation.Experiments.predictive_accuracy ~dataset corrected with
  | Error e -> Alcotest.failf "figure 2c failed: %s" e
  | Ok rows ->
    let f1 model code =
      let row =
        List.find
          (fun (r : Evaluation.Experiments.accuracy_row) ->
            String.length r.label >= String.length model
            && String.sub r.label 0 (String.length model) = model)
          rows
      in
      List.assoc code row.per_activity_f1
    in
    (* o1 leads everywhere; GPT-4o and Llama-3 confuse union with
       intersection on loitering, which is then never satisfied. *)
    List.iter
      (fun code ->
        Alcotest.(check bool) ("o1 is perfect on " ^ code) true (f1 "o1" code > 0.99))
      Evaluation.Experiments.activity_codes;
    Alcotest.check float_eq "GPT-4o fails loitering" 0. (f1 "GPT-4o" "l");
    Alcotest.check float_eq "Llama-3 fails loitering" 0. (f1 "Llama-3" "l");
    Alcotest.(check bool) "GPT-4o high on simple activities" true (f1 "GPT-4o" "h" > 0.9);
    Alcotest.(check bool) "Llama-3 high on trawling" true (f1 "Llama-3" "tr" > 0.9)

let test_zero_shot_ablation () =
  let zero_shot = Evaluation.Experiments.zero_shot_ablation () in
  let best = Evaluation.Experiments.best_per_model (Lazy.force generations) in
  Alcotest.(check int) "six models" 6 (List.length zero_shot);
  (* Zero-shot is markedly worse than the pipeline for every model: the
     paper's reason for excluding it. *)
  List.iter
    (fun (g : Evaluation.Experiments.generation) ->
      let model = g.session.Adg.Session.model in
      let zs = List.assoc model zero_shot in
      Alcotest.(check bool)
        (Printf.sprintf "%s: zero-shot %.3f well below pipeline %.3f" model zs g.average)
        true
        (zs < g.average -. 0.15))
    best

let test_assignment_ablation () =
  let best = Evaluation.Experiments.best_per_model (Lazy.force generations) in
  let rows = Evaluation.Experiments.assignment_ablation best in
  List.iter
    (fun (label, hungarian, greedy) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: greedy (%.3f) never beats Kuhn-Munkres (%.3f)" label greedy
           hungarian)
        true
        (greedy <= hungarian +. 1e-9))
    rows

let suite =
  [
    Alcotest.test_case "confusion arithmetic" `Quick test_metrics_arithmetic;
    Alcotest.test_case "zero-shot ablation is markedly worse" `Quick
      test_zero_shot_ablation;
    Alcotest.test_case "greedy mapping never beats Kuhn-Munkres" `Quick
      test_assignment_ablation;
    Alcotest.test_case "activity comparison over instances" `Quick test_compare_activity;
    Alcotest.test_case "identical results agree perfectly" `Quick test_compare_identical;
    Alcotest.test_case "reported activities" `Quick test_reported_activities;
    Alcotest.test_case "figure 2a reproduces the paper's shape" `Quick test_figure_2a_shape;
    Alcotest.test_case "parallel similarity sweep is bit-identical" `Quick
      test_parallel_similarity_table;
    Alcotest.test_case "figure 2b: corrections are minor" `Quick
      test_figure_2b_small_increase;
    Alcotest.test_case "figure 2c reproduces the paper's shape" `Quick test_figure_2c_shape;
  ]
