open Rtec

let check_spans msg expected actual =
  Alcotest.(check (list (pair int int))) msg expected (Interval.to_list actual)

let test_make_rejects_empty () =
  Alcotest.check_raises "empty span" (Invalid_argument "Interval.make: empty span")
    (fun () -> ignore (Interval.make 5 5))

let test_of_list_merges () =
  check_spans "overlap merges" [ (1, 8) ] (Interval.of_list [ (1, 5); (3, 8) ]);
  check_spans "adjacent merges" [ (1, 9) ] (Interval.of_list [ (1, 5); (5, 9) ]);
  check_spans "disjoint kept" [ (1, 3); (5, 7) ] (Interval.of_list [ (5, 7); (1, 3) ]);
  check_spans "empty pairs dropped" [ (1, 3) ] (Interval.of_list [ (1, 3); (4, 4); (6, 5) ])

let test_mem () =
  let i = Interval.of_list [ (2, 5); (9, 12) ] in
  Alcotest.(check bool) "inside" true (Interval.mem 3 i);
  Alcotest.(check bool) "start is inside" true (Interval.mem 2 i);
  Alcotest.(check bool) "stop is outside" false (Interval.mem 5 i);
  Alcotest.(check bool) "gap" false (Interval.mem 7 i)

let test_duration () =
  Alcotest.(check int) "sums spans" 6 (Interval.duration (Interval.of_list [ (2, 5); (9, 12) ]));
  Alcotest.(check int) "open is infinite" Interval.infinity
    (Interval.duration [ Interval.make 3 Interval.infinity ])

let test_clamp () =
  let i = Interval.of_list [ (2, 5); (9, 12) ] in
  check_spans "clamps both sides" [ (3, 5); (9, 10) ] (Interval.clamp 3 10 i);
  check_spans "clamp can empty" [] (Interval.clamp 5 9 i);
  check_spans "clamps open interval" [ (4, 10) ]
    (Interval.clamp 0 10 [ Interval.make 4 Interval.infinity ])

let test_union () =
  check_spans "union merges" [ (1, 7); (9, 12) ]
    (Interval.union (Interval.of_list [ (1, 4); (9, 12) ]) (Interval.of_list [ (3, 7) ]))

let test_inter () =
  check_spans "intersection" [ (3, 4); (9, 10) ]
    (Interval.inter
       (Interval.of_list [ (1, 4); (9, 12) ])
       (Interval.of_list [ (3, 7); (8, 10) ]));
  check_spans "disjoint" []
    (Interval.inter (Interval.of_list [ (1, 3) ]) (Interval.of_list [ (4, 6) ]))

let test_diff () =
  check_spans "subtracts" [ (1, 3); (6, 8) ]
    (Interval.diff (Interval.of_list [ (1, 8) ]) (Interval.of_list [ (3, 6) ]));
  check_spans "splitting" [ (1, 2); (4, 5) ]
    (Interval.diff (Interval.of_list [ (1, 5) ]) (Interval.of_list [ (2, 4) ]))

let test_union_all () =
  check_spans "three lists" [ (1, 10) ]
    (Interval.union_all
       [ Interval.of_list [ (1, 4) ]; Interval.of_list [ (3, 7) ]; Interval.of_list [ (7, 10) ] ])

let test_intersect_all () =
  check_spans "three lists" [ (3, 4) ]
    (Interval.intersect_all
       [ Interval.of_list [ (1, 4) ]; Interval.of_list [ (3, 7) ]; Interval.of_list [ (2, 5) ] ]);
  check_spans "no lists is empty" [] (Interval.intersect_all [])

let test_relative_complement_all () =
  check_spans "removes union of operands" [ (1, 2); (5, 6) ]
    (Interval.relative_complement_all
       (Interval.of_list [ (1, 6) ])
       [ Interval.of_list [ (2, 3) ]; Interval.of_list [ (3, 5) ] ])

let test_from_points_basic () =
  (* Initiation at 3 means the fluent holds from 4; termination at 7 means
     it last holds at 7. *)
  check_spans "init/term pairing" [ (4, 8) ]
    (Interval.from_points ~starts:[ 3 ] ~stops:[ 7 ]);
  check_spans "intermediate initiations ignored" [ (4, 8) ]
    (Interval.from_points ~starts:[ 3; 5; 6 ] ~stops:[ 7 ]);
  check_spans "unmatched initiation stays open" [ (4, 8); (10, Interval.infinity) ]
    (Interval.from_points ~starts:[ 3; 9 ] ~stops:[ 7 ]);
  check_spans "termination before initiation is ignored" [ (4, Interval.infinity) ]
    (Interval.from_points ~starts:[ 3 ] ~stops:[ 1 ])

let test_from_points_same_point () =
  (* Initiation wins a tie: initiatedAt(F, T) makes the fluent hold at
     T + 1 even if terminatedAt(F, T) also fires (canonical Event Calculus
     inertia; RTEC pairs an initiation with the first termination strictly
     after it). *)
  check_spans "simultaneous initiation and termination starts a period"
    [ (4, Interval.infinity) ]
    (Interval.from_points ~starts:[ 3 ] ~stops:[ 3 ]);
  (* Re-initiation exactly at a termination point keeps the fluent alive
     continuously: (1,3] and (3,...] amalgamate. *)
  check_spans "re-initiation at termination point merges" [ (2, Interval.infinity) ]
    (Interval.from_points ~starts:[ 1; 3 ] ~stops:[ 3 ]);
  (* A later termination then closes the re-initiated period. *)
  check_spans "re-initiation closed by a later termination" [ (2, 6) ]
    (Interval.from_points ~starts:[ 1; 3 ] ~stops:[ 3; 5 ])

(* --- reference implementations ---

   The pre-optimisation O(n log n) / quadratic versions of [union], [diff],
   [clamp] and [from_points], kept verbatim as oracles: the linear-merge
   rewrites must agree with them on arbitrary inputs. *)

let ref_union a b = Interval.of_list (Interval.to_list a @ Interval.to_list b)

let ref_diff a b =
  let subtract_span spans (ys, ye) =
    List.concat_map
      (fun (xs, xe) ->
        if ye <= xs || xe <= ys then [ (xs, xe) ]
        else
          let left = if ys > xs then [ (xs, ys) ] else [] in
          let right = if ye < xe then [ (ye, xe) ] else [] in
          left @ right)
      spans
  in
  Interval.of_list (List.fold_left subtract_span (Interval.to_list a) (Interval.to_list b))

let ref_clamp lo hi i =
  Interval.of_list
    (List.filter_map
       (fun (s, e) ->
         let s = max lo s and e = min hi e in
         if e > s then Some (s, e) else None)
       (Interval.to_list i))

let ref_from_points ~starts ~stops =
  let starts = List.sort_uniq Int.compare starts in
  let stops = List.sort_uniq Int.compare stops in
  let rec go acc starts stops =
    match starts with
    | [] -> List.rev acc
    | ts :: starts' -> (
      match List.find_opt (fun te -> te > ts) stops with
      | None -> List.rev ((ts + 1, Interval.infinity) :: acc)
      | Some te ->
        let acc = (ts + 1, te + 1) :: acc in
        let starts' = List.filter (fun t -> t >= te) starts' in
        let stops' = List.filter (fun t -> t > te) stops in
        go acc starts' stops')
  in
  Interval.of_list (go [] starts stops)

(* --- qcheck properties --- *)

let spans_gen =
  QCheck.Gen.(
    list_size (int_bound 8) (pair (int_bound 100) (int_bound 100))
    >|= Interval.of_list)

let arbitrary_spans = QCheck.make ~print:Interval.to_string spans_gen

let well_formed i =
  let rec ok = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      a.Interval.stop > a.Interval.start && a.Interval.stop < b.Interval.start && ok rest
  in
  (match i with [ x ] -> x.Interval.stop > x.Interval.start | _ -> true) && ok i

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let properties =
  [
    prop "union is well-formed" 300
      (QCheck.pair arbitrary_spans arbitrary_spans)
      (fun (a, b) -> well_formed (Interval.union a b));
    prop "inter is well-formed" 300
      (QCheck.pair arbitrary_spans arbitrary_spans)
      (fun (a, b) -> well_formed (Interval.inter a b));
    prop "diff is well-formed" 300
      (QCheck.pair arbitrary_spans arbitrary_spans)
      (fun (a, b) -> well_formed (Interval.diff a b));
    prop "union commutes" 300
      (QCheck.pair arbitrary_spans arbitrary_spans)
      (fun (a, b) -> Interval.equal (Interval.union a b) (Interval.union b a));
    prop "inter commutes" 300
      (QCheck.pair arbitrary_spans arbitrary_spans)
      (fun (a, b) -> Interval.equal (Interval.inter a b) (Interval.inter b a));
    prop "union is idempotent" 300 arbitrary_spans (fun a ->
        Interval.equal (Interval.union a a) a);
    prop "inter with itself is identity" 300 arbitrary_spans (fun a ->
        Interval.equal (Interval.inter a a) a);
    prop "mem distributes over union" 300
      (QCheck.triple QCheck.small_nat arbitrary_spans arbitrary_spans)
      (fun (t, a, b) ->
        Interval.mem t (Interval.union a b) = (Interval.mem t a || Interval.mem t b));
    prop "mem distributes over inter" 300
      (QCheck.triple QCheck.small_nat arbitrary_spans arbitrary_spans)
      (fun (t, a, b) ->
        Interval.mem t (Interval.inter a b) = (Interval.mem t a && Interval.mem t b));
    prop "diff removes second operand" 300
      (QCheck.triple QCheck.small_nat arbitrary_spans arbitrary_spans)
      (fun (t, a, b) ->
        Interval.mem t (Interval.diff a b) = (Interval.mem t a && not (Interval.mem t b)));
    prop "duration of union bounded by sum" 300
      (QCheck.pair arbitrary_spans arbitrary_spans)
      (fun (a, b) ->
        Interval.duration (Interval.union a b) <= Interval.duration a + Interval.duration b);
    prop "relative complement is within base" 300
      (QCheck.triple arbitrary_spans arbitrary_spans arbitrary_spans)
      (fun (base, l1, l2) ->
        let rc = Interval.relative_complement_all base [ l1; l2 ] in
        Interval.equal rc (Interval.inter rc base));
    prop "union agrees with the reference implementation" 500
      (QCheck.pair arbitrary_spans arbitrary_spans)
      (fun (a, b) -> Interval.equal (Interval.union a b) (ref_union a b));
    prop "diff agrees with the reference implementation" 500
      (QCheck.pair arbitrary_spans arbitrary_spans)
      (fun (a, b) -> Interval.equal (Interval.diff a b) (ref_diff a b));
    prop "clamp agrees with the reference implementation" 500
      (QCheck.triple (QCheck.pair QCheck.small_nat QCheck.small_nat) arbitrary_spans
         arbitrary_spans)
      (fun ((lo, hi), a, _) -> Interval.equal (Interval.clamp lo hi a) (ref_clamp lo hi a));
    prop "union with an open interval agrees with the reference" 300 arbitrary_spans
      (fun a ->
        let open_tail = [ Interval.make 50 Interval.infinity ] in
        Interval.equal (Interval.union a open_tail) (ref_union a open_tail));
    prop "from_points agrees with the reference implementation" 500
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_bound 12) (QCheck.int_bound 60))
         (QCheck.list_of_size (QCheck.Gen.int_bound 12) (QCheck.int_bound 60)))
      (fun (starts, stops) ->
        Interval.equal (Interval.from_points ~starts ~stops) (ref_from_points ~starts ~stops));
    prop "from_points is well-formed" 300
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_bound 12) (QCheck.int_bound 60))
         (QCheck.list_of_size (QCheck.Gen.int_bound 12) (QCheck.int_bound 60)))
      (fun (starts, stops) -> well_formed (Interval.from_points ~starts ~stops));
    (* The accumulator-passing merge must survive inputs far beyond any
       stack depth: a naive non-tail recursion overflows around 100k
       spans on the default stack. Spans arrive shuffled (worst case for
       the sort) with a mix of overlapping, adjacent and disjoint
       neighbours, and the result is checked against the count the
       stride structure dictates. *)
    prop "of_list is stack-safe and correct on 100k+ spans" 3
      (QCheck.int_range 100_000 150_000)
      (fun n ->
        let spans =
          List.init n (fun i ->
              (* stride 4, length 5 when i%3=0 (bridges to the next span,
                 which merges), else length 2 (disjoint). *)
              let s = i * 4 in
              (s, s + (if i mod 3 = 0 then 5 else 2)))
        in
        (* Shuffle deterministically: visit odd indices then even. *)
        let shuffled =
          List.filteri (fun i _ -> i mod 2 = 1) spans
          @ List.filteri (fun i _ -> i mod 2 = 0) spans
        in
        let merged = Interval.of_list shuffled in
        (* Every i%3=0 span [4i, 4i+5) absorbs its successor [4i+4, 4i+6),
           so each such pair collapses into one span. Pairs that merge:
           the i%3=0 indices that still have a successor, i.e. those in
           [0, n-2] — floor((n+1)/3) of them — and each removes one span
           from the count. *)
        let expected = n - ((n + 1) / 3) in
        well_formed merged
        && List.length (Interval.to_list merged) = expected
        && Interval.equal merged (Interval.of_list spans));
  ]

let suite =
  [
    Alcotest.test_case "make rejects empty spans" `Quick test_make_rejects_empty;
    Alcotest.test_case "of_list normalises" `Quick test_of_list_merges;
    Alcotest.test_case "mem half-open semantics" `Quick test_mem;
    Alcotest.test_case "duration" `Quick test_duration;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "inter" `Quick test_inter;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "union_all" `Quick test_union_all;
    Alcotest.test_case "intersect_all" `Quick test_intersect_all;
    Alcotest.test_case "relative_complement_all" `Quick test_relative_complement_all;
    Alcotest.test_case "from_points pairing" `Quick test_from_points_basic;
    Alcotest.test_case "from_points same-point cases" `Quick test_from_points_same_point;
  ]
  @ properties
