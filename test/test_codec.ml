(* The fast-path line codec (Io.Codec) against its specification: the
   general lexer/parser pipeline. The differential prepends a quoted-atom
   sentinel to the same source — outside the codec's subset, so the whole
   chunk takes the fallback path — and requires the two decodes to agree
   item for item (the sentinel itself reads back identically on both
   paths). Plus: printed streams round-trip through the codec, and the
   fast/fallback telemetry counters tell the two paths apart. *)

open Rtec

let norm_items items =
  List.map
    (function
      | Stream.Event e -> `E (e.Stream.time, Term.to_string e.term)
      | Stream.Fluent ((f, v), spans) ->
        `F (Term.to_string f, Term.to_string v, Interval.to_list spans))
    items

(* [Io.items_of_string] goes through a fresh codec: in-subset sources
   take the fast path. Prepending the quoted sentinel forces the whole
   chunk through the parser; dropping the sentinel's own item leaves the
   parser's reading of [src]. *)
let sentinel = "happensAt(codec_probe('sentinel'), 0).\n"

let decode_via_codec src = norm_items (Io.items_of_string src)

let decode_via_parser src =
  match norm_items (Io.items_of_string (sentinel ^ src)) with
  | `E (0, "codec_probe(sentinel)") :: rest -> rest
  | _ -> Alcotest.fail "fallback sentinel did not decode first"

(* --- generator for protocol chunks ---

   Mostly inside the codec's subset (unquoted atoms, integers, reals,
   nested compounds, lists, comments, elastic whitespace), with an
   occasional quoted atom so the differential also covers the case where
   the codec itself bails and both sides are the parser. *)

let gen_name =
  QCheck.Gen.oneofl [ "a"; "gap"; "stop_start"; "v12"; "trawling"; "x_y2"; "b7" ]

let gen_scalar =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> string_of_int n) (int_range (-500) 500);
        map2 (fun a b -> Printf.sprintf "%d.%d" a b) (int_range 0 99) (int_range 0 99);
        gen_name;
        return "'quoted atom'";
      ])

let rec gen_term_src depth =
  QCheck.Gen.(
    if depth = 0 then gen_scalar
    else
      frequency
        [
          (4, gen_scalar);
          ( 2,
            map2
              (fun name args -> name ^ "(" ^ String.concat ", " args ^ ")")
              gen_name
              (list_size (int_range 1 3) (gen_term_src (depth - 1))) );
          ( 1,
            map
              (fun elems -> "[" ^ String.concat ", " elems ^ "]")
              (list_size (int_range 0 3) (gen_term_src (depth - 1))) );
        ])

let gen_spans =
  QCheck.Gen.(
    let* raw = list_size (int_range 1 3) (pair (int_range 0 1000) (int_range 1 100)) in
    let _, spans =
      List.fold_left
        (fun (t, acc) (gap, len) ->
          let s = t + gap + 1 in
          (s + len, (s, s + len) :: acc))
        (0, []) raw
    in
    let spans = List.rev spans in
    map
      (fun open_ended ->
        let body =
          List.mapi
            (fun i (s, e) ->
              if open_ended && i = List.length spans - 1 then
                Printf.sprintf "[%d, inf]" s
              else Printf.sprintf "[%d, %d]" s e)
            spans
        in
        "[" ^ String.concat ", " body ^ "]")
      bool)

let gen_pad = QCheck.Gen.oneofl [ ""; " "; "  "; "\t" ]

let gen_line =
  QCheck.Gen.(
    oneof
      [
        (* happensAt(Term, T). *)
        map2
          (fun (term, t) (p1, p2) ->
            Printf.sprintf "happensAt(%s%s,%s%d)." p1 term p2 t)
          (pair (gen_term_src 2) (int_range 0 10_000))
          (pair gen_pad gen_pad);
        (* holdsFor(F = V, Spans). *)
        map2
          (fun ((f, v), spans) pad ->
            Printf.sprintf "holdsFor(%s%s= %s, %s)." f pad v spans)
          (pair (pair (gen_term_src 2) (gen_term_src 1)) gen_spans)
          gen_pad;
        (* comment / blank noise between facts *)
        return "% a comment line";
        return "";
      ])

let gen_chunk =
  QCheck.Gen.(
    map (fun lines -> String.concat "\n" lines) (list_size (int_range 1 12) gen_line))

let arbitrary_chunk = QCheck.make ~print:(fun s -> s) gen_chunk

let qtest ?(count = 300) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let prop_codec_matches_parser chunk =
  decode_via_codec chunk = decode_via_parser chunk

(* Printer round-trip: a stream printed by [Io.stream_to_string] decodes
   back — through the codec, since the printed form is inside its subset
   — to the same events and input fluents. Chunks with quoted atoms are
   skipped: the printer writes atoms bare, so an atom with a space in it
   does not survive printing (a pre-existing printer limitation, not a
   codec one). *)
let prop_printed_stream_round_trips chunk =
  if String.contains chunk '\'' then true
  else
    match Io.items_of_string chunk with
    | exception (Invalid_argument _ | Failure _) -> QCheck.assume_fail ()
    | items ->
      let s = Stream.of_items items in
      let s' = Io.stream_of_string (Io.stream_to_string s) in
      let norm_stream s =
        ( List.map
            (fun (e : Stream.event) -> (e.time, Term.to_string e.term))
            (Stream.events s),
          List.sort compare
            (List.map
               (fun ((f, v), spans) ->
                 (Term.to_string f, Term.to_string v, Interval.to_list spans))
               (Stream.input_fluents s)) )
      in
      norm_stream s = norm_stream s'

(* --- fixed cases the generator cannot be trusted to hit --- *)

let test_fast_and_fallback_counters () =
  let read name =
    match
      Telemetry.Metrics.find_counter (Telemetry.Metrics.snapshot ()) name
    with
    | Some n -> n
    | None -> 0
  in
  Telemetry.Metrics.enable ();
  Fun.protect ~finally:Telemetry.Metrics.disable (fun () ->
      let fast0 = read "io.codec.fast" and fb0 = read "io.codec.fallback" in
      ignore (Io.items_of_string "happensAt(gap(v1), 5).\nhappensAt(gap(v2), 6).\n");
      Alcotest.(check int) "two facts decoded fast" (fast0 + 2) (read "io.codec.fast");
      Alcotest.(check int) "no fallback" fb0 (read "io.codec.fallback");
      ignore (Io.items_of_string "happensAt(gap('v 1'), 5).\n");
      Alcotest.(check int) "quoted atom fell back" (fb0 + 1) (read "io.codec.fallback"))

let test_codec_subset_edges () =
  List.iter
    (fun src -> Alcotest.(check bool) src true (prop_codec_matches_parser src))
    [
      (* empty-argument list, nested lists, negative and real numbers *)
      "happensAt(f([], [1, [2, 3]]), 7).";
      "happensAt(speed(v1, -3), 0).";
      "happensAt(speed(v1, 12.5), 0).";
      "holdsFor(proximity(v1, v2) = true, [[10, 20], [30, inf]]).";
      (* 19-digit integer: beyond the codec's digit budget, fallback *)
      "happensAt(f(1234567890123456789), 1).";
      (* block comment: fallback territory *)
      "/* block */ happensAt(gap(v1), 5).";
      (* whitespace-heavy but in-subset *)
      "  happensAt( gap( v1 ) ,  5 ) .";
    ]

let test_bad_lines_error_like_parser () =
  (* Lines the parser rejects must keep erroring through the codec entry
     points — the fallback forwards the parser's exception unchanged. *)
  List.iter
    (fun src ->
      Alcotest.(check bool) src true
        (match Io.items_of_string src with
        | _ -> false
        | exception (Invalid_argument _ | Failure _ | Parser.Error _ | Lexer.Error _) ->
          true))
    [
      "holdsWithin(gap(v1), 5).";
      (* not a protocol fact *)
      "happensAt(gap(v1), 5)";
      (* missing dot *)
      "happensAt(gap(v1), ).";
    ]

let suite =
  [
    qtest "codec == parser on generated chunks" arbitrary_chunk prop_codec_matches_parser;
    qtest ~count:150 "printed stream round-trips through the codec" arbitrary_chunk
      prop_printed_stream_round_trips;
    Alcotest.test_case "fast/fallback counters split the two paths" `Quick
      test_fast_and_fallback_counters;
    Alcotest.test_case "subset edge cases match the parser" `Quick test_codec_subset_edges;
    Alcotest.test_case "malformed lines error like the parser" `Quick
      test_bad_lines_error_like_parser;
  ]
