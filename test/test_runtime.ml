(* The sharded recognition runtime: property tests for the entity
   partition (disjoint, covering, component-preserving, append
   round-trip) and the differential gate — sharded recognition is
   bit-identical to sequential on the maritime scenario and the fleet
   synthetic day, with telemetry enabled and disabled. *)

open Rtec

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* --- a generator of entity-structured streams ---

   Events over a handful of entities [v0..v7]: solo events [move(v)],
   attributed events [visit(v, a)] sharing attribute constants across
   entities (areas must never glue components together), and pairwise
   input fluents [near(v, v') = true] (which must). *)

type item =
  | Solo of int * int  (* time, entity *)
  | Visit of int * int * int  (* time, entity, area *)
  | Near of int * int  (* entity, entity: an input fluent over [0, 50] *)

let item_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun t v -> Solo (t, v)) (int_bound 100) (int_bound 7);
        map3 (fun t v a -> Visit (t, v, a)) (int_bound 100) (int_bound 7) (int_bound 2);
        map2 (fun v v' -> Near (v, v')) (int_bound 7) (int_bound 7);
      ])

let stream_of_items items =
  let entity v = Term.Atom (Printf.sprintf "v%d" v) in
  let area a = Term.Atom (Printf.sprintf "a%d" a) in
  let events =
    List.filter_map
      (function
        | Solo (t, v) -> Some { Stream.time = t; term = Term.app "move" [ entity v ] }
        | Visit (t, v, a) ->
          Some { Stream.time = t; term = Term.app "visit" [ entity v; area a ] }
        | Near _ -> None)
      items
  in
  let input_fluents =
    List.filter_map
      (function
        | Near (v, v') ->
          Some
            ( (Term.app "near" [ entity v; entity v' ], Term.Atom "true"),
              Interval.of_list [ (0, 50) ] )
        | _ -> None)
      items
  in
  Stream.make ~input_fluents events

let items_case =
  QCheck.make
    ~print:(fun items ->
      String.concat "; "
        (List.map
           (function
             | Solo (t, v) -> Printf.sprintf "move(v%d)@%d" v t
             | Visit (t, v, a) -> Printf.sprintf "visit(v%d,a%d)@%d" v a t
             | Near (v, v') -> Printf.sprintf "near(v%d,v%d)" v v')
           items))
    QCheck.Gen.(list_size (int_range 1 25) item_gen)

let shards_gen = QCheck.Gen.int_range 1 5

let case =
  QCheck.make
    ~print:(fun (items, k) -> Printf.sprintf "shards=%d items=[...%d]" k (List.length items))
    QCheck.Gen.(pair (QCheck.gen items_case) shards_gen)

(* A canonical, order-insensitive view of a stream's contents. *)
let event_multiset s =
  List.sort compare
    (List.map (fun (e : Stream.event) -> (e.time, Term.to_string e.term)) (Stream.events s))

let fluent_set s =
  List.sort compare
    (List.map
       (fun ((f, v), spans) ->
         (Term.to_string f ^ "=" ^ Term.to_string v, Interval.to_list spans))
       (Stream.input_fluents s))

(* Independent component oracle: items are connected when they share an
   entity key (a term leading some event or input fluent), computed by
   fixpoint over entity sets rather than union-find. *)
let oracle_components s =
  let leads =
    List.filter_map
      (fun (e : Stream.event) ->
        match e.term with Term.Compound (_, a :: _) -> Some a | _ -> None)
      (Stream.events s)
    @ List.filter_map
        (fun ((f, _), _) -> match f with Term.Compound (_, a :: _) -> Some a | _ -> None)
        (Stream.input_fluents s)
  in
  let is_key t = List.exists (Term.equal t) leads in
  let keys_of term =
    let rec walk acc t =
      let acc = if is_key t then t :: acc else acc in
      match t with Term.Compound (_, args) -> List.fold_left walk acc args | _ -> acc
    in
    walk [] term
  in
  let items =
    List.map (fun (e : Stream.event) -> keys_of e.term) (Stream.events s)
    @ List.map
        (fun ((f, v), _) -> keys_of f @ keys_of v)
        (Stream.input_fluents s)
  in
  (* Merge overlapping key sets to a fixpoint. *)
  let rec merge groups =
    let changed = ref false in
    let groups =
      List.fold_left
        (fun acc g ->
          let overlapping, rest =
            List.partition (fun g' -> List.exists (fun k -> List.exists (Term.equal k) g') g) acc
          in
          match overlapping with
          | [] -> g :: rest
          | _ ->
            changed := true;
            List.concat (g :: overlapping) :: rest)
        [] groups
    in
    if !changed then merge groups else groups
  in
  merge (List.filter (fun g -> g <> []) items)

let prop_partition_disjoint_cover =
  prop "partition shards are disjoint and cover the stream" 200 case (fun (items, k) ->
      let s = stream_of_items items in
      let shards = Stream.partition ~shards:k s in
      List.length shards <= max 1 k
      && event_multiset s = List.sort compare (List.concat_map event_multiset shards)
      && fluent_set s = List.sort compare (List.concat_map fluent_set shards))

let prop_partition_never_splits =
  prop "partition never splits an entity-connected component" 200 case (fun (items, k) ->
      let s = stream_of_items items in
      let shards = Stream.partition ~shards:k s in
      (* Every oracle component's keys must live in exactly one shard:
         a key "lives" in the shard whose events or fluents mention it. *)
      let shard_of_key key =
        List.concat
          (List.mapi
             (fun i shard ->
               let mentions term =
                 let rec walk t =
                   Term.equal t key
                   || match t with Term.Compound (_, args) -> List.exists walk args | _ -> false
                 in
                 walk term
               in
               if
                 List.exists (fun (e : Stream.event) -> mentions e.term) (Stream.events shard)
                 || List.exists
                      (fun ((f, v), _) -> mentions f || mentions v)
                      (Stream.input_fluents shard)
               then [ i ]
               else [])
             shards)
      in
      List.for_all
        (fun component ->
          match List.sort_uniq compare (List.concat_map shard_of_key component) with
          | [] | [ _ ] -> true
          | _ -> false)
        (oracle_components s))

let prop_partition_roundtrip =
  prop "folding shards back with append round-trips the stream" 200 case (fun (items, k) ->
      let s = stream_of_items items in
      match Stream.partition ~shards:k s with
      | [] -> false
      | first :: rest ->
        let folded = List.fold_left Stream.append first rest in
        event_multiset folded = event_multiset s
        && fluent_set folded = fluent_set s
        && Stream.extent folded = Stream.extent s
        && Stream.size folded = Stream.size s)

let test_partition_unsplittable () =
  (* A zero-argument event cannot be attributed to an entity: the stream
     must come back whole. *)
  let s =
    Stream.make
      [
        { Stream.time = 1; term = Term.app "move" [ Term.Atom "v1" ] };
        { Stream.time = 2; term = Term.Atom "tick" };
        { Stream.time = 3; term = Term.app "move" [ Term.Atom "v2" ] };
      ]
  in
  Alcotest.(check int) "single shard" 1 (List.length (Stream.partition ~shards:4 s));
  (* Pairwise fluents keep both entities together. *)
  let pairwise =
    Stream.make
      ~input_fluents:
        [
          ( (Term.app "near" [ Term.Atom "v1"; Term.Atom "v2" ], Term.Atom "true"),
            Interval.of_list [ (0, 9) ] );
        ]
      [
        { Stream.time = 1; term = Term.app "move" [ Term.Atom "v1" ] };
        { Stream.time = 2; term = Term.app "move" [ Term.Atom "v2" ] };
        { Stream.time = 3; term = Term.app "move" [ Term.Atom "v3" ] };
      ]
  in
  match Stream.partition ~shards:4 pairwise with
  | [ a; b ] ->
    let sizes = List.sort compare [ Stream.size a; Stream.size b ] in
    Alcotest.(check (list int)) "v1-v2 together, v3 alone" [ 1; 2 ] sizes
  | shards -> Alcotest.failf "expected 2 shards, got %d" (List.length shards)

(* --- differential: sharded == sequential, telemetry on and off --- *)

let exact result =
  List.map
    (fun ((f, v), spans) -> (Term.to_string f, Term.to_string v, Interval.to_list spans))
    result

let recognise ?shards ~jobs ~event_description ~knowledge ~stream () =
  let config = Runtime.config ~window:3600 ~step:1800 ~jobs ?shards () in
  match Runtime.run ~config ~event_description ~knowledge ~stream () with
  | Ok (result, stats) -> (exact result, stats)
  | Error e -> Alcotest.failf "recognition (jobs=%d) failed: %s" jobs e

let scoped_telemetry f =
  Telemetry.Trace.reset ();
  Telemetry.Trace.enable ();
  Telemetry.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Trace.disable ();
      Telemetry.Metrics.disable ();
      Telemetry.Trace.reset ();
      Telemetry.Metrics.reset ())
    f

(* [jobs] is clamped to the host's cores, so the partition is forced
   with an explicit [shards]: the sharded evaluation and the canonical
   merge must stay exercised (and bit-identical) on any host, however
   many domains actually run. *)
let check_differential ~name ~event_description ~knowledge ~stream =
  let sequential, _ = recognise ~jobs:1 ~event_description ~knowledge ~stream () in
  Alcotest.(check bool) (name ^ ": sequential recognises something") true (sequential <> []);
  List.iter
    (fun jobs ->
      let sharded, stats =
        recognise ~jobs ~shards:jobs ~event_description ~knowledge ~stream ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d actually sharded" name jobs)
        true (stats.Runtime.shards > 1);
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d bit-identical to sequential" name jobs)
        true
        (sharded = sequential);
      (* And again with telemetry collecting: per-domain accumulators
         must not disturb recognition, and worker spans must land on
         worker-tagged tracks in the shared recorder. *)
      let with_telemetry =
        scoped_telemetry (fun () ->
            let r, _ = recognise ~jobs ~shards:jobs ~event_description ~knowledge ~stream () in
            let tids =
              List.sort_uniq compare
                (List.filter_map
                   (fun (i : Telemetry.Trace.info) ->
                     if i.span_name = "window.query" then Some i.span_tid else None)
                   (Telemetry.Trace.infos ()))
            in
            (* One trace track per domain the host actually granted: all
               requested on a many-core machine, a single track when the
               clamp serialised the shards. *)
            let parallel = min jobs (Stdlib.Domain.recommended_domain_count ()) > 1 in
            Alcotest.(check bool)
              (Printf.sprintf "%s: jobs=%d one track per granted domain" name jobs)
              true
              (if parallel then List.length tids > 1 else List.length tids = 1);
            Alcotest.(check bool)
              (Printf.sprintf "%s: jobs=%d worker metrics merged at join" name jobs)
              true
              (match
                 Telemetry.Metrics.find_counter (Telemetry.Metrics.snapshot ())
                   "window.queries"
               with
              | Some n -> n > 0
              | None -> false);
            r)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d bit-identical with telemetry on" name jobs)
        true
        (with_telemetry = sequential))
    [ 2; 4 ]

let test_differential_maritime () =
  let data =
    Maritime.Dataset.generate ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 2 } ()
  in
  check_differential ~name:"maritime" ~event_description:Maritime.Gold.event_description
    ~knowledge:data.knowledge ~stream:data.stream

let test_differential_fleet () =
  let stream, knowledge = Fleet.generate () in
  let event_description = Domain.event_description Fleet.domain in
  check_differential ~name:"fleet" ~event_description ~knowledge ~stream

(* The pool itself is never clamped — [Runtime.run] caps its fan-out at
   the host's cores, so on a small CI host the multi-domain machinery
   (per-domain telemetry accumulators, exact merge at join, worker-track
   spans) would otherwise go unexercised. One task per domain, held at a
   barrier until every domain has started its task, so exactly [jobs]
   domains demonstrably run concurrently. *)
let test_pool_multi_domain_telemetry () =
  let jobs = 4 in
  scoped_telemetry (fun () ->
      let counter = Telemetry.Metrics.counter "test.pool.ticks" in
      let started = Atomic.make 0 in
      let results =
        Runtime.map_domains ~jobs
          (fun _ n ->
            Atomic.incr started;
            while Atomic.get started < jobs do
              Stdlib.Domain.cpu_relax ()
            done;
            Telemetry.Metrics.incr counter;
            Telemetry.Trace.with_span "test.pool.task" (fun () -> n * 2))
          (Array.init jobs Fun.id)
      in
      Alcotest.(check bool) "order preserved" true
        (results = Array.init jobs (fun i -> i * 2));
      Alcotest.(check (option int))
        "worker counters merged exactly" (Some jobs)
        (Telemetry.Metrics.find_counter (Telemetry.Metrics.snapshot ()) "test.pool.ticks");
      let tids =
        List.sort_uniq compare
          (List.filter_map
             (fun (i : Telemetry.Trace.info) ->
               if i.span_name = "test.pool.task" then Some i.span_tid else None)
             (Telemetry.Trace.infos ()))
      in
      Alcotest.(check int) "one span track per domain" jobs (List.length tids))

(* --- the facade --- *)

let test_sequential_matches_window_run () =
  let data =
    Maritime.Dataset.generate ~config:{ Maritime.Dataset.seed = 5; replicas = 1; nominal = 0 } ()
  in
  let ed = Maritime.Gold.event_description in
  let via_window =
    match
      Window.run ~window:3600 ~step:1800 ~event_description:ed ~knowledge:data.knowledge
        ~stream:data.stream ()
    with
    | Ok (r, s) -> (exact r, s.Window.queries, s.Window.events_processed)
    | Error e -> Alcotest.failf "Window.run failed: %s" e
  in
  let via_runtime =
    match
      Runtime.run
        ~config:(Runtime.config ~window:3600 ~step:1800 ())
        ~event_description:ed ~knowledge:data.knowledge ~stream:data.stream ()
    with
    | Ok (r, s) -> (exact r, s.Runtime.queries, s.Runtime.events_processed)
    | Error e -> Alcotest.failf "Runtime.run failed: %s" e
  in
  Alcotest.(check bool) "jobs=1 facade is exactly Window.run" true (via_window = via_runtime)

let test_config_validation () =
  let stream = Stream.make [ { Stream.time = 1; term = Term.app "e" [ Term.Atom "x" ] } ] in
  (match
     Runtime.run
       ~config:{ Runtime.default with jobs = 0 }
       ~event_description:[] ~knowledge:Knowledge.empty ~stream ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "jobs=0 must be rejected");
  match
    Runtime.run
      ~config:(Runtime.config ~window:0 ~jobs:2 ())
      ~event_description:[] ~knowledge:Knowledge.empty ~stream ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "window=0 must be rejected"

let suite =
  [
    prop_partition_disjoint_cover;
    prop_partition_never_splits;
    prop_partition_roundtrip;
    Alcotest.test_case "unsplittable streams and pairwise fluents" `Quick
      test_partition_unsplittable;
    Alcotest.test_case "sharded vs sequential differential (maritime)" `Quick
      test_differential_maritime;
    Alcotest.test_case "sharded vs sequential differential (fleet)" `Quick
      test_differential_fleet;
    Alcotest.test_case "pool telemetry across real domains" `Quick
      test_pool_multi_domain_telemetry;
    Alcotest.test_case "jobs=1 facade is exactly Window.run" `Quick
      test_sequential_matches_window_run;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
