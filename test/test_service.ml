(* The streaming service: out-of-order replay within the revision
   horizon converges bit-identically to the in-order batch run (maritime
   and fleet scenarios, jobs 1 and 4, provenance on and off);
   beyond-horizon items are counted and dropped; idle entities are
   evicted with their recognised history frozen in the result. *)

open Rtec
module Service = Runtime.Service

let exact result =
  List.map
    (fun ((f, v), spans) -> (Term.to_string f, Term.to_string v, Interval.to_list spans))
    result

let batch ~jobs ~compile ~event_description ~knowledge ~stream () =
  let config = Runtime.config ~window:3600 ~step:1800 ~jobs ~compile () in
  match Runtime.run ~config ~event_description ~knowledge ~stream () with
  | Ok (result, _) -> exact result
  | Error e -> Alcotest.failf "batch recognition failed: %s" e

(* A deterministic per-event delivery delay: events are replayed in
   delivery order [time + delay], so an event can arrive up to
   [amount] time-points after later events — strictly inside the
   service's revision horizon when [horizon > amount]. *)
let delay ~amount t i = (((t * 7919) + (i * 104729)) land max_int) mod (amount + 1)

let out_of_order_events ~amount stream =
  let keyed =
    List.mapi
      (fun i (e : Stream.event) -> (e.time + delay ~amount e.time i, i, e))
      (Stream.events stream)
  in
  let sorted = List.sort compare keyed in
  let events = List.map (fun (_, _, e) -> e) sorted in
  (* The grid origin freezes at the first processed query: a minimal-time
     event must be ingested before the first tick, or the whole grid
     would shift (and the straggler be dropped as pre-origin). Batch
     ingestion knows the extent up front; a live deployment would learn
     [lo] from its first in-order prefix the same way. *)
  let t0 = fst (Stream.extent stream) in
  match List.partition (fun (e : Stream.event) -> e.time = t0) events with
  | first :: _, _ ->
    first :: List.filter (fun (e : Stream.event) -> e != first) events
  | [], _ -> events

let rec chunks n = function
  | [] -> []
  | items ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let chunk, rest = take n [] items in
    chunk :: chunks n rest

(* Replay the stream out of order against a live service: input fluents
   first (timeless inputs), then events in perturbed delivery order in
   small batches, ticking on watermark progress, and a final drain. *)
let replay ~jobs ~compile ~horizon ~event_description ~knowledge ~stream () =
  let svc =
    Service.create
      ~config:(Service.config ~window:3600 ~step:1800 ~jobs ~compile ~horizon ())
      ~event_description ~knowledge ()
  in
  Service.ingest svc
    (List.map (fun (fv, spans) -> Stream.Fluent (fv, spans)) (Stream.input_fluents stream));
  let last_tick = ref None in
  List.iter
    (fun chunk ->
      Service.ingest svc (List.map (fun e -> Stream.Event e) chunk);
      match Service.watermark svc with
      | Some wm
        when (match !last_tick with None -> true | Some t -> wm >= t + 1800) -> (
        match Service.tick svc ~now:wm with
        | Ok _ -> last_tick := Some wm
        | Error e -> Alcotest.failf "tick failed: %s" e)
      | _ -> ())
    (chunks 64 (out_of_order_events ~amount:1500 stream));
  match Service.drain svc with
  | Ok (r : Service.result) -> (exact (Lazy.force r.intervals), r.stats)
  | Error e -> Alcotest.failf "drain failed: %s" e

let check_convergence ~name ~event_description ~knowledge ~stream =
  List.iter
    (fun (jobs, compile) ->
      let expected = batch ~jobs ~compile ~event_description ~knowledge ~stream () in
      Alcotest.(check bool)
        (Printf.sprintf "%s: batch recognises something" name)
        true (expected <> []);
      let streamed, stats =
        replay ~jobs ~compile ~horizon:3600 ~event_description ~knowledge ~stream ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d compile=%b out-of-order replay == batch" name jobs
           compile)
        true (streamed = expected);
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d replay was actually out of order" name jobs)
        true
        (stats.Service.late_events > 0 && stats.Service.revisions > 0);
      Alcotest.(check int)
        (Printf.sprintf "%s: jobs=%d nothing dropped within horizon" name jobs)
        0 stats.Service.dropped_late;
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d ingestion used instrumented appends" name jobs)
        true (stats.Service.appends > 0))
    [ (1, true); (4, true); (1, false) ]

let with_provenance f =
  Derivation.reset ();
  Derivation.set_sampling Derivation.Always;
  Derivation.enable ();
  Fun.protect
    ~finally:(fun () ->
      Derivation.disable ();
      Derivation.reset ())
    f

let test_convergence_maritime () =
  let data =
    Maritime.Dataset.generate
      ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 2 } ()
  in
  check_convergence ~name:"maritime" ~event_description:Maritime.Gold.event_description
    ~knowledge:data.knowledge ~stream:data.stream

let test_convergence_fleet () =
  let stream, knowledge = Fleet.generate () in
  let event_description = Domain.event_description Fleet.domain in
  check_convergence ~name:"fleet" ~event_description ~knowledge ~stream

let test_convergence_provenance () =
  let data =
    Maritime.Dataset.generate
      ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 2 } ()
  in
  let ed = Maritime.Gold.event_description in
  let expected =
    batch ~jobs:1 ~compile:true ~event_description:ed ~knowledge:data.knowledge
      ~stream:data.stream ()
  in
  with_provenance (fun () ->
      let streamed, _ =
        replay ~jobs:1 ~compile:true ~horizon:3600 ~event_description:ed
          ~knowledge:data.knowledge ~stream:data.stream ()
      in
      Alcotest.(check bool)
        "provenance-on replay == provenance-off batch" true (streamed = expected);
      Alcotest.(check bool)
        "revision replays were recorded" true
        ((Derivation.stats ()).Derivation.records > 0))

(* --- lateness accounting and revision on a hand-built scenario --- *)

let small_ed =
  [
    Parser.parse_definition ~name:"svc"
      "initiatedAt(active(V) = true, T) :- happensAt(start(V), T).\n\
       terminatedAt(active(V) = true, T) :- happensAt(stop(V), T).";
  ]

let event name v t = { Stream.time = t; term = Term.app name [ Term.Atom v ] }

let small_batch events =
  match
    Runtime.run
      ~config:(Runtime.config ~window:10 ~step:10 ())
      ~event_description:small_ed ~knowledge:Knowledge.empty
      ~stream:(Stream.make events) ()
  with
  | Ok (result, _) -> exact result
  | Error e -> Alcotest.failf "batch recognition failed: %s" e

let test_beyond_horizon_drops () =
  let svc =
    Service.create
      ~config:(Service.config ~window:10 ~step:10 ~horizon:5 ())
      ~event_description:small_ed ~knowledge:Knowledge.empty ()
  in
  Service.ingest svc
    (List.map (fun e -> Stream.Event e) [ event "start" "v1" 1; event "tour" "v1" 40 ]);
  (match Service.tick svc ~now:40 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "tick failed: %s" e);
  (* 38 time-points late with horizon 5: counted and dropped. *)
  Service.ingest svc [ Stream.Event (event "start" "v2" 2) ];
  (* 2 time-points late: accepted, revises v1's windows — the stop must
     retroactively cut the interval the earlier tick left open. *)
  Service.ingest svc [ Stream.Event (event "stop" "v1" 38) ];
  match Service.drain svc with
  | Error e -> Alcotest.failf "drain failed: %s" e
  | Ok (r : Service.result) ->
    let s = r.stats in
    Alcotest.(check int) "two late arrivals" 2 s.late_events;
    Alcotest.(check int) "one beyond the horizon, dropped" 1 s.dropped_late;
    Alcotest.(check int) "one revision pass" 1 s.revisions;
    Alcotest.(check bool)
      "converges to the batch over the accepted events" true
      (exact (Lazy.force r.intervals)
      = small_batch [ event "start" "v1" 1; event "tour" "v1" 40; event "stop" "v1" 38 ])

let test_ttl_eviction () =
  let v2_events = List.init 6 (fun i -> event "start" "v2" ((10 * i) + 1)) in
  let all = event "start" "v1" 1 :: event "stop" "v1" 5 :: v2_events in
  let svc =
    Service.create
      ~config:(Service.config ~window:10 ~step:10 ~ttl:15 ())
      ~event_description:small_ed ~knowledge:Knowledge.empty ()
  in
  List.iter
    (fun (e : Stream.event) ->
      Service.ingest svc [ Stream.Event e ];
      match Service.tick svc ~now:e.time with
      | Ok _ -> ()
      | Error err -> Alcotest.failf "tick failed: %s" err)
    (List.sort (fun (a : Stream.event) b -> compare a.time b.time) all);
  match Service.drain svc with
  | Error e -> Alcotest.failf "drain failed: %s" e
  | Ok (r : Service.result) ->
    let s = r.stats in
    Alcotest.(check int) "v1 evicted" 1 s.entities_evicted;
    Alcotest.(check int) "v2 still active" 1 s.entities_active;
    Alcotest.(check bool)
      "evicted history stays frozen in the result" true
      (exact (Lazy.force r.intervals) = small_batch all)

let suite =
  [
    Alcotest.test_case "out-of-order replay == batch (maritime)" `Quick
      test_convergence_maritime;
    Alcotest.test_case "out-of-order replay == batch (fleet)" `Quick
      test_convergence_fleet;
    Alcotest.test_case "out-of-order replay == batch (provenance on)" `Quick
      test_convergence_provenance;
    Alcotest.test_case "beyond-horizon items are counted and dropped" `Quick
      test_beyond_horizon_drops;
    Alcotest.test_case "idle entities are evicted, history frozen" `Quick
      test_ttl_eviction;
  ]
