open Rtec
open Similarity

let t = Parser.parse_term
let float_eq = Alcotest.float 1e-9

(* --- Definition 4.1: ground expressions --- *)

let test_example_4_2 () =
  (* d(happensAt(entersArea(v42,a1),23), happensAt(inArea(v42,a1),23)) = 0.25 *)
  let e1 = t "happensAt(entersArea(v42, a1), 23)" in
  let e2 = t "happensAt(inArea(v42, a1), 23)" in
  Alcotest.check float_eq "paper example 4.2" 0.25 (Distance.ground e1 e2)

let test_ground_cases () =
  Alcotest.check float_eq "equal constants" 0. (Distance.ground (t "a") (t "a"));
  Alcotest.check float_eq "different constants" 1. (Distance.ground (t "a") (t "b"));
  Alcotest.check float_eq "equal numbers" 0. (Distance.ground (t "23") (t "23"));
  Alcotest.check float_eq "int vs equal real" 0. (Distance.ground (t "23") (t "23.0"));
  Alcotest.check float_eq "different arity" 1.
    (Distance.ground (t "p(a)") (t "p(a, b)"));
  Alcotest.check float_eq "different functor" 1. (Distance.ground (t "p(a)") (t "q(a)"));
  Alcotest.check float_eq "recursive halving" 0.25
    (Distance.ground (t "p(a, b)") (t "p(a, c)"))

let test_ground_rejects_variables () =
  Alcotest.check_raises "non-ground input"
    (Invalid_argument "Distance.ground: expressions must be ground") (fun () ->
      ignore (Distance.ground (t "p(X)") (t "p(a)")))

(* --- Definitions 4.3/4.5: sets of ground expressions --- *)

let test_example_4_6 () =
  let ea =
    [ t "happensAt(entersArea(v42, a1), 23)"; t "areaType(a1, fishing)";
      t "holdsAt(underway(v42) = true, 23)" ]
  in
  let eb = [ t "areaType(a1, fishing)"; t "happensAt(inArea(v42, a1), 23)" ] in
  let d = Distance.ground_sets ea eb in
  Alcotest.check (Alcotest.float 1e-4) "paper example 4.6" 0.4167 d;
  Alcotest.check (Alcotest.float 1e-4) "similarity" 0.5833 (1. -. d)

let test_ground_sets_edge_cases () =
  Alcotest.check float_eq "both empty" 0. (Distance.ground_sets [] []);
  Alcotest.check float_eq "one empty" 1. (Distance.ground_sets [ t "p(a)" ] []);
  Alcotest.check float_eq "identical sets" 0.
    (Distance.ground_sets [ t "p(a)"; t "q(b)" ] [ t "q(b)"; t "p(a)" ]);
  Alcotest.check float_eq "symmetric"
    (Distance.ground_sets [ t "p(a)" ] [ t "p(a)"; t "q(b)" ])
    (Distance.ground_sets [ t "p(a)"; t "q(b)" ] [ t "p(a)" ])

(* --- Definitions 4.7-4.10: variable instances --- *)

let rule_1 =
  List.hd
    (Parser.parse_clauses
       "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
        happensAt(entersArea(Vl, AreaID), T), areaType(AreaID, AreaType).")

let test_example_4_10 () =
  let vi = Var_instance.of_rule rule_1 in
  let sorted = List.sort compare in
  Alcotest.(check (list (list (pair string int))))
    "instances of Vl"
    (sorted
       [ [ ("initiatedAt", 1); ("=", 1); ("withinArea", 1) ];
         [ ("happensAt", 1); ("entersArea", 1) ] ])
    (Var_instance.instances vi "Vl");
  Alcotest.(check (list (list (pair string int))))
    "instances of AreaType"
    (sorted
       [ [ ("initiatedAt", 1); ("=", 1); ("withinArea", 2) ]; [ ("areaType", 2) ] ])
    (Var_instance.instances vi "AreaType");
  Alcotest.(check (list (list (pair string int))))
    "instances of AreaID"
    (sorted [ [ ("areaType", 1) ]; [ ("happensAt", 1); ("entersArea", 2) ] ])
    (Var_instance.instances vi "AreaID");
  Alcotest.(check (list (list (pair string int)))) "unknown variable" []
    (Var_instance.instances vi "Nope")

(* --- Definitions 4.11/4.12: rules --- *)

let rule_6 =
  (* Rule (1) with AreaID renamed to Area: equivalent, distance 0. *)
  List.hd
    (Parser.parse_clauses
       "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
        happensAt(entersArea(Vl, Area), T), areaType(Area, AreaType).")

let rule_7 =
  (* Rule (1) with the arguments of areaType reversed: not equivalent. *)
  List.hd
    (Parser.parse_clauses
       "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
        happensAt(entersArea(Vl, AreaID), T), areaType(AreaType, AreaID).")

let test_example_4_13_renaming () =
  Alcotest.check float_eq "alpha-equivalent rules have distance 0" 0.
    (Distance.rule rule_1 rule_6)

let test_example_4_13_transposed () =
  (* Following Definitions 4.11/4.12 exactly: head distance 0.015625, the
     happensAt pair contributes 0.0625 and the areaType pair 0.5, giving
     (0.015625 + 0.0625 + 0.5) / 3 = 0.192708... The paper's Example 4.13
     reports 0.1667 for the same sum — an arithmetic slip in the paper
     (0.578125 / 3 is not 0.1667); we follow the definitions. *)
  let vi1 = Var_instance.of_rule rule_1 and vi7 = Var_instance.of_rule rule_7 in
  let head_d = Distance.expression ~vi1 ~vi2:vi7 rule_1.Ast.head rule_7.Ast.head in
  Alcotest.check float_eq "head distance (paper: 0.015625)" 0.015625 head_d;
  let area_d =
    Distance.expression ~vi1 ~vi2:vi7 (List.nth rule_1.Ast.body 1)
      (List.nth rule_7.Ast.body 1)
  in
  Alcotest.check float_eq "areaType condition distance (paper: 0.5)" 0.5 area_d;
  let happens_d =
    Distance.expression ~vi1 ~vi2:vi7 (List.nth rule_1.Ast.body 0)
      (List.nth rule_7.Ast.body 0)
  in
  Alcotest.check float_eq "happensAt condition distance (paper: 0.0625)" 0.0625 happens_d;
  Alcotest.check float_eq "rule distance per Definition 4.12"
    ((0.015625 +. 0.0625 +. 0.5) /. 3.)
    (Distance.rule rule_1 rule_7)

let test_rule_distance_unmatched_conditions () =
  let r1 =
    List.hd
      (Parser.parse_clauses
         "initiatedAt(f(V) = true, T) :- happensAt(e(V), T), holdsAt(g(V) = true, T).")
  in
  let r2 = List.hd (Parser.parse_clauses "initiatedAt(f(V) = true, T) :- happensAt(e(V), T).") in
  (* Dropping a condition also changes the instance lists of V and T, so
     the shared head and happensAt literal are no longer at distance 0
     (Definition 4.11): head = 1/4*(1/8 + 1) = 9/32, happensAt =
     1/4*(1/2 + 1) = 3/8, plus the unmatched condition penalty 1. *)
  Alcotest.check float_eq "unmatched condition penalty"
    (((9. /. 32.) +. 1. +. (3. /. 8.)) /. 3.)
    (Distance.rule r1 r2)

(* --- Definition 4.14: event descriptions --- *)

let test_ed_identity () =
  let rules = Ast.all_rules Maritime.Gold.event_description in
  Alcotest.check float_eq "gold vs itself" 0. (Distance.event_description rules rules)

let test_ed_unmatched_rules () =
  let rules = (Maritime.Gold.definition "withinArea").rules in
  Alcotest.check float_eq "vs empty" 1. (Distance.event_description rules []);
  Alcotest.check float_eq "similarity vs empty" 0. (Distance.similarity rules [])

let test_ed_wrong_kind_is_zero () =
  (* A statically determined definition re-expressed as a simple fluent
     scores 0, as Gemma-2's trawling did. *)
  let gold = (Maritime.Gold.definition "trawling").rules in
  let wrong =
    Adg.Error_model.apply Adg.Error_model.Wrong_kind (Maritime.Gold.definition "trawling")
  in
  Alcotest.check float_eq "wrong fluent kind" 0. (Distance.similarity wrong.rules gold)

(* --- differential: PR 4 fast paths vs. the pre-overhaul reference --- *)

(* The similarity pipeline exactly as it stood before the PR 4 overhaul:
   pad-to-square assignment (via the square solver kept as the oracle),
   structural instance-list comparison instead of interned fingerprints,
   [Var_instance.of_rule] recomputed inside every rule pair, and no
   rule-distance cache. The fast paths must reproduce it bit for bit. *)
module Reference = struct
  let solve_rectangular cost =
    let m = Array.length cost in
    if m = 0 then 0.
    else begin
      let k = Array.length cost.(0) in
      let padded =
        Array.map (fun row -> Array.init m (fun j -> if j < k then row.(j) else 0.)) cost
      in
      let _, total = Assignment.Kuhn_munkres.solve padded in
      total
    end

  let numeric = function
    | Term.Int n -> Some (float_of_int n)
    | Term.Real r -> Some r
    | _ -> None

  let rec generic var_case u1 u2 =
    match (u1, u2) with
    | Term.Var v1, Term.Var v2 -> var_case v1 v2
    | Term.Var _, _ | _, Term.Var _ -> 1.
    | _ -> (
      match (numeric u1, numeric u2) with
      | Some x, Some y -> if Float.equal x y then 0. else 1.
      | _ -> (
        match (u1, u2) with
        | Term.Atom a, Term.Atom b -> if String.equal a b then 0. else 1.
        | Term.Compound (p, ss), Term.Compound (q, ts)
          when String.equal p q && List.length ss = List.length ts ->
          let k = float_of_int (List.length ss) in
          let sum =
            List.fold_left2 (fun acc s t -> acc +. generic var_case s t) 0. ss ts
          in
          sum /. (2. *. k)
        | _ -> 1.))

  (* Structural instance-list equality, as [equal_instances] computed it
     before fingerprint interning. *)
  let expression ~vi1 ~vi2 u1 u2 =
    let var_case v1 v2 =
      let i1 = Var_instance.instances vi1 v1 and i2 = Var_instance.instances vi2 v2 in
      if i1 <> [] && i1 = i2 then 0. else 1.
    in
    generic var_case u1 u2

  let cost_matrix d rows cols =
    Array.init (Array.length rows) (fun i ->
        Array.init (Array.length cols) (fun j -> d rows.(i) cols.(j)))

  let set_distance d xs ys =
    let xs, ys = if List.length xs >= List.length ys then (xs, ys) else (ys, xs) in
    let m = List.length xs and k = List.length ys in
    if m = 0 then 0.
    else begin
      let total = solve_rectangular (cost_matrix d (Array.of_list xs) (Array.of_list ys)) in
      (float_of_int (m - k) +. total) /. float_of_int m
    end

  let rule (r1 : Ast.rule) (r2 : Ast.rule) =
    let vi1 = Var_instance.of_rule r1 and vi2 = Var_instance.of_rule r2 in
    let head_distance = expression ~vi1 ~vi2 r1.head r2.head in
    let b1, b2, vi1, vi2 =
      if List.length r1.body >= List.length r2.body then (r1.body, r2.body, vi1, vi2)
      else (r2.body, r1.body, vi2, vi1)
    in
    let m = List.length b1 and k = List.length b2 in
    let body_total =
      if m = 0 then 0.
      else if k = 0 then float_of_int m
      else
        solve_rectangular
          (cost_matrix (fun a b -> expression ~vi1 ~vi2 a b) (Array.of_list b1)
             (Array.of_list b2))
        +. float_of_int (m - k)
    in
    (head_distance +. body_total) /. float_of_int (m + 1)

  let event_description kb1 kb2 = set_distance (fun a b -> rule a b) kb1 kb2
end

let test_differential_gold_catalogue () =
  (* Every gold definition against every other: 25 x 25 event-description
     distances, covering simple and statically determined rules, shared
     lower-level fluents and all body shapes in the catalogue. Exact
     float equality: the fast paths change how the optimum is found, not
     what it sums. *)
  List.iter
    (fun (e1 : Maritime.Gold.entry) ->
      let r1 = (Maritime.Gold.definition e1.name).rules in
      List.iter
        (fun (e2 : Maritime.Gold.entry) ->
          let r2 = (Maritime.Gold.definition e2.name).rules in
          Alcotest.check float_eq
            (e1.name ^ " vs " ^ e2.name)
            (Reference.event_description r1 r2)
            (Distance.event_description r1 r2))
        Maritime.Gold.entries)
    Maritime.Gold.entries

let test_prepared_matches_unprepared () =
  let gold = Ast.all_rules Maritime.Gold.event_description in
  let mutated =
    Ast.all_rules
      (List.map
         (fun d -> Adg.Error_model.apply Adg.Error_model.Add_redundant d)
         Maritime.Gold.event_description)
  in
  let pg = Distance.prepare gold and pm = Distance.prepare mutated in
  Alcotest.check float_eq "prepared = list API"
    (Distance.event_description mutated gold)
    (Distance.event_description_prepared pm pg);
  (* Second call is served by the rule-pair cache; the value must not
     move. *)
  Alcotest.check float_eq "cache hit returns the same distance"
    (Distance.event_description_prepared pm pg)
    (Distance.event_description_prepared pm pg);
  Alcotest.check float_eq "similarity_prepared"
    (Distance.similarity mutated gold)
    (Distance.similarity_prepared pm pg)

(* --- properties --- *)

let mutated_definition_gen =
  let open QCheck.Gen in
  let entries = Array.of_list Maritime.Gold.entries in
  let mutation =
    oneof
      [ return Adg.Error_model.Confuse_union;
        return Adg.Error_model.Add_redundant;
        return Adg.Error_model.Extra_rule;
        map (fun i -> Adg.Error_model.Drop_rule i) (int_bound 5);
        map (fun i -> Adg.Error_model.Drop_condition i) (int_bound 5);
        return (Adg.Error_model.Rename ("entersArea", "inArea"));
        return (Adg.Error_model.Transpose_args "areaType") ]
  in
  let* entry = oneofa entries in
  let* mutations = list_size (int_bound 3) mutation in
  let d = Parser.parse_definition ~name:entry.Maritime.Gold.name entry.source in
  return (entry.name, Adg.Error_model.apply_all mutations d)

let arbitrary_mutated =
  QCheck.make
    ~print:(fun (n, d) -> n ^ ":\n" ^ Printer.definition_to_string d)
    mutated_definition_gen

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let properties =
  [
    prop "similarity lies in [0, 1]" 200 arbitrary_mutated (fun (name, d) ->
        let s = Distance.similarity d.Ast.rules (Maritime.Gold.definition name).rules in
        s >= 0. && s <= 1.0000001);
    prop "distance is symmetric" 100 arbitrary_mutated (fun (name, d) ->
        let gold = (Maritime.Gold.definition name).rules in
        Float.abs
          (Distance.event_description d.Ast.rules gold
          -. Distance.event_description gold d.Ast.rules)
        < 1e-9);
    prop "distance to self is 0" 100 arbitrary_mutated (fun (_, d) ->
        Float.abs (Distance.event_description d.Ast.rules d.Ast.rules) < 1e-9);
    prop "consistent variable renaming preserves distance 0" 100
      (QCheck.make (QCheck.Gen.oneofa (Array.of_list Maritime.Gold.entries)))
      (fun entry ->
        let d = Parser.parse_definition ~name:entry.Maritime.Gold.name entry.source in
        let renamed =
          List.map
            (fun (r : Ast.rule) ->
              { r with
                Ast.head = Unify.rename_apart ~suffix:"z" r.head;
                body = List.map (Unify.rename_apart ~suffix:"z") r.body })
            d.rules
        in
        Float.abs (Distance.event_description d.rules renamed) < 1e-9);
    prop "greedy distance is an upper bound on Hungarian" 200 arbitrary_mutated
      (fun (name, d) ->
        let gold = (Maritime.Gold.definition name).rules in
        Distance.event_description ~strategy:Distance.Greedy d.Ast.rules gold
        >= Distance.event_description d.Ast.rules gold -. 1e-9);
    prop "fast paths match the pre-overhaul reference" 150 arbitrary_mutated
      (fun (name, d) ->
        let gold = (Maritime.Gold.definition name).rules in
        Float.equal
          (Distance.event_description d.Ast.rules gold)
          (Reference.event_description d.Ast.rules gold));
  ]

let suite =
  [
    Alcotest.test_case "example 4.2 (ground distance)" `Quick test_example_4_2;
    Alcotest.test_case "ground distance cases" `Quick test_ground_cases;
    Alcotest.test_case "ground distance rejects variables" `Quick
      test_ground_rejects_variables;
    Alcotest.test_case "example 4.6 (set distance)" `Quick test_example_4_6;
    Alcotest.test_case "set distance edge cases" `Quick test_ground_sets_edge_cases;
    Alcotest.test_case "example 4.10 (variable instances)" `Quick test_example_4_10;
    Alcotest.test_case "example 4.13: alpha renaming" `Quick test_example_4_13_renaming;
    Alcotest.test_case "example 4.13: transposed arguments" `Quick
      test_example_4_13_transposed;
    Alcotest.test_case "unmatched body conditions" `Quick
      test_rule_distance_unmatched_conditions;
    Alcotest.test_case "event description identity" `Quick test_ed_identity;
    Alcotest.test_case "unmatched rules" `Quick test_ed_unmatched_rules;
    Alcotest.test_case "wrong fluent kind scores 0" `Quick test_ed_wrong_kind_is_zero;
    Alcotest.test_case "differential vs reference on the gold catalogue" `Quick
      test_differential_gold_catalogue;
    Alcotest.test_case "prepared sides and rule-pair cache" `Quick
      test_prepared_matches_unprepared;
  ]
  @ properties
