(* Unit tests for the telemetry subsystem: span nesting and ordering,
   histogram percentiles, disabled no-op semantics, JSON round-trips,
   the Chrome trace_event exporter — and the differential gate: stream
   recognition is bit-identical with telemetry on vs. off. *)

open Telemetry

(* Every test leaves the tracer and registry disabled and empty so the
   other suites (which share the process-global state) are unaffected. *)
let scoped f =
  Trace.reset ();
  Trace.enable ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Metrics.disable ();
      Trace.reset ();
      Metrics.reset ())
    f

(* --- spans --- *)

let test_span_nesting () =
  scoped (fun () ->
      let a = Trace.start "a" in
      let b = Trace.start "b" in
      Trace.finish b;
      let c = Trace.start "c" ~args:[ ("k", Trace.Int 7) ] in
      Trace.finish c;
      Trace.finish a;
      let root = Trace.start "root2" in
      Trace.finish root;
      match Trace.infos () with
      | [ ia; ib; ic; iroot ] ->
        Alcotest.(check (list string))
          "start order" [ "a"; "b"; "c"; "root2" ]
          [ ia.Trace.span_name; ib.span_name; ic.span_name; iroot.span_name ];
        Alcotest.(check int) "a is a root" 0 ia.span_parent;
        Alcotest.(check int) "b nested under a" ia.span_id ib.span_parent;
        Alcotest.(check int) "c nested under a (b closed)" ia.span_id ic.span_parent;
        Alcotest.(check int) "root2 is a root (a closed)" 0 iroot.span_parent;
        Alcotest.(check bool) "timestamps are ordered" true
          (ia.t_ns <= ib.t_ns && ib.t_ns <= ic.t_ns && ic.t_ns <= iroot.t_ns);
        Alcotest.(check bool) "parent spans its children" true
          (Int64.add ia.t_ns ia.dur_ns >= Int64.add ic.t_ns ic.dur_ns);
        Alcotest.(check bool) "args are kept" true (ic.span_args = [ ("k", Trace.Int 7) ])
      | infos -> Alcotest.failf "expected 4 spans, got %d" (List.length infos))

let test_with_span_exception () =
  scoped (fun () ->
      (try Trace.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
      let after = Trace.start "after" in
      Trace.finish after;
      match Trace.infos () with
      | [ boom; after ] ->
        Alcotest.(check string) "failed span recorded" "boom" boom.Trace.span_name;
        Alcotest.(check int) "stack unwound after exception" 0 after.span_parent
      | infos -> Alcotest.failf "expected 2 spans, got %d" (List.length infos))

let test_disabled_noop () =
  Trace.reset ();
  Trace.disable ();
  Metrics.disable ();
  let sp = Trace.start "ignored" in
  Trace.finish sp;
  Alcotest.(check int) "no span recorded while disabled" 0 (List.length (Trace.infos ()));
  Alcotest.(check int) "with_span still runs the body" 41
    (Trace.with_span "ignored" (fun () -> 41));
  let c = Metrics.counter "test.disabled_counter" in
  Metrics.incr c;
  Metrics.incr c ~by:10;
  Alcotest.(check int) "counter frozen while disabled" 0 (Metrics.value c)

let test_span_cap () =
  scoped (fun () ->
      Trace.set_max_spans 3;
      Fun.protect
        ~finally:(fun () -> Trace.set_max_spans 1_000_000)
        (fun () ->
          for _ = 1 to 5 do
            Trace.finish (Trace.start "s")
          done;
          Alcotest.(check int) "capped at 3" 3 (List.length (Trace.infos ()));
          Alcotest.(check int) "overflow counted" 2 (Trace.dropped_spans ())))

(* --- metrics --- *)

let test_counters_and_gauges () =
  scoped (fun () ->
      let c = Metrics.counter "test.counter" in
      Metrics.incr c;
      Metrics.incr c ~by:41;
      Alcotest.(check int) "counter accumulates" 42 (Metrics.value c);
      Alcotest.(check bool) "same name, same counter" true
        (Metrics.counter "test.counter" == c);
      let g = Metrics.gauge "test.gauge" in
      let snap = Metrics.snapshot () in
      Alcotest.(check (option int)) "snapshot sees the counter" (Some 42)
        (Metrics.find_counter snap "test.counter");
      Alcotest.(check bool) "unset gauge hidden" true
        (not (List.mem_assoc "test.gauge" snap.Metrics.gauges));
      Metrics.set g 2.5;
      let snap = Metrics.snapshot () in
      Alcotest.(check (option (float 1e-9))) "set gauge visible" (Some 2.5)
        (List.assoc_opt "test.gauge" snap.Metrics.gauges);
      Metrics.reset ();
      Alcotest.(check int) "reset zeroes counters" 0 (Metrics.value c))

let test_kind_clash () =
  Alcotest.check_raises "counter vs histogram"
    (Invalid_argument "Metrics: test.clash already registered with another type") (fun () ->
      ignore (Metrics.counter "test.clash");
      ignore (Metrics.histogram "test.clash"))

let test_histogram_percentiles () =
  scoped (fun () ->
      let h = Metrics.histogram "test.histogram" in
      for i = 1 to 1000 do
        Metrics.observe h (float_of_int i)
      done;
      let snap = Metrics.snapshot () in
      let s = List.assoc "test.histogram" snap.Metrics.histograms in
      Alcotest.(check int) "count is exact" 1000 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum is exact" 500500. s.Metrics.sum;
      Alcotest.(check (float 1e-9)) "min is exact" 1. s.Metrics.min;
      Alcotest.(check (float 1e-9)) "max is exact" 1000. s.Metrics.max;
      Alcotest.(check (float 1e-9)) "mean is exact" 500.5 s.Metrics.mean;
      (* Buckets are eighth-powers of two: estimates land within one
         bucket (a factor of 2**0.125 ~ 1.09) above the true quantile. *)
      let within q est =
        let truth = q *. 1000. in
        est >= truth && est <= truth *. 1.09
      in
      Alcotest.(check bool) (Printf.sprintf "p50=%.1f within a bucket" s.Metrics.p50) true
        (within 0.50 s.Metrics.p50);
      Alcotest.(check bool) (Printf.sprintf "p90=%.1f within a bucket" s.Metrics.p90) true
        (within 0.90 s.Metrics.p90);
      Alcotest.(check bool) (Printf.sprintf "p99=%.1f within a bucket" s.Metrics.p99) true
        (within 0.99 s.Metrics.p99))

let test_histogram_single_value () =
  scoped (fun () ->
      let h = Metrics.histogram "test.histogram_single" in
      Metrics.observe h 7.;
      let s = List.assoc "test.histogram_single" (Metrics.snapshot ()).Metrics.histograms in
      Alcotest.(check (float 1e-9)) "p50 clamps to the only value" 7. s.Metrics.p50;
      Alcotest.(check (float 1e-9)) "p99 clamps to the only value" 7. s.Metrics.p99)

(* --- JSON --- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.Num 42.);
      ("float", Json.Num 1.5);
      ("text", Json.Str "line\n\"quoted\" \\ end");
      ("list", Json.List [ Json.Num 1.; Json.Str "two"; Json.Obj [] ]);
      ("empty", Json.List []);
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match Json.of_string (Json.to_string ~indent sample_json) with
      | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = sample_json)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ false; true ]

let test_json_errors () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a parse error on %S" input)
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{} trailing" ]

let test_chrome_export () =
  scoped (fun () ->
      Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ()));
      let doc = Trace.to_chrome () in
      (* The document must survive its own serialisation (what the file
         contains) and have the trace_event shape. *)
      let doc =
        match Json.of_string (Json.to_string doc) with
        | Ok d -> d
        | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
      in
      match Option.bind (Json.member "traceEvents" doc) Json.list with
      | Some [ outer; inner ] ->
        List.iter
          (fun (label, ev, name) ->
            Alcotest.(check (option string)) (label ^ " name") (Some name)
              (Option.bind (Json.member "name" ev) Json.str);
            Alcotest.(check (option string)) (label ^ " is a complete event") (Some "X")
              (Option.bind (Json.member "ph" ev) Json.str);
            Alcotest.(check bool) (label ^ " has numeric ts/dur") true
              (Option.is_some (Option.bind (Json.member "ts" ev) Json.num)
              && Option.is_some (Option.bind (Json.member "dur" ev) Json.num)))
          [ ("outer", outer, "outer"); ("inner", inner, "inner") ]
      | _ -> Alcotest.fail "expected exactly two traceEvents")

let test_text_export () =
  scoped (fun () ->
      Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ()));
      let text = Trace.to_text () in
      let lines = String.split_on_char '\n' text in
      Alcotest.(check bool) "outer on the first line" true
        (match lines with l :: _ -> String.length l > 0 && l.[0] = 'o' | [] -> false);
      Alcotest.(check bool) "inner is indented" true
        (List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "  ") lines))

let test_metrics_json () =
  scoped (fun () ->
      Metrics.incr (Metrics.counter "test.json_counter") ~by:5;
      Metrics.observe (Metrics.histogram "test.json_histogram") 100.;
      let doc =
        match Json.of_string (Json.to_string (Metrics.to_json ())) with
        | Ok d -> d
        | Error e -> Alcotest.failf "snapshot is not valid JSON: %s" e
      in
      let counter =
        Option.bind (Json.member "counters" doc) (Json.member "test.json_counter")
      in
      Alcotest.(check (option (float 1e-9))) "counter serialised" (Some 5.)
        (Option.bind counter Json.num);
      let p50 =
        Option.bind (Json.member "histograms" doc) (fun h ->
            Option.bind (Json.member "test.json_histogram" h) (Json.member "p50"))
      in
      Alcotest.(check bool) "histogram summary serialised" true
        (Option.is_some (Option.bind p50 Json.num)))

(* --- differential: recognition is unaffected by telemetry --- *)

let normalised result =
  List.sort compare
    (List.map
       (fun ((f, v), spans) ->
         ((Rtec.Term.to_string f, Rtec.Term.to_string v), Rtec.Interval.to_list spans))
       result)

(* Batch ingestion is instrumented at the merge point: folding n batches
   through Stream.of_batches performs n-1 appends, each observing the
   incoming batch's event count and the merged size. The counters are
   the only visibility a deployment has into how its working stream was
   assembled, so their arithmetic is pinned here. *)
let test_stream_append_counters () =
  scoped (fun () ->
      let batch times =
        Rtec.Stream.make
          (List.map
             (fun t -> { Rtec.Stream.time = t; term = Rtec.Term.app "e" [ Rtec.Term.Int t ] })
             times)
      in
      let merged =
        Rtec.Stream.of_batches [ batch [ 1; 5 ]; batch [ 2 ]; batch [ 3; 4; 6 ] ]
      in
      Alcotest.(check int) "all events survive the folds" 6 (Rtec.Stream.size merged);
      let snap = Metrics.snapshot () in
      Alcotest.(check (option int))
        "one append per extra batch" (Some 2)
        (Metrics.find_counter snap "stream.appends");
      (match List.assoc_opt "stream.append_events" snap.Metrics.histograms with
       | Some s ->
         Alcotest.(check int) "append_events observations" 2 s.Metrics.count;
         (* Incoming batch sizes: 1 then 3. *)
         Alcotest.(check (float 0.0)) "append_events sum" 4.0 s.Metrics.sum
       | None -> Alcotest.fail "stream.append_events histogram missing");
      (match List.assoc_opt "stream.merged_size" snap.Metrics.histograms with
       | Some s ->
         (* Merged sizes: 2+1=3 then 3+3=6. *)
         Alcotest.(check (float 0.0)) "merged_size sum" 9.0 s.Metrics.sum
       | None -> Alcotest.fail "stream.merged_size histogram missing");
      (* The empty and singleton folds never touch the merge path. *)
      ignore (Rtec.Stream.of_batches []);
      ignore (Rtec.Stream.of_batches [ batch [ 9 ] ]);
      Alcotest.(check (option int))
        "degenerate folds do not append" (Some 2)
        (Metrics.find_counter (Metrics.snapshot ()) "stream.appends"))

let test_recognition_bit_identical () =
  let data =
    Maritime.Dataset.generate ~config:{ Maritime.Dataset.seed = 3; replicas = 1; nominal = 0 } ()
  in
  let recognise () =
    match
      Rtec.Window.run ~window:3600 ~step:1800
        ~event_description:Maritime.Gold.event_description ~knowledge:data.knowledge
        ~stream:data.stream ()
    with
    | Ok (result, _) -> normalised result
    | Error e -> Alcotest.failf "recognition failed: %s" e
  in
  let off = recognise () in
  Alcotest.(check bool) "recognition is non-trivial" true (off <> []);
  let on =
    scoped (fun () ->
        let on = recognise () in
        Alcotest.(check bool) "spans were recorded" true (Trace.infos () <> []);
        Alcotest.(check bool) "queries were counted" true
          (Metrics.find_counter (Metrics.snapshot ()) "window.queries" <> Some 0);
        on)
  in
  Alcotest.(check bool) "bit-identical with telemetry on vs. off" true (off = on);
  let off_again = recognise () in
  Alcotest.(check bool) "bit-identical after disabling again" true (off = off_again)

(* --- float round-trip: every emitted number parses back exactly --- *)

let test_json_float_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"JSON floats round-trip exactly" ~count:1000
       QCheck.float (fun x ->
         match Json.of_string (Json.to_string (Json.Num x)) with
         | Ok (Json.Num y) ->
           (* non-finite inputs may not reach here (they render as null) *)
           Float.is_nan x || Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
         | Ok Json.Null -> Float.is_nan x || Float.abs x = Float.infinity
         | Ok _ -> false
         | Error _ -> false))

let test_json_nonfinite () =
  List.iter
    (fun x -> Alcotest.(check string) "non-finite is null" "null" (Json.to_string (Json.Num x)))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

(* --- Prometheus text exposition --- *)

let test_metrics_prometheus () =
  scoped (fun () ->
      Metrics.incr (Metrics.counter "test.prom_counter") ~by:7;
      Metrics.set (Metrics.gauge "test.prom-gauge") 2.5;
      let h = Metrics.histogram "test.prom_histogram" in
      Metrics.observe h 10.;
      Metrics.observe h 20.;
      let text = Metrics.to_prometheus () in
      let has affix =
        let n = String.length affix and m = String.length text in
        let rec go i = i + n <= m && (String.sub text i n = affix || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "counter line" true (has "test_prom_counter 7");
      Alcotest.(check bool) "counter type" true (has "# TYPE test_prom_counter counter");
      Alcotest.(check bool) "gauge name sanitised" true (has "test_prom_gauge 2.5");
      Alcotest.(check bool) "histogram sum" true (has "test_prom_histogram_sum 30");
      Alcotest.(check bool) "histogram count" true (has "test_prom_histogram_count 2");
      Alcotest.(check bool) "histogram type" true
        (has "# TYPE test_prom_histogram histogram");
      (* 10. and 20. land in the buckets bounded by 2^(27/8) and 2^(35/8);
         cumulative counts, then the mandatory +Inf series *)
      Alcotest.(check bool) "first bucket cumulative" true
        (has "test_prom_histogram_bucket{le=\"10.374716437208077\"} 1");
      Alcotest.(check bool) "second bucket cumulative" true
        (has "test_prom_histogram_bucket{le=\"20.749432874416154\"} 2");
      Alcotest.(check bool) "+Inf closes the series" true
        (has "test_prom_histogram_bucket{le=\"+Inf\"} 2");
      Alcotest.(check bool) "no quantile series" false (has "{quantile=");
      (* exposition-format sanity: every non-comment line is "name[{labels}] value" *)
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             if line <> "" && line.[0] <> '#' then
               match String.rindex_opt line ' ' with
               | None -> Alcotest.failf "malformed line: %s" line
               | Some i -> (
                 match float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) with
                 | Some _ -> ()
                 | None -> Alcotest.failf "unparsable value in: %s" line)))

(* Minimal exposition parser shared by the golden and property tests:
   (metric name, le label if any, value) per non-comment line. *)
let parse_prom_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.failf "malformed exposition line: %s" line
         | Some i -> (
           let head = String.sub line 0 i in
           let value =
             match
               float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
             with
             | Some v -> v
             | None -> Alcotest.failf "unparsable value in: %s" line
           in
           match String.index_opt head '{' with
           | None -> (head, None, value)
           | Some j ->
             let name = String.sub head 0 j in
             let label = String.sub head (j + 1) (String.length head - j - 2) in
             let le =
               if String.starts_with ~prefix:"le=\"" label then begin
                 let body = String.sub label 4 (String.length label - 5) in
                 if body = "+Inf" then Float.infinity
                 else
                   match float_of_string_opt body with
                   | Some x -> x
                   | None -> Alcotest.failf "unparsable le bound in: %s" line
               end
               else Alcotest.failf "unexpected label set in: %s" line
             in
             (name, Some le, value)))

(* A histogram's bucket series must be well-formed for any sample set:
   strictly ascending le bounds, non-decreasing cumulative counts, a
   terminal +Inf bucket equal to _count, and _sum matching the samples.
   Checked structurally here (monotonicity golden test) and under random
   sample sets below (the exposition must re-parse). *)
let check_histogram_series ~name ~samples text =
  let lines = parse_prom_lines text in
  let buckets =
    List.filter_map
      (fun (n, le, v) -> if n = name ^ "_bucket" then Some (Option.get le, v) else None)
      lines
  in
  let scalar suffix =
    match
      List.find_opt (fun (n, le, _) -> n = name ^ suffix && le = None) lines
    with
    | Some (_, _, v) -> v
    | None -> Alcotest.failf "missing %s%s" name suffix
  in
  Alcotest.(check bool) (name ^ " has buckets") true (buckets <> []);
  let rec monotone = function
    | (le1, c1) :: ((le2, c2) :: _ as rest) ->
      if not (le1 < le2) then Alcotest.failf "%s le bounds not ascending" name;
      if not (c1 <= c2) then Alcotest.failf "%s cumulative counts decreased" name;
      monotone rest
    | _ -> ()
  in
  monotone buckets;
  let last_le, last_c = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check bool) (name ^ " terminal bucket is +Inf") true (last_le = Float.infinity);
  let count = scalar "_count" in
  Alcotest.(check (float 0.0)) (name ^ " +Inf equals _count") count last_c;
  Alcotest.(check (float 0.0)) (name ^ " _count is the sample count")
    (float_of_int (List.length samples))
    count;
  Alcotest.(check (float 1e-6)) (name ^ " _sum is the sample sum")
    (List.fold_left ( +. ) 0. samples)
    (scalar "_sum")

let test_prometheus_bucket_monotonicity () =
  scoped (fun () ->
      let h = Metrics.histogram "test.prom_mono" in
      let samples = [ 0.4; 1.; 3.; 3.; 17.; 1200.; 250000. ] in
      List.iter (Metrics.observe h) samples;
      check_histogram_series ~name:"test_prom_mono" ~samples (Metrics.to_prometheus ()))

(* Property: whatever lands in the registry, the exposition re-parses
   line by line and each histogram series stays well-formed. Fixed
   metric names (the registry is process-global and keeps
   registrations), fresh values per iteration via reset. *)
let test_prometheus_reparses =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Prometheus exposition re-parses" ~count:100
       QCheck.(
         triple small_nat
           (small_list (pair small_nat small_nat))
           (small_list small_nat))
       (fun (c, gauge_bits, sample_bits) ->
         Metrics.enable ();
         Fun.protect
           ~finally:(fun () ->
             Metrics.disable ();
             Metrics.reset ())
           (fun () ->
             let samples =
               List.map (fun n -> (float_of_int n /. 7.) +. 0.125) sample_bits
             in
             Metrics.incr (Metrics.counter "test.prop_counter") ~by:c;
             List.iter
               (fun (a, b) ->
                 Metrics.set (Metrics.gauge "test.prop_gauge")
                   (float_of_int a -. (float_of_int b /. 3.)))
               gauge_bits;
             let h = Metrics.histogram "test.prop_histogram" in
             List.iter (Metrics.observe h) samples;
             let text = Metrics.to_prometheus () in
             let lines = parse_prom_lines text in
             let counter_ok =
               List.exists
                 (fun (n, le, v) ->
                   n = "test_prop_counter" && le = None && v = float_of_int c)
                 lines
             in
             if samples <> [] then
               check_histogram_series ~name:"test_prop_histogram" ~samples text;
             counter_ok)))

(* --- the CLI flushes telemetry even when recognition dies --- *)

let test_cli_flush_on_failure () =
  let tmp = Filename.temp_file "adg_trace" ".json" in
  let ed = Filename.temp_file "adg_cyclic" ".ed" in
  let stream = Filename.temp_file "adg_stream" ".stream" in
  Fun.protect
    ~finally:(fun () -> List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ tmp; ed; stream ])
    (fun () ->
      (* mutually recursive holdsFor definitions do not stratify: the run
         fails after telemetry is enabled, exercising the at_exit flush *)
      let oc = open_out ed in
      output_string oc
        "holdsFor(a(X) = true, I) :- holdsFor(b(X) = true, I).\n\
         holdsFor(b(X) = true, I) :- holdsFor(a(X) = true, I).\n";
      close_out oc;
      let oc = open_out stream in
      output_string oc "happensAt(e(v0), 1).\n";
      close_out oc;
      let cmd =
        Printf.sprintf "../bin/rtec_cli.exe recognise %s %s --trace %s 2>/dev/null"
          (Filename.quote ed) (Filename.quote stream) (Filename.quote tmp)
      in
      let status = Sys.command cmd in
      Alcotest.(check bool) "recognition failed as intended" true (status <> 0);
      let ic = open_in_bin tmp in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.of_string contents with
      | Error e -> Alcotest.failf "flushed trace is not valid JSON: %s" e
      | Ok doc -> (
        match Option.bind (Json.member "traceEvents" doc) Json.list with
        | Some events ->
          Alcotest.(check bool) "trace has events despite the failure" true
            (List.length events > 0)
        | None -> Alcotest.fail "traceEvents missing from flushed trace"))

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "with_span closes on exception" `Quick test_with_span_exception;
    Alcotest.test_case "disabled telemetry is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "span cap drops and counts" `Quick test_span_cap;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "name registered twice with another type" `Quick test_kind_clash;
    Alcotest.test_case "histogram percentiles within one bucket" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "histogram of a single value" `Quick test_histogram_single_value;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "JSON parse errors" `Quick test_json_errors;
    Alcotest.test_case "Chrome trace_event export" `Quick test_chrome_export;
    Alcotest.test_case "text export indents children" `Quick test_text_export;
    Alcotest.test_case "metrics snapshot JSON" `Quick test_metrics_json;
    Alcotest.test_case "stream append counters" `Quick test_stream_append_counters;
    Alcotest.test_case "recognition bit-identical with telemetry on vs. off" `Quick
      test_recognition_bit_identical;
    test_json_float_roundtrip;
    Alcotest.test_case "non-finite floats render as null" `Quick test_json_nonfinite;
    Alcotest.test_case "Prometheus exposition" `Quick test_metrics_prometheus;
    Alcotest.test_case "Prometheus bucket monotonicity" `Quick
      test_prometheus_bucket_monotonicity;
    test_prometheus_reparses;
    Alcotest.test_case "CLI flushes telemetry on failure" `Quick test_cli_flush_on_failure;
  ]
