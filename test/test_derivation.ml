(* The compact derivation recorder itself: bounded ring-buffer
   wrap-around (oldest records evicted, survivors still decodable, in
   order), deterministic window sampling under fixed seeds (the decision
   is a pure function of (seed, q), so repeated runs — and every shard
   of a sharded run — agree), and the exact per-shard merge of compact
   records at the Runtime join. *)

open Rtec

(* Every test restores the recorder to its defaults: the other suites
   share the process-global buffer. *)
let scoped f =
  Derivation.reset ();
  Fun.protect
    ~finally:(fun () ->
      Derivation.disable ();
      Derivation.set_sampling Derivation.Always;
      Derivation.set_capacity (1 lsl 20);
      Derivation.reset ())
    f

let maritime_dataset =
  lazy (Maritime.Dataset.generate ~config:{ seed = 7; replicas = 1; nominal = 2 } ())

let fleet_data = lazy (Fleet.generate ())

(* --- ring-buffer wrap-around --- *)

let test_ring_wraparound () =
  scoped (fun () ->
      (* A carry record is 5 words: 64 words hold at most 12 records. *)
      Derivation.set_capacity 64;
      Derivation.reset ();
      Derivation.enable ();
      let f = Term.app "f" [] and v = Term.app "true" [] in
      for t = 1 to 100 do
        Derivation.record_carry ~origin:"carry" ~fluent:f ~value:v ~time:t
      done;
      let s = Derivation.stats () in
      Alcotest.(check int) "every append counted" 100 s.Derivation.records;
      Alcotest.(check bool) "oldest records evicted" true (s.Derivation.evicted > 0);
      Alcotest.(check bool) "retention stays bounded" true
        (s.Derivation.retained_words <= 64);
      let times =
        Derivation.events ()
        |> List.filter_map (function
             | Derivation.Transition { time; _ } -> Some time
             | _ -> None)
      in
      Alcotest.(check int) "retained = appended - evicted"
        (100 - s.Derivation.evicted) (List.length times);
      (* the survivors are exactly the newest records, still in order *)
      let n = List.length times in
      Alcotest.(check (list int)) "newest suffix, in append order"
        (List.init n (fun i -> 100 - n + 1 + i))
        times)

let test_oversized_record_dropped () =
  scoped (fun () ->
      Derivation.set_capacity 16;
      Derivation.reset ();
      Derivation.enable ();
      let f = Term.app "f" [] and v = Term.app "true" [] in
      (* 3 + 2*20 words > 16: can never fit, must be dropped (counted as
         evicted), not loop forever evicting an empty ring. *)
      Derivation.record_input ~fluent:f ~value:v
        ~spans:(List.init 20 (fun i -> (i, i + 1)));
      let s = Derivation.stats () in
      Alcotest.(check int) "oversized record dropped" 1 s.Derivation.evicted;
      Alcotest.(check (list unit)) "nothing retained" []
        (List.map ignore (Derivation.events ())))

(* --- sampling determinism --- *)

let sampled_queries ~jobs ?shards ~sampling ~event_description ~knowledge ~stream () =
  scoped (fun () ->
      Derivation.set_sampling sampling;
      Derivation.enable ();
      let config = Runtime.config ~window:3600 ~step:1800 ~jobs ?shards () in
      match Runtime.run ~config ~event_description ~knowledge ~stream () with
      | Error e -> Alcotest.failf "run failed: %s" e
      | Ok (_, stats) ->
        let qs =
          Derivation.events ()
          |> List.filter_map (function
               | Derivation.Query { q; _ } -> Some q
               | _ -> None)
        in
        (stats, Derivation.stats (), List.sort_uniq compare qs))

let test_sampling_determinism () =
  let stream, knowledge = Lazy.force fleet_data in
  let ed = Domain.event_description Fleet.domain in
  let run ~jobs ?shards ~sampling () =
    sampled_queries ~jobs ?shards ~sampling ~event_description:ed ~knowledge ~stream ()
  in
  let full_stats, full_rec, full_qs = run ~jobs:1 ~sampling:Derivation.Always () in
  Alcotest.(check int) "Always samples every window" full_stats.Runtime.queries
    full_rec.Derivation.windows_sampled;
  Alcotest.(check int) "and skips none" 0 full_rec.Derivation.windows_skipped;
  (* Find a seed whose 1-in-3 subset is proper, so the assertions below
     cannot pass vacuously; the decision is Hashtbl.hash-based, so some
     seed in a small range always gives one. *)
  let sampling =
    let rec find seed =
      if seed > 16 then Alcotest.fail "no seed gives a proper 1-in-3 subset"
      else
        let s = Derivation.One_in { n = 3; seed } in
        let _, r, _ = run ~jobs:1 ~sampling:s () in
        if
          r.Derivation.windows_sampled > 0
          && r.Derivation.windows_skipped > 0
        then s
        else find (seed + 1)
    in
    find 0
  in
  let _, rec1, qs1 = run ~jobs:1 ~sampling () in
  let _, rec2, qs2 = run ~jobs:1 ~sampling () in
  Alcotest.(check (list int)) "same seed, same windows" qs1 qs2;
  Alcotest.(check int) "same seed, same counts" rec1.Derivation.windows_sampled
    rec2.Derivation.windows_sampled;
  Alcotest.(check int) "every window decided"
    (full_stats.Runtime.queries)
    (rec1.Derivation.windows_sampled + rec1.Derivation.windows_skipped);
  Alcotest.(check bool) "proper subset" true
    (List.length qs1 < List.length full_qs && qs1 <> []);
  (* Every shard of a sharded run makes the same decision per window:
     the sampled query-time set is unchanged, the per-shard counters are
     an exact multiple of the sequential ones. *)
  let _, rec4, qs4 = run ~jobs:4 ~shards:4 ~sampling () in
  Alcotest.(check (list int)) "shards agree on the sampled windows" qs1 qs4;
  let per_window = rec1.Derivation.windows_sampled + rec1.Derivation.windows_skipped in
  let par_total = rec4.Derivation.windows_sampled + rec4.Derivation.windows_skipped in
  Alcotest.(check bool) "per-shard decisions are a multiple of the grid" true
    (par_total mod per_window = 0
    && rec4.Derivation.windows_sampled = par_total / per_window * rec1.Derivation.windows_sampled)

(* --- exact shard merge --- *)

let recorded_events ~jobs ?shards ~event_description ~knowledge ~stream () =
  scoped (fun () ->
      Derivation.enable ();
      let config = Runtime.config ~window:3600 ~step:1800 ~jobs ?shards () in
      match Runtime.run ~config ~event_description ~knowledge ~stream () with
      | Error e -> Alcotest.failf "run failed: %s" e
      | Ok _ -> Derivation.events ())

let shard_merge_exact ~event_description ~knowledge ~stream () =
  let seq = recorded_events ~jobs:1 ~event_description ~knowledge ~stream () in
  let par = recorded_events ~jobs:4 ~shards:4 ~event_description ~knowledge ~stream () in
  let queries evs =
    List.length (List.filter (function Derivation.Query _ -> true | _ -> false) evs)
  in
  let strip evs =
    List.filter (function Derivation.Query _ -> false | _ -> true) evs
    |> List.sort compare
  in
  Alcotest.(check bool) "sequential run recorded" true (seq <> []);
  (* Entity-disjoint shards derive disjoint records; the id-translating
     merge at join must reassemble exactly the sequential multiset. *)
  Alcotest.(check bool) "identical merged records" true (strip seq = strip par);
  (* every shard walks the full query grid, stamping its own markers *)
  Alcotest.(check bool) "per-shard query markers" true
    (queries seq > 0 && queries par mod queries seq = 0 && queries par >= queries seq)

let test_shard_merge_maritime () =
  let d = Lazy.force maritime_dataset in
  shard_merge_exact ~event_description:Maritime.Gold.event_description
    ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()

let test_shard_merge_fleet () =
  let stream, knowledge = Lazy.force fleet_data in
  shard_merge_exact ~event_description:(Domain.event_description Fleet.domain) ~knowledge
    ~stream ()

let suite =
  [
    Alcotest.test_case "ring buffer wraps, evicting oldest" `Quick test_ring_wraparound;
    Alcotest.test_case "oversized record is dropped" `Quick test_oversized_record_dropped;
    Alcotest.test_case "sampling is deterministic under a fixed seed" `Slow
      test_sampling_determinism;
    Alcotest.test_case "shard merge is exact (maritime)" `Slow test_shard_merge_maritime;
    Alcotest.test_case "shard merge is exact (fleet)" `Slow test_shard_merge_fleet;
  ]
