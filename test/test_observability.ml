(* Unit tests for the live-introspection plane: the leveled structured
   logger (level floor, human and JSON-lines sinks), the bounded flight
   recorder (ring wrap, disable gate, JSON dump) and the admin HTTP
   endpoint (route dispatch, error statuses, clean stop). *)

open Telemetry

(* --- logger ---

   The logger is process-global; every test routes the sinks to a
   temporary file and restores the defaults (human -> stderr, no JSON,
   Info floor) on the way out. *)

let with_log_capture ~json f =
  let tmp = Filename.temp_file "adg_log" ".txt" in
  let oc = open_out tmp in
  if json then Log.set_json (Some oc) else Log.set_human (Some oc);
  if json then Log.set_human None;
  Fun.protect
    ~finally:(fun () ->
      Log.set_human (Some stderr);
      Log.set_json None;
      Log.set_level Log.Info;
      close_out_noerr oc;
      try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      f ();
      flush oc;
      let ic = open_in_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let test_log_level_floor () =
  let out =
    with_log_capture ~json:false (fun () ->
        Log.set_level Log.Warn;
        Log.debug ~src:"t" "dropped debug";
        Log.info ~src:"t" "dropped info";
        Log.warn ~src:"t" "kept warn";
        Log.error ~src:"t" "kept error")
  in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check int) "only warn and error rendered" 2 (List.length lines);
  let has needle line =
    let n = String.length needle and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "warn line tagged" true (has "WARN t: kept warn" (List.nth lines 0));
  Alcotest.(check bool) "error line tagged" true
    (has "ERROR t: kept error" (List.nth lines 1))

let test_log_human_fields () =
  let out =
    with_log_capture ~json:false (fun () ->
        Log.info ~src:"serve" "client connected"
          ~fields:[ ("client", Log.Int 3); ("addr", Log.Str "with space") ])
  in
  let has needle =
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "message present" true (has "client connected");
  Alcotest.(check bool) "int field bare" true (has "client=3");
  Alcotest.(check bool) "stringy field quoted" true (has "addr=\"with space\"")

let test_log_json_lines () =
  let out =
    with_log_capture ~json:true (fun () ->
        Log.set_level Log.Debug;
        Log.debug ~src:"feed" "first" ~fields:[ ("n", Log.Int 1) ];
        Log.warn ~src:"serve" "second" ~fields:[ ("ok", Log.Bool false) ])
  in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check int) "one JSON object per record" 2 (List.length lines);
  let parse line =
    match Json.of_string line with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "log line is not JSON (%s): %s" e line
  in
  let first = parse (List.nth lines 0) and second = parse (List.nth lines 1) in
  Alcotest.(check (option string)) "level field" (Some "debug")
    (Option.bind (Json.member "level" first) Json.str);
  Alcotest.(check (option string)) "src field" (Some "feed")
    (Option.bind (Json.member "src" first) Json.str);
  Alcotest.(check (option string)) "msg field" (Some "first")
    (Option.bind (Json.member "msg" first) Json.str);
  Alcotest.(check (option (float 0.))) "typed int field" (Some 1.)
    (Option.bind (Json.member "n" first) Json.num);
  Alcotest.(check bool) "typed bool field" true
    (Json.member "ok" second = Some (Json.Bool false));
  Alcotest.(check bool) "timestamp present" true
    (Option.is_some (Json.member "ts" second))

(* --- flight recorder --- *)

(* The recorder is process-global and enabled by default; tests shrink
   the ring, then restore the default capacity (which also clears it). *)
let flight_scoped f =
  Fun.protect
    ~finally:(fun () ->
      Flight.enable ();
      Flight.set_capacity 4096)
    f

let test_flight_ring_wrap () =
  flight_scoped (fun () ->
      Flight.set_capacity 4;
      for i = 1 to 7 do
        Flight.record Flight.Tick ~a:i ()
      done;
      Alcotest.(check int) "total counts every record" 7 (Flight.total ());
      let evs = Flight.events () in
      Alcotest.(check int) "ring keeps the last capacity records" 4 (List.length evs);
      Alcotest.(check (list int)) "oldest-first, newest retained" [ 4; 5; 6; 7 ]
        (List.map (fun (e : Flight.event) -> e.a) evs);
      Alcotest.(check bool) "timestamps non-decreasing" true
        (let rec ordered = function
           | (a : Flight.event) :: (b :: _ as rest) -> a.t_ns <= b.t_ns && ordered rest
           | _ -> true
         in
         ordered evs))

let test_flight_disable () =
  flight_scoped (fun () ->
      Flight.set_capacity 8;
      Flight.record Flight.Ingest ~a:1 ();
      Flight.disable ();
      Flight.record Flight.Ingest ~a:2 ();
      Flight.enable ();
      Alcotest.(check int) "disabled records are dropped" 1 (Flight.total ()))

let test_flight_json_dump () =
  flight_scoped (fun () ->
      Flight.set_capacity 8;
      Flight.record Flight.Session_start ();
      Flight.record Flight.Ingest ~a:120 ~b:3 ~c:1 ();
      Flight.record Flight.Client_drop ~a:2 ~b:1 ();
      let doc = Flight.to_json () in
      (* The dump must survive its own serialisation — what /lastz and
         the --flight-recorder file actually ship. *)
      let doc =
        match Json.of_string (Json.to_string ~indent:true doc) with
        | Ok d -> d
        | Error e -> Alcotest.failf "flight dump is not valid JSON: %s" e
      in
      Alcotest.(check (option string)) "schema" (Some "adg-flight/1")
        (Option.bind (Json.member "schema" doc) Json.str);
      Alcotest.(check (option (float 0.))) "recorded" (Some 3.)
        (Option.bind (Json.member "recorded" doc) Json.num);
      match Option.bind (Json.member "events" doc) Json.list with
      | Some [ start; ingest; drop ] ->
        Alcotest.(check (option string)) "kind names" (Some "session_start")
          (Option.bind (Json.member "kind" start) Json.str);
        Alcotest.(check (option (float 0.))) "ingest operand named" (Some 120.)
          (Option.bind (Json.member "items" ingest) Json.num);
        Alcotest.(check (option (float 0.))) "late operand named" (Some 3.)
          (Option.bind (Json.member "late" ingest) Json.num);
        Alcotest.(check (option (float 0.))) "drop slot named" (Some 2.)
          (Option.bind (Json.member "slot" drop) Json.num)
      | _ -> Alcotest.fail "expected exactly three flight events")

let test_flight_write_file () =
  flight_scoped (fun () ->
      Flight.set_capacity 8;
      Flight.record Flight.Evict ~a:1 ~b:2 ~c:300 ();
      let tmp = Filename.temp_file "adg_flight" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          Flight.write tmp;
          let ic = open_in_bin tmp in
          let contents =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Json.of_string contents with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "flight file is not valid JSON: %s" e))

(* --- admin endpoint --- *)

let http_request port ~meth ~path =
  let conn = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect conn (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let oc = Unix.out_channel_of_descr conn in
      output_string oc (Printf.sprintf "%s %s HTTP/1.0\r\nHost: localhost\r\n\r\n" meth path);
      flush oc;
      let ic = Unix.in_channel_of_descr conn in
      let buf = Buffer.create 256 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      Buffer.contents buf)

let status_of response =
  match String.split_on_char ' ' response with
  | _ :: code :: _ -> int_of_string code
  | _ -> Alcotest.failf "no status line in %S" response

let body_of response =
  let rec find i =
    if i + 4 > String.length response then String.length response
    else if String.sub response i 4 = "\r\n\r\n" then i + 4
    else find (i + 1)
  in
  let i = find 0 in
  String.sub response i (String.length response - i)

let with_admin routes f =
  match Admin.start ~port:0 ~routes with
  | Error e -> Alcotest.failf "admin start failed: %s" e
  | Ok t ->
    Fun.protect ~finally:(fun () -> Admin.stop t) (fun () -> f (Admin.port t))

let test_admin_routes () =
  let routes = function
    | "/ping" -> Some (Admin.text "pong")
    | "/doc" -> Some (Admin.json (Json.Obj [ ("ok", Json.Bool true) ]))
    | "/boom" -> failwith "handler exploded"
    | _ -> None
  in
  with_admin routes (fun port ->
      let r = http_request port ~meth:"GET" ~path:"/ping" in
      Alcotest.(check int) "text route status" 200 (status_of r);
      Alcotest.(check string) "text route body" "pong" (body_of r);
      let r = http_request port ~meth:"GET" ~path:"/doc?pretty=1" in
      Alcotest.(check int) "query string stripped" 200 (status_of r);
      (match Json.of_string (body_of r) with
      | Ok doc ->
        Alcotest.(check bool) "json body parses" true
          (Json.member "ok" doc = Some (Json.Bool true))
      | Error e -> Alcotest.failf "json route body invalid: %s" e);
      Alcotest.(check int) "unknown path is 404" 404
        (status_of (http_request port ~meth:"GET" ~path:"/missing"));
      Alcotest.(check int) "non-GET is 405" 405
        (status_of (http_request port ~meth:"POST" ~path:"/ping"));
      Alcotest.(check int) "raising handler is 500" 500
        (status_of (http_request port ~meth:"GET" ~path:"/boom")))

let test_admin_serial_requests () =
  (* One connection per request, served serially by the accept loop. *)
  let hits = ref 0 in
  let routes = function
    | "/count" ->
      incr hits;
      Some (Admin.text (string_of_int !hits))
    | _ -> None
  in
  with_admin routes (fun port ->
      for i = 1 to 5 do
        let r = http_request port ~meth:"GET" ~path:"/count" in
        Alcotest.(check string)
          (Printf.sprintf "request %d sees its own count" i)
          (string_of_int i) (body_of r)
      done)

let test_admin_stop_idempotent () =
  match Admin.start ~port:0 ~routes:(fun _ -> None) with
  | Error e -> Alcotest.failf "admin start failed: %s" e
  | Ok t ->
    let port = Admin.port t in
    Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
    Admin.stop t;
    Admin.stop t;
    (* The socket is gone: a fresh server can bind the same port. *)
    (match Admin.start ~port ~routes:(fun _ -> None) with
    | Ok t2 -> Admin.stop t2
    | Error e -> Alcotest.failf "port not released after stop: %s" e)

let test_admin_port_in_use () =
  with_admin (fun _ -> None) (fun port ->
      match Admin.start ~port ~routes:(fun _ -> None) with
      | Ok t2 ->
        Admin.stop t2;
        Alcotest.fail "second bind on a busy port should fail"
      | Error e ->
        Alcotest.(check bool) "error names the port" true
          (let needle = string_of_int port in
           let n = String.length needle and m = String.length e in
           let rec go i = i + n <= m && (String.sub e i n = needle || go (i + 1)) in
           go 0))

let suite =
  [
    Alcotest.test_case "log level floor" `Quick test_log_level_floor;
    Alcotest.test_case "log human rendering" `Quick test_log_human_fields;
    Alcotest.test_case "log JSON-lines sink" `Quick test_log_json_lines;
    Alcotest.test_case "flight ring wraps, keeps newest" `Quick test_flight_ring_wrap;
    Alcotest.test_case "flight disable gates recording" `Quick test_flight_disable;
    Alcotest.test_case "flight JSON dump" `Quick test_flight_json_dump;
    Alcotest.test_case "flight file write" `Quick test_flight_write_file;
    Alcotest.test_case "admin routes and statuses" `Quick test_admin_routes;
    Alcotest.test_case "admin serves requests serially" `Quick test_admin_serial_requests;
    Alcotest.test_case "admin stop is idempotent and releases the port" `Quick
      test_admin_stop_idempotent;
    Alcotest.test_case "admin reports a busy port" `Quick test_admin_port_in_use;
  ]
