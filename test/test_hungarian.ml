open Assignment

let test_known_3x3 () =
  let cost = [| [| 4.; 1.; 3. |]; [| 2.; 0.; 5. |]; [| 3.; 2.; 2. |] |] in
  let assignment, total = Kuhn_munkres.solve cost in
  Alcotest.(check (float 1e-9)) "optimal total" 5. total;
  (* 1 + 2 + 2: rows to columns 1, 0, 2. *)
  Alcotest.(check (array int)) "assignment" [| 1; 0; 2 |] assignment

let test_identity () =
  let n = 5 in
  let cost = Array.init n (fun i -> Array.init n (fun j -> if i = j then 0. else 1.)) in
  let assignment, total = Kuhn_munkres.solve cost in
  Alcotest.(check (float 1e-9)) "zero total" 0. total;
  Array.iteri (fun i j -> Alcotest.(check int) "diagonal" i j) assignment

let test_empty () =
  let assignment, total = Kuhn_munkres.solve [||] in
  Alcotest.(check int) "empty assignment" 0 (Array.length assignment);
  Alcotest.(check (float 1e-9)) "zero" 0. total

let test_non_square_rejected () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Kuhn_munkres.solve: matrix is not square") (fun () ->
      ignore (Kuhn_munkres.solve [| [| 1. |]; [| 1.; 2. |] |]))

let test_rectangular () =
  (* The cost matrix of Example 4.4: 3 expressions vs 2; the padded third
     column represents the unmatched expression. *)
  let cost = [| [| 1.; 0.25 |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let pairs, total = Kuhn_munkres.solve_rectangular cost in
  Alcotest.(check (float 1e-9)) "total of example 4.6" 0.25 total;
  Alcotest.(check bool) "pairs (0,1) and (1,0)" true
    (List.mem (0, 1) pairs && List.mem (1, 0) pairs);
  Alcotest.(check int) "only real columns reported" 2 (List.length pairs)

let test_rectangular_more_columns_rejected () =
  Alcotest.check_raises "columns > rows"
    (Invalid_argument "Kuhn_munkres.solve_rectangular: more columns than rows") (fun () ->
      ignore (Kuhn_munkres.solve_rectangular [| [| 1.; 2. |] |]))

(* Brute-force optimal assignment for small n. *)
let brute_force cost =
  let n = Array.length cost in
  let best = ref infinity in
  let rec go i used acc =
    if acc >= !best then ()
    else if i = n then best := acc
    else
      for j = 0 to n - 1 do
        if not used.(j) then begin
          used.(j) <- true;
          go (i + 1) used (acc +. cost.(i).(j));
          used.(j) <- false
        end
      done
  in
  go 0 (Array.make n false) 0.;
  !best

let matrix_gen =
  QCheck.Gen.(
    int_range 1 6 >>= fun n ->
    array_size (return n) (array_size (return n) (float_bound_inclusive 10.)))

let arbitrary_matrix =
  QCheck.make
    ~print:(fun m ->
      String.concat "\n"
        (Array.to_list
           (Array.map
              (fun row ->
                String.concat " " (Array.to_list (Array.map string_of_float row)))
              m)))
    matrix_gen

let prop_optimal =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"matches brute force on small matrices" ~count:200
       arbitrary_matrix (fun cost ->
         let _, total = Kuhn_munkres.solve cost in
         Float.abs (total -. brute_force cost) < 1e-6))

let prop_permutation =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"assignment is a permutation" ~count:200 arbitrary_matrix
       (fun cost ->
         let assignment, _ = Kuhn_munkres.solve cost in
         let seen = Array.make (Array.length cost) false in
         Array.for_all
           (fun j ->
             if j < 0 || j >= Array.length seen || seen.(j) then false
             else begin
               seen.(j) <- true;
               true
             end)
           assignment))

(* --- rectangular solver vs. the padded square oracle --- *)

(* The pad-to-square formulation the native rectangular solver replaced:
   missing columns become zero-cost "unmatched" slots and the square
   solver — kept as the differential oracle — does the work. *)
let padded_oracle cost =
  let m = Array.length cost in
  if m = 0 then ([], 0.)
  else begin
    let k = Array.length cost.(0) in
    let padded =
      Array.map (fun row -> Array.init m (fun j -> if j < k then row.(j) else 0.)) cost
    in
    let assignment, total = Kuhn_munkres.solve padded in
    let pairs = ref [] in
    for i = m - 1 downto 0 do
      if assignment.(i) < k then pairs := (i, assignment.(i)) :: !pairs
    done;
    (!pairs, total)
  end

let rect_matrix_gen =
  QCheck.Gen.(
    int_range 1 8 >>= fun m ->
    int_range 0 m >>= fun k ->
    array_size (return m) (array_size (return k) (float_bound_inclusive 10.)))

let arbitrary_rect_matrix =
  QCheck.make
    ~print:(fun m ->
      String.concat "\n"
        (Array.to_list
           (Array.map
              (fun row ->
                String.concat " " (Array.to_list (Array.map string_of_float row)))
              m)))
    rect_matrix_gen

let prop_rectangular_matches_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"rectangular total matches the padded square oracle"
       ~count:500 arbitrary_rect_matrix (fun cost ->
         let _, total = Kuhn_munkres.solve_rectangular cost in
         let _, oracle = padded_oracle cost in
         Float.abs (total -. oracle) < 1e-9))

let prop_rectangular_matching_valid =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"rectangular pairs are a full column matching"
       ~count:500 arbitrary_rect_matrix (fun cost ->
         let m = Array.length cost in
         let k = if m = 0 then 0 else Array.length cost.(0) in
         let pairs, total = Kuhn_munkres.solve_rectangular cost in
         let rows_seen = Array.make (max m 1) false in
         let cols_seen = Array.make (max k 1) false in
         List.length pairs = k
         && List.for_all
              (fun (i, j) ->
                i >= 0 && i < m && j >= 0 && j < k
                && (not rows_seen.(i)) && not cols_seen.(j)
                &&
                (rows_seen.(i) <- true;
                 cols_seen.(j) <- true;
                 true))
              pairs
         && Float.abs
              (total -. List.fold_left (fun acc (i, j) -> acc +. cost.(i).(j)) 0. pairs)
            < 1e-9))

(* --- greedy baseline --- *)

let test_greedy_suboptimal () =
  (* Greedy grabs the cheapest cell (0,0)=1 and is then forced into
     (1,1)=4: total 5; the optimal assignment is 2+2=4. *)
  let cost = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  let _, greedy_total = Greedy.solve_rectangular cost in
  let _, optimal_total = Kuhn_munkres.solve_rectangular cost in
  Alcotest.(check (float 1e-9)) "greedy total" 5. greedy_total;
  Alcotest.(check (float 1e-9)) "optimal total" 4. optimal_total

let test_greedy_rectangular () =
  let cost = [| [| 0.3 |]; [| 0.1 |]; [| 0.5 |] |] in
  let pairs, total = Greedy.solve_rectangular cost in
  Alcotest.(check (float 1e-9)) "picks the cheapest row" 0.1 total;
  Alcotest.(check (list (pair int int))) "pair" [ (1, 0) ] pairs

let prop_greedy_never_better =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"greedy never beats Kuhn-Munkres" ~count:300 arbitrary_matrix
       (fun cost ->
         let _, greedy_total = Greedy.solve_rectangular cost in
         let _, optimal_total = Kuhn_munkres.solve_rectangular cost in
         greedy_total >= optimal_total -. 1e-9))

let suite =
  [
    Alcotest.test_case "known 3x3 instance" `Quick test_known_3x3;
    Alcotest.test_case "greedy is suboptimal on crossing costs" `Quick
      test_greedy_suboptimal;
    Alcotest.test_case "greedy on rectangular matrices" `Quick test_greedy_rectangular;
    prop_greedy_never_better;
    Alcotest.test_case "identity matrix" `Quick test_identity;
    Alcotest.test_case "empty matrix" `Quick test_empty;
    Alcotest.test_case "non-square rejected" `Quick test_non_square_rejected;
    Alcotest.test_case "rectangular padding (Example 4.4)" `Quick test_rectangular;
    Alcotest.test_case "rectangular with more columns rejected" `Quick
      test_rectangular_more_columns_rejected;
    prop_optimal;
    prop_permutation;
    prop_rectangular_matches_oracle;
    prop_rectangular_matching_valid;
  ]
