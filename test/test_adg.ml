open Rtec

(* --- prompts --- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_prompt_r () =
  let r = Adg.Prompt.rtec_syntax () in
  List.iter
    (fun kw -> Alcotest.(check bool) ("prompt R mentions " ^ kw) true (contains ~needle:kw r))
    [ "initiatedAt"; "terminatedAt"; "holdsFor"; "holdsAt"; "happensAt"; "union_all";
      "intersect_all"; "relative_complement_all" ]

let test_prompt_f_schemes () =
  let cot = Adg.Prompt.fluent_kinds Adg.Prompt.Chain_of_thought in
  let few = Adg.Prompt.fluent_kinds Adg.Prompt.Few_shot in
  (* Chain-of-thought carries the explanation steps; few-shot does not. *)
  Alcotest.(check bool) "CoT has explanations" true
    (contains ~needle:"Answer: The activity 'withinArea' is expressed" cot);
  Alcotest.(check bool) "few-shot omits explanations" false
    (contains ~needle:"Answer: The activity 'withinArea' is expressed" few);
  List.iter
    (fun p ->
      Alcotest.(check bool) "both quote rule (1)" true
        (contains ~needle:"happensAt(entersArea(Vessel, Area), T)" p);
      Alcotest.(check bool) "both quote the underWay rule" true
        (contains ~needle:"union_all([I1, I2, I3], I)" p))
    [ cot; few ]

let test_prompt_e_t () =
  let e = Adg.Prompt.events_and_fluents () in
  List.iter
    (fun (it : Maritime.Vocabulary.item) ->
      Alcotest.(check bool) ("prompt E lists " ^ it.name) true (contains ~needle:it.name e))
    Maritime.Vocabulary.input_events;
  Alcotest.(check bool) "prompt E lists proximity" true (contains ~needle:"proximity" e);
  let t = Adg.Prompt.thresholds () in
  List.iter
    (fun (th : Maritime.Vocabulary.threshold) ->
      Alcotest.(check bool) ("prompt T lists " ^ th.id) true (contains ~needle:th.id t))
    Maritime.Vocabulary.thresholds

let test_prompt_g_roundtrip () =
  let entry = Maritime.Gold.entry "trawling" in
  let g = Adg.Prompt.generation ~activity:"trawling" ~description:entry.nl in
  match Adg.Prompt.extract_description g with
  | Some d -> Alcotest.(check string) "description recovered" (String.trim entry.nl) d
  | None -> Alcotest.fail "description not recovered from prompt G"

(* --- error model --- *)

let def name = Maritime.Gold.definition name

let test_rename () =
  let d = Adg.Error_model.apply (Adg.Error_model.Rename ("entersArea", "inArea")) (def "withinArea") in
  let text = Printer.definition_to_string d in
  Alcotest.(check bool) "renamed" true (contains ~needle:"inArea" text);
  Alcotest.(check bool) "old name gone" false (contains ~needle:"entersArea" text)

let test_transpose () =
  let d =
    Adg.Error_model.apply (Adg.Error_model.Transpose_args "areaType") (def "withinArea")
  in
  Alcotest.(check bool) "arguments reversed" true
    (contains ~needle:"areaType(AreaType, Area)" (Printer.definition_to_string d))

let test_confuse_union () =
  let d = Adg.Error_model.apply Adg.Error_model.Confuse_union (def "underWay") in
  let text = Printer.definition_to_string d in
  Alcotest.(check bool) "union replaced" false (contains ~needle:"union_all" text);
  Alcotest.(check bool) "intersect present" true (contains ~needle:"intersect_all" text)

let test_wrong_kind_sd () =
  let d = Adg.Error_model.apply Adg.Error_model.Wrong_kind (def "trawling") in
  Alcotest.(check bool) "now a simple fluent" true
    (List.for_all
       (fun r ->
         match Ast.kind_of_rule r with
         | Some (Ast.Initiated _ | Ast.Terminated _) -> true
         | _ -> false)
       d.rules)

let test_wrong_kind_simple () =
  let d = Adg.Error_model.apply Adg.Error_model.Wrong_kind (def "movingSpeed") in
  Alcotest.(check bool) "now statically determined" true
    (List.for_all
       (fun r ->
         match Ast.kind_of_rule r with Some (Ast.Holds_for _) -> true | _ -> false)
       d.rules);
  (* one holdsFor rule per value of the multi-valued fluent *)
  Alcotest.(check int) "three values" 3 (List.length d.rules)

let test_drop_rule_and_condition () =
  let base = def "withinArea" in
  let dropped = Adg.Error_model.apply (Adg.Error_model.Drop_rule 2) base in
  Alcotest.(check int) "one rule fewer" (List.length base.rules - 1)
    (List.length dropped.rules);
  let narrowed = Adg.Error_model.apply (Adg.Error_model.Drop_condition 0) base in
  Alcotest.(check int) "one condition fewer"
    (List.length (List.hd base.rules).body - 1)
    (List.length (List.hd narrowed.rules).body)

let test_extra_rule_and_redundant () =
  let base = def "trawling" in
  let extra = Adg.Error_model.apply Adg.Error_model.Extra_rule base in
  Alcotest.(check int) "one extra rule" (List.length base.rules + 1)
    (List.length extra.rules);
  let redundant = Adg.Error_model.apply Adg.Error_model.Add_redundant base in
  Alcotest.(check int) "one extra condition"
    (List.length (List.hd base.rules).body + 1)
    (List.length (List.hd redundant.rules).body)

let test_replace_reference () =
  let d =
    Adg.Error_model.apply
      (Adg.Error_model.Replace_reference ("trawlSpeed", "towingSpeed"))
      (def "trawling")
  in
  let text = Printer.definition_to_string d in
  Alcotest.(check bool) "reference replaced" true (contains ~needle:"towingSpeed" text)

let test_synonyms_bijective_enough () =
  (* canonical_of inverts variant_of for every entry. *)
  List.iter
    (fun (c, v) ->
      Alcotest.(check (option string)) ("canonical of " ^ v) (Some c)
        (Adg.Error_model.canonical_of v))
    Adg.Error_model.synonyms

(* --- profiles and sessions --- *)

let test_profiles_deterministic () =
  let p = Adg.Profiles.find ~model:"GPT-4o" ~scheme:Adg.Prompt.Chain_of_thought in
  let m1 = Adg.Profiles.mutations_for p ~activity:"trawling" in
  let m2 = Adg.Profiles.mutations_for p ~activity:"trawling" in
  Alcotest.(check bool) "same mutations twice" true (m1 = m2)

let test_profiles_pinned_present () =
  let p = Adg.Profiles.find ~model:"Gemma-2" ~scheme:Adg.Prompt.Chain_of_thought in
  let ms = Adg.Profiles.mutations_for p ~activity:"trawling" in
  Alcotest.(check bool) "wrong kind pinned for Gemma-2 trawling" true
    (List.mem Adg.Error_model.Wrong_kind ms)

let test_session_runs () =
  let p = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot in
  let session = Adg.Session.run (Adg.Profiles.backend p) in
  Alcotest.(check int) "one definition per gold entry"
    (List.length Maritime.Gold.entries)
    (List.length session.definitions);
  Alcotest.(check int) "preamble plus one exchange per activity"
    (4 + List.length Maritime.Gold.entries)
    (List.length session.transcript);
  Alcotest.(check int) "everything parses" 0 (List.length (Adg.Session.parse_failures session));
  (* The o1 trawlSpeed definition uses the 'trawlingArea' constant the
     paper had to rename back to 'fishing'. *)
  match
    List.find_opt
      (fun (d : Adg.Session.generated_definition) -> d.activity = "trawlSpeed")
      session.definitions
  with
  | Some d -> Alcotest.(check bool) "trawlingArea present" true
                (contains ~needle:"trawlingArea" d.raw)
  | None -> Alcotest.fail "no trawlSpeed definition"

(* The abstract backend seam: middleware wraps any backend by building a
   new one around its [complete] function, with full access to the
   wrapped backend's identity through the accessors. *)
let test_backend_middleware_wrap () =
  let p = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot in
  let inner = Adg.Profiles.backend p in
  let calls = ref 0 in
  let logged =
    Adg.Backend.make ~model:(Adg.Backend.model inner) ~scheme:(Adg.Backend.scheme inner)
      ~complete:(fun ~history ~prompt ->
        incr calls;
        Adg.Backend.complete inner ~history ~prompt)
  in
  Alcotest.(check string) "label passes through" (Adg.Backend.label inner)
    (Adg.Backend.label logged);
  let session = Adg.Session.run ~activities:[ "trawling" ] logged in
  Alcotest.(check bool) "middleware saw every call" true (!calls > 0);
  Alcotest.(check int) "transcript length matches call count" !calls
    (List.length session.transcript);
  Alcotest.(check int) "wrapped session parses" 0
    (List.length (Adg.Session.parse_failures session))

let test_reported_scheme_wins () =
  List.iter
    (fun model ->
      let sim scheme =
        let g = Evaluation.Experiments.generate ~model ~scheme () in
        g.average
      in
      let reported = Adg.Profiles.reported_scheme model in
      let other =
        match reported with
        | Adg.Prompt.Few_shot -> Adg.Prompt.Chain_of_thought
        | Adg.Prompt.Chain_of_thought -> Adg.Prompt.Few_shot
      in
      Alcotest.(check bool)
        (model ^ ": reported scheme is at least as good")
        true
        (sim reported >= sim other))
    Adg.Profiles.models

(* --- correction --- *)

let test_edit_distance () =
  Alcotest.(check int) "identical" 0 (Adg.Correction.edit_distance "abc" "abc");
  Alcotest.(check int) "substitution" 1 (Adg.Correction.edit_distance "abc" "abd");
  Alcotest.(check int) "insertion" 1 (Adg.Correction.edit_distance "abc" "abcd");
  Alcotest.(check int) "deletion" 1 (Adg.Correction.edit_distance "abc" "ab");
  Alcotest.(check int) "kitten/sitting" 3 (Adg.Correction.edit_distance "kitten" "sitting")

let test_correction_fixes_synonyms () =
  let mutated =
    Adg.Error_model.apply_all
      [ Adg.Error_model.Rename ("leavesArea", "exitsArea");
        Adg.Error_model.Rename ("fishing", "trawlingArea") ]
      (def "trawlSpeed")
  in
  let ed, report =
    Adg.Correction.correct_event_description ~known:Maritime.Vocabulary.known_names
      [ mutated ]
  in
  let text = Printer.event_description_to_string ed in
  Alcotest.(check bool) "leavesArea restored" true (contains ~needle:"leavesArea" text);
  Alcotest.(check bool) "no leftover variant" false (contains ~needle:"exitsArea" text);
  Alcotest.(check bool) "trawlingArea mapped back to fishing" true
    (contains ~needle:"fishing" text && not (contains ~needle:"trawlingArea" text));
  Alcotest.(check int) "two changes" 2 (List.length report.changes)

let test_correction_realigns_heads () =
  let renamed = Adg.Error_model.apply (Adg.Error_model.Rename ("trawling", "illegalTowing")) (def "trawling") in
  let ed, report =
    Adg.Correction.correct_event_description ~known:Maritime.Vocabulary.known_names
      [ renamed ]
  in
  (match Ast.definition ed "trawling" with
  | Some d -> (
    match Ast.head_indicator (List.hd d.rules) with
    | Some ("trawling", 1) -> ()
    | _ -> Alcotest.fail "head not realigned")
  | None -> Alcotest.fail "definition lost");
  Alcotest.(check bool) "a change was recorded" true (report.changes <> [])

let test_correction_preserves_semantics_errors () =
  (* The corrector must not fix union/intersect confusion. *)
  let confused = Adg.Error_model.apply Adg.Error_model.Confuse_union (def "loitering") in
  let ed, _ =
    Adg.Correction.correct_event_description ~known:Maritime.Vocabulary.known_names
      [ confused ]
  in
  Alcotest.(check bool) "intersect_all still there" true
    (contains ~needle:"intersect_all" (Printer.event_description_to_string ed))

let test_correction_improves_similarity () =
  let p = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot in
  let session = Adg.Session.run (Adg.Profiles.backend p) in
  let before =
    Evaluation.Experiments.similarity_of_definition session "trawling"
  in
  let ed, _ = Adg.Correction.correct session in
  let after =
    match Ast.definition ed "trawling" with
    | Some d -> Similarity.Distance.similarity d.rules (def "trawling").rules
    | None -> 0.
  in
  Alcotest.(check bool)
    (Printf.sprintf "correction does not hurt (%.3f -> %.3f)" before after)
    true (after >= before)

let suite =
  [
    Alcotest.test_case "prompt R covers the RTEC predicates" `Quick test_prompt_r;
    Alcotest.test_case "prompt F: chain-of-thought vs few-shot" `Quick test_prompt_f_schemes;
    Alcotest.test_case "prompts E and T quote the vocabulary" `Quick test_prompt_e_t;
    Alcotest.test_case "prompt G description round-trips" `Quick test_prompt_g_roundtrip;
    Alcotest.test_case "mutation: rename" `Quick test_rename;
    Alcotest.test_case "mutation: transpose arguments" `Quick test_transpose;
    Alcotest.test_case "mutation: union/intersect confusion" `Quick test_confuse_union;
    Alcotest.test_case "mutation: wrong kind (SD to simple)" `Quick test_wrong_kind_sd;
    Alcotest.test_case "mutation: wrong kind (simple to SD)" `Quick test_wrong_kind_simple;
    Alcotest.test_case "mutation: drop rule / condition" `Quick test_drop_rule_and_condition;
    Alcotest.test_case "mutation: extra rule / redundant condition" `Quick
      test_extra_rule_and_redundant;
    Alcotest.test_case "mutation: undefined reference" `Quick test_replace_reference;
    Alcotest.test_case "synonym lexicon inverts" `Quick test_synonyms_bijective_enough;
    Alcotest.test_case "profiles are deterministic" `Quick test_profiles_deterministic;
    Alcotest.test_case "pinned mutations are applied" `Quick test_profiles_pinned_present;
    Alcotest.test_case "a session generates every activity" `Quick test_session_runs;
    Alcotest.test_case "backend middleware wraps through the abstract seam" `Quick
      test_backend_middleware_wrap;
    Alcotest.test_case "the reported scheme wins" `Quick test_reported_scheme_wins;
    Alcotest.test_case "edit distance" `Quick test_edit_distance;
    Alcotest.test_case "correction fixes naming errors" `Quick test_correction_fixes_synonyms;
    Alcotest.test_case "correction realigns activity heads" `Quick
      test_correction_realigns_heads;
    Alcotest.test_case "correction leaves semantic errors" `Quick
      test_correction_preserves_semantics_errors;
    Alcotest.test_case "correction improves similarity" `Quick
      test_correction_improves_similarity;
  ]
