open Rtec

let ev time src = { Stream.time; term = Parser.parse_term src }

let test_make_rejects_nonground () =
  Alcotest.(check bool) "non-ground event rejected" true
    (try
       ignore (Stream.make [ ev 1 "entersArea(V, a1)" ]);
       false
     with Invalid_argument _ -> true)

let sample =
  Stream.make
    [ ev 10 "ping(a)"; ev 20 "ping(b)"; ev 20 "pong(a)"; ev 30 "ping(a)"; ev 40 "pong(b)" ]

let test_extent_and_size () =
  Alcotest.(check (pair int int)) "extent" (10, 40) (Stream.extent sample);
  Alcotest.(check int) "size" 5 (Stream.size sample);
  Alcotest.(check (pair int int)) "empty extent" (0, 0) (Stream.extent (Stream.make []))

let test_events_in_boundaries () =
  let count ~from ~until =
    List.length (Stream.events_in sample ~functor_:("ping", 1) ~from ~until)
  in
  Alcotest.(check int) "inclusive bounds" 3 (count ~from:10 ~until:30);
  Alcotest.(check int) "from boundary" 2 (count ~from:20 ~until:30);
  Alcotest.(check int) "until boundary" 2 (count ~from:10 ~until:20);
  Alcotest.(check int) "empty range" 0 (count ~from:21 ~until:29);
  Alcotest.(check int) "unknown functor" 0
    (List.length (Stream.events_in sample ~functor_:("zap", 1) ~from:0 ~until:100))

let test_events_at () =
  Alcotest.(check int) "two indicators at t=20" 1
    (List.length (Stream.events_at sample ~functor_:("ping", 1) ~time:20));
  Alcotest.(check int) "pong at t=20" 1
    (List.length (Stream.events_at sample ~functor_:("pong", 1) ~time:20))

let test_indicators_and_append () =
  Alcotest.(check int) "two indicators" 2 (List.length (Stream.indicators sample));
  let more = Stream.make [ ev 50 "zap(c)" ] in
  let combined = Stream.append sample more in
  Alcotest.(check int) "append grows" 6 (Stream.size combined);
  Alcotest.(check (pair int int)) "extent extends" (10, 50) (Stream.extent combined)

let test_count_in () =
  Alcotest.(check int) "all events" 5 (Stream.count_in sample ~from:0 ~until:100);
  Alcotest.(check int) "inclusive bounds" 3 (Stream.count_in sample ~from:20 ~until:30);
  Alcotest.(check int) "empty range" 0 (Stream.count_in sample ~from:21 ~until:29);
  Alcotest.(check int) "inverted range" 0 (Stream.count_in sample ~from:30 ~until:20);
  Alcotest.(check int) "agrees with a filter over events"
    (List.length
       (List.filter
          (fun (e : Stream.event) -> e.time >= 15 && e.time <= 35)
          (Stream.events sample)))
    (Stream.count_in sample ~from:15 ~until:35)

let test_input_fluent_dedup () =
  let fv = (Parser.parse_term "proximity(a, b)", Term.Atom "true") in
  (* make: duplicate keys union their interval lists *)
  let s =
    Stream.make
      ~input_fluents:
        [ (fv, Interval.of_list [ (1, 5) ]); (fv, Interval.of_list [ (4, 9) ]) ]
      [ ev 1 "ping(a)" ]
  in
  (match Stream.input_fluents s with
  | [ (_, spans) ] ->
    Alcotest.(check (list (pair int int))) "make unions duplicates" [ (1, 9) ]
      (Interval.to_list spans)
  | l -> Alcotest.failf "expected one input fluent, got %d" (List.length l));
  (* append: keys common to both streams are merged, not concatenated *)
  let a = Stream.make ~input_fluents:[ (fv, Interval.of_list [ (1, 3) ]) ] [ ev 1 "ping(a)" ] in
  let b = Stream.make ~input_fluents:[ (fv, Interval.of_list [ (7, 9) ]) ] [ ev 2 "pong(b)" ] in
  match Stream.input_fluents (Stream.append a b) with
  | [ (_, spans) ] ->
    Alcotest.(check (list (pair int int))) "append unions duplicates" [ (1, 3); (7, 9) ]
      (Interval.to_list spans)
  | l -> Alcotest.failf "expected one input fluent, got %d" (List.length l)

let test_events_sorted () =
  let shuffled = Stream.make [ ev 30 "e(a)"; ev 10 "e(b)"; ev 20 "e(c)" ] in
  let times = List.map (fun (e : Stream.event) -> e.time) (Stream.events shuffled) in
  Alcotest.(check (list int)) "sorted by time" [ 10; 20; 30 ] times

(* --- knowledge --- *)

let kb =
  Knowledge.of_source
    "areaType(a1, fishing). areaType(a2, natura). vesselType(v1, tug). \
     thresholds(speedMax, 5.0)."

let test_knowledge_solve () =
  let pattern = Parser.parse_term "areaType(A, fishing)" in
  let solutions = Knowledge.solve kb Subst.empty pattern in
  Alcotest.(check int) "one fishing area" 1 (List.length solutions);
  let all = Knowledge.solve kb Subst.empty (Parser.parse_term "areaType(A, T)") in
  Alcotest.(check int) "two areas" 2 (List.length all);
  Alcotest.(check int) "no match" 0
    (List.length (Knowledge.solve kb Subst.empty (Parser.parse_term "areaType(a9, T)")))

let test_knowledge_solve_respects_subst () =
  let s = Option.get (Unify.unify (Term.Var "A") (Term.Atom "a2")) in
  let solutions = Knowledge.solve kb s (Parser.parse_term "areaType(A, T)") in
  Alcotest.(check int) "bound variable restricts" 1 (List.length solutions);
  match solutions with
  | [ s' ] ->
    Alcotest.(check string) "type of a2" "natura"
      (Term.to_string (Subst.apply s' (Term.Var "T")))
  | _ -> Alcotest.fail "expected one solution"

let test_knowledge_threshold () =
  Alcotest.(check (option (float 1e-9))) "threshold lookup" (Some 5.0)
    (Knowledge.threshold kb "speedMax");
  Alcotest.(check (option (float 1e-9))) "missing threshold" None
    (Knowledge.threshold kb "nope")

let test_knowledge_rejects () =
  Alcotest.(check bool) "non-ground fact rejected" true
    (try
       ignore (Knowledge.add (Parser.parse_term "areaType(A, fishing)") Knowledge.empty);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rule rejected as fact source" true
    (try
       ignore (Knowledge.of_source "p(a) :- q(a).");
       false
     with Invalid_argument _ -> true)

let test_knowledge_size_facts () =
  Alcotest.(check int) "size" 4 (Knowledge.size kb);
  Alcotest.(check int) "facts listed" 4 (List.length (Knowledge.facts kb))

(* --- serialisation --- *)

let test_io_roundtrip () =
  let stream =
    Stream.make
      ~input_fluents:
        [ ((Parser.parse_term "proximity(a, b)", Term.Atom "true"),
           Interval.of_list [ (3, 9); (12, 20) ]);
          ((Parser.parse_term "proximity(b, c)", Term.Atom "true"),
           [ Interval.make 5 Interval.infinity ]) ]
      [ ev 10 "ping(a)"; ev 20 "pong(b)" ]
  in
  let reread = Io.stream_of_string (Io.stream_to_string stream) in
  Alcotest.(check int) "event count" (Stream.size stream) (Stream.size reread);
  Alcotest.(check bool) "events equal" true
    (List.for_all2
       (fun (a : Stream.event) (b : Stream.event) ->
         a.time = b.time && Term.equal a.term b.term)
       (Stream.events stream) (Stream.events reread));
  Alcotest.(check int) "fluent count" 2 (List.length (Stream.input_fluents reread));
  let spans_of s (f, v) =
    List.find_map
      (fun ((f', v'), spans) ->
        if Term.equal f f' && Term.equal v v' then Some spans else None)
      (Stream.input_fluents s)
  in
  let fv = (Parser.parse_term "proximity(b, c)", Term.Atom "true") in
  Alcotest.(check bool) "open interval survives" true
    (spans_of stream fv = spans_of reread fv)

let dataset_small =
  lazy
    (Maritime.Dataset.generate
       ~config:{ Maritime.Dataset.seed = 5; replicas = 1; nominal = 0 } ())

let test_io_dataset_roundtrip () =
  let data = Lazy.force dataset_small in
  let reread = Io.stream_of_string (Io.stream_to_string data.Maritime.Dataset.stream) in
  Alcotest.(check int) "dataset stream round-trips"
    (Stream.size data.stream) (Stream.size reread);
  let kb = Io.knowledge_of_string (Io.knowledge_to_string data.knowledge) in
  Alcotest.(check int) "dataset knowledge round-trips"
    (Knowledge.size data.knowledge) (Knowledge.size kb)

let test_io_rejects_garbage () =
  Alcotest.(check bool) "unexpected fact rejected" true
    (try
       ignore (Io.stream_of_string "frobnicate(a).");
       false
     with Invalid_argument _ -> true)

(* --- qcheck property: amortised appends == one-shot build ---

   A random ingestion trace — batches of events (tiny vocabulary, so
   indicators collide and equal-time ties are common) and input-fluent
   items, with [drop_before] interleaved — applied incrementally with
   [append_items] must be indistinguishable from a one-shot [of_items]
   build over the same surviving items: same events in the same order
   (ties included), same per-indicator indexes, extent, counts and
   fluents. [drop_before] forces the pending tail mid-trace, so the
   trace also exercises query-after-burst packing, not just one final
   merge. *)

type trace_step =
  | Batch of Stream.event list * ((Term.t * Term.t) * Interval.t) list
  | Drop of int

let gen_event =
  QCheck.Gen.(
    map3
      (fun name arg time -> { Stream.time; term = Term.app name [ Term.Atom arg ] })
      (oneofl [ "ping"; "pong"; "zap" ])
      (oneofl [ "a"; "b"; "c"; "d" ])
      (int_range 0 120))

let gen_fluent =
  QCheck.Gen.(
    map3
      (fun a b (s, len) ->
        ( (Term.app "proximity" [ Term.Atom a; Term.Atom b ], Term.Atom "true"),
          Interval.of_list [ (s, s + len + 1) ] ))
      (oneofl [ "a"; "b" ])
      (oneofl [ "c"; "d" ])
      (pair (int_range 0 100) (int_range 0 20)))

let gen_step =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map2
            (fun evs fls -> Batch (evs, fls))
            (list_size (int_range 0 8) gen_event)
            (list_size (int_range 0 2) gen_fluent) );
        (1, map (fun t -> Drop t) (int_range 0 120));
      ])

let arbitrary_trace =
  QCheck.make
    ~print:(fun steps ->
      String.concat "; "
        (List.map
           (function
             | Batch (evs, fls) ->
               Printf.sprintf "batch[%s | %d fluents]"
                 (String.concat ", "
                    (List.map
                       (fun (e : Stream.event) ->
                         Printf.sprintf "%s@%d" (Term.to_string e.term) e.time)
                       evs))
                 (List.length fls)
             | Drop t -> Printf.sprintf "drop<%d" t)
           steps))
    QCheck.Gen.(list_size (int_range 1 10) gen_step)

let incremental steps =
  List.fold_left
    (fun s -> function
      | Batch (evs, fls) -> Stream.append_items s ~input_fluents:fls (Array.of_list evs)
      | Drop t -> Stream.drop_before s t)
    (Stream.of_items []) steps

(* The reference applies the documented semantics literally: each batch
   is stably sorted by time (append_items' in-batch ordering), batches
   concatenate in arrival order, a drop filters only what has arrived so
   far, and the single [of_items] at the end owes its tie order to the
   concatenation (its stable sort keeps insertion order). *)
let reference steps =
  let evs, fls =
    List.fold_left
      (fun (evs, fls) -> function
        | Batch (b_evs, b_fls) ->
          ( evs
            @ List.stable_sort (fun (a : Stream.event) b -> compare a.time b.time) b_evs,
            fls @ b_fls )
        | Drop t -> (List.filter (fun (e : Stream.event) -> e.time >= t) evs, fls))
      ([], []) steps
  in
  Stream.of_items
    (List.map (fun e -> Stream.Event e) evs
    @ List.map (fun (fv, spans) -> Stream.Fluent (fv, spans)) fls)

let observe s =
  let norm_events evs =
    List.map (fun (e : Stream.event) -> (e.time, Term.to_string e.term)) evs
  in
  ( norm_events (Stream.events s),
    Stream.size s,
    Stream.extent s,
    List.sort compare (Stream.indicators s),
    List.map
      (fun functor_ ->
        ( norm_events (Array.to_list (Stream.indexed s ~functor_)),
          norm_events (Stream.events_in s ~functor_ ~from:20 ~until:90),
          norm_events (Stream.events_at s ~functor_ ~time:60) ))
      [ ("ping", 1); ("pong", 1); ("zap", 1) ],
    Stream.count_in s ~from:15 ~until:100,
    List.sort compare
      (List.map
         (fun ((f, v), spans) ->
           (Term.to_string f, Term.to_string v, Interval.to_list spans))
         (Stream.input_fluents s)) )

let prop_appends_match_build steps = observe (incremental steps) = observe (reference steps)

let qtest name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 arb law)

let suite =
  [
    Alcotest.test_case "non-ground events rejected" `Quick test_make_rejects_nonground;
    qtest "random appends + drop_before == one of_items build" arbitrary_trace
      prop_appends_match_build;
    Alcotest.test_case "io: stream round-trip" `Quick test_io_roundtrip;
    Alcotest.test_case "io: dataset round-trip" `Quick test_io_dataset_roundtrip;
    Alcotest.test_case "io: garbage rejected" `Quick test_io_rejects_garbage;
    Alcotest.test_case "extent and size" `Quick test_extent_and_size;
    Alcotest.test_case "events_in boundaries" `Quick test_events_in_boundaries;
    Alcotest.test_case "count_in binary search" `Quick test_count_in;
    Alcotest.test_case "input fluents deduplicated" `Quick test_input_fluent_dedup;
    Alcotest.test_case "events_at" `Quick test_events_at;
    Alcotest.test_case "indicators and append" `Quick test_indicators_and_append;
    Alcotest.test_case "events come out sorted" `Quick test_events_sorted;
    Alcotest.test_case "knowledge: solve" `Quick test_knowledge_solve;
    Alcotest.test_case "knowledge: solve under substitution" `Quick
      test_knowledge_solve_respects_subst;
    Alcotest.test_case "knowledge: thresholds" `Quick test_knowledge_threshold;
    Alcotest.test_case "knowledge: invalid input rejected" `Quick test_knowledge_rejects;
    Alcotest.test_case "knowledge: size and facts" `Quick test_knowledge_size_facts;
  ]
