(* The rule compiler against its differential oracle: recognition with
   [compile:true] must be bit-identical — same fluent-value pairs, same
   intervals, same result order, same telemetry counters, same
   derivation records — to the interpreted run, on the full gold
   catalogues, on randomised streams, sequentially and sharded, with
   every instrumentation mode on and off. Plus unit tests for the
   intern-table invariants the compiled closures rely on. *)

open Rtec

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* Bit-identity means physical result-list order too, so compare with
   structural equality on the raw result, not on a sorted projection. *)
let check_identical msg compiled interpreted =
  Alcotest.(check bool) (msg ^ ": same fvp order") true
    (List.map fst compiled = List.map fst interpreted);
  Alcotest.(check bool) (msg ^ ": same intervals") true
    (List.for_all2
       (fun (_, a) (_, b) -> Interval.equal a b)
       compiled interpreted)

let window_run ~compile ~event_description ~knowledge ~stream () =
  match
    Window.run ~window:3600 ~step:1800 ~compile ~event_description ~knowledge ~stream ()
  with
  | Ok (r, _) -> r
  | Error e -> failwith e

(* --- gold catalogues --- *)

let maritime_dataset =
  lazy
    (Maritime.Dataset.generate
       ~config:{ Maritime.Dataset.seed = 7; replicas = 1; nominal = 1 }
       ())

let test_maritime_gold () =
  let d = Lazy.force maritime_dataset in
  let run compile =
    window_run ~compile ~event_description:Maritime.Gold.event_description
      ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()
  in
  let compiled = run true and interpreted = run false in
  Alcotest.(check bool) "recognises something" true (compiled <> []);
  check_identical "maritime gold" compiled interpreted

let test_fleet_gold () =
  let stream, knowledge = Fleet.generate () in
  let ed = Domain.event_description Fleet.domain in
  let run compile = window_run ~compile ~event_description:ed ~knowledge ~stream () in
  let compiled = run true and interpreted = run false in
  Alcotest.(check bool) "recognises something" true (compiled <> []);
  check_identical "fleet gold" compiled interpreted

(* Nearly the whole gold catalogue must actually compile: a silent mass
   fallback would pass every differential test while deleting the
   optimisation. One gold rule (a termination with an unbound head
   variable) is legitimately interpreted. *)
let test_gold_compiles () =
  let d = Lazy.force maritime_dataset in
  let program =
    Compiled.compile ~event_description:Maritime.Gold.event_description
      ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()
  in
  let compiled, fallback = Compiled.stats program in
  Alcotest.(check bool) "most rules compile" true (compiled >= 60);
  Alcotest.(check bool) "at most one fallback" true (fallback <= 1)

(* --- sharded runtime --- *)

let runtime_run ?shards ~jobs ~compile ~event_description ~knowledge ~stream () =
  match
    Runtime.run
      ~config:(Runtime.config ~window:3600 ~step:1800 ~jobs ?shards ~compile ())
      ~event_description ~knowledge ~stream ()
  with
  | Ok (r, _) -> r
  | Error e -> failwith e

(* [shards:4] forces the partition even where the clamp serialises the
   domains: each shard compiles its own program, and the merged result
   must still be bit-identical to the sequential interpreter. *)
let test_sharded () =
  let d = Lazy.force maritime_dataset in
  let run ?shards ~jobs ~compile () =
    runtime_run ?shards ~jobs ~compile ~event_description:Maritime.Gold.event_description
      ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()
  in
  let interpreted = run ~jobs:1 ~compile:false () in
  check_identical "jobs 1" (run ~jobs:1 ~compile:true ()) interpreted;
  check_identical "jobs 4" (run ~jobs:4 ~shards:4 ~compile:true ()) interpreted;
  check_identical "jobs 4 interpreted" (run ~jobs:4 ~shards:4 ~compile:false ()) interpreted

(* --- instrumentation modes --- *)

(* The compiled evaluator must charge the shared counters exactly like
   the interpreter: rule evaluations one per transition rule per window,
   cache probes one hit or miss per holdsAt resolution. Only the
   compiled.hit/miss split may differ (it reports which evaluator ran). *)
let test_counter_parity () =
  let d = Lazy.force maritime_dataset in
  let counters_for compile =
    Telemetry.Metrics.reset ();
    Telemetry.Metrics.enable ();
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Metrics.disable ();
        Telemetry.Metrics.reset ())
      (fun () ->
        let result =
          window_run ~compile ~event_description:Maritime.Gold.event_description
            ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()
        in
        let snap = Telemetry.Metrics.snapshot () in
        let count name = Option.value ~default:0 (Telemetry.Metrics.find_counter snap name) in
        ( result,
          count "engine.rule_evaluations",
          count "engine.cache.hit",
          count "engine.cache.miss",
          count "engine.compiled.hit" ))
  in
  let rc, evals_c, hit_c, miss_c, compiled_c = counters_for true in
  let ri, evals_i, hit_i, miss_i, compiled_i = counters_for false in
  check_identical "telemetry on" rc ri;
  Alcotest.(check int) "rule evaluations" evals_i evals_c;
  Alcotest.(check int) "cache hits" hit_i hit_c;
  Alcotest.(check int) "cache misses" miss_i miss_c;
  Alcotest.(check bool) "compiled rules actually ran" true (compiled_c > 0);
  Alcotest.(check int) "interpreter never hits compiled code" 0 compiled_i

(* With the derivation recorder on, the compiled evaluator emits the same
   compact records, in the same order, as the interpreter (rule emissions
   through the sink, carries, patterns), so a compile:true run decodes to
   exactly the interpreter's proof trees — including the lazily
   reconstructed per-condition step trails. The compiled chains must
   actually run (no silent interpreter fallback while recording). *)
let derivation_identical ~event_description ~knowledge ~stream () =
  let rules = Engine.labelled_rules event_description in
  let traced compile =
    Derivation.reset ();
    Derivation.enable ();
    Telemetry.Metrics.reset ();
    Telemetry.Metrics.enable ();
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Metrics.disable ();
        Telemetry.Metrics.reset ();
        Derivation.disable ();
        Derivation.reset ())
      (fun () ->
        let result = window_run ~compile ~event_description ~knowledge ~stream () in
        let snap = Telemetry.Metrics.snapshot () in
        let hits =
          Option.value ~default:0 (Telemetry.Metrics.find_counter snap "engine.compiled.hit")
        in
        (result, Derivation.events ~rules (), hits))
  in
  let rc, events_c, hits_c = traced true in
  let ri, events_i, hits_i = traced false in
  check_identical "derivation on" rc ri;
  Alcotest.(check bool) "derivation recorded" true (events_c <> []);
  Alcotest.(check bool) "identical derivation records" true (events_c = events_i);
  Alcotest.(check bool) "compiled chains ran while recording" true (hits_c > 0);
  Alcotest.(check int) "interpreter never hits compiled code" 0 hits_i

let test_derivation_identical_fleet () =
  let stream, knowledge = Fleet.generate () in
  derivation_identical ~event_description:(Domain.event_description Fleet.domain) ~knowledge
    ~stream ()

let test_derivation_identical_maritime () =
  let d = Lazy.force maritime_dataset in
  derivation_identical ~event_description:Maritime.Gold.event_description
    ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()

(* --- randomised streams --- *)

(* A small description covering the compiled fragment's moving parts:
   inertia transitions, a holdsAt probe against a sibling fluent, a
   numeric comparison on an event argument and a knowledge lookup. *)
let random_ed =
  [
    Parser.parse_definition ~name:"f"
      "initiatedAt(f(X) = true, T) :- happensAt(a(X), T).\n\
       terminatedAt(f(X) = true, T) :- happensAt(b(X), T).";
    Parser.parse_definition ~name:"g"
      "initiatedAt(g(X) = true, T) :- happensAt(c(X, V), T), holdsAt(f(X) = true, T), V > 3.\n\
       terminatedAt(g(X) = true, T) :- happensAt(b(X), T).";
    Parser.parse_definition ~name:"h"
      "initiatedAt(h(X) = true, T) :- happensAt(a(X), T), kind(X, fast).\n\
       terminatedAt(h(X) = true, T) :- happensAt(b(X), T).";
  ]

let random_knowledge =
  Knowledge.of_list [ Parser.parse_term "kind(x, fast)"; Parser.parse_term "kind(y, slow)" ]

let random_stream_case =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 40)
        (triple (int_bound 2) (oneofl [ "x"; "y" ]) (pair (int_bound 120) (int_bound 8))))
  in
  QCheck.make
    ~print:(fun evs ->
      String.concat ";"
        (List.map (fun (k, e, (t, v)) -> Printf.sprintf "%d/%s@%d(%d)" k e t v) evs))
    gen

let events_of_case evs =
  List.map
    (fun (kind, entity, (time, v)) ->
      let term =
        match kind with
        | 0 -> Parser.parse_term (Printf.sprintf "a(%s)" entity)
        | 1 -> Parser.parse_term (Printf.sprintf "b(%s)" entity)
        | _ -> Parser.parse_term (Printf.sprintf "c(%s, %d)" entity v)
      in
      { Stream.time; term })
    evs

let prop_random_streams =
  prop "compiled equals interpreted on random streams" 150 random_stream_case (fun evs ->
      let stream = Stream.make (events_of_case evs) in
      let run compile =
        match
          Window.run ~window:40 ~step:20 ~compile ~event_description:random_ed
            ~knowledge:random_knowledge ~stream ()
        with
        | Ok (r, _) -> r
        | Error e -> failwith e
      in
      let norm r = List.map (fun (fv, spans) -> (fv, Interval.to_list spans)) r in
      norm (run true) = norm (run false))

(* --- intern-table invariants --- *)

let test_intern_roundtrip () =
  let tbl = Intern.create () in
  let terms =
    List.map Parser.parse_term
      [ "a"; "f(x)"; "f(y)"; "f(x, 3)"; "g(f(x), 2.5)"; "42"; "2.5" ]
  in
  let ids = List.map (Intern.id_of_term tbl) terms in
  (* Dense, distinct ids in first-interning order. *)
  Alcotest.(check (list int)) "dense ids" (List.init (List.length terms) Fun.id) ids;
  List.iter2
    (fun t id ->
      Alcotest.(check bool) "round-trip preserves equality" true
        (Term.equal t (Intern.term_of_id tbl id));
      Alcotest.(check (option int)) "find_term agrees" (Some id) (Intern.find_term tbl t);
      Alcotest.(check int) "re-interning is stable" id (Intern.id_of_term tbl t))
    terms ids;
  Alcotest.(check (option int)) "unknown term is absent" None
    (Intern.find_term tbl (Parser.parse_term "never(seen)"))

let test_intern_fvp () =
  let tbl = Intern.create () in
  let f = Parser.parse_term "moving(v1)" and v = Term.Atom "true" in
  let id = Intern.fvp_of_terms tbl f v in
  let f', v' = Intern.fvp_terms tbl id in
  Alcotest.(check bool) "fvp round-trip" true (Term.equal f f' && Term.equal v v');
  Alcotest.(check int) "fvp re-interning is stable" id (Intern.fvp_of_terms tbl f v);
  Alcotest.(check (option int)) "find_fvp_terms agrees" (Some id)
    (Intern.find_fvp_terms tbl f v);
  let fid = Intern.id_of_term tbl f and vid = Intern.id_of_term tbl v in
  Alcotest.(check int) "component ids" fid (Intern.fvp_fluent_id tbl id);
  Alcotest.(check int) "component ids" vid (Intern.fvp_value_id tbl id)

(* Ids baked into compiled closures must survive later growth: interning
   a second wave of terms (as later windows do) leaves every earlier id
   and its term untouched. *)
let test_intern_stability () =
  let tbl = Intern.create () in
  let wave n = List.init 50 (fun i -> Parser.parse_term (Printf.sprintf "ev(e%d, %d)" i n)) in
  let first = List.map (fun t -> (t, Intern.id_of_term tbl t)) (wave 0) in
  ignore (List.map (Intern.id_of_term tbl) (wave 1));
  ignore (List.map (Intern.id_of_term tbl) (wave 2));
  List.iter
    (fun (t, id) ->
      Alcotest.(check (option int)) "id stable across growth" (Some id)
        (Intern.find_term tbl t);
      Alcotest.(check bool) "term stable across growth" true
        (Term.equal t (Intern.term_of_id tbl id)))
    first

let suite =
  [
    Alcotest.test_case "maritime gold: compiled = interpreted" `Slow test_maritime_gold;
    Alcotest.test_case "fleet gold: compiled = interpreted" `Quick test_fleet_gold;
    Alcotest.test_case "gold catalogue compiles" `Quick test_gold_compiles;
    Alcotest.test_case "sharded runs: compiled = interpreted" `Slow test_sharded;
    Alcotest.test_case "telemetry counter parity" `Slow test_counter_parity;
    Alcotest.test_case "derivation records identical (fleet)" `Quick
      test_derivation_identical_fleet;
    Alcotest.test_case "derivation records identical (maritime)" `Slow
      test_derivation_identical_maritime;
    Alcotest.test_case "intern round-trip" `Quick test_intern_roundtrip;
    Alcotest.test_case "intern fvp ids" `Quick test_intern_fvp;
    Alcotest.test_case "intern id stability" `Quick test_intern_stability;
    prop_random_streams;
  ]
