(* Golden tests for the report renderers: the text and JSON forms of the
   explain (blame-table) report and the figure matrices are compared
   against fixed expected output, so accidental format drift is caught. *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let render f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* A small deterministic report, as Detection.explain would produce for a
   generated description with one over-permissive initiation condition. *)
let sample_report =
  let condition =
    {
      Provenance.Diff.index = 4;
      text = "Speed > HcNearCoastMax";
      grounded = "12.0 > 5.0";
    }
  in
  let fvp =
    ( Rtec.Term.app "highSpeedNearCoast" [ Rtec.Term.app "v0" [] ],
      Rtec.Term.app "true" [] )
  in
  {
    Provenance.Diff.attributions =
      [
        {
          Provenance.Diff.activity = ("highSpeedNearCoast", 1);
          fvp;
          kind = Provenance.Diff.Fp;
          span = (100, 200);
          points = 100;
          anchor = 99;
          rule = "gen#23";
          condition = Some condition;
          note = "initiated by gen#23 at 99; gold gold#23 fails condition #4 there";
        };
      ];
    rows =
      [
        {
          Provenance.Diff.row_activity = ("highSpeedNearCoast", 1);
          row_rule = "gen#23";
          row_condition = Some condition;
          fp_points = 100;
          fn_points = 0;
          fp_spans = 1;
          fn_spans = 0;
        };
      ];
    activities =
      [
        {
          Provenance.Diff.act = ("highSpeedNearCoast", 1);
          matched_points = 500;
          act_fp_points = 100;
          act_fn_points = 0;
        };
        {
          Provenance.Diff.act = ("anchoredOrMoored", 1);
          matched_points = 250;
          act_fp_points = 0;
          act_fn_points = 0;
        };
      ];
    total_matched = 750;
    total_fp = 100;
    total_fn = 0;
  }

let expected_text =
  "Explain: gold vs. llm\n\
   Provenance diff: 750 matched, 100 FP, 0 FN time-points\n\
   \n\
   Per-activity:\n\
  \  highSpeedNearCoast/1             matched      500   fp      100   fn        0\n\
   \n\
   Blame table (per rule and condition):\n\
  \  activity                     rule                         condition                                      fp pts   fn pts\n\
  \  highSpeedNearCoast/1         gen#23                       #4 Speed > HcNearCoastMax                         100        0\n\
   \n\
   Example attributions:\n\
  \  [FP] highSpeedNearCoast(v0)=true over [100,200): initiated by gen#23 at 99; \
   gold gold#23 fails condition #4 there\n"

let test_explain_text () =
  Alcotest.(check string) "explain text rendering" expected_text
    (render (fun fmt ->
         Evaluation.Report.explain fmt ~gold_label:"gold" ~generated_label:"llm"
           sample_report))

let test_explain_json () =
  let j =
    Evaluation.Report.explain_json ~gold_label:"gold" ~generated_label:"llm" sample_report
  in
  let s = Telemetry.Json.to_string j in
  (match Telemetry.Json.of_string s with
  | Error e -> Alcotest.failf "explain JSON does not parse back: %s" e
  | Ok parsed ->
    let open Telemetry.Json in
    let report = Option.get (member "report" parsed) in
    Alcotest.(check (option string))
      "schema" (Some "adg-provenance/1")
      (Option.bind (member "schema" report) str);
    Alcotest.(check (option (float 0.)))
      "fp total" (Some 100.)
      (Option.bind (member "totals" report) (fun t -> Option.bind (member "fp_points" t) num));
    (match member "blame" report with
    | Some (List [ row ]) ->
      Alcotest.(check (option string)) "blamed rule" (Some "gen#23")
        (Option.bind (member "rule" row) str);
      Alcotest.(check (option (float 0.)))
        "condition index" (Some 4.)
        (Option.bind (member "condition" row) (fun c -> Option.bind (member "index" c) num))
    | _ -> Alcotest.fail "expected one blame row"));
  (* the full document is stable *)
  let expected =
    "{\"gold\": \"gold\",\"generated\": \"llm\",\"report\": {\"schema\": \
     \"adg-provenance/1\",\"totals\": {\"matched_points\": 750,\"fp_points\": \
     100,\"fn_points\": 0},\"activities\": [{\"activity\": \
     \"highSpeedNearCoast/1\",\"matched_points\": 500,\"fp_points\": \
     100,\"fn_points\": 0},{\"activity\": \"anchoredOrMoored/1\",\"matched_points\": \
     250,\"fp_points\": 0,\"fn_points\": 0}],\"blame\": [{\"activity\": \
     \"highSpeedNearCoast/1\",\"rule\": \"gen#23\",\"condition\": {\"index\": \
     4,\"text\": \"Speed > HcNearCoastMax\",\"grounded\": \"12.0 > \
     5.0\"},\"fp_points\": 100,\"fn_points\": 0,\"fp_spans\": 1,\"fn_spans\": \
     0}],\"attributions\": [{\"fvp\": \"highSpeedNearCoast(v0)=true\",\"kind\": \
     \"fp\",\"span\": [100,200],\"points\": 100,\"anchor\": 99,\"rule\": \
     \"gen#23\",\"condition\": {\"index\": 4,\"text\": \"Speed > \
     HcNearCoastMax\",\"grounded\": \"12.0 > 5.0\"},\"note\": \"initiated by gen#23 \
     at 99; gold gold#23 fails condition #4 there\"}]}}"
  in
  Alcotest.(check string) "explain JSON document" expected s

let test_figure_2c_golden () =
  let rows =
    [
      { Evaluation.Experiments.label = "modelA"; per_activity_f1 = [ ("h", 0.5); ("tw", 1.0) ] };
      { Evaluation.Experiments.label = "modelB"; per_activity_f1 = [ ("h", 0.25) ] };
    ]
  in
  let out = render (fun fmt -> Evaluation.Report.figure_2c fmt rows) in
  Alcotest.(check bool) "mentions both models" true
    (contains ~affix:"modelA" out && contains ~affix:"modelB" out);
  Alcotest.(check bool) "renders known cells" true
    (contains ~affix:"0.500" out && contains ~affix:"0.250" out);
  Alcotest.(check bool) "dashes for missing cells" true (contains ~affix:"-" out)

let suite =
  [
    Alcotest.test_case "explain: golden text" `Quick test_explain_text;
    Alcotest.test_case "explain: golden JSON" `Quick test_explain_json;
    Alcotest.test_case "figure 2c rendering" `Quick test_figure_2c_golden;
  ]
