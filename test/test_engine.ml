open Rtec

let ev time src = { Stream.time; term = Parser.parse_term src }
let fvp f v = (Parser.parse_term f, Parser.parse_term v)

let run ?carry ?(knowledge = Knowledge.empty) ?(input_fluents = []) ~source ~events
    ~from ~until () =
  let ed = [ Parser.parse_definition ~name:"test" source ] in
  let stream = Stream.make ~input_fluents events in
  match Engine.run ?carry ~event_description:ed ~knowledge ~stream ~from ~until () with
  | Ok result -> result
  | Error e -> Alcotest.failf "engine error: %s" e

let check_intervals msg expected result fv =
  Alcotest.(check (list (pair int int))) msg expected
    (Interval.to_list (Engine.intervals result fv))

let test_simple_inertia () =
  let source =
    "initiatedAt(on(D) = true, T) :- happensAt(switch_on(D), T).\n\
     terminatedAt(on(D) = true, T) :- happensAt(switch_off(D), T)."
  in
  let events =
    [ ev 3 "switch_on(d1)"; ev 10 "switch_off(d1)"; ev 15 "switch_on(d1)";
      ev 5 "switch_on(d2)" ]
  in
  let result = run ~source ~events ~from:0 ~until:20 () in
  check_intervals "d1: closed then open" [ (4, 11); (16, Interval.infinity) ] result
    (fvp "on(d1)" "true");
  check_intervals "d2: open" [ (6, Interval.infinity) ] result (fvp "on(d2)" "true");
  Alcotest.(check bool) "holdsAt inside" true (Engine.holds_at result (fvp "on(d1)" "true") 7);
  Alcotest.(check bool) "holdsAt at termination point" true
    (Engine.holds_at result (fvp "on(d1)" "true") 10);
  Alcotest.(check bool) "holdsAt after" false
    (Engine.holds_at result (fvp "on(d1)" "true") 11)

let test_multivalue_switching () =
  (* Initiating a different value of the same fluent terminates the
     current one. *)
  let source =
    "initiatedAt(light(D) = green, T) :- happensAt(to_green(D), T).\n\
     initiatedAt(light(D) = red, T) :- happensAt(to_red(D), T)."
  in
  let events = [ ev 1 "to_green(l1)"; ev 5 "to_red(l1)"; ev 9 "to_green(l1)" ] in
  let result = run ~source ~events ~from:0 ~until:12 () in
  check_intervals "green" [ (2, 6); (10, Interval.infinity) ] result (fvp "light(l1)" "green");
  check_intervals "red" [ (6, 10) ] result (fvp "light(l1)" "red")

let test_negation_and_holds_at () =
  let source =
    "initiatedAt(busy(M) = true, T) :- happensAt(start(M), T).\n\
     terminatedAt(busy(M) = true, T) :- happensAt(finish(M), T).\n\
     initiatedAt(queued(M) = true, T) :- happensAt(request(M), T), \
     holdsAt(busy(M) = true, T).\n\
     initiatedAt(served(M) = true, T) :- happensAt(request(M), T), \
     not holdsAt(busy(M) = true, T)."
  in
  let events = [ ev 1 "start(m)"; ev 4 "request(m)"; ev 6 "finish(m)"; ev 9 "request(m)" ] in
  let result = run ~source ~events ~from:0 ~until:12 () in
  check_intervals "queued while busy" [ (5, Interval.infinity) ] result (fvp "queued(m)" "true");
  check_intervals "served when idle" [ (10, Interval.infinity) ] result (fvp "served(m)" "true")

let test_background_and_comparison () =
  let knowledge =
    Knowledge.of_source "limit(m1, 10.0). limit(m2, 50.0)."
  in
  let source =
    "initiatedAt(hot(M) = true, T) :- happensAt(reading(M, V), T), limit(M, L), V > L.\n\
     terminatedAt(hot(M) = true, T) :- happensAt(reading(M, V), T), limit(M, L), V =< L."
  in
  let events =
    [ ev 1 "reading(m1, 5.0)"; ev 2 "reading(m1, 20.0)"; ev 3 "reading(m2, 20.0)";
      ev 5 "reading(m1, 3.0)" ]
  in
  let result = run ~knowledge ~source ~events ~from:0 ~until:8 () in
  check_intervals "m1 above its limit" [ (3, 6) ] result (fvp "hot(m1)" "true");
  Alcotest.(check (list (pair int int))) "m2 never hot" []
    (Interval.to_list (Engine.intervals result (fvp "hot(m2)" "true")))

let test_arithmetic_in_comparisons () =
  let source =
    "initiatedAt(diverging(V) = true, T) :- happensAt(sig(V, C, H), T), C - H > 30.0.\n\
     terminatedAt(diverging(V) = true, T) :- happensAt(sig(V, C, H), T), C - H =< 30.0."
  in
  let events = [ ev 1 "sig(v, 90.0, 10.0)"; ev 5 "sig(v, 90.0, 80.0)" ] in
  let result = run ~source ~events ~from:0 ~until:8 () in
  check_intervals "difference threshold" [ (2, 6) ] result (fvp "diverging(v)" "true")

let test_nonground_termination_pattern () =
  (* Rule (3) of the paper: a gap terminates withinArea for every area
     type, though AreaType is unbound in the termination rule. *)
  let knowledge = Knowledge.of_source "areaType(a1, fishing). areaType(a2, natura)." in
  let source =
    "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
     happensAt(entersArea(Vl, Area), T), areaType(Area, AreaType).\n\
     terminatedAt(withinArea(Vl, AreaType) = true, T) :- happensAt(gap_start(Vl), T)."
  in
  let events = [ ev 1 "entersArea(v, a1)"; ev 2 "entersArea(v, a2)"; ev 8 "gap_start(v)" ] in
  let result = run ~knowledge ~source ~events ~from:0 ~until:10 () in
  check_intervals "fishing terminated by gap" [ (2, 9) ] result
    (fvp "withinArea(v, fishing)" "true");
  check_intervals "natura terminated by gap" [ (3, 9) ] result
    (fvp "withinArea(v, natura)" "true")

let test_statically_determined_union () =
  let source =
    "initiatedAt(speed(V) = low, T) :- happensAt(low_start(V), T).\n\
     terminatedAt(speed(V) = low, T) :- happensAt(low_end(V), T).\n\
     initiatedAt(speed(V) = high, T) :- happensAt(high_start(V), T).\n\
     terminatedAt(speed(V) = high, T) :- happensAt(high_end(V), T).\n\
     holdsFor(moving(V) = true, I) :- holdsFor(speed(V) = low, I1), \
     holdsFor(speed(V) = high, I2), union_all([I1, I2], I)."
  in
  let events =
    [ ev 1 "low_start(v)"; ev 5 "low_end(v)"; ev 5 "high_start(v)"; ev 9 "high_end(v)" ]
  in
  let result = run ~source ~events ~from:0 ~until:12 () in
  (* speed=low holds (1,5], speed=high (5,9]: moving amalgamates. *)
  check_intervals "union amalgamates" [ (2, 10) ] result (fvp "moving(v)" "true")

let test_sd_union_with_missing_value () =
  (* A vessel that is only ever 'high' still gets 'moving' intervals: the
     missing value contributes the empty list. *)
  let source =
    "initiatedAt(speed(V) = low, T) :- happensAt(low_start(V), T).\n\
     initiatedAt(speed(V) = high, T) :- happensAt(high_start(V), T).\n\
     terminatedAt(speed(V) = high, T) :- happensAt(high_end(V), T).\n\
     holdsFor(moving(V) = true, I) :- holdsFor(speed(V) = low, I1), \
     holdsFor(speed(V) = high, I2), union_all([I1, I2], I)."
  in
  let events = [ ev 2 "high_start(v)"; ev 7 "high_end(v)" ] in
  let result = run ~source ~events ~from:0 ~until:12 () in
  check_intervals "only high" [ (3, 8) ] result (fvp "moving(v)" "true")

let test_sd_intersection_and_complement () =
  let input_fluents =
    [ (fvp "near(a, b)" "true", Interval.of_list [ (2, 10) ]) ]
  in
  let source =
    "initiatedAt(slow(V) = true, T) :- happensAt(slow_start(V), T).\n\
     terminatedAt(slow(V) = true, T) :- happensAt(slow_end(V), T).\n\
     holdsFor(escort(V, W) = true, I) :- holdsFor(near(V, W) = true, Ip), \
     holdsFor(slow(V) = true, I1), intersect_all([Ip, I1], I).\n\
     holdsFor(alone(V) = true, I) :- holdsFor(slow(V) = true, I1), \
     holdsFor(escort(V, W) = true, I2), relative_complement_all(I1, [I2], I)."
  in
  let events = [ ev 3 "slow_start(a)"; ev 12 "slow_end(a)" ] in
  let result = run ~source ~events ~input_fluents ~from:0 ~until:15 () in
  check_intervals "escort = proximity inter slow" [ (4, 10) ] result
    (fvp "escort(a, b)" "true");
  check_intervals "alone = slow minus escort" [ (10, 13) ] result (fvp "alone(a)" "true")

let test_simple_depending_on_sd () =
  let source =
    "initiatedAt(speed(V) = low, T) :- happensAt(low_start(V), T).\n\
     terminatedAt(speed(V) = low, T) :- happensAt(low_end(V), T).\n\
     holdsFor(moving(V) = true, I) :- holdsFor(speed(V) = low, I1), union_all([I1], I).\n\
     initiatedAt(alarm(V) = true, T) :- happensAt(ping(V), T), holdsAt(moving(V) = true, T)."
  in
  let events = [ ev 1 "low_start(v)"; ev 4 "ping(v)"; ev 9 "low_end(v)"; ev 11 "ping(v)" ] in
  let result = run ~source ~events ~from:0 ~until:15 () in
  check_intervals "alarm initiated while moving" [ (5, Interval.infinity) ] result
    (fvp "alarm(v)" "true")

let test_cycle_detection () =
  let source =
    "holdsFor(a(V) = true, I) :- holdsFor(b(V) = true, I1), union_all([I1], I).\n\
     holdsFor(b(V) = true, I) :- holdsFor(a(V) = true, I1), union_all([I1], I)."
  in
  let ed = [ Parser.parse_definition ~name:"cycle" source ] in
  match
    Engine.run ~event_description:ed ~knowledge:Knowledge.empty
      ~stream:(Stream.make []) ~from:0 ~until:10 ()
  with
  | Ok _ -> Alcotest.fail "expected cycle error"
  | Error msg ->
    Alcotest.(check bool) "mentions cycle" true
      (String.length msg > 0 &&
       (let lower = String.lowercase_ascii msg in
        let rec contains i =
          i + 6 <= String.length lower && (String.sub lower i 6 = "cyclic" || contains (i + 1))
        in
        contains 0))

let test_mixed_kind_rejected () =
  let source =
    "initiatedAt(f(V) = true, T) :- happensAt(e(V), T).\n\
     holdsFor(f(V) = true, I) :- holdsFor(g(V) = true, I1), union_all([I1], I)."
  in
  let ed = [ Parser.parse_definition ~name:"mixed" source ] in
  match
    Engine.run ~event_description:ed ~knowledge:Knowledge.empty ~stream:(Stream.make [])
      ~from:0 ~until:10 ()
  with
  | Ok _ -> Alcotest.fail "mixed fluent kinds must be rejected"
  | Error _ -> ()

let test_undefined_reference_is_empty () =
  (* Error category 3: a condition over an undefined activity yields no
     recognition, without crashing. *)
  let source =
    "holdsFor(ghost(V) = true, I) :- holdsFor(undefined(V) = true, I1), union_all([I1], I)."
  in
  let result = run ~source ~events:[] ~from:0 ~until:10 () in
  Alcotest.(check int) "nothing recognised" 0
    (List.length (Engine.find_fluent result ("ghost", 1)))

let test_duration_filter () =
  (* The intDurGreater extension: sustained low speed counts as loitering,
     a brief dip does not. *)
  let source =
    "initiatedAt(slow(V) = true, T) :- happensAt(slow_start(V), T).\n\
     terminatedAt(slow(V) = true, T) :- happensAt(slow_end(V), T).\n\
     holdsFor(sustainedSlow(V) = true, I) :- holdsFor(slow(V) = true, I1), \
     intDurGreater(I1, 10, I)."
  in
  let events =
    [ ev 1 "slow_start(v)"; ev 4 "slow_end(v)"; (* 3 time-points: filtered out *)
      ev 10 "slow_start(v)"; ev 30 "slow_end(v)" (* 20 time-points: kept *) ]
  in
  let result = run ~source ~events ~from:0 ~until:40 () in
  check_intervals "short episode filtered" [ (11, 31) ] result
    (fvp "sustainedSlow(v)" "true");
  (* The construct also passes the well-formedness check. *)
  let ed = [ Parser.parse_definition ~name:"x" source ] in
  Alcotest.(check bool) "intDurGreater is well-formed" true
    (not (List.exists (fun d -> d.Check.severity = Check.Error) (Check.check ed)))

let test_initially () =
  let source =
    "initially(on(d1) = true).\n\
     initiatedAt(on(D) = true, T) :- happensAt(switch_on(D), T).\n\
     terminatedAt(on(D) = true, T) :- happensAt(switch_off(D), T)."
  in
  let events = [ ev 15 "switch_off(d1)" ] in
  let result = run ~source ~events ~from:0 ~until:20 () in
  check_intervals "initially seeds the fluent" [ (0, 16) ] result (fvp "on(d1)" "true");
  (* An initially declaration only applies to windows reaching the stream
     start. *)
  let result_late = run ~source ~events ~from:16 ~until:20 () in
  Alcotest.(check (list (pair int int))) "not re-seeded mid-stream" []
    (Interval.to_list (Engine.intervals result_late (fvp "on(d1)" "true")))

let test_initially_checked () =
  let ok = [ Parser.parse_definition ~name:"x" "initially(on(d1) = true)." ] in
  Alcotest.(check bool) "ground initially accepted" true
    (not (List.exists (fun d -> d.Check.severity = Check.Error) (Check.check ok)));
  let bad = [ Parser.parse_definition ~name:"x" "initially(on(D) = true)." ] in
  Alcotest.(check bool) "non-ground initially rejected" true
    (List.exists (fun d -> d.Check.severity = Check.Error) (Check.check bad))

let test_carry_seeds_inertia () =
  let source =
    "initiatedAt(on(D) = true, T) :- happensAt(switch_on(D), T).\n\
     terminatedAt(on(D) = true, T) :- happensAt(switch_off(D), T)."
  in
  let events = [ ev 15 "switch_off(d1)" ] in
  let result =
    run ~carry:[ fvp "on(d1)" "true" ] ~source ~events ~from:10 ~until:20 ()
  in
  check_intervals "carried fluent holds from window start" [ (10, 16) ] result
    (fvp "on(d1)" "true")

let test_query_patterns () =
  let knowledge = Knowledge.of_source "areaType(a1, fishing). areaType(a2, natura)." in
  let source =
    "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
     happensAt(entersArea(Vl, Area), T), areaType(Area, AreaType)."
  in
  let events = [ ev 1 "entersArea(v1, a1)"; ev 2 "entersArea(v2, a2)" ] in
  let result = run ~knowledge ~source ~events ~from:0 ~until:10 () in
  let q src = List.length (Engine.query result (Parser.parse_term src)) in
  Alcotest.(check int) "all instances" 2 (q "withinArea(V, A) = true");
  Alcotest.(check int) "by area type" 1 (q "withinArea(V, fishing) = true");
  Alcotest.(check int) "by vessel" 1 (q "withinArea(v2, A) = true");
  Alcotest.(check int) "no match" 0 (q "withinArea(v2, fishing) = true");
  Alcotest.(check int) "non-fvp pattern" 0 (q "withinArea(V, A)")

let test_window_stats () =
  let source = "initiatedAt(on(D) = true, T) :- happensAt(switch_on(D), T)." in
  let ed = [ Parser.parse_definition ~name:"t" source ] in
  let events = List.init 10 (fun i -> ev (i * 10) "switch_on(d)") in
  match
    Window.run ~window:20 ~step:20 ~event_description:ed ~knowledge:Knowledge.empty
      ~stream:(Stream.make events) ()
  with
  | Error e -> Alcotest.failf "window run failed: %s" e
  | Ok (_, stats) ->
    Alcotest.(check bool) "several queries" true (stats.queries >= 4);
    Alcotest.(check bool) "every event processed at least once" true
      (stats.events_processed >= 10)

let test_query_times () =
  let qt = Window.query_times in
  Alcotest.(check (list int)) "basic sweep" [ 9; 19; 29; 35 ]
    (qt ~lo:0 ~hi:35 ~window:10 ~step:10);
  Alcotest.(check (list int)) "step landing on hi is not queried twice" [ 9; 19; 29 ]
    (qt ~lo:0 ~hi:29 ~window:10 ~step:10);
  Alcotest.(check (list int)) "stream shorter than one window: one query at hi" [ 5 ]
    (qt ~lo:0 ~hi:5 ~window:100 ~step:10);
  Alcotest.(check (list int)) "window exactly the extent: one query" [ 7 ]
    (qt ~lo:3 ~hi:7 ~window:5 ~step:5);
  Alcotest.(check (list int)) "single-point extent" [ 0 ] (qt ~lo:0 ~hi:0 ~window:1 ~step:1);
  Alcotest.(check (list int)) "overlapping windows end exactly at hi" [ 4; 7; 10 ]
    (qt ~lo:0 ~hi:10 ~window:5 ~step:3)

let test_short_stream_single_query () =
  let ed =
    [ Parser.parse_definition ~name:"t"
        "initiatedAt(on(D) = true, T) :- happensAt(switch_on(D), T)." ]
  in
  let stream = Stream.make [ ev 3 "switch_on(d)"; ev 8 "switch_on(d)" ] in
  match
    Window.run ~window:1000 ~step:1000 ~event_description:ed ~knowledge:Knowledge.empty
      ~stream ()
  with
  | Error e -> Alcotest.failf "window run failed: %s" e
  | Ok (result, stats) ->
    Alcotest.(check int) "exactly one query" 1 stats.queries;
    Alcotest.(check bool) "fluent recognised" true
      (Engine.holds_at result (Parser.parse_term "on(d)", Term.Atom "true") 5)

let test_windowed_equals_single_window () =
  (* With overlapping windows, windowed recognition over the gold ED must
     agree with a single query over the whole stream, modulo the final
     horizon truncation. *)
  let source =
    "initiatedAt(on(D) = true, T) :- happensAt(switch_on(D), T).\n\
     terminatedAt(on(D) = true, T) :- happensAt(switch_off(D), T)."
  in
  let ed = [ Parser.parse_definition ~name:"test" source ] in
  let events =
    [ ev 3 "switch_on(d1)"; ev 40 "switch_off(d1)"; ev 55 "switch_on(d1)";
      ev 70 "switch_off(d1)"; ev 90 "switch_on(d2)"; ev 95 "switch_off(d2)" ]
  in
  let stream = Stream.make events in
  match
    ( Window.run ~window:30 ~step:15 ~event_description:ed ~knowledge:Knowledge.empty
        ~stream (),
      Window.run ~event_description:ed ~knowledge:Knowledge.empty ~stream () )
  with
  | Ok (windowed, stats), Ok (single, _) ->
    Alcotest.(check bool) "several queries ran" true (stats.queries > 3);
    List.iter
      (fun (fv, spans) ->
        let expected = Interval.clamp 0 97 spans in
        let actual = Interval.clamp 0 97 (Engine.intervals windowed fv) in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "windowed matches single for %s"
             (Term.to_string (fst fv)))
          (Interval.to_list expected) (Interval.to_list actual))
      single
  | Error e, _ | _, Error e -> Alcotest.failf "window run failed: %s" e

let suite =
  [
    Alcotest.test_case "simple fluents obey inertia" `Quick test_simple_inertia;
    Alcotest.test_case "multi-valued fluents switch values" `Quick test_multivalue_switching;
    Alcotest.test_case "negation-by-failure and holdsAt" `Quick test_negation_and_holds_at;
    Alcotest.test_case "background knowledge and comparisons" `Quick
      test_background_and_comparison;
    Alcotest.test_case "arithmetic in comparisons" `Quick test_arithmetic_in_comparisons;
    Alcotest.test_case "non-ground termination patterns" `Quick
      test_nonground_termination_pattern;
    Alcotest.test_case "statically determined: union_all" `Quick
      test_statically_determined_union;
    Alcotest.test_case "union with a missing value" `Quick test_sd_union_with_missing_value;
    Alcotest.test_case "intersection and relative complement" `Quick
      test_sd_intersection_and_complement;
    Alcotest.test_case "simple fluent depending on SD fluent" `Quick
      test_simple_depending_on_sd;
    Alcotest.test_case "cyclic dependencies rejected" `Quick test_cycle_detection;
    Alcotest.test_case "mixed fluent kinds rejected by the engine" `Quick
      test_mixed_kind_rejected;
    Alcotest.test_case "undefined references recognise nothing" `Quick
      test_undefined_reference_is_empty;
    Alcotest.test_case "intDurGreater duration filter" `Quick test_duration_filter;
    Alcotest.test_case "initially declarations" `Quick test_initially;
    Alcotest.test_case "initially well-formedness" `Quick test_initially_checked;
    Alcotest.test_case "carry seeds inertia at window start" `Quick test_carry_seeds_inertia;
    Alcotest.test_case "pattern queries on results" `Quick test_query_patterns;
    Alcotest.test_case "window statistics" `Quick test_window_stats;
    Alcotest.test_case "query times" `Quick test_query_times;
    Alcotest.test_case "short stream yields a single query" `Quick
      test_short_stream_single_query;
    Alcotest.test_case "windowed run equals single window" `Quick
      test_windowed_equals_single_window;
  ]
