let () =
  Alcotest.run "adg"
    [
      ("term", Test_term.suite);
      ("interval", Test_interval.suite);
      ("parser", Test_parser.suite);
      ("hungarian", Test_hungarian.suite);
      ("similarity", Test_similarity.suite);
      ("engine", Test_engine.suite);
      ("check", Test_check.suite);
      ("stream", Test_stream.suite);
      ("codec", Test_codec.suite);
      ("maritime", Test_maritime.suite);
      ("fleet", Test_fleet.suite);
      ("differential", Test_differential.suite);
      ("compiled", Test_compiled.suite);
      ("runtime", Test_runtime.suite);
      ("service", Test_service.suite);
      ("adg", Test_adg.suite);
      ("evaluation", Test_evaluation.suite);
      ("telemetry", Test_telemetry.suite);
      ("observability", Test_observability.suite);
      ("derivation", Test_derivation.suite);
      ("provenance", Test_provenance.suite);
      ("report", Test_report.suite);
    ]
