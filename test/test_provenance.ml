(* Provenance tests: the derivation recorder must not perturb recognition
   (bit-identity on the maritime and fleet domains, sequential and
   sharded), the store must index and deduplicate records, the diagnosis
   probe must replay rules faithfully, and the FP/FN attribution must
   blame exactly the perturbed condition of a deliberately broken gold
   definition. *)

open Rtec

let result_equal =
  List.equal (fun (fva, sa) (fvb, sb) ->
      Engine.compare_fvp fva fvb = 0 && Interval.equal sa sb)

let check_result msg expected actual =
  Alcotest.(check bool) msg true (result_equal expected actual)

(* Every test restores the recorder to disabled-and-empty: the other
   suites share the process-global buffer. *)
let scoped f =
  Derivation.reset ();
  Fun.protect
    ~finally:(fun () ->
      Derivation.disable ();
      Derivation.reset ())
    f

(* --- differential: recognition is bit-identical with the recorder on --- *)

let maritime_dataset =
  lazy (Maritime.Dataset.generate ~config:{ seed = 7; replicas = 1; nominal = 2 } ())

let fleet_data = lazy (Fleet.generate ())

(* The par variants force [shards] explicitly: [jobs] is clamped to the
   host's cores, so on a small host the partition/merge (and per-shard
   derivation accumulation) would otherwise go unexercised. *)
let differential ~jobs ?shards ~event_description ~knowledge ~stream () =
  scoped (fun () ->
      let config = Runtime.config ~window:3600 ~step:1800 ~jobs ?shards () in
      let plain =
        match Runtime.run ~config ~event_description ~knowledge ~stream () with
        | Ok (result, _) -> result
        | Error e -> Alcotest.failf "plain run failed: %s" e
      in
      let traced =
        match Provenance.recognise ~config ~event_description ~knowledge ~stream () with
        | Ok run -> run
        | Error e -> Alcotest.failf "traced run failed: %s" e
      in
      check_result
        (Printf.sprintf "bit-identical result at jobs %d" jobs)
        plain traced.Provenance.result;
      Alcotest.(check bool) "derivations were recorded" true
        (List.length (Lazy.force traced.Provenance.events) > 0);
      Alcotest.(check bool) "recorder restored to disabled" false
        (Derivation.is_enabled ()))

let test_differential_maritime_seq () =
  let d = Lazy.force maritime_dataset in
  differential ~jobs:1 ~event_description:Maritime.Gold.event_description
    ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()

let test_differential_maritime_par () =
  let d = Lazy.force maritime_dataset in
  differential ~jobs:4 ~shards:4 ~event_description:Maritime.Gold.event_description
    ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()

let test_differential_fleet_seq () =
  let stream, knowledge = Lazy.force fleet_data in
  differential ~jobs:1 ~event_description:(Domain.event_description Fleet.domain)
    ~knowledge ~stream ()

let test_differential_fleet_par () =
  let stream, knowledge = Lazy.force fleet_data in
  differential ~jobs:4 ~shards:4 ~event_description:(Domain.event_description Fleet.domain)
    ~knowledge ~stream ()

(* --- the store --- *)

let fvp_of name = (Term.app name [ Term.app "a" [] ], Term.app "true" [])

let test_store_dedup_and_sort () =
  let f, v = fvp_of "f" in
  let rule_src = Derivation.Rule { rule = "d#1"; steps = [] } in
  let events =
    [
      Derivation.Transition { fluent = f; value = v; time = 9; kind = Derivation.Init; source = rule_src };
      Derivation.Transition { fluent = f; value = v; time = 3; kind = Derivation.Init; source = rule_src };
      (* same (time, kind, rule) as above: a re-derivation by an
         overlapping window *)
      Derivation.Transition { fluent = f; value = v; time = 3; kind = Derivation.Init; source = rule_src };
      Derivation.Transition
        { fluent = f; value = v; time = 5; kind = Derivation.Term; source = rule_src };
      (* carry seeds restate an earlier window's work: excluded from inits *)
      Derivation.Transition
        { fluent = f; value = v; time = 1; kind = Derivation.Init; source = Derivation.Carry { origin = "carry" } };
    ]
  in
  let store = Provenance.Store.of_events events in
  Alcotest.(check int) "one fvp" 1 (List.length (Provenance.Store.fvps store));
  Alcotest.(check (list (pair int string)))
    "inits deduplicated, sorted, carry excluded"
    [ (3, "d#1"); (9, "d#1") ]
    (Provenance.Store.inits store (f, v));
  Alcotest.(check (list (pair int string)))
    "terms" [ (5, "d#1") ]
    (Provenance.Store.terms store (f, v));
  Alcotest.(check int) "all transitions kept (carry included)" 4
    (List.length (Provenance.Store.transitions store (f, v)))

(* --- the diagnosis probe --- *)

let test_diagnosis_rule_at () =
  let ed =
    [
      Rtec.Parser.parse_definition ~name:"probe"
        "initiatedAt(f(X) = true, T) :- happensAt(e(X), T).\n\
         terminatedAt(f(X) = true, T) :- happensAt(g(X), T).";
    ]
  in
  let stream = Io.stream_of_string "happensAt(e(a), 5).\nhappensAt(g(a), 9)." in
  match Engine.Diagnosis.prepare ~event_description:ed ~knowledge:Knowledge.empty ~stream () with
  | Error e -> Alcotest.failf "prepare failed: %s" e
  | Ok diag ->
    let fvp = fvp_of "f" in
    let rules = Engine.Diagnosis.rules_for diag ("f", 1) in
    Alcotest.(check int) "two rules for f/1" 2 (List.length rules);
    let init_rule = List.assoc "probe#1" rules in
    (match Engine.Diagnosis.rule_at diag ~rule:init_rule ~fvp ~time:5 with
    | Engine.Diagnosis.Derivable -> ()
    | _ -> Alcotest.fail "initiation should be derivable at 5");
    (match Engine.Diagnosis.rule_at diag ~rule:init_rule ~fvp ~time:6 with
    | Engine.Diagnosis.Failing { index = 1; _ } -> ()
    | _ -> Alcotest.fail "initiation should fail on its first condition at 6");
    let result = Engine.Diagnosis.result diag in
    check_result "probe result" [ (fvp, Interval.of_list [ (6, 10) ]) ] result

(* --- attribution: a perturbed condition gets the blame --- *)

let replace ~pat ~by s =
  let plen = String.length pat in
  let buf = Buffer.create (String.length s) in
  let rec go i =
    if i > String.length s - plen then Buffer.add_string buf (String.sub s i (String.length s - i))
    else if String.sub s i plen = pat then begin
      Buffer.add_string buf by;
      go (i + plen)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let parse_ed ~name text =
  match Parser.parse_clauses_result text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok rules -> [ { Ast.name; rules = Ast.with_ids ~name rules } ]

let test_attribution_perturbed_condition () =
  let d = Lazy.force maritime_dataset in
  let gold_text = Printer.event_description_to_string Maritime.Gold.event_description in
  let pert_text = replace ~pat:"Speed > HcNearCoastMax" ~by:"Speed > 0.0" gold_text in
  Alcotest.(check bool) "perturbation applied" true (gold_text <> pert_text);
  let gold = parse_ed ~name:"gold" gold_text in
  let generated = parse_ed ~name:"pert" pert_text in
  (* the label with_ids assigned to the rule we perturbed: the single
     rule whose body differs from its gold counterpart *)
  let pert_rule_label =
    let rec find gs ps =
      match (gs, ps) with
      | (g : Ast.rule) :: gs, (p : Ast.rule) :: ps ->
        if List.length g.body = List.length p.body && List.for_all2 Term.equal g.body p.body
        then find gs ps
        else p.Ast.id
      | _ -> Alcotest.fail "no differing rule between gold and perturbed"
    in
    find (List.hd gold).Ast.rules (List.hd generated).Ast.rules
  in
  Alcotest.(check bool) "perturbed rule found" true (pert_rule_label <> "");
  match
    Provenance.Diff.diff ~gold ~generated ~knowledge:d.Maritime.Dataset.knowledge
      ~stream:d.Maritime.Dataset.stream ()
  with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok report ->
    Alcotest.(check bool) "the perturbation introduced FPs" true
      (report.Provenance.Diff.total_fp > 0);
    Alcotest.(check int) "and no FNs" 0 report.Provenance.Diff.total_fn;
    Alcotest.(check bool) "there are attributions" true
      (report.Provenance.Diff.attributions <> []);
    List.iter
      (fun (a : Provenance.Diff.attribution) ->
        Alcotest.(check string) "every FP blames the perturbed rule" pert_rule_label
          a.Provenance.Diff.rule;
        match a.Provenance.Diff.condition with
        | Some c ->
          Alcotest.(check string) "and the perturbed condition"
            "Speed > HcNearCoastMax" c.Provenance.Diff.text;
          Alcotest.(check int) "at its body position" 4 c.Provenance.Diff.index
        | None -> Alcotest.failf "unattributed divergence: %s" a.Provenance.Diff.note)
      report.Provenance.Diff.attributions;
    (* the blame table aggregates them into a single row *)
    (match report.Provenance.Diff.rows with
    | [ row ] ->
      Alcotest.(check string) "single blame row, perturbed rule" pert_rule_label
        row.Provenance.Diff.row_rule;
      Alcotest.(check int) "row fp points = total fp" report.Provenance.Diff.total_fp
        row.Provenance.Diff.fp_points
    | rows -> Alcotest.failf "expected one blame row, got %d" (List.length rows));
    (* identical descriptions diverge nowhere *)
    (match
       Provenance.Diff.diff ~gold ~generated:gold ~knowledge:d.Maritime.Dataset.knowledge
         ~stream:d.Maritime.Dataset.stream ()
     with
    | Error e -> Alcotest.failf "self-diff failed: %s" e
    | Ok self ->
      Alcotest.(check int) "self-diff has no FPs" 0 self.Provenance.Diff.total_fp;
      Alcotest.(check int) "self-diff has no FNs" 0 self.Provenance.Diff.total_fn)

(* --- a strengthened initiation shows up as FNs on the generated side --- *)

let test_attribution_fn_side () =
  let d = Lazy.force maritime_dataset in
  let gold_text = Printer.event_description_to_string Maritime.Gold.event_description in
  (* make the generated initiation unsatisfiable: every gold
     highSpeedNearCoast interval becomes a false negative *)
  let pert_text = replace ~pat:"Speed > HcNearCoastMax" ~by:"Speed > 99999.0" gold_text in
  Alcotest.(check bool) "perturbation applied" true (gold_text <> pert_text);
  let gold = parse_ed ~name:"gold" gold_text in
  let generated = parse_ed ~name:"pert" pert_text in
  match
    Provenance.Diff.diff ~gold ~generated ~knowledge:d.Maritime.Dataset.knowledge
      ~stream:d.Maritime.Dataset.stream ()
  with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok report ->
    Alcotest.(check bool) "strengthened initiation introduces FNs" true
      (report.Provenance.Diff.total_fn > 0);
    Alcotest.(check int) "and no FPs" 0 report.Provenance.Diff.total_fp;
    List.iter
      (fun (a : Provenance.Diff.attribution) ->
        Alcotest.(check bool) "every attribution is an FN" true
          (a.Provenance.Diff.kind = Provenance.Diff.Fn);
        match a.Provenance.Diff.condition with
        | Some c ->
          Alcotest.(check string) "blamed on the strengthened comparison"
            "Speed > 99999.0" c.Provenance.Diff.text;
          Alcotest.(check int) "at its body position" 4 c.Provenance.Diff.index
        | None -> Alcotest.failf "unattributed divergence: %s" a.Provenance.Diff.note)
      report.Provenance.Diff.attributions

(* --- exports --- *)

let test_exports_parse_back () =
  let d = Lazy.force maritime_dataset in
  scoped (fun () ->
      match
        Provenance.recognise ~event_description:Maritime.Gold.event_description
          ~knowledge:d.Maritime.Dataset.knowledge ~stream:d.Maritime.Dataset.stream ()
      with
      | Error e -> Alcotest.failf "recognise failed: %s" e
      | Ok run ->
        let events = Lazy.force run.Provenance.events in
        let proof = Provenance.Export.proof_to_json events in
        let reparsed = Telemetry.Json.of_string (Telemetry.Json.to_string proof) in
        (match reparsed with
        | Ok j ->
          let n =
            match Telemetry.Json.member "events" j with
            | Some (Telemetry.Json.List l) -> List.length l
            | _ -> 0
          in
          Alcotest.(check int) "proof events survive the round-trip"
            (List.length events) n
        | Error e -> Alcotest.failf "proof JSON does not parse back: %s" e);
        let chrome = Provenance.Export.proof_to_chrome events in
        (match Telemetry.Json.of_string (Telemetry.Json.to_string chrome) with
        | Ok j ->
          (match Telemetry.Json.member "traceEvents" j with
          | Some (Telemetry.Json.List l) ->
            Alcotest.(check bool) "chrome trace has events" true (List.length l > 0)
          | _ -> Alcotest.fail "traceEvents missing")
        | Error e -> Alcotest.failf "chrome JSON does not parse back: %s" e))

let suite =
  [
    Alcotest.test_case "differential: maritime, jobs 1" `Slow test_differential_maritime_seq;
    Alcotest.test_case "differential: maritime, jobs 4" `Slow test_differential_maritime_par;
    Alcotest.test_case "differential: fleet, jobs 1" `Slow test_differential_fleet_seq;
    Alcotest.test_case "differential: fleet, jobs 4" `Slow test_differential_fleet_par;
    Alcotest.test_case "store: dedup, sort, carry exclusion" `Quick test_store_dedup_and_sort;
    Alcotest.test_case "diagnosis: rule_at replays rules" `Quick test_diagnosis_rule_at;
    Alcotest.test_case "attribution: perturbed condition blamed" `Slow
      test_attribution_perturbed_condition;
    Alcotest.test_case "attribution: strengthened initiation blamed (FN)" `Slow
      test_attribution_fn_side;
    Alcotest.test_case "exports parse back" `Slow test_exports_parse_back;
  ]
