(** The similarity metric of Section 4.

    All distances lie in [0, 1]; the corresponding similarity is
    [1 - distance]. *)

type strategy = Hungarian | Greedy
(** How the minimum-cost mapping [g] is computed. The paper uses the
    Kuhn–Munkres algorithm ({!Hungarian}, the default); {!Greedy} is an
    ablation baseline that pairs cheapest cells first and may miss the
    optimal mapping. *)

val ground : Rtec.Term.t -> Rtec.Term.t -> float
(** Definition 4.1: distance between ground expressions. Numeric constants
    compare by value. Raises [Invalid_argument] on non-ground input. *)

val ground_sets : Rtec.Term.t list -> Rtec.Term.t list -> float
(** Definitions 4.3 and 4.5: distance between sets of ground expressions
    via a minimum-cost Kuhn–Munkres mapping; every unmatched expression is
    penalised by 1. Symmetric in its arguments. *)

val cost_matrix :
  ('a -> 'b -> float) -> 'a array -> 'b array -> float array array
(** Definition 4.3 generalised over the element distance: rows index the
    larger set, columns the smaller, padded with zero-cost unmatched
    slots. The caller must pass [|rows| >= |columns|]. *)

val expression :
  vi1:Var_instance.t -> vi2:Var_instance.t -> Rtec.Term.t -> Rtec.Term.t -> float
(** Definition 4.11: distance between possibly non-ground expressions,
    with variables compared through their instance lists in the enclosing
    rules. *)

val rule : ?strategy:strategy -> Rtec.Ast.rule -> Rtec.Ast.rule -> float
(** Definition 4.12: heads are compared to each other; bodies through a
    minimum-cost mapping; result normalised by [max body size + 1]. *)

type prepared
(** A preprocessed rule list: per-rule variable-instance maps
    (Definitions 4.7-4.10), body arrays and content hashes, computed
    once instead of once per rule pair. Prepare the fixed side of a
    comparison (e.g. the gold standard of one activity) once and reuse
    it against every generated event description. *)

val prepare : Rtec.Ast.rule list -> prepared

val event_description_prepared : ?strategy:strategy -> prepared -> prepared -> float
(** {!event_description} over prepared sides. Rule-pair distances are
    memoised in a process-global content-hashed cache (hit rate exposed
    as the [similarity.rule_cache.*] counters); the cache is domain-safe
    and values are bit-identical to the uncached computation. *)

val similarity_prepared : ?strategy:strategy -> prepared -> prepared -> float
(** [1 - event_description_prepared]. *)

val clear_cache : unit -> unit
(** Drop every memoised rule-pair distance (benchmarking, memory). *)

val event_description :
  ?strategy:strategy -> Rtec.Ast.rule list -> Rtec.Ast.rule list -> float
(** Definition 4.14: distance between two event descriptions (as rule
    sets), via a minimum-cost mapping of rules. Equivalent to preparing
    both sides and calling {!event_description_prepared}. *)

val similarity : ?strategy:strategy -> Rtec.Ast.rule list -> Rtec.Ast.rule list -> float
(** [1 - event_description], the quantity reported in Figures 2a/2b. *)
