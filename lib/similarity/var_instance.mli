(** Variable instances (Definitions 4.7–4.10).

    The concept a variable denotes inside a rule is identified by the set
    of positions at which the variable occurs across the rule's
    expressions. A position ({e instance}) is the path from the root of an
    expression's tree representation to the variable's leaf: a list of
    [(functor, argument-index)] steps with 1-based indices. *)

type path = (string * int) list

type t
(** The [vi_r] map of the paper: variable name -> instances in rule [r]. *)

val paths_in_term : Rtec.Term.t -> (string * path) list
(** All variable instances in one expression, in depth-first order. *)

val of_rule : Rtec.Ast.rule -> t
(** Instances collected over the rule's head and every body literal. *)

val instances : t -> string -> path list
(** Sorted instance list of a variable ([[]] for unknown variables). *)

val fingerprint : t -> string -> int option
(** Interned identity of a variable's instance set: two variables (in any
    two rules, built in any domain) have equal instance lists iff their
    fingerprints are equal. [None] for unknown variables. *)

val equal_instances : t -> string -> t -> string -> bool
(** Whether two variables (in their respective rules) have equal instance
    lists, i.e. refer to the same concept (Definition 4.11, cases 2–3).
    One integer comparison of interned fingerprints. *)
