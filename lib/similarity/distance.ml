open Rtec

let numeric = function
  | Term.Int n -> Some (float_of_int n)
  | Term.Real r -> Some r
  | _ -> None

(* Shared recursion for Definitions 4.1 and 4.11. [var_case] decides the
   distance between two variables; Definition 4.1 never reaches it because
   its inputs are ground. *)
let rec generic var_case u1 u2 =
  match (u1, u2) with
  | Term.Var v1, Term.Var v2 -> var_case v1 v2
  | Term.Var _, _ | _, Term.Var _ -> 1.
  | _ -> (
    match (numeric u1, numeric u2) with
    | Some x, Some y -> if Float.equal x y then 0. else 1.
    | _ -> (
      match (u1, u2) with
      | Term.Atom a, Term.Atom b -> if String.equal a b then 0. else 1.
      | Term.Compound (p, ss), Term.Compound (q, ts)
        when String.equal p q && List.length ss = List.length ts ->
        let k = float_of_int (List.length ss) in
        let sum = List.fold_left2 (fun acc s t -> acc +. generic var_case s t) 0. ss ts in
        sum /. (2. *. k)
      | _ -> 1.))

let ground u1 u2 =
  if not (Term.is_ground u1 && Term.is_ground u2) then
    invalid_arg "Distance.ground: expressions must be ground";
  generic (fun _ _ -> 1.) u1 u2

let expression ~vi1 ~vi2 u1 u2 =
  let var_case v1 v2 = if Var_instance.equal_instances vi1 v1 vi2 v2 then 0. else 1. in
  generic var_case u1 u2

let cost_matrix d rows cols =
  let m = Array.length rows and k = Array.length cols in
  if k > m then invalid_arg "Distance.cost_matrix: more columns than rows";
  Array.init m (fun i -> Array.init k (fun j -> d rows.(i) cols.(j)))

type strategy = Hungarian | Greedy

let m_assignments = Telemetry.Metrics.counter "similarity.assignments"
let h_matrix_rows = Telemetry.Metrics.histogram "similarity.matrix.rows"
let h_matrix_cols = Telemetry.Metrics.histogram "similarity.matrix.cols"
let m_cache_hit = Telemetry.Metrics.counter "similarity.rule_cache.hit"
let m_cache_miss = Telemetry.Metrics.counter "similarity.rule_cache.miss"

let assign strategy matrix =
  Telemetry.Metrics.incr m_assignments;
  Telemetry.Metrics.observe h_matrix_rows (float_of_int (Array.length matrix));
  Telemetry.Metrics.observe h_matrix_cols
    (float_of_int (if Array.length matrix = 0 then 0 else Array.length matrix.(0)));
  match strategy with
  | Hungarian -> Assignment.Kuhn_munkres.solve_rectangular matrix
  | Greedy -> Assignment.Greedy.solve_rectangular matrix

(* Definition 4.5 generalised, over pre-sized arrays: [xs] must be the
   larger side. Lengths are computed once by the caller — the public
   [set_distance] wrapper used to walk both lists four times (two
   [List.length] for the swap, two more for m/k) and re-allocate
   [Array.of_list] on every call. *)
let set_distance_arrays ~strategy d xs ys =
  let m = Array.length xs and k = Array.length ys in
  if m = 0 then 0.
  else begin
    let matrix = Array.init m (fun i -> Array.init k (fun j -> d xs.(i) ys.(j))) in
    let _, total = assign strategy matrix in
    (float_of_int (m - k) +. total) /. float_of_int m
  end

(* Definition 4.5: distance between two multisets given an element
   distance, with unmatched elements penalised by 1. *)
let set_distance ?(strategy = Hungarian) d xs ys =
  let xa = Array.of_list xs and ya = Array.of_list ys in
  let xa, ya = if Array.length xa >= Array.length ya then (xa, ya) else (ya, xa) in
  set_distance_arrays ~strategy d xa ya

let ground_sets ea eb =
  List.iter
    (fun t ->
      if not (Term.is_ground t) then
        invalid_arg "Distance.ground_sets: expressions must be ground")
    (ea @ eb);
  set_distance ground ea eb

(* --- prepared rule views --- *)

(* Everything [Distance.rule] needs that depends only on one side of the
   comparison: the variable-instance map (Definitions 4.7-4.10), the body
   as an array, and a content hash for the rule-pair cache. Until PR 4
   both [Var_instance.of_rule] maps were recomputed inside every rule
   pair, i.e. m*k times per event-description matrix; a view is built
   once per rule, and the gold side of an experiment once per activity
   (see [prepare]). *)
type rule_view = {
  rule : Ast.rule;
  vi : Var_instance.t;
  body : Term.t array;
  hash : int;
}

type prepared = rule_view array

let rule_hash (r : Ast.rule) =
  List.fold_left (fun acc t -> (acc * 31) + Term.hash t) (Term.hash r.head) r.body

let view (r : Ast.rule) =
  { rule = r; vi = Var_instance.of_rule r; body = Array.of_list r.body; hash = rule_hash r }

let prepare rules = Array.of_list (List.map view rules)

(* Definition 4.12 over two prepared views. *)
let rule_views ~strategy v1 v2 =
  let head_distance = expression ~vi1:v1.vi ~vi2:v2.vi v1.rule.Ast.head v2.rule.Ast.head in
  let b1, b2, vi1, vi2 =
    if Array.length v1.body >= Array.length v2.body then (v1.body, v2.body, v1.vi, v2.vi)
    else (v2.body, v1.body, v2.vi, v1.vi)
  in
  let m = Array.length b1 and k = Array.length b2 in
  let body_total =
    if m = 0 then 0.
    else if k = 0 then float_of_int m
    else begin
      let matrix =
        Array.init m (fun i -> Array.init k (fun j -> expression ~vi1 ~vi2 b1.(i) b2.(j)))
      in
      let _, total = assign strategy matrix in
      float_of_int (m - k) +. total
    end
  in
  (head_distance +. body_total) /. float_of_int (m + 1)

let rule ?(strategy = Hungarian) (r1 : Ast.rule) (r2 : Ast.rule) =
  rule_views ~strategy (view r1) (view r2)

(* --- rule-pair distance cache --- *)

(* Content-hashed memo over [rule_views]: experiments grade many
   generated event descriptions against the same fixed gold rules (and
   error models leave most generated rules untouched), so the same rule
   pair recurs across every cost matrix that mentions it. Keys compare
   the full rule content, not just the hash, so collisions cannot corrupt
   a distance; values are deterministic, so a racing duplicate insert is
   harmless. The mutex only guards the table itself — distances are
   computed outside the lock, letting sweep domains fill the cache in
   parallel. *)
module Pair_key = struct
  type t = { h : int; strategy : strategy; v1 : rule_view; v2 : rule_view }

  let rule_equal (a : Ast.rule) (b : Ast.rule) =
    Term.equal a.head b.head && List.equal Term.equal a.body b.body

  let equal a b =
    a.h = b.h && a.strategy = b.strategy
    && rule_equal a.v1.rule b.v1.rule
    && rule_equal a.v2.rule b.v2.rule

  let hash a = a.h
end

module Pair_tbl = Hashtbl.Make (Pair_key)

let cache_mutex = Mutex.create ()
let pair_cache : float Pair_tbl.t = Pair_tbl.create 4096

(* A pair entry is two rules plus a float: at ~1 KB apiece this bounds
   the cache at a few hundred MB worst case, far beyond any experiment
   sweep (the full catalogue is ~10^5 distinct pairs). *)
let max_cache_entries = 1 lsl 18

let clear_cache () =
  Mutex.lock cache_mutex;
  Pair_tbl.reset pair_cache;
  Mutex.unlock cache_mutex

let cached_rule_distance ~strategy v1 v2 =
  let key =
    {
      Pair_key.h =
        ((v1.hash * 31) + v2.hash) lxor (match strategy with Hungarian -> 0 | Greedy -> 1);
      strategy;
      v1;
      v2;
    }
  in
  Mutex.lock cache_mutex;
  let cached = Pair_tbl.find_opt pair_cache key in
  Mutex.unlock cache_mutex;
  match cached with
  | Some d ->
    Telemetry.Metrics.incr m_cache_hit;
    d
  | None ->
    Telemetry.Metrics.incr m_cache_miss;
    let d = rule_views ~strategy v1 v2 in
    Mutex.lock cache_mutex;
    if Pair_tbl.length pair_cache >= max_cache_entries then Pair_tbl.reset pair_cache;
    Pair_tbl.replace pair_cache key d;
    Mutex.unlock cache_mutex;
    d

(* --- event descriptions (Definition 4.14) --- *)

let event_description_prepared ?(strategy = Hungarian) p1 p2 =
  let xs, ys = if Array.length p1 >= Array.length p2 then (p1, p2) else (p2, p1) in
  set_distance_arrays ~strategy (fun a b -> cached_rule_distance ~strategy a b) xs ys

let event_description ?strategy kb1 kb2 =
  event_description_prepared ?strategy (prepare kb1) (prepare kb2)

let similarity_prepared ?strategy p1 p2 = 1. -. event_description_prepared ?strategy p1 p2
let similarity ?strategy kb1 kb2 = 1. -. event_description ?strategy kb1 kb2
