open Rtec

let numeric = function
  | Term.Int n -> Some (float_of_int n)
  | Term.Real r -> Some r
  | _ -> None

(* Shared recursion for Definitions 4.1 and 4.11. [var_case] decides the
   distance between two variables; Definition 4.1 never reaches it because
   its inputs are ground. *)
let rec generic var_case u1 u2 =
  match (u1, u2) with
  | Term.Var v1, Term.Var v2 -> var_case v1 v2
  | Term.Var _, _ | _, Term.Var _ -> 1.
  | _ -> (
    match (numeric u1, numeric u2) with
    | Some x, Some y -> if Float.equal x y then 0. else 1.
    | _ -> (
      match (u1, u2) with
      | Term.Atom a, Term.Atom b -> if String.equal a b then 0. else 1.
      | Term.Compound (p, ss), Term.Compound (q, ts)
        when String.equal p q && List.length ss = List.length ts ->
        let k = float_of_int (List.length ss) in
        let sum = List.fold_left2 (fun acc s t -> acc +. generic var_case s t) 0. ss ts in
        sum /. (2. *. k)
      | _ -> 1.))

let ground u1 u2 =
  if not (Term.is_ground u1 && Term.is_ground u2) then
    invalid_arg "Distance.ground: expressions must be ground";
  generic (fun _ _ -> 1.) u1 u2

let expression ~vi1 ~vi2 u1 u2 =
  let var_case v1 v2 = if Var_instance.equal_instances vi1 v1 vi2 v2 then 0. else 1. in
  generic var_case u1 u2

let cost_matrix d rows cols =
  let m = Array.length rows and k = Array.length cols in
  if k > m then invalid_arg "Distance.cost_matrix: more columns than rows";
  Array.init m (fun i -> Array.init k (fun j -> d rows.(i) cols.(j)))

type strategy = Hungarian | Greedy

let m_assignments = Telemetry.Metrics.counter "similarity.assignments"
let h_matrix_rows = Telemetry.Metrics.histogram "similarity.matrix.rows"
let h_matrix_cols = Telemetry.Metrics.histogram "similarity.matrix.cols"

let assign strategy matrix =
  Telemetry.Metrics.incr m_assignments;
  Telemetry.Metrics.observe h_matrix_rows (float_of_int (Array.length matrix));
  Telemetry.Metrics.observe h_matrix_cols
    (float_of_int (if Array.length matrix = 0 then 0 else Array.length matrix.(0)));
  match strategy with
  | Hungarian -> Assignment.Kuhn_munkres.solve_rectangular matrix
  | Greedy -> Assignment.Greedy.solve_rectangular matrix

(* Definition 4.5 generalised: distance between two multisets given an
   element distance, with unmatched elements penalised by 1. *)
let set_distance ?(strategy = Hungarian) d xs ys =
  let xs, ys = if List.length xs >= List.length ys then (xs, ys) else (ys, xs) in
  let m = List.length xs and k = List.length ys in
  if m = 0 then 0.
  else begin
    let matrix = cost_matrix d (Array.of_list xs) (Array.of_list ys) in
    let _, total = assign strategy matrix in
    (float_of_int (m - k) +. total) /. float_of_int m
  end

let ground_sets ea eb =
  List.iter
    (fun t ->
      if not (Term.is_ground t) then
        invalid_arg "Distance.ground_sets: expressions must be ground")
    (ea @ eb);
  set_distance ground ea eb

let rule ?(strategy = Hungarian) (r1 : Ast.rule) (r2 : Ast.rule) =
  let vi1 = Var_instance.of_rule r1 and vi2 = Var_instance.of_rule r2 in
  let head_distance = expression ~vi1 ~vi2 r1.head r2.head in
  let b1, b2, vi1, vi2 =
    if List.length r1.body >= List.length r2.body then (r1.body, r2.body, vi1, vi2)
    else (r2.body, r1.body, vi2, vi1)
  in
  let m = List.length b1 and k = List.length b2 in
  let body_total =
    if m = 0 then 0.
    else if k = 0 then float_of_int m
    else begin
      let matrix =
        cost_matrix (fun a b -> expression ~vi1 ~vi2 a b) (Array.of_list b1) (Array.of_list b2)
      in
      let _, total = assign strategy matrix in
      float_of_int (m - k) +. total
    end
  in
  (head_distance +. body_total) /. float_of_int (m + 1)

let event_description ?(strategy = Hungarian) kb1 kb2 =
  set_distance ~strategy (fun a b -> rule ~strategy a b) kb1 kb2

let similarity ?strategy kb1 kb2 = 1. -. event_description ?strategy kb1 kb2
