open Rtec

type path = (string * int) list

module M = Map.Make (String)

(* Instance sets are interned into dense integer fingerprints so that
   [equal_instances] — the innermost comparison of every cost-matrix
   cell of Definitions 4.11/4.12 — is one int equality instead of a
   structural list-of-lists compare. The table is process-global and
   mutex-protected: interning runs once per rule variable in [of_rule]
   (and the gold side of an experiment is prepared once per activity),
   while fingerprint comparisons run once per matrix cell, so the lock
   sits on the cold side. Worker domains of the parallel similarity
   sweep intern concurrently; the mutex keeps fingerprints globally
   consistent across domains. *)
let intern_mutex = Mutex.create ()
let intern_table : (path list, int) Hashtbl.t = Hashtbl.create 512

let intern paths =
  Mutex.lock intern_mutex;
  let fp =
    match Hashtbl.find_opt intern_table paths with
    | Some fp -> fp
    | None ->
      let fp = Hashtbl.length intern_table in
      Hashtbl.add intern_table paths fp;
      fp
  in
  Mutex.unlock intern_mutex;
  fp

type t = (path list * int) M.t

let paths_in_term term =
  let rec go prefix t acc =
    match t with
    | Term.Var v -> (v, List.rev prefix) :: acc
    | Term.Atom _ | Term.Int _ | Term.Real _ -> acc
    | Term.Compound (f, args) ->
      let _, acc =
        List.fold_left
          (fun (i, acc) arg -> (i + 1, go ((f, i) :: prefix) arg acc))
          (1, acc) args
      in
      acc
  in
  List.rev (go [] term [])

let of_rule (r : Ast.rule) =
  let add acc (v, path) =
    M.update v (fun o -> Some (path :: Option.value ~default:[] o)) acc
  in
  let collect acc term = List.fold_left add acc (paths_in_term term) in
  let raw = List.fold_left collect M.empty (r.head :: r.body) in
  M.map
    (fun paths ->
      let paths = List.sort_uniq compare paths in
      (paths, intern paths))
    raw

let instances t v =
  match M.find_opt v t with None -> [] | Some (paths, _) -> paths

let fingerprint t v = Option.map snd (M.find_opt v t)

let equal_instances t1 v1 t2 v2 =
  (* A variable absent from its rule has the empty instance set, which
     equals nothing (not even itself) — same semantics as the structural
     [i1 <> [] && i1 = i2] this replaces. *)
  match (M.find_opt v1 t1, M.find_opt v2 t2) with
  | Some (_, f1), Some (_, f2) -> f1 = f2
  | _ -> false
