(** Abstract syntax of RTEC event descriptions.

    An event description is a set of {e activity definitions}; each
    definition is a set of rules with a shared label (the activity name used
    throughout the paper's evaluation, e.g. ["trawling"]). A rule is a head
    atom and a list of body literals, all represented as {!Term.t} so that
    the similarity metric of Section 4 can treat them uniformly as
    expression trees. *)

type rule = { head : Term.t; body : Term.t list; id : string }
(** [id] is a stable provenance label ([""] = anonymous). The parser
    assigns ["<definition>#<i>"] (1-based, in source order); derivation
    records and the blame tables of {!module:Provenance} refer to rules
    by this label. It carries no evaluation semantics. *)

type definition = { name : string; rules : rule list }
(** All rules contributed by one activity (one prompt-G round). *)

type t = definition list
(** An event description. *)

(** The three rule shapes admitted by Definitions 2.2 and 2.4. *)
type kind =
  | Initiated of { fluent : Term.t; value : Term.t; time : Term.t }
  | Terminated of { fluent : Term.t; value : Term.t; time : Term.t }
  | Holds_for of { fluent : Term.t; value : Term.t; interval : Term.t }

val rule : ?id:string -> Term.t -> Term.t list -> rule
val rule_id : rule -> string option
(** [None] when the rule is anonymous ([id = ""]). *)

val with_ids : name:string -> rule list -> rule list
(** Assigns ["name#i"] (1-based) to every anonymous rule, keeping
    existing ids. *)

val kind_of_rule : rule -> kind option
(** [None] when the head is not an [initiatedAt]/[terminatedAt]/[holdsFor]
    atom over a fluent-value pair. *)

val head_indicator : rule -> (string * int) option
(** [(functor, arity)] of the fluent defined by the rule's head. *)

val defined_indicators : t -> (string * int) list
(** Fluent indicators defined by some rule of the event description,
    without duplicates. *)

val all_rules : t -> rule list
val definition : t -> string -> definition option
(** Look up a definition by activity name. *)

val merge : t -> t -> t
(** Concatenates two event descriptions, merging same-named definitions. *)

val body_literal : rule -> int -> Term.t
(** [body_literal r i] is the [i]-th (0-based) body literal. Raises
    [Invalid_argument] when out of range. *)

val map_terms : (Term.t -> Term.t) -> t -> t
(** Applies a term transformation to every head and body literal; used by
    the error models and the syntactic corrector. *)
