(** Input streams.

    A stream carries (i) ground {e input events} — instantaneous happenings
    such as [entersArea(v1, a3)] at time-point 118 — and (ii) {e input
    statically determined fluents} whose maximal intervals are computed
    upstream of RTEC (in the maritime domain, the spatial [proximity]
    fluent). Events are indexed by predicate indicator and by time for the
    engine's two access patterns: scanning a window and point lookups. *)

type event = { time : int; term : Term.t }

type item =
  | Event of event
  | Fluent of (Term.t * Term.t) * Interval.t
      (** an input statically determined fluent batch: a ground
          [(fluent, value)] pair with (part of) its maximal intervals *)
(** One unit of streaming ingestion — the line-protocol payload the
    runtime service consumes ([Runtime.Service.ingest]). *)

type t

val make : ?input_fluents:((Term.t * Term.t) * Interval.t) list -> event list -> t
(** Builds a stream; events need not be sorted. Raises [Invalid_argument]
    on non-ground events. Each input fluent is a ground [(fluent, value)]
    pair with its maximal intervals; duplicate [(fluent, value)] keys are
    merged by unioning their interval lists. *)

val of_items : item list -> t
(** Builds a stream from a batch of ingestion items (events need not be
    sorted); same validation and dedup rules as {!make}. *)

val item_time : item -> int
(** The time an item enters the timeline: the event's time-point, or the
    earliest span start of a fluent batch ([max_int] for an empty
    interval list) — what watermark and lateness bookkeeping key on. *)

val events : t -> event list
(** All events in time order. *)

val size : t -> int
(** Number of events; O(1). *)

val extent : t -> int * int
(** [(min, max)] event time, [(0, 0)] for an empty stream; O(1). *)

val count_in : t -> from:int -> until:int -> int
(** Number of events with [from <= time <= until], by binary search. *)

val events_in : t -> functor_:string * int -> from:int -> until:int -> event list
(** Events with the given indicator and [from <= time <= until]. *)

val events_at : t -> functor_:string * int -> time:int -> event list

val indexed : t -> functor_:string * int -> event array
(** The stream's internal time-sorted event array for an indicator
    ([ [||] ] when absent). Shared, not copied: callers must not mutate
    it. This is the zero-copy access path the rule compiler builds its
    candidate tables from. *)

val input_fluents : t -> ((Term.t * Term.t) * Interval.t) list
val indicators : t -> (string * int) list
(** Event indicators present in the stream. *)

val append : t -> t -> t
(** Concatenates two streams. O(appended batch): the new events are kept
    as a pending tail and the sorted indexes are rebuilt lazily, in one
    merge, on the first query access (so a burst of appends between two
    query-grid advances costs one merge, not one per append). Size,
    extent and input fluents are maintained eagerly; duplicate
    input-fluent keys are unioned. Equal-time events of the left stream
    stay before those of the right. Instrumented: bumps the
    [stream.appends] counter and the [stream.append_events] /
    [stream.merged_size] histograms when telemetry is enabled.

    A stream with an unforced tail must be queried from a single domain
    until its first query access packs it (the runtime's partition
    shards and service buckets each belong to one worker per pass, which
    satisfies this); a packed stream is immutable and freely shared. *)

val append_items : t -> ?input_fluents:((Term.t * Term.t) * Interval.t) list -> event array -> t
(** [append_items s items] appends a batch of events (and optional input
    fluents) without building an intermediate stream — the array-based
    fast path the streaming service's ingest scratch uses. Takes
    ownership of [items]: the array is sorted in place (stable, so
    equal-time events keep their array order) and must not be reused by
    the caller. Raises [Invalid_argument] on non-ground events or
    fluents. Same laziness, ordering and instrumentation as {!append}. *)

val of_batches : t list -> t
(** Folds a list of event batches into one stream with {!append}; the
    empty list yields the empty stream. Chunked/streaming ingestion
    front-ends build their working stream through this entry. *)

val drop_before : t -> int -> t
(** [drop_before s t] is [s] without the events older than time-point
    [t]; input fluents are kept untouched (they are few, and the engine
    clamps them to each window anyway). Returns [s] itself when nothing
    is dropped; otherwise the cut is array slices (per-indicator arrays
    with nothing to drop are shared), not a rebuild. The streaming
    service trims finalised history with this to keep its working set
    bounded. *)

val first_input_time : t -> int option
(** The earliest time-point at which the stream carries any information:
    the first event time or the earliest input-fluent span start,
    whichever is smaller. [None] for a stream with neither. *)

(** {1 Entity sharding}

    Recognition is entity-decomposable: per-entity activities are
    independent up to fluents that relate several entities, so a stream
    can be split along the connected components of its entity graph and
    the shards recognised in parallel (see [Runtime]). *)

val entities : t -> Term.t list
(** The stream's entity keys, in first-appearance order. An argument is
    an entity key when it occurs as the {e first} argument of some event
    or input fluent of the stream — the RTEC convention leads with the
    entity ([velocity(Vessel, ...)], [proximity(Vessel1, Vessel2)]),
    while attribute arguments (areas, numeric readings) never lead.
    Numeric first arguments are never keys. *)

val partition : ?shards:int -> t -> t list
(** [partition ~shards s] splits [s] into at most [shards] streams
    (default: one per component) along the entity-connected components
    of its events and input fluents: items are unioned over all the
    entity keys occurring anywhere in them, so a pairwise fluent such as
    [proximity(V1, V2)] keeps both vessels in one shard and a component
    is never split. Components are grouped into shards greedily by event
    count (deterministically) to balance load. The shards are disjoint
    and cover the stream: every event and input fluent appears in
    exactly one shard. When some event or input fluent has no entity key
    the stream is unsplittable and [[s]] is returned. *)
