type stats = { queries : int; events_processed : int }

let m_queries = Telemetry.Metrics.counter "window.queries"
let m_delta_runs = Telemetry.Metrics.counter "window.delta_runs"
let m_full_runs = Telemetry.Metrics.counter "window.full_runs"
let h_events = Telemetry.Metrics.histogram "window.events_per_query"
let h_carry = Telemetry.Metrics.histogram "window.carry_size"

module FvpMap = Map.Make (struct
  type t = Engine.fvp

  let compare = Engine.compare_fvp
end)

let query_times ~lo ~hi ~window ~step =
  (* The first query fires once a full window has elapsed (so its window
     reaches back to the start of the stream) — capped at [hi], so a stream
     shorter than one window still yields exactly one query. Queries then
     repeat every [step] time-points, with a final query exactly at the end
     of the stream; a step landing exactly on [hi] is not queried twice. *)
  let first = min (lo + window - 1) hi in
  let rec gen q acc = if q >= hi then List.rev (hi :: acc) else gen (q + step) (q :: acc) in
  let rec dedupe = function
    | a :: (b :: _ as rest) when a = b -> dedupe rest
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe (gen first [])

(* The per-query evaluation state, extracted so that the one-shot [run]
   below and the long-lived [Runtime.Service] drive the exact same code:
   whatever path schedules the queries, each query is evaluated by
   [Session.process], so differential guarantees between the batch and
   streaming entry points hold by construction. *)
module Session = struct
  type t = {
    event_description : Ast.t;
    knowledge : Knowledge.t;
    window : int;
    step : int;
    compile : bool;
    delta_ok : bool;
    mutable stream : Stream.t;
    (* The compiled program bakes candidate tables from one fixed stream;
       it stays valid exactly as long as the session evaluates that same
       stream value (physical identity — streams are immutable). *)
    mutable compiled : (Stream.t * Compiled.program) option;
    mutable accumulated : Interval.t FvpMap.t;
    mutable prev_q : int option;
    mutable queries : int;
    mutable events_processed : int;
  }

  type checkpoint = {
    cp_accumulated : Interval.t FvpMap.t;
    cp_prev_q : int option;
    cp_queries : int;
    cp_events_processed : int;
  }

  let create ?(compile = true) ~window ~step ~event_description ~knowledge ~stream () =
    if window <= 0 || step <= 0 then Result.Error "window and step must be positive"
    else
      (* When consecutive windows overlap and every construct in the event
         description is pointwise, the overlap region would be re-derived
         identically: evaluate only the step delta, carrying the previous
         query's fluents forward. Duration-sensitive constructs force a full
         re-evaluation of each window. *)
      Ok
        {
          event_description;
          knowledge;
          window;
          step;
          compile;
          delta_ok = step <= window && Dependency.window_insensitive event_description;
          stream;
          compiled = None;
          accumulated = FvpMap.empty;
          prev_q = None;
          queries = 0;
          events_processed = 0;
        }

  let stream t = t.stream
  let set_stream t stream = t.stream <- stream
  let prev_q t = t.prev_q
  let delta_ok t = t.delta_ok

  let program t =
    if not t.compile then None
    else
      match t.compiled with
      | Some (s, p) when s == t.stream -> Some p
      | _ ->
        let p =
          Compiled.compile ~event_description:t.event_description ~knowledge:t.knowledge
            ~stream:t.stream ()
        in
        t.compiled <- Some (t.stream, p);
        Some p

  let record t (fv, spans) =
    if not (Interval.is_empty spans) then
      t.accumulated <-
        FvpMap.update fv
          (fun o -> Some (Interval.union spans (Option.value ~default:Interval.empty o)))
          t.accumulated

  let process t ~lo q =
    let compiled = program t in
    let window_start = max lo (q - t.window + 1) in
    let eval_from =
      match t.prev_q with
      | Some pq when t.delta_ok && pq + 1 >= window_start -> pq + 1
      | _ -> window_start
    in
    let delta_run = eval_from > window_start in
    let window_events = Stream.count_in t.stream ~from:eval_from ~until:q in
    (* FVPs holding at the evaluation start according to what has been
       recognised so far are carried over by inertia; every FVP ever
       recognised remains a grounding candidate for holdsFor schemas. *)
    let carry, universe =
      FvpMap.fold
        (fun fv spans (carry, universe) ->
          ((if Interval.mem eval_from spans then fv :: carry else carry), fv :: universe))
        t.accumulated ([], [])
    in
    Telemetry.Metrics.incr m_queries;
    Telemetry.Metrics.incr (if delta_run then m_delta_runs else m_full_runs);
    Derivation.record_query ~q ~eval_from ~window_start;
    Telemetry.Metrics.observe h_events (float_of_int window_events);
    Telemetry.Metrics.observe h_carry (float_of_int (List.length carry));
    let sp = Telemetry.Trace.start "window.query" in
    let outcome =
      Engine.run ~carry ~universe ~input_from:window_start ?compiled
        ~event_description:t.event_description ~knowledge:t.knowledge ~stream:t.stream
        ~from:eval_from ~until:q ()
    in
    Telemetry.Trace.finish sp
      ~args:
        [
          ("q", Telemetry.Trace.Int q);
          ("delta", Telemetry.Trace.Bool delta_run);
          ("events", Telemetry.Trace.Int window_events);
          ("carry", Telemetry.Trace.Int (List.length carry));
        ];
    match outcome with
    | Result.Error e -> Result.Error e
    | Ok result ->
      (* Truncate open intervals just past the query horizon so that the
         next (overlapping) window extends them seamlessly. *)
      let horizon = q + 2 in
      List.iter (fun (fv, spans) -> record t (fv, Interval.clamp eval_from horizon spans)) result;
      t.queries <- t.queries + 1;
      t.events_processed <- t.events_processed + window_events;
      t.prev_q <- Some q;
      Ok ()

  let save t =
    {
      cp_accumulated = t.accumulated;
      cp_prev_q = t.prev_q;
      cp_queries = t.queries;
      cp_events_processed = t.events_processed;
    }

  let restore t cp =
    t.accumulated <- cp.cp_accumulated;
    t.prev_q <- cp.cp_prev_q;
    t.queries <- cp.cp_queries;
    t.events_processed <- cp.cp_events_processed

  (* Union of two evaluation states over disjoint entity components: the
     streaming service calls this when a cross-entity item joins two
     previously independent buckets. Both sides must have processed the
     same query grid (the service guarantees it), so the merged state is
     exactly what one session over the union stream would hold. *)
  let absorb t other =
    t.accumulated <-
      FvpMap.union
        (fun _ a b -> Some (Interval.union a b))
        t.accumulated other.accumulated;
    t.prev_q <-
      (match (t.prev_q, other.prev_q) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (max a b));
    t.queries <- t.queries + other.queries;
    t.events_processed <- t.events_processed + other.events_processed

  let merge_checkpoint a b =
    {
      cp_accumulated =
        FvpMap.union
          (fun _ x y -> Some (Interval.union x y))
          a.cp_accumulated b.cp_accumulated;
      cp_prev_q =
        (match (a.cp_prev_q, b.cp_prev_q) with
        | None, x | x, None -> x
        | Some x, Some y -> Some (max x y));
      cp_queries = a.cp_queries + b.cp_queries;
      cp_events_processed = a.cp_events_processed + b.cp_events_processed;
    }

  let result t = FvpMap.fold (fun fv spans acc -> (fv, spans) :: acc) t.accumulated []

  (* O(1) capture: the sequence ranges over the persistent accumulated
     map as of this call, unaffected by later [process]/[restore] — what
     the streaming service's lazy per-tick results are built from. *)
  let result_seq t = FvpMap.to_seq t.accumulated
  let stats t = { queries = t.queries; events_processed = t.events_processed }
end

let run ?window ?step ?extent ?(compile = true) ~event_description ~knowledge ~stream () =
  (* [extent] overrides the query-time grid: a shard of a partitioned
     stream must evaluate the same query times as every other shard (and
     as the unsharded run), so the sharding runtime passes the full
     stream's extent here. *)
  let lo, hi = Option.value ~default:(Stream.extent stream) extent in
  (* Without an explicit window, a single query covers the whole extent. *)
  let window = Option.value ~default:(hi - lo + 1) window in
  let step = Option.value ~default:window step in
  match Session.create ~compile ~window ~step ~event_description ~knowledge ~stream () with
  | Result.Error e -> Result.Error e
  | Ok session -> (
    let rec loop = function
      | [] -> None
      | q :: rest -> (
        match Session.process session ~lo q with Error e -> Some e | Ok () -> loop rest)
    in
    let delta_ok = Session.delta_ok session in
    match
      Telemetry.Trace.with_span "window.run"
        ~args:
          [
            ("window", Telemetry.Trace.Int window);
            ("step", Telemetry.Trace.Int step);
            ("delta_ok", Telemetry.Trace.Bool delta_ok);
          ]
        (fun () -> loop (query_times ~lo ~hi ~window ~step))
    with
    | Some e -> Result.Error e
    | None -> Ok (Session.result session, Session.stats session))
