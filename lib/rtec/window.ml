type stats = { queries : int; events_processed : int }

let m_queries = Telemetry.Metrics.counter "window.queries"
let m_delta_runs = Telemetry.Metrics.counter "window.delta_runs"
let m_full_runs = Telemetry.Metrics.counter "window.full_runs"
let h_events = Telemetry.Metrics.histogram "window.events_per_query"
let h_carry = Telemetry.Metrics.histogram "window.carry_size"

module FvpMap = Map.Make (struct
  type t = Engine.fvp

  let compare = Engine.compare_fvp
end)

let query_times ~lo ~hi ~window ~step =
  (* The first query fires once a full window has elapsed (so its window
     reaches back to the start of the stream) — capped at [hi], so a stream
     shorter than one window still yields exactly one query. Queries then
     repeat every [step] time-points, with a final query exactly at the end
     of the stream; a step landing exactly on [hi] is not queried twice. *)
  let first = min (lo + window - 1) hi in
  let rec gen q acc = if q >= hi then List.rev (hi :: acc) else gen (q + step) (q :: acc) in
  let rec dedupe = function
    | a :: (b :: _ as rest) when a = b -> dedupe rest
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe (gen first [])

let run ?window ?step ?extent ?(compile = true) ~event_description ~knowledge ~stream () =
  (* [extent] overrides the query-time grid: a shard of a partitioned
     stream must evaluate the same query times as every other shard (and
     as the unsharded run), so the sharding runtime passes the full
     stream's extent here. *)
  let lo, hi = Option.value ~default:(Stream.extent stream) extent in
  (* Compile the event description once per run; every window reuses the
     program (the intern ids baked into its closures never go stale). *)
  let compiled =
    if compile then Some (Compiled.compile ~event_description ~knowledge ~stream ())
    else None
  in
  (* Without an explicit window, a single query covers the whole extent. *)
  let window = Option.value ~default:(hi - lo + 1) window in
  let step = Option.value ~default:window step in
  if window <= 0 || step <= 0 then Result.Error "window and step must be positive"
  else begin
    (* When consecutive windows overlap and every construct in the event
       description is pointwise, the overlap region would be re-derived
       identically: evaluate only the step delta, carrying the previous
       query's fluents forward. Duration-sensitive constructs force a full
       re-evaluation of each window. *)
    let delta_ok = step <= window && Dependency.window_insensitive event_description in
    let accumulated = ref FvpMap.empty in
    let queries = ref 0 and events_processed = ref 0 in
    let prev_q = ref None in
    let record (fv, spans) =
      if not (Interval.is_empty spans) then
        accumulated :=
          FvpMap.update fv
            (fun o -> Some (Interval.union spans (Option.value ~default:Interval.empty o)))
            !accumulated
    in
    let process q =
      let window_start = max lo (q - window + 1) in
      let eval_from =
        match !prev_q with
        | Some pq when delta_ok && pq + 1 >= window_start -> pq + 1
        | _ -> window_start
      in
      let delta_run = eval_from > window_start in
      let window_events = Stream.count_in stream ~from:eval_from ~until:q in
      (* FVPs holding at the evaluation start according to what has been
         recognised so far are carried over by inertia; every FVP ever
         recognised remains a grounding candidate for holdsFor schemas. *)
      let carry, universe =
        FvpMap.fold
          (fun fv spans (carry, universe) ->
            ((if Interval.mem eval_from spans then fv :: carry else carry), fv :: universe))
          !accumulated ([], [])
      in
      Telemetry.Metrics.incr m_queries;
      Telemetry.Metrics.incr (if delta_run then m_delta_runs else m_full_runs);
      Derivation.record_query ~q ~eval_from ~window_start;
      Telemetry.Metrics.observe h_events (float_of_int window_events);
      Telemetry.Metrics.observe h_carry (float_of_int (List.length carry));
      let sp = Telemetry.Trace.start "window.query" in
      let outcome =
        Engine.run ~carry ~universe ~input_from:window_start ?compiled ~event_description
          ~knowledge ~stream ~from:eval_from ~until:q ()
      in
      Telemetry.Trace.finish sp
        ~args:
          [
            ("q", Telemetry.Trace.Int q);
            ("delta", Telemetry.Trace.Bool delta_run);
            ("events", Telemetry.Trace.Int window_events);
            ("carry", Telemetry.Trace.Int (List.length carry));
          ];
      match outcome with
      | Result.Error e -> Some e
      | Ok result ->
        (* Truncate open intervals just past the query horizon so that the
           next (overlapping) window extends them seamlessly. *)
        let horizon = q + 2 in
        List.iter (fun (fv, spans) -> record (fv, Interval.clamp eval_from horizon spans)) result;
        incr queries;
        events_processed := !events_processed + window_events;
        prev_q := Some q;
        None
    in
    let rec loop = function
      | [] -> None
      | q :: rest -> ( match process q with Some e -> Some e | None -> loop rest)
    in
    match
      Telemetry.Trace.with_span "window.run"
        ~args:
          [
            ("window", Telemetry.Trace.Int window);
            ("step", Telemetry.Trace.Int step);
            ("delta_ok", Telemetry.Trace.Bool delta_ok);
          ]
        (fun () -> loop (query_times ~lo ~hi ~window ~step))
    with
    | Some e -> Result.Error e
    | None ->
      let result = FvpMap.fold (fun fv spans acc -> (fv, spans) :: acc) !accumulated [] in
      Ok (result, { queries = !queries; events_processed = !events_processed })
  end
