exception Error of { line : int; message : string }

type state = { mutable tokens : (Lexer.token * int) list }

let peek st = match st.tokens with [] -> (Lexer.EOF, 0) | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let fail_at line message = raise (Error { line; message })

let fail st message =
  let tok, line = peek st in
  fail_at line (Format.asprintf "%s (found %a)" message Lexer.pp_token tok)

let expect st token message =
  let tok, _ = peek st in
  if tok = token then advance st else fail st message

let cmp_ops = [ "="; "<"; ">"; ">="; "=<"; "\\=" ]

let rec parse_term_st st =
  let lhs = parse_additive st in
  match peek st with
  | Lexer.OP op, _ when List.mem op cmp_ops ->
    advance st;
    let rhs = parse_additive st in
    Term.Compound (op, [ lhs; rhs ])
  | _ -> lhs

and parse_additive st =
  let rec loop acc =
    match peek st with
    | Lexer.OP (("+" | "-") as op), _ ->
      advance st;
      let rhs = parse_multiplicative st in
      loop (Term.Compound (op, [ acc; rhs ]))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek st with
    | Lexer.OP (("*" | "/") as op), _ ->
      advance st;
      let rhs = parse_primary st in
      loop (Term.Compound (op, [ acc; rhs ]))
    | _ -> acc
  in
  loop (parse_primary st)

and parse_primary st =
  match peek st with
  | Lexer.INT n, _ ->
    advance st;
    Term.Int n
  | Lexer.REAL r, _ ->
    advance st;
    Term.Real r
  | Lexer.VAR v, _ ->
    advance st;
    Term.Var v
  | Lexer.NOT, _ ->
    advance st;
    Term.neg (parse_term_st st)
  | Lexer.ATOM a, _ -> (
    advance st;
    match peek st with
    | Lexer.LPAREN, _ ->
      advance st;
      let args = parse_term_list st in
      expect st Lexer.RPAREN "expected ')' closing argument list";
      Term.Compound (a, args)
    | _ -> Term.Atom a)
  | Lexer.LBRACKET, _ -> (
    advance st;
    match peek st with
    | Lexer.RBRACKET, _ ->
      advance st;
      Term.list_ []
    | _ ->
      let elems = parse_term_list st in
      expect st Lexer.RBRACKET "expected ']' closing list";
      Term.list_ elems)
  | Lexer.LPAREN, _ ->
    advance st;
    let t = parse_term_st st in
    expect st Lexer.RPAREN "expected ')'";
    t
  | _ -> fail st "expected a term"

and parse_term_list st =
  let first = parse_term_st st in
  let rec loop acc =
    match peek st with
    | Lexer.COMMA, _ ->
      advance st;
      loop (parse_term_st st :: acc)
    | _ -> List.rev acc
  in
  loop [ first ]

let parse_clause st =
  let head = parse_term_st st in
  match peek st with
  | Lexer.DOT, _ ->
    advance st;
    Ast.rule head []
  | Lexer.ARROW, _ ->
    advance st;
    let body = parse_term_list st in
    expect st Lexer.DOT "expected '.' ending clause";
    Ast.rule head body
  | _ -> fail st "expected ':-' or '.' after clause head"

let parse_program st =
  let rec loop acc =
    match peek st with
    | Lexer.EOF, _ -> List.rev acc
    | _ -> loop (parse_clause st :: acc)
  in
  loop []

let with_input input k =
  let tokens =
    try Lexer.tokenize input
    with Lexer.Error { line; message } -> fail_at line message
  in
  k { tokens }

let parse_term input =
  with_input input (fun st ->
      let t = parse_term_st st in
      match peek st with
      | (Lexer.EOF | Lexer.DOT), _ -> t
      | _ -> fail st "trailing input after term")

let parse_clauses input = with_input input parse_program

let parse_definition ~name input =
  { Ast.name; rules = Ast.with_ids ~name (parse_clauses input) }

let parse_clauses_result input =
  match parse_clauses input with
  | rules -> Ok rules
  | exception Error { line; message } ->
    Result.Error (Printf.sprintf "line %d: %s" line message)
  | exception Failure message ->
    (* e.g. an integer literal exceeding the native range *)
    Result.Error ("malformed input: " ^ message)
