(** Rule compilation: transition rules as closure chains over interned
    ground terms.

    [compile] specialises every [initiatedAt]/[terminatedAt] rule of an
    event description against a fixed stream and knowledge base:
    candidate events and facts are pre-interned into flat per-indicator
    tables, pattern matching becomes integer comparison on {!Intern}
    ids, numeric guards read unboxed floats, and [holdsAt] probes hit
    the int-keyed engine cache through a callback. A compiled chain
    explores exactly the search tree the interpreter would (same
    candidate order, same depth-first backtracking), so recognition
    results — and the engine's hit/miss/rule-evaluation counters — are
    bit-identical.

    The compiler is deliberately partial: rule shapes outside the
    analysed fragment (unbound probe arguments, [=] unification
    literals, non-ground heads such as termination patterns, non-simple
    event/time terms) are marked {!Interpreted} and the engine falls
    back to the interpreter for those rules only.

    A program's closure frames are mutable and unsynchronised: a program
    belongs to one domain. Each runtime shard compiles its own. *)

type compiled_rule

type rule_code = Compiled of compiled_rule | Interpreted

type program

val compile :
  event_description:Ast.t -> knowledge:Knowledge.t -> stream:Stream.t -> unit -> program
(** Compile every transition rule of each simple fluent. Never fails:
    uncompilable rules are recorded as {!Interpreted}. *)

val intern : program -> Intern.t
(** The program's intern table. The engine shares it with its cache so
    fvp ids baked into closures address cache entries directly. *)

val rule_code : program -> ind:string * int -> index:int -> rule_code option
(** Code for the [index]-th rule (in [Dependency.info] order) of a
    fluent indicator; [None] for indicators unknown to the program. *)

val stats : program -> int * int
(** [(compiled, fallback)] rule counts. *)

val run_rule :
  compiled_rule ->
  from:int ->
  until:int ->
  probe:(int -> int -> bool) ->
  miss:(unit -> unit) ->
  emit:(int -> int -> unit) ->
  unit
(** Fire a compiled chain over the window [\[from, until\]]. [probe fvp t]
    answers ground [holdsAt] queries against the cache; [miss] is called
    when a probe's fluent term was never interned (a guaranteed cache
    miss, counted by the engine); [emit fvp t] receives each derived
    ground transition point, possibly with duplicates — exactly the
    solution multiset the interpreter derives. *)

(** {1 Binding exposure}

    The derivation recorder reads the successful substitution straight
    out of a chain's slot frame at emission time — the compiled
    equivalent of [Subst.bindings] on an interpreted solution. *)

val binding_vars : compiled_rule -> (string * bool) array
(** The rule's bound variables in name order, [true] marking time-valued
    slots. The set matches the domain of the substitution the
    interpreter would produce for the same rule: variables bound by
    positive body literals (negation-scoped temporaries excluded), which
    includes every head variable of a compilable rule. *)

val binding_value : compiled_rule -> int -> int
(** The current frame value of the [i]-th binding of {!binding_vars}:
    the {!Intern} id of the bound term, or the raw time-point for a
    time-valued slot. Only meaningful inside an [emit] callback, when
    the whole chain has bound its slots. Allocation-free. *)
