(** Maximal-interval algebra.

    RTEC computes, for every fluent-value pair, the list of {e maximal
    intervals} during which it holds continuously. We represent an interval
    as a half-open span [\[start, stop)] over integer time-points, with
    [stop = infinity] for intervals that are still open at the end of the
    window. A span list is kept {e normalised}: sorted, pairwise disjoint and
    non-adjacent, with every span non-empty. *)

type span = { start : int; stop : int }
(** Half-open: [holdsAt T] for all [start <= T < stop]. *)

type t = span list
(** A normalised list of maximal intervals. *)

val infinity : int
(** Sentinel used as the [stop] of an open interval. *)

val make : int -> int -> span
(** [make s e] builds the span [\[s, e)]. Raises [Invalid_argument] when
    [e <= s]. *)

val empty : t
val is_empty : t -> bool
val of_list : (int * int) list -> t
(** Normalises an arbitrary list of [(start, stop)] pairs: empty pairs are
    dropped, overlapping or adjacent pairs are merged. *)

val to_list : t -> (int * int) list
val equal : t -> t -> bool
val mem : int -> t -> bool
(** [mem t i] holds when time-point [t] falls inside one of the spans. *)

val duration : t -> int
(** Total number of time-points covered; open spans count up to
    [infinity] (callers should [clamp] first when that matters). *)

val clamp : int -> int -> t -> t
(** [clamp lo hi i] restricts [i] to the window [\[lo, hi)]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val union_all : t list -> t
(** RTEC's [union_all] interval construct. *)

val intersect_all : t list -> t
(** RTEC's [intersect_all]; the intersection of no lists is empty. *)

val relative_complement_all : t -> t list -> t
(** RTEC's [relative_complement_all(I, L, I')] : the sub-intervals of [I]
    not covered by any list in [L]. *)

val filter_duration : min_duration:int -> t -> t
(** RTEC's [intDurGreater] construct: keeps the maximal intervals lasting
    strictly longer than [min_duration] time-points (open intervals always
    qualify). *)

val from_points : starts:int list -> stops:int list -> t
(** Maximal intervals from initiation and termination points, per RTEC's
    inertia semantics: an initiation at [Ts] opens an interval at [Ts + 1]
    (even when a termination also fires at [Ts]); the interval closes at
    [Te + 1] for the first termination [Te > Ts]; intermediate initiations
    are ignored; a final unmatched initiation yields an open interval.
    Duplicate points are tolerated (they cannot change the result). *)

val from_point_arrays : starts:int array -> stops:int array -> t
(** Flat-array variant of {!from_points} for allocation-sensitive
    callers; sorts both argument arrays in place (they are treated as
    caller-owned scratch). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
