(** Hash-consed ground terms and fluent-value pairs with dense int ids.

    The compiled evaluation layer ({!Compiled}, and the int-keyed
    [Engine.Cache]) replaces structural term comparison with integer
    equality: interning maps each distinct ground {!Term.t} to a dense
    id, and each (fluent, value) pair of ids to a dense FVP id.

    Invariants the compiler relies on:
    - ids are assigned densely in first-interning order and are {e
      never} invalidated or reused — the table only grows, so ids baked
      into compiled closures stay valid for every later window;
    - interning is injective on ground terms up to {!Term.equal}:
      [id_of_term t a = id_of_term t b] iff [Term.equal a b];
    - {!term_of_id} returns the first term interned under that id, so
      round-tripping preserves structural equality. *)

type t

val create : unit -> t

val id_of_term : t -> Term.t -> int
(** Intern (creating the id on first sight). Intended for ground terms;
    non-ground terms intern fine but compare structurally, variable
    names included. *)

val find_term : t -> Term.t -> int option
(** Non-creating lookup: [None] when the term was never interned. *)

val term_of_id : t -> int -> Term.t
val term_count : t -> int

val fvp_id : t -> fluent:int -> value:int -> int
(** Intern a fluent-value pair of already-interned term ids. *)

val find_fvp : t -> fluent:int -> value:int -> int option
val fvp_of_terms : t -> Term.t -> Term.t -> int
val find_fvp_terms : t -> Term.t -> Term.t -> int option
val fvp_terms : t -> int -> Term.t * Term.t
(** The canonical term pair of an FVP id (allocated once at interning
    time; repeated calls return the same physical pair). *)

val fvp_fluent_id : t -> int -> int
val fvp_value_id : t -> int -> int
val fvp_count : t -> int
