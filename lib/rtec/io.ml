let span_term (s : Interval.span) =
  let stop = if s.stop = Interval.infinity then Term.Atom "inf" else Term.Int s.stop in
  Term.list_ [ Term.Int s.start; stop ]

let spans_term spans = Term.list_ (List.map span_term spans)

let spans_of_term t =
  match Term.as_list t with
  | None -> invalid_arg "Io: expected a list of spans"
  | Some elems ->
    List.map
      (fun e ->
        match Term.as_list e with
        | Some [ Term.Int s; Term.Int stop ] -> (s, stop)
        | Some [ Term.Int s; Term.Atom "inf" ] -> (s, Interval.infinity)
        | _ -> invalid_arg "Io: expected a two-element [start, stop] span")
      elems
    |> Interval.of_list

let stream_to_string stream =
  let b = Buffer.create 4096 in
  List.iter
    (fun ((fluent, value), spans) ->
      Buffer.add_string b
        (Printf.sprintf "holdsFor(%s, %s).\n"
           (Term.to_string (Term.eq fluent value))
           (Term.to_string (spans_term spans))))
    (Stream.input_fluents stream);
  List.iter
    (fun (e : Stream.event) ->
      Buffer.add_string b
        (Printf.sprintf "happensAt(%s, %d).\n" (Term.to_string e.term) e.time))
    (Stream.events stream);
  Buffer.contents b

(* The single fact-to-item conversion both the parser-backed slow path
   and the codec's fallback go through: a parsed clause is either an
   event occurrence or an input-fluent batch. *)
let item_of_fact ~ctx (r : Ast.rule) =
  if r.body <> [] then invalid_arg (ctx ^ ": expected facts");
  match r.head with
  | Term.Compound ("happensAt", [ term; Term.Int time ]) ->
    Stream.Event { Stream.time; term }
  | Term.Compound ("holdsFor", [ fv; spans ]) -> (
    match Term.as_fvp fv with
    | Some (f, v) -> Stream.Fluent ((f, v), spans_of_term spans)
    | None -> invalid_arg (ctx ^ ": holdsFor expects a fluent-value pair"))
  | other ->
    invalid_arg (Printf.sprintf "%s: unexpected fact %s" ctx (Term.to_string other))

(* The general path: full lexer -> parser -> AST pipeline, input order
   preserved. *)
let items_via_parser ~ctx source =
  List.map (item_of_fact ~ctx) (Parser.parse_clauses source)

module Codec = struct
  (* A hand-rolled recognizer for the two line shapes the serve/stream
     protocol actually uses,

       happensAt(F(args...), T).
       holdsFor(F(args...) = V, [[S1, E1], ...]).

     scanning bytes directly into terms without tokenizing. It accepts a
     strict subset of the parser's grammar chosen so that whenever the
     fast path produces items at all, they are exactly what
     {!items_via_parser} would produce (the differential test in
     test/test_codec.ml holds this). Anything outside the subset —
     quoted atoms, variables, arithmetic, rules, block comments,
     oversized integer literals — aborts the fast scan and re-parses the
     *whole* input through the general path, so error behaviour and
     results on exotic input are the parser's by construction. *)

  let m_fast = Telemetry.Metrics.counter "io.codec.fast"
  let m_fallback = Telemetry.Metrics.counter "io.codec.fallback"

  (* Atom memo: one shared [Term.Atom] per name, so repeated vocabulary
     (functors appear as [Compound] heads, but entity ids, values and
     [inf] recur as atoms) costs a hash lookup instead of an allocation.
     A codec value is confined to one reader thread; the service gives
     each connection its own. (The program-level [Intern] table is not
     available here: interning to dense ids needs a compiled program,
     which does not exist yet at ingest time.) *)
  type t = { atoms : (string, Term.t) Hashtbl.t }

  let create () = { atoms = Hashtbl.create 256 }

  let atom t name =
    match Hashtbl.find_opt t.atoms name with
    | Some a -> a
    | None ->
      let a = Term.Atom name in
      Hashtbl.replace t.atoms name a;
      a

  exception Fallback

  type cursor = { src : string; len : int; mutable pos : int }

  let is_lower c = c >= 'a' && c <= 'z'
  let is_digit c = c >= '0' && c <= '9'

  let is_ident c =
    is_lower c || is_digit c || (c >= 'A' && c <= 'Z') || c = '_'

  (* Whitespace and % line comments, exactly as the lexer skips them;
     /* block comments bail to the general path. *)
  let rec skip_ws c =
    if c.pos < c.len then
      match c.src.[c.pos] with
      | ' ' | '\t' | '\r' | '\n' ->
        c.pos <- c.pos + 1;
        skip_ws c
      | '%' ->
        while c.pos < c.len && c.src.[c.pos] <> '\n' do
          c.pos <- c.pos + 1
        done;
        skip_ws c
      | '/' when c.pos + 1 < c.len && c.src.[c.pos + 1] = '*' -> raise Fallback
      | _ -> ()

  let expect c ch =
    skip_ws c;
    if c.pos < c.len && c.src.[c.pos] = ch then c.pos <- c.pos + 1
    else raise Fallback

  (* Identifier starting with a lowercase letter; [not] is an operator
     to the lexer, so it bails. *)
  let scan_ident c =
    let start = c.pos in
    c.pos <- c.pos + 1;
    while c.pos < c.len && is_ident c.src.[c.pos] do
      c.pos <- c.pos + 1
    done;
    let word = String.sub c.src start (c.pos - start) in
    if String.equal word "not" then raise Fallback;
    word

  (* Mirrors the lexer's number rule: [-]digits, continuing into a real
     only on '.' followed by a digit. Integers are accumulated directly
     (bailing over 18 digits, where native-int behaviour would diverge);
     reals go through [float_of_string] on the exact slice the lexer
     would take, so the value is bit-identical. *)
  let scan_number c =
    let start = c.pos in
    if c.src.[c.pos] = '-' then c.pos <- c.pos + 1;
    let d0 = c.pos in
    while c.pos < c.len && is_digit c.src.[c.pos] do
      c.pos <- c.pos + 1
    done;
    if c.pos = d0 || c.pos - d0 > 18 then raise Fallback;
    if c.pos + 1 < c.len && c.src.[c.pos] = '.' && is_digit c.src.[c.pos + 1] then begin
      c.pos <- c.pos + 1;
      while c.pos < c.len && is_digit c.src.[c.pos] do
        c.pos <- c.pos + 1
      done;
      Term.Real (float_of_string (String.sub c.src start (c.pos - start)))
    end
    else begin
      let v = ref 0 in
      for i = d0 to c.pos - 1 do
        v := (!v * 10) + (Char.code c.src.[i] - Char.code '0')
      done;
      Term.Int (if c.src.[start] = '-' then - !v else !v)
    end

  let scan_int c =
    match scan_number c with Term.Int n -> n | _ -> raise Fallback

  (* Ground primary terms: atoms, numbers, compounds, lists. The caller
     checks the following delimiter, which is what keeps the subset
     honest — an operator after a primary (arithmetic, comparisons)
     means the parser would have kept going, so the scan bails there. *)
  let rec scan_term t c =
    skip_ws c;
    if c.pos >= c.len then raise Fallback;
    let ch = c.src.[c.pos] in
    if is_lower ch then begin
      let name = scan_ident c in
      if c.pos < c.len && c.src.[c.pos] = '(' then begin
        c.pos <- c.pos + 1;
        Term.Compound (name, scan_args t c)
      end
      else atom t name
    end
    else if is_digit ch then scan_number c
    else if ch = '-' && c.pos + 1 < c.len && is_digit c.src.[c.pos + 1] then
      scan_number c
    else if ch = '[' then begin
      c.pos <- c.pos + 1;
      skip_ws c;
      if c.pos < c.len && c.src.[c.pos] = ']' then begin
        c.pos <- c.pos + 1;
        Term.list_ []
      end
      else Term.list_ (scan_elems t c ~stop:']')
    end
    else raise Fallback

  and scan_args t c = scan_elems t c ~stop:')'

  and scan_elems t c ~stop =
    let rec loop acc =
      let e = scan_term t c in
      skip_ws c;
      if c.pos >= c.len then raise Fallback
      else if c.src.[c.pos] = ',' then begin
        c.pos <- c.pos + 1;
        loop (e :: acc)
      end
      else if c.src.[c.pos] = stop then begin
        c.pos <- c.pos + 1;
        List.rev (e :: acc)
      end
      else raise Fallback
    in
    loop []

  (* [[S, E], ...] with E an integer or the open-interval atom [inf];
     built straight into span pairs, unioned by [Interval.of_list] just
     like {!spans_of_term}. *)
  let scan_spans c =
    expect c '[';
    skip_ws c;
    if c.pos < c.len && c.src.[c.pos] = ']' then begin
      c.pos <- c.pos + 1;
      Interval.of_list []
    end
    else begin
      let scan_span () =
        expect c '[';
        skip_ws c;
        let start = scan_int c in
        expect c ',';
        skip_ws c;
        if c.pos >= c.len then raise Fallback;
        let stop =
          let ch = c.src.[c.pos] in
          if is_digit ch || ch = '-' then scan_int c
          else if is_lower ch && String.equal (scan_ident c) "inf" then
            Interval.infinity
          else raise Fallback
        in
        expect c ']';
        (start, stop)
      in
      let rec loop acc =
        let span = scan_span () in
        skip_ws c;
        if c.pos >= c.len then raise Fallback
        else if c.src.[c.pos] = ',' then begin
          c.pos <- c.pos + 1;
          skip_ws c;
          loop (span :: acc)
        end
        else if c.src.[c.pos] = ']' then begin
          c.pos <- c.pos + 1;
          Interval.of_list (List.rev (span :: acc))
        end
        else raise Fallback
      in
      loop []
    end

  let scan_fact t c =
    if not (is_lower c.src.[c.pos]) then raise Fallback;
    let name = scan_ident c in
    expect c '(';
    match name with
    | "happensAt" ->
      let term = scan_term t c in
      expect c ',';
      skip_ws c;
      if c.pos >= c.len then raise Fallback;
      let time =
        let ch = c.src.[c.pos] in
        if is_digit ch || ch = '-' then scan_int c else raise Fallback
      in
      expect c ')';
      expect c '.';
      Stream.Event { Stream.time; term }
    | "holdsFor" ->
      let f = scan_term t c in
      skip_ws c;
      (* exactly '=', not the lexer's two-character '=<' *)
      if
        not
          (c.pos < c.len
          && c.src.[c.pos] = '='
          && not (c.pos + 1 < c.len && c.src.[c.pos + 1] = '<'))
      then raise Fallback;
      c.pos <- c.pos + 1;
      let v = scan_term t c in
      expect c ',';
      skip_ws c;
      let spans = scan_spans c in
      expect c ')';
      expect c '.';
      Stream.Fluent ((f, v), spans)
    | _ -> raise Fallback

  let scan_items t source =
    let c = { src = source; len = String.length source; pos = 0 } in
    let rec loop acc n =
      skip_ws c;
      if c.pos >= c.len then (List.rev acc, n)
      else loop (scan_fact t c :: acc) (n + 1)
    in
    loop [] 0

  let items_of_string_ctx ~ctx t source =
    match scan_items t source with
    | items, n ->
      Telemetry.Metrics.incr ~by:n m_fast;
      items
    | exception Fallback ->
      Telemetry.Metrics.incr m_fallback;
      Telemetry.Flight.record Codec_fallback ~a:(String.length source) ();
      items_via_parser ~ctx source

  let items_of_string t source =
    items_of_string_ctx ~ctx:"Io.items_of_string" t source
end

let stream_of_string source =
  Stream.of_items
    (Codec.items_of_string_ctx ~ctx:"Io.stream_of_string" (Codec.create ()) source)

(* The serve line protocol is the stream file format read incrementally:
   each parsed fact becomes one ingestion item, input order preserved. *)
let items_of_string source = Codec.items_of_string (Codec.create ()) source

let knowledge_to_string kb =
  String.concat ""
    (List.map (fun fact -> Term.to_string fact ^ ".\n") (Knowledge.facts kb))

let knowledge_of_string = Knowledge.of_source

let write_stream oc stream = output_string oc (stream_to_string stream)

let read_all ic = really_input_string ic (in_channel_length ic)
let read_stream ic = stream_of_string (read_all ic)
let write_knowledge oc kb = output_string oc (knowledge_to_string kb)
let read_knowledge ic = knowledge_of_string (read_all ic)
