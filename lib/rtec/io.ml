let span_term (s : Interval.span) =
  let stop = if s.stop = Interval.infinity then Term.Atom "inf" else Term.Int s.stop in
  Term.list_ [ Term.Int s.start; stop ]

let spans_term spans = Term.list_ (List.map span_term spans)

let spans_of_term t =
  match Term.as_list t with
  | None -> invalid_arg "Io: expected a list of spans"
  | Some elems ->
    List.map
      (fun e ->
        match Term.as_list e with
        | Some [ Term.Int s; Term.Int stop ] -> (s, stop)
        | Some [ Term.Int s; Term.Atom "inf" ] -> (s, Interval.infinity)
        | _ -> invalid_arg "Io: expected a two-element [start, stop] span")
      elems
    |> Interval.of_list

let stream_to_string stream =
  let b = Buffer.create 4096 in
  List.iter
    (fun ((fluent, value), spans) ->
      Buffer.add_string b
        (Printf.sprintf "holdsFor(%s, %s).\n"
           (Term.to_string (Term.eq fluent value))
           (Term.to_string (spans_term spans))))
    (Stream.input_fluents stream);
  List.iter
    (fun (e : Stream.event) ->
      Buffer.add_string b
        (Printf.sprintf "happensAt(%s, %d).\n" (Term.to_string e.term) e.time))
    (Stream.events stream);
  Buffer.contents b

let stream_of_string source =
  let events = ref [] and fluents = ref [] in
  List.iter
    (fun (r : Ast.rule) ->
      if r.body <> [] then invalid_arg "Io.stream_of_string: expected facts";
      match r.head with
      | Term.Compound ("happensAt", [ term; Term.Int time ]) ->
        events := { Stream.time; term } :: !events
      | Term.Compound ("holdsFor", [ fv; spans ]) -> (
        match Term.as_fvp fv with
        | Some (f, v) -> fluents := ((f, v), spans_of_term spans) :: !fluents
        | None -> invalid_arg "Io.stream_of_string: holdsFor expects a fluent-value pair")
      | other ->
        invalid_arg
          (Printf.sprintf "Io.stream_of_string: unexpected fact %s" (Term.to_string other)))
    (Parser.parse_clauses source);
  Stream.make ~input_fluents:(List.rev !fluents) (List.rev !events)

(* The serve line protocol is the stream file format read incrementally:
   each parsed fact becomes one ingestion item, input order preserved. *)
let items_of_string source =
  List.map
    (fun (r : Ast.rule) ->
      if r.body <> [] then invalid_arg "Io.items_of_string: expected facts";
      match r.head with
      | Term.Compound ("happensAt", [ term; Term.Int time ]) ->
        Stream.Event { Stream.time; term }
      | Term.Compound ("holdsFor", [ fv; spans ]) -> (
        match Term.as_fvp fv with
        | Some (f, v) -> Stream.Fluent ((f, v), spans_of_term spans)
        | None -> invalid_arg "Io.items_of_string: holdsFor expects a fluent-value pair")
      | other ->
        invalid_arg
          (Printf.sprintf "Io.items_of_string: unexpected fact %s" (Term.to_string other)))
    (Parser.parse_clauses source)

let knowledge_to_string kb =
  String.concat ""
    (List.map (fun fact -> Term.to_string fact ^ ".\n") (Knowledge.facts kb))

let knowledge_of_string = Knowledge.of_source

let write_stream oc stream = output_string oc (stream_to_string stream)

let read_all ic = really_input_string ic (in_channel_length ic)
let read_stream ic = stream_of_string (read_all ic)
let write_knowledge oc kb = output_string oc (knowledge_to_string kb)
let read_knowledge ic = knowledge_of_string (read_all ic)
