(** Always-on derivation recorder: compact integer provenance records.

    When enabled, the engine appends one {e flat integer record} per
    derived transition (initiation/termination of a simple fluent), per
    accepted [holdsFor] solution of a statically determined fluent, per
    carried interval and per window query — rule labels, variable names
    and terms are interned into per-buffer tables ({!Intern} for terms
    and fluent-value pairs, a private string table for labels), so a
    record is a handful of machine words and recording never builds a
    string or a proof tree. Proof trees — the grounded per-condition
    trails of {!step} — are reconstructed {e lazily} by {!events} from
    the stored substitutions and the rule bodies, only when an explain
    pipeline asks.

    Records live in a bounded ring buffer: when the buffer is full the
    {e oldest} record is evicted (counted in {!stats}), so memory stays
    bounded no matter how long the recorder stays on. {!set_sampling}
    additionally restricts recording to 1-in-N windows or to an
    arbitrary window predicate; the decision is a pure function of the
    query time, so every shard of a sharded run keeps the same windows.

    The recorder follows the [Telemetry] discipline: a single [bool]
    gate, a strict no-op when disabled, and recognition output is
    bit-identical either way. Buffers are per-domain: the main domain
    records into a process-global buffer; worker domains record into a
    private buffer inside {!with_local} that is re-encoded into the
    global one (translating buffer-local ids) exactly at join. *)

(** {1 Reconstructed views}

    These are the types PR 5 recorded eagerly; they are now only ever
    {e decoded} from the compact store. *)

type step = {
  index : int;  (** 1-based position of the condition in the rule body *)
  literal : string;  (** the body literal as written in the rule *)
  grounded : string;  (** the literal under the successful substitution *)
}

(** How a transition point was obtained. *)
type source =
  | Rule of { rule : string; steps : step list }
      (** a body derivation of an [initiatedAt]/[terminatedAt] rule *)
  | Pattern of { rule : string; pattern : string }
      (** a non-ground termination pattern applied to a ground initiation *)
  | Carry of { origin : string }
      (** amalgamated inertia carried across a window boundary; [origin]
          names the mechanism (["carry"] or ["initially"]) *)

type transition_kind = Init | Term

type event =
  | Query of { q : int; eval_from : int; window_start : int }
      (** marks the window evaluation that produced the records that
          follow it in buffer order *)
  | Transition of {
      fluent : Term.t;
      value : Term.t;
      time : int;
      kind : transition_kind;
      source : source;
    }
  | Derived of {
      fluent : Term.t;
      value : Term.t;
      rule : string;
      spans : (int * int) list;
      steps : step list;
    }  (** one accepted [holdsFor] solution of an SD rule *)
  | Input of { fluent : Term.t; value : Term.t; spans : (int * int) list }
      (** an input (stream) fluent consulted by the run *)

(** {1 Gate, capacity, sampling} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val recording : unit -> bool
(** Enabled {e and} the current window was selected by the sampling
    mode — the cheap guard recording sites test. *)

val reset : unit -> unit
(** Empties the global ring and zeroes all counters. The ring
    allocation and intern tables are retained — interned ids are
    append-only, so reuse is safe and avoids rebuilding the
    vocabulary when recording is cycled around every run. *)

val set_capacity : int -> unit
(** Ring capacity in machine words per buffer (default [2^20], i.e.
    8 MiB); applies to buffers created or reset afterwards. *)

(** Which windows to record. The decision is a pure function of the
    query time [q], so shards agree on it without coordination. *)
type sampling =
  | Always
  | One_in of { n : int; seed : int }
      (** record a deterministic pseudo-random 1-in-[n] subset of
          windows; the subset depends only on [(seed, q)] *)
  | Windows of (int -> bool)
      (** record exactly the windows satisfying the predicate (used by
          [Provenance.Diff] to record only divergent windows) *)

val set_sampling : sampling -> unit
(** Default {!Always}. *)

(** {1 Recording} *)

val record_query : q:int -> eval_from:int -> window_start:int -> unit
(** Decides whether this window is sampled (arming or disarming every
    later record of the window) and, when sampled, appends the query
    marker. *)

val record_transition :
  kind:transition_kind ->
  rule:string ->
  fluent:Term.t ->
  value:Term.t ->
  time:int ->
  binds:(string * Term.t) list ->
  unit
(** A transition point derived by a rule body, with the successful
    substitution (resolved bindings). *)

val record_pattern :
  rule:string -> pattern:Term.t -> fluent:Term.t -> value:Term.t -> time:int -> unit
(** A ground initiation stopped by a non-ground termination pattern
    ([pattern] is the [pf = pv] equation, possibly non-ground). *)

val record_carry : origin:string -> fluent:Term.t -> value:Term.t -> time:int -> unit

val record_input : fluent:Term.t -> value:Term.t -> spans:(int * int) list -> unit

val record_derived :
  fluent:Term.t ->
  value:Term.t ->
  rule:string ->
  spans:(int * int) list ->
  binds:(string * Term.t) list ->
  steps:(int * (int * int) list) list ->
  unit
(** An accepted SD solution: result spans, the solution substitution,
    and per body-condition index the interval list it contributed. *)

(** {1 Compiled-path sink}

    The compiled evaluator works in a per-run {!Intern} table of its
    own; a sink memoises the translation from run ids to buffer ids so
    a compiled emission appends a record without allocating. *)

type sink

val sink : intern:Intern.t -> sink option
(** [None] unless {!recording} — callers skip all bookkeeping then.
    The translation memo is cached on the buffer, so asking again for
    the same intern table (the common compiled case: one program intern
    shared by every window) is free. *)

val sink_string : sink -> string -> int
(** Intern a rule label or variable name into the buffer. *)

val sink_transition_ids :
  sink ->
  kind:transition_kind ->
  rule:int ->
  fvp:int ->
  time:int ->
  binds:int array ->
  unit
(** Append a rule transition from compiled ids: [rule] from
    {!sink_string}, [fvp] an id of the sink's source intern, and
    [binds] a flat array of pairs [(key, value)] where
    [key = (var lsl 1) lor is_time] with [var] from {!sink_string};
    [value] is a source-intern term id when [is_time = 0] and a raw
    time-point when [is_time = 1]. [binds] is caller-owned scratch and
    is not retained. *)

(** {1 Reading back} *)

val events : ?rules:(string * Ast.rule) list -> unit -> event list
(** Decode the retained records, in record order (worker batches appear
    after the main domain's records, each batch internally ordered).
    With [rules] (a label-indexed rule catalogue, see
    [Engine.labelled_rules]), per-condition {!step} trails are
    reconstructed by applying the stored substitution to the rule
    bodies; without it, [steps] are empty. *)

type stats = {
  records : int;  (** records appended since the last {!reset} *)
  evicted : int;  (** records evicted by ring wrap-around *)
  windows_sampled : int;
  windows_skipped : int;  (** windows rejected by the sampling mode *)
  retained_words : int;  (** words currently held in the global ring *)
}

val stats : unit -> stats

val publish_metrics : unit -> unit
(** Push the deltas since the last publication into the telemetry
    registry ([derivation.records], [derivation.evicted],
    [derivation.windows.sampled], [derivation.windows.skipped],
    [derivation.retained_bytes]); a no-op while metrics are disabled. *)

val with_local : (unit -> 'a) -> 'a
(** Runs [f] with a fresh per-domain buffer, re-encoded into the global
    buffer when [f] returns (or raises). *)
