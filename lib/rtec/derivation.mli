(** Gated derivation recorder: rule-level provenance for recognition.

    When enabled, the engine records one event per derived transition
    (initiation/termination of a simple fluent), per accepted [holdsFor]
    solution of a statically determined fluent, and per window query —
    each carrying the responsible rule id and the grounded per-condition
    trail of the body that succeeded. The recorder follows the
    [Telemetry] discipline: a single [bool] gate, a strict no-op when
    disabled, and recognition output is bit-identical either way.

    Buffers are per-domain: the main domain records into a process-global
    buffer; worker domains record into a private buffer inside
    {!with_local} that is merged into the global one exactly at join
    (mirroring [Telemetry.Metrics.with_local]). *)

type step = {
  index : int;  (** 1-based position of the condition in the rule body *)
  literal : string;  (** the body literal as written in the rule *)
  grounded : string;  (** the literal under the successful substitution *)
}

(** How a transition point was obtained. *)
type source =
  | Rule of { rule : string; steps : step list }
      (** a body derivation of an [initiatedAt]/[terminatedAt] rule *)
  | Pattern of { rule : string; pattern : string }
      (** a non-ground termination pattern applied to a ground initiation *)
  | Carry of { origin : string }
      (** amalgamated inertia carried across a window boundary; [origin]
          names the mechanism (["carry"] or ["initially"]) *)

type transition_kind = Init | Term

type event =
  | Query of { q : int; eval_from : int; window_start : int }
      (** marks the window evaluation that produced the records that
          follow it in buffer order *)
  | Transition of {
      fluent : Term.t;
      value : Term.t;
      time : int;
      kind : transition_kind;
      source : source;
    }
  | Derived of {
      fluent : Term.t;
      value : Term.t;
      rule : string;
      spans : (int * int) list;
      steps : step list;
    }  (** one accepted [holdsFor] solution of an SD rule *)
  | Input of { fluent : Term.t; value : Term.t; spans : (int * int) list }
      (** an input (stream) fluent consulted by the run *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Clears the global buffer and the dropped-event count. *)

val set_max_events : int -> unit
(** Cap on buffered events (default 1,000,000); further records are
    counted as dropped. *)

val record : event -> unit
(** No-op unless enabled. *)

val events : unit -> event list
(** Recorded events, in record order (worker batches appear after the
    main domain's events, each batch internally ordered). *)

val dropped : unit -> int

val with_local : (unit -> 'a) -> 'a
(** Runs [f] with a fresh per-domain buffer, merged into the global
    buffer when [f] returns (or raises). *)
