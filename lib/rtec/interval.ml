type span = { start : int; stop : int }
type t = span list

let infinity = max_int

let make s e =
  if e <= s then invalid_arg "Interval.make: empty span" else { start = s; stop = e }

let empty = []
let is_empty i = i = []

let of_list pairs =
  let pairs = List.filter (fun (s, e) -> e > s) pairs in
  let pairs = List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) pairs in
  (* Accumulator-passing merge: stack-safe however many spans arrive. *)
  let rec merge acc = function
    | [] -> List.rev acc
    | [ (s, e) ] -> List.rev ({ start = s; stop = e } :: acc)
    | (s1, e1) :: ((s2, e2) :: rest as tl) ->
      if s2 <= e1 then merge acc ((s1, max e1 e2) :: rest)
      else merge ({ start = s1; stop = e1 } :: acc) tl
  in
  merge [] pairs

let to_list i = List.rev_map (fun { start; stop } -> (start, stop)) (List.rev i)
let equal a b = a = b
let mem t i = List.exists (fun { start; stop } -> start <= t && t < stop) i

let duration i =
  List.fold_left
    (fun acc { start; stop } ->
      if stop = infinity then infinity else acc + (stop - start))
    0 i

let clamp lo hi i =
  (* Clamping a normalised list keeps it normalised (spans only shrink, so
     they stay sorted, disjoint and non-adjacent): no re-sort needed. *)
  List.filter_map
    (fun { start; stop } ->
      let s = max lo start and e = min hi stop in
      if e > s then Some { start = s; stop = e } else None)
    i

let union a b =
  (* Linear merge of two normalised lists: pick the span with the smaller
     start, amalgamating overlapping or adjacent spans as we go. *)
  let rec go acc cur a b =
    let take x a b =
      match cur with
      | None -> go acc (Some x) a b
      | Some c ->
        if x.start <= c.stop then go acc (Some { c with stop = max c.stop x.stop }) a b
        else go (c :: acc) (Some x) a b
    in
    match (a, b) with
    | [], [] -> ( match cur with None -> List.rev acc | Some c -> List.rev (c :: acc))
    | x :: a', [] -> take x a' []
    | [], y :: b' -> take y [] b'
    | x :: a', y :: b' -> if x.start <= y.start then take x a' b else take y a b'
  in
  go [] None a b

let inter a b =
  (* Linear sweep over the two normalised lists. *)
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: a', y :: b' ->
      let s = max x.start y.start and e = min x.stop y.stop in
      let acc = if e > s then { start = s; stop = e } :: acc else acc in
      if x.stop <= y.stop then go acc a' b else go acc a b'
  in
  go [] a b

let diff a b =
  (* Linear sweep: walk [a] keeping a candidate remainder [x]; advance the
     cursor into [b], trimming or splitting [x] against each overlapping
     subtrahend. Both lists are normalised, so each is traversed once.
     Splitting leaves a gap of at least one point, and pieces of distinct
     [a]-spans inherit their separation: the output is normalised. *)
  let rec go acc a b =
    match a with
    | [] -> List.rev acc
    | x :: a' -> (
      match b with
      | [] -> go (x :: acc) a' []
      | y :: b' ->
        if y.stop <= x.start then go acc a b'
        else if x.stop <= y.start then go (x :: acc) a' b
        else
          let acc =
            if y.start > x.start then { start = x.start; stop = y.start } :: acc else acc
          in
          if y.stop < x.stop then go acc ({ start = y.stop; stop = x.stop } :: a') b'
          else go acc a' b)
  in
  go [] a b

let union_all lists = of_list (List.concat_map to_list lists)

let intersect_all = function
  | [] -> []
  | first :: rest -> List.fold_left inter first rest

let relative_complement_all i lists = diff i (union_all lists)

let filter_duration ~min_duration i =
  List.filter
    (fun { start; stop } -> stop = infinity || stop - start > min_duration)
    i

(* Walk initiations in order; for each initiation not already covered,
   find the first termination strictly after it (an initiation at Ts
   makes the fluent hold from Ts + 1 even when a termination also occurs
   at Ts — canonical Event Calculus inertia). A termination at Te closes
   the interval at Te + 1: the fluent still holds at Te. A re-initiation
   exactly at Te starts a new period, which amalgamates with the closing
   one.

   Both arrays are sorted, so the pairing is a linear two-pointer walk:
   each cursor only moves forward. Duplicate points need no dedup pass —
   duplicate initiations are skipped by the cursor advance past covered
   starts, duplicate terminations by the strictly-after search. This is
   the allocation-light kernel behind both [from_points] entries: the
   engine's per-FVP assembly hands it flat scratch arrays directly. *)
let from_sorted_point_arrays starts n_starts stops n_stops =
  let acc = ref [] in
  let push s e =
    match !acc with
    | { start; stop } :: rest when s <= stop -> acc := { start; stop = e } :: rest
    | _ -> acc := { start = s; stop = e } :: !acc
  in
  let i = ref 0 and j = ref 0 in
  (try
     while !i < n_starts do
       let ts = starts.(!i) in
       while !j < n_stops && stops.(!j) <= ts do
         incr j
       done;
       if !j >= n_stops then begin
         push (ts + 1) infinity;
         raise Exit
       end
       else begin
         let te = stops.(!j) in
         push (ts + 1) (te + 1);
         while !i < n_starts && starts.(!i) < te do
           incr i
         done
       end
     done
   with Exit -> ());
  List.rev !acc

let from_point_arrays ~starts ~stops =
  Array.sort Int.compare starts;
  Array.sort Int.compare stops;
  from_sorted_point_arrays starts (Array.length starts) stops (Array.length stops)

let from_points ~starts ~stops =
  from_point_arrays ~starts:(Array.of_list starts) ~stops:(Array.of_list stops)

let pp ppf i =
  let pp_span ppf { start; stop } =
    if stop = infinity then Format.fprintf ppf "(%d,inf)" start
    else Format.fprintf ppf "(%d,%d)" start stop
  in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_span)
    i

let to_string i = Format.asprintf "%a" pp i
