(** Fluent dependency analysis.

    RTEC evaluates hierarchical event descriptions bottom-up: the maximal
    intervals of a fluent-value pair are computed (and cached) before any
    fluent whose definition refers to it. This module classifies each
    defined fluent as simple or statically determined, builds the
    dependency graph and produces the evaluation order. *)

type fluent_class = Simple | Statically_determined | Mixed
(** [Mixed] flags a fluent defined with both rule shapes — invalid RTEC,
    one of the LLM error categories of Section 5.2. *)

type info = {
  indicator : string * int;
  fluent_class : fluent_class;
  rules : Ast.rule list;
  depends_on : (string * int) list;
      (** defined-fluent indicators appearing in [holdsAt]/[holdsFor] body
          literals of the rules *)
}

type t

val analyse : Ast.t -> t
val info : t -> string * int -> info option
val all : t -> info list

val evaluation_order : t -> ((string * int) list, string) result
(** Topological order of the defined fluents; [Error cycle] describes a
    dependency cycle. *)

val window_insensitive : Ast.t -> bool
(** Whether the event description only uses pointwise constructs, so that
    evaluating a window in step-sized deltas (with carried fluents) yields
    the same intervals as re-evaluating each full window: true unless some
    rule uses the duration-sensitive [intDurGreater] construct. *)

val external_indicators : t -> (string * int) list
(** Indicators referenced in bodies ([happensAt] events, [holdsAt]/
    [holdsFor] fluents) but not defined by the event description: input
    events, input fluents — or undefined activities (error category 3). *)
