(* Compact integer derivation records.

   A record is a handful of machine words in a bounded ring buffer:

     header word  = (length-in-words lsl 3) lor tag
     tag 0 Query      [hdr; q; eval_from; window_start]
     tag 1 Rule       [hdr; kind; fvp; time; rule; n; n x (key; value)]
     tag 2 Pattern    [hdr; kind; fvp; time; rule; pattern-term]
     tag 3 Carry      [hdr; kind; fvp; time; origin]
     tag 4 Derived    [hdr; fvp; rule; n; n x (key; value);
                       nspans; nspans x (start; stop); nsteps;
                       nsteps x (index; nspans; nspans x (start; stop))]
     tag 5 Input      [hdr; fvp; nspans; nspans x (start; stop)]

   Terms and fluent-value pairs are ids of the buffer's private
   [Intern.t]; rule labels, carry origins and variable names are ids of
   a private string table. A substitution entry is a (key, value) word
   pair with [key = (var lsl 1) lor is_time]: term-valued bindings
   store a term id, time-valued bindings (the compiled evaluator keeps
   time-points unboxed) store the raw time-point and decode to
   [Term.Int]. Nothing here allocates on the recording path beyond the
   amortised ring/table growth. *)

type step = { index : int; literal : string; grounded : string }

type source =
  | Rule of { rule : string; steps : step list }
  | Pattern of { rule : string; pattern : string }
  | Carry of { origin : string }

type transition_kind = Init | Term

type event =
  | Query of { q : int; eval_from : int; window_start : int }
  | Transition of {
      fluent : Term.t;
      value : Term.t;
      time : int;
      kind : transition_kind;
      source : source;
    }
  | Derived of {
      fluent : Term.t;
      value : Term.t;
      rule : string;
      spans : (int * int) list;
      steps : step list;
    }
  | Input of { fluent : Term.t; value : Term.t; spans : (int * int) list }

(* --- configuration --- *)

type sampling = Always | One_in of { n : int; seed : int } | Windows of (int -> bool)

let on = ref false
let capacity = ref (1 lsl 20)
let sampling_mode = ref Always

let enable () = on := true
let disable () = on := false
let is_enabled () = !on
let set_capacity n = capacity := max 16 n
let set_sampling m = sampling_mode := m

let sample_window q =
  match !sampling_mode with
  | Always -> true
  | One_in { n; seed } -> n <= 1 || Hashtbl.hash (seed, q) mod n = 0
  | Windows p -> p q

(* --- buffers --- *)

type strings = {
  s_ids : (string, int) Hashtbl.t;
  mutable s_arr : string array;
  mutable s_len : int;
}

let fresh_strings () = { s_ids = Hashtbl.create 64; s_arr = [||]; s_len = 0 }

type buffer = {
  mutable data : int array; (* ring; allocated on first append *)
  mutable head : int; (* offset of the oldest record *)
  mutable used : int; (* words in use *)
  mutable intern : Intern.t;
  mutable strs : strings;
  mutable scratch : int array; (* record assembly area *)
  mutable armed : bool; (* current window passed the sampling gate *)
  mutable records : int;
  mutable evicted : int;
  mutable sampled : int;
  mutable skipped : int;
  mutable sink_cache : sink option;
}

(* Memoised translation from a source intern table (the compiled
   program's) into the buffer's own tables; [-1] marks untranslated. *)
and sink = {
  sk_buf : buffer;
  sk_src : Intern.t;
  mutable sk_terms : int array;
  mutable sk_fvps : int array;
}

let fresh () =
  {
    data = [||];
    head = 0;
    used = 0;
    intern = Intern.create ();
    strs = fresh_strings ();
    scratch = Array.make 64 0;
    armed = true;
    records = 0;
    evicted = 0;
    sampled = 0;
    skipped = 0;
    sink_cache = None;
  }

let global = fresh ()
let global_mutex = Mutex.create ()
let local_key : buffer option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current () = match Domain.DLS.get local_key with Some b -> b | None -> global
let recording () = !on && (current ()).armed

(* Keeps the ring allocation, intern tables and sink memo: the tables
   are append-only (old ids stay valid, unreferenced entries are inert)
   and rebuilding them dominated recorder overhead when the buffer is
   cleared around every run. The array is dropped only when a capacity
   shrink makes it oversized, so [set_capacity] still takes effect. *)
let clear b =
  if Array.length b.data > !capacity then b.data <- [||];
  b.head <- 0;
  b.used <- 0;
  b.armed <- true;
  b.records <- 0;
  b.evicted <- 0;
  b.sampled <- 0;
  b.skipped <- 0

(* --- the ring --- *)

let ensure_scratch b n =
  if Array.length b.scratch < n then
    b.scratch <- Array.make (max n (2 * Array.length b.scratch)) 0;
  b.scratch

let evict_one b =
  let len = b.data.(b.head) lsr 3 in
  let h = b.head + len in
  (* conditional subtract, not [mod]: records never exceed the ring *)
  b.head <- (if h >= Array.length b.data then h - Array.length b.data else h);
  b.used <- b.used - len;
  b.evicted <- b.evicted + 1

(* The ring is allocated small and grown geometrically up to the
   configured capacity: a recorder-on run pays for the words it actually
   retains, not for the 8 MiB bound up front — zeroing the full bound on
   every reset costs more than the recording itself on a
   window-per-millisecond workload. Growth happens strictly before the
   first eviction (eviction starts only once the ring has reached full
   capacity), so a growing ring never wraps ([head] is still 0) and the
   grow is a plain blit. *)
let initial_ring = 4096

(* Reserve [n] words for one record and return the ring index of its
   first word, or [-1] when the record can never fit (counted as
   evicted). Evicts the oldest records to make room once the ring has
   reached full capacity. [head = 0] re-checks the no-wrap invariant
   before growing: it only fails when [set_capacity] was raised mid-run
   after evictions began, in which case the ring just keeps evicting at
   its current size until the next reset. *)
let reserve_slow b n =
  if Array.length b.data = 0 then b.data <- Array.make (min initial_ring !capacity) 0;
  while
    b.head = 0 && Array.length b.data - b.used < n && Array.length b.data < !capacity
  do
    let d = Array.make (min !capacity (2 * Array.length b.data)) 0 in
    Array.blit b.data 0 d 0 b.used;
    b.data <- d
  done;
  let cap = Array.length b.data in
  if n > cap then begin
    b.evicted <- b.evicted + 1;
    -1
  end
  else begin
    while cap - b.used < n do
      evict_one b
    done;
    let tail = b.head + b.used in
    let tail = if tail >= cap then tail - cap else tail in
    b.used <- b.used + n;
    tail
  end

(* Hot path: no eviction yet ([head = 0], so the ring is the prefix
   [0, used)) and the record fits without growing — a bump allocation.
   Everything else (first append, growth, wrap, eviction) is the cold
   [reserve_slow]. *)
let[@inline] reserve b n =
  let tail = b.used in
  if b.head = 0 && tail + n <= Array.length b.data then begin
    b.used <- tail + n;
    tail
  end
  else reserve_slow b n

(* Append the first [n] words of [src] as one record. [count] is off
   when a merge transfers a record already counted by its worker
   buffer. *)
let append_gen ~count b src n =
  let base = reserve b n in
  if base >= 0 then begin
    let cap = Array.length b.data in
    let first = min n (cap - base) in
    Array.blit src 0 b.data base first;
    if first < n then Array.blit src first b.data 0 (n - first);
    if count then b.records <- b.records + 1
  end

let append b src n = append_gen ~count:true b src n

(* --- interning helpers --- *)

let str_id b s =
  let st = b.strs in
  match Hashtbl.find_opt st.s_ids s with
  | Some i -> i
  | None ->
    let i = st.s_len in
    if i >= Array.length st.s_arr then begin
      let arr = Array.make (max 16 (2 * Array.length st.s_arr)) "" in
      Array.blit st.s_arr 0 arr 0 st.s_len;
      st.s_arr <- arr
    end;
    st.s_arr.(i) <- s;
    st.s_len <- i + 1;
    Hashtbl.add st.s_ids s i;
    i

let kind_bit = function Init -> 0 | Term -> 1
let kind_of_bit b = if b = 0 then Init else Term

(* Bindings are stored sorted by variable name so the interpreted and
   compiled paths (which sorts its binding spec at compile time) encode
   identical substitutions. *)
let sort_binds binds = List.stable_sort (fun (a, _) (b, _) -> String.compare a b) binds

(* --- recording --- *)

let record_query ~q ~eval_from ~window_start =
  if !on then begin
    let b = current () in
    if sample_window q then begin
      b.armed <- true;
      b.sampled <- b.sampled + 1;
      let s = ensure_scratch b 4 in
      s.(0) <- (4 lsl 3) lor 0;
      s.(1) <- q;
      s.(2) <- eval_from;
      s.(3) <- window_start;
      append b s 4
    end
    else begin
      b.armed <- false;
      b.skipped <- b.skipped + 1
    end
  end

let put_binds b s off binds =
  List.iteri
    (fun i (x, t) ->
      s.(off + (2 * i)) <- str_id b x lsl 1;
      s.(off + (2 * i) + 1) <- Intern.id_of_term b.intern t)
    binds

let record_transition ~kind ~rule ~fluent ~value ~time ~binds =
  if !on then begin
    let b = current () in
    if b.armed then begin
      let binds = sort_binds binds in
      let n = List.length binds in
      let len = 6 + (2 * n) in
      let s = ensure_scratch b len in
      s.(0) <- (len lsl 3) lor 1;
      s.(1) <- kind_bit kind;
      s.(2) <- Intern.fvp_of_terms b.intern fluent value;
      s.(3) <- time;
      s.(4) <- str_id b rule;
      s.(5) <- n;
      put_binds b s 6 binds;
      append b s len
    end
  end

let record_pattern ~rule ~pattern ~fluent ~value ~time =
  if !on then begin
    let b = current () in
    if b.armed then begin
      let s = ensure_scratch b 6 in
      s.(0) <- (6 lsl 3) lor 2;
      s.(1) <- kind_bit Term;
      s.(2) <- Intern.fvp_of_terms b.intern fluent value;
      s.(3) <- time;
      s.(4) <- str_id b rule;
      s.(5) <- Intern.id_of_term b.intern pattern;
      append b s 6
    end
  end

let record_carry ~origin ~fluent ~value ~time =
  if !on then begin
    let b = current () in
    if b.armed then begin
      let s = ensure_scratch b 5 in
      s.(0) <- (5 lsl 3) lor 3;
      s.(1) <- kind_bit Init;
      s.(2) <- Intern.fvp_of_terms b.intern fluent value;
      s.(3) <- time;
      s.(4) <- str_id b origin;
      append b s 5
    end
  end

let put_spans s off spans =
  List.iteri
    (fun i (a, z) ->
      s.(off + (2 * i)) <- a;
      s.(off + (2 * i) + 1) <- z)
    spans

let record_input ~fluent ~value ~spans =
  if !on then begin
    let b = current () in
    if b.armed then begin
      let n = List.length spans in
      let len = 3 + (2 * n) in
      let s = ensure_scratch b len in
      s.(0) <- (len lsl 3) lor 5;
      s.(1) <- Intern.fvp_of_terms b.intern fluent value;
      s.(2) <- n;
      put_spans s 3 spans;
      append b s len
    end
  end

let record_derived ~fluent ~value ~rule ~spans ~binds ~steps =
  if !on then begin
    let b = current () in
    if b.armed then begin
      let binds = sort_binds binds in
      let nb = List.length binds in
      let nsp = List.length spans in
      let step_words =
        List.fold_left (fun acc (_, sp) -> acc + 2 + (2 * List.length sp)) 0 steps
      in
      let len = 4 + (2 * nb) + 1 + (2 * nsp) + 1 + step_words in
      let s = ensure_scratch b len in
      s.(0) <- (len lsl 3) lor 4;
      s.(1) <- Intern.fvp_of_terms b.intern fluent value;
      s.(2) <- str_id b rule;
      s.(3) <- nb;
      put_binds b s 4 binds;
      let off = 4 + (2 * nb) in
      s.(off) <- nsp;
      put_spans s (off + 1) spans;
      let off = ref (off + 1 + (2 * nsp)) in
      s.(!off) <- List.length steps;
      incr off;
      List.iter
        (fun (idx, sp) ->
          s.(!off) <- idx;
          s.(!off + 1) <- List.length sp;
          put_spans s (!off + 2) sp;
          off := !off + 2 + (2 * List.length sp))
        steps;
      append b s len
    end
  end

(* --- compiled-path sink --- *)

let sink ~intern =
  if not !on then None
  else begin
    let b = current () in
    if not b.armed then None
    else begin
      match b.sink_cache with
      | Some sk when sk.sk_src == intern -> Some sk
      | _ ->
        let sk = { sk_buf = b; sk_src = intern; sk_terms = [||]; sk_fvps = [||] } in
        b.sink_cache <- Some sk;
        Some sk
    end
  end

let sink_string sk s = str_id sk.sk_buf s

let grow_memo a n =
  let m = Array.make (max n (max 64 (2 * Array.length a))) (-1) in
  Array.blit a 0 m 0 (Array.length a);
  m

let sink_term sk id =
  if id >= Array.length sk.sk_terms then sk.sk_terms <- grow_memo sk.sk_terms (id + 1);
  let v = sk.sk_terms.(id) in
  if v >= 0 then v
  else begin
    let v = Intern.id_of_term sk.sk_buf.intern (Intern.term_of_id sk.sk_src id) in
    sk.sk_terms.(id) <- v;
    v
  end

let sink_fvp sk id =
  if id >= Array.length sk.sk_fvps then sk.sk_fvps <- grow_memo sk.sk_fvps (id + 1);
  let v = sk.sk_fvps.(id) in
  if v >= 0 then v
  else begin
    let fluent = sink_term sk (Intern.fvp_fluent_id sk.sk_src id) in
    let value = sink_term sk (Intern.fvp_value_id sk.sk_src id) in
    let v = Intern.fvp_id sk.sk_buf.intern ~fluent ~value in
    sk.sk_fvps.(id) <- v;
    v
  end

(* The compiled sink is the recorder's hot path — one call per emitted
   transition — so it writes its words straight into the ring instead
   of staging them in scratch and blitting. *)
let sink_transition_ids sk ~kind ~rule ~fvp ~time ~binds =
  let b = sk.sk_buf in
  let n = Array.length binds / 2 in
  let len = 6 + (2 * n) in
  let base = reserve b len in
  if base >= 0 then begin
    b.records <- b.records + 1;
    let data = b.data in
    let cap = Array.length data in
    if base + len <= cap then begin
      (* in-line record: every index is provably inside the ring, so
         the writes are straight-line and unchecked *)
      Array.unsafe_set data base ((len lsl 3) lor 1);
      Array.unsafe_set data (base + 1) (kind_bit kind);
      Array.unsafe_set data (base + 2) (sink_fvp sk fvp);
      Array.unsafe_set data (base + 3) time;
      Array.unsafe_set data (base + 4) rule;
      Array.unsafe_set data (base + 5) n;
      let off = base + 6 in
      for i = 0 to n - 1 do
        let key = Array.unsafe_get binds (2 * i) in
        let v = Array.unsafe_get binds ((2 * i) + 1) in
        Array.unsafe_set data (off + (2 * i)) key;
        Array.unsafe_set data
          (off + (2 * i) + 1)
          (if key land 1 = 1 then v else sink_term sk v)
      done
    end
    else begin
      (* the record wraps the ring end: rare, mod-indexed *)
      let put i v = data.((base + i) mod cap) <- v in
      put 0 ((len lsl 3) lor 1);
      put 1 (kind_bit kind);
      put 2 (sink_fvp sk fvp);
      put 3 time;
      put 4 rule;
      put 5 n;
      for i = 0 to n - 1 do
        let key = binds.(2 * i) in
        put (6 + (2 * i)) key;
        put
          (6 + (2 * i) + 1)
          (if key land 1 = 1 then binds.((2 * i) + 1) else sink_term sk binds.((2 * i) + 1))
      done
    end
  end

(* --- reading back --- *)

(* Walks the ring record by record. [f] receives an absolute-offset
   reader and the record's tag; it must not retain the reader. *)
let iter_records b f =
  if b.used > 0 then begin
    let cap = Array.length b.data in
    let pos = ref b.head and remaining = ref b.used in
    while !remaining > 0 do
      let base = !pos in
      let get i = b.data.((base + i) mod cap) in
      let hdr = get 0 in
      let len = hdr lsr 3 and tag = hdr land 7 in
      f ~get ~tag ~len;
      pos := (base + len) mod cap;
      remaining := !remaining - len
    done
  end

let decode_binds b ~get ~off n =
  let s = ref Subst.empty in
  for i = 0 to n - 1 do
    let key = get (off + (2 * i)) and v = get (off + (2 * i) + 1) in
    let x = b.strs.s_arr.(key lsr 1) in
    let t = if key land 1 = 1 then Term.Int v else Intern.term_of_id b.intern v in
    s := Subst.bind x t !s
  done;
  !s

let decode_spans ~get ~off n = List.init n (fun i -> (get (off + (2 * i)), get (off + (2 * i) + 1)))

let events ?(rules = []) () =
  let b = global in
  let lookup =
    if rules = [] then fun _ -> None
    else begin
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (label, r) -> if not (Hashtbl.mem tbl label) then Hashtbl.add tbl label r)
        rules;
      Hashtbl.find_opt tbl
    end
  in
  let lbl i = b.strs.s_arr.(i) in
  let fvp id = Intern.fvp_terms b.intern id in
  let out = ref [] in
  iter_records b (fun ~get ~tag ~len:_ ->
      let ev =
        match tag with
        | 0 -> Query { q = get 1; eval_from = get 2; window_start = get 3 }
        | 1 ->
          let kind = kind_of_bit (get 1) in
          let fluent, value = fvp (get 2) in
          let time = get 3 in
          let rule = lbl (get 4) in
          let n = get 5 in
          let steps =
            match lookup rule with
            | None -> []
            | Some r ->
              let s = decode_binds b ~get ~off:6 n in
              List.mapi
                (fun i lit ->
                  {
                    index = i + 1;
                    literal = Term.to_string lit;
                    grounded = Term.to_string (Subst.apply s lit);
                  })
                r.Ast.body
          in
          Transition { fluent; value; time; kind; source = Rule { rule; steps } }
        | 2 ->
          let kind = kind_of_bit (get 1) in
          let fluent, value = fvp (get 2) in
          let time = get 3 in
          let rule = lbl (get 4) in
          let pattern = Term.to_string (Intern.term_of_id b.intern (get 5)) in
          Transition { fluent; value; time; kind; source = Pattern { rule; pattern } }
        | 3 ->
          let kind = kind_of_bit (get 1) in
          let fluent, value = fvp (get 2) in
          let time = get 3 in
          Transition { fluent; value; time; kind; source = Carry { origin = lbl (get 4) } }
        | 4 ->
          let fluent, value = fvp (get 1) in
          let rule = lbl (get 2) in
          let nb = get 3 in
          let off = 4 + (2 * nb) in
          let nsp = get off in
          let spans = decode_spans ~get ~off:(off + 1) nsp in
          let off = ref (off + 1 + (2 * nsp)) in
          let nsteps = get !off in
          incr off;
          let raw_steps =
            List.init nsteps (fun _ ->
                let idx = get !off in
                let n = get (!off + 1) in
                let sp = decode_spans ~get ~off:(!off + 2) n in
                off := !off + 2 + (2 * n);
                (idx, sp))
          in
          let steps =
            match lookup rule with
            | None -> []
            | Some r ->
              let s = decode_binds b ~get ~off:4 nb in
              let body = Array.of_list r.Ast.body in
              List.filter_map
                (fun (idx, sp) ->
                  if idx < 1 || idx > Array.length body then None
                  else begin
                    let lit = body.(idx - 1) in
                    Some
                      {
                        index = idx;
                        literal = Term.to_string lit;
                        grounded =
                          Printf.sprintf "%s -> %s"
                            (Term.to_string (Subst.apply s lit))
                            (Interval.to_string (Interval.of_list sp));
                      }
                  end)
                raw_steps
          in
          Derived { fluent; value; rule; spans; steps }
        | 5 ->
          let fluent, value = fvp (get 1) in
          let spans = decode_spans ~get ~off:3 (get 2) in
          Input { fluent; value; spans }
        | _ -> assert false
      in
      out := ev :: !out);
  List.rev !out

(* --- stats and telemetry --- *)

type stats = {
  records : int;
  evicted : int;
  windows_sampled : int;
  windows_skipped : int;
  retained_words : int;
}

let stats () =
  {
    records = global.records;
    evicted = global.evicted;
    windows_sampled = global.sampled;
    windows_skipped = global.skipped;
    retained_words = global.used;
  }

let m_records = Telemetry.Metrics.counter "derivation.records"
let m_evicted = Telemetry.Metrics.counter "derivation.evicted"
let m_sampled = Telemetry.Metrics.counter "derivation.windows.sampled"
let m_skipped = Telemetry.Metrics.counter "derivation.windows.skipped"
let g_retained = Telemetry.Metrics.gauge "derivation.retained_bytes"

(* Published counters are process-cumulative; the recorder's own
   counters restart at [reset], so publication tracks deltas. *)
let pub = ref (0, 0, 0, 0)

let reset_published () = pub := (0, 0, 0, 0)

let publish_metrics () =
  if Telemetry.Metrics.is_enabled () then begin
    let s = stats () in
    let pr, pe, psa, psk = !pub in
    Telemetry.Metrics.incr m_records ~by:(max 0 (s.records - pr));
    Telemetry.Metrics.incr m_evicted ~by:(max 0 (s.evicted - pe));
    Telemetry.Metrics.incr m_sampled ~by:(max 0 (s.windows_sampled - psa));
    Telemetry.Metrics.incr m_skipped ~by:(max 0 (s.windows_skipped - psk));
    pub := (s.records, s.evicted, s.windows_sampled, s.windows_skipped);
    Telemetry.Metrics.set g_retained (float_of_int (s.retained_words * (Sys.word_size / 8)))
  end

let reset () =
  clear global;
  reset_published ()

(* --- worker buffers --- *)

(* Transfers every record of [l] into the global ring, translating
   buffer-local term/FVP/string ids through memo tables. Counters move
   over wholesale: [records] already counted each append locally. *)
let merge_local l =
  Mutex.protect global_mutex (fun () ->
      let xterm =
        let memo = Array.make (max 1 (Intern.term_count l.intern)) (-1) in
        fun id ->
          if memo.(id) >= 0 then memo.(id)
          else begin
            let v = Intern.id_of_term global.intern (Intern.term_of_id l.intern id) in
            memo.(id) <- v;
            v
          end
      in
      let xfvp =
        let memo = Array.make (max 1 (Intern.fvp_count l.intern)) (-1) in
        fun id ->
          if memo.(id) >= 0 then memo.(id)
          else begin
            let fluent = xterm (Intern.fvp_fluent_id l.intern id) in
            let value = xterm (Intern.fvp_value_id l.intern id) in
            let v = Intern.fvp_id global.intern ~fluent ~value in
            memo.(id) <- v;
            v
          end
      in
      let xstr =
        let memo = Array.make (max 1 l.strs.s_len) (-1) in
        fun i ->
          if memo.(i) >= 0 then memo.(i)
          else begin
            let v = str_id global l.strs.s_arr.(i) in
            memo.(i) <- v;
            v
          end
      in
      let xkey k = (xstr (k lsr 1) lsl 1) lor (k land 1) in
      iter_records l (fun ~get ~tag ~len ->
          let s = ensure_scratch global len in
          for i = 0 to len - 1 do
            s.(i) <- get i
          done;
          (match tag with
           | 0 -> ()
           | 1 ->
             s.(2) <- xfvp s.(2);
             s.(4) <- xstr s.(4);
             for i = 0 to s.(5) - 1 do
               let k = s.(6 + (2 * i)) in
               s.(6 + (2 * i)) <- xkey k;
               if k land 1 = 0 then s.(6 + (2 * i) + 1) <- xterm s.(6 + (2 * i) + 1)
             done
           | 2 ->
             s.(2) <- xfvp s.(2);
             s.(4) <- xstr s.(4);
             s.(5) <- xterm s.(5)
           | 3 ->
             s.(2) <- xfvp s.(2);
             s.(4) <- xstr s.(4)
           | 4 ->
             s.(1) <- xfvp s.(1);
             s.(2) <- xstr s.(2);
             for i = 0 to s.(3) - 1 do
               let k = s.(4 + (2 * i)) in
               s.(4 + (2 * i)) <- xkey k;
               if k land 1 = 0 then s.(4 + (2 * i) + 1) <- xterm s.(4 + (2 * i) + 1)
             done
           | 5 -> s.(1) <- xfvp s.(1)
           | _ -> assert false);
          append_gen ~count:false global s len);
      global.records <- global.records + l.records;
      global.evicted <- global.evicted + l.evicted;
      global.sampled <- global.sampled + l.sampled;
      global.skipped <- global.skipped + l.skipped)

let with_local f =
  let prev = Domain.DLS.get local_key in
  let l = fresh () in
  Domain.DLS.set local_key (Some l);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set local_key prev;
      merge_local l)
    f
