type step = { index : int; literal : string; grounded : string }

type source =
  | Rule of { rule : string; steps : step list }
  | Pattern of { rule : string; pattern : string }
  | Carry of { origin : string }

type transition_kind = Init | Term

type event =
  | Query of { q : int; eval_from : int; window_start : int }
  | Transition of {
      fluent : Term.t;
      value : Term.t;
      time : int;
      kind : transition_kind;
      source : source;
    }
  | Derived of {
      fluent : Term.t;
      value : Term.t;
      rule : string;
      spans : (int * int) list;
      steps : step list;
    }
  | Input of { fluent : Term.t; value : Term.t; spans : (int * int) list }

let on = ref false
let max_events = ref 1_000_000

(* Reversed list of events plus a count; one buffer per domain, like
   Telemetry.Trace: the main domain writes to [global], workers write to
   a DLS-private buffer inside [with_local], appended to [global] under
   the mutex exactly at join. *)
type buffer = { mutable items : event list; mutable count : int; mutable dropped : int }

let fresh () = { items = []; count = 0; dropped = 0 }
let global = fresh ()
let global_mutex = Mutex.create ()
let local_key : buffer option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current () = match Domain.DLS.get local_key with Some b -> b | None -> global

let enable () = on := true
let disable () = on := false
let is_enabled () = !on

let reset () =
  global.items <- [];
  global.count <- 0;
  global.dropped <- 0

let set_max_events n = max_events := max 0 n

let record ev =
  if !on then begin
    let b = current () in
    if b.count >= !max_events then b.dropped <- b.dropped + 1
    else begin
      b.items <- ev :: b.items;
      b.count <- b.count + 1
    end
  end

let events () = List.rev global.items
let dropped () = global.dropped

let merge_local l =
  Mutex.protect global_mutex (fun () ->
      List.iter
        (fun ev ->
          if global.count >= !max_events then global.dropped <- global.dropped + 1
          else begin
            global.items <- ev :: global.items;
            global.count <- global.count + 1
          end)
        (List.rev l.items);
      global.dropped <- global.dropped + l.dropped)

let with_local f =
  let prev = Domain.DLS.get local_key in
  let l = fresh () in
  Domain.DLS.set local_key (Some l);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set local_key prev;
      merge_local l)
    f
