(* Hash-consed store of ground terms and fluent-value pairs.

   The compiled engine evaluates over dense integer ids instead of
   re-traversing term structure: every ground term reachable from the
   stream, the knowledge base or the rule heads is interned once, and a
   fluent-value pair becomes a single id pairing two term ids. Ids are
   assigned densely in interning order and are never invalidated — a
   table only grows — so a compiled program can bake ids into closures
   at compile time and reuse them for every window of a run. *)

module TermTbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  term_ids : int TermTbl.t;  (* term -> id *)
  mutable terms : Term.t array;  (* id -> term *)
  mutable n_terms : int;
  fvp_ids : (int, int) Hashtbl.t;  (* packed (fluent id, value id) -> fvp id *)
  mutable fvp_fluent : int array;  (* fvp id -> fluent term id *)
  mutable fvp_value : int array;  (* fvp id -> value term id *)
  mutable fvp_pairs : (Term.t * Term.t) array;  (* fvp id -> canonical pair *)
  mutable n_fvps : int;
}

let dummy = Term.Atom ""

let create () =
  {
    term_ids = TermTbl.create 256;
    terms = Array.make 256 dummy;
    n_terms = 0;
    fvp_ids = Hashtbl.create 128;
    fvp_fluent = Array.make 128 (-1);
    fvp_value = Array.make 128 (-1);
    fvp_pairs = Array.make 128 (dummy, dummy);
    n_fvps = 0;
  }

let grow a n fill = if n < Array.length a then a
  else begin
    let b = Array.make (2 * Array.length a) fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let id_of_term t term =
  match TermTbl.find_opt t.term_ids term with
  | Some id -> id
  | None ->
    let id = t.n_terms in
    t.terms <- grow t.terms id dummy;
    t.terms.(id) <- term;
    t.n_terms <- id + 1;
    TermTbl.replace t.term_ids term id;
    id

let find_term t term = TermTbl.find_opt t.term_ids term
let term_of_id t id = t.terms.(id)
let term_count t = t.n_terms

(* Term ids stay well below 2^31 in any realistic run, so a pair packs
   into one immediate int key. *)
let pack f v = (f lsl 31) lor v

let fvp_id t ~fluent ~value =
  let key = pack fluent value in
  match Hashtbl.find_opt t.fvp_ids key with
  | Some id -> id
  | None ->
    let id = t.n_fvps in
    t.fvp_fluent <- grow t.fvp_fluent id (-1);
    t.fvp_value <- grow t.fvp_value id (-1);
    t.fvp_pairs <- grow t.fvp_pairs id (dummy, dummy);
    t.fvp_fluent.(id) <- fluent;
    t.fvp_value.(id) <- value;
    t.fvp_pairs.(id) <- (t.terms.(fluent), t.terms.(value));
    t.n_fvps <- id + 1;
    Hashtbl.replace t.fvp_ids key id;
    id

let find_fvp t ~fluent ~value = Hashtbl.find_opt t.fvp_ids (pack fluent value)

let fvp_of_terms t fluent value =
  let f = id_of_term t fluent in
  let v = id_of_term t value in
  fvp_id t ~fluent:f ~value:v

let find_fvp_terms t fluent value =
  match find_term t fluent with
  | None -> None
  | Some f -> (
    match find_term t value with
    | None -> None
    | Some v -> find_fvp t ~fluent:f ~value:v)

let fvp_terms t id = t.fvp_pairs.(id)
let fvp_fluent_id t id = t.fvp_fluent.(id)
let fvp_value_id t id = t.fvp_value.(id)
let fvp_count t = t.n_fvps
