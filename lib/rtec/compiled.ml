(* Rule compilation: specialise transition rules into closure chains
   over interned ground terms.

   At [Window.run] entry each initiatedAt/terminatedAt rule of the
   event description is compiled, against the (fixed) stream and
   knowledge base, into a chain of closures over a reusable slot frame:
   event candidates come from pre-interned per-indicator arrays, pattern
   matching is integer comparison on intern ids, numeric guards read an
   unboxed float per slot, and holdsAt probes hit the int-keyed engine
   cache. Per-window evaluation then executes int comparisons and array
   indexing where the interpreter re-unified substitution maps and
   re-traversed the AST.

   The compiler is deliberately partial: any rule shape outside the
   analysed fragment (unbound probe arguments, [=] unification,
   non-ground heads, nested event patterns, time joins) yields
   [Interpreted], and the engine falls back to the interpreter for that
   rule only — feeding the same accumulators, so results are
   bit-identical. The search tree a compiled chain explores (candidate
   order, literal order, depth-first backtracking) mirrors
   [Engine.body_solutions] exactly.

   A program's frames and state cells are mutable: a program belongs to
   one domain (each runtime shard compiles its own). *)

type frame = {
  ids : int array;  (* slot -> intern id of the bound term *)
  terms : Term.t array;  (* slot -> the bound term itself *)
  nums : float array;  (* slot -> numeric value, nan when non-numeric *)
  tvals : int array;  (* slot -> time-point value (time slots only) *)
}

(* Per-rule mutable evaluation state, set by [run_rule] before the
   chain fires: window bounds, cache probe and emission callbacks. *)
type rstate = {
  mutable r_from : int;
  mutable r_until : int;
  mutable r_probe : int -> int -> bool;  (* fvp id -> time -> holds *)
  mutable r_miss : unit -> unit;  (* unresolvable probe: count a cache miss *)
  mutable r_emit : int -> int -> unit;  (* ground fvp id, transition time *)
}

let no_probe _ _ = false
let no_miss () = ()
let no_emit _ _ = ()

type compiled_rule = {
  cr_state : rstate;
  cr_chain : unit -> unit;
  cr_frame : frame;
  cr_bvars : (string * bool) array;  (* bound vars in name order; true = time slot *)
  cr_bslots : int array;  (* slot per binding; [lnot slot] for time slots *)
}
type rule_code = Compiled of compiled_rule | Interpreted

type program = {
  p_intern : Intern.t;
  p_code : (string * int * int, rule_code) Hashtbl.t;  (* indicator + rule index *)
  p_compiled : int;  (* rules compiled to closures *)
  p_fallback : int;  (* transition rules left to the interpreter *)
}

let intern p = p.p_intern
let rule_code p ~ind ~index = Hashtbl.find_opt p.p_code (fst ind, snd ind, index)
let stats p = (p.p_compiled, p.p_fallback)

(* --- pre-interned candidate tables --- *)

type candidates = {
  c_times : int array;  (* events: sorted occurrence times; facts: [||] *)
  c_ids : int array array;  (* per candidate: intern id of each argument *)
  c_terms : Term.t array array;
  c_nums : float array array;
}

(* Numeric value of a ground term, evaluated exactly like
   [Engine.eval_num] on a ground input (so a compiled guard agrees with
   the interpreter even on arithmetic-compound arguments). *)
let rec static_num t =
  match t with
  | Term.Int n -> float_of_int n
  | Term.Real r -> r
  | Term.Compound (("+" | "-" | "*" | "/") as op, [ a; b ]) -> (
    let x = static_num a and y = static_num b in
    match op with
    | "+" -> x +. y
    | "-" -> x -. y
    | "*" -> x *. y
    | _ -> if y = 0. then Float.nan else x /. y)
  | _ -> Float.nan

let intern_args intern terms =
  let n = List.length terms in
  let ids = Array.make n (-1) and tarr = Array.make n (Term.Atom "") in
  let nums = Array.make n Float.nan in
  List.iteri
    (fun k a ->
      ids.(k) <- Intern.id_of_term intern a;
      tarr.(k) <- a;
      nums.(k) <- static_num a)
    terms;
  (ids, tarr, nums)

let events_table intern stream ind =
  let events = Stream.indexed stream ~functor_:ind in
  let n = Array.length events in
  let c_times = Array.make n 0 in
  let c_ids = Array.make n [||] and c_terms = Array.make n [||] in
  let c_nums = Array.make n [||] in
  Array.iteri
    (fun j (e : Stream.event) ->
      c_times.(j) <- e.time;
      let ids, tarr, nums = intern_args intern (Term.args e.term) in
      c_ids.(j) <- ids;
      c_terms.(j) <- tarr;
      c_nums.(j) <- nums)
    events;
  { c_times; c_ids; c_terms; c_nums }

(* Candidate tables are interned once per program: every literal on the
   same indicator — across all rules — shares one table, so compiling 70
   rules scans the stream once per indicator, not once per literal. *)
type tables = {
  t_events : (string * int, candidates) Hashtbl.t;
  t_facts : (string * int, candidates) Hashtbl.t;
}

let facts_table intern knowledge ind =
  let facts = Array.of_list (Knowledge.candidates knowledge ind) in
  let n = Array.length facts in
  let c_ids = Array.make n [||] and c_terms = Array.make n [||] in
  let c_nums = Array.make n [||] in
  Array.iteri
    (fun j fact ->
      let ids, tarr, nums = intern_args intern (Term.args fact) in
      c_ids.(j) <- ids;
      c_terms.(j) <- tarr;
      c_nums.(j) <- nums)
    facts;
  { c_times = [||]; c_ids; c_terms; c_nums }

let memo tbl ind build =
  match Hashtbl.find_opt tbl ind with
  | Some t -> t
  | None ->
    let t = build ind in
    Hashtbl.replace tbl ind t;
    t

(* First index with time >= t. *)
let lower_bound times t =
  let lo = ref 0 and hi = ref (Array.length times) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if times.(mid) < t then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- rule compilation --- *)

exception Fallback

type arg_spec =
  | A_bind of int
  | A_check_const of int * Term.t * float
  | A_check_slot of int

(* Ground-vs-ground matching follows [Unify.unify]'s exact semantics:
   intern id equality covers the structural case, numeric literals
   additionally unify across the Int/Real representations (thresholds
   are reals while stream attributes may be integers), and ground
   compounds — whose subterms may hide the same cross-representation
   matches — defer to the unifier itself (rare: domain event arguments
   are flat). The numeric comparison is written inline so the floats
   never cross a function boundary (a boxed float per candidate visit
   is exactly the allocation this layer exists to remove); both sides
   are [static_num] of an Int/Real literal, hence never nan, so [=]
   agrees with [Float.equal] here. *)
(* Toplevel recursion with explicit arguments (a local [let rec] would
   allocate its closure on every call — once per candidate visit and
   per fact probe, the hottest call site in the engine). *)
let rec apply_from frame specs cand_ids cand_terms cand_nums k =
  k >= Array.length specs
  ||
  match specs.(k) with
  | A_check_const (id, pt, pn) ->
    (cand_ids.(k) = id
    ||
    match pt with
    | Term.Int _ | Term.Real _ -> (
      match cand_terms.(k) with
      | Term.Int _ | Term.Real _ -> pn = cand_nums.(k)
      | _ -> false)
    | Term.Compound _ -> (
      match cand_terms.(k) with
      | Term.Compound _ as ct -> Option.is_some (Unify.unify pt ct)
      | _ -> false)
    | _ -> false)
    && apply_from frame specs cand_ids cand_terms cand_nums (k + 1)
  | A_check_slot s ->
    (frame.ids.(s) = cand_ids.(k)
    ||
    match frame.terms.(s) with
    | Term.Int _ | Term.Real _ -> (
      match cand_terms.(k) with
      | Term.Int _ | Term.Real _ -> frame.nums.(s) = cand_nums.(k)
      | _ -> false)
    | Term.Compound _ as pt -> (
      match cand_terms.(k) with
      | Term.Compound _ as ct -> Option.is_some (Unify.unify pt ct)
      | _ -> false)
    | _ -> false)
    && apply_from frame specs cand_ids cand_terms cand_nums (k + 1)
  | A_bind s ->
    frame.ids.(s) <- cand_ids.(k);
    frame.terms.(s) <- cand_terms.(k);
    frame.nums.(s) <- cand_nums.(k);
    apply_from frame specs cand_ids cand_terms cand_nums (k + 1)

let apply_specs frame specs cand_ids cand_terms cand_nums =
  apply_from frame specs cand_ids cand_terms cand_nums 0

type time_spec = T_bind of int | T_slot of int | T_const of int

(* Numeric operand shape: constants and plain slot reads get dedicated
   comparison closures whose floats live entirely in one function body
   (no boxed closure returns on the hot path); arithmetic compounds use
   the generic closure form. *)
type numexp = N_const of float | N_slot of int | N_fun of (unit -> float)

let num_fun frame = function
  | N_const c -> fun () -> c
  | N_slot s -> fun () -> frame.nums.(s)
  | N_fun f -> f

(* IEEE comparisons are false on nan, which is exactly the interpreter's
   behaviour on a non-evaluable operand ([eval_num] = None fails the
   literal); [\=] additionally requires both sides to evaluate. *)
let compile_test frame op na nb : unit -> bool =
  match (op, na, nb) with
  | "<", N_slot s, N_const c -> fun () -> frame.nums.(s) < c
  | "<", N_const c, N_slot s -> fun () -> c < frame.nums.(s)
  | "<", N_slot s1, N_slot s2 -> fun () -> frame.nums.(s1) < frame.nums.(s2)
  | ">", N_slot s, N_const c -> fun () -> frame.nums.(s) > c
  | ">", N_const c, N_slot s -> fun () -> c > frame.nums.(s)
  | ">", N_slot s1, N_slot s2 -> fun () -> frame.nums.(s1) > frame.nums.(s2)
  | ">=", N_slot s, N_const c -> fun () -> frame.nums.(s) >= c
  | ">=", N_const c, N_slot s -> fun () -> c >= frame.nums.(s)
  | ">=", N_slot s1, N_slot s2 -> fun () -> frame.nums.(s1) >= frame.nums.(s2)
  | "=<", N_slot s, N_const c -> fun () -> frame.nums.(s) <= c
  | "=<", N_const c, N_slot s -> fun () -> c <= frame.nums.(s)
  | "=<", N_slot s1, N_slot s2 -> fun () -> frame.nums.(s1) <= frame.nums.(s2)
  | _ -> (
    let fa = num_fun frame na and fb = num_fun frame nb in
    match op with
    | "<" -> fun () -> fa () < fb ()
    | ">" -> fun () -> fa () > fb ()
    | ">=" -> fun () -> fa () >= fb ()
    | "=<" -> fun () -> fa () <= fb ()
    | _ ->
      fun () ->
        let x = fa () and y = fb () in
        x = x && y = y && not (Float.equal x y))

let comparison_ops = [ "<"; ">"; ">="; "=<"; "\\=" ]

let compile_rule intern ~tables ~stream ~knowledge (r : Ast.rule) ~fluent ~value ~time =
  (* Slots: one per distinct variable of the rule, in first-occurrence
     order over the body then the head. *)
  let slot_of = Hashtbl.create 8 in
  let n_slots = ref 0 in
  let note_vars t =
    List.iter
      (fun v ->
        if not (Hashtbl.mem slot_of v) then begin
          Hashtbl.replace slot_of v !n_slots;
          incr n_slots
        end)
      (Term.vars t)
  in
  List.iter note_vars r.Ast.body;
  note_vars fluent;
  note_vars value;
  note_vars time;
  let n = !n_slots in
  let frame =
    {
      ids = Array.make (max n 1) (-1);
      terms = Array.make (max n 1) (Term.Atom "");
      nums = Array.make (max n 1) Float.nan;
      tvals = Array.make (max n 1) 0;
    }
  in
  let st =
    { r_from = 0; r_until = 0; r_probe = no_probe; r_miss = no_miss; r_emit = no_emit }
  in
  (* Compile-time binding environment: variable -> slot and kind. *)
  let bound : (string, [ `Term | `Time ]) Hashtbl.t = Hashtbl.create 8 in
  let slot v = Hashtbl.find slot_of v in
  let compile_args ~negated args =
    let temp = ref [] in
    let specs =
      List.map
        (fun a ->
          if Term.is_ground a then
            A_check_const (Intern.id_of_term intern a, a, static_num a)
          else
            match a with
            | Term.Var v -> (
              match Hashtbl.find_opt bound v with
              | Some `Term -> A_check_slot (slot v)
              | Some `Time -> raise Fallback
              | None ->
                Hashtbl.replace bound v `Term;
                if negated then temp := v :: !temp;
                A_bind (slot v))
            | _ -> raise Fallback)
        args
    in
    (Array.of_list specs, !temp)
  in
  let compile_time_arg ~negated tm =
    match tm with
    | Term.Int t -> (T_const t, [])
    | Term.Var v -> (
      match Hashtbl.find_opt bound v with
      | Some `Time -> (T_slot (slot v), [])
      | Some `Term -> raise Fallback
      | None ->
        Hashtbl.replace bound v `Time;
        (T_bind (slot v), if negated then [ v ] else []))
    | _ -> raise Fallback
  in
  let rec compile_num t =
    match t with
    | Term.Int n -> N_const (float_of_int n)
    | Term.Real r -> N_const r
    | Term.Var v -> (
      match Hashtbl.find_opt bound v with
      | Some _ -> N_slot (slot v)
      | None -> raise Fallback)
    | Term.Compound (("+" | "-" | "*" | "/") as op, [ a; b ]) ->
      let fa = num_fun frame (compile_num a) and fb = num_fun frame (compile_num b) in
      N_fun
        (match op with
        | "+" -> fun () -> fa () +. fb ()
        | "-" -> fun () -> fa () -. fb ()
        | "*" -> fun () -> fa () *. fb ()
        | _ ->
          fun () ->
            let x = fa () and y = fb () in
            if y = 0. then Float.nan else x /. y)
    | _ -> N_const Float.nan
  in
  (* A ground-by-construction term builder over bound term slots. *)
  let rec compile_builder t =
    if Term.is_ground t then begin
      ignore (Intern.id_of_term intern t);
      fun () -> t
    end
    else
      match t with
      | Term.Var v -> (
        match Hashtbl.find_opt bound v with
        | Some `Term ->
          let s = slot v in
          fun () -> frame.terms.(s)
        | _ -> raise Fallback)
      | Term.Compound (f, args) ->
        let builders = List.map compile_builder args in
        fun () -> Term.Compound (f, List.map (fun b -> b ()) builders)
      | _ -> raise Fallback
  in
  let release temps = List.iter (Hashtbl.remove bound) temps in
  (* Analyses the literal NOW (populating [bound] and building tables)
     and returns a pure maker awaiting its continuation — so a left fold
     over the body performs the sequential binding analysis at compile
     time, before the head terminal is built. *)
  let compile_literal lit : (unit -> unit) -> unit -> unit =
    let positive, atom = Term.strip_not lit in
    match atom with
    | Term.Compound ("happensAt", [ (Term.Var _ as _ev); _ ]) -> raise Fallback
    | Term.Compound ("happensAt", [ ev; tm ]) ->
      let ind = Term.indicator ev in
      let table = memo tables.t_events ind (events_table intern stream) in
      let specs, temp_args = compile_args ~negated:(not positive) (Term.args ev) in
      let tspec, temp_time = compile_time_arg ~negated:(not positive) tm in
      if not positive then release (temp_args @ temp_time);
      let times = table.c_times in
      let count = Array.length times in
      let bounds () =
        match tspec with
        | T_bind _ -> (st.r_from, st.r_until)
        | T_const t -> if t < st.r_from || t > st.r_until then (1, 0) else (t, t)
        | T_slot s ->
          let t = frame.tvals.(s) in
          if t < st.r_from || t > st.r_until then (1, 0) else (t, t)
      in
      if positive then (
        fun k () ->
          let tlo, thi = bounds () in
          if tlo <= thi then begin
            let i = ref (lower_bound times tlo) in
            while !i < count && times.(!i) <= thi do
              let j = !i in
              if apply_specs frame specs table.c_ids.(j) table.c_terms.(j) table.c_nums.(j)
              then begin
                (match tspec with
                | T_bind s ->
                  frame.tvals.(s) <- times.(j);
                  frame.nums.(s) <- float_of_int times.(j)
                | _ -> ());
                k ()
              end;
              incr i
            done
          end)
      else
        fun k () ->
          let tlo, thi = bounds () in
          let found = ref false in
          if tlo <= thi then begin
            let i = ref (lower_bound times tlo) in
            while (not !found) && !i < count && times.(!i) <= thi do
              let j = !i in
              if apply_specs frame specs table.c_ids.(j) table.c_terms.(j) table.c_nums.(j)
              then found := true;
              incr i
            done
          end;
          if not !found then k ()
    | Term.Compound ("holdsAt", [ fv; tm ]) -> (
      match Term.as_fvp fv with
      | None -> raise Fallback
      | Some (pf, pv) ->
        if Term.is_var pf then raise Fallback;
        (* Probe arguments must be bound term slots or constants; the
           value too (non-ground probes enumerate the cache, which stays
           with the interpreter). *)
        let value_id =
          if Term.is_ground pv then begin
            let id = Intern.id_of_term intern pv in
            fun () -> id
          end
          else
            match pv with
            | Term.Var v when Hashtbl.find_opt bound v = Some `Term ->
              let s = slot v in
              fun () -> frame.ids.(s)
            | _ -> raise Fallback
        in
        let time_val =
          match tm with
          | Term.Int t -> fun () -> t
          | Term.Var v when Hashtbl.find_opt bound v = Some `Time ->
            let s = slot v in
            fun () -> frame.tvals.(s)
          | _ -> raise Fallback
        in
        let resolve =
          if Term.is_ground pf && Term.is_ground pv then begin
            let id = Intern.fvp_of_terms intern pf pv in
            fun () -> id
          end
          else begin
            let build = compile_builder pf in
            let slow vid =
              match Intern.find_term intern (build ()) with
              | None -> -1
              | Some fid -> (
                match Intern.find_fvp intern ~fluent:fid ~value:vid with
                | Some id -> id
                | None -> -1)
            in
            (* Successful resolutions are memoised on the intern ids the
               builder reads (term -> id is append-only, so a positive
               entry can never go stale; failures are re-resolved, since
               the probed fvp may be interned by a later emission). This
               replaces a term construction + structural hash per probe
               with an int-keyed table hit. *)
            match List.map slot (Term.vars pf) with
            | [] ->
              let tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
              fun () -> (
                let vid = value_id () in
                match Hashtbl.find_opt tbl vid with
                | Some id -> id
                | None ->
                  let id = slow vid in
                  if id >= 0 then Hashtbl.add tbl vid id;
                  id)
            | [ s1 ] ->
              let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
              fun () -> (
                let vid = value_id () in
                let key = (frame.ids.(s1), vid) in
                match Hashtbl.find_opt tbl key with
                | Some id -> id
                | None ->
                  let id = slow vid in
                  if id >= 0 then Hashtbl.add tbl key id;
                  id)
            | [ s1; s2 ] ->
              let tbl : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
              fun () -> (
                let vid = value_id () in
                let key = (frame.ids.(s1), frame.ids.(s2), vid) in
                match Hashtbl.find_opt tbl key with
                | Some id -> id
                | None ->
                  let id = slow vid in
                  if id >= 0 then Hashtbl.add tbl key id;
                  id)
            | _ -> fun () -> slow (value_id ())
          end
        in
        fun k () ->
          let t = time_val () in
          let fvp = resolve () in
          let holds =
            if fvp >= 0 then st.r_probe fvp t
            else begin
              st.r_miss ();
              false
            end
          in
          if holds = positive then k ())
    | Term.Compound (op, [ a; b ]) when List.mem op comparison_ops ->
      let test = compile_test frame op (compile_num a) (compile_num b) in
      if positive then (fun k () -> if test () then k ())
      else fun k () -> if not (test ()) then k ()
    | Term.Compound ("=", _) -> raise Fallback
    | Term.Compound (_, args) ->
      (* Knowledge lookup: candidate facts captured at compile time, in
         the exact order [Knowledge.solve] scans them. *)
      let table =
        memo tables.t_facts (Term.indicator atom) (facts_table intern knowledge)
      in
      let specs, temps = compile_args ~negated:(not positive) args in
      if not positive then release temps;
      let count = Array.length table.c_ids in
      if positive then
        fun k () ->
          for j = 0 to count - 1 do
            if apply_specs frame specs table.c_ids.(j) table.c_terms.(j) table.c_nums.(j)
            then k ()
          done
      else
        fun k () ->
          let found = ref false in
          let j = ref 0 in
          while (not !found) && !j < count do
            if apply_specs frame specs table.c_ids.(!j) table.c_terms.(!j) table.c_nums.(!j)
            then found := true;
            incr j
          done;
          if not !found then k ()
    | Term.Atom _ ->
      let table =
        memo tables.t_facts (Term.indicator atom) (facts_table intern knowledge)
      in
      let count = Array.length table.c_ids in
      if positive then fun k () -> (for _ = 1 to count do k () done)
      else fun k () -> if count = 0 then k ()
    | _ -> raise Fallback
  in
  (* Compile the body left to right (binding analysis is sequential),
     then fold the makers around the head emitter. *)
  let makers =
    List.rev
      (List.fold_left (fun acc lit -> compile_literal lit :: acc) [] r.Ast.body)
  in
  let terminal =
    let tslot =
      match time with
      | Term.Var v when Hashtbl.find_opt bound v = Some `Time -> slot v
      | _ -> raise Fallback
    in
    let fb = compile_builder fluent and vb = compile_builder value in
    fun () -> st.r_emit (Intern.fvp_of_terms intern (fb ()) (vb ())) frame.tvals.(tslot)
  in
  let chain = List.fold_right (fun mk k -> mk k) makers terminal in
  (* Snapshot the binding environment for the derivation recorder: after
     the whole body is analysed, [bound] holds exactly the positively
     bound variables — the domain of the interpreted substitution. *)
  let bindings =
    Hashtbl.fold (fun v k acc -> (v, k) :: acc) bound []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    cr_state = st;
    cr_chain = chain;
    cr_frame = frame;
    cr_bvars = Array.of_list (List.map (fun (v, k) -> (v, k = `Time)) bindings);
    cr_bslots =
      Array.of_list
        (List.map (fun (v, k) -> if k = `Time then lnot (slot v) else slot v) bindings);
  }

let compile ~event_description ~knowledge ~stream () =
  let intern = Intern.create () in
  let code = Hashtbl.create 64 in
  let tables = { t_events = Hashtbl.create 32; t_facts = Hashtbl.create 32 } in
  let compiled = ref 0 and fallback = ref 0 in
  List.iter
    (fun (info : Dependency.info) ->
      if info.fluent_class = Dependency.Simple then
        List.iteri
          (fun i r ->
            let entry =
              match Ast.kind_of_rule r with
              | Some (Ast.Initiated { fluent; value; time })
              | Some (Ast.Terminated { fluent; value; time }) -> (
                match
                  compile_rule intern ~tables ~stream ~knowledge r ~fluent ~value ~time
                with
                | cr ->
                  incr compiled;
                  Compiled cr
                | exception Fallback ->
                  incr fallback;
                  Interpreted)
              | _ -> Interpreted
            in
            Hashtbl.replace code (fst info.indicator, snd info.indicator, i) entry)
          info.rules)
    (Dependency.all (Dependency.analyse event_description));
  { p_intern = intern; p_code = code; p_compiled = !compiled; p_fallback = !fallback }

let binding_vars cr = cr.cr_bvars

let binding_value cr i =
  let s = cr.cr_bslots.(i) in
  if s >= 0 then cr.cr_frame.ids.(s) else cr.cr_frame.tvals.(lnot s)

let run_rule cr ~from ~until ~probe ~miss ~emit =
  let st = cr.cr_state in
  st.r_from <- from;
  st.r_until <- until;
  st.r_probe <- probe;
  st.r_miss <- miss;
  st.r_emit <- emit;
  Fun.protect
    ~finally:(fun () ->
      (* Release the per-window callbacks (they close over the window's
         cache) so a long-lived program does not retain it. *)
      st.r_probe <- no_probe;
      st.r_miss <- no_miss;
      st.r_emit <- no_emit)
    cr.cr_chain
