(** Atemporal background knowledge: a store of ground facts such as
    [areaType(a1, fishing)], [vesselType(v9, tug)] or
    [thresholds(trawlspeedMin, 1.0)], indexed by predicate indicator. *)

type t

val empty : t
val add : Term.t -> t -> t
(** Raises [Invalid_argument] if the fact is not ground. *)

val of_list : Term.t list -> t
val of_source : string -> t
(** Parses a program of facts in concrete syntax. *)

val facts : t -> Term.t list
val candidates : t -> string * int -> Term.t list
(** Stored facts for an indicator, in the exact order {!solve} scans
    them (latest-added first). The rule compiler freezes this order into
    its fact tables so compiled and interpreted solution orders agree. *)

val solve : t -> Subst.t -> Term.t -> Subst.t list
(** [solve kb subst pattern] returns one extended substitution per stored
    fact unifying with [pattern] under [subst]. *)

val threshold : t -> string -> float option
(** [threshold kb name] looks up [thresholds(name, V)] and returns [V]. *)

val size : t -> int
