type event = { time : int; term : Term.t }

module M = Map.Make (struct
  type t = string * int

  let compare = compare
end)

type t = {
  by_indicator : event array M.t;  (* each array sorted by time *)
  all : event list;  (* sorted by time *)
  times : int array;  (* sorted times of [all], for binary-searched counts *)
  size : int;
  extent : int * int;
  input_fluents : ((Term.t * Term.t) * Interval.t) list;
}

(* Duplicate (fluent, value) keys are unioned rather than concatenated, so
   downstream consumers see one entry per FVP; first-occurrence order is
   preserved. *)
let dedup_input_fluents input_fluents =
  match input_fluents with
  | [] | [ _ ] -> input_fluents
  | _ ->
    let order = ref [] and tbl = Hashtbl.create 16 in
    List.iter
      (fun (((f, v) as fv), spans) ->
        let key = (Term.to_string f, Term.to_string v) in
        match Hashtbl.find_opt tbl key with
        | None ->
          order := fv :: !order;
          Hashtbl.replace tbl key (fv, spans)
        | Some (fv0, spans0) -> Hashtbl.replace tbl key (fv0, Interval.union spans0 spans))
      input_fluents;
    List.rev_map
      (fun (f, v) -> Hashtbl.find tbl (Term.to_string f, Term.to_string v))
      !order

(* Builds a stream from an already time-sorted event list. *)
let of_sorted ~input_fluents sorted =
  let grouped =
    List.fold_left
      (fun acc e ->
        let key = Term.indicator e.term in
        let existing = Option.value ~default:[] (M.find_opt key acc) in
        M.add key (e :: existing) acc)
      M.empty sorted
  in
  let by_indicator = M.map (fun es -> Array.of_list (List.rev es)) grouped in
  let times = Array.of_list (List.map (fun e -> e.time) sorted) in
  let size = Array.length times in
  let extent = if size = 0 then (0, 0) else (times.(0), times.(size - 1)) in
  {
    by_indicator;
    all = sorted;
    times;
    size;
    extent;
    input_fluents = dedup_input_fluents input_fluents;
  }

let make ?(input_fluents = []) events =
  List.iter
    (fun e ->
      if not (Term.is_ground e.term) then
        invalid_arg
          (Printf.sprintf "Stream.make: event %s is not ground" (Term.to_string e.term)))
    events;
  List.iter
    (fun ((f, v), _) ->
      if not (Term.is_ground f && Term.is_ground v) then
        invalid_arg "Stream.make: input fluent is not ground")
    input_fluents;
  of_sorted ~input_fluents (List.stable_sort (fun a b -> Int.compare a.time b.time) events)

let events s = s.all
let size s = s.size
let extent s = s.extent

(* First index with time >= t, via binary search. *)
let lower_bound arr t =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).time < t then lo := mid + 1 else hi := mid
  done;
  !lo

(* Same, over a plain time array. *)
let lower_bound_time arr t =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < t then lo := mid + 1 else hi := mid
  done;
  !lo

let count_in s ~from ~until =
  if until < from then 0
  else lower_bound_time s.times (until + 1) - lower_bound_time s.times from

let events_in s ~functor_ ~from ~until =
  match M.find_opt functor_ s.by_indicator with
  | None -> []
  | Some arr ->
    let start = lower_bound arr from in
    let rec collect i acc =
      if i >= Array.length arr || arr.(i).time > until then List.rev acc
      else collect (i + 1) (arr.(i) :: acc)
    in
    collect start []

let events_at s ~functor_ ~time = events_in s ~functor_ ~from:time ~until:time
let input_fluents s = s.input_fluents
let indicators s = List.map fst (M.bindings s.by_indicator)

let m_appends = Telemetry.Metrics.counter "stream.appends"
let h_append_events = Telemetry.Metrics.histogram "stream.append_events"
let h_merged_size = Telemetry.Metrics.histogram "stream.merged_size"

let append a b =
  Telemetry.Metrics.incr m_appends;
  Telemetry.Metrics.observe h_append_events (float_of_int b.size);
  Telemetry.Metrics.observe h_merged_size (float_of_int (a.size + b.size));
  (* Both event lists are already sorted: a single merge suffices.
     [List.merge] keeps elements of [a] before equal-time elements of [b],
     matching the stable sort in [make]. *)
  of_sorted
    ~input_fluents:(a.input_fluents @ b.input_fluents)
    (List.merge (fun (x : event) y -> Int.compare x.time y.time) a.all b.all)
