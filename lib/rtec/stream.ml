type event = { time : int; term : Term.t }

type item =
  | Event of event
  | Fluent of (Term.t * Term.t) * Interval.t

module M = Map.Make (struct
  type t = string * int

  let compare = compare
end)

(* The queryable form: every index materialised. [evs] and [times] are
   sorted by time (stable — insertion order on ties), the per-indicator
   arrays are the time-ordered subsequences of [evs]. *)
type packed = {
  evs : event array;
  times : int array;  (* times of [evs], for binary-searched counts *)
  by_indicator : event array M.t;
}

(* A stream is either packed or a packed base plus a chain of sorted
   pending tails. Appends only push a tail (O(batch)); the first query
   access merges the whole chain in one pass and caches the packed form
   in [repr]. Scalar facts (size, extent, input fluents) are maintained
   eagerly so watermark/extent bookkeeping never forces the indexes.

   Concurrency: forcing mutates [repr], so a stream with pending tails
   must be owned by a single domain until packed. The runtime respects
   this by construction — partition shards and service buckets are each
   touched by exactly one worker per pass, with happens-before at the
   pool join — and a packed stream is immutable and freely shared. *)
type t = {
  size : int;
  extent : int * int;
  input_fluents : ((Term.t * Term.t) * Interval.t) list;
  mutable repr : repr;
}

and repr = Packed of packed | Pending of { base : t; tail : event array }

(* Duplicate (fluent, value) keys are unioned rather than concatenated, so
   downstream consumers see one entry per FVP; first-occurrence order is
   preserved. *)
let dedup_input_fluents input_fluents =
  match input_fluents with
  | [] | [ _ ] -> input_fluents
  | _ ->
    let order = ref [] and tbl = Hashtbl.create 16 in
    List.iter
      (fun (((f, v) as fv), spans) ->
        let key = (Term.to_string f, Term.to_string v) in
        match Hashtbl.find_opt tbl key with
        | None ->
          order := fv :: !order;
          Hashtbl.replace tbl key (fv, spans)
        | Some (fv0, spans0) -> Hashtbl.replace tbl key (fv0, Interval.union spans0 spans))
      input_fluents;
    List.rev_map
      (fun (f, v) -> Hashtbl.find tbl (Term.to_string f, Term.to_string v))
      !order

(* Stable merge of two time-sorted event arrays; elements of [a] precede
   equal-time elements of [b]. The common streaming case — the tail
   starts at or after the base's last event — degrades to a plain
   concatenation. Never mutates its inputs (results may share them). *)
let merge_sorted a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 then b
  else if m = 0 then a
  else if a.(n - 1).time <= b.(0).time then Array.append a b
  else begin
    let out = Array.make (n + m) a.(0) in
    let i = ref 0 and j = ref 0 in
    for k = 0 to n + m - 1 do
      if !j >= m || (!i < n && a.(!i).time <= b.(!j).time) then begin
        out.(k) <- a.(!i);
        incr i
      end
      else begin
        out.(k) <- b.(!j);
        incr j
      end
    done;
    out
  end

(* Groups a sorted event array into the packed indexes. *)
let pack_sorted_array evs =
  let groups = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let key = Term.indicator e.term in
      match Hashtbl.find_opt groups key with
      | Some r -> r := e :: !r
      | None -> Hashtbl.replace groups key (ref [ e ]))
    evs;
  let by_indicator =
    Hashtbl.fold
      (fun key r acc -> M.add key (Array.of_list (List.rev !r)) acc)
      groups M.empty
  in
  { evs; times = Array.map (fun e -> e.time) evs; by_indicator }

(* Merges a sorted tail into a packed base. [times] is rebuilt in one
   pass; [by_indicator] is updated only for indicators present in the
   tail, sharing the untouched arrays of the base. *)
let merge_packed bp tail =
  if Array.length tail = 0 then bp
  else begin
    let evs = merge_sorted bp.evs tail in
    let tail_groups = Hashtbl.create 8 in
    Array.iter
      (fun e ->
        let key = Term.indicator e.term in
        match Hashtbl.find_opt tail_groups key with
        | Some r -> r := e :: !r
        | None -> Hashtbl.replace tail_groups key (ref [ e ]))
      tail;
    let by_indicator =
      Hashtbl.fold
        (fun key r acc ->
          let fresh = Array.of_list (List.rev !r) in
          M.update key
            (function
              | None -> Some fresh
              | Some old -> Some (merge_sorted old fresh))
            acc)
        tail_groups bp.by_indicator
    in
    { evs; times = Array.map (fun e -> e.time) evs; by_indicator }
  end

let sorted_tails tails =
  match tails with
  | [ t ] -> t
  | ts ->
    let all = Array.concat ts in
    let sorted = ref true in
    for i = 1 to Array.length all - 1 do
      if all.(i).time < all.(i - 1).time then sorted := false
    done;
    (* Stable sort keeps append order on equal times, matching the
       chained-merge semantics of the eager implementation. *)
    if not !sorted then Array.stable_sort (fun a b -> Int.compare a.time b.time) all;
    all

(* Materialises (and caches) the packed indexes: walks the pending chain
   collecting tails oldest-first, merges them into one sorted tail, then
   merges that into the packed base — one merge per query grid advance
   instead of one per append. *)
let force s =
  match s.repr with
  | Packed p -> p
  | Pending _ ->
    let rec collect s tails =
      match s.repr with
      | Packed p -> (p, tails)
      | Pending { base; tail } -> collect base (tail :: tails)
    in
    let bp, tails = collect s [] in
    let p = merge_packed bp (sorted_tails tails) in
    s.repr <- Packed p;
    p

let of_packed ~input_fluents p =
  let n = Array.length p.evs in
  {
    size = n;
    extent = (if n = 0 then (0, 0) else (p.times.(0), p.times.(n - 1)));
    input_fluents = dedup_input_fluents input_fluents;
    repr = Packed p;
  }

(* Builds a stream from an already time-sorted event list. *)
let of_sorted ~input_fluents sorted =
  of_packed ~input_fluents (pack_sorted_array (Array.of_list sorted))

let check_event_ground ~ctx e =
  if not (Term.is_ground e.term) then
    invalid_arg
      (Printf.sprintf "%s: event %s is not ground" ctx (Term.to_string e.term))

let check_fluents_ground ~ctx fluents =
  List.iter
    (fun ((f, v), _) ->
      if not (Term.is_ground f && Term.is_ground v) then
        invalid_arg (ctx ^ ": input fluent is not ground"))
    fluents

let make ?(input_fluents = []) events =
  List.iter (check_event_ground ~ctx:"Stream.make") events;
  check_fluents_ground ~ctx:"Stream.make" input_fluents;
  of_sorted ~input_fluents (List.stable_sort (fun a b -> Int.compare a.time b.time) events)

let of_items items =
  let events, fluents =
    List.fold_left
      (fun (es, fs) -> function
        | Event e -> (e :: es, fs)
        | Fluent (fv, spans) -> (es, (fv, spans) :: fs))
      ([], []) items
  in
  make ~input_fluents:(List.rev fluents) (List.rev events)

let item_time = function
  | Event e -> e.time
  | Fluent (_, spans) -> (
    match Interval.to_list spans with [] -> max_int | (s, _) :: _ -> s)

let events s = Array.to_list (force s).evs
let size s = s.size
let extent s = s.extent

(* First index with time >= t, via binary search. *)
let lower_bound arr t =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).time < t then lo := mid + 1 else hi := mid
  done;
  !lo

(* Same, over a plain time array. *)
let lower_bound_time arr t =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < t then lo := mid + 1 else hi := mid
  done;
  !lo

let count_in s ~from ~until =
  if until < from then 0
  else
    let p = force s in
    lower_bound_time p.times (until + 1) - lower_bound_time p.times from

let events_in s ~functor_ ~from ~until =
  match M.find_opt functor_ (force s).by_indicator with
  | None -> []
  | Some arr ->
    let start = lower_bound arr from in
    let rec collect i acc =
      if i >= Array.length arr || arr.(i).time > until then List.rev acc
      else collect (i + 1) (arr.(i) :: acc)
    in
    collect start []

let events_at s ~functor_ ~time = events_in s ~functor_ ~from:time ~until:time

let indexed s ~functor_ =
  Option.value ~default:[||] (M.find_opt functor_ (force s).by_indicator)

let input_fluents s = s.input_fluents
let indicators s = List.map fst (M.bindings (force s).by_indicator)

(* --- entity sharding ---

   Recognition is entity-decomposable: two events can only interact
   through a rule when their entity arguments are joined, so the stream
   splits along the connected components of the "shares an entity"
   relation. An argument counts as an entity when it appears as the
   *first* argument of some event or input fluent of the stream — the
   RTEC convention puts the entity keys first (velocity(Vessel, ...),
   proximity(Vessel1, Vessel2)), while attribute arguments (areas,
   stops, numeric readings) never lead. The classification is
   data-driven, so pairwise fluents union both entities (each also leads
   its own events) and shared locations never glue unrelated entities
   together. *)

module TermTbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

let first_argument term =
  match term with
  | Term.Compound (_, arg :: _) -> (
    match arg with Term.Int _ | Term.Real _ -> None | _ -> Some arg)
  | _ -> None

(* The entity key set, in first-appearance order (events first, then
   input fluents). *)
let entities s =
  let seen = TermTbl.create 64 in
  let order = ref [] in
  let note term =
    Option.iter
      (fun e ->
        if not (TermTbl.mem seen e) then begin
          TermTbl.replace seen e ();
          order := e :: !order
        end)
      (first_argument term)
  in
  Array.iter (fun e -> note e.term) (force s).evs;
  List.iter (fun ((f, _), _) -> note f) s.input_fluents;
  List.rev !order

(* All subterms of [term] that are entity keys. *)
let entities_of keys term =
  let acc = ref [] in
  let rec walk t =
    if TermTbl.mem keys t then acc := t :: !acc;
    match t with Term.Compound (_, args) -> List.iter walk args | _ -> ()
  in
  walk term;
  !acc

(* Union-find over entity indices, with path compression. *)
let rec uf_find parent i =
  if parent.(i) = i then i
  else begin
    parent.(i) <- uf_find parent parent.(i);
    parent.(i)
  end

let uf_union parent i j =
  let ri = uf_find parent i and rj = uf_find parent j in
  if ri <> rj then parent.(max ri rj) <- min ri rj

let partition ?shards s =
  let evs = (force s).evs in
  let entity_list = entities s in
  let keys = TermTbl.create 64 in
  List.iteri (fun i e -> TermTbl.replace keys e i) entity_list;
  let n_entities = List.length entity_list in
  let parent = Array.init n_entities (fun i -> i) in
  (* An item with no entity key (a zero-argument or numeric-keyed event)
     cannot be attributed to any component: the only safe split is none. *)
  let splittable = ref (n_entities > 0) in
  let union_item term =
    match entities_of keys term with
    | [] -> splittable := false
    | e :: rest ->
      let i = TermTbl.find keys e in
      List.iter (fun e' -> uf_union parent i (TermTbl.find keys e')) rest
  in
  Array.iter (fun e -> union_item e.term) evs;
  List.iter (fun ((f, v), _) -> union_item (Term.app "=" [ f; v ])) s.input_fluents;
  if not !splittable then [ s ]
  else begin
    (* Dense component ids, in entity first-appearance order. *)
    let component_of_root = Hashtbl.create n_entities in
    let n_components = ref 0 in
    List.iteri
      (fun i _ ->
        let root = uf_find parent i in
        if not (Hashtbl.mem component_of_root root) then begin
          Hashtbl.replace component_of_root root !n_components;
          incr n_components
        end)
      entity_list;
    let n_components = !n_components in
    let component_of term =
      match entities_of keys term with
      | [] -> assert false  (* splittable guaranteed an entity *)
      | e :: _ -> Hashtbl.find component_of_root (uf_find parent (TermTbl.find keys e))
    in
    (* Greedy longest-processing-time grouping of components into at
       most [shards] buckets, balanced by event count; deterministic
       (stable sort, ties to the lowest-loaded then lowest-index shard). *)
    let shards = max 1 (min n_components (Option.value ~default:n_components shards)) in
    let sizes = Array.make n_components 0 in
    Array.iter
      (fun e -> sizes.(component_of e.term) <- sizes.(component_of e.term) + 1)
      evs;
    let order = List.init n_components (fun c -> c) in
    let order =
      List.stable_sort (fun a b -> Int.compare sizes.(b) sizes.(a)) order
    in
    let shard_of_component = Array.make n_components 0 in
    let load = Array.make shards 0 in
    List.iter
      (fun c ->
        let best = ref 0 in
        for k = 1 to shards - 1 do
          if load.(k) < load.(!best) then best := k
        done;
        shard_of_component.(c) <- !best;
        load.(!best) <- load.(!best) + sizes.(c))
      order;
    (* One pass over the sorted event array buckets every shard's events
       in time order; input fluents follow their component. *)
    let shard_events = Array.make shards [] in
    Array.iter
      (fun e ->
        let k = shard_of_component.(component_of e.term) in
        shard_events.(k) <- e :: shard_events.(k))
      evs;
    let shard_fluents = Array.make shards [] in
    List.iter
      (fun (((f, v), _) as entry) ->
        let k = shard_of_component.(component_of (Term.app "=" [ f; v ])) in
        shard_fluents.(k) <- entry :: shard_fluents.(k))
      s.input_fluents;
    List.init shards (fun k ->
        of_sorted ~input_fluents:(List.rev shard_fluents.(k)) (List.rev shard_events.(k)))
  end

let m_appends = Telemetry.Metrics.counter "stream.appends"
let h_append_events = Telemetry.Metrics.histogram "stream.append_events"
let h_merged_size = Telemetry.Metrics.histogram "stream.merged_size"

(* Input fluents of both sides are already deduped (every constructor
   dedups), so the union only needs recomputing when both contribute. *)
let combine_input_fluents fa fb =
  match (fa, fb) with [], f | f, [] -> f | fa, fb -> dedup_input_fluents (fa @ fb)

let combine_extent a b =
  if a.size = 0 then b.extent
  else if b.size = 0 then a.extent
  else (min (fst a.extent) (fst b.extent), max (snd a.extent) (snd b.extent))

let append a b =
  Telemetry.Metrics.incr m_appends;
  Telemetry.Metrics.observe h_append_events (float_of_int b.size);
  Telemetry.Metrics.observe h_merged_size (float_of_int (a.size + b.size));
  (* O(batch): push [b]'s (already sorted) events as a pending tail.
     Equal-time events of [a] stay before those of [b] when the chain is
     eventually forced, matching the stable sort in [make]. *)
  {
    size = a.size + b.size;
    extent = combine_extent a b;
    input_fluents = combine_input_fluents a.input_fluents b.input_fluents;
    repr = Pending { base = a; tail = (force b).evs };
  }

let append_items s ?(input_fluents = []) items =
  Array.iter (check_event_ground ~ctx:"Stream.append_items") items;
  check_fluents_ground ~ctx:"Stream.append_items" input_fluents;
  Telemetry.Metrics.incr m_appends;
  Telemetry.Metrics.observe h_append_events (float_of_int (Array.length items));
  Telemetry.Metrics.observe h_merged_size (float_of_int (s.size + Array.length items));
  Array.stable_sort (fun (a : event) b -> Int.compare a.time b.time) items;
  let n = Array.length items in
  let tail_extent =
    if n = 0 then (0, 0) else (items.(0).time, items.(n - 1).time)
  in
  {
    size = s.size + n;
    extent =
      (if s.size = 0 then tail_extent
       else if n = 0 then s.extent
       else
         ( min (fst s.extent) (fst tail_extent),
           max (snd s.extent) (snd tail_extent) ));
    input_fluents =
      combine_input_fluents s.input_fluents (dedup_input_fluents input_fluents);
    repr = Pending { base = s; tail = items };
  }

(* Chunked ingestion: fold a sequence of already-built batches into one
   stream via [append], then force the single chain merge — the "one
   merge per tick" the lazy representation buys. This is the entry point
   batch front-ends use (the CLI's multi-file recognise goes through
   it), so the appends telemetry above reflects real merge traffic. *)
let of_batches = function
  | [] -> make []
  | first :: rest ->
    let s = List.fold_left append first rest in
    ignore (force s);
    s

(* History trimming for the streaming service: events strictly older
   than [t] can no longer fall inside any future (or revisable) window,
   so drop them. Input fluents stay — there are few of them, the engine
   clamps them per window, and trimming their spans would complicate the
   revision replay for no working-set gain. The cut is three array
   slices plus a per-indicator trim (arrays with nothing to drop are
   shared), not a rebuild. *)
let drop_before s t =
  let p = force s in
  let keep = lower_bound_time p.times t in
  if keep = 0 then s
  else begin
    let n = s.size - keep in
    let evs = Array.sub p.evs keep n in
    let times = Array.sub p.times keep n in
    let by_indicator =
      M.filter_map
        (fun _ arr ->
          let cut = lower_bound arr t in
          if cut = 0 then Some arr
          else
            let len = Array.length arr - cut in
            if len = 0 then None else Some (Array.sub arr cut len))
        p.by_indicator
    in
    {
      size = n;
      extent = (if n = 0 then (0, 0) else (times.(0), times.(n - 1)));
      input_fluents = s.input_fluents;
      repr = Packed { evs; times; by_indicator };
    }
  end

let first_input_time s =
  let event_lo = if s.size = 0 then None else Some (fst s.extent) in
  let fluent_lo =
    List.fold_left
      (fun acc (_, spans) ->
        match Interval.to_list spans with
        | [] -> acc
        | (start, _) :: _ -> (
          match acc with None -> Some start | Some a -> Some (min a start)))
      None s.input_fluents
  in
  match (event_lo, fluent_lo) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)
