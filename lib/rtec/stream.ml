type event = { time : int; term : Term.t }

type item =
  | Event of event
  | Fluent of (Term.t * Term.t) * Interval.t

module M = Map.Make (struct
  type t = string * int

  let compare = compare
end)

type t = {
  by_indicator : event array M.t;  (* each array sorted by time *)
  all : event list;  (* sorted by time *)
  times : int array;  (* sorted times of [all], for binary-searched counts *)
  size : int;
  extent : int * int;
  input_fluents : ((Term.t * Term.t) * Interval.t) list;
}

(* Duplicate (fluent, value) keys are unioned rather than concatenated, so
   downstream consumers see one entry per FVP; first-occurrence order is
   preserved. *)
let dedup_input_fluents input_fluents =
  match input_fluents with
  | [] | [ _ ] -> input_fluents
  | _ ->
    let order = ref [] and tbl = Hashtbl.create 16 in
    List.iter
      (fun (((f, v) as fv), spans) ->
        let key = (Term.to_string f, Term.to_string v) in
        match Hashtbl.find_opt tbl key with
        | None ->
          order := fv :: !order;
          Hashtbl.replace tbl key (fv, spans)
        | Some (fv0, spans0) -> Hashtbl.replace tbl key (fv0, Interval.union spans0 spans))
      input_fluents;
    List.rev_map
      (fun (f, v) -> Hashtbl.find tbl (Term.to_string f, Term.to_string v))
      !order

(* Builds a stream from an already time-sorted event list. *)
let of_sorted ~input_fluents sorted =
  let grouped =
    List.fold_left
      (fun acc e ->
        let key = Term.indicator e.term in
        let existing = Option.value ~default:[] (M.find_opt key acc) in
        M.add key (e :: existing) acc)
      M.empty sorted
  in
  let by_indicator = M.map (fun es -> Array.of_list (List.rev es)) grouped in
  let times = Array.of_list (List.map (fun e -> e.time) sorted) in
  let size = Array.length times in
  let extent = if size = 0 then (0, 0) else (times.(0), times.(size - 1)) in
  {
    by_indicator;
    all = sorted;
    times;
    size;
    extent;
    input_fluents = dedup_input_fluents input_fluents;
  }

let make ?(input_fluents = []) events =
  List.iter
    (fun e ->
      if not (Term.is_ground e.term) then
        invalid_arg
          (Printf.sprintf "Stream.make: event %s is not ground" (Term.to_string e.term)))
    events;
  List.iter
    (fun ((f, v), _) ->
      if not (Term.is_ground f && Term.is_ground v) then
        invalid_arg "Stream.make: input fluent is not ground")
    input_fluents;
  of_sorted ~input_fluents (List.stable_sort (fun a b -> Int.compare a.time b.time) events)

let of_items items =
  let events, fluents =
    List.fold_left
      (fun (es, fs) -> function
        | Event e -> (e :: es, fs)
        | Fluent (fv, spans) -> (es, (fv, spans) :: fs))
      ([], []) items
  in
  make ~input_fluents:(List.rev fluents) (List.rev events)

let item_time = function
  | Event e -> e.time
  | Fluent (_, spans) -> (
    match Interval.to_list spans with [] -> max_int | (s, _) :: _ -> s)

let events s = s.all
let size s = s.size
let extent s = s.extent

(* First index with time >= t, via binary search. *)
let lower_bound arr t =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).time < t then lo := mid + 1 else hi := mid
  done;
  !lo

(* Same, over a plain time array. *)
let lower_bound_time arr t =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < t then lo := mid + 1 else hi := mid
  done;
  !lo

let count_in s ~from ~until =
  if until < from then 0
  else lower_bound_time s.times (until + 1) - lower_bound_time s.times from

let events_in s ~functor_ ~from ~until =
  match M.find_opt functor_ s.by_indicator with
  | None -> []
  | Some arr ->
    let start = lower_bound arr from in
    let rec collect i acc =
      if i >= Array.length arr || arr.(i).time > until then List.rev acc
      else collect (i + 1) (arr.(i) :: acc)
    in
    collect start []

let events_at s ~functor_ ~time = events_in s ~functor_ ~from:time ~until:time

let indexed s ~functor_ =
  Option.value ~default:[||] (M.find_opt functor_ s.by_indicator)
let input_fluents s = s.input_fluents
let indicators s = List.map fst (M.bindings s.by_indicator)

(* --- entity sharding ---

   Recognition is entity-decomposable: two events can only interact
   through a rule when their entity arguments are joined, so the stream
   splits along the connected components of the "shares an entity"
   relation. An argument counts as an entity when it appears as the
   *first* argument of some event or input fluent of the stream — the
   RTEC convention puts the entity keys first (velocity(Vessel, ...),
   proximity(Vessel1, Vessel2)), while attribute arguments (areas,
   stops, numeric readings) never lead. The classification is
   data-driven, so pairwise fluents union both entities (each also leads
   its own events) and shared locations never glue unrelated entities
   together. *)

module TermTbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

let first_argument term =
  match term with
  | Term.Compound (_, arg :: _) -> (
    match arg with Term.Int _ | Term.Real _ -> None | _ -> Some arg)
  | _ -> None

(* The entity key set, in first-appearance order (events first, then
   input fluents). *)
let entities s =
  let seen = TermTbl.create 64 in
  let order = ref [] in
  let note term =
    Option.iter
      (fun e ->
        if not (TermTbl.mem seen e) then begin
          TermTbl.replace seen e ();
          order := e :: !order
        end)
      (first_argument term)
  in
  List.iter (fun e -> note e.term) s.all;
  List.iter (fun ((f, _), _) -> note f) s.input_fluents;
  List.rev !order

(* All subterms of [term] that are entity keys. *)
let entities_of keys term =
  let acc = ref [] in
  let rec walk t =
    if TermTbl.mem keys t then acc := t :: !acc;
    match t with Term.Compound (_, args) -> List.iter walk args | _ -> ()
  in
  walk term;
  !acc

(* Union-find over entity indices, with path compression. *)
let rec uf_find parent i =
  if parent.(i) = i then i
  else begin
    parent.(i) <- uf_find parent parent.(i);
    parent.(i)
  end

let uf_union parent i j =
  let ri = uf_find parent i and rj = uf_find parent j in
  if ri <> rj then parent.(max ri rj) <- min ri rj

let partition ?shards s =
  let entity_list = entities s in
  let keys = TermTbl.create 64 in
  List.iteri (fun i e -> TermTbl.replace keys e i) entity_list;
  let n_entities = List.length entity_list in
  let parent = Array.init n_entities (fun i -> i) in
  (* An item with no entity key (a zero-argument or numeric-keyed event)
     cannot be attributed to any component: the only safe split is none. *)
  let splittable = ref (n_entities > 0) in
  let union_item term =
    match entities_of keys term with
    | [] -> splittable := false
    | e :: rest ->
      let i = TermTbl.find keys e in
      List.iter (fun e' -> uf_union parent i (TermTbl.find keys e')) rest
  in
  List.iter (fun e -> union_item e.term) s.all;
  List.iter (fun ((f, v), _) -> union_item (Term.app "=" [ f; v ])) s.input_fluents;
  if not !splittable then [ s ]
  else begin
    (* Dense component ids, in entity first-appearance order. *)
    let component_of_root = Hashtbl.create n_entities in
    let n_components = ref 0 in
    List.iteri
      (fun i _ ->
        let root = uf_find parent i in
        if not (Hashtbl.mem component_of_root root) then begin
          Hashtbl.replace component_of_root root !n_components;
          incr n_components
        end)
      entity_list;
    let n_components = !n_components in
    let component_of term =
      match entities_of keys term with
      | [] -> assert false  (* splittable guaranteed an entity *)
      | e :: _ -> Hashtbl.find component_of_root (uf_find parent (TermTbl.find keys e))
    in
    (* Greedy longest-processing-time grouping of components into at
       most [shards] buckets, balanced by event count; deterministic
       (stable sort, ties to the lowest-loaded then lowest-index shard). *)
    let shards = max 1 (min n_components (Option.value ~default:n_components shards)) in
    let sizes = Array.make n_components 0 in
    List.iter (fun e -> sizes.(component_of e.term) <- sizes.(component_of e.term) + 1) s.all;
    let order = List.init n_components (fun c -> c) in
    let order =
      List.stable_sort (fun a b -> Int.compare sizes.(b) sizes.(a)) order
    in
    let shard_of_component = Array.make n_components 0 in
    let load = Array.make shards 0 in
    List.iter
      (fun c ->
        let best = ref 0 in
        for k = 1 to shards - 1 do
          if load.(k) < load.(!best) then best := k
        done;
        shard_of_component.(c) <- !best;
        load.(!best) <- load.(!best) + sizes.(c))
      order;
    (* One pass over the sorted event list buckets every shard's events
       in time order; input fluents follow their component. *)
    let shard_events = Array.make shards [] in
    List.iter
      (fun e ->
        let k = shard_of_component.(component_of e.term) in
        shard_events.(k) <- e :: shard_events.(k))
      s.all;
    let shard_fluents = Array.make shards [] in
    List.iter
      (fun (((f, v), _) as entry) ->
        let k = shard_of_component.(component_of (Term.app "=" [ f; v ])) in
        shard_fluents.(k) <- entry :: shard_fluents.(k))
      s.input_fluents;
    List.init shards (fun k ->
        of_sorted ~input_fluents:(List.rev shard_fluents.(k)) (List.rev shard_events.(k)))
  end

let m_appends = Telemetry.Metrics.counter "stream.appends"
let h_append_events = Telemetry.Metrics.histogram "stream.append_events"
let h_merged_size = Telemetry.Metrics.histogram "stream.merged_size"

let append a b =
  Telemetry.Metrics.incr m_appends;
  Telemetry.Metrics.observe h_append_events (float_of_int b.size);
  Telemetry.Metrics.observe h_merged_size (float_of_int (a.size + b.size));
  (* Both event lists are already sorted: a single merge suffices.
     [List.merge] keeps elements of [a] before equal-time elements of [b],
     matching the stable sort in [make]. *)
  of_sorted
    ~input_fluents:(a.input_fluents @ b.input_fluents)
    (List.merge (fun (x : event) y -> Int.compare x.time y.time) a.all b.all)

(* Chunked ingestion: fold a sequence of already-built batches into one
   stream via [append]. This is the entry point streaming front-ends use
   (the CLI's multi-file recognise goes through it), so the appends
   telemetry above reflects real merge traffic. *)
let of_batches = function
  | [] -> make []
  | first :: rest -> List.fold_left append first rest

(* History trimming for the streaming service: events strictly older
   than [t] can no longer fall inside any future (or revisable) window,
   so drop them. Input fluents stay — there are few of them, the engine
   clamps them per window, and trimming their spans would complicate the
   revision replay for no working-set gain. *)
let drop_before s t =
  let keep = lower_bound_time s.times t in
  if keep = 0 then s
  else
    of_sorted ~input_fluents:s.input_fluents
      (List.filteri (fun i _ -> i >= keep) s.all)

let first_input_time s =
  let event_lo = if s.size = 0 then None else Some (fst s.extent) in
  let fluent_lo =
    List.fold_left
      (fun acc (_, spans) ->
        match Interval.to_list spans with
        | [] -> acc
        | (start, _) :: _ -> (
          match acc with None -> Some start | Some a -> Some (min a start)))
      None s.input_fluents
  in
  match (event_lo, fluent_lo) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)
