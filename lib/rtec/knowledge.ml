module M = Map.Make (struct
  type t = string * int

  let compare = compare
end)

type t = { index : Term.t list M.t; count : int }

let empty = { index = M.empty; count = 0 }

let add fact kb =
  if not (Term.is_ground fact) then
    invalid_arg
      (Printf.sprintf "Knowledge.add: fact %s is not ground" (Term.to_string fact));
  let key = Term.indicator fact in
  let existing = Option.value ~default:[] (M.find_opt key kb.index) in
  { index = M.add key (fact :: existing) kb.index; count = kb.count + 1 }

let of_list facts = List.fold_left (fun kb f -> add f kb) empty facts

let of_source source =
  Parser.parse_clauses source
  |> List.map (fun (r : Ast.rule) ->
         if r.body <> [] then
           invalid_arg "Knowledge.of_source: expected facts, found a rule";
         r.head)
  |> of_list

let facts kb = M.fold (fun _ fs acc -> List.rev_append fs acc) kb.index []

let candidates kb ind = Option.value ~default:[] (M.find_opt ind kb.index)

let solve kb subst pattern =
  let concrete = Subst.apply subst pattern in
  match M.find_opt (Term.indicator concrete) kb.index with
  | None -> []
  | Some candidates ->
    List.filter_map (fun fact -> Unify.unify ~subst concrete fact) candidates

let threshold kb name =
  let pattern = Term.app "thresholds" [ Term.Atom name; Term.Var "V" ] in
  match solve kb Subst.empty pattern with
  | s :: _ -> (
    match Subst.apply s (Term.Var "V") with
    | Term.Real r -> Some r
    | Term.Int n -> Some (float_of_int n)
    | _ -> None)
  | [] -> None

let size kb = kb.count
