(** Sliding-window stream processing (Section 2, "Reasoning").

    At each query time [q_i] the engine reasons over the events inside the
    window [(q_i - omega, q_i]]; older events are forgotten. Fluent-value
    pairs that hold at the window start are carried over from the previous
    query (interval amalgamation), so recognition is insensitive to window
    boundaries as long as [step <= omega]. *)

type stats = {
  queries : int;  (** number of query times processed *)
  events_processed : int;
      (** input events inside the evaluated region of each query, summed.
          With incremental (delta) evaluation each event is examined once;
          duration-sensitive event descriptions fall back to full-window
          re-evaluation, where overlapping regions count repeatedly. *)
}

val query_times : lo:int -> hi:int -> window:int -> step:int -> int list
(** The query time-points for a stream extent [(lo, hi)]: the first once a
    full window has elapsed (capped at [hi] for streams shorter than one
    window), then every [step], with a final query exactly at [hi] and no
    duplicates. *)

val run :
  ?window:int ->
  ?step:int ->
  ?extent:int * int ->
  ?compile:bool ->
  event_description:Ast.t ->
  knowledge:Knowledge.t ->
  stream:Stream.t ->
  unit ->
  (Engine.result * stats, string) Result.t
(** Runs the engine over the whole stream. Without [window], a single
    query over the full extent is performed. [step] defaults to [window].
    [compile] (default [true]) builds a {!Compiled} rule program once and
    reuses it for every window; pass [false] to force the interpreter
    (the differential oracle — results are bit-identical either way).
    Intervals still open at a query time are truncated just past that
    query's horizon, so that the next overlapping window extends them
    seamlessly. [extent] overrides the [(lo, hi)] range the query times
    are generated from (default: the stream's own extent) — the sharded
    runtime passes the unsharded stream's extent so every shard
    evaluates an identical query grid.

    Application code should prefer [Runtime.run], which adds
    entity-sharded multicore evaluation behind one config record; this
    low-level entry point remains for the runtime itself and for
    tests. *)
