(** Sliding-window stream processing (Section 2, "Reasoning").

    At each query time [q_i] the engine reasons over the events inside the
    window [(q_i - omega, q_i]]; older events are forgotten. Fluent-value
    pairs that hold at the window start are carried over from the previous
    query (interval amalgamation), so recognition is insensitive to window
    boundaries as long as [step <= omega]. *)

type stats = {
  queries : int;  (** number of query times processed *)
  events_processed : int;
      (** input events inside the evaluated region of each query, summed.
          With incremental (delta) evaluation each event is examined once;
          duration-sensitive event descriptions fall back to full-window
          re-evaluation, where overlapping regions count repeatedly. *)
}

val query_times : lo:int -> hi:int -> window:int -> step:int -> int list
(** The query time-points for a stream extent [(lo, hi)]: the first once a
    full window has elapsed (capped at [hi] for streams shorter than one
    window), then every [step], with a final query exactly at [hi] and no
    duplicates. *)

(** The per-query evaluation state behind both the one-shot {!run} and
    the long-lived [Runtime.Service]: a session owns the accumulated
    interval map, the previous query time (delta evaluation) and the
    compiled-program cache, and {!Session.process} evaluates exactly one
    query time against the session's current stream. Because every
    scheduling policy — batch sweep, live ticks, out-of-order revision
    replay — funnels through the same [process], batch/streaming
    differential guarantees hold by construction. *)
module Session : sig
  type t

  type checkpoint
  (** An immutable snapshot of the evaluation state (O(1) to take: the
      accumulated map is persistent). The streaming service checkpoints
      after each query so a late event can roll the session back and
      replay the overlapping windows. *)

  val create :
    ?compile:bool ->
    window:int ->
    step:int ->
    event_description:Ast.t ->
    knowledge:Knowledge.t ->
    stream:Stream.t ->
    unit ->
    (t, string) Result.t
  (** Fails like {!run} on non-positive [window]/[step]. The compiled
      program (when [compile], the default) is built lazily at the first
      {!process} and rebuilt whenever the session's stream value changes. *)

  val set_stream : t -> Stream.t -> unit
  (** Replace the stream the next queries evaluate against (ingestion
      appends, history trimming). Streams are immutable values; the
      compiled-program cache is keyed on physical identity. *)

  val stream : t -> Stream.t
  val prev_q : t -> int option
  val delta_ok : t -> bool
  (** Whether overlapping windows may be evaluated as step deltas
      ([step <= window] and a window-insensitive event description). *)

  val process : t -> lo:int -> int -> (unit, string) Result.t
  (** [process t ~lo q] evaluates query time [q] over the window
      [(max lo (q - window + 1)) .. q] — as a step delta when possible —
      and folds the result into the accumulated state. Query times must
      be presented in increasing order (the grid both {!run} and the
      service generate). [lo] is the grid origin: the full stream's
      extent start, identical across entity shards. *)

  val save : t -> checkpoint
  val restore : t -> checkpoint -> unit

  val absorb : t -> t -> unit
  (** [absorb t other] unions [other]'s evaluation state into [t]: the
      state merge behind bucket coalescing when a cross-entity item joins
      two previously independent entity shards. Both sessions must have
      processed the same query grid over disjoint entity components. *)

  val merge_checkpoint : checkpoint -> checkpoint -> checkpoint
  (** Pointwise union of two checkpoints taken at the same query time
      over disjoint entity components. *)

  val result : t -> Engine.result
  (** The accumulated intervals, in the canonical fluent-value order —
      the same list {!run} returns. *)

  val result_seq : t -> (Engine.fvp * Interval.t) Seq.t
  (** The accumulated intervals as a persistent sequence captured in
      O(1): it ranges over the state as of the call and is unaffected by
      later {!process}/{!restore}. The streaming service builds its lazy
      per-tick results from this, so ticks whose result is discarded
      never pay the merge. *)

  val stats : t -> stats
end

val run :
  ?window:int ->
  ?step:int ->
  ?extent:int * int ->
  ?compile:bool ->
  event_description:Ast.t ->
  knowledge:Knowledge.t ->
  stream:Stream.t ->
  unit ->
  (Engine.result * stats, string) Result.t
(** Runs the engine over the whole stream. Without [window], a single
    query over the full extent is performed. [step] defaults to [window].
    [compile] (default [true]) builds a {!Compiled} rule program once and
    reuses it for every window; pass [false] to force the interpreter
    (the differential oracle — results are bit-identical either way).
    Intervals still open at a query time are truncated just past that
    query's horizon, so that the next overlapping window extends them
    seamlessly. [extent] overrides the [(lo, hi)] range the query times
    are generated from (default: the stream's own extent) — the sharded
    runtime passes the unsharded stream's extent so every shard
    evaluates an identical query grid.

    Application code should prefer [Runtime.run], which adds
    entity-sharded multicore evaluation behind one config record; this
    low-level entry point remains for the runtime itself and for
    tests. *)
