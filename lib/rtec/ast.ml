type rule = { head : Term.t; body : Term.t list; id : string }
type definition = { name : string; rules : rule list }
type t = definition list

type kind =
  | Initiated of { fluent : Term.t; value : Term.t; time : Term.t }
  | Terminated of { fluent : Term.t; value : Term.t; time : Term.t }
  | Holds_for of { fluent : Term.t; value : Term.t; interval : Term.t }

let rule ?(id = "") head body = { head; body; id }
let rule_id r = if String.equal r.id "" then None else Some r.id

let with_ids ~name rules =
  List.mapi
    (fun i r -> if String.equal r.id "" then { r with id = Printf.sprintf "%s#%d" name (i + 1) } else r)
    rules

let kind_of_rule r =
  match r.head with
  | Term.Compound ("initiatedAt", [ fv; time ]) -> (
    match Term.as_fvp fv with
    | Some (fluent, value) -> Some (Initiated { fluent; value; time })
    | None -> None)
  | Term.Compound ("terminatedAt", [ fv; time ]) -> (
    match Term.as_fvp fv with
    | Some (fluent, value) -> Some (Terminated { fluent; value; time })
    | None -> None)
  | Term.Compound ("holdsFor", [ fv; interval ]) -> (
    match Term.as_fvp fv with
    | Some (fluent, value) -> Some (Holds_for { fluent; value; interval })
    | None -> None)
  | _ -> None

let head_indicator r =
  match kind_of_rule r with
  | Some (Initiated { fluent; _ } | Terminated { fluent; _ } | Holds_for { fluent; _ }) ->
    Some (Term.indicator fluent)
  | None -> None

let all_rules ed = List.concat_map (fun d -> d.rules) ed

let defined_indicators ed =
  let add acc r =
    match head_indicator r with
    | Some ind when not (List.mem ind acc) -> ind :: acc
    | _ -> acc
  in
  List.rev (List.fold_left add [] (all_rules ed))

let definition ed name = List.find_opt (fun d -> String.equal d.name name) ed

let merge a b =
  let merge_into acc d =
    match List.partition (fun d' -> String.equal d'.name d.name) acc with
    | [ existing ], rest -> rest @ [ { existing with rules = existing.rules @ d.rules } ]
    | _, _ -> acc @ [ d ]
  in
  List.fold_left merge_into a b

let body_literal r i =
  match List.nth_opt r.body i with
  | Some l -> l
  | None -> invalid_arg "Ast.body_literal: index out of range"

let map_terms f ed =
  List.map
    (fun d ->
      { d with rules = List.map (fun r -> { r with head = f r.head; body = List.map f r.body }) d.rules })
    ed
