type fvp = Term.t * Term.t

let compare_fvp (f1, v1) (f2, v2) =
  let c = Term.compare f1 f2 in
  if c <> 0 then c else Term.compare v1 v2
type result = (fvp * Interval.t) list

(* Telemetry probes: single-branch no-ops until [Telemetry.Metrics.enable]
   is called, so they can sit inside the cache lookup path. *)
let m_cache_hit = Telemetry.Metrics.counter "engine.cache.hit"
let m_cache_miss = Telemetry.Metrics.counter "engine.cache.miss"
let m_rule_evals = Telemetry.Metrics.counter "engine.rule_evaluations"
let m_compiled_hit = Telemetry.Metrics.counter "engine.compiled.hit"
let m_compiled_miss = Telemetry.Metrics.counter "engine.compiled.miss"

module Cache = struct
  (* Maximal intervals of every ground FVP computed so far: the engine's
     bottom-up cache, keyed by interned FVP id so lookups are a single
     int-keyed hashtable probe instead of structural term hashing. Each
     indicator keeps its FVP ids in insertion order for deterministic
     enumeration (the compiled and interpreted paths perform the same
     [add] sequence, so result order is identical either way). *)

  type t = {
    intern : Intern.t;
    spans : (int, Interval.t) Hashtbl.t;  (* fvp id -> intervals *)
    by_indicator : (string * int, int list ref) Hashtbl.t;  (* reverse insertion order *)
  }

  let create ?intern () =
    let intern = match intern with Some i -> i | None -> Intern.create () in
    { intern; spans = Hashtbl.create 256; by_indicator = Hashtbl.create 64 }

  let intern t = t.intern

  let entries_of t ids =
    List.rev_map (fun id -> (Intern.fvp_terms t.intern id, Hashtbl.find t.spans id)) ids

  let entries t ind =
    match Hashtbl.find_opt t.by_indicator ind with
    | None -> []
    | Some r -> entries_of t !r

  let add_id t ~ind id spans =
    match Hashtbl.find_opt t.spans id with
    | None ->
      Hashtbl.replace t.spans id spans;
      (match Hashtbl.find_opt t.by_indicator ind with
      | None -> Hashtbl.replace t.by_indicator ind (ref [ id ])
      | Some r -> r := id :: !r)
    | Some old -> Hashtbl.replace t.spans id (Interval.union old spans)

  let add t (fluent, value) spans =
    let id = Intern.fvp_of_terms t.intern fluent value in
    add_id t ~ind:(Term.indicator fluent) id spans

  (* Uncounted probe by interned id: the compiled evaluator charges the
     hit/miss counters itself (so counts match the interpreter exactly). *)
  let lookup_id t id = Hashtbl.find_opt t.spans id

  let lookup t (fluent, value) =
    let found =
      match Intern.find_fvp_terms t.intern fluent value with
      | None -> None
      | Some id -> Hashtbl.find_opt t.spans id
    in
    Telemetry.Metrics.incr (match found with Some _ -> m_cache_hit | None -> m_cache_miss);
    found

  let to_result t =
    Hashtbl.fold (fun _ r acc -> List.rev_append (entries_of t !r) acc) t.by_indicator []
end

type env = {
  stream : Stream.t;
  knowledge : Knowledge.t;
  cache : Cache.t;
  from : int;
  until : int;
  universe : (string * int, fvp list ref) Hashtbl.t;
      (* extra SD grounding candidates (FVPs recognised in earlier windows),
         indexed by fluent indicator *)
}

(* --- arithmetic and comparisons --- *)

let rec eval_num subst t =
  match Subst.apply subst t with
  | Term.Int n -> Some (float_of_int n)
  | Term.Real r -> Some r
  | Term.Compound (("+" | "-" | "*" | "/") as op, [ a; b ]) -> (
    match (eval_num subst a, eval_num subst b) with
    | Some x, Some y -> (
      match op with
      | "+" -> Some (x +. y)
      | "-" -> Some (x -. y)
      | "*" -> Some (x *. y)
      | _ -> if y = 0. then None else Some (x /. y))
    | _ -> None)
  | _ -> None

let compare_solutions op subst a b =
  match op with
  | "=" -> (
    (* [=] doubles as unification, as in Prolog. *)
    match Unify.unify ~subst (Subst.apply subst a) (Subst.apply subst b) with
    | Some s -> [ s ]
    | None -> [])
  | _ -> (
    match (eval_num subst a, eval_num subst b) with
    | Some x, Some y ->
      let holds =
        match op with
        | "<" -> x < y
        | ">" -> x > y
        | ">=" -> x >= y
        | "=<" -> x <= y
        | "\\=" -> not (Float.equal x y)
        | _ -> false
      in
      if holds then [ subst ] else []
    | _ -> [])

(* --- body evaluation for simple-fluent rules --- *)

let happens_solutions env subst event time =
  let event = Subst.apply subst event in
  if Term.is_var event then []
  else
    let functor_ = Term.indicator event in
    let candidates =
      match Subst.apply subst time with
      | Term.Int t ->
        if t < env.from || t > env.until then []
        else Stream.events_at env.stream ~functor_ ~time:t
      | Term.Var _ -> Stream.events_in env.stream ~functor_ ~from:env.from ~until:env.until
      | _ -> []
    in
    List.filter_map
      (fun (e : Stream.event) ->
        match Unify.unify ~subst event e.term with
        | None -> None
        | Some s -> Unify.unify ~subst:s time (Term.Int e.time))
      candidates

(* FVPs of the given indicator holding at time-point [t]. PR 1 memoised
   this per (time, indicator) on a cache generation counter, but the memo
   never hit on any bench workload (`engine.holds_memo.hit` = 0 across the
   full sweep): ground probes — the overwhelming majority — take the
   direct [Cache.lookup] path below, and the non-ground probes that do
   reach here carry distinct time-points (one per triggering event), so
   keys never repeated. PR 4 removed the memo, its counters and the cache
   generation bookkeeping; what remains is the plain scan it guarded. *)
let holding_at env ind t =
  Cache.entries env.cache ind
  |> List.filter_map (fun (fv, spans) -> if Interval.mem t spans then Some fv else None)

let holds_at_solutions env subst fv time =
  match Subst.apply subst time with
  | Term.Int t -> (
    match Term.as_fvp (Subst.apply subst fv) with
    | None -> []
    | Some (fluent, value) ->
      if Term.is_var fluent then []
      else if Term.is_ground fluent && Term.is_ground value then
        (* Ground probe: a direct two-level cache lookup. *)
        match Cache.lookup env.cache (fluent, value) with
        | Some spans when Interval.mem t spans -> [ subst ]
        | _ -> []
      else
        holding_at env (Term.indicator fluent) t
        |> List.filter_map (fun (f, v) ->
               match Unify.unify ~subst fluent f with
               | None -> None
               | Some s -> Unify.unify ~subst:s value v))
  | _ -> []

let rec literal_solutions env subst literal =
  let positive, atom = Term.strip_not literal in
  let positives =
    match atom with
    | Term.Compound ("happensAt", [ event; time ]) -> happens_solutions env subst event time
    | Term.Compound ("holdsAt", [ fv; time ]) -> holds_at_solutions env subst fv time
    | Term.Compound (("<" | ">" | ">=" | "=<" | "\\=" | "=") as op, [ a; b ]) ->
      compare_solutions op subst a b
    | _ -> Knowledge.solve env.knowledge subst atom
  in
  if positive then positives
  else if positives = [] then [ subst ]
  else []

and body_solutions env subst = function
  | [] -> [ subst ]
  | literal :: rest ->
    literal_solutions env subst literal
    |> List.concat_map (fun s -> body_solutions env s rest)

(* Stable provenance label for the [i]-th rule of an indicator: the
   parser-assigned id when present, a positional fallback otherwise. *)
(* Plain concatenation, not [Printf]: the recorder asks for the label of
   every traced rule once per window, and formatted printing is an order
   of magnitude slower than [^]. *)
let rule_label ind i (r : Ast.rule) =
  if String.equal r.Ast.id "" then
    fst ind ^ "/" ^ string_of_int (snd ind) ^ "#" ^ string_of_int (i + 1)
  else r.Ast.id

(* The catalogue of labelled rules across the whole event description —
   the index {!Derivation.events} uses to reconstruct proof steps from
   compact records. *)
let labelled_rules event_description =
  Dependency.all (Dependency.analyse event_description)
  |> List.concat_map (fun (info : Dependency.info) ->
         List.mapi (fun i r -> (rule_label info.Dependency.indicator i r, r)) info.rules)

(* The successful substitution, fully resolved, for the derivation
   recorder — the interpreted counterpart of [Compiled.binding_value]. *)
let resolved_bindings s =
  List.map (fun (x, _) -> (x, Subst.apply s (Term.Var x))) (Subst.bindings s)

(* Evaluate one initiatedAt/terminatedAt rule, returning the (fvp,
   time-point) pairs it derives within the window. Initiations must be
   ground (they create FVP instances); terminations may retain variables —
   e.g. rule (3) of the paper terminates withinArea(Vl, AreaType) for every
   AreaType on a communication gap — and then act as patterns terminating
   every matching instance. *)
let transition_points env ~label ~kind (r : Ast.rule) ~fluent ~value ~time ~require_ground =
  Telemetry.Metrics.incr m_rule_evals;
  let recording = Derivation.recording () in
  let finish s =
    let f = Subst.apply s fluent and v = Subst.apply s value in
    match Subst.apply s time with
    | Term.Int t when (not require_ground) || (Term.is_ground f && Term.is_ground v) ->
      if recording && Term.is_ground f && Term.is_ground v then
        Derivation.record_transition ~kind ~rule:label ~fluent:f ~value:v ~time:t
          ~binds:(resolved_bindings s);
      Some ((f, v), t)
    | _ -> None
  in
  body_solutions env Subst.empty r.Ast.body |> List.filter_map finish

(* --- statically determined fluents --- *)

module Imap = Map.Make (String)

(* Solutions to a holdsFor body literal: extended substitution plus the
   interval list bound to the literal's interval variable. A ground FVP
   with no cached intervals binds the empty list, so that e.g. a union over
   the values of a multi-valued fluent still succeeds when some value never
   held (RTEC's semantics). *)
let universe_fvps env ind =
  match Hashtbl.find_opt env.universe ind with None -> [] | Some r -> !r

let holds_for_solutions env subst (fluent, value) =
  let fluent = Subst.apply subst fluent and value = Subst.apply subst value in
  let with_value subst fluent =
    if Term.is_ground value then
      let spans =
        Option.value ~default:Interval.empty (Cache.lookup env.cache (fluent, value))
      in
      [ (subst, spans) ]
    else
      let cached =
        Cache.entries env.cache (Term.indicator fluent)
        |> List.filter_map (fun ((f, v), spans) ->
               if Term.equal f fluent then
                 Unify.unify ~subst value v |> Option.map (fun s -> (s, spans))
               else None)
      in
      (* Value groundings recognised in earlier windows but absent from this
         window's cache bind the empty interval list, like any ground FVP
         with no cached intervals. *)
      let carried =
        universe_fvps env (Term.indicator fluent)
        |> List.filter_map (fun (f, v) ->
               if Term.equal f fluent && Cache.lookup env.cache (f, v) = None then
                 Unify.unify ~subst value v |> Option.map (fun s -> (s, Interval.empty))
               else None)
      in
      cached @ carried
  in
  if Term.is_var fluent then []
  else if Term.is_ground fluent then with_value subst fluent
  else
    (* Enumerate the known groundings of the fluent schema, whatever their
       value, then resolve the requested value against each grounding. The
       universe contributes groundings recognised in earlier windows, so
       sliding-window evaluation enumerates the same entities as a
       single-pass run even when the enabling fluent is quiet in the
       current window. *)
    Cache.entries env.cache (Term.indicator fluent)
    |> List.map (fun ((f, _), _) -> f)
    |> List.rev_append (List.map fst (universe_fvps env (Term.indicator fluent)))
    |> List.sort_uniq Term.compare
    |> List.concat_map (fun f ->
           match Unify.unify ~subst fluent f with
           | None -> []
           | Some s -> with_value s (Subst.apply s fluent))

let operand_spans r imap t =
  match t with
  | Term.Var v -> (
    match Imap.find_opt v imap with
    | Some spans -> Ok spans
    | None ->
      Result.Error
        (Printf.sprintf "rule %s: interval variable %s is unbound"
           (Printer.rule_to_string r) v))
  | _ ->
    Result.Error
      (Printf.sprintf "rule %s: expected an interval variable" (Printer.rule_to_string r))

let rec collect_operands r imap = function
  | [] -> Ok []
  | t :: rest ->
    Result.bind (operand_spans r imap t) (fun spans ->
        Result.bind (collect_operands r imap rest) (fun more -> Ok (spans :: more)))

let bind_interval r imap out spans =
  match out with
  | Term.Var v when not (Imap.mem v imap) -> Ok (Imap.add v spans imap)
  | Term.Var v -> Result.Error (Printf.sprintf "rule %s: %s bound twice" (Printer.rule_to_string r) v)
  | _ -> Result.Error (Printf.sprintf "rule %s: interval output must be a variable" (Printer.rule_to_string r))

(* Evaluate the body of a holdsFor rule; each solution carries the final
   substitution, interval-variable environment and — when [trace] is set —
   the per-condition trail for the derivation recorder: (1-based condition
   index, interval list the condition contributed) pairs, which
   [Derivation.events] later re-grounds lazily against the rule body (an
   empty list otherwise; building it is the only difference, so solutions
   are identical either way). Interval-construct errors abort the whole
   evaluation (they indicate an ill-formed rule). *)
let rec sd_solutions env r ~trace idx subst imap trail = function
  | [] -> Ok [ (subst, imap, List.rev trail) ]
  | Term.Compound ("holdsFor", [ fv; ivar ]) :: rest -> (
    match Term.as_fvp (Subst.apply subst fv) with
    | None ->
      Result.Error
        (Printf.sprintf "rule %s: holdsFor argument is not an FVP" (Printer.rule_to_string r))
    | Some fvp ->
      let branches = holds_for_solutions env subst fvp in
      let rec go acc = function
        | [] -> Ok (List.concat (List.rev acc))
        | (s, spans) :: more -> (
          match bind_interval r imap ivar spans with
          | Result.Error e -> Result.Error e
          | Ok imap' -> (
            let trail = if trace then (idx, Interval.to_list spans) :: trail else trail in
            match sd_solutions env r ~trace (idx + 1) s imap' trail rest with
            | Result.Error e -> Result.Error e
            | Ok sols -> go (sols :: acc) more))
      in
      go [] branches)
  | Term.Compound (("union_all" | "intersect_all") as op, [ operands; out ]) :: rest -> (
    match Term.as_list operands with
    | None ->
      Result.Error
        (Printf.sprintf "rule %s: %s expects a list" (Printer.rule_to_string r) op)
    | Some elems ->
      Result.bind (collect_operands r imap elems) (fun lists ->
          let spans =
            if String.equal op "union_all" then Interval.union_all lists
            else Interval.intersect_all lists
          in
          Result.bind (bind_interval r imap out spans) (fun imap' ->
              let trail = if trace then (idx, Interval.to_list spans) :: trail else trail in
              sd_solutions env r ~trace (idx + 1) subst imap' trail rest)))
  | Term.Compound ("relative_complement_all", [ i; operands; out ]) :: rest -> (
    match Term.as_list operands with
    | None ->
      Result.Error
        (Printf.sprintf "rule %s: relative_complement_all expects a list"
           (Printer.rule_to_string r))
    | Some elems ->
      Result.bind (operand_spans r imap i) (fun base ->
          Result.bind (collect_operands r imap elems) (fun lists ->
              let spans = Interval.relative_complement_all base lists in
              Result.bind (bind_interval r imap out spans) (fun imap' ->
                  let trail =
                    if trace then (idx, Interval.to_list spans) :: trail else trail
                  in
                  sd_solutions env r ~trace (idx + 1) subst imap' trail rest))))
  | Term.Compound ("intDurGreater", [ i; threshold; out ]) :: rest -> (
    let min_duration =
      match threshold with
      | Term.Int n -> Some n
      | Term.Real x -> Some (int_of_float x)
      | _ -> None
    in
    match min_duration with
    | None ->
      Result.Error
        (Printf.sprintf "rule %s: intDurGreater expects a numeric threshold"
           (Printer.rule_to_string r))
    | Some min_duration ->
      Result.bind (operand_spans r imap i) (fun base ->
          let spans = Interval.filter_duration ~min_duration base in
          Result.bind (bind_interval r imap out spans) (fun imap' ->
              let trail = if trace then (idx, Interval.to_list spans) :: trail else trail in
              sd_solutions env r ~trace (idx + 1) subst imap' trail rest)))
  | literal :: _ ->
    Result.Error
      (Printf.sprintf "rule %s: literal %s is not allowed in a holdsFor body"
         (Printer.rule_to_string r) (Term.to_string literal))

(* --- fluent evaluation --- *)

module FvpMap = Map.Make (struct
  type t = fvp

  let compare (f1, v1) (f2, v2) =
    let c = Term.compare f1 f2 in
    if c <> 0 then c else Term.compare v1 v2
end)

let evaluate_simple env ~ind ~carry (rules : Ast.rule list) =
  let inits = ref FvpMap.empty and terms = ref FvpMap.empty in
  let term_patterns = ref [] in
  let record store (fv, t) =
    store := FvpMap.update fv (fun o -> Some (t :: Option.value ~default:[] o)) !store
  in
  List.iteri
    (fun i r ->
      match Ast.kind_of_rule r with
      | Some (Ast.Initiated { fluent; value; time }) ->
        List.iter (record inits)
          (transition_points env ~label:(rule_label ind i r) ~kind:Derivation.Init r ~fluent
             ~value ~time ~require_ground:true)
      | Some (Ast.Terminated { fluent; value; time }) ->
        let label = rule_label ind i r in
        List.iter
          (fun (((f, v) as fv), t) ->
            if Term.is_ground f && Term.is_ground v then record terms (fv, t)
            else term_patterns := ((fv, t), label) :: !term_patterns)
          (transition_points env ~label ~kind:Derivation.Term r ~fluent ~value ~time
             ~require_ground:false)
      | _ -> ())
    rules;
  (* FVPs of this fluent holding at the window start persist by inertia:
     seed an initiation just before the window. *)
  List.iter
    (fun (((f, v) as fv), origin) ->
      record inits (fv, env.from - 1);
      if Derivation.recording () then
        Derivation.record_carry ~origin ~fluent:f ~value:v ~time:(env.from - 1))
    carry;
  (* The initiation of a different value of the same fluent terminates the
     current value (a fluent has at most one value at a time). *)
  let compare_fvp (f1, v1) (f2, v2) =
    let c = Term.compare f1 f2 in
    if c <> 0 then c else Term.compare v1 v2
  in
  let all_fvps =
    FvpMap.fold (fun fv _ acc -> fv :: acc) !inits []
    @ FvpMap.fold (fun fv _ acc -> fv :: acc) !terms []
    |> List.sort_uniq compare_fvp
  in
  List.iter
    (fun ((fluent, value) as fv) ->
      let starts = Option.value ~default:[] (FvpMap.find_opt fv !inits) in
      if starts <> [] then begin
        let stops = Option.value ~default:[] (FvpMap.find_opt fv !terms) in
        let stops =
          (* Non-ground termination patterns apply to every matching
             ground instance. *)
          List.fold_left
            (fun acc (((pf, pv), t), plabel) ->
              match Unify.unify pf fluent with
              | Some s when Option.is_some (Unify.unify ~subst:s pv value) ->
                if Derivation.recording () then
                  Derivation.record_pattern ~rule:plabel ~pattern:(Term.eq pf pv) ~fluent
                    ~value ~time:t;
                t :: acc
              | _ -> acc)
            stops !term_patterns
        in
        let other_value_inits =
          FvpMap.fold
            (fun (f, v) ts acc ->
              if Term.equal f fluent && not (Term.equal v value) then ts @ acc else acc)
            !inits []
        in
        let spans = Interval.from_points ~starts ~stops:(stops @ other_value_inits) in
        if not (Interval.is_empty spans) then Cache.add env.cache fv spans
      end)
    all_fvps

(* Growable int buffer for transition-point accumulation (OCaml 5.1 has
   no Dynarray): flat scratch storage the interval kernel consumes
   directly, in place of per-cons list cells. *)
type ivec = { mutable buf : int array; mutable len : int }

let ivec_make () = { buf = Array.make 8 0; len = 0 }

let ivec_push v x =
  if v.len = Array.length v.buf then begin
    let b = Array.make (2 * v.len) 0 in
    Array.blit v.buf 0 b 0 v.len;
    v.buf <- b
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

let ivec_append dst (src : ivec) =
  for k = 0 to src.len - 1 do
    ivec_push dst src.buf.(k)
  done

let ivec_array v = Array.sub v.buf 0 v.len

(* Compiled counterpart of [evaluate_simple]: transition points accrue
   into int-keyed tables of flat buffers, compiled rules run their
   closure chains, and rules the compiler could not handle fall back to
   [transition_points] — feeding the same accumulators, so the resulting
   cache content (and [Cache.add] order, hence result order) is
   bit-identical to the interpreter's. When the derivation recorder is
   armed, a [Derivation.sink] re-encodes each compiled emission as a
   compact record (rule label, fvp, time and the chain's slot bindings
   via {!Compiled.binding_value}) — the same record sequence, in the
   same order, as the interpreted path produces. *)
let evaluate_simple_compiled env (prog : Compiled.program) ~ind ~carry
    (rules : Ast.rule list) =
  let intern = Cache.intern env.cache in
  let sink = Derivation.sink ~intern in
  (* Wrap a compiled rule's [emit] so every emission also appends a
     compact transition record; the bind array is per-rule scratch with
     keys pre-filled, so the per-emission work is slot reads only. *)
  let traced_emit cr ~kind i r base =
    match sink with
    | None -> base
    | Some sk ->
      let vars = Compiled.binding_vars cr in
      let n = Array.length vars in
      let rule = Derivation.sink_string sk (rule_label ind i r) in
      let binds = Array.make (2 * n) 0 in
      Array.iteri
        (fun j (v, is_time) ->
          binds.(2 * j) <-
            (Derivation.sink_string sk v lsl 1) lor (if is_time then 1 else 0))
        vars;
      fun id t ->
        base id t;
        for j = 0 to n - 1 do
          binds.((2 * j) + 1) <- Compiled.binding_value cr j
        done;
        Derivation.sink_transition_ids sk ~kind ~rule ~fvp:id ~time:t ~binds
  in
  let inits : (int, ivec) Hashtbl.t = Hashtbl.create 32 in
  let terms : (int, ivec) Hashtbl.t = Hashtbl.create 32 in
  let term_patterns = ref [] in
  let record tbl id t =
    match Hashtbl.find_opt tbl id with
    | Some v -> ivec_push v t
    | None ->
      let v = ivec_make () in
      ivec_push v t;
      Hashtbl.replace tbl id v
  in
  let probe id t =
    match Cache.lookup_id env.cache id with
    | Some spans ->
      Telemetry.Metrics.incr m_cache_hit;
      Interval.mem t spans
    | None ->
      Telemetry.Metrics.incr m_cache_miss;
      false
  in
  let miss () = Telemetry.Metrics.incr m_cache_miss in
  let emit_init id t = record inits id t in
  let emit_term id t = record terms id t in
  List.iteri
    (fun i r ->
      match Ast.kind_of_rule r with
      | Some (Ast.Initiated { fluent; value; time }) -> (
        match Compiled.rule_code prog ~ind ~index:i with
        | Some (Compiled.Compiled cr) ->
          Telemetry.Metrics.incr m_rule_evals;
          Telemetry.Metrics.incr m_compiled_hit;
          Compiled.run_rule cr ~from:env.from ~until:env.until ~probe ~miss
            ~emit:(traced_emit cr ~kind:Derivation.Init i r emit_init)
        | _ ->
          Telemetry.Metrics.incr m_compiled_miss;
          List.iter
            (fun ((f, v), t) -> record inits (Intern.fvp_of_terms intern f v) t)
            (transition_points env ~label:(rule_label ind i r) ~kind:Derivation.Init r
               ~fluent ~value ~time ~require_ground:true))
      | Some (Ast.Terminated { fluent; value; time }) -> (
        match Compiled.rule_code prog ~ind ~index:i with
        | Some (Compiled.Compiled cr) ->
          Telemetry.Metrics.incr m_rule_evals;
          Telemetry.Metrics.incr m_compiled_hit;
          Compiled.run_rule cr ~from:env.from ~until:env.until ~probe ~miss
            ~emit:(traced_emit cr ~kind:Derivation.Term i r emit_term)
        | _ ->
          Telemetry.Metrics.incr m_compiled_miss;
          let label = rule_label ind i r in
          List.iter
            (fun (((f, v) as fv), t) ->
              if Term.is_ground f && Term.is_ground v then
                record terms (Intern.fvp_of_terms intern f v) t
              else term_patterns := ((fv, t), label) :: !term_patterns)
            (transition_points env ~label ~kind:Derivation.Term r ~fluent ~value ~time
               ~require_ground:false))
      | _ -> ())
    rules;
  List.iter
    (fun ((f, v), origin) ->
      record inits (Intern.fvp_of_terms intern f v) (env.from - 1);
      if Derivation.recording () then
        Derivation.record_carry ~origin ~fluent:f ~value:v ~time:(env.from - 1))
    carry;
  let all = Hashtbl.create 32 in
  Hashtbl.iter (fun id _ -> Hashtbl.replace all id ()) inits;
  Hashtbl.iter (fun id _ -> Hashtbl.replace all id ()) terms;
  let fvps =
    Hashtbl.fold (fun id () acc -> (Intern.fvp_terms intern id, id) :: acc) all []
    |> List.sort (fun ((a : fvp), _) (b, _) -> compare_fvp a b)
  in
  List.iter
    (fun ((fluent, value), id) ->
      match Hashtbl.find_opt inits id with
      | None -> ()
      | Some starts ->
        let stop_buf = ivec_make () in
        (match Hashtbl.find_opt terms id with
        | Some v -> ivec_append stop_buf v
        | None -> ());
        List.iter
          (fun (((pf, pv), t), plabel) ->
            match Unify.unify pf fluent with
            | Some s when Option.is_some (Unify.unify ~subst:s pv value) ->
              if Derivation.recording () then
                Derivation.record_pattern ~rule:plabel ~pattern:(Term.eq pf pv) ~fluent
                  ~value ~time:t;
              ivec_push stop_buf t
            | _ -> ())
          !term_patterns;
        (* The initiation of a different value of the same fluent
           terminates the current value. *)
        let fid = Intern.fvp_fluent_id intern id in
        Hashtbl.iter
          (fun id' v ->
            if id' <> id && Intern.fvp_fluent_id intern id' = fid then
              ivec_append stop_buf v)
          inits;
        let spans =
          Interval.from_point_arrays ~starts:(ivec_array starts)
            ~stops:(ivec_array stop_buf)
        in
        if not (Interval.is_empty spans) then
          Cache.add_id env.cache ~ind:(Term.indicator fluent) id spans)
    fvps

let evaluate_sd env ~ind (rules : Ast.rule list) =
  let results = ref FvpMap.empty in
  let skipped = ref [] in
  let trace = Derivation.recording () in
  List.iteri
    (fun i (r : Ast.rule) ->
        match Ast.kind_of_rule r with
        | Some (Ast.Holds_for { fluent; value; interval }) -> (
          Telemetry.Metrics.incr m_rule_evals;
          match sd_solutions env r ~trace 1 Subst.empty Imap.empty [] r.body with
          | Result.Error e ->
            (* An ill-formed rule contributes nothing (the definition is
               "unusable in practice", Section 5.2) but does not abort the
               rest of the event description. *)
            skipped := e :: !skipped
          | Ok sols ->
            List.iter
              (fun (s, imap, steps) ->
                let f = Subst.apply s fluent and v = Subst.apply s value in
                match interval with
                | Term.Var iv when Term.is_ground f && Term.is_ground v -> (
                  match Imap.find_opt iv imap with
                  | Some spans when not (Interval.is_empty spans) ->
                    if trace then
                      Derivation.record_derived ~fluent:f ~value:v
                        ~rule:(rule_label ind i r) ~spans:(Interval.to_list spans)
                        ~binds:(resolved_bindings s) ~steps;
                    results :=
                      FvpMap.update (f, v)
                        (fun o ->
                          Some (Interval.union spans (Option.value ~default:Interval.empty o)))
                        !results
                  | _ -> ())
                | _ -> ())
              sols)
        | _ -> ())
    rules;
  FvpMap.iter (fun fv spans -> Cache.add env.cache fv spans) !results;
  Ok (List.rev !skipped)

(* initially(F=V) facts in the event description seed the law of inertia:
   the FVP holds from the very start of the stream. *)
let initial_fvps event_description =
  List.filter_map
    (fun (r : Ast.rule) ->
      match r.head with
      | Term.Compound ("initially", [ fv ]) when r.body = [] -> (
        match Term.as_fvp fv with
        | Some (f, v) when Term.is_ground f && Term.is_ground v -> Some (f, v)
        | _ -> None)
      | _ -> None)
    (Ast.all_rules event_description)

(* Everything [run] needs after parsing the dependency structure and
   seeding the cache; kept as a value so the negative-provenance probe
   ([Diagnosis]) can re-enter evaluation with the same environment. *)
type prepared = {
  p_env : env;
  p_deps : Dependency.t;
  p_order : (string * int) list;
  p_carry : (fvp * string) list;  (* fvp, origin ("carry" | "initially") *)
  p_compiled : Compiled.program option;
}

let prepare_run ?(carry = []) ?(universe = []) ?input_from ?compiled ~event_description
    ~knowledge ~stream ~from ~until () =
  let deps = Dependency.analyse event_description in
  match Dependency.evaluation_order deps with
  | Error e -> Result.Error e
  | Ok order ->
    let lo, _ = Stream.extent stream in
    (* When evaluating only the step delta of a larger window, [input_from]
       is the true window start: input fluents are clamped against it, not
       against the delta start. *)
    let input_from = Option.value ~default:from input_from in
    let carry =
      (* [initially] declarations only apply when the window reaches back
         to the start of the stream; afterwards the carry list carries
         their effect forward. *)
      List.map (fun fv -> (fv, "carry")) carry
      @
      if from <= lo then List.map (fun fv -> (fv, "initially")) (initial_fvps event_description)
      else []
    in
    (* A compiled program shares its intern table with the cache, so the
       fvp ids baked into rule closures address cache slots directly. *)
    let cache = Cache.create ?intern:(Option.map Compiled.intern compiled) () in
    (* Input statically determined fluents are available from the start,
       restricted to the window. *)
    List.iter
      (fun (fv, spans) ->
        let spans = Interval.clamp (input_from + 1) Interval.infinity spans in
        if not (Interval.is_empty spans) then begin
          Cache.add cache fv spans;
          if Derivation.recording () then
            Derivation.record_input ~fluent:(fst fv) ~value:(snd fv)
              ~spans:(Interval.to_list spans)
        end)
      (Stream.input_fluents stream);
    let universe_tbl = Hashtbl.create 64 in
    List.iter
      (fun ((f, _) as fv) ->
        let ind = Term.indicator f in
        match Hashtbl.find_opt universe_tbl ind with
        | None -> Hashtbl.replace universe_tbl ind (ref [ fv ])
        | Some r -> r := fv :: !r)
      universe;
    let env = { stream; knowledge; cache; from; until; universe = universe_tbl } in
    Ok { p_env = env; p_deps = deps; p_order = order; p_carry = carry; p_compiled = compiled }

let evaluate_prepared p =
  let rec evaluate = function
    | [] -> Ok ()
    | ind :: rest -> (
      match Dependency.info p.p_deps ind with
      | None -> evaluate rest
      | Some info -> (
        match info.fluent_class with
        | Dependency.Mixed ->
          Result.Error
            (Printf.sprintf "fluent %s/%d mixes simple and statically determined rules"
               (fst ind) (snd ind))
        | Dependency.Simple ->
          let carry_here =
            List.filter (fun ((f, _), _) -> Term.indicator f = ind) p.p_carry
          in
          (* Compiled chains run whether or not the recorder is on: the
             emission sink produces the same compact records as the
             interpreted path, so provenance no longer forces the
             interpreter. *)
          (match p.p_compiled with
          | Some prog ->
            evaluate_simple_compiled p.p_env prog ~ind ~carry:carry_here info.rules
          | None -> evaluate_simple p.p_env ~ind ~carry:carry_here info.rules);
          evaluate rest
        | Dependency.Statically_determined -> (
          match evaluate_sd p.p_env ~ind info.rules with
          | Result.Error e -> Result.Error e
          | Ok _skipped -> evaluate rest)))
  in
  evaluate p.p_order

let run ?carry ?universe ?input_from ?compiled ~event_description ~knowledge ~stream ~from
    ~until () =
  Result.bind
    (prepare_run ?carry ?universe ?input_from ?compiled ~event_description ~knowledge
       ~stream ~from ~until ())
    (fun p ->
      Result.map (fun () -> Cache.to_result p.p_env.cache) (evaluate_prepared p))

let holds_at result fv t =
  match List.find_opt (fun ((f, v), _) -> Term.equal f (fst fv) && Term.equal v (snd fv)) result with
  | Some (_, spans) -> Interval.mem t spans
  | None -> false

let intervals result fv =
  match List.find_opt (fun ((f, v), _) -> Term.equal f (fst fv) && Term.equal v (snd fv)) result with
  | Some (_, spans) -> spans
  | None -> Interval.empty

let find_fluent result ind =
  List.filter (fun ((f, _), _) -> Term.indicator f = ind) result

let query result pattern =
  match Term.as_fvp pattern with
  | None -> []
  | Some (pf, pv) ->
    List.filter
      (fun ((f, v), _) ->
        match Unify.unify pf f with
        | None -> false
        | Some s -> Option.is_some (Unify.unify ~subst:s pv v))
      result

(* --- negative provenance --- *)

module Diagnosis = struct
  (* A re-evaluation probe over a fully evaluated single-pass environment:
     given a rule, a ground FVP and a time-point, replay the rule's body
     and report either that it derives the FVP there or the first body
     condition that fails (with its grounding under the most advanced
     substitution frontier). Recognition never calls this; it exists for
     the FP/FN attribution pipeline in lib/provenance. *)

  type t = { d_env : env; d_deps : Dependency.t }

  type outcome =
    | Derivable
    | Head_mismatch
    | Failing of { index : int; literal : Term.t; grounded : Term.t }
    | Unsupported of string

  let prepare ~event_description ~knowledge ~stream () =
    (* The probe re-runs recognition; keep its derivations out of any
       live recorder buffer. *)
    let was = Derivation.is_enabled () in
    Derivation.disable ();
    Fun.protect
      ~finally:(fun () -> if was then Derivation.enable ())
      (fun () ->
        let lo, hi = Stream.extent stream in
        match
          prepare_run ~event_description ~knowledge ~stream ~from:lo ~until:hi ()
        with
        | Error e -> Result.Error e
        | Ok p -> (
          match evaluate_prepared p with
          | Error e -> Result.Error e
          | Ok () -> Ok { d_env = p.p_env; d_deps = p.p_deps }))

  let result t = Cache.to_result t.d_env.cache

  let rules_for t ind =
    match Dependency.info t.d_deps ind with
    | None -> []
    | Some info -> List.mapi (fun i r -> (rule_label ind i r, r)) info.rules

  let indicators t =
    List.map (fun (i : Dependency.info) -> i.Dependency.indicator) (Dependency.all t.d_deps)

  (* Frontier walk over a transition-rule body: expand every body literal
     against all current solutions; the first literal with no solution is
     the failing condition. *)
  let transition_at t (r : Ast.rule) ~head:(fluent, value, htime) ~fvp:(tf, tv) ~time =
    match Unify.unify fluent tf with
    | None -> Head_mismatch
    | Some s -> (
      match Unify.unify ~subst:s value tv with
      | None -> Head_mismatch
      | Some s -> (
        match Unify.unify ~subst:s htime (Term.Int time) with
        | None -> Head_mismatch
        | Some s0 ->
          let rec go subs index = function
            | [] -> Derivable
            | lit :: rest -> (
              match List.concat_map (fun s -> literal_solutions t.d_env s lit) subs with
              | [] -> Failing { index; literal = lit; grounded = Subst.apply (List.hd subs) lit }
              | next -> go next (index + 1) rest)
          in
          go [ s0 ] 1 r.Ast.body))

  let sd_output_var = function
    | Term.Compound ("holdsFor", [ _; Term.Var v ])
    | Term.Compound (("union_all" | "intersect_all"), [ _; Term.Var v ])
    | Term.Compound ("relative_complement_all", [ _; _; Term.Var v ])
    | Term.Compound ("intDurGreater", [ _; _; Term.Var v ]) ->
      Some v
    | _ -> None

  (* Diagnose a holdsFor rule at [time]. When some solution's head
     interval covers the point the rule is derivable. Otherwise walk the
     interval dataflow backwards from the head variable: descend through
     constructs whose *input* already lacked the point, and stop at the
     condition where coverage was actually decided — the holdsFor literal
     that failed to hold there, or, for a relative complement whose base
     covered the point, the subtracted operand that wrongly held. *)
  let holds_for_at t (r : Ast.rule) ~head:(fluent, value, ivar) ~fvp:(tf, tv) ~time =
    match Unify.unify fluent tf with
    | None -> Head_mismatch
    | Some s -> (
      match Unify.unify ~subst:s value tv with
      | None -> Head_mismatch
      | Some s0 -> (
        match ivar with
        | Term.Var iv -> (
          match sd_solutions t.d_env r ~trace:false 1 s0 Imap.empty [] r.Ast.body with
          | Error e -> Unsupported e
          | Ok sols -> (
            let covers (_, imap, _) =
              match Imap.find_opt iv imap with
              | Some spans -> Interval.mem time spans
              | None -> false
            in
            if List.exists covers sols then Derivable
            else
              match sols with
              | [] ->
                (* No solution at all: forward walk to the first literal
                   with no branches. *)
                let rec fwd states index = function
                  | [] -> Unsupported "holdsFor body has no solutions"
                  | lit :: rest -> (
                    let next =
                      List.concat_map
                        (fun (s, imap) ->
                          match
                            sd_solutions t.d_env r ~trace:false index s imap [] [ lit ]
                          with
                          | Ok l -> List.map (fun (s', imap', _) -> (s', imap')) l
                          | Error _ -> [])
                        states
                    in
                    match next with
                    | [] ->
                      let g =
                        match states with (s, _) :: _ -> Subst.apply s lit | [] -> lit
                      in
                      Failing { index; literal = lit; grounded = g }
                    | _ -> fwd next (index + 1) rest)
                in
                fwd [ (s0, Imap.empty) ] 1 r.Ast.body
              | (s, imap, _) :: _ ->
                let indexed = List.mapi (fun i lit -> (i + 1, lit)) r.Ast.body in
                let binder v =
                  List.find_opt (fun (_, lit) -> sd_output_var lit = Some v) indexed
                in
                let spans_of v =
                  Option.value ~default:Interval.empty (Imap.find_opt v imap)
                in
                let var_of = function Term.Var v -> Some v | _ -> None in
                let fail index lit =
                  Failing { index; literal = lit; grounded = Subst.apply s lit }
                in
                let rec blame v =
                  match binder v with
                  | None ->
                    Unsupported (Printf.sprintf "interval variable %s has no binder" v)
                  | Some (index, lit) -> (
                    match lit with
                    | Term.Compound ("holdsFor", _) -> fail index lit
                    | Term.Compound ("union_all", [ ops; _ ]) -> (
                      match Term.as_list ops with
                      | Some [ single ] when var_of single <> None ->
                        blame (Option.get (var_of single))
                      | _ -> fail index lit)
                    | Term.Compound ("intersect_all", [ ops; _ ]) -> (
                      match Term.as_list ops with
                      | Some elems -> (
                        match
                          List.find_opt
                            (fun e ->
                              match var_of e with
                              | Some v' -> not (Interval.mem time (spans_of v'))
                              | None -> false)
                            elems
                        with
                        | Some e -> blame (Option.get (var_of e))
                        | None -> fail index lit)
                      | None -> fail index lit)
                    | Term.Compound ("relative_complement_all", [ base; ops; _ ]) -> (
                      match var_of base with
                      | Some bv when not (Interval.mem time (spans_of bv)) -> blame bv
                      | _ -> (
                        match Term.as_list ops with
                        | Some elems -> (
                          match
                            List.find_opt
                              (fun e ->
                                match var_of e with
                                | Some v' -> Interval.mem time (spans_of v')
                                | None -> false)
                              elems
                          with
                          | Some e -> (
                            match binder (Option.get (var_of e)) with
                            | Some (i', l') -> fail i' l'
                            | None -> fail index lit)
                          | None -> fail index lit)
                        | None -> fail index lit))
                    | Term.Compound ("intDurGreater", [ i; _; _ ]) -> (
                      match var_of i with
                      | Some v' when not (Interval.mem time (spans_of v')) -> blame v'
                      | _ -> fail index lit)
                    | _ -> fail index lit)
                in
                blame iv))
        | _ -> Unsupported "head interval is not a variable"))

  let rule_at t ~rule ~fvp ~time =
    match Ast.kind_of_rule rule with
    | Some (Ast.Initiated { fluent; value; time = ht }) ->
      transition_at t rule ~head:(fluent, value, ht) ~fvp ~time
    | Some (Ast.Terminated { fluent; value; time = ht }) ->
      transition_at t rule ~head:(fluent, value, ht) ~fvp ~time
    | Some (Ast.Holds_for { fluent; value; interval }) ->
      holds_for_at t rule ~head:(fluent, value, interval) ~fvp ~time
    | None -> Unsupported "rule head is not an RTEC rule"
end
