(** Textual serialisation of streams and background knowledge, in concrete
    RTEC syntax, so that datasets round-trip through files and the command
    line. An event is written as [happensAt(E, T).]; an input statically
    determined fluent as [holdsFor(F = V, [[S1, E1], [S2, E2], ...]).]
    (spans as two-element lists; the sentinel atom [inf] denotes an open
    interval); a fact as itself. *)

val stream_to_string : Stream.t -> string
val stream_of_string : string -> Stream.t
(** Raises {!Parser.Error} on malformed input and [Invalid_argument] on
    lines that are neither [happensAt] nor [holdsFor] facts. *)

val items_of_string : string -> Stream.item list
(** Parses a chunk of the stream format into ingestion items, input
    order preserved — the [serve] line protocol ([Runtime.Service]
    consumes the items). Raises like {!stream_of_string}. *)

val knowledge_to_string : Knowledge.t -> string
val knowledge_of_string : string -> Knowledge.t

val write_stream : out_channel -> Stream.t -> unit
val read_stream : in_channel -> Stream.t
val write_knowledge : out_channel -> Knowledge.t -> unit
val read_knowledge : in_channel -> Knowledge.t
