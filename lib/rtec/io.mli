(** Textual serialisation of streams and background knowledge, in concrete
    RTEC syntax, so that datasets round-trip through files and the command
    line. An event is written as [happensAt(E, T).]; an input statically
    determined fluent as [holdsFor(F = V, [[S1, E1], [S2, E2], ...]).]
    (spans as two-element lists; the sentinel atom [inf] denotes an open
    interval); a fact as itself. *)

val stream_to_string : Stream.t -> string
val stream_of_string : string -> Stream.t
(** Raises {!Parser.Error} on malformed input and [Invalid_argument] on
    lines that are neither [happensAt] nor [holdsFor] facts. *)

val items_of_string : string -> Stream.item list
(** Parses a chunk of the stream format into ingestion items, input
    order preserved — the [serve] line protocol ([Runtime.Service]
    consumes the items). Raises like {!stream_of_string}. Goes through a
    fresh {!Codec.t}; long-lived readers should hold their own codec so
    the atom memo persists across chunks. *)

(** Fast-path line decoding. [Codec] recognises the two protocol fact
    shapes — [happensAt(F(args...), T).] and
    [holdsFor(F(args...) = V, [[S, E], ...]).] — by scanning bytes
    directly into ground terms, memoising atoms so recurring vocabulary
    is shared rather than re-allocated. It accepts a strict subset of
    the full grammar; any input outside it (quoted atoms, variables,
    arithmetic, rules, block comments) falls back to the general
    lexer/parser pipeline for the whole chunk, so results and errors are
    always exactly the parser's. Instrumented: [io.codec.fast] counts
    fast-decoded facts, [io.codec.fallback] counts chunks that took the
    general path. A codec value is not thread-safe; give each reader its
    own. *)
module Codec : sig
  type t

  val create : unit -> t
  val items_of_string : t -> string -> Stream.item list
end

val knowledge_to_string : Knowledge.t -> string
val knowledge_of_string : string -> Knowledge.t

val write_stream : out_channel -> Stream.t -> unit
val read_stream : in_channel -> Stream.t
val write_knowledge : out_channel -> Knowledge.t -> unit
val read_knowledge : in_channel -> Knowledge.t
