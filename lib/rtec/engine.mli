(** The RTEC reasoning engine.

    Computes, bottom-up over the fluent hierarchy, the maximal intervals of
    every defined fluent-value pair from a window of the input stream
    (Section 2, "Reasoning"). Simple fluents follow the law of inertia:
    initiation points are matched with the first subsequent termination
    point, where the initiation of a different value of the same fluent
    also acts as a termination. Statically determined fluents are computed
    by interval manipulation over the cached intervals of lower-level
    fluents. *)

type fvp = Term.t * Term.t
(** A ground fluent-value pair. *)

val compare_fvp : fvp -> fvp -> int
(** Lexicographic term order on (fluent, value); the canonical order for
    accumulating and merging recognition results deterministically. *)

type result = (fvp * Interval.t) list

val run :
  ?carry:fvp list ->
  ?universe:fvp list ->
  ?input_from:int ->
  ?compiled:Compiled.program ->
  event_description:Ast.t ->
  knowledge:Knowledge.t ->
  stream:Stream.t ->
  from:int ->
  until:int ->
  unit ->
  (result, string) Result.t
(** Evaluates the event description over the events with
    [from <= time <= until]. [carry] lists the FVPs that held at the window
    start according to the previous query (RTEC's interval amalgamation);
    they are treated as initiated just before [from]. [universe] lists FVPs
    recognised in earlier windows: they act as extra grounding candidates
    when a [holdsFor] body literal enumerates the instances of a fluent
    schema, so windowed evaluation binds the same variables as a single
    pass even when the enabling fluent is quiet in the current window.
    [input_from] (default [from]) is the window start used to clamp input
    statically determined fluents — pass the true window start when [from]
    is only the step delta of a larger window. When the window reaches the
    start of the stream, ground [initially(F=V)] facts of the event
    description are added to the carry. Fails when the description is not
    stratified or a fluent mixes rule kinds.

    [compiled] is a rule program from {!Compiled.compile} (for this event
    description, knowledge base and stream): transition rules then run as
    closure chains over interned terms, with bit-identical results — also
    while derivation recording is enabled, when each compiled emission is
    re-encoded through a {!Derivation.sink} into the same compact records
    the interpreted path appends. *)

val labelled_rules : Ast.t -> (string * Ast.rule) list
(** Every transition and [holdsFor] rule of the event description, paired
    with its provenance label (the parser-assigned rule id, or a
    positional ["name/arity#i"] fallback) — the catalogue
    [Derivation.events ~rules] needs to reconstruct proof steps from
    compact records. *)

val holds_at : result -> fvp -> int -> bool
val intervals : result -> fvp -> Interval.t
val find_fluent : result -> string * int -> (fvp * Interval.t) list
(** All computed instances of a fluent indicator. *)

val query : result -> Term.t -> (fvp * Interval.t) list
(** [query result pattern] returns the instances whose FVP unifies with
    the (possibly non-ground) pattern, e.g.
    [withinArea(Vessel, fishing) = true]. *)

(** Negative provenance: why a rule does {e not} derive an FVP at a
    time-point. A re-evaluation probe over a fully evaluated single-pass
    environment, used by the FP/FN attribution pipeline in
    [lib/provenance]; recognition itself never calls it. *)
module Diagnosis : sig
  type t

  type outcome =
    | Derivable  (** the rule derives the FVP at the queried point *)
    | Head_mismatch  (** the rule's head cannot produce this FVP/time *)
    | Failing of { index : int; literal : Term.t; grounded : Term.t }
        (** the first body condition (1-based) with no solution; [grounded]
            is the literal under the most advanced substitution frontier *)
    | Unsupported of string

  val prepare :
    event_description:Ast.t ->
    knowledge:Knowledge.t ->
    stream:Stream.t ->
    unit ->
    (t, string) Result.t
  (** Runs single-pass recognition over the stream's full extent and keeps
      the evaluated environment for probing. Derivation recording is
      suspended for the internal run. *)

  val result : t -> result

  val indicators : t -> (string * int) list
  (** Defined fluent indicators, in evaluation-analysis order. *)

  val rules_for : t -> string * int -> (string * Ast.rule) list
  (** The rules defining an indicator, each with its provenance label (the
      parser-assigned rule id, or a positional ["name/arity#i"]
      fallback) — the same labels derivation records use. *)

  val rule_at : t -> rule:Ast.rule -> fvp:fvp -> time:int -> outcome
  (** Replays [rule] for the ground [fvp] at [time]. For [initiatedAt]/
      [terminatedAt] rules the time-point is the transition time; for
      [holdsFor] rules it asks whether the derived interval covers the
      point, attributing a miss to the body condition where coverage was
      decided (descending through interval constructs whose inputs already
      lacked the point). *)
end
