(** The RTEC reasoning engine.

    Computes, bottom-up over the fluent hierarchy, the maximal intervals of
    every defined fluent-value pair from a window of the input stream
    (Section 2, "Reasoning"). Simple fluents follow the law of inertia:
    initiation points are matched with the first subsequent termination
    point, where the initiation of a different value of the same fluent
    also acts as a termination. Statically determined fluents are computed
    by interval manipulation over the cached intervals of lower-level
    fluents. *)

type fvp = Term.t * Term.t
(** A ground fluent-value pair. *)

val compare_fvp : fvp -> fvp -> int
(** Lexicographic term order on (fluent, value); the canonical order for
    accumulating and merging recognition results deterministically. *)

type result = (fvp * Interval.t) list

val run :
  ?carry:fvp list ->
  ?universe:fvp list ->
  ?input_from:int ->
  event_description:Ast.t ->
  knowledge:Knowledge.t ->
  stream:Stream.t ->
  from:int ->
  until:int ->
  unit ->
  (result, string) Result.t
(** Evaluates the event description over the events with
    [from <= time <= until]. [carry] lists the FVPs that held at the window
    start according to the previous query (RTEC's interval amalgamation);
    they are treated as initiated just before [from]. [universe] lists FVPs
    recognised in earlier windows: they act as extra grounding candidates
    when a [holdsFor] body literal enumerates the instances of a fluent
    schema, so windowed evaluation binds the same variables as a single
    pass even when the enabling fluent is quiet in the current window.
    [input_from] (default [from]) is the window start used to clamp input
    statically determined fluents — pass the true window start when [from]
    is only the step delta of a larger window. When the window reaches the
    start of the stream, ground [initially(F=V)] facts of the event
    description are added to the carry. Fails when the description is not
    stratified or a fluent mixes rule kinds. *)

val holds_at : result -> fvp -> int -> bool
val intervals : result -> fvp -> Interval.t
val find_fluent : result -> string * int -> (fvp * Interval.t) list
(** All computed instances of a fluent indicator. *)

val query : result -> Term.t -> (fvp * Interval.t) list
(** [query result pattern] returns the instances whose FVP unifies with
    the (possibly non-ground) pattern, e.g.
    [withinArea(Vessel, fishing) = true]. *)
