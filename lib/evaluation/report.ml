let code_of_name name =
  match (Maritime.Gold.entry name).code with Some c -> c | None -> name

let find_activity_value per_activity code =
  (* [per_activity] is keyed by activity name; figures report codes. *)
  List.find_map
    (fun (name, v) ->
      match (Maritime.Gold.entry name).code with
      | Some c when String.equal c code -> Some v
      | _ -> None)
    per_activity

let print_matrix ppf ~title ~columns ~rows ~cell =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "%-6s" "";
  List.iter (fun c -> Format.fprintf ppf "%14s" c) columns;
  Format.fprintf ppf "@.";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-6s" row;
      List.iteri (fun i _ -> Format.fprintf ppf "%14s" (cell ~row ~col:i)) columns;
      Format.fprintf ppf "@.")
    rows

let similarity_matrix ppf ~title series =
  (* [series]: (label, per_activity keyed by name, average). *)
  let columns = List.map (fun (label, _, _) -> label) series in
  let rows = Experiments.activity_codes @ [ "all" ] in
  let cell ~row ~col =
    let _, per_activity, avg = List.nth series col in
    let v =
      if String.equal row "all" then Some avg else find_activity_value per_activity row
    in
    match v with Some v -> Printf.sprintf "%.3f" v | None -> "-"
  in
  print_matrix ppf ~title ~columns ~rows ~cell;
  ignore code_of_name

let figure_2a ppf generations =
  similarity_matrix ppf
    ~title:
      "Figure 2a: similarity of LLM-generated definitions vs. the \
       hand-crafted event description (best prompting scheme per model)"
    (List.map (fun (g : Experiments.generation) -> (g.label, g.per_activity, g.average))
       generations)

let figure_2b ppf corrected =
  similarity_matrix ppf
    ~title:"Figure 2b: similarities after minimal syntactic changes"
    (List.map
       (fun (c : Experiments.corrected) ->
         (c.corrected_label, c.corrected_per_activity, c.corrected_average))
       corrected)

let figure_2c ppf rows =
  let columns = List.map (fun (r : Experiments.accuracy_row) -> r.label) rows in
  let codes = Experiments.activity_codes in
  let cell ~row ~col =
    let r = List.nth rows col in
    match List.assoc_opt row r.per_activity_f1 with
    | Some v -> Printf.sprintf "%.3f" v
    | None -> "-"
  in
  print_matrix ppf
    ~title:
      "Figure 2c: predictive accuracy (time-point f1) of corrected event \
       descriptions on the AIS stream"
    ~columns ~rows:codes ~cell

let scheme_table ppf generations =
  Format.fprintf ppf
    "Prompting-scheme sensitivity (average similarity; the best scheme per \
     model is the one reported in Figure 2a)@.";
  Format.fprintf ppf "  %-10s %12s %18s@." "" "few-shot" "chain-of-thought";
  List.iter
    (fun (model, few, cot) -> Format.fprintf ppf "  %-10s %12.3f %18.3f@." model few cot)
    (Experiments.scheme_comparison generations)

let ablations ppf best =
  Format.fprintf ppf
    "Ablation: zero-shot prompting (average similarity; excluded from the \
     paper's pipeline for producing poor results)@.";
  List.iter
    (fun (model, avg) -> Format.fprintf ppf "  %-10s %.3f@." model avg)
    (Experiments.zero_shot_ablation ());
  Format.fprintf ppf "@.";
  Format.fprintf ppf
    "Ablation: Kuhn-Munkres vs. greedy mapping in the similarity metric \
     (average similarity)@.";
  Format.fprintf ppf "  %-12s %12s %12s@." "" "hungarian" "greedy";
  List.iter
    (fun (label, hungarian, greedy) ->
      Format.fprintf ppf "  %-12s %12.3f %12.3f@." label hungarian greedy)
    (Experiments.assignment_ablation best)

let explain ppf ~gold_label ~generated_label (r : Provenance.Diff.report) =
  Format.fprintf ppf "Explain: %s vs. %s@." gold_label generated_label;
  Provenance.Diff.pp_report ppf r

let explain_json ~gold_label ~generated_label r =
  Telemetry.Json.Obj
    [
      ("gold", Telemetry.Json.Str gold_label);
      ("generated", Telemetry.Json.Str generated_label);
      ("report", Provenance.Diff.report_to_json r);
    ]

let print_all ?dataset ?window ?step ppf () =
  let generations = Experiments.generate_all () in
  let best = Experiments.best_per_model generations in
  figure_2a ppf best;
  Format.fprintf ppf "@.";
  scheme_table ppf generations;
  Format.fprintf ppf "@.";
  let corrected = Experiments.correct_top best in
  figure_2b ppf corrected;
  Format.fprintf ppf "@.";
  let dataset = match dataset with Some d -> d | None -> Maritime.Dataset.generate () in
  (match Experiments.predictive_accuracy ?window ?step ~dataset corrected with
  | Error e -> Format.fprintf ppf "figure 2c failed: %s@." e
  | Ok rows -> figure_2c ppf rows);
  Format.fprintf ppf "@.";
  ablations ppf best
