(** Plain-text rendering of the figure reproductions: one row per
    activity code (plus 'all'), one column per model series, matching the
    bar groups of Figure 2. *)

val figure_2a : Format.formatter -> Experiments.generation list -> unit
val figure_2b : Format.formatter -> Experiments.corrected list -> unit
val figure_2c : Format.formatter -> Experiments.accuracy_row list -> unit

val print_all :
  ?dataset:Maritime.Dataset.t -> ?window:int -> ?step:int -> Format.formatter -> unit -> unit
(** Runs the full pipeline (12 generations, best-of selection, correction,
    recognition) and prints the three figures. *)

val scheme_table : Format.formatter -> Experiments.generation list -> unit
(** Few-shot vs. chain-of-thought average similarity per model. *)

val ablations : Format.formatter -> Experiments.generation list -> unit
(** Prints the zero-shot and greedy-assignment ablation tables for the
    given (best-per-model) generations. *)

val explain :
  Format.formatter ->
  gold_label:string ->
  generated_label:string ->
  Provenance.Diff.report ->
  unit
(** Renders an FP/FN attribution report (from {!Detection.explain}) as
    plain text: per-activity divergence totals followed by the
    per-rule/per-condition blame table. *)

val explain_json :
  gold_label:string -> generated_label:string -> Provenance.Diff.report -> Telemetry.Json.t
(** The same report as a JSON document (schema ["adg-provenance/1"]). *)
