(** Composite-activity detection over the synthetic AIS stream: runs an
    event description through the windowed engine and extracts the
    recognised instances of the reported activities. *)

type activity = { name : string; code : string; indicator : string * int }

val reported : activity list
(** The 8 activities of Figure 2, with their fluent indicators. *)

val detect :
  ?window:int ->
  ?step:int ->
  ?jobs:int ->
  event_description:Rtec.Ast.t ->
  dataset:Maritime.Dataset.t ->
  unit ->
  (Rtec.Engine.result, string) result
(** Windowed recognition via {!Runtime.run} (defaults: one-hour window,
    half-hour step, one worker domain). *)

val instances :
  Rtec.Engine.result -> activity -> (Rtec.Engine.fvp * Rtec.Interval.t) list
