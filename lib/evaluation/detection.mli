(** Composite-activity detection over the synthetic AIS stream: runs an
    event description through the windowed engine and extracts the
    recognised instances of the reported activities. *)

type activity = { name : string; code : string; indicator : string * int }

val reported : activity list
(** The 8 activities of Figure 2, with their fluent indicators. *)

val detect :
  ?window:int ->
  ?step:int ->
  ?jobs:int ->
  event_description:Rtec.Ast.t ->
  dataset:Maritime.Dataset.t ->
  unit ->
  (Rtec.Engine.result, string) result
(** Windowed recognition via {!Runtime.run} (defaults: one-hour window,
    half-hour step, one worker domain). *)

val instances :
  Rtec.Engine.result -> activity -> (Rtec.Engine.fvp * Rtec.Interval.t) list

val explain :
  ?window:int ->
  ?step:int ->
  ?jobs:int ->
  gold:Rtec.Ast.t ->
  generated:Rtec.Ast.t ->
  dataset:Maritime.Dataset.t ->
  unit ->
  (Provenance.Diff.report, string) result
(** Recognises both event descriptions over the dataset's stream (with
    derivation provenance) and attributes every diverging time-point to
    the responsible rule and condition via {!Provenance.Diff.diff}.
    Omitting [window] evaluates each description in a single pass. *)
