(** Drivers for the paper's three experiments (Figures 2a, 2b, 2c). *)

type generation = {
  session : Adg.Session.t;
  label : string;  (** e.g. "o1" + square *)
  per_activity : (string * float) list;
      (** similarity vs. the gold definition, for every gold entry *)
  average : float;  (** the 'all' bar: mean over all definitions *)
}

val generate : ?jobs:int -> model:string -> scheme:Adg.Prompt.scheme -> unit -> generation
val generate_all : ?jobs:int -> unit -> generation list
(** All 12 (model, scheme) combinations. [jobs] fans each generation's
    per-activity similarity sweep out over that many worker domains
    (default 1, sequential); results are identical either way. *)

val similarity_table : ?jobs:int -> Adg.Session.t -> (string * float) list
(** Similarity vs. gold for every gold entry — the per-activity sweep
    behind {!generate}. With [jobs > 1] the activities are graded in
    parallel on worker domains with domain-safe telemetry
    ({!Runtime.map_domains}); the table (order and values) is identical
    to the sequential run. *)

val best_per_model : generation list -> generation list
(** For each model, the scheme with the highest average similarity — the
    six series of Figure 2a. *)

type corrected = {
  generation : generation;
  corrected_label : string;  (** filled-symbol label, e.g. "o1" + filled square *)
  ed : Rtec.Ast.t;
  correction : Adg.Correction.report;
  corrected_per_activity : (string * float) list;
  corrected_average : float;
}

val correct_top : ?n:int -> generation list -> corrected list
(** Applies the minimal syntactic correction to the [n] (default 3) best
    event descriptions — Figure 2b. *)

type accuracy_row = {
  label : string;
  per_activity_f1 : (string * float) list;  (** keyed by activity code *)
}

val predictive_accuracy :
  ?window:int -> ?step:int -> dataset:Maritime.Dataset.t -> corrected list ->
  (accuracy_row list, string) result
(** Figure 2c: recognition with each corrected event description vs. the
    hand-crafted one over the dataset stream. *)

val activity_codes : string list
(** ["h"; "aM"; "tr"; "tu"; "p"; "l"; "s"; "d"]. *)

val scheme_comparison : generation list -> (string * float * float) list
(** [(model, few_shot_avg, cot_avg)] over all 12 generations: the
    prompting-scheme sensitivity behind the paper's best-of selection. *)

val zero_shot_ablation : unit -> (string * float) list
(** Average similarity per model under zero-shot prompting — the setting
    the paper excluded from the pipeline for producing poor results. *)

val assignment_ablation : generation list -> (string * float * float) list
(** [(label, hungarian_avg, greedy_avg)] per generation: how the average
    similarity degrades when the minimum-cost mapping of Definitions
    4.5/4.12/4.14 is replaced by a greedy matcher. Greedy averages are
    never higher. *)

val similarity_of_definition : Adg.Session.t -> string -> float
(** Similarity of one generated activity definition vs. gold. *)
