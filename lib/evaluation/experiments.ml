type generation = {
  session : Adg.Session.t;
  label : string;
  per_activity : (string * float) list;
  average : float;
}

let activity_codes = [ "h"; "aM"; "tr"; "tu"; "p"; "l"; "s"; "d" ]

let gold_rules name = (Maritime.Gold.definition name).rules

(* The gold side of every similarity comparison is fixed: preprocess
   each activity's rules (variable-instance maps, body arrays, content
   hashes) exactly once per process instead of once per generated
   definition they are graded against. *)
let gold_prepared =
  lazy
    (List.map
       (fun (e : Maritime.Gold.entry) ->
         (e.name, Similarity.Distance.prepare (gold_rules e.name)))
       Maritime.Gold.entries)

let prepared_gold name = List.assoc name (Lazy.force gold_prepared)

let similarity_against_gold ?strategy rules name =
  Similarity.Distance.similarity_prepared ?strategy
    (Similarity.Distance.prepare rules)
    (prepared_gold name)

let similarity_of_definition (session : Adg.Session.t) name =
  match
    List.find_opt (fun (d : Adg.Session.generated_definition) -> d.activity = name)
      session.definitions
  with
  | Some { parsed = Ok def; _ } -> similarity_against_gold def.rules name
  | Some { parsed = Error _; _ } | None ->
    (* Unusable output: nothing matches the gold definition. *)
    0.

(* The per-activity similarity sweep — the inner loop of the LLM x
   activity x scheme table behind Figures 2a/2b. Activities are
   independent, so with [jobs > 1] they fan out over worker domains
   ([Runtime.map_domains]: per-domain telemetry accumulators, exact merge
   at join); result order and values are identical to the sequential
   run. *)
let similarity_table ?(jobs = 1) session =
  let entries = Array.of_list Maritime.Gold.entries in
  let row (e : Maritime.Gold.entry) = (e.name, similarity_of_definition session e.name) in
  if jobs <= 1 then Array.to_list (Array.map row entries)
  else Array.to_list (Runtime.map_domains ~jobs (fun _ e -> row e) entries)

let average values =
  if values = [] then 0.
  else List.fold_left (fun acc (_, v) -> acc +. v) 0. values /. float_of_int (List.length values)

let generate ?jobs ~model ~scheme () =
  let profile = Adg.Profiles.find ~model ~scheme in
  let session = Adg.Session.run (Adg.Profiles.backend profile) in
  let per_activity = similarity_table ?jobs session in
  {
    session;
    label = model ^ Adg.Prompt.scheme_symbol scheme;
    per_activity;
    average = average per_activity;
  }

let generate_all ?jobs () =
  List.concat_map
    (fun model ->
      List.map (fun scheme -> generate ?jobs ~model ~scheme ())
        [ Adg.Prompt.Few_shot; Adg.Prompt.Chain_of_thought ])
    Adg.Profiles.models

let best_per_model generations =
  List.filter_map
    (fun model ->
      generations
      |> List.filter (fun g -> String.equal g.session.Adg.Session.model model)
      |> List.sort (fun a b -> Float.compare b.average a.average)
      |> function
      | best :: _ -> Some best
      | [] -> None)
    Adg.Profiles.models

type corrected = {
  generation : generation;
  corrected_label : string;
  ed : Rtec.Ast.t;
  correction : Adg.Correction.report;
  corrected_per_activity : (string * float) list;
  corrected_average : float;
}

let correct_one (g : generation) =
  let ed, report = Adg.Correction.correct g.session in
  let per_activity =
    List.map
      (fun (e : Maritime.Gold.entry) ->
        match Rtec.Ast.definition ed e.name with
        | Some def -> (e.name, similarity_against_gold def.rules e.name)
        | None -> (e.name, 0.))
      Maritime.Gold.entries
  in
  {
    generation = g;
    corrected_label =
      g.session.Adg.Session.model ^ Adg.Prompt.corrected_symbol g.session.Adg.Session.scheme;
    ed;
    correction = report;
    corrected_per_activity = per_activity;
    corrected_average = average per_activity;
  }

let correct_top ?(n = 3) generations =
  generations
  |> List.sort (fun a b -> Float.compare b.average a.average)
  |> List.filteri (fun i _ -> i < n)
  |> List.map correct_one

type accuracy_row = { label : string; per_activity_f1 : (string * float) list }

(* --- ablations --- *)

let scheme_comparison generations =
  List.map
    (fun model ->
      let avg scheme =
        match
          List.find_opt
            (fun g ->
              String.equal g.session.Adg.Session.model model
              && g.session.Adg.Session.scheme = scheme)
            generations
        with
        | Some g -> g.average
        | None -> 0.
      in
      (model, avg Adg.Prompt.Few_shot, avg Adg.Prompt.Chain_of_thought))
    Adg.Profiles.models

let zero_shot_ablation () =
  List.map
    (fun model ->
      let scheme = Adg.Profiles.reported_scheme model in
      let profile = Adg.Profiles.find ~model ~scheme in
      let session = Adg.Session.run (Adg.Profiles.zero_shot_backend profile) in
      let per_activity = similarity_table session in
      (model, average per_activity))
    Adg.Profiles.models

let assignment_ablation generations =
  List.map
    (fun (g : generation) ->
      let greedy =
        List.map
          (fun (e : Maritime.Gold.entry) ->
            match
              List.find_opt
                (fun (d : Adg.Session.generated_definition) -> d.activity = e.name)
                g.session.Adg.Session.definitions
            with
            | Some { parsed = Ok def; _ } ->
              ( e.name,
                similarity_against_gold ~strategy:Similarity.Distance.Greedy def.rules
                  e.name )
            | _ -> (e.name, 0.))
          Maritime.Gold.entries
      in
      (g.label, g.average, average greedy))
    generations

let predictive_accuracy ?window ?step ~dataset corrected =
  match Detection.detect ?window ?step ~event_description:Maritime.Gold.event_description
          ~dataset ()
  with
  | Error e -> Error ("gold recognition failed: " ^ e)
  | Ok reference ->
    let row (c : corrected) =
      match Detection.detect ?window ?step ~event_description:c.ed ~dataset () with
      | Error e -> Error (c.corrected_label ^ ": " ^ e)
      | Ok predicted ->
        let per_activity_f1 =
          List.map
            (fun (a : Detection.activity) ->
              let confusion =
                Metrics.compare_activity ~predicted ~reference ~indicator:a.indicator
              in
              (a.code, Metrics.f1 confusion))
            Detection.reported
        in
        Ok { label = c.corrected_label; per_activity_f1 }
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
        match row c with Error e -> Error e | Ok r -> collect (r :: acc) rest)
    in
    collect [] corrected
