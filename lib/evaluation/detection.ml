type activity = { name : string; code : string; indicator : string * int }

let reported =
  List.map
    (fun (e : Maritime.Gold.entry) ->
      let def = Maritime.Gold.definition e.name in
      let indicator =
        match def.rules with
        | r :: _ -> (
          match Rtec.Ast.head_indicator r with
          | Some ind -> ind
          | None -> (e.name, 1))
        | [] -> (e.name, 1)
      in
      { name = e.name; code = Option.value ~default:e.name e.code; indicator })
    Maritime.Gold.reported

let detect ?(window = 3600) ?(step = 1800) ?(jobs = 1) ~event_description ~dataset () =
  match
    Runtime.run
      ~config:(Runtime.config ~window ~step ~jobs ())
      ~event_description ~knowledge:dataset.Maritime.Dataset.knowledge
      ~stream:dataset.Maritime.Dataset.stream ()
  with
  | Ok (result, _stats) -> Ok result
  | Error e -> Error e

let instances result activity = Rtec.Engine.find_fluent result activity.indicator

let explain ?window ?step ?(jobs = 1) ~gold ~generated ~dataset () =
  Provenance.Diff.diff
    ~config:(Runtime.config ?window ?step ~jobs ())
    ~gold ~generated ~knowledge:dataset.Maritime.Dataset.knowledge
    ~stream:dataset.Maritime.Dataset.stream ()
