(** Long-lived streaming recognition sessions.

    A service is the always-on counterpart of the one-shot
    [Runtime.run]: create it once, {!ingest} newline-sized batches of
    stream items as they arrive, {!tick} it on a wall-clock or explicit
    schedule to advance the sliding-window query grid, and read each
    tick's amalgamated intervals. Per-entity evaluation state persists
    across windows in entity shards ("buckets") that mirror
    {!Rtec.Stream.partition}'s connected components incrementally —
    every bucket is driven by a {!Rtec.Window.Session}, the exact
    per-query evaluation code of the batch path, so streaming results
    are bit-identical to an in-order batch run over the same accepted
    input.

    Out-of-order items are repaired by bounded revision: each processed
    query checkpoints the owning bucket's state (O(1), persistent maps);
    a late item within the {!config}'s revision horizon rolls the bucket
    back to the newest checkpoint before the item's time and replays the
    overlapping queries over the merged stream. Later items are counted
    ([stream.late_events] / [stream.dropped_late]) and dropped. Idle
    entities can be evicted after a TTL: their recognised intervals are
    frozen into the service result and their working state (stream
    slice, checkpoints, compiled program) is released
    ([service.entities.active/evicted] gauges). *)

type config = {
  window : int option;
      (** sliding-window size in time-points; [None] is only meaningful
          for drain-only (batch) use, where it defaults to the whole
          extent — {!tick} requires an explicit window *)
  step : int option;  (** query step; [None] means one window per step *)
  jobs : int;  (** upper bound on worker-domain fan-out per pass *)
  compile : bool;  (** compile rule programs per bucket ({!Rtec.Compiled}) *)
  horizon : int;
      (** revision horizon in time-points: a late item is accepted and
          triggers re-evaluation iff it is newer than
          [last query - horizon]; [0] (the default) drops every late
          item. Revision support costs one checkpoint per query per
          bucket while queries are within the horizon. *)
  ttl : int option;
      (** evict an entity shard once no item has arrived for it in
          [max ttl window] time-points ([None]: never). Eviction freezes
          the shard's recognised intervals: they stay in the service
          result but are no longer extended or revised, and a returning
          entity starts from fresh state. *)
}

val config :
  ?window:int ->
  ?step:int ->
  ?jobs:int ->
  ?compile:bool ->
  ?horizon:int ->
  ?ttl:int ->
  unit ->
  config
(** [config ()] is [{window = None; step = None; jobs = 1;
    compile = true; horizon = 0; ttl = None}]. *)

type stats = {
  queries : int;  (** query evaluations, including revision replays *)
  events_processed : int;
  buckets : int;  (** live entity shards *)
  jobs : int;  (** worker domains used by the latest pass *)
  appends : int;  (** ingestion batches merged into bucket streams *)
  late_events : int;  (** items that arrived at or before the last query *)
  dropped_late : int;  (** late items beyond the revision horizon, dropped *)
  revisions : int;  (** bucket rollback-and-replay passes *)
  entities_active : int;
  entities_evicted : int;
}

type result = {
  intervals : Rtec.Engine.result Lazy.t;
      (** all recognised maximal intervals so far (evicted entities'
          frozen history included), in the canonical fluent-value order.
          Captured in O(1) from persistent state at tick time and merged
          on first force, so callers that discard a tick's intervals
          (e.g. [--emit final] serving) never pay the amalgamation; the
          forced value is unaffected by later ingests or ticks. *)
  watermark : int option;  (** greatest accepted event time *)
  stats : stats;
}

type t

val create :
  ?pool_always:bool ->
  config:config ->
  event_description:Rtec.Ast.t ->
  knowledge:Rtec.Knowledge.t ->
  unit ->
  t
(** A fresh session; never fails (window/step validation surfaces at the
    first {!tick}/{!drain}, like [Window.run]). [pool_always] brackets
    multi-bucket passes in the worker pool even at fan-out 1 — the batch
    wrapper's forced-shards telemetry semantics; leave it unset. *)

val ingest : t -> Rtec.Stream.item list -> unit
(** Feed a batch of stream items, in arrival order. Events need not be
    in time order: an item at or before the last processed query is late
    — within the revision horizon it schedules its entity shard for
    rollback-and-replay at the next {!tick}; beyond it (or before the
    frozen grid origin) it is counted and dropped. Routed items land in
    per-bucket reusable scratch arrays and each touched bucket flushes
    with one O(batch) {!Rtec.Stream.append_items} (index rebuilds are
    deferred to the next tick's first query). Raises [Invalid_argument]
    on non-ground items. *)

val tick : t -> now:int -> (result, string) Result.t
(** Advance the query grid through every query time at or before [now]
    (plus any scheduled revision replays) and return the amalgamated
    result. Query times follow [Window.query_times]'s grid: the first
    once a full window has elapsed from the first event, then every
    step. Ticking beyond the watermark evaluates empty window suffixes —
    meaningful when wall-clock time passes without events. Also applies
    TTL eviction, with [now] as the clock. *)

val drain : t -> (result, string) Result.t
(** Process every remaining query up to the watermark plus the final
    query exactly at it — the batch grid shape. Draining a seeded,
    never-ticked service is exactly [Runtime.run]'s evaluation; that
    wrapper is implemented this way. *)

val stats : t -> stats

val watermark : t -> int option

val seed : t -> Rtec.Stream.t list -> unit
(** Pre-populate one bucket per stream (the batch wrapper's entry:
    [Stream.partition] decides the shards, then one {!drain} sweeps the
    grid). Entity keys of each stream are registered for routing, but
    subterm mentions are not tracked for seeded items — mixing [seed]
    with out-of-order {!ingest} of items that retroactively connect
    seeded shards is not supported. *)

val has_ground_initially : Rtec.Ast.t -> bool
(** Whether the event description carries ground [initially(F = V)]
    facts. Their seeds belong to no entity shard, so such descriptions
    are evaluated in a single bucket (the batch runtime's sequential
    fallback does the same). *)
