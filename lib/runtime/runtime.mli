(** Multicore sharded recognition runtime.

    [Runtime.run] is the single entry point for stream recognition: it
    consolidates the windowing knobs behind one {!config} record and,
    when [jobs > 1], shards the stream along the entity-connected
    components of its events and input fluents ({!Rtec.Stream.partition})
    and recognises the shards in parallel on OCaml domains, merging the
    per-shard results deterministically. Per-vessel (per-entity)
    recognition is independent up to shared relational fluents, which the
    partition never splits — so the sharded result is bit-identical to a
    sequential run, as enforced by the differential test suite.

    Worker domains run with per-domain telemetry accumulators
    ({!Telemetry.Metrics.with_local}, {!Telemetry.Trace.with_local}):
    metrics are merged exactly into the process registry when each worker
    joins, and spans are tagged with the worker id as their track. *)

module Service = Service
(** Long-lived streaming recognition sessions: [Service.create ~config],
    [ingest] line-protocol items as they arrive, [tick ~now] to advance
    the window grid, with per-entity state across windows, bounded
    out-of-order revision and idle-entity eviction. {!run} below is a
    thin wrapper over a seeded, drained service. *)

module Pool : sig
  val map :
    jobs:int ->
    around:(worker:int -> (unit -> unit) -> unit) ->
    (worker:int -> int -> 'a -> 'b) ->
    'a array ->
    'b array
  (** [map ~jobs ~around f items] fans [items] out to at most [jobs]
      domains (the calling domain works too). Tasks are pulled from a
      shared atomic index; result order matches item order. [around]
      brackets each whole worker domain, not each task. *)
end

val map_domains : jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** {!Pool.map} with the repo's standard domain-safe telemetry bracket:
    each worker runs under {!Telemetry.Metrics.with_local} and
    {!Telemetry.Trace.with_local}, so counters recorded by [f] merge
    exactly into the process registry at join and spans land on the
    worker's own track. [f] receives the item index and the item; the
    result array preserves item order regardless of scheduling. *)

type config = {
  window : int option;
      (** sliding-window size in time-points; [None] (the default) runs
          a single query over the whole stream extent *)
  step : int option;
      (** query step; [None] (the default) means one window per step,
          i.e. tumbling windows *)
  jobs : int;
      (** upper bound on worker-domain fan-out; the default [1]
          evaluates sequentially in the calling domain, exactly like
          [Window.run]. The effective fan-out is capped at
          [Domain.recommended_domain_count ()]: domains beyond the
          host's cores never help in OCaml 5 (every minor collection
          synchronises all domains), so oversubscription is treated as
          a request for "as parallel as this host goes". *)
  shards : int option;
      (** upper bound on the number of stream shards; [None] (the
          default) uses one shard per {e effective} worker, so each
          worker gets one balanced shard. An explicit count gives finer
          load balancing (more shards than jobs) at the cost of more
          per-query engine work — and forces the partition even where
          the clamp serialised the workers. *)
  compile : bool;
      (** compile transition rules to closure chains over interned terms
          ([Rtec.Compiled]); each shard compiles its own program. [false]
          forces the interpreter — the differential oracle; results are
          bit-identical either way. Default [true]. *)
}

val default : config
(** [{ window = None; step = None; jobs = 1; shards = None; compile = true }] *)

val config :
  ?window:int -> ?step:int -> ?jobs:int -> ?shards:int -> ?compile:bool -> unit -> config
(** [config ()] is {!default}; each argument overrides one field. *)

type stats = {
  queries : int;  (** query times processed, summed over shards *)
  events_processed : int;  (** window-events evaluated, summed over shards *)
  shards : int;  (** shards actually run *)
  jobs : int;  (** worker domains actually used *)
}

val run :
  config:config ->
  event_description:Rtec.Ast.t ->
  knowledge:Rtec.Knowledge.t ->
  stream:Rtec.Stream.t ->
  unit ->
  (Rtec.Engine.result * stats, string) Result.t
(** Recognises the event description over the stream.

    With an effective fan-out of 1 (requested [jobs = 1], or a larger
    request clamped by a single-core host) and [shards = None] this is
    exactly [Window.run ?window ?step]: same evaluation, same result
    order, same single-domain execution. Otherwise the stream is
    partitioned,
    every shard is evaluated over the {e same} query-time grid (the full
    stream's extent) with bounded fan-out, and the per-shard interval
    maps are unioned in the canonical fluent-value order — so the output
    is bit-identical to the sequential run. Streams that cannot be
    attributed to entities (an event with no entity key, or an event
    description with ground [initially] facts, whose seeds belong to no
    shard) fall back to a single shard; [stats.shards] reports what
    actually ran. Fails like [Window.run] on invalid window/step, on
    [jobs < 1], and on any shard's engine error (the lowest-numbered
    shard's error wins, deterministically). *)
