(* A hand-rolled Domain-based worker pool (no dependencies, matching the
   repo's style): [map] fans an array of tasks out to at most [jobs]
   domains. The calling domain works too, so [jobs = 4] uses exactly four
   compute contexts (three spawned). Tasks are pulled from a shared
   atomic index — cheap dynamic load balancing, no per-task spawn cost —
   and results land in a pre-sized array, one slot per task, so no two
   domains ever write the same location. *)

let map ~jobs ~around f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker w () =
      (* [around] brackets the whole domain (telemetry fork/join), not
         each task: accumulators are per-domain, not per-shard. *)
      around ~worker:w (fun () ->
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              results.(i) <- Some (f ~worker:w i items.(i));
              loop ()
            end
          in
          loop ())
    in
    if jobs = 1 then worker 0 ()
    else begin
      let domains = Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
      (* Run the main domain's share before joining; if it raises, the
         spawned domains must still be joined (they drain the queue and
         stop) before the exception escapes. *)
      let main_outcome =
        match worker 0 () with () -> Ok () | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      let worker_failure =
        Array.fold_left
          (fun acc d ->
            match Domain.join d with
            | () -> acc
            | exception e -> ( match acc with Some _ -> acc | None -> Some e))
          None domains
      in
      (match main_outcome with
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt
      | Ok () -> ());
      match worker_failure with Some e -> raise e | None -> ()
    end;
    Array.map (function Some r -> r | None -> assert false) results
  end
