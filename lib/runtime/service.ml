(* Long-lived streaming recognition sessions.

   A service owns per-entity-shard ("bucket") evaluation state that
   persists across windows: each bucket wraps a [Rtec.Window.Session]
   over that shard's slice of the input, so the live path evaluates
   queries with exactly the code the one-shot [Runtime.run] uses — the
   batch/streaming differential guarantees hold by construction.

   Out-of-order input is repaired by bounded revision: after each
   processed query the bucket checkpoints its (persistent, O(1) to
   snapshot) state; a late item whose lateness is within the configured
   horizon rolls the owning bucket back to the newest checkpoint before
   the item's time and replays the overlapping windows over the merged
   stream, which converges to the in-order batch result. Later items
   are counted and dropped.

   Bucket assignment is dynamic and mirrors [Stream.partition]'s
   entity-connected components incrementally: an argument becomes an
   entity key the first time it leads an event or input fluent, items
   are routed by the keys they mention, and a cross-bucket item (or a
   late key binding, tracked through subterm mentions) coalesces the
   buckets it connects — checkpoint-by-checkpoint, since every bucket
   processes the same global query grid. An item with no entity key
   makes recognition entity-inseparable, so the service collapses to a
   single bucket, exactly like the batch partition's fallback. *)

module Session = Rtec.Window.Session

module FvpMap = Map.Make (struct
  type t = Rtec.Engine.fvp

  let compare = Rtec.Engine.compare_fvp
end)

module TermTbl = Hashtbl.Make (struct
  type t = Rtec.Term.t

  let equal = Rtec.Term.equal
  let hash = Rtec.Term.hash
end)

let m_late = Telemetry.Metrics.counter "stream.late_events"
let m_dropped = Telemetry.Metrics.counter "stream.dropped_late"
let m_revisions = Telemetry.Metrics.counter "service.revisions"
let g_active = Telemetry.Metrics.gauge "service.entities.active"
let g_evicted = Telemetry.Metrics.gauge "service.entities.evicted"

(* Stage-latency attribution: [route] brackets ingest (classification +
   bucket routing + stream appends), [evaluate] brackets a whole query
   pass (revision planning, window evaluation, finalisation). The
   decode/emit stages live with the I/O code that owns them. *)
let h_stage_route = Telemetry.Metrics.histogram "service.stage.route_us"
let h_stage_evaluate = Telemetry.Metrics.histogram "service.stage.evaluate_us"

type config = {
  window : int option;
  step : int option;
  jobs : int;
  compile : bool;
  horizon : int;
  ttl : int option;
}

let config ?window ?step ?(jobs = 1) ?(compile = true) ?(horizon = 0) ?ttl () =
  { window; step; jobs; compile; horizon; ttl }

type stats = {
  queries : int;
  events_processed : int;
  buckets : int;
  jobs : int;
  appends : int;
  late_events : int;
  dropped_late : int;
  revisions : int;
  entities_active : int;
  entities_evicted : int;
}

type result = {
  intervals : Rtec.Engine.result Lazy.t;
  watermark : int option;
  stats : stats;
}

type bucket = {
  id : int;
  mutable stream : Rtec.Stream.t;
  mutable session : Session.t option;
  mutable initial : Session.checkpoint option;
      (* pristine state, the rollback target for revisions older than
         every retained checkpoint of a young bucket *)
  mutable pending : (int * Session.checkpoint) list;  (* newest first *)
  mutable floor : (int * Session.checkpoint) option;
      (* the newest finalised checkpoint: old enough that no acceptable
         late item can require earlier state *)
  mutable entities : Rtec.Term.t list;
  mutable last_seen : int;
  mutable revise_from : int option;
  mutable alive : bool;
  mutable merged_into : bucket option;
  (* Reusable ingest scratch: routed items land here (amortised array
     pushes, no per-item allocation) and one [Stream.append_items] per
     touched bucket flushes them at the end of the ingest call. *)
  mutable scr_events : Rtec.Stream.event array;
  mutable scr_n : int;
  mutable scr_fluents : ((Rtec.Term.t * Rtec.Term.t) * Rtec.Interval.t) list;
      (* reversed arrival order; input fluents are rare *)
  mutable scr_touched : bool;
}

type t = {
  cfg : config;
  event_description : Rtec.Ast.t;
  knowledge : Rtec.Knowledge.t;
  pool_always : bool;
      (* bracket multi-bucket passes in the worker pool even at fan-out
         1 — the batch wrapper's forced-shards telemetry semantics *)
  mutable buckets : bucket list;  (* most recent first *)
  mutable next_id : int;
  by_entity : bucket TermTbl.t;
  keys : unit TermTbl.t;
  mentions : (int, bucket) Hashtbl.t TermTbl.t;
  mutable collapsed : bool;
  mutable single : bucket option;  (* the one bucket of collapsed mode *)
  mutable ev_lo : int option;
  mutable ev_hi : int option;  (* event extent of accepted input *)
  mutable lo : int option;  (* grid origin, frozen at the first query *)
  mutable resolved : (int * int) option;  (* effective (window, step) *)
  mutable prev_q : int option;
  mutable processed : int list;
      (* query times processed so far, newest first, trimmed to the
         revisable region — what a rolled-back bucket replays *)
  mutable retired : Rtec.Interval.t FvpMap.t;
  mutable retired_queries : int;
  mutable retired_events : int;
  mutable n_appends : int;
  mutable n_late : int;
  mutable n_dropped : int;
  mutable n_revisions : int;
  mutable n_active : int;
  mutable n_evicted : int;
  mutable last_jobs : int;
}

(* Ground [initially(F=V)] facts seed every window that reaches the
   stream start, but they belong to no entity component: each shard
   would re-derive them against a different event subset. Such event
   descriptions are evaluated single-bucket. *)
let has_ground_initially event_description =
  List.exists
    (fun (r : Rtec.Ast.rule) ->
      r.body = []
      &&
      match r.head with
      | Rtec.Term.Compound ("initially", [ fv ]) -> Rtec.Term.is_ground fv
      | _ -> false)
    (Rtec.Ast.all_rules event_description)

let create ?(pool_always = false) ~config ~event_description ~knowledge () =
  {
    cfg = config;
    event_description;
    knowledge;
    pool_always;
    buckets = [];
    next_id = 0;
    by_entity = TermTbl.create 64;
    keys = TermTbl.create 64;
    mentions = TermTbl.create 256;
    collapsed = has_ground_initially event_description;
    single = None;
    ev_lo = None;
    ev_hi = None;
    lo = None;
    resolved = None;
    prev_q = None;
    processed = [];
    retired = FvpMap.empty;
    retired_queries = 0;
    retired_events = 0;
    n_appends = 0;
    n_late = 0;
    n_dropped = 0;
    n_revisions = 0;
    n_active = 0;
    n_evicted = 0;
    last_jobs = 1;
  }

let watermark t = t.ev_hi

(* --- buckets --- *)

let rec resolve_bucket b =
  match b.merged_into with
  | None -> b
  | Some b' ->
    let r = resolve_bucket b' in
    if r != b' then b.merged_into <- Some r;
    r

let new_bucket svc =
  let b =
    {
      id = svc.next_id;
      stream = Rtec.Stream.make [];
      session = None;
      initial = None;
      pending = [];
      floor = None;
      entities = [];
      last_seen = min_int;
      revise_from = None;
      alive = true;
      merged_into = None;
      scr_events = [||];
      scr_n = 0;
      scr_fluents = [];
      scr_touched = false;
    }
  in
  svc.next_id <- svc.next_id + 1;
  svc.buckets <- b :: svc.buckets;
  b

(* Both lists are newest-first over the same global grid, so equal query
   times line up; a query only one side holds was processed while the
   other bucket did not yet exist — and its state then was pristine, so
   the union at that time is the present side's checkpoint unchanged. *)
let merge_pending pa pb =
  let rec go pa pb acc =
    match (pa, pb) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (qa, ca) :: ta, (qb, cb) :: tb ->
      if qa = qb then go ta tb ((qa, Session.merge_checkpoint ca cb) :: acc)
      else if qa > qb then go ta pb ((qa, ca) :: acc)
      else go pa tb ((qb, cb) :: acc)
  in
  go pa pb []

let merge_buckets svc a b =
  let a = resolve_bucket a and b = resolve_bucket b in
  if a == b then a
  else begin
    let a, b = if a.id <= b.id then (a, b) else (b, a) in
    (match (a.session, b.session) with
    | Some sa, Some sb -> Session.absorb sa sb
    | None, Some _ ->
      a.session <- b.session;
      a.initial <- b.initial
    | _, None -> ());
    a.stream <- Rtec.Stream.append a.stream b.stream;
    a.pending <- merge_pending a.pending b.pending;
    (a.floor <-
       (match (a.floor, b.floor) with
       | None, x | x, None -> x
       | Some (qa, ca), Some (qb, cb) ->
         if qa = qb then Some (qa, Session.merge_checkpoint ca cb)
         else if qa < qb then a.floor
         else b.floor));
    a.entities <- b.entities @ a.entities;
    List.iter (fun e -> TermTbl.replace svc.by_entity e a) b.entities;
    a.last_seen <- max a.last_seen b.last_seen;
    (a.revise_from <-
       (match (a.revise_from, b.revise_from) with
       | None, x | x, None -> x
       | Some x, Some y -> Some (min x y)));
    b.alive <- false;
    b.merged_into <- Some a;
    a
  end

let alive_buckets svc =
  List.sort
    (fun a b -> Int.compare a.id b.id)
    (List.filter (fun b -> b.alive) svc.buckets)

let collapse svc =
  svc.collapsed <- true;
  match svc.single with
  | Some b when b.alive -> b
  | _ ->
    let b =
      match alive_buckets svc with
      | [] -> new_bucket svc
      | b :: rest -> List.fold_left (merge_buckets svc) b rest
    in
    svc.single <- Some b;
    b

(* --- dynamic entity routing (mirrors Stream.partition's conventions) --- *)

let first_argument term =
  match term with
  | Rtec.Term.Compound (_, arg :: _) -> (
    match arg with Rtec.Term.Int _ | Rtec.Term.Real _ -> None | _ -> Some arg)
  | _ -> None

let iter_subterms f term =
  let rec walk t =
    (match t with Rtec.Term.Int _ | Rtec.Term.Real _ -> () | _ -> f t);
    match t with Rtec.Term.Compound (_, args) -> List.iter walk args | _ -> ()
  in
  walk term

let note_entity svc b e =
  match TermTbl.find_opt svc.by_entity e with
  | Some owner when (resolve_bucket owner).alive -> ()  (* owner was merged into b *)
  | _ ->
    TermTbl.replace svc.by_entity e b;
    b.entities <- e :: b.entities;
    svc.n_active <- svc.n_active + 1

let route svc item =
  if svc.collapsed then collapse svc
  else begin
    let term =
      match item with
      | Rtec.Stream.Event e -> e.term
      | Rtec.Stream.Fluent ((f, v), _) -> Rtec.Term.app "=" [ f; v ]
    in
    let lead =
      match item with
      | Rtec.Stream.Event e -> first_argument e.term
      | Rtec.Stream.Fluent ((f, _), _) -> first_argument f
    in
    (* A first appearance as a leading argument turns a term into an
       entity key; buckets whose items merely mentioned it become
       connected to it retroactively. *)
    let mention_targets =
      match lead with
      | Some k when not (TermTbl.mem svc.keys k) ->
        TermTbl.replace svc.keys k ();
        (match TermTbl.find_opt svc.mentions k with
        | None -> []
        | Some tbl ->
          Hashtbl.fold
            (fun _ b acc ->
              let b = resolve_bucket b in
              if b.alive then b :: acc else acc)
            tbl [])
      | _ -> []
    in
    let item_entities = ref [] and entity_targets = ref [] in
    iter_subterms
      (fun st ->
        if TermTbl.mem svc.keys st then begin
          item_entities := st :: !item_entities;
          match TermTbl.find_opt svc.by_entity st with
          | Some b ->
            let b = resolve_bucket b in
            if b.alive then entity_targets := b :: !entity_targets
          | None -> ()
        end)
      term;
    if !item_entities = [] then collapse svc
    else begin
      let b =
        match mention_targets @ !entity_targets with
        | [] -> new_bucket svc
        | b :: rest -> List.fold_left (merge_buckets svc) b rest
      in
      List.iter (note_entity svc b) !item_entities;
      iter_subterms
        (fun st ->
          if not (TermTbl.mem svc.keys st) then begin
            let tbl =
              match TermTbl.find_opt svc.mentions st with
              | Some tbl -> tbl
              | None ->
                let tbl = Hashtbl.create 4 in
                TermTbl.replace svc.mentions st tbl;
                tbl
            in
            Hashtbl.replace tbl b.id b
          end)
        term;
      b
    end
  end

(* --- ingestion --- *)

let push_scratch touched b item =
  if not b.scr_touched then begin
    b.scr_touched <- true;
    touched := b :: !touched
  end;
  match item with
  | Rtec.Stream.Event e ->
    if b.scr_n = Array.length b.scr_events then begin
      let grown = Array.make (max 16 (2 * b.scr_n)) e in
      Array.blit b.scr_events 0 grown 0 b.scr_n;
      b.scr_events <- grown
    end;
    b.scr_events.(b.scr_n) <- e;
    b.scr_n <- b.scr_n + 1
  | Rtec.Stream.Fluent (fv, spans) -> b.scr_fluents <- (fv, spans) :: b.scr_fluents

let ingest_batch svc items =
  let touched = ref [] in
  List.iter
    (fun item ->
      let t = Rtec.Stream.item_time item in
      let late, accept =
        match svc.prev_q with
        | Some pq when t <= pq ->
          let beyond =
            pq - t >= svc.cfg.horizon
            || (match svc.lo with Some lo -> t < lo | None -> false)
          in
          (true, not beyond)
        | _ -> (false, true)
      in
      if late then begin
        svc.n_late <- svc.n_late + 1;
        Telemetry.Metrics.incr m_late
      end;
      if not accept then begin
        svc.n_dropped <- svc.n_dropped + 1;
        Telemetry.Metrics.incr m_dropped
      end
      else begin
        (match item with
        | Rtec.Stream.Event e ->
          svc.ev_lo <- Some (match svc.ev_lo with None -> e.time | Some x -> min x e.time);
          svc.ev_hi <- Some (match svc.ev_hi with None -> e.time | Some x -> max x e.time)
        | Rtec.Stream.Fluent _ -> ());
        let b = route svc item in
        push_scratch touched b item;
        if t <> max_int then b.last_seen <- max b.last_seen t;
        if late then
          b.revise_from <-
            Some (match b.revise_from with None -> t | Some x -> min x t)
      end)
    items;
  (* One stream append per touched bucket, in first-touch order; buckets
     that merged while the batch was being routed flush into the
     surviving bucket, their scratches concatenated in first-touch
     order. *)
  let grouped = Hashtbl.create 8 and order = ref [] in
  List.iter
    (fun b ->
      let r = resolve_bucket b in
      match Hashtbl.find_opt grouped r.id with
      | Some parts -> parts := b :: !parts
      | None ->
        let parts = ref [ b ] in
        Hashtbl.replace grouped r.id parts;
        order := (r, parts) :: !order)
    (List.rev !touched);
  List.iter
    (fun (r, parts) ->
      let parts = List.rev !parts in
      let tail =
        match parts with
        | [ b ] -> Array.sub b.scr_events 0 b.scr_n
        | _ -> (
          match List.find_opt (fun b -> b.scr_n > 0) parts with
          | None -> [||]
          | Some b0 ->
            let total = List.fold_left (fun acc b -> acc + b.scr_n) 0 parts in
            let out = Array.make total b0.scr_events.(0) in
            let off = ref 0 in
            List.iter
              (fun b ->
                Array.blit b.scr_events 0 out !off b.scr_n;
                off := !off + b.scr_n)
              parts;
            out)
      in
      let input_fluents =
        List.concat_map (fun b -> List.rev b.scr_fluents) parts
      in
      List.iter
        (fun b ->
          b.scr_n <- 0;
          b.scr_fluents <- [];
          b.scr_touched <- false)
        parts;
      r.stream <- Rtec.Stream.append_items r.stream ~input_fluents tail;
      svc.n_appends <- svc.n_appends + 1)
    (List.rev !order)

let ingest svc items =
  let late0 = svc.n_late and dropped0 = svc.n_dropped in
  Telemetry.Metrics.time_us h_stage_route (fun () -> ingest_batch svc items);
  if Telemetry.Flight.is_enabled () then
    Telemetry.Flight.record Ingest ~a:(List.length items)
      ~b:(svc.n_late - late0) ~c:(svc.n_dropped - dropped0) ()

(* --- query scheduling and evaluation --- *)

let resolve_ws svc hi_opt =
  match svc.resolved with
  | Some ws -> Result.Ok ws
  | None -> (
    let check (w, s) =
      if w <= 0 || s <= 0 then Result.Error "window and step must be positive"
      else begin
        svc.resolved <- Some (w, s);
        Ok (w, s)
      end
    in
    match (svc.cfg.window, hi_opt) with
    | Some w, _ -> check (w, Option.value ~default:w svc.cfg.step)
    | None, Some (lo, hi) ->
      (* The batch default: one window spanning the whole extent. *)
      let w = hi - lo + 1 in
      check (w, Option.value ~default:w svc.cfg.step)
    | None, None -> Error "tick requires an explicit window")

let ensure_session svc ~w ~s b =
  match b.session with
  | Some session ->
    if Session.stream session != b.stream then Session.set_stream session b.stream;
    Result.Ok session
  | None -> (
    match
      Session.create ~compile:svc.cfg.compile ~window:w ~step:s
        ~event_description:svc.event_description ~knowledge:svc.knowledge ~stream:b.stream
        ()
    with
    | Error e -> Result.Error e
    | Ok session ->
      b.session <- Some session;
      b.initial <- Some (Session.save session);
      Ok session)

(* Roll an out-of-date bucket back to the newest checkpoint strictly
   before the earliest late item [t] and return the query times to
   replay: every globally processed query at or after [t] (the bucket's
   own checkpoints cover exactly the processed queries before [t], and a
   bucket created after a query was processed was pristine then, so
   replaying it on the restored state derives what the batch shard
   would). The acceptance bound guarantees a rollback target is
   retained: an accepted item is newer than [prev_q - horizon], and the
   floor is at least that old. *)
let plan_revision svc b =
  match b.revise_from with
  | None -> []
  | Some t ->
    b.revise_from <- None;
    svc.n_revisions <- svc.n_revisions + 1;
    Telemetry.Metrics.incr m_revisions;
    let keep = List.filter (fun (q, _) -> q < t) b.pending in
    (match keep with
    | (_, cp) :: _ ->
      b.pending <- keep;
      Option.iter (fun s -> Session.restore s cp) b.session
    | [] -> (
      b.pending <- [];
      match b.floor with
      | Some (_, cp) -> Option.iter (fun s -> Session.restore s cp) b.session
      | None -> (
        (* never checkpointed below [t]: the bucket is young — its state
           before its first processed query was pristine *)
        match (b.session, b.initial) with
        | Some s, Some cp -> Session.restore s cp
        | _ -> ())));
    let replays = List.filter (fun q -> q >= t) (List.rev svc.processed) in
    Telemetry.Flight.record Revision ~a:b.id ~b:t ~c:(List.length replays) ();
    replays

let around ~worker thunk =
  Telemetry.Metrics.with_local (fun () ->
      Telemetry.Trace.with_local ~tid:worker (fun () -> Rtec.Derivation.with_local thunk))

let run_bucket svc ~w ~s ~lo (b, worklist) =
  match ensure_session svc ~w ~s b with
  | Result.Error e -> Result.Error e
  | Ok session ->
    Telemetry.Trace.with_span "window.run"
      ~args:
        [
          ("window", Telemetry.Trace.Int w);
          ("step", Telemetry.Trace.Int s);
          ("delta_ok", Telemetry.Trace.Bool (Session.delta_ok session));
        ]
      (fun () ->
        let rec loop = function
          | [] -> Result.Ok ()
          | q :: rest -> (
            match Session.process session ~lo q with
            | Error e -> Result.Error e
            | Ok () ->
              if svc.cfg.horizon > 0 then
                b.pending <- (q, Session.save session) :: b.pending;
              loop rest)
        in
        loop worklist)

let retire svc b =
  (match b.session with
  | None -> ()
  | Some s ->
    List.iter
      (fun (fv, spans) ->
        svc.retired <-
          FvpMap.update fv
            (function
              | None -> Some spans
              | Some prev -> Some (Rtec.Interval.union prev spans))
            svc.retired)
      (Session.result s);
    let st : Rtec.Window.stats = Session.stats s in
    svc.retired_queries <- svc.retired_queries + st.queries;
    svc.retired_events <- svc.retired_events + st.events_processed);
  b.alive <- false;
  let n = List.length b.entities in
  svc.n_active <- svc.n_active - n;
  svc.n_evicted <- svc.n_evicted + n;
  Telemetry.Flight.record Evict ~a:b.id ~b:n ~c:b.last_seen ()

let finalise_and_evict svc ~w ~now =
  (match svc.prev_q with
  | Some pq when svc.cfg.horizon > 0 ->
    let boundary = pq - svc.cfg.horizon in
    (* No acceptable late item can be older than [boundary], so queries
       at or before it are never replayed. *)
    svc.processed <- List.filter (fun q -> q > boundary) svc.processed;
    List.iter
      (fun b ->
        if b.alive then begin
          let rec go kept = function
            | ((q, _) as e) :: rest when q > boundary -> go (e :: kept) rest
            | (q, cp) :: _ ->
              b.floor <- Some (q, cp);
              b.pending <- List.rev kept
            | [] -> b.pending <- List.rev kept
          in
          go [] b.pending;
          (* Trim finalised history once at least a window's worth is
             droppable, so idle buckets keep their compiled program. *)
          match b.floor with
          | Some (fq, _) when Rtec.Stream.size b.stream > 0 ->
            let keep_from = fq - w + 2 in
            if fst (Rtec.Stream.extent b.stream) < keep_from - w then
              b.stream <- Rtec.Stream.drop_before b.stream keep_from
          | _ -> ()
        end)
      svc.buckets
  | _ -> ());
  (match (svc.cfg.ttl, now) with
  | Some ttl, Some now when not svc.collapsed ->
    let ttl_eff = max ttl w in
    List.iter
      (fun b -> if b.alive && b.session <> None && now - b.last_seen > ttl_eff then retire svc b)
      svc.buckets
  | _ -> ());
  Telemetry.Metrics.set g_active (float_of_int svc.n_active);
  Telemetry.Metrics.set g_evicted (float_of_int svc.n_evicted)

(* The per-tick result is captured in O(1) — the retired map and each
   live session's accumulated map are persistent values — and merged
   only if the caller forces it, so ticks whose intervals are discarded
   (--emit final serving, watermark-driven ticking) never pay the
   amalgamation over an ever-growing history. *)
let capture_intervals svc =
  let seqs =
    List.filter_map
      (fun b ->
        match b.session with
        | Some s when b.alive -> Some (Session.result_seq s)
        | _ -> None)
      svc.buckets
  in
  let retired = svc.retired in
  lazy
    (let merged =
       List.fold_left
         (fun acc seq ->
           Seq.fold_left
             (fun acc (fv, spans) ->
               FvpMap.update fv
                 (function
                   | None -> Some spans
                   | Some prev -> Some (Rtec.Interval.union prev spans))
                 acc)
             acc seq)
         retired seqs
     in
     FvpMap.fold (fun fv spans acc -> (fv, spans) :: acc) merged [])

let stats svc =
  let queries, events =
    List.fold_left
      (fun (q, e) b ->
        match b.session with
        | Some s when b.alive ->
          let st : Rtec.Window.stats = Session.stats s in
          (q + st.queries, e + st.events_processed)
        | _ -> (q, e))
      (svc.retired_queries, svc.retired_events)
      svc.buckets
  in
  {
    queries;
    events_processed = events;
    buckets = List.length (alive_buckets svc);
    jobs = svc.last_jobs;
    appends = svc.n_appends;
    late_events = svc.n_late;
    dropped_late = svc.n_dropped;
    revisions = svc.n_revisions;
    entities_active = svc.n_active;
    entities_evicted = svc.n_evicted;
  }

let process_pass_inner svc ~w ~s ~now qs =
  (if qs <> [] && svc.lo = None then svc.lo <- Some (Option.value ~default:0 svc.ev_lo));
  let lo = Option.value ~default:0 svc.lo in
  let work =
    List.filter_map
      (fun b ->
        let worklist = plan_revision svc b @ qs in
        if worklist = [] then None else Some (b, worklist))
      (alive_buckets svc)
  in
  let work = Array.of_list work in
  let n = Array.length work in
  let outcome =
    if n = 0 then Result.Ok ()
    else begin
      let effective_jobs = min svc.cfg.jobs (Domain.recommended_domain_count ()) in
      let use_pool = n > 1 && (svc.pool_always || effective_jobs > 1) in
      let jobs = max 1 (min effective_jobs n) in
      svc.last_jobs <- (if use_pool then jobs else 1);
      let outcomes =
        if use_pool then
          Pool.map ~jobs ~around
            (fun ~worker:_ i ((b, _) as wb) ->
              Telemetry.Trace.with_span "runtime.shard"
                ~args:
                  [
                    ("shard", Telemetry.Trace.Int i);
                    ("events", Telemetry.Trace.Int (Rtec.Stream.size b.stream));
                  ]
                (fun () -> run_bucket svc ~w ~s ~lo wb))
            work
        else Array.map (run_bucket svc ~w ~s ~lo) work
      in
      (* The lowest-numbered bucket's error wins, deterministically. *)
      let rec first_error i =
        if i >= Array.length outcomes then Result.Ok ()
        else
          match outcomes.(i) with Result.Error e -> Result.Error e | Ok () -> first_error (i + 1)
      in
      first_error 0
    end
  in
  match outcome with
  | Result.Error e -> Result.Error e
  | Ok () ->
    (match List.rev qs with
    | last :: _ ->
      svc.prev_q <- Some last;
      if svc.cfg.horizon > 0 then svc.processed <- List.rev_append qs svc.processed
    | [] -> ());
    finalise_and_evict svc ~w ~now;
    if Rtec.Derivation.is_enabled () then Rtec.Derivation.publish_metrics ();
    Ok { intervals = capture_intervals svc; watermark = svc.ev_hi; stats = stats svc }

let process_pass svc ~w ~s ~now qs =
  let r =
    Telemetry.Metrics.time_us h_stage_evaluate (fun () ->
        process_pass_inner svc ~w ~s ~now qs)
  in
  (match r with
  | Ok res when Telemetry.Flight.is_enabled () ->
    Telemetry.Flight.record Tick
      ~a:(Option.value ~default:(-1) now)
      ~b:(List.length qs) ~c:res.stats.buckets ()
  | _ -> ());
  r

(* The unprocessed grid queries up to and including [until]. The grid is
   anchored at the (frozen) origin and never revisits a processed query;
   a drain's off-grid final query is simply skipped over. *)
let grid_until svc ~w ~s until =
  let lo =
    Option.value ~default:0 (match svc.lo with Some _ as l -> l | None -> svc.ev_lo)
  in
  let first = lo + w - 1 in
  let start =
    match svc.prev_q with
    | Some pq when pq >= first -> first + ((((pq - first) / s) + 1) * s)
    | _ -> first
  in
  let rec gen g acc = if g > until then List.rev acc else gen (g + s) (g :: acc) in
  gen start []

let tick svc ~now =
  match resolve_ws svc None with
  | Result.Error e -> Result.Error e
  | Ok (w, s) -> process_pass svc ~w ~s ~now:(Some now) (grid_until svc ~w ~s now)

let drain svc =
  let lo = Option.value ~default:0 svc.ev_lo in
  let hi = Option.value ~default:0 svc.ev_hi in
  match resolve_ws svc (Some (lo, hi)) with
  | Result.Error e -> Result.Error e
  | Ok (w, s) ->
    (* The batch grid: every step until the end of the stream, with a
       final query exactly at the end — [Window.query_times]'s shape. *)
    let qs = grid_until svc ~w ~s (hi - 1) in
    let qs =
      match svc.prev_q with Some pq when pq >= hi -> qs | _ -> qs @ [ hi ]
    in
    process_pass svc ~w ~s ~now:(Some hi) qs

(* --- batch seeding (the Runtime.run wrapper) --- *)

let seed svc streams =
  List.iter
    (fun stream ->
      let b = new_bucket svc in
      b.stream <- stream;
      if Rtec.Stream.size stream > 0 then begin
        let s_lo, s_hi = Rtec.Stream.extent stream in
        svc.ev_lo <- Some (match svc.ev_lo with None -> s_lo | Some x -> min x s_lo);
        svc.ev_hi <- Some (match svc.ev_hi with None -> s_hi | Some x -> max x s_hi);
        b.last_seen <- s_hi
      end;
      List.iter
        (fun e ->
          TermTbl.replace svc.keys e ();
          note_entity svc b e)
        (Rtec.Stream.entities stream))
    streams
