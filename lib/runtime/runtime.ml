module Pool = Pool

(* Domain fan-out with the telemetry bracketing every parallel section
   of this repo uses: worker metrics accumulate locally and merge into
   the process registry at join, spans land on the worker's track. The
   evaluation pipeline's similarity sweep runs on this. *)
let map_domains ~jobs f items =
  Pool.map ~jobs
    ~around:(fun ~worker thunk ->
      Telemetry.Metrics.with_local (fun () ->
          Telemetry.Trace.with_local ~tid:worker (fun () ->
              Rtec.Derivation.with_local thunk)))
    (fun ~worker:_ i item -> f i item)
    items

type config = {
  window : int option;
  step : int option;
  jobs : int;
  shards : int option;
  compile : bool;
}

let default = { window = None; step = None; jobs = 1; shards = None; compile = true }

let config ?window ?step ?(jobs = 1) ?shards ?(compile = true) () =
  { window; step; jobs; shards; compile }

type stats = { queries : int; events_processed : int; shards : int; jobs : int }

module FvpMap = Map.Make (struct
  type t = Rtec.Engine.fvp

  let compare = Rtec.Engine.compare_fvp
end)

let m_runs = Telemetry.Metrics.counter "runtime.runs"
let m_sharded_runs = Telemetry.Metrics.counter "runtime.sharded_runs"
let h_shards = Telemetry.Metrics.histogram "runtime.shards"
let h_shard_events = Telemetry.Metrics.histogram "runtime.shard_events"
let g_jobs = Telemetry.Metrics.gauge "runtime.jobs"

(* Ground [initially(F=V)] facts seed every window that reaches the
   stream start, but they belong to no entity component: each shard
   would re-derive them against a different event subset. Such event
   descriptions are evaluated unsharded. *)
let has_ground_initially event_description =
  List.exists
    (fun (r : Rtec.Ast.rule) ->
      r.body = []
      &&
      match r.head with
      | Rtec.Term.Compound ("initially", [ fv ]) -> Rtec.Term.is_ground fv
      | _ -> false)
    (Rtec.Ast.all_rules event_description)

let sequential ~config:(config : config) ~event_description ~knowledge ~stream () =
  Result.map
    (fun (result, (s : Rtec.Window.stats)) ->
      ( result,
        {
          queries = s.queries;
          events_processed = s.events_processed;
          shards = 1;
          jobs = 1;
        } ))
    (Rtec.Window.run ?window:config.window ?step:config.step ~compile:config.compile
       ~event_description ~knowledge ~stream ())

(* Deterministic merge: the per-shard accumulators carry disjoint
   fluent-value pairs (an FVP's entities all live in one shard), and
   folding the union map mirrors [Window.run]'s own result order, so the
   merged list is bit-identical to a sequential run's. Duplicate keys
   (possible only for entity-less derived FVPs) are interval-unioned. *)
let merge_results per_shard =
  let merged =
    Array.fold_left
      (fun acc (result, _) ->
        List.fold_left
          (fun acc (fv, spans) ->
            FvpMap.update fv
              (function
                | None -> Some spans
                | Some prev -> Some (Rtec.Interval.union prev spans))
              acc)
          acc result)
      FvpMap.empty per_shard
  in
  FvpMap.fold (fun fv spans acc -> (fv, spans) :: acc) merged []

let run ~config:(config : config) ~event_description ~knowledge ~stream () =
  if config.jobs < 1 then Result.Error "jobs must be positive"
  else begin
    Telemetry.Metrics.incr m_runs;
    let finish outcome =
      (* Recorder counters/gauges surface through the metrics registry
         once per run; a no-op unless both recorder and metrics are on. *)
      if Rtec.Derivation.is_enabled () then Rtec.Derivation.publish_metrics ();
      outcome
    in
    finish
    @@
    (* [jobs] is an upper bound on fan-out, not a demand: domains beyond
       the host's cores never help in OCaml 5 (every minor collection is
       a stop-the-world sync across domains, so oversubscription turns
       each GC into a context-switch storm — >2x slowdown measured on a
       single-core host). Sharding follows the effective fan-out; an
       explicit [shards] still forces a finer partition, so the
       partition/merge machinery stays exercised on any host. *)
    let effective_jobs = min config.jobs (Domain.recommended_domain_count ()) in
    let sharding_wanted = effective_jobs > 1 || Option.is_some config.shards in
    if (not sharding_wanted) || has_ground_initially event_description then
      sequential ~config ~event_description ~knowledge ~stream ()
    else begin
      let shard_target = Option.value ~default:effective_jobs config.shards in
      let shard_streams = Array.of_list (Rtec.Stream.partition ~shards:shard_target stream) in
      let n_shards = Array.length shard_streams in
      if n_shards <= 1 then sequential ~config ~event_description ~knowledge ~stream ()
      else begin
        let jobs = min effective_jobs n_shards in
        Telemetry.Metrics.incr m_sharded_runs;
        Telemetry.Metrics.observe h_shards (float_of_int n_shards);
        Telemetry.Metrics.set g_jobs (float_of_int jobs);
        Array.iter
          (fun shard ->
            Telemetry.Metrics.observe h_shard_events (float_of_int (Rtec.Stream.size shard)))
          shard_streams;
        (* Every shard evaluates the same query grid as the unsharded
           stream would, so carried intervals truncate at identical
           horizons in every shard. *)
        let extent = Rtec.Stream.extent stream in
        let sp =
          Telemetry.Trace.start "runtime.run"
            ~args:
              [
                ("jobs", Telemetry.Trace.Int jobs);
                ("shards", Telemetry.Trace.Int n_shards);
                ("events", Telemetry.Trace.Int (Rtec.Stream.size stream));
              ]
        in
        let outcomes =
          Pool.map ~jobs
            ~around:(fun ~worker thunk ->
              (* Per-domain telemetry and provenance: metrics and
                 derivation records accumulate locally and merge into the
                 process-global buffers at join; spans land on the
                 worker's own track. The calling domain participates as
                 worker 0 and gets the same treatment — its direct
                 registry writes would race with the other workers'
                 merges. *)
              Telemetry.Metrics.with_local (fun () ->
                  Telemetry.Trace.with_local ~tid:worker (fun () ->
                      Rtec.Derivation.with_local thunk)))
            (fun ~worker:_ i shard ->
              Telemetry.Trace.with_span "runtime.shard"
                ~args:
                  [
                    ("shard", Telemetry.Trace.Int i);
                    ("events", Telemetry.Trace.Int (Rtec.Stream.size shard));
                  ]
                (fun () ->
                  Rtec.Window.run ?window:config.window ?step:config.step ~extent
                    ~compile:config.compile ~event_description ~knowledge ~stream:shard ()))
            shard_streams
        in
        Telemetry.Trace.finish sp;
        (* The lowest-numbered shard's error wins, deterministically. *)
        let rec first_error i =
          if i >= Array.length outcomes then None
          else match outcomes.(i) with Result.Error e -> Some e | Ok _ -> first_error (i + 1)
        in
        match first_error 0 with
        | Some e -> Result.Error e
        | None ->
          let per_shard =
            Array.map (function Result.Ok r -> r | Error _ -> assert false) outcomes
          in
          let stats =
            Array.fold_left
              (fun acc (_, (s : Rtec.Window.stats)) ->
                {
                  acc with
                  queries = acc.queries + s.queries;
                  events_processed = acc.events_processed + s.events_processed;
                })
              { queries = 0; events_processed = 0; shards = n_shards; jobs }
              per_shard
          in
          Ok (merge_results per_shard, stats)
      end
    end
  end
