module Pool = Pool
module Service = Service

(* Domain fan-out with the telemetry bracketing every parallel section
   of this repo uses: worker metrics accumulate locally and merge into
   the process registry at join, spans land on the worker's track. The
   evaluation pipeline's similarity sweep runs on this. *)
let map_domains ~jobs f items =
  Pool.map ~jobs
    ~around:(fun ~worker thunk ->
      Telemetry.Metrics.with_local (fun () ->
          Telemetry.Trace.with_local ~tid:worker (fun () ->
              Rtec.Derivation.with_local thunk)))
    (fun ~worker:_ i item -> f i item)
    items

type config = {
  window : int option;
  step : int option;
  jobs : int;
  shards : int option;
  compile : bool;
}

let default = { window = None; step = None; jobs = 1; shards = None; compile = true }

let config ?window ?step ?(jobs = 1) ?shards ?(compile = true) () =
  { window; step; jobs; shards; compile }

type stats = { queries : int; events_processed : int; shards : int; jobs : int }

let m_runs = Telemetry.Metrics.counter "runtime.runs"
let m_sharded_runs = Telemetry.Metrics.counter "runtime.sharded_runs"
let h_shards = Telemetry.Metrics.histogram "runtime.shards"
let h_shard_events = Telemetry.Metrics.histogram "runtime.shard_events"
let g_jobs = Telemetry.Metrics.gauge "runtime.jobs"

(* The one-shot run is a thin wrapper over {!Service}: seed one bucket
   per shard, drain the whole query grid in one pass. The service
   evaluates each bucket with the same [Window.Session] code a direct
   [Window.run] uses and merges the per-bucket interval maps in the
   canonical fluent-value order, so the batch differential guarantees
   (sharded == sequential, exact telemetry/provenance merge at join)
   carry over by construction. *)
let run ~config:(config : config) ~event_description ~knowledge ~stream () =
  if config.jobs < 1 then Result.Error "jobs must be positive"
  else begin
    Telemetry.Metrics.incr m_runs;
    let finish outcome =
      (* Recorder counters/gauges surface through the metrics registry
         once per run; a no-op unless both recorder and metrics are on. *)
      if Rtec.Derivation.is_enabled () then Rtec.Derivation.publish_metrics ();
      outcome
    in
    let run_service ~pool_always ~jobs ~shards shard_streams =
      let svc =
        Service.create ~pool_always
          ~config:
            (Service.config ?window:config.window ?step:config.step ~jobs
               ~compile:config.compile ~horizon:0 ())
          ~event_description ~knowledge ()
      in
      Service.seed svc shard_streams;
      match Service.drain svc with
      | Result.Error e -> Result.Error e
      | Ok (r : Service.result) ->
        Ok
          ( Lazy.force r.intervals,
            {
              queries = r.stats.queries;
              events_processed = r.stats.events_processed;
              shards;
              jobs;
            } )
    in
    finish
    @@
    (* [jobs] is an upper bound on fan-out, not a demand: domains beyond
       the host's cores never help in OCaml 5 (every minor collection is
       a stop-the-world sync across domains, so oversubscription turns
       each GC into a context-switch storm — >2x slowdown measured on a
       single-core host). Sharding follows the effective fan-out; an
       explicit [shards] still forces a finer partition, so the
       partition/merge machinery stays exercised on any host. *)
    let effective_jobs = min config.jobs (Domain.recommended_domain_count ()) in
    let sharding_wanted = effective_jobs > 1 || Option.is_some config.shards in
    if (not sharding_wanted) || Service.has_ground_initially event_description then
      run_service ~pool_always:false ~jobs:1 ~shards:1 [ stream ]
    else begin
      let shard_target = Option.value ~default:effective_jobs config.shards in
      let shard_streams = Rtec.Stream.partition ~shards:shard_target stream in
      let n_shards = List.length shard_streams in
      if n_shards <= 1 then run_service ~pool_always:false ~jobs:1 ~shards:1 [ stream ]
      else begin
        let jobs = min effective_jobs n_shards in
        Telemetry.Metrics.incr m_sharded_runs;
        Telemetry.Metrics.observe h_shards (float_of_int n_shards);
        Telemetry.Metrics.set g_jobs (float_of_int jobs);
        List.iter
          (fun shard ->
            Telemetry.Metrics.observe h_shard_events (float_of_int (Rtec.Stream.size shard)))
          shard_streams;
        let sp =
          Telemetry.Trace.start "runtime.run"
            ~args:
              [
                ("jobs", Telemetry.Trace.Int jobs);
                ("shards", Telemetry.Trace.Int n_shards);
                ("events", Telemetry.Trace.Int (Rtec.Stream.size stream));
              ]
        in
        let outcome = run_service ~pool_always:true ~jobs ~shards:n_shards shard_streams in
        Telemetry.Trace.finish sp;
        outcome
      end
    end
  end
