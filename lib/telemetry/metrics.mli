(** Process-global metrics registry: counters, gauges and log-scale
    histograms.

    Instrumented modules create handles once at module initialisation
    ([let hits = Telemetry.Metrics.counter "engine.cache.hit"]) and
    record through them; recording is gated on a single [bool ref]
    (disabled by default) so probes can live in hot loops. Handles with
    the same name share state; re-registering a name with a different
    type raises [Invalid_argument]. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val value : counter -> int
(** Current count (readable even while disabled). *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record one sample. Buckets are eighth-powers of two (~9%
    relative width), so percentile estimates are exact to within one
    bucket; count/sum/min/max are exact. *)

val time_us : histogram -> (unit -> 'a) -> 'a
(** [time_us h f] runs [f] and records its wall-clock duration in
    microseconds. Disabled, it is [f ()] — no clock read. A raising [f]
    records nothing. *)

(** {1 Domains}

    The registry cells are unsynchronised: concurrent recording from
    several domains would race (lost counts, torn histogram state).
    Worker domains must wrap their instrumented work in {!with_local},
    which redirects every record made by the calling domain into a
    private accumulator and folds it into the registry — exactly, under
    a mutex — when the scope exits. *)

val with_local : (unit -> 'a) -> 'a
(** [with_local f] runs [f] with a per-domain accumulator, merging it
    into the registry when [f] returns (or raises). Nesting is allowed;
    the inner scope merges into the registry, not the outer scope.
    Inside the scope, {!value} still reads the shared registry cell. *)

(** {1 Snapshots} *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;
      (** cumulative sample count at each occupied bucket's upper bound,
          smallest bound first (empty buckets elided) *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** only gauges that were set *)
  histograms : (string * summary) list;  (** only non-empty histograms *)
}

val snapshot : unit -> snapshot
val find_counter : snapshot -> string -> int option
val snapshot_to_json : snapshot -> Json.t
val to_json : unit -> Json.t
val write : string -> unit
(** Write the current snapshot as indented JSON to a file. *)

val snapshot_to_prometheus : snapshot -> string
(** Prometheus 0.0.4 text exposition: counters and gauges verbatim,
    histograms as native histograms — cumulative [{le="..."}] bucket
    lines at the occupied log-scale bucket boundaries, the mandatory
    [{le="+Inf"}] line, and the exact _sum/_count pair. Dotted metric
    names map to underscores. *)

val to_prometheus : unit -> string

val write_prometheus : string -> unit
(** Write the current snapshot in Prometheus text format to a file. *)
