type value = Bool of bool | Int of int | Float of float | Str of string

type cell = {
  id : int;  (* 1-based; doubles as the span token *)
  parent : int;  (* 0 = root *)
  name : string;
  tid : int;  (* logical track: 0 = main, workers use their shard/domain id *)
  start_ns : int64;
  mutable stop_ns : int64;  (* negative while the span is open *)
  mutable args : (string * value) list;
}

type span = int

let null_span = 0
let on = ref false
let max_spans = ref 1_000_000

(* Completed and open spans, in start order: a growable array so the
   enabled path costs one bounds check and one write per event. Each
   domain records into its own recorder — the process-global one for the
   main domain, a private one (via [Domain.DLS]) inside [with_local] —
   so concurrent domains never touch the same buffer. *)
type recorder = {
  mutable cells : cell array;
  mutable count : int;
  mutable stack : int list;
  mutable dropped : int;
  rec_tid : int;
}

let fresh_recorder tid = { cells = [||]; count = 0; stack = []; dropped = 0; rec_tid = tid }
let global = fresh_recorder 0
let global_mutex = Mutex.create ()
let local_key : recorder option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = match Domain.DLS.get local_key with Some r -> r | None -> global

let enable () = on := true
let disable () = on := false
let is_enabled () = !on

let reset () =
  global.cells <- [||];
  global.count <- 0;
  global.stack <- [];
  global.dropped <- 0

let set_max_spans n = max_spans := max 0 n

let dummy =
  { id = 0; parent = 0; name = ""; tid = 0; start_ns = 0L; stop_ns = 0L; args = [] }

let grow r =
  let cap = Array.length r.cells in
  let fresh = Array.make (if cap = 0 then 1024 else 2 * cap) dummy in
  Array.blit r.cells 0 fresh 0 cap;
  r.cells <- fresh

let start ?(args = []) name =
  if not !on then null_span
  else begin
    let r = current () in
    if r.count >= !max_spans then begin
      r.dropped <- r.dropped + 1;
      null_span
    end
    else begin
      if r.count >= Array.length r.cells then grow r;
      let id = r.count + 1 in
      let parent = match r.stack with [] -> 0 | p :: _ -> p in
      r.cells.(r.count) <-
        {
          id;
          parent;
          name;
          tid = r.rec_tid;
          start_ns = Clock.now_ns ();
          stop_ns = -1L;
          args;
        };
      r.count <- r.count + 1;
      r.stack <- id :: r.stack;
      id
    end
  end

let finish ?(args = []) span =
  let r = current () in
  if span > 0 && span <= r.count then begin
    let c = r.cells.(span - 1) in
    if c.stop_ns < 0L then c.stop_ns <- Clock.now_ns ();
    if args <> [] then c.args <- c.args @ args;
    (* Unwind to this span; an out-of-order finish closes the span but
       leaves well-nested ancestors alone. *)
    let rec pop = function
      | [] -> []
      | x :: rest when x = span -> rest
      | _ :: rest -> pop rest
    in
    if List.mem span r.stack then r.stack <- pop r.stack
  end

let with_span ?args name f =
  if not !on then f ()
  else begin
    let sp = start ?args name in
    match f () with
    | v ->
      finish sp;
      v
    | exception e ->
      finish sp;
      raise e
  end

let instant ?args name = finish (start ?args name)

(* Append a local recorder's spans to the global buffer, remapping ids
   (parents stay within the merged batch; local roots remain roots).
   Open local spans are closed at merge time — the recorder is gone
   afterwards, so nothing could ever finish them. *)
let merge_local l =
  Mutex.protect global_mutex (fun () ->
      let remap = Hashtbl.create (max 16 l.count) in
      for i = 0 to l.count - 1 do
        let c = l.cells.(i) in
        if global.count >= !max_spans then global.dropped <- global.dropped + 1
        else begin
          if global.count >= Array.length global.cells then grow global;
          let id = global.count + 1 in
          Hashtbl.replace remap c.id id;
          let parent =
            if c.parent = 0 then 0 else Option.value ~default:0 (Hashtbl.find_opt remap c.parent)
          in
          let stop_ns = if c.stop_ns < 0L then Clock.now_ns () else c.stop_ns in
          global.cells.(global.count) <- { c with id; parent; stop_ns };
          global.count <- global.count + 1
        end
      done;
      global.dropped <- global.dropped + l.dropped)

let with_local ~tid f =
  let prev = Domain.DLS.get local_key in
  let l = fresh_recorder tid in
  Domain.DLS.set local_key (Some l);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set local_key prev;
      merge_local l)
    f

(* --- export --- *)

type info = {
  span_id : int;
  span_parent : int;
  span_name : string;
  span_tid : int;
  t_ns : int64;  (* relative to the earliest recorded span *)
  dur_ns : int64;
  span_args : (string * value) list;
}

let dropped_spans () = global.dropped

let infos () =
  if global.count = 0 then []
  else begin
    (* Merged worker spans sit after the main domain's spans but may have
       started earlier; anchor at the earliest start, not cell 0. *)
    let t0 = ref global.cells.(0).start_ns in
    for i = 1 to global.count - 1 do
      if global.cells.(i).start_ns < !t0 then t0 := global.cells.(i).start_ns
    done;
    List.init global.count (fun i ->
        let c = global.cells.(i) in
        let stop = if c.stop_ns < 0L then Clock.now_ns () else c.stop_ns in
        {
          span_id = c.id;
          span_parent = c.parent;
          span_name = c.name;
          span_tid = c.tid;
          t_ns = Int64.sub c.start_ns !t0;
          dur_ns = Int64.sub stop c.start_ns;
          span_args = c.args;
        })
  end

let value_to_json = function
  | Bool b -> Json.Bool b
  | Int n -> Json.Num (float_of_int n)
  | Float x -> Json.Num x
  | Str s -> Json.Str s

let args_to_json args = Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) args)

let to_json () =
  Json.List
    (List.map
       (fun i ->
         Json.Obj
           [
             ("id", Json.Num (float_of_int i.span_id));
             ("parent", Json.Num (float_of_int i.span_parent));
             ("name", Json.Str i.span_name);
             ("tid", Json.Num (float_of_int i.span_tid));
             ("t_ns", Json.Num (Int64.to_float i.t_ns));
             ("dur_ns", Json.Num (Int64.to_float i.dur_ns));
             ("args", args_to_json i.span_args);
           ])
       (infos ()))

(* Chrome trace_event format ("X" complete events, microsecond
   timestamps), loadable in chrome://tracing and Perfetto. Worker spans
   carry their shard/domain id as the tid, so each worker gets its own
   track in the viewer. *)
let to_chrome () =
  let events =
    List.map
      (fun i ->
        Json.Obj
          [
            ("name", Json.Str i.span_name);
            ("cat", Json.Str "adg");
            ("ph", Json.Str "X");
            ("ts", Json.Num (Clock.ns_to_us i.t_ns));
            ("dur", Json.Num (Clock.ns_to_us i.dur_ns));
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int i.span_tid));
            ("args", args_to_json i.span_args);
          ])
      (infos ())
  in
  let meta =
    if global.dropped = 0 then []
    else [ ("adg_dropped_spans", Json.Num (float_of_int global.dropped)) ]
  in
  Json.Obj ((("traceEvents", Json.List events) :: ("displayTimeUnit", Json.Str "ms") :: meta))

let value_to_string = function
  | Bool b -> string_of_bool b
  | Int n -> string_of_int n
  | Float x -> Printf.sprintf "%g" x
  | Str s -> s

let to_text () =
  let all = infos () in
  let buf = Buffer.create 1024 in
  let children = Hashtbl.create 64 in
  List.iter
    (fun i -> Hashtbl.replace children i.span_parent
        (i :: Option.value ~default:[] (Hashtbl.find_opt children i.span_parent)))
    (List.rev all);
  let rec render depth i =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %12.3f ms%s\n" (String.make (2 * depth) ' ')
         (max 1 (40 - (2 * depth)))
         i.span_name
         (Int64.to_float i.dur_ns /. 1e6)
         (match i.span_args with
          | [] -> ""
          | args ->
            "  {" ^ String.concat ", "
              (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) args) ^ "}"));
    List.iter (render (depth + 1)) (Option.value ~default:[] (Hashtbl.find_opt children i.span_id))
  in
  List.iter (render 0) (Option.value ~default:[] (Hashtbl.find_opt children 0));
  if global.dropped > 0 then
    Buffer.add_string buf (Printf.sprintf "(%d spans dropped)\n" global.dropped);
  Buffer.contents buf

let write_chrome file = Json.write_file ~indent:false file (to_chrome ())
let write_json file = Json.write_file ~indent:true file (to_json ())

let write_text file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_text ()))
