type value = Bool of bool | Int of int | Float of float | Str of string

type cell = {
  id : int;  (* 1-based; doubles as the span token *)
  parent : int;  (* 0 = root *)
  name : string;
  start_ns : int64;
  mutable stop_ns : int64;  (* negative while the span is open *)
  mutable args : (string * value) list;
}

type span = int

let null_span = 0
let on = ref false

(* Completed and open spans, in start order: a growable array so the
   enabled path costs one bounds check and one write per event. *)
let cells : cell array ref = ref [||]
let count = ref 0
let stack : int list ref = ref []
let dropped = ref 0
let max_spans = ref 1_000_000

let enable () = on := true
let disable () = on := false
let is_enabled () = !on

let reset () =
  cells := [||];
  count := 0;
  stack := [];
  dropped := 0

let set_max_spans n = max_spans := max 0 n

let dummy = { id = 0; parent = 0; name = ""; start_ns = 0L; stop_ns = 0L; args = [] }

let grow () =
  let cap = Array.length !cells in
  let fresh = Array.make (if cap = 0 then 1024 else 2 * cap) dummy in
  Array.blit !cells 0 fresh 0 cap;
  cells := fresh

let start ?(args = []) name =
  if not !on then null_span
  else if !count >= !max_spans then begin
    incr dropped;
    null_span
  end
  else begin
    if !count >= Array.length !cells then grow ();
    let id = !count + 1 in
    let parent = match !stack with [] -> 0 | p :: _ -> p in
    !cells.(!count) <- { id; parent; name; start_ns = Clock.now_ns (); stop_ns = -1L; args };
    incr count;
    stack := id :: !stack;
    id
  end

let finish ?(args = []) span =
  if span > 0 && span <= !count then begin
    let c = !cells.(span - 1) in
    if c.stop_ns < 0L then c.stop_ns <- Clock.now_ns ();
    if args <> [] then c.args <- c.args @ args;
    (* Unwind to this span; an out-of-order finish closes the span but
       leaves well-nested ancestors alone. *)
    let rec pop = function
      | [] -> []
      | x :: rest when x = span -> rest
      | _ :: rest -> pop rest
    in
    if List.mem span !stack then stack := pop !stack
  end

let with_span ?args name f =
  if not !on then f ()
  else begin
    let sp = start ?args name in
    match f () with
    | v ->
      finish sp;
      v
    | exception e ->
      finish sp;
      raise e
  end

let instant ?args name = finish (start ?args name)

(* --- export --- *)

type info = {
  span_id : int;
  span_parent : int;
  span_name : string;
  t_ns : int64;  (* relative to the first span *)
  dur_ns : int64;
  span_args : (string * value) list;
}

let dropped_spans () = !dropped

let infos () =
  if !count = 0 then []
  else begin
    let t0 = !cells.(0).start_ns in
    List.init !count (fun i ->
        let c = !cells.(i) in
        let stop = if c.stop_ns < 0L then Clock.now_ns () else c.stop_ns in
        {
          span_id = c.id;
          span_parent = c.parent;
          span_name = c.name;
          t_ns = Int64.sub c.start_ns t0;
          dur_ns = Int64.sub stop c.start_ns;
          span_args = c.args;
        })
  end

let value_to_json = function
  | Bool b -> Json.Bool b
  | Int n -> Json.Num (float_of_int n)
  | Float x -> Json.Num x
  | Str s -> Json.Str s

let args_to_json args = Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) args)

let to_json () =
  Json.List
    (List.map
       (fun i ->
         Json.Obj
           [
             ("id", Json.Num (float_of_int i.span_id));
             ("parent", Json.Num (float_of_int i.span_parent));
             ("name", Json.Str i.span_name);
             ("t_ns", Json.Num (Int64.to_float i.t_ns));
             ("dur_ns", Json.Num (Int64.to_float i.dur_ns));
             ("args", args_to_json i.span_args);
           ])
       (infos ()))

(* Chrome trace_event format ("X" complete events, microsecond
   timestamps), loadable in chrome://tracing and Perfetto. *)
let to_chrome () =
  let events =
    List.map
      (fun i ->
        Json.Obj
          [
            ("name", Json.Str i.span_name);
            ("cat", Json.Str "adg");
            ("ph", Json.Str "X");
            ("ts", Json.Num (Clock.ns_to_us i.t_ns));
            ("dur", Json.Num (Clock.ns_to_us i.dur_ns));
            ("pid", Json.Num 1.);
            ("tid", Json.Num 1.);
            ("args", args_to_json i.span_args);
          ])
      (infos ())
  in
  let meta =
    if !dropped = 0 then []
    else [ ("adg_dropped_spans", Json.Num (float_of_int !dropped)) ]
  in
  Json.Obj ((("traceEvents", Json.List events) :: ("displayTimeUnit", Json.Str "ms") :: meta))

let value_to_string = function
  | Bool b -> string_of_bool b
  | Int n -> string_of_int n
  | Float x -> Printf.sprintf "%g" x
  | Str s -> s

let to_text () =
  let all = infos () in
  let buf = Buffer.create 1024 in
  let children = Hashtbl.create 64 in
  List.iter
    (fun i -> Hashtbl.replace children i.span_parent
        (i :: Option.value ~default:[] (Hashtbl.find_opt children i.span_parent)))
    (List.rev all);
  let rec render depth i =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %12.3f ms%s\n" (String.make (2 * depth) ' ')
         (max 1 (40 - (2 * depth)))
         i.span_name
         (Int64.to_float i.dur_ns /. 1e6)
         (match i.span_args with
          | [] -> ""
          | args ->
            "  {" ^ String.concat ", "
              (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) args) ^ "}"));
    List.iter (render (depth + 1)) (Option.value ~default:[] (Hashtbl.find_opt children i.span_id))
  in
  List.iter (render 0) (Option.value ~default:[] (Hashtbl.find_opt children 0));
  if !dropped > 0 then Buffer.add_string buf (Printf.sprintf "(%d spans dropped)\n" !dropped);
  Buffer.contents buf

let write_chrome file = Json.write_file ~indent:false file (to_chrome ())
let write_json file = Json.write_file ~indent:true file (to_json ())

let write_text file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_text ()))
