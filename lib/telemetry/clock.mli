(** Monotonic time source shared by the tracer and instrumentation
    points. Backed by [CLOCK_MONOTONIC] (via bechamel's no-alloc stub),
    so readings are unaffected by wall-clock adjustments. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; strictly comparable
    within a process. *)

val ns_to_us : int64 -> float
(** Nanoseconds to (fractional) microseconds — the unit of Chrome
    [trace_event] timestamps. *)
