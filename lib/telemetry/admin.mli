(** Minimal HTTP/1.0 admin endpoint for live introspection.

    One background thread accepts loopback connections and answers
    [GET] requests from a route table — enough for a scrape target
    ([/metrics]), a health probe ([/healthz]) and status/flight-recorder
    dumps ([/statusz], [/lastz]); anything fancier belongs behind a real
    proxy. Responses are built whole and written with [Content-Length]
    and [Connection: close]; each connection serves one request.

    Route handlers run on the admin thread, concurrently with the
    threads doing the work they report on — they must confine
    themselves to advisory reads (metric snapshots, counter loads,
    status fields) and must not block, since the accept loop is serial.
    A handler that raises turns into a 500 for that request; the loop
    carries on. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
val json : ?status:int -> Json.t -> response

type t

val start : port:int -> routes:(string -> response option) -> (t, string) result
(** Bind 127.0.0.1:[port] ([0] picks an ephemeral port — see {!port})
    and serve [routes] until {!stop}. [routes] receives the request path
    with any query string removed and returns [None] for 404. Errors
    (port in use, …) are returned, not raised. *)

val port : t -> int
(** The bound port — the requested one, or the kernel's pick for 0. *)

val stop : t -> unit
(** Close the listening socket and join the admin thread. Idempotent. *)
