type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf x =
  (* JSON has no NaN/infinity; integral values print without a fraction
     (counters stay readable and diffable). Other finites print with the
     shortest of %.12g/%.17g that parses back to the same float, so every
     emitted document round-trips through [of_string] exactly. *)
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else begin
    let short = Printf.sprintf "%.12g" x in
    if float_of_string short = x then Buffer.add_string buf short
    else Buffer.add_string buf (Printf.sprintf "%.17g" x)
  end

let rec add buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string buf "\n" in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List elems ->
    Buffer.add_char buf '[';
    sep ();
    List.iteri
      (fun i e ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        add buf ~indent ~level:(level + 1) e)
      elems;
    sep ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    sep ();
    List.iteri
      (fun i (k, e) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\": ";
        add buf ~indent ~level:(level + 1) e)
      fields;
    sep ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 1024 in
  add buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file ?indent file v =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?indent v))

(* --- parsing --- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
             (* ASCII only; anything wider is replaced (the telemetry
                writers never emit non-ASCII). *)
             Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
             pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let num = function Num x -> Some x | _ -> None
let str = function Str s -> Some s | _ -> None
let list = function List l -> Some l | _ -> None
let obj = function Obj fields -> Some fields | _ -> None
