(** Span-based tracing.

    A span is a named, timed region of execution; spans started while
    another span is open become its children, so the export is a tree
    (per-window recognition cost, per-call LLM latency, ...). The
    tracer is process-global and disabled by default: every probe first
    reads one [bool ref], and the disabled path performs no allocation
    and no clock read, so instrumentation can stay in hot paths.

    Spans are recorded into a growable array capped at
    {!set_max_spans} entries (default one million); beyond the cap new
    spans are dropped and counted rather than growing without bound. *)

type value = Bool of bool | Int of int | Float of float | Str of string
(** Span argument values (Chrome trace [args]). *)

type span
(** Token returned by {!start}; pass it to {!finish}. *)

val null_span : span
(** The token returned when tracing is disabled; {!finish} ignores it. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Forget all recorded spans (the enabled flag is unchanged). *)

val set_max_spans : int -> unit

val start : ?args:(string * value) list -> string -> span
(** Open a span; it becomes the parent of spans started before its
    {!finish}. *)

val finish : ?args:(string * value) list -> span -> unit
(** Close a span, appending [args] to the ones given at {!start}.
    Closing out of order is tolerated: ancestors stay open. *)

val with_span : ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is closed even
    if [f] raises. When disabled this is exactly [f ()]. *)

val instant : ?args:(string * value) list -> string -> unit
(** A zero-duration marker event. *)

val with_local : tid:int -> (unit -> 'a) -> 'a
(** [with_local ~tid f] records the calling domain's spans into a
    private buffer while [f] runs, then appends them to the shared
    recorder (under a mutex) when [f] returns or raises. Worker domains
    must use this: the shared recorder is unsynchronised. [tid] tags the
    merged spans (their [span_tid] / Chrome track); the main domain
    records with tid 0. Spans still open at merge are closed then. *)

(** {1 Export} *)

type info = {
  span_id : int;
  span_parent : int;  (** 0 for roots *)
  span_name : string;
  span_tid : int;  (** 0 for the main domain; the [with_local] tid otherwise *)
  t_ns : int64;  (** start, relative to the earliest recorded span *)
  dur_ns : int64;
  span_args : (string * value) list;
}

val infos : unit -> info list
(** Recorded spans in start order (still-open spans report the duration
    up to now). *)

val dropped_spans : unit -> int

val to_text : unit -> string
(** Human-readable indented tree with millisecond durations. *)

val to_json : unit -> Json.t
(** Flat array of span objects
    ([id]/[parent]/[name]/[t_ns]/[dur_ns]/[args]). *)

val to_chrome : unit -> Json.t
(** Chrome [trace_event] document ("X" complete events, microsecond
    timestamps) — load the written file in [chrome://tracing] or
    Perfetto. *)

val write_text : string -> unit
val write_json : string -> unit
val write_chrome : string -> unit
