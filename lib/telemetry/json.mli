(** A minimal JSON tree: enough to serialise traces and metric
    snapshots, and to read them back (benchmark baselines, tests)
    without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialise; [indent] pretty-prints with two-space indentation (and a
    trailing newline). Integral numbers print without a fraction;
    NaN/infinity become [null] (JSON has no spelling for them). *)

val write_file : ?indent:bool -> string -> t -> unit
(** [write_file file v] serialises [v] into [file] (truncating it). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. [\uXXXX] escapes outside ASCII are
    replaced by ['?'] — the telemetry writers never emit them. *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val num : t -> float option
val str : t -> string option
val list : t -> t list option
val obj : t -> (string * t) list option
