(** Always-on bounded flight recorder: the serve session's black box.

    A fixed-size ring of compact structured events — ingest bursts,
    ticks, revisions, TTL evictions, client connect/drop, codec
    fallbacks — recorded unconditionally (recording is a mutex, four
    int stores and a clock read; sites fire per burst/tick/connection,
    never per event, so the cost is held under the serve-throughput
    bench's 5% gate). When the ring is full the oldest record is
    overwritten whole, so a long-lived session always retains the most
    recent window of activity, and {!arm} dumps it to a JSON file from
    an [at_exit] hook — a session that dies on an uncaught exception
    still leaves its final moments on disk.

    Records are flat integers in one preallocated array (no per-record
    allocation): a kind code, a monotonic timestamp relative to process
    start, and three kind-specific operands. The decoded view names the
    operands per kind (see {!to_json}). *)

type kind =
  | Ingest  (** a = items accepted, b = late, c = dropped *)
  | Tick  (** a = now (event time), b = cumulative queries, c = live buckets *)
  | Revision  (** a = bucket id, b = earliest late time, c = queries to replay *)
  | Evict  (** a = bucket id, b = entities folded, c = last event time seen *)
  | Client_connect  (** a = client slot *)
  | Client_eof  (** a = client slot *)
  | Client_drop  (** a = client slot, b = 0 read failure / 1 write failure *)
  | Codec_fallback  (** a = chunk length in bytes *)
  | Bad_line  (** a = line length in bytes *)
  | Session_start  (** a/b/c free *)
  | Session_end  (** a/b/c free *)

type event = { kind : kind; t_ns : int; a : int; b : int; c : int }
(** [t_ns] is monotonic nanoseconds since process start. *)

val enable : unit -> unit
val disable : unit -> unit

val is_enabled : unit -> bool
(** Enabled by default — the recorder exists for the session nobody knew
    would need a post-mortem. Disable only to measure its overhead. *)

val record : kind -> ?a:int -> ?b:int -> ?c:int -> unit -> unit

val set_capacity : int -> unit
(** Resize the ring (records retained), discarding current contents.
    Default 4096. *)

val reset : unit -> unit

val events : unit -> event list
(** Retained records, oldest first. *)

val total : unit -> int
(** Records ever written, including overwritten ones. *)

val to_json : unit -> Json.t
(** [{"schema":"adg-flight/1","capacity":…,"recorded":…,"dropped":…,
    "events":[{"kind":…,"t_ms":…,<named operands>},…]}] — operand names
    are kind-specific ([items]/[late]/[dropped] for ingest, [slot] for
    client events, …). *)

val write : string -> unit

val arm : string -> unit
(** Dump {!to_json} to this file when the process exits (normal exit,
    [exit], or an uncaught exception — every path that runs [at_exit]).
    Calling again replaces the target; the hook is registered once. *)
