let on = ref false

let enable () = on := true
let disable () = on := false
let is_enabled () = !on

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

(* Log-scale histogram: bucket [b] covers values up to [2 ** (b / 8)]
   (eighth-powers of two, ~9% relative width), so percentiles over
   nanosecond latencies and element counts come out within one bucket
   of the truth at constant memory. Count/sum/min/max are exact. The
   512-bucket range still spans 2^64, so nothing representable clamps. *)
let buckets = 512

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type item = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, item) Hashtbl.t = Hashtbl.create 64

(* Guards the registry and the merge of per-domain accumulators: handles
   are normally created at module initialisation in the main domain, but
   worker domains may register lazily and several workers can merge
   their local accumulators concurrently. *)
let registry_mutex = Mutex.create ()

let register name make describe =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some item -> (
        match describe item with
        | Some x -> x
        | None ->
          invalid_arg (Printf.sprintf "Metrics: %s already registered with another type" name))
      | None ->
        let x, item = make () in
        Hashtbl.replace registry name item;
        x)

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; c_value = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; g_value = 0.; g_set = false } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          h_count = 0;
          h_sum = 0.;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
          h_buckets = Array.make buckets 0;
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* --- per-domain accumulators ---

   The registry cells are plain mutable records: safe when only the main
   domain records, racy when worker domains run instrumented code
   concurrently. [with_local] gives the calling domain a private
   accumulator (keyed through [Domain.DLS]); every record made inside the
   scope lands there, and the accumulator is folded into the registry
   under [registry_mutex] when the scope exits — so worker metrics are
   exact, merged at join, and never contend on the hot path. *)

type local = {
  l_counters : (string, int ref) Hashtbl.t;
  l_gauges : (string, float) Hashtbl.t;
  l_histograms : (string, histogram) Hashtbl.t;
}

let local_key : local option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let fresh_histogram name =
  {
    h_name = name;
    h_count = 0;
    h_sum = 0.;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
    h_buckets = Array.make buckets 0;
  }

let incr ?(by = 1) c =
  if !on then
    match Domain.DLS.get local_key with
    | None -> c.c_value <- c.c_value + by
    | Some l -> (
      match Hashtbl.find_opt l.l_counters c.c_name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace l.l_counters c.c_name (ref by))

let value c = c.c_value
let set g v =
  if !on then
    match Domain.DLS.get local_key with
    | None ->
      g.g_value <- v;
      g.g_set <- true
    | Some l -> Hashtbl.replace l.l_gauges g.g_name v

let bucket_of v =
  if v <= 1. then 0
  else
    let b = int_of_float (Float.ceil (8. *. (Float.log v /. Float.log 2.))) in
    min (buckets - 1) (max 0 b)

let bucket_upper b = Float.pow 2. (float_of_int b /. 8.)

let observe_cell h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let observe h v =
  if !on then
    match Domain.DLS.get local_key with
    | None -> observe_cell h v
    | Some l ->
      let cell =
        match Hashtbl.find_opt l.l_histograms h.h_name with
        | Some cell -> cell
        | None ->
          let cell = fresh_histogram h.h_name in
          Hashtbl.replace l.l_histograms h.h_name cell;
          cell
      in
      observe_cell cell v

(* Fold a scope's accumulator into the registry. Counters and histograms
   add; a gauge keeps the last merged write. Only names with a registered
   handle can appear (the accumulator is keyed by handle names). *)
let merge_local l =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt registry name with
          | Some (Counter c) -> c.c_value <- c.c_value + !r
          | _ -> ())
        l.l_counters;
      Hashtbl.iter
        (fun name v ->
          match Hashtbl.find_opt registry name with
          | Some (Gauge g) ->
            g.g_value <- v;
            g.g_set <- true
          | _ -> ())
        l.l_gauges;
      Hashtbl.iter
        (fun name cell ->
          match Hashtbl.find_opt registry name with
          | Some (Histogram h) ->
            h.h_count <- h.h_count + cell.h_count;
            h.h_sum <- h.h_sum +. cell.h_sum;
            if cell.h_min < h.h_min then h.h_min <- cell.h_min;
            if cell.h_max > h.h_max then h.h_max <- cell.h_max;
            Array.iteri (fun i n -> h.h_buckets.(i) <- h.h_buckets.(i) + n) cell.h_buckets
          | _ -> ())
        l.l_histograms)

let with_local f =
  let l =
    {
      l_counters = Hashtbl.create 16;
      l_gauges = Hashtbl.create 8;
      l_histograms = Hashtbl.create 16;
    }
  in
  let prev = Domain.DLS.get local_key in
  Domain.DLS.set local_key (Some l);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set local_key prev;
      merge_local l)
    f

(* Timing bracket for stage-latency histograms: the clock is only read
   when collection is on, so a disabled probe stays one load and one
   branch — the discipline the CI overhead gate enforces. *)
let time_us h f =
  if not !on then f ()
  else begin
    let t0 = Clock.now_ns () in
    let r = f () in
    observe h (Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e3);
    r
  end

let quantile h q =
  if h.h_count = 0 then 0.
  else begin
    let rank = max 1 (min h.h_count (int_of_float (Float.ceil (q *. float_of_int h.h_count)))) in
    let b = ref (buckets - 1) in
    let cum = ref 0 in
    (try
       for i = 0 to buckets - 1 do
         cum := !cum + h.h_buckets.(i);
         if !cum >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* The bucket's upper bound, clamped into the observed range. *)
    Float.min h.h_max (Float.max h.h_min (bucket_upper !b))
  end

let reset () =
  Hashtbl.iter
    (fun _ item ->
      match item with
      | Counter c -> c.c_value <- 0
      | Gauge g ->
        g.g_value <- 0.;
        g.g_set <- false
      | Histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0.;
        h.h_min <- Float.infinity;
        h.h_max <- Float.neg_infinity;
        Array.fill h.h_buckets 0 buckets 0)
    registry

(* --- snapshots --- *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * summary) list;
}

(* Cumulative count at each occupied bucket's upper bound, smallest
   first — exactly the shape a Prometheus histogram series wants. Empty
   buckets are elided: cumulative exposition loses nothing by skipping
   boundaries where the count did not change. *)
let cumulative_buckets h =
  let acc = ref [] and cum = ref 0 in
  for b = 0 to buckets - 1 do
    if h.h_buckets.(b) > 0 then begin
      cum := !cum + h.h_buckets.(b);
      acc := (bucket_upper b, !cum) :: !acc
    end
  done;
  List.rev !acc

let summarise h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = (if h.h_count = 0 then 0. else h.h_min);
    max = (if h.h_count = 0 then 0. else h.h_max);
    mean = (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count);
    p50 = quantile h 0.50;
    p90 = quantile h 0.90;
    p99 = quantile h 0.99;
    buckets = cumulative_buckets h;
  }

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name item ->
      match item with
      | Counter c -> counters := (name, c.c_value) :: !counters
      | Gauge g -> if g.g_set then gauges := (name, g.g_value) :: !gauges
      | Histogram h -> if h.h_count > 0 then histograms := (name, summarise h) :: !histograms)
    registry;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let find_counter snap name = List.assoc_opt name snap.counters

let summary_to_json s =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.count));
      ("sum", Json.Num s.sum);
      ("min", Json.Num s.min);
      ("max", Json.Num s.max);
      ("mean", Json.Num s.mean);
      ("p50", Json.Num s.p50);
      ("p90", Json.Num s.p90);
      ("p99", Json.Num s.p99);
    ]

let snapshot_to_json snap =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) snap.counters) );
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) snap.gauges));
      ("histograms", Json.Obj (List.map (fun (k, s) -> (k, summary_to_json s)) snap.histograms));
    ]

let to_json () = snapshot_to_json (snapshot ())
let write file = Json.write_file ~indent:true file (to_json ())

(* --- Prometheus 0.0.4 text exposition ---

   Metric names here are dotted ("window.queries"); Prometheus names admit
   [a-zA-Z_:][a-zA-Z0-9_:]*, so every other character maps to '_'. The
   log-scale histograms expose natively: one cumulative {le="..."} series
   per occupied quarter-power-of-two boundary, the mandatory {le="+Inf"}
   line, and the exact _sum/_count pair. *)

let prom_name name =
  let sane c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
    || c = ':'
  in
  let mapped = String.map (fun c -> if sane c then c else '_') name in
  if mapped = "" || (mapped.[0] >= '0' && mapped.[0] <= '9') then "_" ^ mapped else mapped

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let snapshot_to_prometheus snap =
  let buf = Buffer.create 1024 in
  let metric name typ lines =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ);
    List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) lines
  in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      metric n "counter" [ Printf.sprintf "%s %d" n v ])
    snap.counters;
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      metric n "gauge" [ Printf.sprintf "%s %s" n (prom_float v) ])
    snap.gauges;
  List.iter
    (fun (name, s) ->
      let n = prom_name name in
      metric n "histogram"
        (List.map
           (fun (upper, cum) ->
             Printf.sprintf "%s_bucket{le=\"%s\"} %d" n (prom_float upper) cum)
           s.buckets
        @ [
            Printf.sprintf "%s_bucket{le=\"+Inf\"} %d" n s.count;
            Printf.sprintf "%s_sum %s" n (prom_float s.sum);
            Printf.sprintf "%s_count %d" n s.count;
          ]))
    snap.histograms;
  Buffer.contents buf

let to_prometheus () = snapshot_to_prometheus (snapshot ())

let write_prometheus file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_prometheus ()))
