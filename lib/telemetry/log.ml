type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type value = Str of string | Int of int | Float of float | Bool of bool

let threshold = ref Info
let set_level l = threshold := l
let level () = !threshold

let human_sink = ref (Some stderr)
let json_sink : out_channel option ref = ref None
let set_human oc = human_sink := oc
let set_json oc = json_sink := oc

let n_emitted = ref 0
let emitted () = !n_emitted

(* One mutex around render+write: records from reader threads, the
   evaluator and pool workers interleave whole-line, never mid-line. *)
let sink_mutex = Mutex.create ()

(* RFC3339 UTC with millisecond precision — what a human tails and what
   a log shipper keys on. *)
let timestamp now =
  let tm = Unix.gmtime now in
  let ms = int_of_float (Float.rem now 1. *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    (max 0 (min 999 ms))

let human_value = function
  | Str s ->
    (* Quote only when the bare token would be ambiguous to an eye or an
       awk script. *)
    if s <> "" && String.for_all (fun c -> c <> ' ' && c <> '"' && c <> '=') s then s
    else Printf.sprintf "%S" s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let json_value = function
  | Str s -> Json.Str s
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Bool b -> Json.Bool b

let log lvl ~src ?(fields = []) msg =
  if severity lvl >= severity !threshold then begin
    let now = Unix.gettimeofday () in
    Mutex.protect sink_mutex (fun () ->
        incr n_emitted;
        (match !human_sink with
        | None -> ()
        | Some oc ->
          let buf = Buffer.create 128 in
          Buffer.add_string buf (timestamp now);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (String.uppercase_ascii (level_to_string lvl));
          Buffer.add_char buf ' ';
          Buffer.add_string buf src;
          Buffer.add_string buf ": ";
          Buffer.add_string buf msg;
          List.iter
            (fun (k, v) ->
              Buffer.add_char buf ' ';
              Buffer.add_string buf k;
              Buffer.add_char buf '=';
              Buffer.add_string buf (human_value v))
            fields;
          Buffer.add_char buf '\n';
          output_string oc (Buffer.contents buf);
          flush oc);
        match !json_sink with
        | None -> ()
        | Some oc ->
          let doc =
            Json.Obj
              ([
                 ("ts", Json.Num now);
                 ("level", Json.Str (level_to_string lvl));
                 ("src", Json.Str src);
                 ("msg", Json.Str msg);
               ]
              @ List.map (fun (k, v) -> (k, json_value v)) fields)
          in
          output_string oc (Json.to_string doc);
          output_char oc '\n';
          flush oc)
  end

let debug ~src ?fields msg = log Debug ~src ?fields msg
let info ~src ?fields msg = log Info ~src ?fields msg
let warn ~src ?fields msg = log Warn ~src ?fields msg
let error ~src ?fields msg = log Error ~src ?fields msg
