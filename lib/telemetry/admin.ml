type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body = { status; content_type = "text/plain; charset=utf-8"; body }
let json ?(status = 200) doc =
  { status; content_type = "application/json"; body = Json.to_string ~indent:true doc }

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  thread : Thread.t;
  stopping : bool ref;
}

let status_line status =
  let reason =
    match status with
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 500 -> "Internal Server Error"
    | 503 -> "Service Unavailable"
    | _ -> "Status"
  in
  Printf.sprintf "HTTP/1.0 %d %s\r\n" status reason

let write_response oc r =
  output_string oc (status_line r.status);
  output_string oc (Printf.sprintf "Content-Type: %s\r\n" r.content_type);
  output_string oc (Printf.sprintf "Content-Length: %d\r\n" (String.length r.body));
  output_string oc "Connection: close\r\n\r\n";
  output_string oc r.body;
  flush oc

(* One request per connection: read the request line, drain the headers
   (HTTP/1.0 GETs carry no body), dispatch, respond, close. Anything
   malformed gets a 400; a handler exception gets a 500 — the admin
   plane must never take the session down. *)
let handle_connection routes conn =
  let ic = Unix.in_channel_of_descr conn in
  let oc = Unix.out_channel_of_descr conn in
  let respond r = try write_response oc r with Sys_error _ | Unix.Unix_error _ -> () in
  (try
     let request = input_line ic in
     let rec drain_headers () =
       match input_line ic with
       | "" | "\r" -> ()
       | _ -> drain_headers ()
       | exception End_of_file -> ()
     in
     drain_headers ();
     match String.split_on_char ' ' (String.trim request) with
     | meth :: target :: _ when String.uppercase_ascii meth = "GET" -> (
       let path =
         match String.index_opt target '?' with
         | Some i -> String.sub target 0 i
         | None -> target
       in
       match routes path with
       | Some r -> respond r
       | None -> respond (text ~status:404 (Printf.sprintf "no route for %s\n" path))
       | exception e ->
         respond (text ~status:500 (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))))
     | _ :: _ :: _ -> respond (text ~status:405 "only GET is served here\n")
     | _ -> respond (text ~status:400 "malformed request line\n")
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

let serve_loop sock routes stopping =
  let continue = ref true in
  while !continue do
    match Unix.accept sock with
    | conn, _ -> handle_connection routes conn
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
      (* The listening socket was closed (stop) or is unusable: exit. *)
      continue := false
    | exception Sys_error _ -> continue := false
  done;
  ignore stopping

let start ~port ~routes =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen sock 16
  with
  | () ->
    let bound_port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    in
    let stopping = ref false in
    let thread = Thread.create (fun () -> serve_loop sock routes stopping) () in
    Ok { sock; bound_port; thread; stopping }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot bind admin endpoint on 127.0.0.1:%d: %s" port
             (Unix.error_message e))

let port t = t.bound_port

let stop t =
  if not !(t.stopping) then begin
    t.stopping := true;
    (* Closing the fd makes the blocked accept fail, which exits the loop. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    try Thread.join t.thread with _ -> ()
  end
