type kind =
  | Ingest
  | Tick
  | Revision
  | Evict
  | Client_connect
  | Client_eof
  | Client_drop
  | Codec_fallback
  | Bad_line
  | Session_start
  | Session_end

let kind_code = function
  | Ingest -> 0
  | Tick -> 1
  | Revision -> 2
  | Evict -> 3
  | Client_connect -> 4
  | Client_eof -> 5
  | Client_drop -> 6
  | Codec_fallback -> 7
  | Bad_line -> 8
  | Session_start -> 9
  | Session_end -> 10

let kind_of_code = function
  | 0 -> Ingest
  | 1 -> Tick
  | 2 -> Revision
  | 3 -> Evict
  | 4 -> Client_connect
  | 5 -> Client_eof
  | 6 -> Client_drop
  | 7 -> Codec_fallback
  | 8 -> Bad_line
  | 9 -> Session_start
  | _ -> Session_end

let kind_name = function
  | Ingest -> "ingest"
  | Tick -> "tick"
  | Revision -> "revision"
  | Evict -> "evict"
  | Client_connect -> "client_connect"
  | Client_eof -> "client_eof"
  | Client_drop -> "client_drop"
  | Codec_fallback -> "codec_fallback"
  | Bad_line -> "bad_line"
  | Session_start -> "session_start"
  | Session_end -> "session_end"

type event = { kind : kind; t_ns : int; a : int; b : int; c : int }

(* Flat integer ring, [width] slots per record — the derivation
   recorder's storage discipline (PR 7) at a fixed size: recording is a
   handful of int stores into a preallocated array, eviction is the
   write index wrapping. *)
let width = 5

let on = ref true
let enable () = on := true
let disable () = on := false
let is_enabled () = !on

let t0 = Clock.now_ns ()
let since_start () = Int64.to_int (Int64.sub (Clock.now_ns ()) t0)

(* The recorder is shared by the evaluator, per-connection reader
   threads (codec fallbacks, bad lines) and — in principle — pool
   workers, so the ring state is mutex-protected; sites fire at
   burst/tick granularity, never per event, so the lock is uncontended
   in practice. *)
let mutex = Mutex.create ()
let capacity = ref 4096
let ring = ref (Array.make (4096 * width) 0)
let next = ref 0  (* records ever written; slot = next mod capacity *)

let set_capacity n =
  if n <= 0 then invalid_arg "Flight.set_capacity: capacity must be positive";
  Mutex.protect mutex (fun () ->
      capacity := n;
      ring := Array.make (n * width) 0;
      next := 0)

let reset () =
  Mutex.protect mutex (fun () ->
      Array.fill !ring 0 (Array.length !ring) 0;
      next := 0)

let record kind ?(a = 0) ?(b = 0) ?(c = 0) () =
  if !on then begin
    let t = since_start () in
    Mutex.protect mutex (fun () ->
        let base = !next mod !capacity * width in
        let r = !ring in
        r.(base) <- kind_code kind;
        r.(base + 1) <- t;
        r.(base + 2) <- a;
        r.(base + 3) <- b;
        r.(base + 4) <- c;
        incr next)
  end

let total () = !next

let events () =
  Mutex.protect mutex (fun () ->
      let n = min !next !capacity in
      let first = !next - n in
      List.init n (fun i ->
          let base = (first + i) mod !capacity * width in
          let r = !ring in
          {
            kind = kind_of_code r.(base);
            t_ns = r.(base + 1);
            a = r.(base + 2);
            b = r.(base + 3);
            c = r.(base + 4);
          }))

(* Kind-specific operand names, so the dump reads without a legend. *)
let operand_names = function
  | Ingest -> ("items", "late", "dropped")
  | Tick -> ("now", "queries", "buckets")
  | Revision -> ("bucket", "from", "replays")
  | Evict -> ("bucket", "entities", "last_seen")
  | Client_connect | Client_eof -> ("slot", "b", "c")
  | Client_drop -> ("slot", "write_failed", "c")
  | Codec_fallback | Bad_line -> ("bytes", "b", "c")
  | Session_start | Session_end -> ("a", "b", "c")

let event_to_json e =
  let na, nb, nc = operand_names e.kind in
  let operands =
    List.filter_map
      (fun (name, v) -> if name = "b" || name = "c" then None else Some (name, Json.Num (float_of_int v)))
      [ (na, e.a); (nb, e.b); (nc, e.c) ]
  in
  Json.Obj
    ([
       ("kind", Json.Str (kind_name e.kind));
       ("t_ms", Json.Num (float_of_int e.t_ns /. 1e6));
     ]
    @ operands)

let to_json () =
  let evs = events () in
  Json.Obj
    [
      ("schema", Json.Str "adg-flight/1");
      ("capacity", Json.Num (float_of_int !capacity));
      ("recorded", Json.Num (float_of_int !next));
      ("dropped", Json.Num (float_of_int (max 0 (!next - !capacity))));
      ("events", Json.List (List.map event_to_json evs));
    ]

let write file = Json.write_file ~indent:true file (to_json ())

let armed : string option ref = ref None

let arm file =
  let first = !armed = None in
  armed := Some file;
  if first then
    at_exit (fun () ->
        match !armed with
        | Some file -> ( try write file with Sys_error _ -> ())
        | None -> ())
