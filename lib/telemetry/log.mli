(** Leveled structured logger.

    The serving path needs one logging discipline instead of scattered
    [Printf.eprintf]: every record carries a level, a component tag, a
    message and typed key–value fields, and is rendered to a human sink
    (stderr by default) and/or a JSON-lines sink. Unlike the metrics and
    trace probes, logging is always on — it is gated by {!set_level},
    not by the telemetry enable bit — because an operator reading a dead
    session's stderr must not depend on a flag having been passed.

    Thread-safety: a single mutex serialises rendering and the channel
    writes, so records from reader threads, the evaluator and worker
    domains interleave whole-line; there is no per-domain buffering (log
    volume is per-connection/per-tick, not per-event, so contention is
    not a concern the way it is for metrics' [with_local]). *)

type level = Debug | Info | Warn | Error

val set_level : level -> unit
(** Records below this level are dropped before rendering. Default
    {!Info}. *)

val level : unit -> level

val level_of_string : string -> level option
(** ["debug" | "info" | "warn" | "error"] (case-insensitive). *)

val level_to_string : level -> string

(** Typed field values; rendered as [key=value] in the human sink and as
    native JSON types in the JSON-lines sink. *)
type value = Str of string | Int of int | Float of float | Bool of bool

val set_human : out_channel option -> unit
(** The human-readable sink (default [Some stderr]); [None] silences it. *)

val set_json : out_channel option -> unit
(** A JSON-lines sink: one [{"ts":…,"level":…,"src":…,"msg":…,…}]
    object per record, machine-parseable with {!Json.of_string}. Default
    [None]. *)

val log : level -> src:string -> ?fields:(string * value) list -> string -> unit

val debug : src:string -> ?fields:(string * value) list -> string -> unit
val info : src:string -> ?fields:(string * value) list -> string -> unit
val warn : src:string -> ?fields:(string * value) list -> string -> unit
val error : src:string -> ?fields:(string * value) list -> string -> unit

val emitted : unit -> int
(** Records rendered (not dropped) since process start. *)
