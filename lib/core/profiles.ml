type t = {
  model : string;
  scheme : Prompt.scheme;
  rename_rate : float;
  transpose_rate : float;
  drop_rate : float;
  redundant_rate : float;
  condition_drop_rate : float;
  extra_rule_rate : float;
  pinned : (string * Error_model.mutation list) list;
}

let models = [ "GPT-4"; "GPT-4o"; "o1"; "Llama-3"; "Mistral"; "Gemma-2" ]

let reported_scheme = function
  | "GPT-4o" | "Mistral" | "Gemma-2" -> Prompt.Chain_of_thought
  | _ -> Prompt.Few_shot

(* Scripted headline errors per model (Section 5.2). *)
let pinned_gpt4 =
  [
    ("trawling",
     [ Error_model.Replace_reference ("trawlSpeed", "towingSpeed");
       Error_model.Replace_reference ("trawlingMovement", "fishingPattern");
       Error_model.Extra_rule; Error_model.Extra_rule; Error_model.Add_redundant ]);
  ]

let pinned_gpt4o =
  [
    ("loitering", [ Error_model.Confuse_union ]);
    ("movingSpeed", [ Error_model.Wrong_kind ]);
    ("trawling", [ Error_model.Add_redundant ]);
    ("pilotBoarding", [ Error_model.Replace_reference ("lowSpeed", "slowMotion") ]);
    ("drifting", [ Error_model.Drop_rule 2 ]);
  ]

let pinned_o1 =
  [
    ("trawling", [ Error_model.Add_redundant ]);
    (* The constant the paper had to rename back to 'fishing' appears in
       the area conditions, i.e. in the trawlSpeed helper. *)
    ("trawlSpeed", [ Error_model.Rename ("fishing", "trawlingArea") ]);
    ("loitering", [ Error_model.Rename ("farFromPorts", "awayFromPorts") ]);
    ("pilotBoarding", [ Error_model.Extra_rule ]);
  ]

let pinned_llama3 =
  [
    ("loitering", [ Error_model.Confuse_union ]);
    ("trawling", [ Error_model.Add_redundant ]);
    ("pilotBoarding", [ Error_model.Replace_reference ("pilotSpeed", "boardingSpeed") ]);
    ("highSpeedNearCoast", [ Error_model.Drop_rule 2 ]);
  ]

let pinned_mistral =
  [
    ("trawling",
     [ Error_model.Replace_reference ("trawlSpeed", "netSpeed");
       Error_model.Replace_reference ("trawlingMovement", "trawlPattern");
       Error_model.Transpose_args "intersect_all"; Error_model.Extra_rule;
       Error_model.Extra_rule ]);
    ("loitering", [ Error_model.Confuse_union ]);
  ]

let pinned_gemma2 =
  [
    ("trawling", [ Error_model.Wrong_kind ]);
    ("loitering",
     [ Error_model.Confuse_union; Error_model.Drop_literal "relative_complement_all" ]);
    ("searchAndRescue", [ Error_model.Replace_reference ("sarMovement", "sarPattern") ]);
  ]

(* Profiles of the reported schemes; the other scheme of each model is
   derived by [find] with the same rates plus handicap noise. *)
let reported_table =
  let p model rename_rate transpose_rate drop_rate redundant_rate condition_drop_rate
      extra_rule_rate pinned =
    { model; scheme = reported_scheme model; rename_rate; transpose_rate; drop_rate;
      redundant_rate; condition_drop_rate; extra_rule_rate; pinned }
  in
  [
    (* Top three models avoid the mutation kinds that break recognition
       structurally (transpositions, condition drops), matching the
       paper's observation that they got the simple FVPs right. *)
    p "GPT-4" 0.65 0.20 0.45 0.40 0.35 0.55 pinned_gpt4;
    p "GPT-4o" 0.36 0.00 0.08 0.30 0.00 0.08 pinned_gpt4o;
    p "o1" 0.30 0.00 0.05 0.30 0.00 0.00 pinned_o1;
    p "Llama-3" 0.52 0.00 0.26 0.45 0.00 0.38 pinned_llama3;
    p "Mistral" 0.70 0.25 0.55 0.30 0.45 0.70 pinned_mistral;
    p "Gemma-2" 0.75 0.30 0.60 0.30 0.50 0.75 pinned_gemma2;
  ]

let find ~model ~scheme =
  match List.find_opt (fun p -> String.equal p.model model) reported_table with
  | Some p -> { p with scheme }
  | None -> raise Not_found

let all =
  List.concat_map
    (fun model ->
      [ find ~model ~scheme:Prompt.Few_shot; find ~model ~scheme:Prompt.Chain_of_thought ])
    models

(* Identifiers (functors and constants) occurring in a definition. *)
let identifiers (d : Rtec.Ast.definition) =
  let rec go acc t =
    match t with
    | Rtec.Term.Var _ | Rtec.Term.Int _ | Rtec.Term.Real _ -> acc
    | Rtec.Term.Atom a -> a :: acc
    | Rtec.Term.Compound (f, args) -> List.fold_left go (f :: acc) args
  in
  List.fold_left
    (fun acc (r : Rtec.Ast.rule) -> List.fold_left go acc (r.head :: r.body))
    [] d.rules
  |> List.sort_uniq String.compare

(* The index of the last terminatedAt rule: stochastic omissions hit
   termination conditions (inflating intervals) rather than the rule that
   creates the activity, which matches the gradual errors of the paper's
   qualitative assessment. *)
let last_termination_index (d : Rtec.Ast.definition) =
  let rec go i best = function
    | [] -> best
    | r :: rest ->
      let best =
        match Rtec.Ast.kind_of_rule r with
        | Some (Rtec.Ast.Terminated _) -> Some i
        | _ -> best
      in
      go (i + 1) best rest
  in
  go 0 None d.rules

(* Names a pinned mutation already manipulates: stochastic renames must
   not mask them. *)
let pinned_names pinned =
  List.concat_map
    (fun m ->
      match m with
      | Error_model.Rename (a, b) | Error_model.Replace_reference (a, b) -> [ a; b ]
      | _ -> [])
    pinned

let stochastic ~synonyms ~rng ~latent ~ids ~profile ~protected =
  let roll rate = Maritime.Scenario.Rng.float rng 1.0 < rate in
  let renames =
    List.filter_map
      (fun (canonical, variant) ->
        if
          List.mem canonical ids
          && (not (List.mem canonical protected))
          && roll profile.rename_rate
        then Some (Error_model.Rename (canonical, variant))
        else None)
      synonyms
  in
  let transposes =
    if List.mem "areaType" ids && roll profile.transpose_rate then
      [ Error_model.Transpose_args "areaType" ]
    else []
  in
  let drops =
    match last_termination_index latent with
    | Some i when roll profile.drop_rate -> [ Error_model.Drop_rule i ]
    | _ -> []
  in
  let condition_drops =
    let n = List.length latent.Rtec.Ast.rules in
    if n > 0 && roll profile.condition_drop_rate then
      [ Error_model.Drop_condition (Maritime.Scenario.Rng.int rng n) ]
    else []
  in
  let extras = if roll profile.extra_rule_rate then [ Error_model.Extra_rule ] else [] in
  let redundant = if roll profile.redundant_rate then [ Error_model.Add_redundant ] else [] in
  renames @ transposes @ drops @ condition_drops @ extras @ redundant

(* Handicap rates for the model's non-reported scheme: extra noise on top
   of the reported scheme's mutations, so that the reported scheme wins
   best-of-scheme selection. *)
let handicap_profile profile =
  { profile with rename_rate = 0.30; transpose_rate = 0.15; drop_rate = 0.35;
    redundant_rate = 0.30; condition_drop_rate = 0.25; extra_rule_rate = 0.40 }

let mutations_for ?(domain = Maritime.Domain_def.domain) profile ~activity =
  let entry = Domain.entry domain activity in
  let latent = Rtec.Parser.parse_definition ~name:activity entry.source in
  let ids = identifiers latent in
  let pinned =
    match List.assoc_opt activity profile.pinned with Some ms -> ms | None -> []
  in
  let protected = pinned_names pinned in
  (* Base noise depends only on (model, activity): both schemes share it. *)
  let base_rng = Maritime.Scenario.Rng.create (Hashtbl.hash (profile.model, activity)) in
  let synonyms = domain.Domain.synonyms in
  let base = stochastic ~synonyms ~rng:base_rng ~latent ~ids ~profile ~protected in
  let extra =
    if profile.scheme = reported_scheme profile.model then []
    else
      let rng =
        Maritime.Scenario.Rng.create
          (Hashtbl.hash (profile.model, Prompt.scheme_name profile.scheme, activity, "handicap"))
      in
      stochastic ~synonyms ~rng ~latent ~ids ~profile:(handicap_profile profile) ~protected
  in
  (* Pinned mutations last: they must not be masked by stochastic ones. *)
  base @ extra @ pinned

let backend ?(domain = Maritime.Domain_def.domain) profile =
  Backend.simulated ~domain ~model:profile.model ~scheme:profile.scheme
    ~mutations_for:(fun ~activity -> mutations_for ~domain profile ~activity)
    ()

(* Zero-shot ablation: without the prompt-F examples the models often
   answer in prose, or produce rules with far heavier errors — the paper
   found zero-shot results poor enough to exclude the scheme from the
   pipeline. We simulate this by replacing a large fraction of the
   formalisations with a natural-language reply (unusable: similarity 0)
   and degrading the rest with handicap-level noise. *)
let zero_shot_backend ?(domain = Maritime.Domain_def.domain) profile =
  let prose_rate = Float.min 0.8 (0.35 +. profile.drop_rate) in
  let complete ~history ~prompt =
    match Prompt.extract_description prompt with
    | None -> "Understood."
    | Some description ->
      let seed = Hashtbl.hash (profile.model, "zero-shot", description) in
      let rng = Maritime.Scenario.Rng.create seed in
      if Maritime.Scenario.Rng.float rng 1.0 < prose_rate then
        "To detect this activity, one would monitor the relevant input \
         events and consider the activity to be ongoing between a starting \
         and an ending condition, as described above."
      else
        let handicapped =
          { (handicap_profile profile) with scheme = profile.scheme }
        in
        let inner = backend ~domain handicapped in
        Backend.complete inner ~history ~prompt
  in
  Backend.make ~model:profile.model ~scheme:profile.scheme ~complete
