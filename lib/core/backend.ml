type t = {
  model : string;
  scheme : Prompt.scheme;
  complete : history:(string * string) list -> prompt:string -> string;
}

let make ~model ~scheme ~complete = { model; scheme; complete }
let model b = b.model
let scheme b = b.scheme
let complete b = b.complete
let label b = b.model ^ Prompt.scheme_symbol b.scheme

let find_gold_by_description domain description =
  List.find_opt
    (fun (e : Domain.entry) ->
      (* Prompt G quotes the entry's description verbatim. *)
      String.equal (String.trim e.nl) (String.trim description))
    domain.Domain.entries

let simulated ?(domain = Maritime.Domain_def.domain) ~model ~scheme ~mutations_for () =
  let complete ~history:_ ~prompt =
    match Prompt.extract_description prompt with
    | None -> "Understood."
    | Some description -> (
      match find_gold_by_description domain description with
      | None -> "% I could not identify the requested activity."
      | Some entry ->
        let latent = Rtec.Parser.parse_definition ~name:entry.name entry.source in
        let mutations = mutations_for ~activity:entry.name in
        let generated = Error_model.apply_all mutations latent in
        Printf.sprintf "%% The activity '%s' in the language of RTEC:\n%s" entry.name
          (Rtec.Printer.definition_to_string generated))
  in
  { model; scheme; complete }
