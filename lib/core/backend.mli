(** LLM backends.

    A backend answers prompts; the generation session is backend-agnostic.
    In the paper the backends are the OpenAI/Groq APIs; in this
    reproduction they are deterministic simulators that perturb a latent
    correct formalisation with a per-model error profile (see DESIGN.md,
    substitutions). The interface is the seam where a real HTTP backend
    would plug in.

    The type is abstract: construct backends with {!make} (or
    {!simulated}) and query them with the accessors. This keeps the seam
    stable — middleware such as {!Profiles.zero_shot_backend} wraps a
    backend by building a new one around its {!complete} function, and a
    future HTTP implementation changes no caller. *)

type t

val make :
  model:string ->
  scheme:Prompt.scheme ->
  complete:(history:(string * string) list -> prompt:string -> string) ->
  t
(** [make ~model ~scheme ~complete] is a backend that answers prompts
    with [complete], where [history] holds the previous (prompt, reply)
    exchanges of the session. *)

val model : t -> string
(** The model name, e.g. ["o1"]. *)

val scheme : t -> Prompt.scheme
(** The prompting scheme the backend expects. *)

val complete : t -> history:(string * string) list -> prompt:string -> string
(** [complete b ~history ~prompt] answers [prompt] given the session
    [history] of previous (prompt, reply) exchanges. *)

val label : t -> string
(** E.g. ["o1" ^ square] — model plus prompting-scheme symbol. *)

val simulated :
  ?domain:Domain.t ->
  model:string ->
  scheme:Prompt.scheme ->
  mutations_for:(activity:string -> Error_model.mutation list) ->
  unit ->
  t
(** A simulated backend. On a prompt-G request it identifies the activity
    by its quoted description, recalls the gold formalisation, applies the
    profile's mutations and renders the result to RTEC text (prefixed, as
    chat models do, with a one-line remark that the parser skips as a
    comment). Other prompts are acknowledged. *)
