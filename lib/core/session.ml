type generated_definition = {
  activity : string;
  raw : string;
  parsed : (Rtec.Ast.definition, string) result;
}

type t = {
  backend_label : string;
  model : string;
  scheme : Prompt.scheme;
  transcript : (string * string) list;
  definitions : generated_definition list;
}

let m_calls = Telemetry.Metrics.counter "backend.calls"
let m_prompt_tokens = Telemetry.Metrics.counter "backend.tokens.prompt"
let m_completion_tokens = Telemetry.Metrics.counter "backend.tokens.completion"
let h_call_ns = Telemetry.Metrics.histogram "backend.call_ns"

(* The usual ~4-characters-per-token rule of thumb; the simulated
   backends have no real tokeniser, but the counters keep the same shape
   a live LLM deployment would report. *)
let approx_tokens s = (String.length s + 3) / 4

let run ?(domain = Maritime.Domain_def.domain) ?activities (backend : Backend.t) =
  let activities =
    match activities with
    | Some a -> a
    | None -> List.map (fun (e : Domain.entry) -> e.name) domain.Domain.entries
  in
  let history = ref [] in
  let ask prompt =
    let reply =
      if not (Telemetry.Metrics.is_enabled () || Telemetry.Trace.is_enabled ()) then
        Backend.complete backend ~history:(List.rev !history) ~prompt
      else begin
        let sp = Telemetry.Trace.start "llm.call" in
        let t0 = Telemetry.Clock.now_ns () in
        let reply = Backend.complete backend ~history:(List.rev !history) ~prompt in
        let elapsed = Int64.sub (Telemetry.Clock.now_ns ()) t0 in
        Telemetry.Metrics.incr m_calls;
        Telemetry.Metrics.incr m_prompt_tokens ~by:(approx_tokens prompt);
        Telemetry.Metrics.incr m_completion_tokens ~by:(approx_tokens reply);
        Telemetry.Metrics.observe h_call_ns (Int64.to_float elapsed);
        Telemetry.Trace.finish sp
          ~args:
            [
              ("model", Telemetry.Trace.Str (Backend.model backend));
              ("prompt_tokens", Telemetry.Trace.Int (approx_tokens prompt));
              ("completion_tokens", Telemetry.Trace.Int (approx_tokens reply));
            ];
        reply
      end
    in
    history := (prompt, reply) :: !history;
    reply
  in
  List.iter (fun p -> ignore (ask p)) (Prompt.preamble ~domain (Backend.scheme backend));
  let definitions =
    List.map
      (fun activity ->
        let entry = Domain.entry domain activity in
        let reply = ask (Prompt.generation ~activity ~description:entry.nl) in
        let parsed =
          match Rtec.Parser.parse_clauses_result reply with
          | Ok rules -> Ok { Rtec.Ast.name = activity; rules }
          | Error e -> Error e
        in
        { activity; raw = reply; parsed })
      activities
  in
  {
    backend_label = Backend.label backend;
    model = Backend.model backend;
    scheme = Backend.scheme backend;
    transcript = List.rev !history;
    definitions;
  }

let event_description t =
  List.filter_map
    (fun d -> match d.parsed with Ok def -> Some def | Error _ -> None)
    t.definitions

let parse_failures t =
  List.filter_map
    (fun d -> match d.parsed with Ok _ -> None | Error e -> Some (d.activity, e))
    t.definitions
