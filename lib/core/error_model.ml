open Rtec

type mutation =
  | Rename of string * string
  | Transpose_args of string
  | Confuse_union
  | Drop_literal of string
  | Drop_rule of int
  | Drop_condition of int
  | Add_redundant
  | Extra_rule
  | Wrong_kind
  | Replace_reference of string * string

(* The maritime naming lexicon, re-exported for convenience; domain-aware
   callers should use the [synonyms] field of their [Domain.t] instead. *)
let synonyms = Maritime.Domain_def.synonyms

let variant_of name =
  List.find_opt (fun (c, _) -> String.equal c name) synonyms |> Option.map snd

let canonical_of name =
  List.find_opt (fun (_, v) -> String.equal v name) synonyms |> Option.map fst

let rec rename_term old_name new_name t =
  match t with
  | Term.Var _ | Term.Int _ | Term.Real _ -> t
  | Term.Atom a -> if String.equal a old_name then Term.Atom new_name else t
  | Term.Compound (f, args) ->
    let f = if String.equal f old_name then new_name else f in
    Term.Compound (f, List.map (rename_term old_name new_name) args)

let rec transpose functor_ t =
  match t with
  | Term.Var _ | Term.Atom _ | Term.Int _ | Term.Real _ -> t
  | Term.Compound (f, args) ->
    let args = List.map (transpose functor_) args in
    if String.equal f functor_ then Term.Compound (f, List.rev args)
    else Term.Compound (f, args)

let rec confuse t =
  match t with
  | Term.Compound ("union_all", args) -> Term.Compound ("intersect_all", List.map confuse args)
  | Term.Compound (f, args) -> Term.Compound (f, List.map confuse args)
  | _ -> t

(* Rename a fluent only where it appears inside body holdsAt/holdsFor
   literals, producing a dangling reference (error category 3). *)
let replace_reference old_name new_name (r : Ast.rule) =
  let rewrite literal =
    let positive, atom = Term.strip_not literal in
    let atom' =
      match atom with
      | Term.Compound (("holdsAt" | "holdsFor") as p, [ fv; t ]) -> (
        match Term.as_fvp fv with
        | Some (f, v) when String.equal (Term.functor_of f) old_name ->
          Term.Compound (p, [ Term.eq (rename_term old_name new_name f) v; t ])
        | _ -> atom)
      | _ -> atom
    in
    if positive then atom' else Term.neg atom'
  in
  { r with Ast.body = List.map rewrite r.Ast.body }

(* The inverse wrong-kind error: a simple fluent re-expressed as a (wrong)
   statically determined one, as GPT-4o did for 'movingSpeed'. Every value
   of the fluent is equated with the intervals of 'lowSpeed'. *)
let wrong_kind_simple (d : Ast.definition) =
  let heads =
    List.filter_map
      (fun r ->
        match Ast.kind_of_rule r with
        | Some (Ast.Initiated { fluent; value; _ }) -> Some (fluent, value)
        | _ -> None)
      d.rules
  in
  let distinct =
    List.sort_uniq (fun (f1, v1) (f2, v2) ->
        let c = Term.compare f1 f2 in
        if c <> 0 then c else Term.compare v1 v2)
      heads
  in
  let rules =
    List.map
      (fun (fluent, value) ->
        let vessel = match Term.args fluent with v :: _ -> v | [] -> Term.Var "Vessel" in
        Ast.rule
          (Term.app "holdsFor" [ Term.eq fluent value; Term.Var "I" ])
          [
            Term.app "holdsFor"
              [ Term.eq (Term.app "lowSpeed" [ vessel ]) (Term.Atom "true"); Term.Var "I1" ];
            Term.app "intersect_all" [ Term.list_ [ Term.Var "I1" ]; Term.Var "I" ];
          ])
      distinct
  in
  if rules = [] then d else { d with rules }

(* A plausible-but-wrong simple-fluent re-expression of a statically
   determined definition: initiate on any position signal while the first
   constituent FVP holds; terminate on a communication gap. *)
let wrong_kind (d : Ast.definition) =
  match Ast.all_rules [ d ] with
  | { Ast.head = Term.Compound (("initiatedAt" | "terminatedAt"), _); _ } :: _ ->
    wrong_kind_simple d
  | { Ast.head = Term.Compound ("holdsFor", [ fv; _ ]); body; _ } :: _ -> (
    match (Term.as_fvp fv, body) with
    | Some (fluent, value), Term.Compound ("holdsFor", [ first_fv; _ ]) :: _ ->
      let t = Term.Var "T" in
      let vessel =
        match Term.args fluent with v :: _ -> v | [] -> Term.Var "Vessel"
      in
      let init =
        Ast.rule
          (Term.app "initiatedAt" [ Term.eq fluent value; t ])
          [
            Term.app "happensAt"
              [ Term.app "velocity"
                  [ vessel; Term.Var "Speed"; Term.Var "CoG"; Term.Var "Heading" ];
                t ];
            Term.app "holdsAt" [ first_fv; t ];
          ]
      in
      let terminate =
        Ast.rule
          (Term.app "terminatedAt" [ Term.eq fluent value; t ])
          [ Term.app "happensAt" [ Term.app "gap_start" [ vessel ]; t ] ]
      in
      { d with rules = [ init; terminate ] }
    | _ -> d)
  | _ -> d

(* Redundancy by restating a condition the rule already has: domain
   independent and detection-neutral (conjunction is idempotent), while
   the metric still pays the unmatched-condition penalty. *)
let redundant_condition (r : Ast.rule) =
  match Ast.kind_of_rule r with
  | Some (Ast.Initiated _ | Ast.Terminated _) -> (
    match List.rev r.Ast.body with
    | last :: _ -> { r with Ast.body = r.Ast.body @ [ last ] }
    | [] -> r)
  | Some (Ast.Holds_for _) -> (
    (* Duplicate the first holdsFor condition under a fresh interval
       variable, inserted right after it so dataflow stays valid. *)
    match r.Ast.body with
    | (Term.Compound ("holdsFor", [ fv; _ ]) as first) :: rest ->
      let used = List.concat_map Term.vars (r.Ast.head :: r.Ast.body) in
      let rec fresh i =
        let candidate = if i = 0 then "Iredundant" else Printf.sprintf "Iredundant%d" i in
        if List.mem candidate used then fresh (i + 1) else candidate
      in
      let extra = Term.app "holdsFor" [ fv; Term.Var (fresh 0) ] in
      { r with Ast.body = first :: extra :: rest }
    | _ -> r)
  | None -> r

(* A spurious additional rule for the definition's FVP: the over-complete
   case an LLM adds "for safety". Restating an existing rule is domain
   independent and detection-neutral (the recognised intervals are
   unchanged), while Definition 4.14 still pays the unmatched-rule
   penalty. *)
let extra_rule (d : Ast.definition) =
  match List.rev d.rules with
  | last :: _ -> { d with rules = d.rules @ [ last ] }
  | [] -> d

let drop_condition i (d : Ast.definition) =
  let rules =
    List.mapi
      (fun j (r : Ast.rule) ->
        if j <> i || List.length r.body < 2 then r
        else
          match List.rev r.body with
          | _ :: kept -> { r with Ast.body = List.rev kept }
          | [] -> r)
      d.rules
  in
  { d with rules }

let apply mutation (d : Ast.definition) =
  match mutation with
  | Rename (old_name, new_name) ->
    (match Ast.map_terms (rename_term old_name new_name) [ d ] with
    | [ d' ] -> d'
    | _ -> d)
  | Transpose_args functor_ ->
    (match Ast.map_terms (transpose functor_) [ d ] with [ d' ] -> d' | _ -> d)
  | Confuse_union -> (
    match Ast.map_terms confuse [ d ] with [ d' ] -> d' | _ -> d)
  | Drop_literal functor_ ->
    let keep literal =
      let _, atom = Term.strip_not literal in
      not (String.equal (Term.functor_of atom) functor_)
    in
    let rules =
      List.filter_map
        (fun (r : Ast.rule) ->
          let body = List.filter keep r.body in
          (* A simple-fluent rule whose triggering event was dropped is
             dropped entirely, as an LLM omitting that case would do. *)
          match (r.body, body) with
          | _ :: _, [] -> None
          | _ -> Some { r with Ast.body })
        d.rules
    in
    { d with rules }
  | Drop_rule i -> { d with rules = List.filteri (fun j _ -> j <> i) d.rules }
  | Drop_condition i -> drop_condition i d
  | Extra_rule -> extra_rule d
  | Add_redundant -> (
    match d.rules with
    | first :: rest -> { d with rules = redundant_condition first :: rest }
    | [] -> d)
  | Wrong_kind -> wrong_kind d
  | Replace_reference (old_name, new_name) ->
    { d with rules = List.map (replace_reference old_name new_name) d.rules }

let apply_all mutations d = List.fold_left (fun d m -> apply m d) d mutations
