(** Derivation provenance: proof-tree capture, FP/FN attribution and the
    [explain] pipeline.

    Built on the gated recorder of {!Rtec.Derivation}: {!recognise} runs
    ordinary (optionally sharded) recognition with the recorder on and
    returns the result together with its derivation records; {!Store}
    indexes those records per fluent-value pair; {!Diff} recognises a gold
    and a generated event description over the same stream, computes the
    diverging (FP/FN) time-points per activity and attributes every
    divergence to the responsible rule and body condition — positive
    provenance (which generated rule fired, and on what grounds) for false
    positives, negative provenance ({!Rtec.Engine.Diagnosis}: the first
    failing condition of the twin rule) for false negatives; {!Export}
    renders proof trees through the telemetry JSON / Chrome-trace
    infrastructure. *)

module Store : sig
  type t

  type transition = {
    time : int;
    kind : Rtec.Derivation.transition_kind;
    source : Rtec.Derivation.source;
  }

  type derived = {
    rule : string;
    spans : (int * int) list;
    steps : Rtec.Derivation.step list;
        (** empty when the store was built from a steps-free decode (the
            default in {!recognise}); attribution never reads them *)
  }

  val of_events : Rtec.Derivation.event list -> t
  (** Indexes the records per FVP, deduplicating transitions re-derived by
      overlapping windows (same time, kind and rule) and sorting them by
      time. *)

  val fvps : t -> Rtec.Engine.fvp list
  (** All FVPs with at least one record, in canonical order. *)

  val transitions : t -> Rtec.Engine.fvp -> transition list
  (** Ascending by time. *)

  val inits : t -> Rtec.Engine.fvp -> (int * string) list
  (** Rule-derived initiations [(time, rule)], ascending; carry/initially
      seeds are excluded (they restate an earlier window's derivation). *)

  val terms : t -> Rtec.Engine.fvp -> (int * string) list
  (** Rule- or pattern-derived terminations [(time, rule)], ascending. *)

  val derived : t -> Rtec.Engine.fvp -> derived list
  (** Accepted [holdsFor] solutions of statically determined fluents. *)
end

type run = {
  result : Rtec.Engine.result;
  stats : Runtime.stats;
  events : Rtec.Derivation.event list Lazy.t;
      (** the full decode with reconstructed proof steps; force it only
          when proof trees are needed, and before the next {!recognise}
          resets the recorder buffer *)
  store : Store.t;
}

val recognise :
  ?config:Runtime.config ->
  ?sampling:Rtec.Derivation.sampling ->
  event_description:Rtec.Ast.t ->
  knowledge:Rtec.Knowledge.t ->
  stream:Rtec.Stream.t ->
  unit ->
  (run, string) Result.t
(** {!Runtime.run} with the derivation recorder enabled for the duration
    of the call (resetting the buffer first, applying [sampling] — default
    {!Rtec.Derivation.Always}, restored on exit — and restoring the
    previous gate state after). The recognition result is bit-identical
    to a run without recording. *)

module Diff : sig
  type kind = Fp | Fn

  type condition = {
    index : int;  (** 1-based position in the blamed rule's body *)
    text : string;  (** the condition as written in the rule *)
    grounded : string;  (** its grounding at the diagnosed time-point *)
  }

  type attribution = {
    activity : string * int;  (** fluent indicator *)
    fvp : Rtec.Engine.fvp;
    kind : kind;
    span : int * int;  (** the diverging maximal sub-interval *)
    points : int;  (** time-points in [span] *)
    anchor : int;  (** time-point the rules were diagnosed at *)
    rule : string;  (** responsible rule id (possibly ["missing:<id>"]) *)
    condition : condition option;
        (** the diverging body condition; [None] when the divergence is a
            whole missing rule or could not be narrowed further *)
    note : string;  (** human-readable one-line justification *)
  }

  type row = {
    row_activity : string * int;
    row_rule : string;
    row_condition : condition option;
    fp_points : int;
    fn_points : int;
    fp_spans : int;
    fn_spans : int;
  }

  type activity_totals = {
    act : string * int;
    matched_points : int;
    act_fp_points : int;
    act_fn_points : int;
  }

  type report = {
    attributions : attribution list;
    rows : row list;  (** the blame table: one row per (activity, rule, condition) *)
    activities : activity_totals list;  (** every activity, diverging or not *)
    total_matched : int;
    total_fp : int;
    total_fn : int;
  }

  val diff :
    ?config:Runtime.config ->
    ?sample:[ `Full | `One_in of int * int | `Divergent ] ->
    gold:Rtec.Ast.t ->
    generated:Rtec.Ast.t ->
    knowledge:Rtec.Knowledge.t ->
    stream:Rtec.Stream.t ->
    unit ->
    (report, string) Result.t
  (** Recognises both event descriptions over [stream] (with provenance),
      then attributes every FP/FN time-point of every activity defined by
      either description. [sample] (default [`Full]) restricts recording:
      [`One_in (n, seed)] keeps a deterministic 1-in-[n] window subset;
      [`Divergent] first locates diverging spans with a recorder-off
      probe run of both sides, then records only the windows able to
      touch one — attribution anchors outside those windows degrade to
      coarser notes, totals are unaffected. *)

  val report_to_json : report -> Telemetry.Json.t
  val pp_report : Format.formatter -> report -> unit
  val report_to_string : report -> string
end

module Export : sig
  val proof_to_json : Rtec.Derivation.event list -> Telemetry.Json.t
  (** Structured dump of the derivation records (schema
      ["adg-proof/1"]). *)

  val proof_to_chrome : Rtec.Derivation.event list -> Telemetry.Json.t
  (** Chrome trace_event rendering of the proof records: each activity is
      a track; transitions are instant events, [holdsFor] derivations and
      input fluents are complete ("X") events spanning their intervals —
      loadable in chrome://tracing / Perfetto next to the span traces of
      {!Telemetry.Trace}. *)
end
