module Ast = Rtec.Ast
module Term = Rtec.Term
module Interval = Rtec.Interval
module Engine = Rtec.Engine
module Derivation = Rtec.Derivation
module Json = Telemetry.Json

module FvpMap = Map.Make (struct
  type t = Engine.fvp

  let compare = Engine.compare_fvp
end)

let fvp_to_string (f, v) = Term.to_string f ^ "=" ^ Term.to_string v
let ind_to_string (name, arity) = Printf.sprintf "%s/%d" name arity

module Store = struct
  type transition = {
    time : int;
    kind : Derivation.transition_kind;
    source : Derivation.source;
  }

  type derived = { rule : string; spans : (int * int) list; steps : Derivation.step list }

  type entry = { mutable trans : transition list; mutable sd : derived list }

  type t = { entries : entry FvpMap.t }

  let source_label = function
    | Derivation.Rule { rule; _ } -> Some rule
    | Derivation.Pattern { rule; _ } -> Some rule
    | Derivation.Carry _ -> None

  let of_events events =
    let entries = ref FvpMap.empty in
    let entry fv =
      match FvpMap.find_opt fv !entries with
      | Some e -> e
      | None ->
        let e = { trans = []; sd = [] } in
        entries := FvpMap.add fv e !entries;
        e
    in
    List.iter
      (fun ev ->
        match ev with
        | Derivation.Query _ | Derivation.Input _ -> ()
        | Derivation.Transition { fluent; value; time; kind; source } ->
          let e = entry (fluent, value) in
          e.trans <- { time; kind; source } :: e.trans
        | Derivation.Derived { fluent; value; rule; spans; steps } ->
          let e = entry (fluent, value) in
          e.sd <- { rule; spans; steps } :: e.sd)
      events;
    (* Overlapping windows re-derive the same transitions: deduplicate by
       (time, kind, rule), keeping the earliest-recorded occurrence (the
       one with the derivation steps of the window that first saw it). *)
    let dedup trans =
      let seen = Hashtbl.create 64 in
      List.filter
        (fun t ->
          let key =
            ( t.time,
              (match t.kind with Derivation.Init -> 0 | Derivation.Term -> 1),
              Option.value ~default:"" (source_label t.source) )
          in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        trans
    in
    entries :=
      FvpMap.map
        (fun e ->
          {
            trans =
              List.stable_sort
                (fun a b -> compare a.time b.time)
                (dedup (List.rev e.trans));
            sd = List.rev e.sd;
          })
        !entries;
    { entries = !entries }

  let fvps t = FvpMap.fold (fun fv _ acc -> fv :: acc) t.entries [] |> List.rev
  let transitions t fv =
    match FvpMap.find_opt fv t.entries with None -> [] | Some e -> e.trans

  let filtered t fv kind =
    transitions t fv
    |> List.filter_map (fun tr ->
           if tr.kind = kind then
             match source_label tr.source with
             | Some rule -> Some (tr.time, rule)
             | None -> None
           else None)

  let inits t fv = filtered t fv Derivation.Init
  let terms t fv = filtered t fv Derivation.Term
  let derived t fv = match FvpMap.find_opt fv t.entries with None -> [] | Some e -> e.sd
end

type run = {
  result : Engine.result;
  stats : Runtime.stats;
  events : Derivation.event list Lazy.t;
  store : Store.t;
}

let recognise ?(config = Runtime.default) ?(sampling = Derivation.Always) ~event_description
    ~knowledge ~stream () =
  let was = Derivation.is_enabled () in
  Derivation.reset ();
  Derivation.set_sampling sampling;
  Derivation.enable ();
  Fun.protect
    ~finally:(fun () ->
      Derivation.set_sampling Derivation.Always;
      if not was then Derivation.disable ())
    (fun () ->
      match Runtime.run ~config ~event_description ~knowledge ~stream () with
      | Error e -> Result.Error e
      | Ok (result, stats) ->
        (* The store indexes the cheap steps-free decode; full proof
           trees (grounded per-condition trails) are reconstructed only
           if [events] is forced — and must be forced before the next
           [recognise] resets the recorder. *)
        let rules = Engine.labelled_rules event_description in
        let events = lazy (Derivation.events ~rules ()) in
        Ok { result; stats; events; store = Store.of_events (Derivation.events ()) })

module Diff = struct
  type kind = Fp | Fn

  type condition = { index : int; text : string; grounded : string }

  type attribution = {
    activity : string * int;
    fvp : Engine.fvp;
    kind : kind;
    span : int * int;
    points : int;
    anchor : int;
    rule : string;
    condition : condition option;
    note : string;
  }

  type row = {
    row_activity : string * int;
    row_rule : string;
    row_condition : condition option;
    fp_points : int;
    fn_points : int;
    fp_spans : int;
    fn_spans : int;
  }

  type activity_totals = {
    act : string * int;
    matched_points : int;
    act_fp_points : int;
    act_fn_points : int;
  }

  type report = {
    attributions : attribution list;
    rows : row list;
    activities : activity_totals list;
    total_matched : int;
    total_fp : int;
    total_fn : int;
  }

  (* --- twin matching: pair a rule with its counterpart on the other side --- *)

  let ordinal_of label =
    match String.rindex_opt label '#' with
    | None -> None
    | Some i -> int_of_string_opt (String.sub label (i + 1) (String.length label - i - 1))

  let same_kind a b =
    match (Ast.kind_of_rule a, Ast.kind_of_rule b) with
    | Some (Ast.Initiated _), Some (Ast.Initiated _)
    | Some (Ast.Terminated _), Some (Ast.Terminated _)
    | Some (Ast.Holds_for _), Some (Ast.Holds_for _) ->
      true
    | _ -> false

  let structural_score (a : Ast.rule) (b : Ast.rule) =
    let rec go acc xs ys =
      match (xs, ys) with
      | x :: xs, y :: ys -> go (if Term.equal x y then acc + 1 else acc) xs ys
      | _ -> acc
    in
    go 0 a.Ast.body b.Ast.body

  (* The counterpart of [rule] (labelled [label]) among the other side's
     rules for the same indicator and of the same kind: an identical label
     wins, then the same "#i" ordinal, then the structurally closest body. *)
  let twin diag ind ~label ~rule =
    let candidates =
      Engine.Diagnosis.rules_for diag ind |> List.filter (fun (_, r) -> same_kind r rule)
    in
    match List.find_opt (fun (l, _) -> String.equal l label) candidates with
    | Some c -> Some c
    | None -> (
      let by_ordinal =
        match ordinal_of label with
        | None -> None
        | Some o -> List.find_opt (fun (l, _) -> ordinal_of l = Some o) candidates
      in
      match by_ordinal with
      | Some c -> Some c
      | None ->
        List.fold_left
          (fun best ((_, r) as c) ->
            let s = structural_score rule r in
            match best with
            | Some (bs, _) when bs >= s -> best
            | _ -> Some (s, c))
          None candidates
        |> Option.map snd)

  let find_rule diag ind label =
    List.find_opt (fun (l, _) -> String.equal l label) (Engine.Diagnosis.rules_for diag ind)

  type fluent_shape = Shape_simple | Shape_sd | Shape_none

  let shape diag ind =
    match Engine.Diagnosis.rules_for diag ind with
    | [] -> Shape_none
    | (_, r) :: _ -> (
      match Ast.kind_of_rule r with
      | Some (Ast.Initiated _ | Ast.Terminated _) -> Shape_simple
      | Some (Ast.Holds_for _) -> Shape_sd
      | None -> Shape_none)

  (* --- attribution --- *)

  type side = { s_run : run; s_diag : Engine.Diagnosis.t }

  let condition_of_outcome = function
    | Engine.Diagnosis.Failing { index; literal; grounded } ->
      Some { index; text = Term.to_string literal; grounded = Term.to_string grounded }
    | _ -> None

  let latest_before entries ~before =
    List.fold_left
      (fun best ((t, _) as e) ->
        if t < before then
          match best with Some (bt, _) when bt >= t -> best | _ -> Some e
        else best)
      None entries

  let latest_in entries ~lo ~hi =
    List.fold_left
      (fun best ((t, _) as e) ->
        if t >= lo && t <= hi then
          match best with Some (bt, _) when bt >= t -> best | _ -> Some e
        else best)
      None entries

  let mk ~activity ~fvp ~kind ~span:((s, e) as span) ~anchor ~rule ~condition ~note =
    { activity; fvp; kind; span; points = max 0 (e - s); anchor; rule; condition; note }

  (* FP on a simple fluent: the generated description initiated the FVP
     and nothing terminated it across [s]. Anchor at the latest generated
     initiation, replay the gold twin rule there: its first failing
     condition is what the generated rule dropped or weakened. If the gold
     twin also initiates, the divergence is a missing termination: find
     the gold termination that closed the gold interval before [s] and
     replay its generated twin. *)
  let simple_fp ~gold ~gen ~activity ~fvp (s, e) =
    let mk = mk ~activity ~fvp ~kind:Fp ~span:(s, e) in
    match latest_before (Store.inits gen.s_run.store fvp) ~before:s with
    | None ->
      mk ~anchor:s ~rule:"?" ~condition:None
        ~note:"no recorded generated initiation before the span"
    | Some (t0, glabel) -> (
      match find_rule gen.s_diag activity glabel with
      | None ->
        mk ~anchor:t0 ~rule:glabel ~condition:None
          ~note:"initiating rule not found in the generated description"
      | Some (_, grule) -> (
        match twin gold.s_diag activity ~label:glabel ~rule:grule with
        | None ->
          mk ~anchor:t0 ~rule:glabel ~condition:None
            ~note:
              (Printf.sprintf "initiated by %s at %d; gold has no counterpart rule" glabel t0)
        | Some (gold_label, gold_rule) -> (
          match Engine.Diagnosis.rule_at gold.s_diag ~rule:gold_rule ~fvp ~time:t0 with
          | Engine.Diagnosis.Failing _ as o ->
            let c = condition_of_outcome o in
            mk ~anchor:t0 ~rule:glabel ~condition:c
              ~note:
                (Printf.sprintf "initiated by %s at %d; gold %s fails condition #%d there"
                   glabel t0 gold_label
                   (match c with Some c -> c.index | None -> 0))
          | Engine.Diagnosis.Derivable -> (
            (* gold initiated too: a gold termination must have closed the
               interval before [s] that the generated description missed *)
            match latest_in (Store.terms gold.s_run.store fvp) ~lo:t0 ~hi:(s - 1) with
            | None ->
              mk ~anchor:t0 ~rule:glabel ~condition:None
                ~note:"gold twin also initiates and records no closing termination"
            | Some (t1, gold_t_label) -> (
              match find_rule gold.s_diag activity gold_t_label with
              | None ->
                mk ~anchor:t1 ~rule:("missing:" ^ gold_t_label) ~condition:None
                  ~note:"gold termination rule not found"
              | Some (_, gold_t_rule) -> (
                match twin gen.s_diag activity ~label:gold_t_label ~rule:gold_t_rule with
                | None ->
                  mk ~anchor:t1 ~rule:("missing:" ^ gold_t_label) ~condition:None
                    ~note:
                      (Printf.sprintf
                         "gold terminates at %d via %s; generated has no counterpart" t1
                         gold_t_label)
                | Some (gen_t_label, gen_t_rule) -> (
                  match
                    Engine.Diagnosis.rule_at gen.s_diag ~rule:gen_t_rule ~fvp ~time:t1
                  with
                  | Engine.Diagnosis.Failing _ as o ->
                    let c = condition_of_outcome o in
                    mk ~anchor:t1 ~rule:gen_t_label ~condition:c
                      ~note:
                        (Printf.sprintf
                           "gold terminates at %d via %s; generated %s fails condition #%d"
                           t1 gold_t_label gen_t_label
                           (match c with Some c -> c.index | None -> 0))
                  | _ ->
                    mk ~anchor:t1 ~rule:gen_t_label ~condition:None
                      ~note:
                        (Printf.sprintf
                           "gold terminates at %d via %s; generated twin did not fire" t1
                           gold_t_label)))))
          | Engine.Diagnosis.Head_mismatch | Engine.Diagnosis.Unsupported _ ->
            mk ~anchor:t0 ~rule:glabel ~condition:None
              ~note:
                (Printf.sprintf "initiated by %s at %d; gold %s not comparable" glabel t0
                   gold_label))))

  (* FN on a simple fluent: gold initiated and held, the generated
     description didn't. Anchor at the gold initiation, replay the
     generated twin rule there; if the twin initiates too, the divergence
     is a spurious generated termination inside the span's lead-in. *)
  let simple_fn ~gold ~gen ~activity ~fvp (s, e) =
    let mk = mk ~activity ~fvp ~kind:Fn ~span:(s, e) in
    match latest_before (Store.inits gold.s_run.store fvp) ~before:s with
    | None ->
      mk ~anchor:s ~rule:"?" ~condition:None
        ~note:"no recorded gold initiation before the span"
    | Some (t0, gold_label) -> (
      match find_rule gold.s_diag activity gold_label with
      | None ->
        mk ~anchor:t0 ~rule:gold_label ~condition:None
          ~note:"gold initiating rule not found"
      | Some (_, gold_rule) -> (
        match twin gen.s_diag activity ~label:gold_label ~rule:gold_rule with
        | None ->
          mk ~anchor:t0 ~rule:("missing:" ^ gold_label) ~condition:None
            ~note:
              (Printf.sprintf "gold initiates at %d via %s; generated has no counterpart"
                 t0 gold_label)
        | Some (gen_label, gen_rule) -> (
          match Engine.Diagnosis.rule_at gen.s_diag ~rule:gen_rule ~fvp ~time:t0 with
          | Engine.Diagnosis.Failing _ as o ->
            let c = condition_of_outcome o in
            mk ~anchor:t0 ~rule:gen_label ~condition:c
              ~note:
                (Printf.sprintf
                   "gold initiates at %d via %s; generated %s fails condition #%d there"
                   t0 gold_label gen_label
                   (match c with Some c -> c.index | None -> 0))
          | Engine.Diagnosis.Derivable -> (
            match latest_in (Store.terms gen.s_run.store fvp) ~lo:t0 ~hi:(s - 1) with
            | None ->
              mk ~anchor:t0 ~rule:gen_label ~condition:None
                ~note:"generated twin also initiates; no spurious termination recorded"
            | Some (t1, gen_t_label) -> (
              match find_rule gen.s_diag activity gen_t_label with
              | None ->
                mk ~anchor:t1 ~rule:gen_t_label ~condition:None
                  ~note:"generated termination rule not found"
              | Some (_, gen_t_rule) -> (
                match twin gold.s_diag activity ~label:gen_t_label ~rule:gen_t_rule with
                | None ->
                  mk ~anchor:t1 ~rule:gen_t_label ~condition:None
                    ~note:
                      (Printf.sprintf
                         "generated terminates at %d via %s; gold has no counterpart" t1
                         gen_t_label)
                | Some (gold_t_label, gold_t_rule) -> (
                  match
                    Engine.Diagnosis.rule_at gold.s_diag ~rule:gold_t_rule ~fvp ~time:t1
                  with
                  | Engine.Diagnosis.Failing _ as o ->
                    let c = condition_of_outcome o in
                    mk ~anchor:t1 ~rule:gen_t_label ~condition:c
                      ~note:
                        (Printf.sprintf
                           "generated terminates at %d via %s; gold %s fails condition \
                            #%d there"
                           t1 gen_t_label gold_t_label
                           (match c with Some c -> c.index | None -> 0))
                  | _ ->
                    mk ~anchor:t1 ~rule:gen_t_label ~condition:None
                      ~note:
                        (Printf.sprintf "spurious generated termination at %d via %s" t1
                           gen_t_label)))))
          | Engine.Diagnosis.Head_mismatch | Engine.Diagnosis.Unsupported _ ->
            mk ~anchor:t0 ~rule:gen_label ~condition:None
              ~note:"generated twin not comparable")))

  (* FP/FN on a statically determined fluent: the side that holds the
     point names the rule that derived it (from its [Derived] records);
     the other side's twin is replayed at the span start and its failing
     condition is the blame. *)
  let sd_attribute ~holder ~prober ~activity ~fvp ~kind (s, e) =
    let mk = mk ~activity ~fvp ~kind ~span:(s, e) in
    let covering =
      Store.derived holder.s_run.store fvp
      |> List.find_opt (fun (d : Store.derived) ->
             List.exists (fun (a, b) -> s >= a && s < b) d.spans)
    in
    match covering with
    | None ->
      mk ~anchor:s ~rule:"?" ~condition:None ~note:"no derivation record covers the span"
    | Some d -> (
      let holder_is_gen = kind = Fp in
      match find_rule holder.s_diag activity d.rule with
      | None -> mk ~anchor:s ~rule:d.rule ~condition:None ~note:"deriving rule not found"
      | Some (_, holder_rule) -> (
        match twin prober.s_diag activity ~label:d.rule ~rule:holder_rule with
        | None ->
          let rule = if holder_is_gen then d.rule else "missing:" ^ d.rule in
          mk ~anchor:s ~rule ~condition:None
            ~note:
              (Printf.sprintf "derived by %s; %s has no counterpart rule" d.rule
                 (if holder_is_gen then "gold" else "generated"))
        | Some (p_label, p_rule) -> (
          let rule = if holder_is_gen then d.rule else p_label in
          match Engine.Diagnosis.rule_at prober.s_diag ~rule:p_rule ~fvp ~time:s with
          | Engine.Diagnosis.Failing _ as o ->
            let c = condition_of_outcome o in
            mk ~anchor:s ~rule ~condition:c
              ~note:
                (Printf.sprintf "derived by %s; %s fails condition #%d at %d" d.rule
                   p_label
                   (match c with Some c -> c.index | None -> 0)
                   s)
          | Engine.Diagnosis.Unsupported msg ->
            mk ~anchor:s ~rule ~condition:None ~note:("twin not diagnosable: " ^ msg)
          | _ ->
            mk ~anchor:s ~rule ~condition:None
              ~note:(Printf.sprintf "derived by %s; %s unexpectedly derivable" d.rule p_label))))

  let attribute ~gold ~gen ~activity ~fvp ~kind span =
    match kind with
    | Fp -> (
      match shape gen.s_diag activity with
      | Shape_simple -> simple_fp ~gold ~gen ~activity ~fvp span
      | Shape_sd -> sd_attribute ~holder:gen ~prober:gold ~activity ~fvp ~kind span
      | Shape_none ->
        mk ~activity ~fvp ~kind ~span ~anchor:(fst span) ~rule:"?" ~condition:None
          ~note:"fluent not defined by the generated description")
    | Fn -> (
      match shape gold.s_diag activity with
      | Shape_simple -> simple_fn ~gold ~gen ~activity ~fvp span
      | Shape_sd -> sd_attribute ~holder:gold ~prober:gen ~activity ~fvp ~kind span
      | Shape_none ->
        mk ~activity ~fvp ~kind ~span ~anchor:(fst span) ~rule:"?" ~condition:None
          ~note:"fluent not defined by the gold description")

  (* --- the pipeline --- *)

  let condition_key = function
    | None -> ""
    | Some c -> Printf.sprintf "#%d %s" c.index c.text

  let aggregate attributions =
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun a ->
        let key = (a.activity, a.rule, condition_key a.condition) in
        let row =
          match Hashtbl.find_opt tbl key with
          | Some r -> r
          | None ->
            let r =
              ref
                {
                  row_activity = a.activity;
                  row_rule = a.rule;
                  row_condition = a.condition;
                  fp_points = 0;
                  fn_points = 0;
                  fp_spans = 0;
                  fn_spans = 0;
                }
            in
            Hashtbl.replace tbl key r;
            order := key :: !order;
            r
        in
        (match (a.condition, !row.row_condition) with
        | Some _, None -> row := { !row with row_condition = a.condition }
        | _ -> ());
        match a.kind with
        | Fp ->
          row :=
            { !row with fp_points = !row.fp_points + a.points; fp_spans = !row.fp_spans + 1 }
        | Fn ->
          row :=
            { !row with fn_points = !row.fn_points + a.points; fn_spans = !row.fn_spans + 1 })
      attributions;
    List.rev_map (fun key -> !(Hashtbl.find tbl key)) !order
    |> List.sort (fun a b ->
           compare
             (b.fp_points + b.fn_points, a.row_activity, a.row_rule)
             (a.fp_points + a.fn_points, b.row_activity, b.row_rule))

  (* Divergent-window sampling: a recorder-off probe run of both sides
     locates the diverging spans; the recorded re-run then samples only
     the windows whose evaluation range can touch one — expanded one
     window backwards, so the initiation that opened a diverging
     interval is still captured. Without a window size every query
     covers the whole extent, so sampling degenerates to [Always]. *)
  let divergent_sampling ~config ~gold ~generated ~knowledge ~stream () =
    match Runtime.run ~config ~event_description:gold ~knowledge ~stream () with
    | Error e -> Result.Error ("gold recognition: " ^ e)
    | Ok (gold_result, _) -> (
      match Runtime.run ~config ~event_description:generated ~knowledge ~stream () with
      | Error e -> Result.Error ("generated recognition: " ^ e)
      | Ok (gen_result, _) -> (
        match config.Runtime.window with
        | None -> Ok Derivation.Always
        | Some w ->
          let spans_of result fv =
            match List.find_opt (fun (fv', _) -> Engine.compare_fvp fv fv' = 0) result with
            | Some (_, spans) -> spans
            | None -> Interval.empty
          in
          let diverging =
            List.map fst gold_result @ List.map fst gen_result
            |> List.sort_uniq Engine.compare_fvp
            |> List.concat_map (fun fv ->
                   let g = spans_of gold_result fv and n = spans_of gen_result fv in
                   Interval.to_list (Interval.diff n g)
                   @ Interval.to_list (Interval.diff g n))
          in
          Ok
            (Derivation.Windows
               (fun q ->
                 List.exists (fun (a, b) -> a <= q + 2 && b >= q - (2 * w) + 2) diverging))))

  let diff ?(config = Runtime.default) ?(sample = `Full) ~gold ~generated ~knowledge ~stream
      () =
    let sampling =
      match sample with
      | `Full -> Ok Derivation.Always
      | `One_in (n, seed) -> Ok (Derivation.One_in { n; seed })
      | `Divergent -> divergent_sampling ~config ~gold ~generated ~knowledge ~stream ()
    in
    match sampling with
    | Error e -> Result.Error e
    | Ok sampling -> (
    match recognise ~config ~sampling ~event_description:gold ~knowledge ~stream () with
    | Error e -> Result.Error ("gold recognition: " ^ e)
    | Ok gold_run -> (
      match
        recognise ~config ~sampling ~event_description:generated ~knowledge ~stream ()
      with
      | Error e -> Result.Error ("generated recognition: " ^ e)
      | Ok gen_run -> (
        match Engine.Diagnosis.prepare ~event_description:gold ~knowledge ~stream () with
        | Error e -> Result.Error ("gold diagnosis: " ^ e)
        | Ok gold_diag -> (
          match
            Engine.Diagnosis.prepare ~event_description:generated ~knowledge ~stream ()
          with
          | Error e -> Result.Error ("generated diagnosis: " ^ e)
          | Ok gen_diag ->
            let gold_side = { s_run = gold_run; s_diag = gold_diag } in
            let gen_side = { s_run = gen_run; s_diag = gen_diag } in
            let defined ind =
              shape gold_diag ind <> Shape_none || shape gen_diag ind <> Shape_none
            in
            let spans_of result fv =
              match
                List.find_opt (fun (fv', _) -> Engine.compare_fvp fv fv' = 0) result
              with
              | Some (_, spans) -> spans
              | None -> Interval.empty
            in
            let fvps =
              List.map fst gold_run.result @ List.map fst gen_run.result
              |> List.filter (fun (f, _) -> defined (Term.indicator f))
              |> List.sort_uniq Engine.compare_fvp
            in
            let attributions = ref [] in
            let act_tbl = Hashtbl.create 16 in
            let act_order = ref [] in
            let bump ind matched fp fn =
              let cur =
                match Hashtbl.find_opt act_tbl ind with
                | Some c -> c
                | None ->
                  act_order := ind :: !act_order;
                  { act = ind; matched_points = 0; act_fp_points = 0; act_fn_points = 0 }
              in
              Hashtbl.replace act_tbl ind
                {
                  cur with
                  matched_points = cur.matched_points + matched;
                  act_fp_points = cur.act_fp_points + fp;
                  act_fn_points = cur.act_fn_points + fn;
                }
            in
            List.iter
              (fun ((f, _) as fv) ->
                let activity = Term.indicator f in
                let g = spans_of gold_run.result fv and n = spans_of gen_run.result fv in
                let matched = Interval.duration (Interval.inter g n) in
                let fp = Interval.diff n g and fn = Interval.diff g n in
                bump activity matched (Interval.duration fp) (Interval.duration fn);
                List.iter
                  (fun span ->
                    attributions :=
                      attribute ~gold:gold_side ~gen:gen_side ~activity ~fvp:fv ~kind:Fp
                        span
                      :: !attributions)
                  (Interval.to_list fp);
                List.iter
                  (fun span ->
                    attributions :=
                      attribute ~gold:gold_side ~gen:gen_side ~activity ~fvp:fv ~kind:Fn
                        span
                      :: !attributions)
                  (Interval.to_list fn))
              fvps;
            let attributions = List.rev !attributions in
            let activities =
              List.rev_map (fun ind -> Hashtbl.find act_tbl ind) !act_order
            in
            let total f = List.fold_left (fun acc a -> acc + f a) 0 activities in
            Ok
              {
                attributions;
                rows = aggregate attributions;
                activities;
                total_matched = total (fun a -> a.matched_points);
                total_fp = total (fun a -> a.act_fp_points);
                total_fn = total (fun a -> a.act_fn_points);
              }))))

  (* --- rendering --- *)

  let kind_to_string = function Fp -> "fp" | Fn -> "fn"

  let condition_to_json = function
    | None -> Json.Null
    | Some c ->
      Json.Obj
        [
          ("index", Json.Num (float_of_int c.index));
          ("text", Json.Str c.text);
          ("grounded", Json.Str c.grounded);
        ]

  let report_to_json r =
    Json.Obj
      [
        ("schema", Json.Str "adg-provenance/1");
        ( "totals",
          Json.Obj
            [
              ("matched_points", Json.Num (float_of_int r.total_matched));
              ("fp_points", Json.Num (float_of_int r.total_fp));
              ("fn_points", Json.Num (float_of_int r.total_fn));
            ] );
        ( "activities",
          Json.List
            (List.map
               (fun a ->
                 Json.Obj
                   [
                     ("activity", Json.Str (ind_to_string a.act));
                     ("matched_points", Json.Num (float_of_int a.matched_points));
                     ("fp_points", Json.Num (float_of_int a.act_fp_points));
                     ("fn_points", Json.Num (float_of_int a.act_fn_points));
                   ])
               r.activities) );
        ( "blame",
          Json.List
            (List.map
               (fun row ->
                 Json.Obj
                   [
                     ("activity", Json.Str (ind_to_string row.row_activity));
                     ("rule", Json.Str row.row_rule);
                     ("condition", condition_to_json row.row_condition);
                     ("fp_points", Json.Num (float_of_int row.fp_points));
                     ("fn_points", Json.Num (float_of_int row.fn_points));
                     ("fp_spans", Json.Num (float_of_int row.fp_spans));
                     ("fn_spans", Json.Num (float_of_int row.fn_spans));
                   ])
               r.rows) );
        ( "attributions",
          Json.List
            (List.map
               (fun a ->
                 Json.Obj
                   [
                     ("fvp", Json.Str (fvp_to_string a.fvp));
                     ("kind", Json.Str (kind_to_string a.kind));
                     ( "span",
                       Json.List
                         [
                           Json.Num (float_of_int (fst a.span));
                           Json.Num (float_of_int (snd a.span));
                         ] );
                     ("points", Json.Num (float_of_int a.points));
                     ("anchor", Json.Num (float_of_int a.anchor));
                     ("rule", Json.Str a.rule);
                     ("condition", condition_to_json a.condition);
                     ("note", Json.Str a.note);
                   ])
               r.attributions) );
      ]

  let pp_report fmt r =
    let pr fmt_str = Format.fprintf fmt fmt_str in
    pr "Provenance diff: %d matched, %d FP, %d FN time-points@."
      r.total_matched r.total_fp r.total_fn;
    let diverging =
      List.filter (fun a -> a.act_fp_points > 0 || a.act_fn_points > 0) r.activities
    in
    if diverging = [] then pr "No diverging activities.@."
    else begin
      pr "@.Per-activity:@.";
      List.iter
        (fun a ->
          pr "  %-32s matched %8d   fp %8d   fn %8d@." (ind_to_string a.act)
            a.matched_points a.act_fp_points a.act_fn_points)
        diverging;
      pr "@.Blame table (per rule and condition):@.";
      pr "  %-28s %-28s %-44s %8s %8s@." "activity" "rule" "condition" "fp pts" "fn pts";
      List.iter
        (fun row ->
          let cond =
            match row.row_condition with
            | None -> "-"
            | Some c -> Printf.sprintf "#%d %s" c.index c.text
          in
          let cond =
            if String.length cond > 44 then String.sub cond 0 41 ^ "..." else cond
          in
          pr "  %-28s %-28s %-44s %8d %8d@."
            (ind_to_string row.row_activity)
            row.row_rule cond row.fp_points row.fn_points)
        r.rows;
      pr "@.Example attributions:@.";
      let shown = ref 0 in
      List.iter
        (fun a ->
          if !shown < 5 then begin
            incr shown;
            pr "  [%s] %s over [%d,%d): %s@."
              (String.uppercase_ascii (kind_to_string a.kind))
              (fvp_to_string a.fvp) (fst a.span) (snd a.span) a.note
          end)
        r.attributions
    end

  let report_to_string r =
    let buf = Buffer.create 1024 in
    let fmt = Format.formatter_of_buffer buf in
    pp_report fmt r;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
end

module Export = struct
  let step_to_json (s : Derivation.step) =
    Json.Obj
      [
        ("index", Json.Num (float_of_int s.index));
        ("literal", Json.Str s.literal);
        ("grounded", Json.Str s.grounded);
      ]

  let spans_to_json spans =
    Json.List
      (List.map
         (fun (a, b) ->
           Json.List
             [
               Json.Num (float_of_int a);
               (if b >= Interval.infinity then Json.Null else Json.Num (float_of_int b));
             ])
         spans)

  let source_to_json = function
    | Derivation.Rule { rule; steps } ->
      Json.Obj [ ("rule", Json.Str rule); ("steps", Json.List (List.map step_to_json steps)) ]
    | Derivation.Pattern { rule; pattern } ->
      Json.Obj [ ("rule", Json.Str rule); ("pattern", Json.Str pattern) ]
    | Derivation.Carry { origin } -> Json.Obj [ ("carry", Json.Str origin) ]

  let event_to_json = function
    | Derivation.Query { q; eval_from; window_start } ->
      Json.Obj
        [
          ("type", Json.Str "query");
          ("q", Json.Num (float_of_int q));
          ("eval_from", Json.Num (float_of_int eval_from));
          ("window_start", Json.Num (float_of_int window_start));
        ]
    | Derivation.Transition { fluent; value; time; kind; source } ->
      Json.Obj
        [
          ("type", Json.Str "transition");
          ("fvp", Json.Str (fvp_to_string (fluent, value)));
          ("time", Json.Num (float_of_int time));
          ("kind", Json.Str (match kind with Derivation.Init -> "init" | Derivation.Term -> "term"));
          ("source", source_to_json source);
        ]
    | Derivation.Derived { fluent; value; rule; spans; steps } ->
      Json.Obj
        [
          ("type", Json.Str "derived");
          ("fvp", Json.Str (fvp_to_string (fluent, value)));
          ("rule", Json.Str rule);
          ("spans", spans_to_json spans);
          ("steps", Json.List (List.map step_to_json steps));
        ]
    | Derivation.Input { fluent; value; spans } ->
      Json.Obj
        [
          ("type", Json.Str "input");
          ("fvp", Json.Str (fvp_to_string (fluent, value)));
          ("spans", spans_to_json spans);
        ]

  let proof_to_json events =
    Json.Obj
      [
        ("schema", Json.Str "adg-proof/1");
        ("events", Json.List (List.map event_to_json events));
      ]

  (* Chrome trace_event rendering: one track (tid) per activity
     indicator, named via thread_name metadata; transitions become
     instant events at their time-point, holdsFor derivations and input
     fluents become complete ("X") events spanning their intervals. The
     time axis is stream time (one time-point = one microsecond in the
     viewer). *)
  let proof_to_chrome events =
    let tids = Hashtbl.create 16 in
    let meta = ref [] in
    let tid_of ind =
      match Hashtbl.find_opt tids ind with
      | Some t -> t
      | None ->
        let t = Hashtbl.length tids + 1 in
        Hashtbl.replace tids ind t;
        meta :=
          Json.Obj
            [
              ("name", Json.Str "thread_name");
              ("ph", Json.Str "M");
              ("pid", Json.Num 1.);
              ("tid", Json.Num (float_of_int t));
              ("args", Json.Obj [ ("name", Json.Str (ind_to_string ind)) ]);
            ]
          :: !meta;
        t
    in
    let base name tid ts extra =
      Json.Obj
        ([
           ("name", Json.Str name);
           ("cat", Json.Str "provenance");
           ("pid", Json.Num 1.);
           ("tid", Json.Num (float_of_int tid));
           ("ts", Json.Num (float_of_int ts));
         ]
        @ extra)
    in
    let steps_args steps =
      Json.Obj
        (List.map
           (fun (s : Derivation.step) -> (Printf.sprintf "#%d %s" s.index s.literal, Json.Str s.grounded))
           steps)
    in
    let span_events =
      List.concat_map
        (fun ev ->
          match ev with
          | Derivation.Query _ -> []
          | Derivation.Transition { fluent; value; time; kind; source } ->
            let tid = tid_of (Term.indicator fluent) in
            let kind_s = match kind with Derivation.Init -> "init" | Derivation.Term -> "term" in
            let rule, args =
              match source with
              | Derivation.Rule { rule; steps } -> (rule, steps_args steps)
              | Derivation.Pattern { rule; pattern } ->
                (rule, Json.Obj [ ("pattern", Json.Str pattern) ])
              | Derivation.Carry { origin } -> (origin, Json.Obj [])
            in
            [
              base
                (Printf.sprintf "%s %s (%s)" kind_s (fvp_to_string (fluent, value)) rule)
                tid time
                [ ("ph", Json.Str "i"); ("s", Json.Str "t"); ("args", args) ];
            ]
          | Derivation.Derived { fluent; value; rule; spans; steps } ->
            let tid = tid_of (Term.indicator fluent) in
            List.map
              (fun (a, b) ->
                let b = if b >= Interval.infinity then a + 1 else b in
                base
                  (Printf.sprintf "%s (%s)" (fvp_to_string (fluent, value)) rule)
                  tid a
                  [
                    ("ph", Json.Str "X");
                    ("dur", Json.Num (float_of_int (b - a)));
                    ("args", steps_args steps);
                  ])
              spans
          | Derivation.Input { fluent; value; spans } ->
            let tid = tid_of (Term.indicator fluent) in
            List.map
              (fun (a, b) ->
                let b = if b >= Interval.infinity then a + 1 else b in
                base
                  (Printf.sprintf "input %s" (fvp_to_string (fluent, value)))
                  tid a
                  [ ("ph", Json.Str "X"); ("dur", Json.Num (float_of_int (b - a))); ("args", Json.Obj []) ])
              spans)
        events
    in
    Json.Obj
      [
        ("traceEvents", Json.List (List.rev !meta @ span_events));
        ("displayTimeUnit", Json.Str "ms");
      ]
end
