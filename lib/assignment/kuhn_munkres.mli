(** The Kuhn–Munkres ("Hungarian") algorithm for the assignment problem,
    with worst-case cost O(n^3) (Kuhn 1955), as used by Definitions 4.5,
    4.12 and 4.14 of the paper to find the minimum-cost mapping between
    sets of expressions, body conditions and rules. *)

val solve : float array array -> int array * float
(** [solve cost] takes a square [n x n] cost matrix and returns
    [(assignment, total)] where [assignment.(row) = column] describes a
    perfect matching of minimum total cost. Raises [Invalid_argument] on a
    non-square matrix. The empty matrix yields [([||], 0.)]. *)

val solve_rectangular : float array array -> (int * int) list * float
(** Native rectangular solver for an [m x k] matrix with [m >= k]:
    assigns every column to a distinct row via shortest augmenting paths
    in O(m * k^2) — no padding to a square O(m^3) problem — and returns
    the optimal pairs [(row, column)] sorted by row, plus the minimum
    total cost over the k columns. Unmatched rows are the caller's
    business (the cost matrix of Definition 4.3 penalises each by 1).
    The result is the same as padding the matrix with zero-cost
    "unmatched" columns and calling {!solve}, which the differential
    tests use as the oracle. *)
