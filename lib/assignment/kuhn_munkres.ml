let m_calls = Telemetry.Metrics.counter "kuhn_munkres.calls"
let m_iterations = Telemetry.Metrics.counter "kuhn_munkres.iterations"
let h_n = Telemetry.Metrics.histogram "kuhn_munkres.n"

(* Jonker-style O(n^3) implementation of the Hungarian algorithm using
   potentials and shortest augmenting paths. [u]/[v] are the row/column
   potentials; [way] records the alternating path for augmentation. Rows
   and columns are 1-based internally, with index 0 as a sentinel. *)
let solve cost =
  let n = Array.length cost in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Kuhn_munkres.solve: matrix is not square")
    cost;
  if n = 0 then ([||], 0.)
  else begin
    Telemetry.Metrics.incr m_calls;
    Telemetry.Metrics.observe h_n (float_of_int n);
    (* Iterations are tallied locally and recorded once per solve: a
       registry call inside the augmenting-path loop would cost several
       percent even when telemetry is disabled. *)
    let iterations = ref 0 in
    let u = Array.make (n + 1) 0. in
    let v = Array.make (n + 1) 0. in
    let p = Array.make (n + 1) 0 in
    (* p.(j) = row assigned to column j *)
    let way = Array.make (n + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (n + 1) infinity in
      let used = Array.make (n + 1) false in
      let continue = ref true in
      while !continue do
        incr iterations;
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity in
        let j1 = ref 0 in
        for j = 1 to n do
          if not used.(j) then begin
            let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to n do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue := false
      done;
      (* Augment along the alternating path. *)
      let rec augment j =
        let j1 = way.(j) in
        p.(j) <- p.(j1);
        if j1 <> 0 then augment j1
      in
      augment !j0
    done;
    Telemetry.Metrics.incr m_iterations ~by:!iterations;
    let assignment = Array.make n 0 in
    for j = 1 to n do
      if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
    done;
    let total = ref 0. in
    for i = 0 to n - 1 do
      total := !total +. cost.(i).(assignment.(i))
    done;
    (assignment, !total)
  end

let solve_rectangular cost =
  let m = Array.length cost in
  if m = 0 then ([], 0.)
  else begin
    let k = Array.length cost.(0) in
    if k > m then invalid_arg "Kuhn_munkres.solve_rectangular: more columns than rows";
    let padded =
      Array.map
        (fun row ->
          if Array.length row <> k then
            invalid_arg "Kuhn_munkres.solve_rectangular: ragged matrix";
          Array.init m (fun j -> if j < k then row.(j) else 0.))
        cost
    in
    let assignment, total = solve padded in
    let pairs = ref [] in
    for i = m - 1 downto 0 do
      if assignment.(i) < k then pairs := (i, assignment.(i)) :: !pairs
    done;
    (!pairs, total)
  end
