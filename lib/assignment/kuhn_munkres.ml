let m_calls = Telemetry.Metrics.counter "kuhn_munkres.calls"
let m_iterations = Telemetry.Metrics.counter "kuhn_munkres.iterations"
let h_n = Telemetry.Metrics.histogram "kuhn_munkres.n"

(* Jonker-style O(n^3) implementation of the Hungarian algorithm using
   potentials and shortest augmenting paths. [u]/[v] are the row/column
   potentials; [way] records the alternating path for augmentation. Rows
   and columns are 1-based internally, with index 0 as a sentinel. *)
let solve cost =
  let n = Array.length cost in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Kuhn_munkres.solve: matrix is not square")
    cost;
  if n = 0 then ([||], 0.)
  else begin
    Telemetry.Metrics.incr m_calls;
    Telemetry.Metrics.observe h_n (float_of_int n);
    (* Iterations are tallied locally and recorded once per solve: a
       registry call inside the augmenting-path loop would cost several
       percent even when telemetry is disabled. *)
    let iterations = ref 0 in
    let u = Array.make (n + 1) 0. in
    let v = Array.make (n + 1) 0. in
    let p = Array.make (n + 1) 0 in
    (* p.(j) = row assigned to column j *)
    let way = Array.make (n + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (n + 1) infinity in
      let used = Array.make (n + 1) false in
      let continue = ref true in
      while !continue do
        incr iterations;
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity in
        let j1 = ref 0 in
        for j = 1 to n do
          if not used.(j) then begin
            let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to n do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue := false
      done;
      (* Augment along the alternating path. *)
      let rec augment j =
        let j1 = way.(j) in
        p.(j) <- p.(j1);
        if j1 <> 0 then augment j1
      in
      augment !j0
    done;
    Telemetry.Metrics.incr m_iterations ~by:!iterations;
    let assignment = Array.make n 0 in
    for j = 1 to n do
      if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
    done;
    let total = ref 0. in
    for i = 0 to n - 1 do
      total := !total +. cost.(i).(assignment.(i))
    done;
    (assignment, !total)
  end

(* Native rectangular solver. The similarity metric only ever needs the k
   columns of an [m x k] matrix (k <= m) matched to k distinct rows: the
   [m - k] unmatched rows contribute a fixed penalty handled by the
   caller, so padding the matrix to [m x m] (as this function did until
   PR 4) solves an O(m^3) problem whose extra columns are all-zero noise.
   Instead, columns here play the role rows play in [solve]: each of the
   k columns is assigned in turn via a shortest augmenting path over the
   m rows, reusing the column/row potentials [u]/[v] across
   augmentations. One augmentation visits at most k+1 rows of the
   alternating tree and scans the m rows each visit, so the whole solve
   is O(m * k^2) — on the paper's cost matrices (median k of 1-3 against
   m up to ~80) this removes almost all of the padded solver's work. The
   optimum is the same: zero-cost padding columns never change the
   minimum over real columns. *)
let solve_rectangular cost =
  let m = Array.length cost in
  if m = 0 then ([], 0.)
  else begin
    let k = Array.length cost.(0) in
    if k > m then invalid_arg "Kuhn_munkres.solve_rectangular: more columns than rows";
    Array.iter
      (fun row ->
        if Array.length row <> k then
          invalid_arg "Kuhn_munkres.solve_rectangular: ragged matrix")
      cost;
    if k = 0 then ([], 0.)
    else begin
      Telemetry.Metrics.incr m_calls;
      Telemetry.Metrics.observe h_n (float_of_int m);
      let iterations = ref 0 in
      let u = Array.make (k + 1) 0. in
      let v = Array.make (m + 1) 0. in
      let p = Array.make (m + 1) 0 in
      (* p.(i) = column assigned to row i; index 0 is the sentinel. *)
      let way = Array.make (m + 1) 0 in
      for j = 1 to k do
        p.(0) <- j;
        let i0 = ref 0 in
        let minv = Array.make (m + 1) infinity in
        let used = Array.make (m + 1) false in
        let continue = ref true in
        while !continue do
          incr iterations;
          used.(!i0) <- true;
          let j0 = p.(!i0) in
          let delta = ref infinity in
          let i1 = ref 0 in
          for i = 1 to m do
            if not used.(i) then begin
              let cur = cost.(i - 1).(j0 - 1) -. u.(j0) -. v.(i) in
              if cur < minv.(i) then begin
                minv.(i) <- cur;
                way.(i) <- !i0
              end;
              if minv.(i) < !delta then begin
                delta := minv.(i);
                i1 := i
              end
            end
          done;
          for i = 0 to m do
            if used.(i) then begin
              u.(p.(i)) <- u.(p.(i)) +. !delta;
              v.(i) <- v.(i) -. !delta
            end
            else minv.(i) <- minv.(i) -. !delta
          done;
          i0 := !i1;
          if p.(!i0) = 0 then continue := false
        done;
        let rec augment i =
          let i1 = way.(i) in
          p.(i) <- p.(i1);
          if i1 <> 0 then augment i1
        in
        augment !i0
      done;
      Telemetry.Metrics.incr m_iterations ~by:!iterations;
      let pairs = ref [] in
      for i = m downto 1 do
        if p.(i) > 0 then pairs := (i - 1, p.(i) - 1) :: !pairs
      done;
      (* Sum in ascending row order, exactly like the padded formulation
         did, so totals stay bit-identical to the old implementation. *)
      let total = List.fold_left (fun acc (i, j) -> acc +. cost.(i).(j)) 0. !pairs in
      (!pairs, total)
    end
  end
