(* Benchmark harness.

   Running this executable (a) regenerates every figure of the paper's
   evaluation (Figures 2a, 2b, 2c) on the synthetic substrate, and (b)
   runs Bechamel micro-benchmarks over the performance-critical pieces:
   the interval algebra, the Kuhn-Munkres assignment kernel, the
   similarity metric, the prompting pipeline and the recognition engine
   with a window-size sweep (RTEC's headline optimisation). *)

open Bechamel
open Toolkit

(* --- figure reproduction --- *)

let print_figures () =
  Format.printf "==============================================================@.";
  Format.printf "Figure reproduction (see EXPERIMENTS.md for the comparison)@.";
  Format.printf "==============================================================@.";
  Evaluation.Report.print_all Format.std_formatter ();
  Format.printf "@."

(* --- benchmark fixtures --- *)

let spans_a = Rtec.Interval.of_list (List.init 200 (fun i -> (i * 10, (i * 10) + 6)))
let spans_b = Rtec.Interval.of_list (List.init 200 (fun i -> ((i * 10) + 3, (i * 10) + 8)))

let cost_matrix n =
  Array.init n (fun i ->
      Array.init n (fun j -> float_of_int (((i * 31) + (j * 17)) mod 100) /. 100.))

let matrix_16 = cost_matrix 16
let matrix_64 = cost_matrix 64
let gold_rules = Rtec.Ast.all_rules Maritime.Gold.event_description

let mutated_rules =
  let mutate (d : Rtec.Ast.definition) =
    Adg.Error_model.apply_all
      [ Adg.Error_model.Rename ("entersArea", "inArea"); Adg.Error_model.Add_redundant ]
      d
  in
  Rtec.Ast.all_rules (List.map mutate Maritime.Gold.event_description)

let trawling_rules = (Maritime.Gold.definition "trawling").rules

let trawling_mutated =
  (Adg.Error_model.apply Adg.Error_model.Add_redundant (Maritime.Gold.definition "trawling"))
    .rules

let small_dataset =
  Maritime.Dataset.generate
    ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 1 }
    ()

let recognise ~window ~step () =
  match
    Rtec.Window.run ~window ~step ~event_description:Maritime.Gold.event_description
      ~knowledge:small_dataset.knowledge ~stream:small_dataset.stream ()
  with
  | Ok (result, _) -> ignore result
  | Error e -> failwith e

let o1_profile = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot

let tests =
  [
    Test.make_grouped ~name:"interval"
      [
        Test.make ~name:"union_all-3x200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.union_all [ spans_a; spans_b; spans_a ])));
        Test.make ~name:"intersect_all-3x200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.intersect_all [ spans_a; spans_b; spans_a ])));
        Test.make ~name:"relative_complement-200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.relative_complement_all spans_a [ spans_b ])));
        Test.make ~name:"from_points-200"
          (Staged.stage (fun () ->
               ignore
                 (Rtec.Interval.from_points
                    ~starts:(List.init 200 (fun i -> i * 10))
                    ~stops:(List.init 200 (fun i -> (i * 10) + 5)))));
      ];
    Test.make_grouped ~name:"assignment"
      [
        Test.make ~name:"kuhn-munkres-16"
          (Staged.stage (fun () -> ignore (Assignment.Kuhn_munkres.solve matrix_16)));
        Test.make ~name:"kuhn-munkres-64"
          (Staged.stage (fun () -> ignore (Assignment.Kuhn_munkres.solve matrix_64)));
      ];
    Test.make_grouped ~name:"similarity-fig2a-2b-kernel"
      [
        Test.make ~name:"rule-distance"
          (Staged.stage (fun () ->
               ignore
                 (Similarity.Distance.rule (List.hd trawling_rules)
                    (List.hd trawling_mutated))));
        Test.make ~name:"definition-similarity"
          (Staged.stage (fun () ->
               ignore (Similarity.Distance.similarity trawling_mutated trawling_rules)));
        Test.make ~name:"event-description-distance"
          (Staged.stage (fun () ->
               ignore (Similarity.Distance.event_description mutated_rules gold_rules)));
      ];
    Test.make_grouped ~name:"generation-fig2a-kernel"
      [
        Test.make ~name:"o1-session-one-activity"
          (Staged.stage (fun () ->
               let backend = Adg.Profiles.backend o1_profile in
               ignore (Adg.Session.run ~activities:[ "trawling" ] backend)));
      ];
    Test.make_grouped ~name:"recognition-fig2c-kernel"
      [
        Test.make ~name:"window-1h-step-30min" (Staged.stage (recognise ~window:3600 ~step:1800));
        Test.make ~name:"window-2h-step-1h" (Staged.stage (recognise ~window:7200 ~step:3600));
        Test.make ~name:"window-4h-step-2h" (Staged.stage (recognise ~window:14400 ~step:7200));
      ];
    Test.make_grouped ~name:"fleet-domain"
      [
        (let stream, knowledge = Fleet.generate () in
         let ed = Domain.event_description Fleet.domain in
         Test.make ~name:"recognition-window-1h"
           (Staged.stage (fun () ->
                match
                  Rtec.Window.run ~window:3600 ~step:1800 ~event_description:ed ~knowledge
                    ~stream ()
                with
                | Ok _ -> ()
                | Error e -> failwith e)));
      ];
  ]

(* A cheap subset under a ~2-second budget: enough to verify the harness
   (fixtures build, bechamel runs, the table and JSON writers work)
   without the full sweep. *)
let smoke_tests =
  List.filter
    (fun group ->
      List.mem (Test.name group) [ "interval"; "assignment" ])
    tests

let benchmark ~smoke =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if smoke then 0.25 else 0.5 in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:(Some 500) () in
  let suite = if smoke then smoke_tests else tests in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"adg" suite) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows =
    List.map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> (name, Some est)
        | Some _ | None -> (name, None))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
  in
  Format.printf "==============================================================@.";
  Format.printf "Micro-benchmarks (monotonic clock, ns/run)@.";
  Format.printf "==============================================================@.";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Format.printf "%-60s %16.1f ns/run@." name est
      | None -> Format.printf "%-60s %16s@." name "n/a")
    rows;
  rows

(* Machine-readable trajectory point: a flat JSON object mapping each test
   name to its ns/run estimate (null when the OLS fit failed). *)
let write_json file rows =
  let oc = open_out file in
  let escape s =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  output_string oc "{\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "  \"%s\": %s%s\n" (escape name)
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
        (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "}\n";
  close_out oc;
  Format.printf "wrote %d benchmark estimates to %s@." (List.length rows) file

let () =
  let json_file = ref None and smoke = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf "usage: main.exe [--smoke] [--json FILE]\nunknown argument: %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Fail on an unwritable --json target now, not after the full sweep. *)
  Option.iter
    (fun file ->
      match open_out file with
      | oc -> close_out oc
      | exception Sys_error msg ->
        Printf.eprintf "cannot write --json file: %s\n" msg;
        exit 2)
    !json_file;
  if not !smoke then print_figures ();
  let rows = benchmark ~smoke:!smoke in
  Option.iter (fun file -> write_json file rows) !json_file
