(* Benchmark harness.

   Running this executable (a) regenerates every figure of the paper's
   evaluation (Figures 2a, 2b, 2c) on the synthetic substrate, and (b)
   runs Bechamel micro-benchmarks over the performance-critical pieces:
   the interval algebra, the Kuhn-Munkres assignment kernel, the
   similarity metric, the prompting pipeline and the recognition engine
   with a window-size sweep (RTEC's headline optimisation). *)

open Bechamel
open Toolkit

(* --- figure reproduction --- *)

let print_figures () =
  Format.printf "==============================================================@.";
  Format.printf "Figure reproduction (see EXPERIMENTS.md for the comparison)@.";
  Format.printf "==============================================================@.";
  Evaluation.Report.print_all Format.std_formatter ();
  Format.printf "@."

(* --- benchmark fixtures --- *)

let spans_a = Rtec.Interval.of_list (List.init 200 (fun i -> (i * 10, (i * 10) + 6)))
let spans_b = Rtec.Interval.of_list (List.init 200 (fun i -> ((i * 10) + 3, (i * 10) + 8)))

let cost_matrix n =
  Array.init n (fun i ->
      Array.init n (fun j -> float_of_int (((i * 31) + (j * 17)) mod 100) /. 100.))

let matrix_16 = cost_matrix 16
let matrix_64 = cost_matrix 64
let gold_rules = Rtec.Ast.all_rules Maritime.Gold.event_description

let mutated_rules =
  let mutate (d : Rtec.Ast.definition) =
    Adg.Error_model.apply_all
      [ Adg.Error_model.Rename ("entersArea", "inArea"); Adg.Error_model.Add_redundant ]
      d
  in
  Rtec.Ast.all_rules (List.map mutate Maritime.Gold.event_description)

let trawling_rules = (Maritime.Gold.definition "trawling").rules

let trawling_mutated =
  (Adg.Error_model.apply Adg.Error_model.Add_redundant (Maritime.Gold.definition "trawling"))
    .rules

let small_dataset =
  Maritime.Dataset.generate
    ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 1 }
    ()

let recognise ~window ~step () =
  match
    Rtec.Window.run ~window ~step ~event_description:Maritime.Gold.event_description
      ~knowledge:small_dataset.knowledge ~stream:small_dataset.stream ()
  with
  | Ok (result, _) -> ignore result
  | Error e -> failwith e

let o1_profile = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot

let tests =
  [
    Test.make_grouped ~name:"interval"
      [
        Test.make ~name:"union_all-3x200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.union_all [ spans_a; spans_b; spans_a ])));
        Test.make ~name:"intersect_all-3x200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.intersect_all [ spans_a; spans_b; spans_a ])));
        Test.make ~name:"relative_complement-200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.relative_complement_all spans_a [ spans_b ])));
        Test.make ~name:"from_points-200"
          (Staged.stage (fun () ->
               ignore
                 (Rtec.Interval.from_points
                    ~starts:(List.init 200 (fun i -> i * 10))
                    ~stops:(List.init 200 (fun i -> (i * 10) + 5)))));
      ];
    Test.make_grouped ~name:"assignment"
      [
        Test.make ~name:"kuhn-munkres-16"
          (Staged.stage (fun () -> ignore (Assignment.Kuhn_munkres.solve matrix_16)));
        Test.make ~name:"kuhn-munkres-64"
          (Staged.stage (fun () -> ignore (Assignment.Kuhn_munkres.solve matrix_64)));
      ];
    Test.make_grouped ~name:"similarity-fig2a-2b-kernel"
      [
        Test.make ~name:"rule-distance"
          (Staged.stage (fun () ->
               ignore
                 (Similarity.Distance.rule (List.hd trawling_rules)
                    (List.hd trawling_mutated))));
        Test.make ~name:"definition-similarity"
          (Staged.stage (fun () ->
               ignore (Similarity.Distance.similarity trawling_mutated trawling_rules)));
        Test.make ~name:"event-description-distance"
          (Staged.stage (fun () ->
               ignore (Similarity.Distance.event_description mutated_rules gold_rules)));
      ];
    Test.make_grouped ~name:"generation-fig2a-kernel"
      [
        Test.make ~name:"o1-session-one-activity"
          (Staged.stage (fun () ->
               let backend = Adg.Profiles.backend o1_profile in
               ignore (Adg.Session.run ~activities:[ "trawling" ] backend)));
      ];
    Test.make_grouped ~name:"recognition-fig2c-kernel"
      [
        Test.make ~name:"window-1h-step-30min" (Staged.stage (recognise ~window:3600 ~step:1800));
        Test.make ~name:"window-2h-step-1h" (Staged.stage (recognise ~window:7200 ~step:3600));
        Test.make ~name:"window-4h-step-2h" (Staged.stage (recognise ~window:14400 ~step:7200));
      ];
    Test.make_grouped ~name:"fleet-domain"
      [
        (let stream, knowledge = Fleet.generate () in
         let ed = Domain.event_description Fleet.domain in
         Test.make ~name:"recognition-window-1h"
           (Staged.stage (fun () ->
                match
                  Rtec.Window.run ~window:3600 ~step:1800 ~event_description:ed ~knowledge
                    ~stream ()
                with
                | Ok _ -> ()
                | Error e -> failwith e)));
      ];
  ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"adg" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "==============================================================@.";
  Format.printf "Micro-benchmarks (monotonic clock, ns/run)@.";
  Format.printf "==============================================================@.";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Format.printf "%-60s %16.1f ns/run@." name est
      | Some _ | None -> Format.printf "%-60s %16s@." name "n/a")
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let () =
  print_figures ();
  benchmark ()
