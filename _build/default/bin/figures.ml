(* Regenerates the paper's figures on the synthetic substrate.
   Usage: figures [2a|2b|2c|all] *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let ppf = Format.std_formatter in
  match which with
  | "2a" ->
    let best = Evaluation.Experiments.(best_per_model (generate_all ())) in
    Evaluation.Report.figure_2a ppf best
  | "2b" ->
    let best = Evaluation.Experiments.(best_per_model (generate_all ())) in
    Evaluation.Report.figure_2b ppf (Evaluation.Experiments.correct_top best)
  | "2c" ->
    let best = Evaluation.Experiments.(best_per_model (generate_all ())) in
    let corrected = Evaluation.Experiments.correct_top best in
    let dataset = Maritime.Dataset.generate () in
    (match Evaluation.Experiments.predictive_accuracy ~dataset corrected with
    | Error e -> prerr_endline e; exit 1
    | Ok rows -> Evaluation.Report.figure_2c ppf rows)
  | "all" -> Evaluation.Report.print_all ppf ()
  | other ->
    Printf.eprintf "unknown figure %S (expected 2a, 2b, 2c or all)\n" other;
    exit 2
