(** Application domains.

    Section 6 of the paper notes that the approach transfers to other
    domains: prompt R (the RTEC syntax) is reused as-is, while prompts F,
    E and T are customised with domain knowledge. A [Domain.t] packages
    exactly that domain knowledge: the input vocabulary, the threshold
    catalogue, the gold-standard activity definitions with their
    natural-language descriptions, and the naming lexicon used by the
    error models and the syntactic corrector. *)

type item = { name : string; arity : int; meaning : string }
(** An input event, input fluent or background predicate. *)

type threshold = { id : string; value : float; meaning : string }

type entry = {
  name : string;  (** fluent name of the activity *)
  code : string option;  (** short label when the activity is reported in a figure *)
  nl : string;  (** natural-language description — the prompt-G input *)
  source : string;  (** hand-crafted rules in concrete RTEC syntax *)
}

type t = {
  domain_name : string;
  input_events : item list;
  input_fluents : item list;
  background : item list;
  thresholds : threshold list;
  entries : entry list;  (** bottom-up: definitions may use earlier ones *)
  extra_constants : string list;
      (** domain constants beyond the vocabulary items (area types, fluent
          values, ...) *)
  synonyms : (string * string) list;
      (** [(canonical, variant)] plausible alternative names an LLM picks;
          known to the corrector *)
}

val entry : t -> string -> entry
(** Raises [Not_found]. *)

val definition : t -> string -> Rtec.Ast.definition
(** Parsed rules of one entry. *)

val event_description : t -> Rtec.Ast.t
val reported : t -> entry list
(** Entries with a figure code, in entry order. *)

val known_names : t -> string list
(** Every identifier of the domain: vocabulary, thresholds, constants and
    activity names. *)

val check_vocabulary : t -> Rtec.Check.vocabulary
val threshold_facts : t -> Rtec.Term.t list
val variant_of : t -> string -> string option
val canonical_of : t -> string -> string option
