type item = { name : string; arity : int; meaning : string }
type threshold = { id : string; value : float; meaning : string }

type entry = {
  name : string;
  code : string option;
  nl : string;
  source : string;
}

type t = {
  domain_name : string;
  input_events : item list;
  input_fluents : item list;
  background : item list;
  thresholds : threshold list;
  entries : entry list;
  extra_constants : string list;
  synonyms : (string * string) list;
}

let entry t name = List.find (fun e -> String.equal e.name name) t.entries
let definition t name = Rtec.Parser.parse_definition ~name (entry t name).source

let event_description t =
  List.map (fun e -> Rtec.Parser.parse_definition ~name:e.name e.source) t.entries

let reported t = List.filter (fun e -> e.code <> None) t.entries

let known_names t =
  List.map (fun (i : item) -> i.name) t.input_events
  @ List.map (fun (i : item) -> i.name) t.input_fluents
  @ List.map (fun (i : item) -> i.name) t.background
  @ List.map (fun (th : threshold) -> th.id) t.thresholds
  @ t.extra_constants
  @ List.map (fun (e : entry) -> e.name) t.entries

let check_vocabulary t =
  let indicator (i : item) = (i.name, i.arity) in
  {
    Rtec.Check.input_events = List.map indicator t.input_events;
    input_fluents = List.map indicator t.input_fluents;
    background = List.map indicator t.background;
  }

let threshold_facts t =
  List.map
    (fun th -> Rtec.Term.app "thresholds" [ Rtec.Term.Atom th.id; Rtec.Term.Real th.value ])
    t.thresholds

let variant_of t name =
  List.find_opt (fun (c, _) -> String.equal c name) t.synonyms |> Option.map snd

let canonical_of t name =
  List.find_opt (fun (_, v) -> String.equal v name) t.synonyms |> Option.map fst
