type scheme = Few_shot | Chain_of_thought

let scheme_name = function
  | Few_shot -> "few-shot"
  | Chain_of_thought -> "chain-of-thought"

let scheme_symbol = function Few_shot -> "\xe2\x96\xa1" | Chain_of_thought -> "\xe2\x96\xb3"

let corrected_symbol = function
  | Few_shot -> "\xe2\x96\xa0"
  | Chain_of_thought -> "\xe2\x96\xb2"

let rtec_syntax () =
  "You will write composite activity definitions in the language of the \
   Run-Time Event Calculus (RTEC). RTEC uses a linear time-line with \
   non-negative integer time-points. A fluent-value pair F=V denotes that \
   fluent F has value V. happensAt(E, T) signifies that event E occurs at \
   time-point T. initiatedAt(F=V, T), respectively terminatedAt(F=V, T), \
   expresses that a time period during which F has value V continuously is \
   initiated, respectively terminated, at T. holdsAt(F=V, T) states that F \
   has value V at T, while holdsFor(F=V, I) expresses that F=V holds \
   continuously in the maximal intervals of list I.\n\n\
   Rules are written as logic programming clauses: head :- body, where the \
   body is a comma-separated list of conditions and every clause ends with \
   a period. 'not' expresses negation-by-failure. The interval manipulation \
   constructs union_all(L, I), intersect_all(L, I) and \
   relative_complement_all(I', L, I) operate on lists of maximal-interval \
   lists."

(* The concrete example rules quoted in prompt F; lines 8, 11, 14 and
   24-28 of the prompt in the paper. *)
let within_area_rules =
  [
    "initiatedAt(withinArea(Vessel, AreaType)=true, T) :-\n\
    \    happensAt(entersArea(Vessel, Area), T),\n\
    \    areaType(Area, AreaType).";
    "terminatedAt(withinArea(Vessel, AreaType)=true, T) :-\n\
    \    happensAt(leavesArea(Vessel, Area), T),\n\
    \    areaType(Area, AreaType).";
    "terminatedAt(withinArea(Vessel, AreaType)=true, T) :-\n\
    \    happensAt(gap_start(Vessel), T).";
  ]

let under_way_rule =
  "holdsFor(underWay(Vessel)=true, I) :-\n\
  \    holdsFor(movingSpeed(Vessel)=below, I1),\n\
  \    holdsFor(movingSpeed(Vessel)=normal, I2),\n\
  \    holdsFor(movingSpeed(Vessel)=above, I3),\n\
  \    union_all([I1, I2, I3], I)."

let within_area_nl =
  "Composite Maritime Activity Description: 'withinArea'. This activity \
   starts when a vessel enters an area of interest. The activity ends when \
   the vessel leaves the area that it had entered. When there is a gap in \
   signal transmissions, we can no longer assume that the vessel remains \
   in the same area."

let under_way_nl =
  "Composite Maritime Activity Description: 'underWay'. This activity \
   lasts as long as a vessel is not stopped."

let fluent_kinds scheme =
  let explain text = match scheme with Chain_of_thought -> text ^ "\n\n" | Few_shot -> "" in
  let b = Buffer.create 4096 in
  let add s = Buffer.add_string b s in
  add
    "There are two ways in which a composite activity may be defined in the \
     language of RTEC. In the first case, a composite activity definition \
     may be specified by means of rules with initiatedAt(F=V,T) or \
     terminatedAt(F=V,T) in their head. This is called a simple fluent \
     definition.\n\n\
     The first body literal of an initiatedAt(F=V,T) rule is a positive \
     happensAt predicate; this is followed by a possibly empty set of \
     positive/negative happensAt and holdsAt predicates. Negative \
     predicates are prefixed with 'not' which expresses \
     negation-by-failure. Below you may find an example of a composite \
     activity definition expressed as a simple fluent.\n\n\
     Example 1: Given a composite maritime activity description, provide \
     the rules in the language of RTEC. ";
  add within_area_nl;
  add "\n\n";
  add
    (explain
       "Answer: The activity 'withinArea' is expressed as a simple fluent. \
        This activity starts when a vessel enters an area of interest. We \
        use an 'initiatedAt' rule to express this initiation condition. The \
        output is a boolean fluent named 'withinArea' with two arguments, \
        i.e. 'Vessel' and 'AreaType'. We use one input event named \
        'entersArea' with two arguments 'Vessel' and 'Area' and one \
        background predicate named 'areaType' with two arguments 'Area' and \
        'AreaType'. This rule in the language of RTEC is the following:");
  add (List.nth within_area_rules 0);
  add "\n\n";
  add
    (explain
       "The activity 'withinArea' ends when a vessel leaves the area that \
        it had entered. We use a 'terminatedAt' rule to describe this \
        termination condition. This rule in the language of RTEC is:");
  add (List.nth within_area_rules 1);
  add "\n\n";
  add
    (explain
       "The activity 'withinArea' ends when a communication gap starts. We \
        use a 'terminatedAt' rule to express this termination condition, \
        with the input event 'gap_start'. This rule in the language of RTEC \
        is:");
  add (List.nth within_area_rules 2);
  add "\n\n";
  add
    "A composite activity definition may also be specified by means of one \
     rule with holdsFor(F=V, I) in its head. The body of such a rule may \
     include holdsFor(F'=V', I') conditions, where F'=V' is different from \
     F=V, as well as the interval manipulation constructs of RTEC, i.e. \
     union_all, intersect_all, and relative_complement_all. A rule with \
     holdsFor(F=V, I) in the head is called a statically determined fluent \
     definition. Below you may find an example of a composite maritime \
     activity expressed as a statically determined fluent.\n\n\
     Example 2: Given a composite maritime activity description, provide \
     the rules in the language of RTEC. ";
  add under_way_nl;
  add "\n\n";
  add
    (explain
       "Answer: The activity 'underWay' is expressed as a statically \
        determined fluent. Rules with 'holdsFor' in the head specify the \
        conditions in which a fluent holds. We express 'underWay' as the \
        disjunction of the three values of 'movingSpeed', i.e. 'below', \
        'normal' and 'above'. Disjunction in 'holdsFor' rules is expressed \
        by means of 'union_all'. This rule is expressed in the language of \
        RTEC as follows:");
  add under_way_rule;
  Buffer.contents b

let default_domain = Maritime.Domain_def.domain

let events_and_fluents ?(domain = default_domain) () =
  let b = Buffer.create 2048 in
  Buffer.add_string b "You may use the following input events:\n\n";
  List.iteri
    (fun i (it : Domain.item) ->
      Buffer.add_string b
        (Printf.sprintf "Input Event %d: %s/%d\nMeaning: %s\n\n" (i + 1) it.name it.arity
           it.meaning))
    domain.Domain.input_events;
  Buffer.add_string b
    "You may also use the following input statically determined fluents, \
     whose maximal intervals are computed by preprocessing:\n\n";
  List.iteri
    (fun i (it : Domain.item) ->
      Buffer.add_string b
        (Printf.sprintf "Input Fluent %d: %s/%d\nMeaning: %s\n\n" (i + 1) it.name it.arity
           it.meaning))
    domain.Domain.input_fluents;
  Buffer.add_string b
    "Background knowledge is available through the atemporal predicates:\n\n";
  List.iter
    (fun (it : Domain.item) ->
      Buffer.add_string b (Printf.sprintf "%s/%d: %s\n" it.name it.arity it.meaning))
    domain.Domain.background;
  Buffer.contents b

let thresholds ?(domain = default_domain) () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "You may use a predicate named 'thresholds' with two arguments. The \
     first argument refers to the threshold type and the second one to the \
     threshold value. Threshold values can be used to perform mathematical \
     operations and comparisons.\n\n";
  List.iteri
    (fun i (t : Domain.threshold) ->
      Buffer.add_string b
        (Printf.sprintf "Threshold %d: thresholds(%s, %s)\nMeaning: %s\n\n" (i + 1) t.id
           (String.capitalize_ascii t.id) t.meaning))
    domain.Domain.thresholds;
  Buffer.contents b

let generation ~activity ~description =
  Printf.sprintf
    "Given a composite maritime activity description, provide the rules in \
     RTEC formalization. You may use any of the aforementioned input events \
     and fluents, and threshold values. You may use any of the output \
     fluents that you have already learned.\n\n\
     Maritime Composite Activity Description - %s: %s"
    activity description

(* For a non-maritime domain, prompt F is rebuilt from the domain's own
   gold examples: the first simple-fluent entry and the first statically
   determined entry (Section 6: prompts F/E/T are customised per domain,
   prompt R is reused as-is). *)
let generic_fluent_kinds domain scheme =
  let kind_of (e : Domain.entry) =
    match Rtec.Ast.kind_of_rule (List.hd (Domain.definition domain e.name).rules) with
    | Some (Rtec.Ast.Initiated _ | Rtec.Ast.Terminated _) -> `Simple
    | Some (Rtec.Ast.Holds_for _) -> `Sd
    | None -> `Sd
  in
  let first k =
    List.find (fun e -> kind_of e = k) domain.Domain.entries
  in
  let simple = first `Simple and sd = first `Sd in
  let explain text =
    match scheme with Chain_of_thought -> text ^ "\n\n" | Few_shot -> ""
  in
  let example (e : Domain.entry) what =
    "Example: Given a composite activity description, provide the rules in \
     the language of RTEC. Composite Activity Description: '" ^ e.name ^ "'. "
    ^ e.nl ^ "\n\n"
    ^ explain
        (Printf.sprintf
           "Answer: The activity '%s' is expressed as a %s fluent. The rules \
            in the language of RTEC are the following:"
           e.name what)
    ^ String.trim e.source
  in
  "There are two ways in which a composite activity may be defined in the \
   language of RTEC: a simple fluent definition (rules with initiatedAt or \
   terminatedAt in the head, the first body literal being a positive \
   happensAt) and a statically determined fluent definition (one rule with \
   holdsFor in the head, whose body combines holdsFor conditions with \
   union_all, intersect_all and relative_complement_all).\n\n"
  ^ example simple "simple"
  ^ "\n\n"
  ^ example sd "statically determined"

let preamble ?(domain = default_domain) scheme =
  let f =
    if String.equal domain.Domain.domain_name "maritime" then fluent_kinds scheme
    else generic_fluent_kinds domain scheme
  in
  [ rtec_syntax (); f; events_and_fluents ~domain (); thresholds ~domain () ]

let extract_description prompt =
  match String.index_opt prompt ':' with
  | None -> None
  | Some _ -> (
    (* The description follows "Description - <name>: ". *)
    let marker = "Maritime Composite Activity Description - " in
    match
      let len = String.length prompt and mlen = String.length marker in
      let rec find i =
        if i + mlen > len then None
        else if String.sub prompt i mlen = marker then Some (i + mlen)
        else find (i + 1)
      in
      find 0
    with
    | None -> None
    | Some start -> (
      match String.index_from_opt prompt start ':' with
      | None -> None
      | Some colon ->
        Some (String.trim (String.sub prompt (colon + 1) (String.length prompt - colon - 1)))))
