(** The prompting pipeline of Section 3 (Figure 1).

    A generation session sends, in order: prompt R (the syntax of RTEC),
    prompt F* or F (simple vs. statically determined fluents, by few-shot
    or chain-of-thought examples), prompt E (the input events and fluents),
    prompt T (the threshold catalogue), and then one prompt G per composite
    activity of interest. *)

type scheme = Few_shot | Chain_of_thought

val scheme_name : scheme -> string
val scheme_symbol : scheme -> string
(** ["\u{25A1}"] (few-shot) / ["\u{25B3}"] (chain-of-thought), the paper's
    X-square / X-triangle notation. *)

val corrected_symbol : scheme -> string
(** Filled variants used after syntactic correction (X-filled-square /
    X-filled-triangle). *)

val rtec_syntax : unit -> string
(** Prompt R, derived from Definitions 2.2 and 2.4. *)

val fluent_kinds : scheme -> string
(** Prompt F (chain-of-thought: examples with explanations) or F*
    (few-shot: the same examples without the explanation steps). The
    examples are the "withinArea" and "underWay" definitions, per the
    paper. *)

val default_domain : Domain.t
(** The maritime domain — the paper's evaluation domain. *)

val events_and_fluents : ?domain:Domain.t -> unit -> string
(** Prompt E: every input event and input fluent with its meaning. *)

val thresholds : ?domain:Domain.t -> unit -> string
(** Prompt T: the threshold catalogue with meanings. *)

val generation : activity:string -> description:string -> string
(** Prompt G for one composite activity. *)

val preamble : ?domain:Domain.t -> scheme -> string list
(** Prompts R, F/F*, E, T in session order. *)

val extract_description : string -> string option
(** Recovers the activity description quoted inside a prompt-G text (used
    by simulated backends to identify the requested activity). *)
