open Rtec

type change = { definition : string; from_name : string; to_name : string }
type report = { changes : change list; unresolved : (string * string) list }

let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let reserved =
  [ "initiatedAt"; "terminatedAt"; "holdsAt"; "holdsFor"; "happensAt"; "not";
    "union_all"; "intersect_all"; "relative_complement_all"; "="; "<"; ">"; ">=";
    "=<"; "\\="; "+"; "-"; "*"; "/"; "[]"; "true"; "false" ]

let identifiers_of_definition (d : Ast.definition) =
  let rec go acc t =
    match t with
    | Term.Var _ | Term.Int _ | Term.Real _ -> acc
    | Term.Atom a -> a :: acc
    | Term.Compound (f, args) -> List.fold_left go (f :: acc) args
  in
  List.fold_left (fun acc (r : Ast.rule) -> List.fold_left go acc (r.head :: r.body)) []
    d.rules
  |> List.sort_uniq String.compare
  |> List.filter (fun n -> not (List.mem n reserved))

let nearest known name =
  (* Small-typo matching: accept a vocabulary name within edit distance 2
     (case-insensitive comparison), preferring the closest. *)
  let lower = String.lowercase_ascii name in
  let best =
    List.fold_left
      (fun best candidate ->
        let d = edit_distance lower (String.lowercase_ascii candidate) in
        match best with
        | Some (_, bd) when bd <= d -> best
        | _ -> if d <= 2 then Some (candidate, d) else best)
      None known
  in
  Option.map fst best

let resolve ~synonyms known name =
  if List.mem name known then None
  else
    let canonical_of name =
      List.find_opt (fun (_, v) -> String.equal v name) synonyms |> Option.map fst
    in
    match canonical_of name with
    | Some canonical when List.mem canonical known -> Some canonical
    | _ -> nearest known name

let rename_everywhere old_name new_name ed =
  let rec rn t =
    match t with
    | Term.Var _ | Term.Int _ | Term.Real _ -> t
    | Term.Atom a -> if String.equal a old_name then Term.Atom new_name else t
    | Term.Compound (f, args) ->
      Term.Compound ((if String.equal f old_name then new_name else f), List.map rn args)
  in
  Ast.map_terms rn ed

let head_fluent_name (d : Ast.definition) =
  match d.rules with
  | r :: _ -> (
    match Ast.kind_of_rule r with
    | Some
        ( Ast.Initiated { fluent; _ }
        | Ast.Terminated { fluent; _ }
        | Ast.Holds_for { fluent; _ } ) -> Some (Term.functor_of fluent)
    | None -> None)
  | [] -> None

let correct_event_description ?(synonyms = Maritime.Domain_def.synonyms) ~known ed =
  let changes = ref [] and unresolved = ref [] in
  (* Pass 1: realign each definition's head fluent with its activity
     label; the rename applies to the whole event description so that
     later definitions referring to the renamed activity stay consistent. *)
  let ed =
    List.fold_left
      (fun ed (d : Ast.definition) ->
        match head_fluent_name d with
        | Some f when not (String.equal f d.name) && not (List.mem f known) ->
          changes := { definition = d.name; from_name = f; to_name = d.name } :: !changes;
          rename_everywhere f d.name ed
        | _ -> ed)
      ed ed
  in
  (* Pass 2: fix remaining unknown identifiers. Names of activities
     defined by the event description itself are known. *)
  let known = known @ List.map (fun (d : Ast.definition) -> d.name) ed in
  let ed =
    List.fold_left
      (fun ed (d : Ast.definition) ->
        List.fold_left
          (fun ed name ->
            if List.mem name known then ed
            else
              match resolve ~synonyms known name with
              | Some fixed ->
                changes :=
                  { definition = d.name; from_name = name; to_name = fixed } :: !changes;
                rename_everywhere name fixed ed
              | None ->
                unresolved := (d.name, name) :: !unresolved;
                ed)
          ed
          (identifiers_of_definition d))
      ed ed
  in
  (ed, { changes = List.rev !changes; unresolved = List.rev !unresolved })

let correct ?(domain = Maritime.Domain_def.domain) (session : Session.t) =
  let ed = Session.event_description session in
  correct_event_description ~synonyms:domain.Domain.synonyms
    ~known:(Domain.known_names domain) ed
