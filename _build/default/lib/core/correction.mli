(** Minimal syntactic correction — the step that turns X-square/X-triangle
    event descriptions into the X-filled variants of Figures 2b/2c.

    The corrector performs only the "minimum required changes" of Section
    5.2: renaming constants and predicates so that the event description
    becomes compatible with the input vocabulary and with itself. It fixes
    names through (i) the activity label of each definition (the head
    fluent must be the requested activity), (ii) the domain synonym
    lexicon (e.g. 'trawlingArea' denotes the 'fishing' area type), and
    (iii) nearest-name matching against the vocabulary for small typos.
    It deliberately does not touch structure: wrong fluent kinds, wrong
    interval operations and transposed arguments survive, as they did in
    the paper. *)

type change = { definition : string; from_name : string; to_name : string }

type report = {
  changes : change list;
  unresolved : (string * string) list;
      (** (definition, identifier) names left unknown *)
}

val correct : ?domain:Domain.t -> Session.t -> Rtec.Ast.t * report
(** Corrects every parsed definition of a session. *)

val correct_event_description :
  ?synonyms:(string * string) list -> known:string list -> Rtec.Ast.t ->
  Rtec.Ast.t * report
(** The name-fixing pass alone, against an arbitrary known-name list. *)

val edit_distance : string -> string -> int
(** Levenshtein distance (case-sensitive), exposed for testing. *)
