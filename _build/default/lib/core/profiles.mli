(** Error profiles for the six evaluated LLMs under both prompting
    schemes.

    A profile turns the error taxonomy into a per-activity mutation list:
    stochastic naming/structural errors drawn from a deterministic
    generator seeded by (model, activity), plus pinned mutations that
    encode the headline observations of Section 5.2 (e.g. Gemma-2's
    wrong-kind 'trawling', GPT-4o's and Llama-3's union/intersect
    confusion on 'loitering', o1's 'trawlingArea' constant).

    Each model has a {e reported scheme} — the prompting scheme that the
    paper found best for it (square = few-shot, triangle =
    chain-of-thought). The other scheme produces a strict superset of the
    reported scheme's mutations, so best-of-scheme selection is
    deterministic. *)

type t = {
  model : string;
  scheme : Prompt.scheme;
  rename_rate : float;  (** probability of adopting a variant name *)
  transpose_rate : float;  (** probability of transposing [areaType] arguments *)
  drop_rate : float;
      (** probability of omitting a termination rule of a definition *)
  redundant_rate : float;  (** probability of one redundant condition *)
  condition_drop_rate : float;
      (** probability of losing the last condition of some rule *)
  extra_rule_rate : float;  (** probability of one spurious extra rule *)
  pinned : (string * Error_model.mutation list) list;
      (** per-activity scripted mutations *)
}

val models : string list
(** ["GPT-4"; "GPT-4o"; "o1"; "Llama-3"; "Mistral"; "Gemma-2"]. *)

val reported_scheme : string -> Prompt.scheme
(** The scheme the paper reports for each model: few-shot for GPT-4, o1
    and Llama-3; chain-of-thought for GPT-4o, Mistral and Gemma-2. *)

val find : model:string -> scheme:Prompt.scheme -> t
(** Raises [Not_found] for an unknown model. *)

val all : t list

val mutations_for : ?domain:Domain.t -> t -> activity:string -> Error_model.mutation list
(** The deterministic mutation list the simulated backend applies when
    asked to formalise [activity]. *)

val backend : ?domain:Domain.t -> t -> Backend.t

val zero_shot_backend : ?domain:Domain.t -> t -> Backend.t
(** The zero-shot ablation: the paper reports that zero-shot prompting
    "produced poor results" and excludes it from the pipeline. This
    backend simulates the missing prompt-F examples: most formalisations
    come back as prose (unusable), the rest with heavy noise. *)
