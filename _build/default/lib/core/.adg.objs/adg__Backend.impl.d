lib/core/backend.ml: Domain Error_model List Maritime Printf Prompt Rtec String
