lib/core/correction.mli: Domain Rtec Session
