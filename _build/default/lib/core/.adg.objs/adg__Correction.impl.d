lib/core/correction.ml: Array Ast Domain List Maritime Option Rtec Session String Term
