lib/core/error_model.mli: Rtec
