lib/core/error_model.ml: Ast List Maritime Option Printf Rtec String Term
