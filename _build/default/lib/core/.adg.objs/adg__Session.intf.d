lib/core/session.mli: Backend Domain Prompt Rtec
