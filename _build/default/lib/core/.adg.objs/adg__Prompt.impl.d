lib/core/prompt.ml: Buffer Domain List Maritime Printf Rtec String
