lib/core/prompt.mli: Domain
