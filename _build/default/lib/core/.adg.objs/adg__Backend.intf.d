lib/core/backend.mli: Domain Error_model Prompt
