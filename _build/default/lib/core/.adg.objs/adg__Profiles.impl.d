lib/core/profiles.ml: Backend Domain Error_model Float Hashtbl List Maritime Prompt Rtec String
