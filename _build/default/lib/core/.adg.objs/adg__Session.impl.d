lib/core/session.ml: Backend Domain List Maritime Prompt Rtec
