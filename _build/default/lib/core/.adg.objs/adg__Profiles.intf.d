lib/core/profiles.mli: Backend Domain Error_model Prompt
