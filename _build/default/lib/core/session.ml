type generated_definition = {
  activity : string;
  raw : string;
  parsed : (Rtec.Ast.definition, string) result;
}

type t = {
  backend_label : string;
  model : string;
  scheme : Prompt.scheme;
  transcript : (string * string) list;
  definitions : generated_definition list;
}

let run ?(domain = Maritime.Domain_def.domain) ?activities (backend : Backend.t) =
  let activities =
    match activities with
    | Some a -> a
    | None -> List.map (fun (e : Domain.entry) -> e.name) domain.Domain.entries
  in
  let history = ref [] in
  let ask prompt =
    let reply = backend.complete ~history:(List.rev !history) ~prompt in
    history := (prompt, reply) :: !history;
    reply
  in
  List.iter (fun p -> ignore (ask p)) (Prompt.preamble ~domain backend.scheme);
  let definitions =
    List.map
      (fun activity ->
        let entry = Domain.entry domain activity in
        let reply = ask (Prompt.generation ~activity ~description:entry.nl) in
        let parsed =
          match Rtec.Parser.parse_clauses_result reply with
          | Ok rules -> Ok { Rtec.Ast.name = activity; rules }
          | Error e -> Error e
        in
        { activity; raw = reply; parsed })
      activities
  in
  {
    backend_label = Backend.label backend;
    model = backend.model;
    scheme = backend.scheme;
    transcript = List.rev !history;
    definitions;
  }

let event_description t =
  List.filter_map
    (fun d -> match d.parsed with Ok def -> Some def | Error _ -> None)
    t.definitions

let parse_failures t =
  List.filter_map
    (fun d -> match d.parsed with Ok _ -> None | Error e -> Some (d.activity, e))
    t.definitions
