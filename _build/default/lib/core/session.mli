(** A generation session (Figure 1): teach the backend the RTEC syntax,
    the fluent kinds, the input vocabulary and the thresholds, then request
    one composite activity formalisation per prompt G, accumulating the
    conversation history so that later activities may reuse earlier ones
    (the hierarchical knowledge base of Section 3.3). *)

type generated_definition = {
  activity : string;
  raw : string;  (** the backend's verbatim reply *)
  parsed : (Rtec.Ast.definition, string) result;
}

type t = {
  backend_label : string;
  model : string;
  scheme : Prompt.scheme;
  transcript : (string * string) list;  (** (prompt, reply) exchanges *)
  definitions : generated_definition list;
}

val run : ?domain:Domain.t -> ?activities:string list -> Backend.t -> t
(** Runs the full session. [domain] defaults to the maritime domain;
    [activities] defaults to every gold entry, in hierarchy order. *)

val event_description : t -> Rtec.Ast.t
(** The successfully parsed definitions, as an event description. *)

val parse_failures : t -> (string * string) list
(** Activities whose reply did not parse, with the error message. *)
