(** The LLM error taxonomy of Section 5.2, as executable mutations.

    Simulated backends perturb a latent (correct) formalisation with these
    mutations before rendering it to text. Each mutation corresponds to an
    error category observed in the paper's qualitative assessment:
    - {!Rename}: minor divergences in the names chosen for events,
      activities and background knowledge (category 1);
    - {!Wrong_kind}: modelling with the wrong fluent kind (category 2);
    - {!Replace_reference}: conditions over undefined activities
      (category 3);
    - {!Confuse_union}, {!Transpose_args}, {!Drop_literal}, {!Drop_rule},
      {!Add_redundant}: failures at multi-operation definitions
      (category 4). *)

type mutation =
  | Rename of string * string
      (** rename an identifier (predicate functor or constant) everywhere *)
  | Transpose_args of string  (** reverse the arguments of a predicate *)
  | Confuse_union  (** use [intersect_all] in place of [union_all] *)
  | Drop_literal of string
      (** delete body literals whose atom has the given functor *)
  | Drop_rule of int  (** delete the i-th rule (0-based) *)
  | Drop_condition of int
      (** delete the last body literal of the i-th rule (when it has at
          least two) *)
  | Add_redundant  (** insert one redundant, well-formed condition *)
  | Extra_rule
      (** append a spurious (detection-neutral) rule for the same FVP *)
  | Wrong_kind
      (** re-express a statically determined definition as a (wrong)
          simple fluent, as Gemma-2 did for 'trawling' *)
  | Replace_reference of string * string
      (** rename a fluent referenced in rule bodies only, leaving a
          dangling reference to an undefined activity *)

val apply : mutation -> Rtec.Ast.definition -> Rtec.Ast.definition
val apply_all : mutation list -> Rtec.Ast.definition -> Rtec.Ast.definition

val synonyms : (string * string) list
(** [(canonical, variant)] naming pairs: plausible alternative names an
    LLM picks for domain identifiers. Error models draw renames from this
    table; the syntactic corrector knows it too (it codifies the human
    domain knowledge used for the manual corrections of Section 5.2, e.g.
    'trawlingArea' means 'fishing'). *)

val variant_of : string -> string option
val canonical_of : string -> string option
