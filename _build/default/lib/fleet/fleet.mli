(** Vehicle fleet management — the second application domain sketched in
    the paper's further work (Section 6): "prompt R may be re-used as it
    is, while the prompts F, E, and T may be customised with
    domain-specific knowledge". The domain follows the city transport
    management use case of the Event Calculus fleet-management literature:
    buses emit stop-visit, driving-event and cabin-sensor signals, and the
    composite activities describe punctuality, driving quality, passenger
    comfort and passenger safety. *)

val domain : Domain.t
(** The packaged domain: input events (stop_enter/stop_leave with
    timeliness, abrupt_acceleration/abrupt_deceleration/sharp_turn, speed,
    noise_level, temperature, passenger_density, route_start/route_end),
    thresholds (speedLimit, tempMin, tempMax), ten gold activity
    definitions and the naming lexicon. *)

type config = { seed : int; buses : int; hours : int }

val default_config : config

val generate : ?config:config -> unit -> Rtec.Stream.t * Rtec.Knowledge.t
(** A synthetic day of bus telemetry. Buses follow one of three personas:
    punctual-and-smooth, aggressive (speeding, sharp turns), and degraded
    (late, crowded, hot, noisy), so every composite activity of the domain
    occurs in the stream. *)
