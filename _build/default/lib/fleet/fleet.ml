let input_events =
  [
    { Domain.name = "stop_enter"; arity = 3;
      meaning =
        "'Vehicle' entered the bus stop 'Stop'; the third argument reports \
         the timeliness of the visit: early, onTime or late." };
    { Domain.name = "stop_leave"; arity = 3;
      meaning =
        "'Vehicle' left the bus stop 'Stop'; the third argument reports the \
         timeliness of the departure: early, onTime or late." };
    { Domain.name = "abrupt_acceleration"; arity = 1;
      meaning = "'Vehicle' accelerated abruptly." };
    { Domain.name = "abrupt_deceleration"; arity = 1;
      meaning = "'Vehicle' decelerated abruptly." };
    { Domain.name = "sharp_turn"; arity = 1; meaning = "'Vehicle' made a sharp turn." };
    { Domain.name = "speed"; arity = 2;
      meaning = "A periodic sample of the speed (km/h) of 'Vehicle'." };
    { Domain.name = "noise_level"; arity = 2;
      meaning = "The cabin noise of 'Vehicle' was measured as low or high." };
    { Domain.name = "temperature"; arity = 2;
      meaning = "The cabin temperature (Celsius) of 'Vehicle'." };
    { Domain.name = "passenger_density"; arity = 2;
      meaning = "The passenger density of 'Vehicle' was measured as low, normal or high." };
    { Domain.name = "route_start"; arity = 2;
      meaning = "'Vehicle' started serving the route 'Route'." };
    { Domain.name = "route_end"; arity = 2;
      meaning = "'Vehicle' finished serving the route 'Route'." };
  ]

let background =
  [
    { Domain.name = "thresholds"; arity = 2;
      meaning = "The threshold with the given identifier has the given value." };
  ]

let thresholds =
  [
    { Domain.id = "speedLimit"; value = 50.0;
      meaning = "The maximum speed (km/h) a bus may reach inside the city." };
    { Domain.id = "tempMin"; value = 18.0;
      meaning = "The minimum comfortable cabin temperature (Celsius)." };
    { Domain.id = "tempMax"; value = 26.0;
      meaning = "The maximum comfortable cabin temperature (Celsius)." };
  ]

let entries =
  [
    {
      Domain.name = "punctuality";
      code = Some "pu";
      nl =
        "A vehicle is punctual when it enters a stop early or on time. It \
         becomes non-punctual when it enters a stop late or leaves a stop \
         early. Punctuality stops being assessed when the vehicle finishes \
         its route.";
      source =
        {|
initiatedAt(punctuality(Vehicle)=punctual, T) :-
    happensAt(stop_enter(Vehicle, Stop, onTime), T).
initiatedAt(punctuality(Vehicle)=punctual, T) :-
    happensAt(stop_enter(Vehicle, Stop, early), T).
initiatedAt(punctuality(Vehicle)=nonPunctual, T) :-
    happensAt(stop_enter(Vehicle, Stop, late), T).
initiatedAt(punctuality(Vehicle)=nonPunctual, T) :-
    happensAt(stop_leave(Vehicle, Stop, early), T).
terminatedAt(punctuality(Vehicle)=punctual, T) :-
    happensAt(route_end(Vehicle, Route), T).
terminatedAt(punctuality(Vehicle)=nonPunctual, T) :-
    happensAt(route_end(Vehicle, Route), T).
|};
    };
    {
      Domain.name = "drivingStyle";
      code = None;
      nl =
        "The driving style of a vehicle becomes unsafe when the vehicle \
         makes a sharp turn, and uncomfortable when it accelerates or \
         decelerates abruptly. A driving-style episode ends when the \
         vehicle enters a stop.";
      source =
        {|
initiatedAt(drivingStyle(Vehicle)=unsafe, T) :-
    happensAt(sharp_turn(Vehicle), T).
initiatedAt(drivingStyle(Vehicle)=uncomfortable, T) :-
    happensAt(abrupt_acceleration(Vehicle), T).
initiatedAt(drivingStyle(Vehicle)=uncomfortable, T) :-
    happensAt(abrupt_deceleration(Vehicle), T).
terminatedAt(drivingStyle(Vehicle)=unsafe, T) :-
    happensAt(stop_enter(Vehicle, Stop, Timeliness), T).
terminatedAt(drivingStyle(Vehicle)=uncomfortable, T) :-
    happensAt(stop_enter(Vehicle, Stop, Timeliness), T).
|};
    };
    {
      Domain.name = "speeding";
      code = Some "sp";
      nl =
        "A vehicle is speeding while its sampled speed exceeds the city \
         speed limit. Speeding ends when a sample at or below the limit \
         arrives.";
      source =
        {|
initiatedAt(speeding(Vehicle)=true, T) :-
    happensAt(speed(Vehicle, Speed), T),
    thresholds(speedLimit, SpeedLimit),
    Speed > SpeedLimit.
terminatedAt(speeding(Vehicle)=true, T) :-
    happensAt(speed(Vehicle, Speed), T),
    thresholds(speedLimit, SpeedLimit),
    Speed =< SpeedLimit.
|};
    };
    {
      Domain.name = "uncomfortableTemperature";
      code = None;
      nl =
        "The cabin temperature of a vehicle is uncomfortable while it is \
         below the minimum or above the maximum comfortable temperature. \
         The activity ends when a measurement within the comfortable range \
         arrives.";
      source =
        {|
initiatedAt(uncomfortableTemperature(Vehicle)=true, T) :-
    happensAt(temperature(Vehicle, Value), T),
    thresholds(tempMin, TempMin),
    Value < TempMin.
initiatedAt(uncomfortableTemperature(Vehicle)=true, T) :-
    happensAt(temperature(Vehicle, Value), T),
    thresholds(tempMax, TempMax),
    Value > TempMax.
terminatedAt(uncomfortableTemperature(Vehicle)=true, T) :-
    happensAt(temperature(Vehicle, Value), T),
    thresholds(tempMin, TempMin),
    Value >= TempMin,
    thresholds(tempMax, TempMax),
    Value =< TempMax.
|};
    };
    {
      Domain.name = "highNoise";
      code = None;
      nl =
        "The cabin of a vehicle is noisy while the measured noise level is \
         high; the activity ends when a low measurement arrives.";
      source =
        {|
initiatedAt(highNoise(Vehicle)=true, T) :-
    happensAt(noise_level(Vehicle, high), T).
terminatedAt(highNoise(Vehicle)=true, T) :-
    happensAt(noise_level(Vehicle, low), T).
|};
    };
    {
      Domain.name = "crowded";
      code = None;
      nl =
        "A vehicle is crowded while the measured passenger density is high; \
         the activity ends when the density drops to normal or low.";
      source =
        {|
initiatedAt(crowded(Vehicle)=true, T) :-
    happensAt(passenger_density(Vehicle, high), T).
terminatedAt(crowded(Vehicle)=true, T) :-
    happensAt(passenger_density(Vehicle, normal), T).
terminatedAt(crowded(Vehicle)=true, T) :-
    happensAt(passenger_density(Vehicle, low), T).
|};
    };
    {
      Domain.name = "drivingQuality";
      code = Some "dq";
      nl =
        "The driving quality of a vehicle is high while the vehicle is \
         punctual and its driving style is neither unsafe nor \
         uncomfortable. The driving quality is low while the vehicle is \
         non-punctual or its driving style is unsafe.";
      source =
        {|
holdsFor(drivingQuality(Vehicle)=high, I) :-
    holdsFor(punctuality(Vehicle)=punctual, Ip),
    holdsFor(drivingStyle(Vehicle)=unsafe, Iu),
    holdsFor(drivingStyle(Vehicle)=uncomfortable, Ic),
    relative_complement_all(Ip, [Iu, Ic], I).
holdsFor(drivingQuality(Vehicle)=low, I) :-
    holdsFor(punctuality(Vehicle)=nonPunctual, In),
    holdsFor(drivingStyle(Vehicle)=unsafe, Iu),
    union_all([In, Iu], I).
|};
    };
    {
      Domain.name = "passengerComfort";
      code = Some "pc";
      nl =
        "The comfort of the passengers of a vehicle is reducing while the \
         driving style is uncomfortable, or the cabin is noisy, or the \
         cabin temperature is uncomfortable, or the vehicle is crowded.";
      source =
        {|
holdsFor(passengerComfort(Vehicle)=reducing, I) :-
    holdsFor(drivingStyle(Vehicle)=uncomfortable, I1),
    holdsFor(highNoise(Vehicle)=true, I2),
    holdsFor(uncomfortableTemperature(Vehicle)=true, I3),
    holdsFor(crowded(Vehicle)=true, I4),
    union_all([I1, I2, I3, I4], I).
|};
    };
    {
      Domain.name = "passengerSafety";
      code = Some "ps";
      nl =
        "The safety of the passengers of a vehicle is reducing while the \
         vehicle is speeding while crowded, or while the driving style is \
         unsafe.";
      source =
        {|
holdsFor(passengerSafety(Vehicle)=reducing, I) :-
    holdsFor(speeding(Vehicle)=true, Is),
    holdsFor(crowded(Vehicle)=true, Ic),
    intersect_all([Is, Ic], Isc),
    holdsFor(drivingStyle(Vehicle)=unsafe, Iu),
    union_all([Isc, Iu], I).
|};
    };
    {
      Domain.name = "recklessDriving";
      code = Some "rd";
      nl =
        "A vehicle is driven recklessly while it is speeding and its \
         driving style is unsafe at the same time.";
      source =
        {|
holdsFor(recklessDriving(Vehicle)=true, I) :-
    holdsFor(speeding(Vehicle)=true, Is),
    holdsFor(drivingStyle(Vehicle)=unsafe, Iu),
    intersect_all([Is, Iu], I).
|};
    };
  ]

let synonyms =
  [
    ("stop_enter", "enterStop");
    ("stop_leave", "leaveStop");
    ("abrupt_acceleration", "abruptAccel");
    ("abrupt_deceleration", "abruptBraking");
    ("sharp_turn", "sharpTurn");
    ("noise_level", "noiseLevel");
    ("passenger_density", "passengerDensity");
    ("route_start", "routeStart");
    ("route_end", "routeEnd");
    ("speedLimit", "maxSpeed");
    ("tempMin", "minTemperature");
    ("tempMax", "maxTemperature");
    ("punctuality", "timeliness");
    ("drivingStyle", "drivingMode");
    ("crowded", "overcrowded");
    ("speeding", "overSpeed");
    ("onTime", "on_time");
    ("nonPunctual", "notPunctual");
  ]

let domain =
  {
    Domain.domain_name = "fleet";
    input_events;
    input_fluents = [];
    background;
    thresholds;
    entries;
    extra_constants =
      [ "true"; "early"; "onTime"; "late"; "low"; "normal"; "high"; "punctual";
        "nonPunctual"; "unsafe"; "uncomfortable"; "reducing" ];
    synonyms;
  }

(* --- synthetic telemetry --- *)

type config = { seed : int; buses : int; hours : int }

let default_config = { seed = 42; buses = 6; hours = 4 }

type persona = Good | Aggressive | Degraded

let generate ?(config = default_config) () =
  let events = ref [] in
  let ev t name args = events := { Rtec.Stream.time = t; term = Rtec.Term.app name args } :: !events in
  let rng = ref (config.seed land 0x3FFFFFFF) in
  let rand bound =
    (* Small deterministic LCG, as in the maritime scenarios. *)
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng mod bound
  in
  let horizon = config.hours * 3600 in
  let bus index =
    let persona = match index mod 3 with 0 -> Good | 1 -> Aggressive | _ -> Degraded in
    let id = Rtec.Term.Atom (Printf.sprintf "bus%d" index) in
    let route = Rtec.Term.Atom (Printf.sprintf "route%d" (index mod 3)) in
    let t0 = 300 + (index * 450) in
    ev t0 "route_start" [ id; route ];
    let stop_interval = 420 in
    let stops = (horizon - t0 - 600) / stop_interval in
    for s = 0 to stops - 1 do
      let t = t0 + 60 + (s * stop_interval) in
      let stop = Rtec.Term.Atom (Printf.sprintf "stop%d" (s mod 12)) in
      let timeliness =
        match persona with
        | Good -> if rand 10 < 9 then "onTime" else "early"
        | Aggressive -> if rand 10 < 6 then "onTime" else "early"
        | Degraded -> if rand 10 < 7 then "late" else "onTime"
      in
      ev t "stop_enter" [ id; stop; Rtec.Term.Atom timeliness ];
      ev (t + 60) "stop_leave" [ id; stop; Rtec.Term.Atom "onTime" ];
      (* Between stops: driving events and speed samples. *)
      let mid = t + 120 + rand 120 in
      (match persona with
      | Good -> ()
      | Aggressive ->
        ev mid "sharp_turn" [ id ];
        if rand 10 < 5 then ev (mid + 45) "abrupt_acceleration" [ id ]
      | Degraded -> if rand 10 < 4 then ev mid "abrupt_deceleration" [ id ]);
      let sampled_speed =
        match persona with
        | Aggressive -> 45 + rand 20 (* often above the 50 km/h limit *)
        | Good | Degraded -> 25 + rand 20
      in
      ev (mid + 30) "speed" [ id; Rtec.Term.Real (float_of_int sampled_speed) ];
      ev (t + stop_interval - 60) "speed" [ id; Rtec.Term.Real (float_of_int (20 + rand 15)) ]
    done;
    (* Cabin sensors every ten minutes. *)
    let rec cabin t =
      if t < horizon - 600 then begin
        let temp, noise, density =
          match persona with
          | Good -> (20 + rand 4, "low", "normal")
          | Aggressive -> (21 + rand 3, "low", if rand 10 < 3 then "high" else "normal")
          | Degraded -> (26 + rand 5, (if rand 10 < 6 then "high" else "low"), "high")
        in
        ev t "temperature" [ id; Rtec.Term.Real (float_of_int temp) ];
        ev (t + 20) "noise_level" [ id; Rtec.Term.Atom noise ];
        ev (t + 40) "passenger_density" [ id; Rtec.Term.Atom density ];
        cabin (t + 600)
      end
    in
    cabin (t0 + 120);
    ev (t0 + 60 + (stops * stop_interval)) "route_end" [ id; route ]
  in
  for i = 0 to config.buses - 1 do
    bus i
  done;
  let stream = Rtec.Stream.make !events in
  let knowledge = Rtec.Knowledge.of_list (Domain.threshold_facts domain) in
  (stream, knowledge)
