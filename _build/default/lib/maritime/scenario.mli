(** Scripted vessel behaviours for the synthetic AIS stream. Each scenario
    produces the position messages of one vessel (or a pair), designed to
    exhibit exactly one composite activity of Figure 2 plus the incidental
    lower-level activities. All randomness comes from a deterministic
    linear-congruential generator, so datasets are reproducible. *)

module Rng : sig
  type t

  val create : int -> t
  val float : t -> float -> float
  (** [float rng bound] is uniform in [\[0, bound)]. *)

  val range : t -> float -> float -> float
  val int : t -> int -> int
end

type vessel = { id : string; vessel_type : string }

type t = { vessels : vessel list; messages : Ais.message list }

(** A leg of a trajectory: sail for [duration] seconds at [speed] knots
    (with uniform jitter of [speed_jitter]) on course [course] (degrees,
    mathematical convention), reporting a true heading that diverges from
    the course by [heading_offset]. [turn_every]/[turn_amplitude] make the
    course zig-zag around its nominal value, producing change_in_heading
    events. [silent] suppresses messages (a communication gap). *)
type leg = {
  duration : int;
  speed : float;
  speed_jitter : float;
  course : float;
  heading_offset : float;
  turn_every : int;  (** 0 = never turn *)
  turn_amplitude : float;
  silent : bool;
}

val leg : ?speed_jitter:float -> ?heading_offset:float -> ?turn_every:int ->
  ?turn_amplitude:float -> ?silent:bool -> duration:int -> speed:float ->
  course:float -> unit -> leg

val sail :
  rng:Rng.t -> id:string -> vessel_type:string -> start:float * float ->
  t0:int -> ?step:int -> leg list -> t
(** Integrates the legs into a message track, sampling every [step]
    (default 60) seconds. *)

(** {1 The scenario library} *)

type builder = rng:Rng.t -> suffix:string -> t0:int -> Geography.t -> t

val trawler : builder
(** Enters a fishing area, tows at trawling speed with frequent heading
    changes for hours, leaves: [trawling]. *)

val speeder : builder
(** Crosses the coastal band above the safe speed: [highSpeedNearCoast]. *)

val anchored : builder
(** Stops inside the anchorage, far from ports: [anchoredOrMoored]. *)

val moored : builder
(** Stops near a port: [anchoredOrMoored]. *)

val tug_pair : builder
(** A tug and its tow move together at tugging speed: [tugging]. *)

val pilot_pair : builder
(** A pilot vessel boards a slow cargo ship: [pilotBoarding]. *)

val loiterer : builder
(** Lingers at low speed (with a stop) far from ports, outside anchorages:
    [loitering]. *)

val sar : builder
(** A search-and-rescue vessel sweeps with frequent course changes at SAR
    speed: [searchAndRescue]. *)

val drifter : builder
(** Under way with course-over-ground diverging from heading: [drifting]. *)

val gapper : builder
(** Normal sailing interrupted by communication gaps: [gap]. *)

val nominal : builder
(** Unremarkable cargo crossing; background traffic. *)

val all : (string * builder) list
(** The scenario library, keyed by name. *)
