type shape =
  | Circle of { cx : float; cy : float; r : float }
  | Rect of { x0 : float; y0 : float; x1 : float; y1 : float }

type area = { id : string; area_type : string; shape : shape }
type port = { port_id : string; px : float; py : float }
type t = { areas : area list; ports : port list }

let default =
  let ports =
    [
      { port_id = "portBrest"; px = 3_000.; py = 20_000. };
      { port_id = "portCamaret"; px = 3_000.; py = 70_000. };
    ]
  in
  let near_port p =
    {
      id = "np_" ^ p.port_id;
      area_type = "nearPorts";
      shape = Circle { cx = p.px; cy = p.py; r = 3_000. };
    }
  in
  let areas =
    [
      { id = "coast1"; area_type = "nearCoast";
        shape = Rect { x0 = 0.; y0 = 0.; x1 = 6_000.; y1 = 100_000. } };
      { id = "anch1"; area_type = "anchorage";
        shape = Circle { cx = 12_000.; cy = 28_000.; r = 2_500. } };
      { id = "fish1"; area_type = "fishing";
        shape = Rect { x0 = 30_000.; y0 = 30_000.; x1 = 50_000.; y1 = 50_000. } };
      { id = "fish2"; area_type = "fishing";
        shape = Rect { x0 = 60_000.; y0 = 10_000.; x1 = 80_000.; y1 = 25_000. } };
      { id = "natura1"; area_type = "natura";
        shape = Rect { x0 = 30_000.; y0 = 60_000.; x1 = 45_000.; y1 = 80_000. } };
    ]
    @ List.map near_port ports
  in
  { areas; ports }

let contains area ~x ~y =
  match area.shape with
  | Circle { cx; cy; r } ->
    let dx = x -. cx and dy = y -. cy in
    (dx *. dx) +. (dy *. dy) <= r *. r
  | Rect { x0; y0; x1; y1 } -> x >= x0 && x <= x1 && y >= y0 && y <= y1

let areas_at t ~x ~y = List.filter (fun a -> contains a ~x ~y) t.areas

let area_type_facts t =
  List.map
    (fun a -> Rtec.Term.app "areaType" [ Rtec.Term.Atom a.id; Rtec.Term.Atom a.area_type ])
    t.areas

let distance (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  sqrt ((dx *. dx) +. (dy *. dy))
