(** Synthetic maritime dataset: scenarios composed into one AIS stream,
    preprocessed into the RTEC input, together with the background
    knowledge (geography, vessel types, type speeds, thresholds). *)

type config = {
  seed : int;
  replicas : int;  (** instances of each activity scenario *)
  nominal : int;  (** extra background-traffic vessels *)
}

val default_config : config

type t = {
  geography : Geography.t;
  vessels : Scenario.vessel list;
  messages : Ais.message list;
  stream : Rtec.Stream.t;
  knowledge : Rtec.Knowledge.t;
}

val generate : ?config:config -> unit -> t

val vessel_fact : Scenario.vessel -> Rtec.Term.t
(** The [vesselType(Vessel, Type)] fact of one vessel. *)
