let synonyms =
  [
    (* input events *)
    ("entersArea", "inArea");
    ("leavesArea", "exitsArea");
    ("gap_start", "gapStart");
    ("gap_end", "gapEnd");
    ("stop_start", "stopStart");
    ("stop_end", "stopEnd");
    ("slow_motion_start", "slowMotionStart");
    ("slow_motion_end", "slowMotionEnd");
    ("change_in_speed_start", "speedChangeStart");
    ("change_in_speed_end", "speedChangeEnd");
    ("change_in_heading", "headingChange");
    ("velocity", "velocitySignal");
    (* background predicates *)
    ("areaType", "typeOfArea");
    ("vesselType", "typeOfVessel");
    ("typeSpeed", "speedOfType");
    (* constants *)
    ("fishing", "trawlingArea");
    ("nearPorts", "closeToPorts");
    ("farFromPorts", "awayFromPorts");
    ("anchorage", "anchorageArea");
    ("nearCoast", "coastalArea");
    ("below", "low");
    ("above", "high");
    (* input fluents and previously defined activities referenced in later
       definitions *)
    ("proximity", "nearby");
    ("stopped", "idle");
    ("lowSpeed", "slowSpeed");
    ("underWay", "underway");
    ("trawlSpeed", "trawlingSpeed");
    ("sarSpeed", "rescueSpeed");
    ("trawlingMovement", "trawlingPattern");
    ("sarMovement", "rescueMovement");
    ("tuggingSpeed", "towSpeed");
    ("pilotSpeed", "boardingPace");
    ("anchoredOrMoored", "anchoredMoored");
    ("changingSpeed", "speedChanging");
    ("rendezVous", "shipToShipTransfer");
    ("illegalFishing", "protectedAreaFishing");
    ("naturaSpeed", "protectedSpeed");
    ("naturaMovement", "protectedMovement");
    (* threshold identifiers *)
    ("hcNearCoastMax", "maxCoastSpeed");
    ("trawlspeedMin", "trawlSpeedMin");
    ("trawlspeedMax", "trawlSpeedMax");
    ("movingMin", "minMovingSpeed");
    ("sarSpeedMin", "sarMinSpeed");
    ("sarSpeedMax", "sarMaxSpeed");
    ("tuggingMin", "tugSpeedMin");
    ("tuggingMax", "tugSpeedMax");
    ("pilotSpeedMax", "maxPilotSpeed");
    ("adriftAngThr", "driftAngleThreshold");
  ]

let item (i : Vocabulary.item) =
  { Domain.name = i.name; arity = i.arity; meaning = i.meaning }

let threshold (t : Vocabulary.threshold) =
  { Domain.id = t.id; value = t.value; meaning = t.meaning }

let entry (e : Gold.entry) =
  { Domain.name = e.name; code = e.code; nl = e.nl; source = e.source }

let domain =
  {
    Domain.domain_name = "maritime";
    input_events = List.map item Vocabulary.input_events;
    input_fluents = List.map item Vocabulary.input_fluents;
    background = List.map item Vocabulary.background;
    thresholds = List.map threshold Vocabulary.thresholds;
    entries = List.map entry Gold.entries;
    extra_constants =
      Vocabulary.area_types @ Vocabulary.vessel_types
      @ [ "true"; "nearPorts"; "farFromPorts"; "below"; "normal"; "above" ];
    synonyms;
  }
