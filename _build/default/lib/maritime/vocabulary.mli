(** The input vocabulary of the maritime domain: the items of the input
    stream (prompt E), the threshold catalogue (prompt T) and the atemporal
    background predicates. Natural-language meanings are carried alongside
    each item because the prompt builders quote them verbatim. *)

type item = { name : string; arity : int; meaning : string }

type threshold = { id : string; value : float; meaning : string }

val input_events : item list
(** Events derived by the online processing of AIS position signals. *)

val input_fluents : item list
(** Statically determined fluents computed upstream of RTEC ([proximity]). *)

val background : item list
(** Atemporal predicates: [vesselType/2], [typeSpeed/4], [areaType/2],
    [thresholds/2]. *)

val thresholds : threshold list
val threshold_value : string -> float
(** Raises [Not_found] for an unknown threshold id. *)

val area_types : string list
(** Constants naming area types: [fishing], [anchorage], [nearCoast],
    [nearPorts], [natura]. *)

val vessel_types : string list
val type_speeds : (string * float * float * float) list
(** [(vesselType, min, max, average)] sailing speeds in knots. *)

val threshold_facts : Rtec.Term.t list
(** The [thresholds/2] facts, ready for a {!Rtec.Knowledge.t}. *)

val type_speed_facts : Rtec.Term.t list

val check_vocabulary : Rtec.Check.vocabulary
(** The vocabulary in the form expected by {!Rtec.Check.check}. *)

val known_names : string list
(** Every identifier of the domain (events, fluents, predicates, constants,
    threshold ids); the syntactic corrector maps unknown names onto this
    list. *)
