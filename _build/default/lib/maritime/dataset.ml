type config = { seed : int; replicas : int; nominal : int }

let default_config = { seed = 20250325; replicas = 2; nominal = 3 }

type t = {
  geography : Geography.t;
  vessels : Scenario.vessel list;
  messages : Ais.message list;
  stream : Rtec.Stream.t;
  knowledge : Rtec.Knowledge.t;
}

let vessel_fact (v : Scenario.vessel) =
  Rtec.Term.app "vesselType" [ Rtec.Term.Atom v.id; Rtec.Term.Atom v.vessel_type ]

let generate ?(config = default_config) () =
  let geography = Geography.default in
  let rng = Scenario.Rng.create config.seed in
  let tracks = ref [] in
  let instantiate name (builder : Scenario.builder) index =
    let suffix = Printf.sprintf "_%s%d" name index in
    (* Stagger start times so that replicated instances are also separated
       in time, which keeps incidental vessel proximities rare. *)
    let t0 = 600 + (index * 5400) + Scenario.Rng.int rng 300 in
    tracks := builder ~rng ~suffix ~t0 geography :: !tracks
  in
  List.iter
    (fun (name, builder) ->
      if String.equal name "nominal" then
        for i = 0 to config.nominal - 1 do
          instantiate name builder i
        done
      else
        for i = 0 to config.replicas - 1 do
          instantiate name builder i
        done)
    Scenario.all;
  let tracks = List.rev !tracks in
  let vessels = List.concat_map (fun (t : Scenario.t) -> t.vessels) tracks in
  let messages =
    List.concat_map (fun (t : Scenario.t) -> t.messages) tracks
    |> List.sort (fun (a : Ais.message) b -> Int.compare a.t b.t)
  in
  let stream = Ais.preprocess ~geography messages in
  let knowledge =
    Rtec.Knowledge.of_list
      (Geography.area_type_facts geography
      @ List.map vessel_fact vessels
      @ Vocabulary.threshold_facts @ Vocabulary.type_speed_facts)
  in
  { geography; vessels; messages; stream; knowledge }
