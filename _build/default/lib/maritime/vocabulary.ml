type item = { name : string; arity : int; meaning : string }
type threshold = { id : string; value : float; meaning : string }

let input_events =
  [
    { name = "change_in_speed_start"; arity = 1;
      meaning = "'Vessel' started changing its speed." };
    { name = "change_in_speed_end"; arity = 1;
      meaning = "'Vessel' stopped changing its speed." };
    { name = "change_in_heading"; arity = 1;
      meaning = "'Vessel' changed its heading by a significant amount." };
    { name = "entersArea"; arity = 2;
      meaning = "'Vessel' entered the area with identifier 'Area'." };
    { name = "leavesArea"; arity = 2;
      meaning = "'Vessel' left the area with identifier 'Area'." };
    { name = "gap_start"; arity = 1;
      meaning = "We stopped receiving position messages from 'Vessel'." };
    { name = "gap_end"; arity = 1;
      meaning = "We resumed receiving position messages from 'Vessel'." };
    { name = "slow_motion_start"; arity = 1;
      meaning = "'Vessel' started moving at a low speed." };
    { name = "slow_motion_end"; arity = 1;
      meaning = "'Vessel' stopped moving at a low speed." };
    { name = "stop_start"; arity = 1;
      meaning = "'Vessel' became idle, i.e. it stopped moving." };
    { name = "stop_end"; arity = 1;
      meaning = "'Vessel' stopped being idle, i.e. it started moving again." };
    { name = "velocity"; arity = 4;
      meaning =
        "A position signal of 'Vessel' reporting its speed (knots), its \
         course over ground and its true heading (degrees)." };
  ]

let input_fluents =
  [
    { name = "proximity"; arity = 2;
      meaning =
        "The intervals during which two vessels are close to each other, \
         computed by spatial preprocessing." };
  ]

let background =
  [
    { name = "vesselType"; arity = 2;
      meaning = "'Vessel' is of the given type, e.g. fishing, tug, sar." };
    { name = "typeSpeed"; arity = 4;
      meaning =
        "Vessels of a type sail, when under way, between a minimum and a \
         maximum speed, with a typical average." };
    { name = "areaType"; arity = 2;
      meaning = "The area with identifier 'Area' is of the given type." };
    { name = "thresholds"; arity = 2;
      meaning = "The threshold with the given identifier has the given value." };
  ]

let thresholds =
  [
    { id = "movingMin"; value = 0.5;
      meaning = "The minimum speed at which a vessel is considered to be moving." };
    { id = "hcNearCoastMax"; value = 5.0;
      meaning =
        "The maximum sailing speed that is safe for a vessel to have in a \
         coastal area." };
    { id = "trawlspeedMin"; value = 2.0;
      meaning = "The minimum speed at which trawlers tow their nets." };
    { id = "trawlspeedMax"; value = 4.5;
      meaning = "The maximum speed at which trawlers tow their nets." };
    { id = "tuggingMin"; value = 2.0;
      meaning = "The minimum speed of a towing operation." };
    { id = "tuggingMax"; value = 6.0;
      meaning = "The maximum speed of a towing operation." };
    { id = "pilotSpeedMax"; value = 2.0;
      meaning = "The maximum speed of a pilot vessel during a boarding operation." };
    { id = "sarSpeedMin"; value = 7.0;
      meaning = "The minimum speed of a search-and-rescue operation." };
    { id = "sarSpeedMax"; value = 15.0;
      meaning = "The maximum speed of a search-and-rescue operation." };
    { id = "adriftAngThr"; value = 30.0;
      meaning =
        "The minimum divergence between the course over ground and the true \
         heading of a vessel that indicates that the vessel is drifting." };
  ]

let threshold_value id =
  match List.find_opt (fun t -> String.equal t.id id) thresholds with
  | Some t -> t.value
  | None -> raise Not_found

let area_types = [ "fishing"; "anchorage"; "nearCoast"; "nearPorts"; "natura" ]

let vessel_types =
  [ "cargo"; "tanker"; "passenger"; "fishing"; "tug"; "pilotVessel"; "sar" ]

let type_speeds =
  [
    ("cargo", 8.0, 16.0, 12.0);
    ("tanker", 7.0, 14.0, 10.0);
    ("passenger", 10.0, 25.0, 18.0);
    ("fishing", 2.0, 12.0, 7.0);
    ("tug", 2.0, 8.0, 5.0);
    ("pilotVessel", 1.0, 10.0, 5.0);
    ("sar", 5.0, 18.0, 10.0);
  ]

let threshold_facts =
  List.map
    (fun t -> Rtec.Term.app "thresholds" [ Rtec.Term.Atom t.id; Rtec.Term.Real t.value ])
    thresholds

let type_speed_facts =
  List.map
    (fun (ty, min, max, avg) ->
      Rtec.Term.app "typeSpeed"
        [ Rtec.Term.Atom ty; Rtec.Term.Real min; Rtec.Term.Real max; Rtec.Term.Real avg ])
    type_speeds

let check_vocabulary =
  {
    Rtec.Check.input_events = List.map (fun i -> (i.name, i.arity)) input_events;
    input_fluents = List.map (fun i -> (i.name, i.arity)) input_fluents;
    background = List.map (fun i -> (i.name, i.arity)) background;
  }

let known_names =
  List.map (fun i -> i.name) input_events
  @ List.map (fun i -> i.name) input_fluents
  @ List.map (fun i -> i.name) background
  @ List.map (fun t -> t.id) thresholds
  @ area_types @ vessel_types
  @ [ "true"; "nearPorts"; "farFromPorts"; "below"; "normal"; "above" ]
