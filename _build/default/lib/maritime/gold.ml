type entry = {
  name : string;
  code : string option;
  nl : string;
  source : string;
}

let entries =
  [
    {
      name = "withinArea";
      code = None;
      nl =
        "This activity starts when a vessel enters an area of interest. The \
         activity ends when the vessel leaves the area that it had entered. \
         When there is a gap in signal transmissions, we can no longer \
         assume that the vessel remains in the same area.";
      source =
        {|
initiatedAt(withinArea(Vessel, AreaType)=true, T) :-
    happensAt(entersArea(Vessel, Area), T),
    areaType(Area, AreaType).
terminatedAt(withinArea(Vessel, AreaType)=true, T) :-
    happensAt(leavesArea(Vessel, Area), T),
    areaType(Area, AreaType).
terminatedAt(withinArea(Vessel, AreaType)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "gap";
      code = None;
      nl =
        "A communication gap starts when we stop receiving messages from a \
         vessel. We would like to distinguish the cases where a \
         communication gap starts (i) near some port and (ii) far from all \
         ports. A communication gap ends when we resume receiving messages \
         from a vessel.";
      source =
        {|
initiatedAt(gap(Vessel)=nearPorts, T) :-
    happensAt(gap_start(Vessel), T),
    holdsAt(withinArea(Vessel, nearPorts)=true, T).
initiatedAt(gap(Vessel)=farFromPorts, T) :-
    happensAt(gap_start(Vessel), T),
    not holdsAt(withinArea(Vessel, nearPorts)=true, T).
terminatedAt(gap(Vessel)=nearPorts, T) :-
    happensAt(gap_end(Vessel), T).
terminatedAt(gap(Vessel)=farFromPorts, T) :-
    happensAt(gap_end(Vessel), T).
|};
    };
    {
      name = "stopped";
      code = None;
      nl =
        "A vessel is stopped when it is idle. We would like to distinguish \
         the cases where the vessel is stopped (i) near some port and (ii) \
         far from all ports. A vessel stops being stopped when it starts \
         moving again, or when a communication gap starts.";
      source =
        {|
initiatedAt(stopped(Vessel)=nearPorts, T) :-
    happensAt(stop_start(Vessel), T),
    holdsAt(withinArea(Vessel, nearPorts)=true, T).
initiatedAt(stopped(Vessel)=farFromPorts, T) :-
    happensAt(stop_start(Vessel), T),
    not holdsAt(withinArea(Vessel, nearPorts)=true, T).
terminatedAt(stopped(Vessel)=nearPorts, T) :-
    happensAt(stop_end(Vessel), T).
terminatedAt(stopped(Vessel)=farFromPorts, T) :-
    happensAt(stop_end(Vessel), T).
terminatedAt(stopped(Vessel)=nearPorts, T) :-
    happensAt(gap_start(Vessel), T).
terminatedAt(stopped(Vessel)=farFromPorts, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "lowSpeed";
      code = None;
      nl =
        "A vessel sails at a low speed while it is moving slowly. The \
         activity ends when the slow motion ends or when a communication \
         gap starts.";
      source =
        {|
initiatedAt(lowSpeed(Vessel)=true, T) :-
    happensAt(slow_motion_start(Vessel), T).
terminatedAt(lowSpeed(Vessel)=true, T) :-
    happensAt(slow_motion_end(Vessel), T).
terminatedAt(lowSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "changingSpeed";
      code = None;
      nl =
        "A vessel is changing its speed between the moment a speed change \
         starts and the moment it ends. A communication gap also ends the \
         activity.";
      source =
        {|
initiatedAt(changingSpeed(Vessel)=true, T) :-
    happensAt(change_in_speed_start(Vessel), T).
terminatedAt(changingSpeed(Vessel)=true, T) :-
    happensAt(change_in_speed_end(Vessel), T).
terminatedAt(changingSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "movingSpeed";
      code = None;
      nl =
        "While a vessel is moving, we would like to know whether it moves \
         at a speed that is below, within, or above the typical sailing \
         speed range of its vessel type. A vessel is moving when its speed \
         is at least the minimum moving speed. The activity ends when the \
         vessel's speed drops below the minimum moving speed or when a \
         communication gap starts.";
      source =
        {|
initiatedAt(movingSpeed(Vessel)=below, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(movingMin, MovingMin),
    Speed >= MovingMin,
    vesselType(Vessel, Type),
    typeSpeed(Type, Min, Max, Avg),
    Speed < Min.
initiatedAt(movingSpeed(Vessel)=normal, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    vesselType(Vessel, Type),
    typeSpeed(Type, Min, Max, Avg),
    Speed >= Min,
    Speed =< Max.
initiatedAt(movingSpeed(Vessel)=above, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    vesselType(Vessel, Type),
    typeSpeed(Type, Min, Max, Avg),
    Speed > Max.
terminatedAt(movingSpeed(Vessel)=below, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(movingMin, MovingMin),
    Speed < MovingMin.
terminatedAt(movingSpeed(Vessel)=normal, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(movingMin, MovingMin),
    Speed < MovingMin.
terminatedAt(movingSpeed(Vessel)=above, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(movingMin, MovingMin),
    Speed < MovingMin.
terminatedAt(movingSpeed(Vessel)=below, T) :-
    happensAt(gap_start(Vessel), T).
terminatedAt(movingSpeed(Vessel)=normal, T) :-
    happensAt(gap_start(Vessel), T).
terminatedAt(movingSpeed(Vessel)=above, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "underWay";
      code = None;
      nl = "This activity lasts as long as a vessel is moving.";
      source =
        {|
holdsFor(underWay(Vessel)=true, I) :-
    holdsFor(movingSpeed(Vessel)=below, I1),
    holdsFor(movingSpeed(Vessel)=normal, I2),
    holdsFor(movingSpeed(Vessel)=above, I3),
    union_all([I1, I2, I3], I).
|};
    };
    {
      name = "highSpeedNearCoast";
      code = Some "h";
      nl =
        "A vessel sails at a dangerously high speed near the coastline when \
         its speed exceeds the maximum safe coastal sailing speed while it \
         is within a coastal area. The activity ends when the speed of the \
         vessel drops to a safe value, when the vessel leaves the coastal \
         area, or when a communication gap starts.";
      source =
        {|
initiatedAt(highSpeedNearCoast(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    holdsAt(withinArea(Vessel, nearCoast)=true, T),
    thresholds(hcNearCoastMax, HcNearCoastMax),
    Speed > HcNearCoastMax.
terminatedAt(highSpeedNearCoast(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(hcNearCoastMax, HcNearCoastMax),
    Speed =< HcNearCoastMax.
terminatedAt(highSpeedNearCoast(Vessel)=true, T) :-
    happensAt(leavesArea(Vessel, Area), T),
    areaType(Area, nearCoast).
terminatedAt(highSpeedNearCoast(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "anchoredOrMoored";
      code = Some "aM";
      nl =
        "A vessel is anchored when it is stopped far from all ports within \
         an anchorage area. A vessel is moored when it is stopped near some \
         port. The activity holds while the vessel is anchored or moored.";
      source =
        {|
holdsFor(anchoredOrMoored(Vessel)=true, I) :-
    holdsFor(stopped(Vessel)=farFromPorts, Isf),
    holdsFor(withinArea(Vessel, anchorage)=true, Ia),
    intersect_all([Isf, Ia], Isfa),
    holdsFor(stopped(Vessel)=nearPorts, Isn),
    union_all([Isfa, Isn], I).
|};
    };
    {
      name = "trawlSpeed";
      code = None;
      nl =
        "A vessel moves at trawling speed when, within a fishing area, its \
         speed lies between the minimum and the maximum speed at which \
         trawlers tow their nets. The activity ends when the speed of the \
         vessel leaves that range, when the vessel leaves the fishing area, \
         or when a communication gap starts.";
      source =
        {|
initiatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    holdsAt(withinArea(Vessel, fishing)=true, T),
    thresholds(trawlspeedMin, TrawlspeedMin),
    Speed >= TrawlspeedMin,
    thresholds(trawlspeedMax, TrawlspeedMax),
    Speed =< TrawlspeedMax.
terminatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(trawlspeedMin, TrawlspeedMin),
    Speed < TrawlspeedMin.
terminatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(trawlspeedMax, TrawlspeedMax),
    Speed > TrawlspeedMax.
terminatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(leavesArea(Vessel, Area), T),
    areaType(Area, fishing).
terminatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "trawlingMovement";
      code = None;
      nl =
        "A vessel exhibits a trawling movement pattern when it changes its \
         heading while sailing within a fishing area. The pattern ends when \
         the vessel leaves the fishing area or when a communication gap \
         starts.";
      source =
        {|
initiatedAt(trawlingMovement(Vessel)=true, T) :-
    happensAt(change_in_heading(Vessel), T),
    holdsAt(withinArea(Vessel, fishing)=true, T).
terminatedAt(trawlingMovement(Vessel)=true, T) :-
    happensAt(leavesArea(Vessel, Area), T),
    areaType(Area, fishing).
terminatedAt(trawlingMovement(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "trawling";
      code = Some "tr";
      nl =
        "A vessel is trawling while, within a fishing area, it both moves \
         at trawling speed and exhibits a trawling movement pattern.";
      source =
        {|
holdsFor(trawling(Vessel)=true, I) :-
    holdsFor(trawlSpeed(Vessel)=true, Is),
    holdsFor(trawlingMovement(Vessel)=true, Im),
    intersect_all([Is, Im], I).
|};
    };
    {
      name = "tuggingSpeed";
      code = None;
      nl =
        "A vessel moves at tugging speed when its speed lies between the \
         minimum and the maximum speed of a towing operation. The activity \
         ends when the speed of the vessel leaves that range or when a \
         communication gap starts.";
      source =
        {|
initiatedAt(tuggingSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(tuggingMin, TuggingMin),
    Speed >= TuggingMin,
    thresholds(tuggingMax, TuggingMax),
    Speed =< TuggingMax.
terminatedAt(tuggingSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(tuggingMin, TuggingMin),
    Speed < TuggingMin.
terminatedAt(tuggingSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(tuggingMax, TuggingMax),
    Speed > TuggingMax.
terminatedAt(tuggingSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "tugging";
      code = Some "tu";
      nl =
        "A tug is towing another vessel while the two vessels are close to \
         each other and both move at tugging speed.";
      source =
        {|
holdsFor(tugging(Vessel1, Vessel2)=true, I) :-
    holdsFor(proximity(Vessel1, Vessel2)=true, Ip),
    holdsFor(tuggingSpeed(Vessel1)=true, I1),
    holdsFor(tuggingSpeed(Vessel2)=true, I2),
    intersect_all([Ip, I1, I2], I).
|};
    };
    {
      name = "rendezVous";
      code = None;
      nl =
        "A ship-to-ship transfer may be taking place while two vessels are \
         close to each other and each of them either sails at a low speed \
         or is stopped far from all ports.";
      source =
        {|
holdsFor(rendezVous(Vessel1, Vessel2)=true, I) :-
    holdsFor(proximity(Vessel1, Vessel2)=true, Ip),
    holdsFor(lowSpeed(Vessel1)=true, Il1),
    holdsFor(stopped(Vessel1)=farFromPorts, Is1),
    union_all([Il1, Is1], I1),
    holdsFor(lowSpeed(Vessel2)=true, Il2),
    holdsFor(stopped(Vessel2)=farFromPorts, Is2),
    union_all([Il2, Is2], I2),
    intersect_all([Ip, I1, I2], I).
|};
    };
    {
      name = "naturaSpeed";
      code = None;
      nl =
        "A vessel moves at fishing speed inside a protected area when, \
         within an area of the Natura 2000 network, its speed lies between \
         the minimum and the maximum speed at which trawlers tow their \
         nets. The activity ends when the speed of the vessel leaves that \
         range, when the vessel leaves the protected area, or when a \
         communication gap starts.";
      source =
        {|
initiatedAt(naturaSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    holdsAt(withinArea(Vessel, natura)=true, T),
    thresholds(trawlspeedMin, TrawlspeedMin),
    Speed >= TrawlspeedMin,
    thresholds(trawlspeedMax, TrawlspeedMax),
    Speed =< TrawlspeedMax.
terminatedAt(naturaSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(trawlspeedMin, TrawlspeedMin),
    Speed < TrawlspeedMin.
terminatedAt(naturaSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(trawlspeedMax, TrawlspeedMax),
    Speed > TrawlspeedMax.
terminatedAt(naturaSpeed(Vessel)=true, T) :-
    happensAt(leavesArea(Vessel, Area), T),
    areaType(Area, natura).
terminatedAt(naturaSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "naturaMovement";
      code = None;
      nl =
        "A vessel exhibits a fishing movement pattern inside a protected \
         area when it makes consecutive turns while sailing within an area \
         of the Natura 2000 network. The pattern ends when the vessel \
         leaves the protected area or when a communication gap starts.";
      source =
        {|
initiatedAt(naturaMovement(Vessel)=true, T) :-
    happensAt(change_in_heading(Vessel), T),
    holdsAt(withinArea(Vessel, natura)=true, T).
terminatedAt(naturaMovement(Vessel)=true, T) :-
    happensAt(leavesArea(Vessel, Area), T),
    areaType(Area, natura).
terminatedAt(naturaMovement(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "illegalFishing";
      code = None;
      nl =
        "A vessel may be fishing illegally while, within a protected area \
         of the Natura 2000 network, it both moves at fishing speed and \
         exhibits a fishing movement pattern.";
      source =
        {|
holdsFor(illegalFishing(Vessel)=true, I) :-
    holdsFor(naturaSpeed(Vessel)=true, Is),
    holdsFor(naturaMovement(Vessel)=true, Im),
    intersect_all([Is, Im], I).
|};
    };
    {
      name = "pilotSpeed";
      code = None;
      nl =
        "A pilot vessel moves at boarding speed when it is moving and its \
         speed does not exceed the maximum speed of a boarding operation. \
         The activity ends when the speed of the pilot vessel exceeds that \
         maximum, when the pilot vessel stops, or when a communication gap \
         starts.";
      source =
        {|
initiatedAt(pilotSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    vesselType(Vessel, pilotVessel),
    thresholds(movingMin, MovingMin),
    Speed >= MovingMin,
    thresholds(pilotSpeedMax, PilotSpeedMax),
    Speed =< PilotSpeedMax.
terminatedAt(pilotSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(pilotSpeedMax, PilotSpeedMax),
    Speed > PilotSpeedMax.
terminatedAt(pilotSpeed(Vessel)=true, T) :-
    happensAt(stop_start(Vessel), T).
terminatedAt(pilotSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "pilotBoarding";
      code = Some "p";
      nl =
        "A pilot boarding operation takes place while a pilot vessel, \
         moving at boarding speed, is close to another vessel that sails at \
         a low speed.";
      source =
        {|
holdsFor(pilotBoarding(Vessel1, Vessel2)=true, I) :-
    holdsFor(proximity(Vessel1, Vessel2)=true, Ip),
    holdsFor(pilotSpeed(Vessel1)=true, I1),
    holdsFor(lowSpeed(Vessel2)=true, I2),
    intersect_all([Ip, I1, I2], I).
|};
    };
    {
      name = "loitering";
      code = Some "l";
      nl =
        "A vessel is loitering while it sails at a low speed or is stopped \
         far from all ports, provided that it is not anchored or moored.";
      source =
        {|
holdsFor(loitering(Vessel)=true, I) :-
    holdsFor(lowSpeed(Vessel)=true, Il),
    holdsFor(stopped(Vessel)=farFromPorts, Is),
    union_all([Il, Is], Iu),
    holdsFor(anchoredOrMoored(Vessel)=true, Ia),
    relative_complement_all(Iu, [Ia], I).
|};
    };
    {
      name = "sarSpeed";
      code = None;
      nl =
        "A search-and-rescue vessel moves at search-and-rescue speed when \
         its speed lies between the minimum and the maximum speed of a \
         search-and-rescue operation. The activity ends when the speed of \
         the vessel leaves that range or when a communication gap starts.";
      source =
        {|
initiatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    vesselType(Vessel, sar),
    thresholds(sarSpeedMin, SarSpeedMin),
    Speed >= SarSpeedMin,
    thresholds(sarSpeedMax, SarSpeedMax),
    Speed =< SarSpeedMax.
terminatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(sarSpeedMin, SarSpeedMin),
    Speed < SarSpeedMin.
terminatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(sarSpeedMax, SarSpeedMax),
    Speed > SarSpeedMax.
terminatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "sarMovement";
      code = None;
      nl =
        "A search-and-rescue vessel exhibits a search-and-rescue movement \
         pattern when it changes its heading while moving at \
         search-and-rescue speed. The pattern ends when the vessel stops or \
         when a communication gap starts.";
      source =
        {|
initiatedAt(sarMovement(Vessel)=true, T) :-
    happensAt(change_in_heading(Vessel), T),
    holdsAt(sarSpeed(Vessel)=true, T).
terminatedAt(sarMovement(Vessel)=true, T) :-
    happensAt(stop_start(Vessel), T).
terminatedAt(sarMovement(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(sarSpeedMin, SarSpeedMin),
    Speed < SarSpeedMin.
terminatedAt(sarMovement(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
    {
      name = "searchAndRescue";
      code = Some "s";
      nl =
        "A vessel is engaged in a search-and-rescue operation while it both \
         moves at search-and-rescue speed and exhibits a search-and-rescue \
         movement pattern.";
      source =
        {|
holdsFor(searchAndRescue(Vessel)=true, I) :-
    holdsFor(sarSpeed(Vessel)=true, Is),
    holdsFor(sarMovement(Vessel)=true, Im),
    intersect_all([Is, Im], I).
|};
    };
    {
      name = "drifting";
      code = Some "d";
      nl =
        "A vessel is drifting when, while under way, its course over ground \
         diverges from its true heading by more than the drift angle \
         threshold. The activity ends when the divergence drops below the \
         threshold, when the vessel stops, or when a communication gap \
         starts.";
      source =
        {|
initiatedAt(drifting(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    holdsAt(underWay(Vessel)=true, T),
    thresholds(adriftAngThr, AdriftAngThr),
    CoG - Heading > AdriftAngThr.
initiatedAt(drifting(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    holdsAt(underWay(Vessel)=true, T),
    thresholds(adriftAngThr, AdriftAngThr),
    Heading - CoG > AdriftAngThr.
terminatedAt(drifting(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CoG, Heading), T),
    thresholds(adriftAngThr, AdriftAngThr),
    CoG - Heading =< AdriftAngThr,
    Heading - CoG =< AdriftAngThr.
terminatedAt(drifting(Vessel)=true, T) :-
    happensAt(stop_start(Vessel), T).
terminatedAt(drifting(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
|};
    };
  ]

let entry name = List.find (fun e -> String.equal e.name name) entries

let reported =
  let codes = [ "h"; "aM"; "tr"; "tu"; "p"; "l"; "s"; "d" ] in
  List.map (fun c -> List.find (fun e -> e.code = Some c) entries) codes

let definition name =
  let e = entry name in
  Rtec.Parser.parse_definition ~name e.source

let event_description = List.map (fun e -> Rtec.Parser.parse_definition ~name:e.name e.source) entries

let fvp_of name (fluent, _value) = String.equal (Rtec.Term.functor_of fluent) name

let defined_constants =
  List.map (fun e -> e.name) entries
