(** The maritime domain packaged as a {!Domain.t}: the vocabulary and
    thresholds of {!Vocabulary}, the gold standard of {!Gold}, and the
    naming lexicon (plausible alternative names an LLM picks for maritime
    identifiers, known to the syntactic corrector). *)

val synonyms : (string * string) list
val domain : Domain.t
