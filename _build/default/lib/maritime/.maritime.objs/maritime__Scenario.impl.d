lib/maritime/scenario.ml: Ais Float Geography Int64 List
