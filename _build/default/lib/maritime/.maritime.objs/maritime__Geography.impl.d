lib/maritime/geography.ml: List Rtec
