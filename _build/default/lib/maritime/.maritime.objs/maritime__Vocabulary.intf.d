lib/maritime/vocabulary.mli: Rtec
