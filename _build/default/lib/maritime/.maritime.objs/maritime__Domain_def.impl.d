lib/maritime/domain_def.ml: Domain Gold List Vocabulary
