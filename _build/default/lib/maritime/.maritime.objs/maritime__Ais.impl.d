lib/maritime/ais.ml: Float Geography Hashtbl Int List Option Rtec String
