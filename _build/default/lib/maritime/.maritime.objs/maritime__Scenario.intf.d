lib/maritime/scenario.mli: Ais Geography
