lib/maritime/ais.mli: Geography Rtec
