lib/maritime/gold.ml: List Rtec String
