lib/maritime/gold.mli: Rtec
