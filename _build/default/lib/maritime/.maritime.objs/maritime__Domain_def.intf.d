lib/maritime/domain_def.mli: Domain
