lib/maritime/dataset.ml: Ais Geography Int List Printf Rtec Scenario String Vocabulary
