lib/maritime/dataset.mli: Ais Geography Rtec Scenario
