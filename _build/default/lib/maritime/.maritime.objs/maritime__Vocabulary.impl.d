lib/maritime/vocabulary.ml: List Rtec String
