lib/maritime/geography.mli: Rtec
