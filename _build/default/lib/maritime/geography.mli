(** Synthetic Brest-like geography: a planar region (coordinates in
    metres) with ports, anchorages, fishing areas, a protected area and a
    coastal band. Stands in for the spatial preprocessing of the real AIS
    dataset (see DESIGN.md, substitutions). *)

type shape =
  | Circle of { cx : float; cy : float; r : float }
  | Rect of { x0 : float; y0 : float; x1 : float; y1 : float }

type area = { id : string; area_type : string; shape : shape }

type port = { port_id : string; px : float; py : float }

type t = { areas : area list; ports : port list }

val default : t
(** Two ports (with [nearPorts] circles), one anchorage, two fishing
    areas, one Natura protected area and a coastal band. *)

val contains : area -> x:float -> y:float -> bool
val areas_at : t -> x:float -> y:float -> area list
val area_type_facts : t -> Rtec.Term.t list
(** [areaType(AreaId, AreaType)] facts for a {!Rtec.Knowledge.t}. *)

val distance : float * float -> float * float -> float
