(** The hand-crafted maritime event description used as the gold standard
    (after Pitsikalis et al., DEBS 2019), together with the
    natural-language description of each composite activity — the text
    that instantiates prompt G for that activity.

    Definitions are listed bottom-up: each definition may refer to fluents
    defined earlier, forming the activity hierarchy the paper exploits for
    caching. *)

type entry = {
  name : string;  (** fluent name, e.g. ["trawling"] *)
  code : string option;
      (** the figure-2 label (["h"], ["aM"], ..., ["d"]) for the 8 reported
          activities; [None] for lower-level fluents *)
  nl : string;  (** natural-language description (prompt G input) *)
  source : string;  (** hand-crafted rules in concrete RTEC syntax *)
}

val entries : entry list
val entry : string -> entry
(** Raises [Not_found]. *)

val reported : entry list
(** The 8 activities of Figures 2a–2c, in figure order:
    [h aM tr tu p l s d]. *)

val definition : string -> Rtec.Ast.definition
(** Parsed rules of one entry. *)

val event_description : Rtec.Ast.t
(** The complete gold-standard event description. *)

val fvp_of : string -> Rtec.Term.t * Rtec.Term.t -> bool
(** [fvp_of name (f, v)] holds when the ground FVP [(f, v)] is an instance
    of the activity [name] (used when collecting recognised intervals). *)

val defined_constants : string list
(** Constants introduced by the gold definitions themselves (fluent names
    and values); part of the corrector's target vocabulary. *)
