type message = {
  t : int;
  vessel : string;
  x : float;
  y : float;
  speed : float;
  heading : float;
  cog : float;
}

type params = {
  stop_max : float;
  low_max : float;
  gap_threshold : int;
  speed_delta : float;
  heading_delta : float;
  proximity_max : float;
}

let default_params =
  {
    stop_max = 0.5;
    low_max = 5.0;
    gap_threshold = 1800;
    speed_delta = 2.0;
    heading_delta = 12.0;
    proximity_max = 500.0;
  }

let knots_to_mps kn = kn *. 0.514444

type speed_band = Idle | Slow | Fast

let band p speed =
  if speed < p.stop_max then Idle else if speed <= p.low_max then Slow else Fast

let angle_diff a b =
  let d = Float.abs (a -. b) in
  let d = Float.rem d 360. in
  if d > 180. then 360. -. d else d

(* Events derived from one vessel's message sequence (sorted by time). *)
let vessel_events p geography messages =
  let events = ref [] in
  let emit t term = events := { Rtec.Stream.time = t; term } :: !events in
  let ev name args t = emit t (Rtec.Term.app name args) in
  let vessel_atom v = Rtec.Term.Atom v in
  let announce_state m =
    (* Events describing the vessel's state from scratch: used on the first
       message and after a communication gap. *)
    let v = vessel_atom m.vessel in
    List.iter
      (fun (a : Geography.area) -> ev "entersArea" [ v; Rtec.Term.Atom a.id ] m.t)
      (Geography.areas_at geography ~x:m.x ~y:m.y);
    (match band p m.speed with
    | Idle -> ev "stop_start" [ v ] m.t
    | Slow -> ev "slow_motion_start" [ v ] m.t
    | Fast -> ())
  in
  let velocity m =
    ev "velocity"
      [ vessel_atom m.vessel; Rtec.Term.Real m.speed; Rtec.Term.Real m.cog;
        Rtec.Term.Real m.heading ]
      m.t
  in
  (match messages with
  | [] -> ()
  | first :: rest ->
    announce_state first;
    velocity first;
    let changing = ref false in
    let step prev m =
      let v = vessel_atom m.vessel in
      if m.t - prev.t > p.gap_threshold then begin
        (* Communication gap: close the old state, announce the new one. *)
        ev "gap_start" [ v ] (prev.t + 1);
        ev "gap_end" [ v ] m.t;
        changing := false;
        announce_state m;
        velocity m
      end
      else begin
        (* Speed-band transitions. *)
        let b0 = band p prev.speed and b1 = band p m.speed in
        if b0 <> b1 then begin
          (match b0 with
          | Idle -> ev "stop_end" [ v ] m.t
          | Slow -> ev "slow_motion_end" [ v ] m.t
          | Fast -> ());
          match b1 with
          | Idle -> ev "stop_start" [ v ] m.t
          | Slow -> ev "slow_motion_start" [ v ] m.t
          | Fast -> ()
        end;
        (* Speed-change episodes. *)
        let dspeed = Float.abs (m.speed -. prev.speed) in
        if (not !changing) && dspeed > p.speed_delta then begin
          changing := true;
          ev "change_in_speed_start" [ v ] m.t
        end
        else if !changing && dspeed <= p.speed_delta /. 2. then begin
          changing := false;
          ev "change_in_speed_end" [ v ] m.t
        end;
        (* Heading changes. *)
        if angle_diff m.heading prev.heading > p.heading_delta then
          ev "change_in_heading" [ v ] m.t;
        (* Area transitions. *)
        let before = Geography.areas_at geography ~x:prev.x ~y:prev.y in
        let after = Geography.areas_at geography ~x:m.x ~y:m.y in
        List.iter
          (fun (a : Geography.area) ->
            if not (List.memq a after) then ev "leavesArea" [ v; Rtec.Term.Atom a.id ] m.t)
          before;
        List.iter
          (fun (a : Geography.area) ->
            if not (List.memq a before) then ev "entersArea" [ v; Rtec.Term.Atom a.id ] m.t)
          after;
        velocity m
      end
    in
    let rec walk prev = function
      | [] ->
        (* Coverage of the vessel ends: the stream reports a communication
           gap, so that no activity persists past the last position. *)
        ev "gap_start" [ vessel_atom prev.vessel ] (prev.t + 1)
      | m :: rest ->
        step prev m;
        walk m rest
    in
    walk first rest);
  !events

(* Maximal intervals during which two vessels are within [proximity_max]
   of each other, from their synchronised position samples. *)
let proximity_spans p msgs1 msgs2 =
  let positions msgs =
    let tbl = Hashtbl.create 64 in
    List.iter (fun m -> Hashtbl.replace tbl m.t (m.x, m.y)) msgs;
    tbl
  in
  let pos2 = positions msgs2 in
  let sample_step = ref max_int in
  let rec steps = function
    | a :: (b :: _ as rest) ->
      if b.t - a.t < !sample_step && b.t > a.t then sample_step := b.t - a.t;
      steps rest
    | _ -> ()
  in
  steps msgs1;
  let step = if !sample_step = max_int then 60 else !sample_step in
  let pairs =
    List.filter_map
      (fun m1 ->
        match Hashtbl.find_opt pos2 m1.t with
        | Some (x2, y2) when Geography.distance (m1.x, m1.y) (x2, y2) <= p.proximity_max ->
          Some (m1.t, m1.t + step)
        | _ -> None)
      msgs1
  in
  Rtec.Interval.of_list pairs

let preprocess ?(params = default_params) ~geography messages =
  let by_vessel = Hashtbl.create 32 in
  List.iter
    (fun m ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_vessel m.vessel) in
      Hashtbl.replace by_vessel m.vessel (m :: existing))
    messages;
  let vessels =
    Hashtbl.fold (fun v ms acc -> (v, List.sort (fun a b -> Int.compare a.t b.t) ms) :: acc)
      by_vessel []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let events = List.concat_map (fun (_, ms) -> vessel_events params geography ms) vessels in
  let rec pairs acc = function
    | [] -> acc
    | (v1, ms1) :: rest ->
      let acc =
        List.fold_left
          (fun acc (v2, ms2) ->
            let spans = proximity_spans params ms1 ms2 in
            if Rtec.Interval.is_empty spans then acc
            else
              let fv v v' =
                (Rtec.Term.app "proximity" [ Rtec.Term.Atom v; Rtec.Term.Atom v' ],
                 Rtec.Term.Atom "true")
              in
              (fv v1 v2, spans) :: (fv v2 v1, spans) :: acc)
          acc rest
      in
      pairs acc rest
  in
  let input_fluents = pairs [] vessels in
  Rtec.Stream.make ~input_fluents events
