(** AIS position signals and their online preprocessing into the input
    events and fluents RTEC reasons over (mirroring the critical-point
    pipeline feeding the system of Pitsikalis et al., DEBS 2019). *)

type message = {
  t : int;  (** time-point, seconds *)
  vessel : string;
  x : float;  (** metres *)
  y : float;
  speed : float;  (** knots *)
  heading : float;  (** true heading, degrees *)
  cog : float;  (** course over ground, degrees *)
}

type params = {
  stop_max : float;  (** speed below which a vessel is idle (knots) *)
  low_max : float;  (** upper bound of the low-speed band (knots) *)
  gap_threshold : int;  (** silence (seconds) counting as a communication gap *)
  speed_delta : float;  (** speed jump (knots) starting a change_in_speed *)
  heading_delta : float;  (** heading jump (degrees) emitting change_in_heading *)
  proximity_max : float;  (** distance (metres) under which two vessels are close *)
}

val default_params : params

val knots_to_mps : float -> float

val preprocess : ?params:params -> geography:Geography.t -> message list -> Rtec.Stream.t
(** Derives, per vessel, the events [stop_start/stop_end],
    [slow_motion_start/slow_motion_end], [change_in_speed_start/
    change_in_speed_end], [change_in_heading], [gap_start/gap_end],
    [entersArea/leavesArea], and a [velocity] event per message; and, per
    vessel pair, the [proximity] input fluent (in both argument orders).
    After a gap, the vessel's spatial and kinematic state is re-announced
    (fresh [entersArea]/[stop_start]/[slow_motion_start] events), matching
    the uncertainty semantics of the gap rules. *)
