module Rng = struct
  (* Deterministic LCG (Numerical Recipes constants): datasets must be
     reproducible across runs. *)
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int (seed land 0x3FFFFFFF) }

  let next rng =
    rng.state <-
      Int64.add (Int64.mul rng.state 6364136223846793005L) 1442695040888963407L;
    Int64.to_float (Int64.shift_right_logical rng.state 11)
    /. 9007199254740992.0

  let float rng bound = next rng *. bound
  let range rng lo hi = lo +. (next rng *. (hi -. lo))
  let int rng bound = int_of_float (float rng (float_of_int bound))
end

type vessel = { id : string; vessel_type : string }
type t = { vessels : vessel list; messages : Ais.message list }

type leg = {
  duration : int;
  speed : float;
  speed_jitter : float;
  course : float;
  heading_offset : float;
  turn_every : int;
  turn_amplitude : float;
  silent : bool;
}

let leg ?(speed_jitter = 0.) ?(heading_offset = 0.) ?(turn_every = 0)
    ?(turn_amplitude = 0.) ?(silent = false) ~duration ~speed ~course () =
  { duration; speed; speed_jitter; course; heading_offset; turn_every;
    turn_amplitude; silent }

let pi = 4. *. atan 1.

let sail ~rng ~id ~vessel_type ~start ~t0 ?(step = 60) legs =
  let x = ref (fst start) and y = ref (snd start) in
  let t = ref t0 in
  let messages = ref [] in
  let emit_leg l =
    let elapsed = ref 0 in
    let turn_sign = ref 1. in
    while !elapsed < l.duration do
      let zigzag =
        if l.turn_every > 0 && !elapsed > 0 && !elapsed mod l.turn_every = 0 then begin
          turn_sign := -. !turn_sign;
          !turn_sign *. l.turn_amplitude
        end
        else if l.turn_every > 0 then !turn_sign *. l.turn_amplitude
        else 0.
      in
      let cog = l.course +. zigzag in
      let heading = cog -. l.heading_offset in
      let speed =
        if l.speed_jitter > 0. then
          Float.max 0. (l.speed +. Rng.range rng (-.l.speed_jitter) l.speed_jitter)
        else l.speed
      in
      if not l.silent then
        messages :=
          { Ais.t = !t; vessel = id; x = !x; y = !y; speed; heading; cog } :: !messages;
      (* Integrate the position along the course over ground. *)
      let mps = Ais.knots_to_mps speed in
      let rad = cog *. pi /. 180. in
      x := !x +. (mps *. float_of_int step *. cos rad);
      y := !y +. (mps *. float_of_int step *. sin rad);
      t := !t + step;
      elapsed := !elapsed + step
    done
  in
  List.iter emit_leg legs;
  { vessels = [ { id; vessel_type } ]; messages = List.rev !messages }

let combine ts =
  {
    vessels = List.concat_map (fun t -> t.vessels) ts;
    messages = List.concat_map (fun t -> t.messages) ts;
  }

type builder = rng:Rng.t -> suffix:string -> t0:int -> Geography.t -> t

let hour = 3600

(* Each builder perturbs its lane slightly so that replicated instances do
   not sail on top of each other. *)
let lane_jitter rng = Rng.range rng (-2000.) 2000.

let trawler ~rng ~suffix ~t0 _geo =
  let y0 = 40_000. +. lane_jitter rng in
  sail ~rng ~id:("trawler" ^ suffix) ~vessel_type:"fishing" ~start:(26_500., y0) ~t0
    [
      leg ~duration:2400 ~speed:8.0 ~speed_jitter:0.3 ~course:0. ();
      leg ~duration:(3 * hour / 2) ~speed:3.0 ~speed_jitter:0.4 ~course:0. ~turn_every:600
        ~turn_amplitude:35. ();
      leg ~duration:(3 * hour / 2) ~speed:3.0 ~speed_jitter:0.4 ~course:180. ~turn_every:600
        ~turn_amplitude:35. ();
      leg ~duration:2400 ~speed:8.0 ~speed_jitter:0.3 ~course:180. ();
    ]

let speeder ~rng ~suffix ~t0 _geo =
  sail ~rng ~id:("speeder" ^ suffix) ~vessel_type:"passenger"
    ~start:(3_000. +. (lane_jitter rng /. 2.), 32_000.) ~t0
    [
      leg ~duration:hour ~speed:20.0 ~speed_jitter:0.8 ~course:90. ();
      leg ~duration:1200 ~speed:20.0 ~speed_jitter:0.8 ~course:0. ();
    ]

let anchored ~rng ~suffix ~t0 _geo =
  sail ~rng ~id:("anchored" ^ suffix) ~vessel_type:"cargo"
    ~start:(12_000. +. (lane_jitter rng /. 4.), 21_000.) ~t0
    [
      leg ~duration:(5 * hour / 4) ~speed:3.0 ~speed_jitter:0.2 ~course:90. ();
      leg ~duration:(6 * hour) ~speed:0.1 ~course:90. ();
      leg ~duration:hour ~speed:3.0 ~speed_jitter:0.2 ~course:90. ();
    ]

let moored ~rng ~suffix ~t0 _geo =
  sail ~rng ~id:("moored" ^ suffix) ~vessel_type:"cargo"
    ~start:(3_000. +. (lane_jitter rng /. 4.), 14_000.) ~t0
    [
      leg ~duration:2400 ~speed:3.0 ~speed_jitter:0.2 ~course:90. ();
      leg ~duration:(5 * hour) ~speed:0.1 ~course:90. ();
      leg ~duration:2400 ~speed:3.0 ~speed_jitter:0.2 ~course:270. ();
    ]

let tug_pair ~rng ~suffix ~t0 _geo =
  let y0 = 55_000. +. lane_jitter rng in
  let tow_legs extra =
    [
      leg ~duration:(4 * hour) ~speed:3.5 ~speed_jitter:0.3 ~course:0. ();
      leg ~duration:hour ~speed:7.0 ~speed_jitter:0.3 ~course:extra ();
    ]
  in
  combine
    [
      sail ~rng ~id:("tug" ^ suffix) ~vessel_type:"tug" ~start:(20_000., y0) ~t0
        (tow_legs 45.);
      sail ~rng ~id:("tow" ^ suffix) ~vessel_type:"cargo" ~start:(20_000., y0 +. 200.) ~t0
        (tow_legs 315.);
    ]

let pilot_pair ~rng ~suffix ~t0 _geo =
  let y0 = 60_000. +. lane_jitter rng in
  combine
    [
      sail ~rng ~id:("pilot" ^ suffix) ~vessel_type:"pilotVessel" ~start:(10_000., y0) ~t0
        [
          leg ~duration:hour ~speed:1.4 ~course:0. ();
          leg ~duration:hour ~speed:8.0 ~speed_jitter:0.5 ~course:270. ();
        ];
      sail ~rng ~id:("boarded" ^ suffix) ~vessel_type:"cargo" ~start:(10_000., y0 +. 250.)
        ~t0
        [
          leg ~duration:hour ~speed:1.5 ~course:0. ();
          leg ~duration:hour ~speed:10.0 ~speed_jitter:0.5 ~course:270. ();
        ];
    ]

let loiterer ~rng ~suffix ~t0 _geo =
  let y0 = 60_000. +. lane_jitter rng in
  sail ~rng ~id:("loiterer" ^ suffix) ~vessel_type:"tanker" ~start:(55_000., y0) ~t0
    [
      leg ~duration:(2 * hour) ~speed:1.2 ~speed_jitter:0.2 ~course:0. ();
      leg ~duration:hour ~speed:0.2 ~course:0. ();
      leg ~duration:(2 * hour) ~speed:1.0 ~speed_jitter:0.2 ~course:180. ();
      leg ~duration:hour ~speed:9.0 ~speed_jitter:0.4 ~course:90. ();
    ]

let sar ~rng ~suffix ~t0 _geo =
  sail ~rng ~id:("sar" ^ suffix) ~vessel_type:"sar"
    ~start:(60_000. +. lane_jitter rng, 40_000.) ~t0
    [
      leg ~duration:(4 * hour) ~speed:10.0 ~speed_jitter:1.0 ~course:90. ~turn_every:300
        ~turn_amplitude:60. ();
      leg ~duration:hour ~speed:16.5 ~speed_jitter:0.4 ~course:180. ();
    ]

let drifter ~rng ~suffix ~t0 _geo =
  sail ~rng ~id:("drifter" ^ suffix) ~vessel_type:"tanker"
    ~start:(70_000. +. lane_jitter rng, 60_000.) ~t0
    [
      leg ~duration:1200 ~speed:2.0 ~speed_jitter:0.2 ~course:45. ();
      leg ~duration:(3 * hour) ~speed:2.0 ~speed_jitter:0.2 ~course:45. ~heading_offset:45. ();
      leg ~duration:hour ~speed:2.0 ~speed_jitter:0.2 ~course:45. ();
    ]

let gapper ~rng ~suffix ~t0 _geo =
  sail ~rng ~id:("gapper" ^ suffix) ~vessel_type:"cargo"
    ~start:(40_000., 85_000. +. lane_jitter rng) ~t0
    [
      leg ~duration:hour ~speed:12.0 ~speed_jitter:0.5 ~course:0. ();
      leg ~duration:hour ~speed:12.0 ~course:0. ~silent:true ();
      leg ~duration:hour ~speed:12.0 ~speed_jitter:0.5 ~course:0. ();
      leg ~duration:2700 ~speed:12.0 ~course:0. ~silent:true ();
      leg ~duration:hour ~speed:12.0 ~speed_jitter:0.5 ~course:0. ();
    ]

let natura_trawler ~rng ~suffix ~t0 _geo =
  (* The paper's motivating example: consecutive turns at fishing speed
     inside an environmentally protected area. *)
  let y0 = 70_000. +. lane_jitter rng in
  sail ~rng ~id:("poacher" ^ suffix) ~vessel_type:"fishing" ~start:(26_500., y0) ~t0
    [
      leg ~duration:2400 ~speed:8.0 ~speed_jitter:0.3 ~course:0. ();
      leg ~duration:hour ~speed:3.0 ~speed_jitter:0.4 ~course:0. ~turn_every:600
        ~turn_amplitude:35. ();
      leg ~duration:hour ~speed:3.0 ~speed_jitter:0.4 ~course:180. ~turn_every:600
        ~turn_amplitude:35. ();
      leg ~duration:2400 ~speed:8.0 ~speed_jitter:0.3 ~course:180. ();
    ]

let rendezvous_pair ~rng ~suffix ~t0 _geo =
  (* Two tankers loiter side by side far from all ports: a possible
     ship-to-ship transfer. *)
  let y0 = 60_000. +. lane_jitter rng in
  let transfer =
    [
      leg ~duration:hour ~speed:1.2 ~speed_jitter:0.2 ~course:0. ();
      leg ~duration:(2 * hour) ~speed:0.2 ~course:0. ();
      leg ~duration:hour ~speed:8.0 ~speed_jitter:0.4 ~course:90. ();
    ]
  in
  combine
    [
      sail ~rng ~id:("giver" ^ suffix) ~vessel_type:"tanker" ~start:(85_000., y0) ~t0
        transfer;
      sail ~rng ~id:("taker" ^ suffix) ~vessel_type:"tanker" ~start:(85_000., y0 +. 250.)
        ~t0 transfer;
    ]

let nominal ~rng ~suffix ~t0 _geo =
  sail ~rng ~id:("cargo" ^ suffix) ~vessel_type:"cargo"
    ~start:(90_000. +. lane_jitter rng, 5_000.) ~t0
    [ leg ~duration:(4 * hour) ~speed:12.0 ~speed_jitter:0.6 ~course:90. () ]

let all =
  [
    ("trawler", trawler);
    ("speeder", speeder);
    ("anchored", anchored);
    ("moored", moored);
    ("tug_pair", tug_pair);
    ("pilot_pair", pilot_pair);
    ("loiterer", loiterer);
    ("sar", sar);
    ("drifter", drifter);
    ("gapper", gapper);
    ("natura_trawler", natura_trawler);
    ("rendezvous_pair", rendezvous_pair);
    ("nominal", nominal);
  ]
