(** Lexer for the concrete RTEC syntax. *)

type token =
  | ATOM of string  (** lowercase-initial identifier, or quoted atom *)
  | VAR of string  (** uppercase- or [_]-initial identifier *)
  | INT of int
  | REAL of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | ARROW  (** [:-] *)
  | OP of string  (** [=], [<], [>], [>=], [=<], [\=], [+], [-], [*], [/] *)
  | NOT
  | EOF

exception Error of { line : int; message : string }

val tokenize : string -> (token * int) list
(** Token stream with 1-based line numbers. Handles [%] line comments and
    [/*] ... [*/] block comments. Raises {!Error} on unrecognised input. *)

val pp_token : Format.formatter -> token -> unit
