(** Pretty-printing of rules and event descriptions back to concrete RTEC
    syntax. Round-trips with {!Parser}: parsing the output of [rule_to_string]
    yields an equal {!Ast.rule}. *)

val pp_rule : Format.formatter -> Ast.rule -> unit
val rule_to_string : Ast.rule -> string
val pp_definition : Format.formatter -> Ast.definition -> unit
val definition_to_string : Ast.definition -> string
val pp_event_description : Format.formatter -> Ast.t -> unit
val event_description_to_string : Ast.t -> string
