(** Input streams.

    A stream carries (i) ground {e input events} — instantaneous happenings
    such as [entersArea(v1, a3)] at time-point 118 — and (ii) {e input
    statically determined fluents} whose maximal intervals are computed
    upstream of RTEC (in the maritime domain, the spatial [proximity]
    fluent). Events are indexed by predicate indicator and by time for the
    engine's two access patterns: scanning a window and point lookups. *)

type event = { time : int; term : Term.t }

type t

val make : ?input_fluents:((Term.t * Term.t) * Interval.t) list -> event list -> t
(** Builds a stream; events need not be sorted. Raises [Invalid_argument]
    on non-ground events. Each input fluent is a ground [(fluent, value)]
    pair with its maximal intervals; duplicate [(fluent, value)] keys are
    merged by unioning their interval lists. *)

val events : t -> event list
(** All events in time order. *)

val size : t -> int
(** Number of events; O(1). *)

val extent : t -> int * int
(** [(min, max)] event time, [(0, 0)] for an empty stream; O(1). *)

val count_in : t -> from:int -> until:int -> int
(** Number of events with [from <= time <= until], by binary search. *)

val events_in : t -> functor_:string * int -> from:int -> until:int -> event list
(** Events with the given indicator and [from <= time <= until]. *)

val events_at : t -> functor_:string * int -> time:int -> event list
val input_fluents : t -> ((Term.t * Term.t) * Interval.t) list
val indicators : t -> (string * int) list
(** Event indicators present in the stream. *)

val append : t -> t -> t
(** Concatenates two streams by merging their already-sorted event lists;
    duplicate input-fluent keys are unioned. *)
