type fluent_class = Simple | Statically_determined | Mixed

type info = {
  indicator : string * int;
  fluent_class : fluent_class;
  rules : Ast.rule list;
  depends_on : (string * int) list;
}

module M = Map.Make (struct
  type t = string * int

  let compare = compare
end)

type t = { infos : info M.t; referenced : (string * int) list }

(* Fluent indicators referenced by a body literal. *)
let referenced_fluents literal =
  let _, atom = Term.strip_not literal in
  match atom with
  | Term.Compound (("holdsAt" | "holdsFor"), [ fv; _ ]) -> (
    match Term.as_fvp fv with
    | Some (fluent, _) -> [ Term.indicator fluent ]
    | None -> [])
  | _ -> []

let referenced_events literal =
  let _, atom = Term.strip_not literal in
  match atom with
  | Term.Compound ("happensAt", [ event; _ ]) -> [ Term.indicator event ]
  | _ -> []

let class_of_rule r =
  match Ast.kind_of_rule r with
  | Some (Ast.Initiated _ | Ast.Terminated _) -> Some Simple
  | Some (Ast.Holds_for _) -> Some Statically_determined
  | None -> None

let analyse (ed : Ast.t) =
  let add_rule infos r =
    match (Ast.head_indicator r, class_of_rule r) with
    | Some ind, Some cls ->
      let deps = List.concat_map referenced_fluents r.Ast.body in
      let entry =
        match M.find_opt ind infos with
        | None -> { indicator = ind; fluent_class = cls; rules = [ r ]; depends_on = deps }
        | Some e ->
          let fluent_class = if e.fluent_class = cls then cls else Mixed in
          { e with fluent_class; rules = e.rules @ [ r ]; depends_on = e.depends_on @ deps }
      in
      M.add ind entry infos
    | _ -> infos
  in
  let infos = List.fold_left add_rule M.empty (Ast.all_rules ed) in
  let infos =
    M.map
      (fun e -> { e with depends_on = List.sort_uniq compare e.depends_on })
      infos
  in
  let referenced =
    Ast.all_rules ed
    |> List.concat_map (fun (r : Ast.rule) ->
           List.concat_map
             (fun l -> referenced_fluents l @ referenced_events l)
             r.body)
    |> List.sort_uniq compare
  in
  { infos; referenced }

let info t ind = M.find_opt ind t.infos
let all t = List.map snd (M.bindings t.infos)

let evaluation_order t =
  (* Kahn's algorithm over the defined-fluent graph; external references do
     not constrain the order. *)
  let defined ind = M.mem ind t.infos in
  let deps ind =
    match M.find_opt ind t.infos with
    | None -> []
    | Some e -> List.filter defined e.depends_on
  in
  let nodes = List.map fst (M.bindings t.infos) in
  let in_degree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_degree n (List.length (deps n))) nodes;
  let queue = Queue.create () in
  List.iter (fun n -> if Hashtbl.find in_degree n = 0 then Queue.add n queue) nodes;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    order := n :: !order;
    (* Decrement the in-degree of every node depending on [n]. *)
    List.iter
      (fun m ->
        if List.mem n (deps m) then begin
          let d = Hashtbl.find in_degree m - 1 in
          Hashtbl.replace in_degree m d;
          if d = 0 then Queue.add m queue
        end)
      nodes
  done;
  if List.length !order = List.length nodes then Ok (List.rev !order)
  else
    let stuck =
      List.filter (fun n -> Hashtbl.find in_degree n > 0) nodes
      |> List.map (fun (f, a) -> Printf.sprintf "%s/%d" f a)
      |> String.concat ", "
    in
    Error (Printf.sprintf "cyclic fluent dependencies involving: %s" stuck)

let external_indicators t =
  List.filter (fun ind -> not (M.mem ind t.infos)) t.referenced

let window_insensitive (ed : Ast.t) =
  (* Whether recognition commutes with splitting a window into deltas.
     Simple-fluent rules are pointwise (transitions depend only on events
     and fluent values at their own time-point), and so are the union /
     intersection / complement interval constructs. [intDurGreater] is not:
     it measures durations, which window boundaries truncate — an event
     description using it must be re-evaluated over the full window. *)
  Ast.all_rules ed
  |> List.for_all (fun (r : Ast.rule) ->
         List.for_all
           (fun literal ->
             match literal with
             | Term.Compound ("intDurGreater", _) -> false
             | _ -> true)
           r.body)
