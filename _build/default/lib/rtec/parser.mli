(** Recursive-descent parser for RTEC event descriptions.

    Grammar (standard Prolog-like):
    - program: clause*
    - clause:  term [":-" term ("," term)*] "."
    - term:    additive (cmp-op additive)?   with cmp-op in {=, <, >, >=, =<, \=}
    - additive / multiplicative: left-associative arithmetic
    - primary: number | variable | atom [ "(" term, ... ")" ] | "[" ... "]"
               | "(" term ")" | "not" term *)

exception Error of { line : int; message : string }

val parse_term : string -> Term.t
(** Parses a single term (no trailing dot required). Raises {!Error}. *)

val parse_clauses : string -> Ast.rule list
(** Parses a program into rules; facts become rules with an empty body.
    Raises {!Error} on malformed input. *)

val parse_definition : name:string -> string -> Ast.definition
(** Parses a program and labels it as the definition of one activity. *)

val parse_clauses_result : string -> (Ast.rule list, string) result
(** Like {!parse_clauses}, with errors returned as a message; used on
    LLM-generated text, which may be malformed. *)
