type token =
  | ATOM of string
  | VAR of string
  | INT of int
  | REAL of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | ARROW
  | OP of string
  | NOT
  | EOF

exception Error of { line : int; message : string }

let is_lower c = (c >= 'a' && c <= 'z')
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident c = is_lower c || is_upper c || is_digit c

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let fail message = raise (Error { line = !line; message }) in
  let rec scan i =
    if i >= n then emit EOF
    else
      let c = input.[i] in
      match c with
      | '\n' ->
        incr line;
        scan (i + 1)
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '%' ->
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        scan (skip (i + 1))
      | '/' when i + 1 < n && input.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then fail "unterminated block comment"
          else if input.[j] = '\n' then (
            incr line;
            skip (j + 1))
          else if input.[j] = '*' && input.[j + 1] = '/' then j + 2
          else skip (j + 1)
        in
        scan (skip (i + 2))
      | '(' ->
        emit LPAREN;
        scan (i + 1)
      | ')' ->
        emit RPAREN;
        scan (i + 1)
      | '[' ->
        emit LBRACKET;
        scan (i + 1)
      | ']' ->
        emit RBRACKET;
        scan (i + 1)
      | ',' ->
        emit COMMA;
        scan (i + 1)
      | ':' when i + 1 < n && input.[i + 1] = '-' ->
        emit ARROW;
        scan (i + 2)
      | '=' when i + 1 < n && input.[i + 1] = '<' ->
        emit (OP "=<");
        scan (i + 2)
      | '>' when i + 1 < n && input.[i + 1] = '=' ->
        emit (OP ">=");
        scan (i + 2)
      | '\\' when i + 1 < n && input.[i + 1] = '=' ->
        emit (OP "\\=");
        scan (i + 2)
      | '=' | '<' | '>' | '+' | '*' | '/' ->
        emit (OP (String.make 1 c));
        scan (i + 1)
      | '-' when i + 1 < n && is_digit input.[i + 1] -> scan_number i
      | '-' ->
        emit (OP "-");
        scan (i + 1)
      | '.' ->
        (* A dot is a clause terminator unless it continues a number, which
           [scan_number] already consumed; here it is always terminal. *)
        emit DOT;
        scan (i + 1)
      | '\'' ->
        let rec find j =
          if j >= n then fail "unterminated quoted atom"
          else if input.[j] = '\'' then j
          else find (j + 1)
        in
        let j = find (i + 1) in
        emit (ATOM (String.sub input (i + 1) (j - i - 1)));
        scan (j + 1)
      | c when is_digit c -> scan_number i
      | c when is_lower c ->
        let j = ident_end i in
        let word = String.sub input i (j - i) in
        emit (if String.equal word "not" then NOT else ATOM word);
        scan j
      | c when is_upper c ->
        let j = ident_end i in
        emit (VAR (String.sub input i (j - i)));
        scan j
      | c -> fail (Printf.sprintf "unexpected character %C" c)
  and ident_end i =
    let rec go j = if j < n && is_ident input.[j] then go (j + 1) else j in
    go (i + 1)
  and scan_number i =
    let start = i in
    let i = if input.[i] = '-' then i + 1 else i in
    let rec digits j = if j < n && is_digit input.[j] then digits (j + 1) else j in
    let j = digits i in
    if j + 1 < n && input.[j] = '.' && is_digit input.[j + 1] then begin
      let k = digits (j + 1) in
      emit (REAL (float_of_string (String.sub input start (k - start))));
      scan k
    end
    else begin
      emit (INT (int_of_string (String.sub input start (j - start))));
      scan j
    end
  in
  scan 0;
  List.rev !tokens

let pp_token ppf = function
  | ATOM a -> Format.fprintf ppf "atom %s" a
  | VAR v -> Format.fprintf ppf "variable %s" v
  | INT n -> Format.fprintf ppf "integer %d" n
  | REAL r -> Format.fprintf ppf "real %g" r
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | COMMA -> Format.pp_print_string ppf "','"
  | DOT -> Format.pp_print_string ppf "'.'"
  | ARROW -> Format.pp_print_string ppf "':-'"
  | OP op -> Format.fprintf ppf "operator %s" op
  | NOT -> Format.pp_print_string ppf "'not'"
  | EOF -> Format.pp_print_string ppf "end of input"
