let rec occurs s x t =
  match t with
  | Term.Var y -> (
    String.equal x y
    || match Subst.find y s with None -> false | Some t' -> occurs s x t')
  | Term.Atom _ | Term.Int _ | Term.Real _ -> false
  | Term.Compound (_, args) -> List.exists (occurs s x) args

let rec walk s t =
  match t with
  | Term.Var x -> (
    match Subst.find x s with None -> t | Some t' -> walk s t')
  | _ -> t

let rec unify_terms s a b =
  let a = walk s a and b = walk s b in
  match (a, b) with
  | Term.Var x, Term.Var y when String.equal x y -> Some s
  | Term.Var x, t | t, Term.Var x ->
    if occurs s x t then None else Some (Subst.bind x t s)
  | Term.Atom f, Term.Atom g -> if String.equal f g then Some s else None
  | Term.Int n, Term.Int m -> if n = m then Some s else None
  | Term.Real r, Term.Real q -> if Float.equal r q then Some s else None
  | Term.Int n, Term.Real r | Term.Real r, Term.Int n ->
    (* Numeric literals unify across representations: thresholds are reals
       while stream attributes may be integers. *)
    if Float.equal (float_of_int n) r then Some s else None
  | Term.Compound (f, xs), Term.Compound (g, ys) ->
    if String.equal f g && List.length xs = List.length ys then
      unify_lists s xs ys
    else None
  | _ -> None

and unify_lists s xs ys =
  match (xs, ys) with
  | [], [] -> Some s
  | x :: xs', y :: ys' -> (
    match unify_terms s x y with
    | None -> None
    | Some s' -> unify_lists s' xs' ys')
  | _ -> None

let unify ?(subst = Subst.empty) a b = unify_terms subst a b
let matches pattern t = Option.is_some (unify pattern t)

let rec rename_apart ~suffix t =
  match t with
  | Term.Var x -> Term.Var (x ^ "_" ^ suffix)
  | Term.Atom _ | Term.Int _ | Term.Real _ -> t
  | Term.Compound (f, args) ->
    Term.Compound (f, List.map (rename_apart ~suffix) args)
