type event = { time : int; term : Term.t }

module M = Map.Make (struct
  type t = string * int

  let compare = compare
end)

type t = {
  by_indicator : event array M.t;  (* each array sorted by time *)
  all : event list;
  input_fluents : ((Term.t * Term.t) * Interval.t) list;
}

let make ?(input_fluents = []) events =
  List.iter
    (fun e ->
      if not (Term.is_ground e.term) then
        invalid_arg
          (Printf.sprintf "Stream.make: event %s is not ground" (Term.to_string e.term)))
    events;
  List.iter
    (fun ((f, v), _) ->
      if not (Term.is_ground f && Term.is_ground v) then
        invalid_arg "Stream.make: input fluent is not ground")
    input_fluents;
  let sorted = List.stable_sort (fun a b -> Int.compare a.time b.time) events in
  let grouped =
    List.fold_left
      (fun acc e ->
        let key = Term.indicator e.term in
        let existing = Option.value ~default:[] (M.find_opt key acc) in
        M.add key (e :: existing) acc)
      M.empty sorted
  in
  let by_indicator = M.map (fun es -> Array.of_list (List.rev es)) grouped in
  { by_indicator; all = sorted; input_fluents }

let events s = s.all
let size s = List.length s.all

let extent s =
  match s.all with
  | [] -> (0, 0)
  | first :: _ ->
    let rec last = function [ e ] -> e | _ :: rest -> last rest | [] -> first in
    (first.time, (last s.all).time)

(* First index with time >= t, via binary search. *)
let lower_bound arr t =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).time < t then lo := mid + 1 else hi := mid
  done;
  !lo

let events_in s ~functor_ ~from ~until =
  match M.find_opt functor_ s.by_indicator with
  | None -> []
  | Some arr ->
    let start = lower_bound arr from in
    let rec collect i acc =
      if i >= Array.length arr || arr.(i).time > until then List.rev acc
      else collect (i + 1) (arr.(i) :: acc)
    in
    collect start []

let events_at s ~functor_ ~time = events_in s ~functor_ ~from:time ~until:time
let input_fluents s = s.input_fluents
let indicators s = List.map fst (M.bindings s.by_indicator)

let append a b =
  make
    ~input_fluents:(a.input_fluents @ b.input_fluents)
    (a.all @ b.all)
