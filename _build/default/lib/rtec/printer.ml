let pp_rule ppf (r : Ast.rule) =
  match r.body with
  | [] -> Format.fprintf ppf "%a." Term.pp r.head
  | body ->
    Format.fprintf ppf "@[<v 4>%a :-@,%a.@]" Term.pp r.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
         Term.pp)
      body

let rule_to_string r = Format.asprintf "%a" pp_rule r

let pp_definition ppf (d : Ast.definition) =
  Format.fprintf ppf "@[<v>%% %s@,%a@]" d.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,") pp_rule)
    d.rules

let definition_to_string d = Format.asprintf "%a" pp_definition d

let pp_event_description ppf (ed : Ast.t) =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,") pp_definition)
    ed

let event_description_to_string ed = Format.asprintf "%a" pp_event_description ed
