type severity = Warning | Error

type diagnostic = {
  severity : severity;
  rule : Ast.rule option;
  message : string;
}

type vocabulary = {
  input_events : (string * int) list;
  input_fluents : (string * int) list;
  background : (string * int) list;
}

let comparison_ops = [ "="; "<"; ">"; ">="; "=<"; "\\=" ]
let interval_constructs =
  [ "union_all"; "intersect_all"; "relative_complement_all"; "intDurGreater" ]

let diag severity rule fmt =
  Format.kasprintf (fun message -> { severity; rule = Some rule; message }) fmt

let global severity fmt =
  Format.kasprintf (fun message -> { severity; rule = None; message }) fmt

(* --- simple-fluent rules (Definition 2.2) --- *)

let check_simple_rule r ~time acc =
  let acc =
    match r.Ast.body with
    | [] -> diag Error r "simple fluent rule has an empty body" :: acc
    | first :: _ -> (
      match first with
      | Term.Compound ("happensAt", [ _; t ]) ->
        if Term.equal t time then acc
        else
          diag Error r
            "first body literal is not evaluated on the head time-point" :: acc
      | _ ->
        diag Error r
          "first body literal of a simple fluent rule must be a positive happensAt"
        :: acc)
  in
  let check_literal acc literal =
    let _, atom = Term.strip_not literal in
    match atom with
    | Term.Compound (("happensAt" | "holdsAt"), [ _; t ]) ->
      if Term.equal t time then acc
      else
        diag Warning r "body literal %s is evaluated on a different time-point"
          (Term.to_string atom)
        :: acc
    | Term.Compound ("holdsFor", _) ->
      diag Error r "holdsFor may not appear in a simple fluent rule body" :: acc
    | _ -> acc
  in
  List.fold_left check_literal acc r.Ast.body

(* --- statically determined rules (Definition 2.4) --- *)

let as_interval_var t = match t with Term.Var v -> Some v | _ -> None

let check_sd_rule r ~fluent ~value ~interval acc =
  match as_interval_var interval with
  | None -> diag Error r "head interval argument must be a variable" :: acc
  | Some out_var ->
    let head_fvp = (Term.indicator fluent, value) in
    let acc =
      match r.Ast.body with
      | Term.Compound ("holdsFor", [ fv; _ ]) :: _ -> (
        match Term.as_fvp fv with
        | Some (f', v') when (Term.indicator f', v') = head_fvp ->
          diag Error r
            "first body literal must concern an FVP other than the head FVP"
          :: acc
        | Some _ -> acc
        | None -> diag Error r "holdsFor argument is not a fluent-value pair" :: acc)
      | _ ->
        diag Error r
          "first body literal of a statically determined rule must be holdsFor"
        :: acc
    in
    let bound = Hashtbl.create 8 in
    let require_bound acc t =
      match as_interval_var t with
      | Some v when Hashtbl.mem bound v -> acc
      | Some v -> diag Error r "interval variable %s used before being bound" v :: acc
      | None -> diag Error r "expected an interval variable, found %s" (Term.to_string t) :: acc
    in
    let bind acc t =
      match as_interval_var t with
      | Some v when Hashtbl.mem bound v ->
        diag Error r "interval variable %s is bound twice" v :: acc
      | Some v ->
        Hashtbl.replace bound v ();
        acc
      | None ->
        diag Error r "output of an interval operation must be a fresh variable" :: acc
    in
    let check_literal acc literal =
      match literal with
      | Term.Compound ("holdsFor", [ _; i ]) -> bind acc i
      | Term.Compound (("union_all" | "intersect_all"), [ operands; out ]) -> (
        match Term.as_list operands with
        | Some elems ->
          let acc = List.fold_left require_bound acc elems in
          bind acc out
        | None ->
          diag Error r "interval construct expects a list of interval variables" :: acc)
      | Term.Compound ("relative_complement_all", [ i; operands; out ]) -> (
        let acc = require_bound acc i in
        match Term.as_list operands with
        | Some elems ->
          let acc = List.fold_left require_bound acc elems in
          bind acc out
        | None ->
          diag Error r "relative_complement_all expects a list of interval variables" :: acc)
      | Term.Compound ("intDurGreater", [ i; threshold; out ]) ->
        let acc = require_bound acc i in
        let acc =
          match threshold with
          | Term.Int _ | Term.Real _ -> acc
          | _ -> diag Error r "intDurGreater expects a numeric threshold" :: acc
        in
        bind acc out
      | _ ->
        diag Error r
          "statically determined rule bodies may contain only holdsFor literals and interval constructs (found %s)"
          (Term.to_string literal)
        :: acc
    in
    let acc = List.fold_left check_literal acc r.Ast.body in
    if Hashtbl.mem bound out_var then acc
    else diag Error r "head interval variable %s is never produced by the body" out_var :: acc

(* --- vocabulary checks (Section 5.2, error category 3) --- *)

let check_vocabulary (voc : vocabulary) (deps : Dependency.t) (ed : Ast.t) acc =
  let defined = Ast.defined_indicators ed in
  let check_rule acc (r : Ast.rule) =
    let check_literal acc literal =
      let _, atom = Term.strip_not literal in
      match atom with
      | Term.Compound ("happensAt", [ e; _ ]) ->
        let ind = Term.indicator e in
        if List.mem ind voc.input_events then acc
        else diag Error r "reference to undefined input event %s/%d" (fst ind) (snd ind) :: acc
      | Term.Compound (("holdsAt" | "holdsFor"), [ fv; _ ]) -> (
        match Term.as_fvp fv with
        | Some (f, _) ->
          let ind = Term.indicator f in
          if List.mem ind defined || List.mem ind voc.input_fluents then acc
          else
            diag Error r "reference to undefined activity %s/%d" (fst ind) (snd ind) :: acc
        | None -> acc)
      | Term.Compound (op, [ _; _ ]) when List.mem op comparison_ops -> acc
      | Term.Compound (op, _) when List.mem op interval_constructs -> acc
      | _ ->
        let ind = Term.indicator atom in
        if List.mem ind voc.background then acc
        else
          diag Warning r "unknown background predicate %s/%d" (fst ind) (snd ind) :: acc
    in
    List.fold_left check_literal acc r.body
  in
  ignore deps;
  List.fold_left check_rule acc (Ast.all_rules ed)

let check ?vocabulary (ed : Ast.t) =
  let deps = Dependency.analyse ed in
  let acc = [] in
  let acc =
    List.fold_left
      (fun acc (info : Dependency.info) ->
        if info.fluent_class = Dependency.Mixed then
          global Error
            "fluent %s/%d is defined both as simple and as statically determined"
            (fst info.indicator) (snd info.indicator)
          :: acc
        else acc)
      acc (Dependency.all deps)
  in
  let acc =
    match Dependency.evaluation_order deps with
    | Ok _ -> acc
    | Error msg -> global Error "%s" msg :: acc
  in
  let acc =
    List.fold_left
      (fun acc (r : Ast.rule) ->
        match Ast.kind_of_rule r with
        | None -> (
          (* initially(F=V) facts declare initial fluent values. *)
          match r.head with
          | Term.Compound ("initially", [ fv ]) -> (
            match Term.as_fvp fv with
            | Some (f, v) when r.body = [] && Term.is_ground f && Term.is_ground v -> acc
            | Some _ ->
              diag Error r "initially declarations must be ground facts" :: acc
            | None ->
              diag Error r "initially expects a fluent-value pair" :: acc)
          | _ ->
            diag Error r
              "head must be initiatedAt/terminatedAt/holdsFor over a fluent-value pair"
            :: acc)
        | Some (Ast.Initiated { time; _ } | Ast.Terminated { time; _ }) ->
          check_simple_rule r ~time acc
        | Some (Ast.Holds_for { fluent; value; interval }) ->
          check_sd_rule r ~fluent ~value ~interval acc)
      acc (Ast.all_rules ed)
  in
  let acc =
    match vocabulary with
    | None -> acc
    | Some voc -> check_vocabulary voc deps ed acc
  in
  List.rev acc

let usable ?vocabulary ed =
  not (List.exists (fun d -> d.severity = Error) (check ?vocabulary ed))

let pp_diagnostic ppf d =
  let sev = match d.severity with Warning -> "warning" | Error -> "error" in
  match d.rule with
  | None -> Format.fprintf ppf "%s: %s" sev d.message
  | Some r -> Format.fprintf ppf "%s: %s@ in rule: %s" sev d.message (Printer.rule_to_string r)
