(** Syntactic unification of first-order terms. *)

val unify : ?subst:Subst.t -> Term.t -> Term.t -> Subst.t option
(** [unify a b] computes a most general unifier of [a] and [b], extending the
    optional initial substitution. Includes the occurs check. *)

val matches : Term.t -> Term.t -> bool
(** [matches pattern t] holds when the two terms unify. *)

val rename_apart : suffix:string -> Term.t -> Term.t
(** [rename_apart ~suffix t] renames every variable [X] of [t] to
    [X_suffix]; used to keep rule variables distinct from query variables. *)
