type stats = { queries : int; events_processed : int }

module FvpMap = Map.Make (struct
  type t = Engine.fvp

  let compare (f1, v1) (f2, v2) =
    let c = Term.compare f1 f2 in
    if c <> 0 then c else Term.compare v1 v2
end)

let query_times ~lo ~hi ~window ~step =
  (* The first query fires once a full window has elapsed (so its window
     reaches back to the start of the stream); queries then repeat every
     [step] time-points, with a final query exactly at the end of the
     stream. *)
  let rec gen q acc = if q >= hi then List.rev (hi :: acc) else gen (q + step) (q :: acc) in
  gen (lo + window - 1) []

let run ?window ?step ~event_description ~knowledge ~stream () =
  let lo, hi = Stream.extent stream in
  (* Without an explicit window, a single query covers the whole extent. *)
  let window = Option.value ~default:(hi - lo + 1) window in
  let step = Option.value ~default:window step in
  if window <= 0 || step <= 0 then Result.Error "window and step must be positive"
  else begin
    let accumulated = ref FvpMap.empty in
    let queries = ref 0 and events_processed = ref 0 in
    let record (fv, spans) =
      if not (Interval.is_empty spans) then
        accumulated :=
          FvpMap.update fv
            (fun o -> Some (Interval.union spans (Option.value ~default:Interval.empty o)))
            !accumulated
    in
    let all_events = Stream.events stream in
    let process q =
      let from = max lo (q - window + 1) in
      (* FVPs holding at the window start according to what has been
         recognised so far are carried over by inertia. *)
      let carry =
        FvpMap.fold
          (fun fv spans acc -> if Interval.mem from spans then fv :: acc else acc)
          !accumulated []
      in
      match Engine.run ~carry ~event_description ~knowledge ~stream ~from ~until:q () with
      | Result.Error e -> Some e
      | Ok result ->
        (* Truncate open intervals just past the query horizon so that the
           next (overlapping) window extends them seamlessly. *)
        let horizon = q + 2 in
        List.iter (fun (fv, spans) -> record (fv, Interval.clamp from horizon spans)) result;
        incr queries;
        events_processed :=
          !events_processed
          + List.length
              (List.filter (fun (e : Stream.event) -> e.time >= from && e.time <= q) all_events);
        None
    in
    let rec loop = function
      | [] -> None
      | q :: rest -> ( match process q with Some e -> Some e | None -> loop rest)
    in
    match loop (query_times ~lo ~hi ~window ~step) with
    | Some e -> Result.Error e
    | None ->
      let result = FvpMap.fold (fun fv spans acc -> (fv, spans) :: acc) !accumulated [] in
      Ok (result, { queries = !queries; events_processed = !events_processed })
  end
