lib/rtec/term.mli: Format
