lib/rtec/subst.ml: Format List Map String Term
