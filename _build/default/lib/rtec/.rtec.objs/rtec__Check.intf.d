lib/rtec/check.mli: Ast Format
