lib/rtec/interval.mli: Format
