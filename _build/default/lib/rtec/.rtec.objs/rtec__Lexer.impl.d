lib/rtec/lexer.ml: Format List Printf String
