lib/rtec/unify.mli: Subst Term
