lib/rtec/check.ml: Ast Dependency Format Hashtbl List Printer Term
