lib/rtec/parser.ml: Ast Format Lexer List Printf Result Term
