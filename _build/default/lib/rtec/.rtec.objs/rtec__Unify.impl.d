lib/rtec/unify.ml: Float List Option String Subst Term
