lib/rtec/interval.ml: Format Int List
