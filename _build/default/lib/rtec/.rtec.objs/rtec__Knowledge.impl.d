lib/rtec/knowledge.ml: Ast List Map Option Parser Printf Subst Term Unify
