lib/rtec/io.ml: Ast Buffer Interval Knowledge List Parser Printf Stream String Term
