lib/rtec/engine.ml: Ast Dependency Float Hashtbl Interval Knowledge List Map Option Printer Printf Result Stream String Subst Term Unify
