lib/rtec/ast.ml: List String Term
