lib/rtec/window.mli: Ast Engine Knowledge Result Stream
