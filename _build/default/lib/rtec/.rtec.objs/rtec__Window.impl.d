lib/rtec/window.ml: Dependency Engine Interval List Map Option Result Stream Term
