lib/rtec/window.ml: Engine Interval List Map Option Result Stream Term
