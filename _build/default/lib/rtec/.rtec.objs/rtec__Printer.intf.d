lib/rtec/printer.mli: Ast Format
