lib/rtec/dependency.ml: Ast Hashtbl List Map Printf Queue String Term
