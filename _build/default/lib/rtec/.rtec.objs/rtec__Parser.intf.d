lib/rtec/parser.mli: Ast Term
