lib/rtec/subst.mli: Format Term
