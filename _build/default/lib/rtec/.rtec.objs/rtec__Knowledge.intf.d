lib/rtec/knowledge.mli: Subst Term
