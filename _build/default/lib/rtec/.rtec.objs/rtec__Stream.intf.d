lib/rtec/stream.mli: Interval Term
