lib/rtec/engine.mli: Ast Interval Knowledge Result Stream Term
