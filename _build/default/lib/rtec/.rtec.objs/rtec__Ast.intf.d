lib/rtec/ast.mli: Term
