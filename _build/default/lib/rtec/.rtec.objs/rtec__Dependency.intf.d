lib/rtec/dependency.mli: Ast
