lib/rtec/stream.ml: Array Hashtbl Int Interval List Map Option Printf Term
