lib/rtec/stream.ml: Array Int Interval List Map Option Printf Term
