lib/rtec/lexer.mli: Format
