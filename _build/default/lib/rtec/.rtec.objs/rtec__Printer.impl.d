lib/rtec/printer.ml: Ast Format Term
