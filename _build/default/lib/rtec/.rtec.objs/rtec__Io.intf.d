lib/rtec/io.mli: Knowledge Stream
