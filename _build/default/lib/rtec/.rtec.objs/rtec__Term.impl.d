lib/rtec/term.ml: Float Format Hashtbl Int List String
