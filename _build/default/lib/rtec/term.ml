type t =
  | Var of string
  | Atom of string
  | Int of int
  | Real of float
  | Compound of string * t list

let rec compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Real x, Real y -> Float.compare x y
  | Real _, _ -> -1
  | _, Real _ -> 1
  | Atom x, Atom y -> String.compare x y
  | Atom _, _ -> -1
  | _, Atom _ -> 1
  | Compound (f, xs), Compound (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c
    else
      let c = Int.compare (List.length xs) (List.length ys) in
      if c <> 0 then c else compare_lists xs ys

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let app f = function
  | [] -> Atom f
  | args -> Compound (f, args)

let eq f v = Compound ("=", [ f; v ])
let neg a = Compound ("not", [ a ])
let list_ ts = Compound ("[]", ts)

let functor_of = function
  | Var x -> x
  | Atom f -> f
  | Int _ -> "#int"
  | Real _ -> "#real"
  | Compound (f, _) -> f

let arity = function Compound (_, args) -> List.length args | _ -> 0
let args = function Compound (_, args) -> args | _ -> []
let is_var = function Var _ -> true | _ -> false

let is_const = function
  | Atom _ | Int _ | Real _ -> true
  | Var _ | Compound _ -> false

let rec is_ground = function
  | Var _ -> false
  | Atom _ | Int _ | Real _ -> true
  | Compound (_, args) -> List.for_all is_ground args

let vars t =
  let rec go acc = function
    | Var x -> if List.mem x acc then acc else x :: acc
    | Atom _ | Int _ | Real _ -> acc
    | Compound (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let rec strip_not t =
  match t with
  | Compound ("not", [ a ]) ->
    let positive, inner = strip_not a in
    (not positive, inner)
  | _ -> (true, t)

let as_fvp = function Compound ("=", [ f; v ]) -> Some (f, v) | _ -> None
let as_list = function Compound ("[]", ts) -> Some ts | Atom "[]" -> Some [] | _ -> None
let indicator t = (functor_of t, arity t)

let infix_operators = [ "="; "<"; ">"; ">="; "=<"; "\\="; "+"; "-"; "*"; "/" ]

let rec pp ppf t =
  match t with
  | Var x -> Format.pp_print_string ppf x
  | Atom f -> Format.pp_print_string ppf f
  | Int n -> Format.pp_print_int ppf n
  | Real r ->
    (* Print reals so that they re-parse as reals (keep a decimal point). *)
    if Float.is_integer r && Float.abs r < 1e15 then Format.fprintf ppf "%.1f" r
    else Format.fprintf ppf "%g" r
  | Compound ("[]", ts) ->
    Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:pp_comma pp) ts
  | Compound ("not", [ a ]) -> Format.fprintf ppf "not %a" pp_inner a
  | Compound (op, [ a; b ]) when List.mem op infix_operators ->
    Format.fprintf ppf "%a %s %a" pp_inner a op pp_inner b
  | Compound (f, args) ->
    Format.fprintf ppf "%s(%a)" f (Format.pp_print_list ~pp_sep:pp_comma pp) args

and pp_inner ppf t =
  (* Parenthesise nested infix applications and negations to keep printing
     unambiguous. *)
  match t with
  | Compound (op, [ _; _ ]) when List.mem op infix_operators ->
    Format.fprintf ppf "(%a)" pp t
  | Compound ("not", [ _ ]) -> Format.fprintf ppf "(%a)" pp t
  | _ -> pp ppf t

and pp_comma ppf () = Format.pp_print_string ppf ", "

let to_string t = Format.asprintf "%a" pp t
