type span = { start : int; stop : int }
type t = span list

let infinity = max_int

let make s e =
  if e <= s then invalid_arg "Interval.make: empty span" else { start = s; stop = e }

let empty = []
let is_empty i = i = []

let of_list pairs =
  let pairs = List.filter (fun (s, e) -> e > s) pairs in
  let pairs = List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) pairs in
  let rec merge = function
    | [] -> []
    | [ (s, e) ] -> [ { start = s; stop = e } ]
    | (s1, e1) :: (s2, e2) :: rest ->
      if s2 <= e1 then merge ((s1, max e1 e2) :: rest)
      else { start = s1; stop = e1 } :: merge ((s2, e2) :: rest)
  in
  merge pairs

let to_list i = List.map (fun { start; stop } -> (start, stop)) i
let equal a b = a = b
let mem t i = List.exists (fun { start; stop } -> start <= t && t < stop) i

let duration i =
  List.fold_left
    (fun acc { start; stop } ->
      if stop = infinity then infinity else acc + (stop - start))
    0 i

let clamp lo hi i =
  List.filter_map
    (fun { start; stop } ->
      let s = max lo start and e = min hi stop in
      if e > s then Some (s, e) else None)
    i
  |> of_list

let union a b = of_list (to_list a @ to_list b)

let inter a b =
  (* Linear sweep over the two normalised lists. *)
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: a', y :: b' ->
      let s = max x.start y.start and e = min x.stop y.stop in
      let acc = if e > s then { start = s; stop = e } :: acc else acc in
      if x.stop <= y.stop then go acc a' b else go acc a b'
  in
  go [] a b

let diff a b =
  (* Subtract each span of [b] from the spans of [a]. *)
  let subtract_span spans y =
    List.concat_map
      (fun x ->
        if y.stop <= x.start || x.stop <= y.start then [ x ]
        else
          let left = if y.start > x.start then [ { start = x.start; stop = y.start } ] else [] in
          let right = if y.stop < x.stop then [ { start = y.stop; stop = x.stop } ] else [] in
          left @ right)
      spans
  in
  List.fold_left subtract_span a b

let union_all lists = of_list (List.concat_map to_list lists)

let intersect_all = function
  | [] -> []
  | first :: rest -> List.fold_left inter first rest

let relative_complement_all i lists = diff i (union_all lists)

let filter_duration ~min_duration i =
  List.filter
    (fun { start; stop } -> stop = infinity || stop - start > min_duration)
    i

let from_points ~starts ~stops =
  let starts = List.sort_uniq Int.compare starts in
  let stops = List.sort_uniq Int.compare stops in
  (* Walk initiations in order; for each initiation not already covered,
     find the first termination strictly after it (an initiation at Ts
     makes the fluent hold from Ts + 1 even when a termination also occurs
     at Ts — canonical Event Calculus inertia). A termination at Te closes
     the interval at Te + 1: the fluent still holds at Te. A re-initiation
     exactly at Te starts a new period, which amalgamates with the closing
     one. *)
  let rec go acc starts stops =
    match starts with
    | [] -> List.rev acc
    | ts :: starts' -> (
      match List.find_opt (fun te -> te > ts) stops with
      | None -> List.rev ({ start = ts + 1; stop = infinity } :: acc)
      | Some te ->
        let acc = { start = ts + 1; stop = te + 1 } :: acc in
        let starts' = List.filter (fun t -> t >= te) starts' in
        let stops' = List.filter (fun t -> t > te) stops in
        go acc starts' stops')
  in
  of_list (to_list (go [] starts stops))

let pp ppf i =
  let pp_span ppf { start; stop } =
    if stop = infinity then Format.fprintf ppf "(%d,inf)" start
    else Format.fprintf ppf "(%d,%d)" start stop
  in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_span)
    i

let to_string i = Format.asprintf "%a" pp i
