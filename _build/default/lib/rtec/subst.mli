(** Substitutions: finite maps from variable names to terms. *)

type t

val empty : t
val is_empty : t -> bool
val bind : string -> Term.t -> t -> t
(** [bind x t s] extends [s] with [x -> t]; any existing binding of [x] is
    replaced, so callers must check consistency beforehand (as [Unify.unify]
    does). *)

val find : string -> t -> Term.t option
val mem : string -> t -> bool
val bindings : t -> (string * Term.t) list
val apply : t -> Term.t -> Term.t
(** [apply s t] replaces every variable of [t] bound in [s] by its (itself
    substituted) binding. Substitutions are kept idempotent by construction,
    but [apply] walks bindings transitively for safety. *)

val pp : Format.formatter -> t -> unit
