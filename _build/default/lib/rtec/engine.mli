(** The RTEC reasoning engine.

    Computes, bottom-up over the fluent hierarchy, the maximal intervals of
    every defined fluent-value pair from a window of the input stream
    (Section 2, "Reasoning"). Simple fluents follow the law of inertia:
    initiation points are matched with the first subsequent termination
    point, where the initiation of a different value of the same fluent
    also acts as a termination. Statically determined fluents are computed
    by interval manipulation over the cached intervals of lower-level
    fluents. *)

type fvp = Term.t * Term.t
(** A ground fluent-value pair. *)

type result = (fvp * Interval.t) list

val run :
  ?carry:fvp list ->
  event_description:Ast.t ->
  knowledge:Knowledge.t ->
  stream:Stream.t ->
  from:int ->
  until:int ->
  unit ->
  (result, string) Result.t
(** Evaluates the event description over the events with
    [from <= time <= until]. [carry] lists the FVPs that held at the window
    start according to the previous query (RTEC's interval amalgamation);
    they are treated as initiated just before [from]. When the window
    reaches the start of the stream, ground [initially(F=V)] facts of the
    event description are added to the carry. Fails when the description
    is not stratified or a fluent mixes rule kinds. *)

val holds_at : result -> fvp -> int -> bool
val intervals : result -> fvp -> Interval.t
val find_fluent : result -> string * int -> (fvp * Interval.t) list
(** All computed instances of a fluent indicator. *)

val query : result -> Term.t -> (fvp * Interval.t) list
(** [query result pattern] returns the instances whose FVP unifies with
    the (possibly non-ground) pattern, e.g.
    [withinArea(Vessel, fishing) = true]. *)
