(** First-order terms: the representation shared by the RTEC language, the
    engine and the similarity metric.

    Following the paper, the fluent-value pair [F=V] is represented as the
    compound term [=(F, V)] in prefix notation, and negation-by-failure as
    the unary wrapper [not(A)]. *)

type t =
  | Var of string  (** logical variable, e.g. [Vessel] *)
  | Atom of string  (** constant symbol, e.g. [fishing] *)
  | Int of int  (** integer constant (time-points, counts) *)
  | Real of float  (** numeric constant (speeds, thresholds) *)
  | Compound of string * t list  (** [f(t1, ..., tn)] with n >= 1 *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** {1 Constructors} *)

val app : string -> t list -> t
(** [app f args] builds [Atom f] when [args] is empty and a compound term
    otherwise. *)

val eq : t -> t -> t
(** [eq f v] is the fluent-value pair [f = v], i.e. [=(f, v)]. *)

val neg : t -> t
(** [neg a] wraps [a] in negation-by-failure. *)

val list_ : t list -> t
(** [list_ ts] is the list term [[t1, ..., tn]], used by the interval
    manipulation constructs. *)

(** {1 Inspection} *)

val functor_of : t -> string
(** Predicate/function symbol of a term; the name itself for atoms and
    variables, ["#int"]/["#real"] for numbers. *)

val arity : t -> int
val args : t -> t list
val is_var : t -> bool
val is_const : t -> bool
(** [is_const t] holds for atoms and numeric constants. *)

val is_ground : t -> bool
val vars : t -> string list
(** Variables occurring in the term, without duplicates, in first-occurrence
    order. *)

val strip_not : t -> bool * t
(** [strip_not a] is [(positive, atom)] after removing any (nested) [not]
    wrappers; an even number of wrappers yields a positive literal. *)

val as_fvp : t -> (t * t) option
(** [as_fvp t] decomposes [=(f, v)] into [Some (f, v)]. *)

val as_list : t -> t list option
(** [as_list t] decomposes a list term into its elements. *)

val indicator : t -> string * int
(** [indicator t] is the [(functor, arity)] pair identifying a predicate or a
    fluent schema. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Prolog-style printing: [=] and comparison operators are printed infix,
    list terms with brackets, everything else in canonical [f(...)] form. *)

val to_string : t -> string
