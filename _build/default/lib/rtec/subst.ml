module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty
let bind x t s = M.add x t s
let find x s = M.find_opt x s
let mem x s = M.mem x s
let bindings s = M.bindings s

let rec apply s t =
  match t with
  | Term.Var x -> (
    match M.find_opt x s with
    | None -> t
    | Some (Term.Var y as t') -> if String.equal x y then t' else apply s t'
    | Some t' -> apply s t')
  | Term.Atom _ | Term.Int _ | Term.Real _ -> t
  | Term.Compound (f, args) -> Term.Compound (f, List.map (apply s) args)

let pp ppf s =
  let pp_binding ppf (x, t) = Format.fprintf ppf "%s -> %a" x Term.pp t in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_binding)
    (bindings s)
