(** Well-formedness checking of event descriptions against Definitions 2.2
    and 2.4 of the paper, plus detection of the LLM error categories of
    Section 5.2 (undefined activities, mixed fluent kinds). *)

type severity = Warning | Error

type diagnostic = {
  severity : severity;
  rule : Ast.rule option;
  message : string;
}

type vocabulary = {
  input_events : (string * int) list;
  input_fluents : (string * int) list;
  background : (string * int) list;
      (** atemporal predicates usable as body conditions, e.g. [areaType/2] *)
}

val check : ?vocabulary:vocabulary -> Ast.t -> diagnostic list
(** Diagnoses, per rule: head shape; first-literal discipline (positive
    [happensAt] for simple rules, [holdsFor] of a different FVP for
    statically determined rules); single shared time variable in simple
    rules; interval-construct dataflow (operands bound earlier, output
    bound exactly once, head interval produced); and, when a [vocabulary]
    is supplied, references to events/fluents/predicates that are neither
    defined nor part of the input. *)

val usable : ?vocabulary:vocabulary -> Ast.t -> bool
(** [true] when [check] reports no [Error]-severity diagnostic, i.e. the
    event description can be supplied to the engine. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
