open Rtec

type path = (string * int) list

module M = Map.Make (String)

type t = path list M.t

let paths_in_term term =
  let rec go prefix t acc =
    match t with
    | Term.Var v -> (v, List.rev prefix) :: acc
    | Term.Atom _ | Term.Int _ | Term.Real _ -> acc
    | Term.Compound (f, args) ->
      let _, acc =
        List.fold_left
          (fun (i, acc) arg -> (i + 1, go ((f, i) :: prefix) arg acc))
          (1, acc) args
      in
      acc
  in
  List.rev (go [] term [])

let of_rule (r : Ast.rule) =
  let add acc (v, path) =
    M.update v (fun o -> Some (path :: Option.value ~default:[] o)) acc
  in
  let collect acc term = List.fold_left add acc (paths_in_term term) in
  let raw = List.fold_left collect M.empty (r.head :: r.body) in
  M.map (fun paths -> List.sort_uniq compare paths) raw

let instances t v = Option.value ~default:[] (M.find_opt v t)

let equal_instances t1 v1 t2 v2 =
  let i1 = instances t1 v1 and i2 = instances t2 v2 in
  i1 <> [] && i1 = i2
