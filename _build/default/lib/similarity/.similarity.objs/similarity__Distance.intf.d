lib/similarity/distance.mli: Rtec Var_instance
