lib/similarity/distance.ml: Array Assignment Ast Float List Rtec String Term Var_instance
