lib/similarity/var_instance.mli: Rtec
