lib/similarity/var_instance.ml: Ast List Map Option Rtec String Term
