lib/evaluation/metrics.ml: List Map Option Rtec
