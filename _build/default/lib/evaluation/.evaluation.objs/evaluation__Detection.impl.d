lib/evaluation/detection.ml: List Maritime Option Rtec
