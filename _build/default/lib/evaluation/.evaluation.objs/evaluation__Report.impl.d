lib/evaluation/report.ml: Experiments Format List Maritime Printf String
