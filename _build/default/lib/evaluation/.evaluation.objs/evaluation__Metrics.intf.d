lib/evaluation/metrics.mli: Rtec
