lib/evaluation/report.mli: Experiments Format Maritime
