lib/evaluation/experiments.mli: Adg Maritime Rtec
