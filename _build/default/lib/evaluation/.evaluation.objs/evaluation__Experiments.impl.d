lib/evaluation/experiments.ml: Adg Detection Float List Maritime Metrics Rtec Similarity String
