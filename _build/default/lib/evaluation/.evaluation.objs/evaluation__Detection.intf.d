lib/evaluation/detection.mli: Maritime Rtec
