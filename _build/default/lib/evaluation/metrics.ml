type confusion = { tp : int; fp : int; fn : int }

let zero = { tp = 0; fp = 0; fn = 0 }
let add a b = { tp = a.tp + b.tp; fp = a.fp + b.fp; fn = a.fn + b.fn }

let precision c =
  if c.tp + c.fp = 0 then if c.fn = 0 then 1. else 0.
  else float_of_int c.tp /. float_of_int (c.tp + c.fp)

let recall c =
  if c.tp + c.fn = 0 then if c.fp = 0 then 1. else 0.
  else float_of_int c.tp /. float_of_int (c.tp + c.fn)

let f1 c =
  if c.tp = 0 && c.fp = 0 && c.fn = 0 then 1.
  else
    let denom = (2 * c.tp) + c.fp + c.fn in
    if denom = 0 then 0. else float_of_int (2 * c.tp) /. float_of_int denom

module FvpMap = Map.Make (struct
  type t = Rtec.Engine.fvp

  let compare (f1, v1) (f2, v2) =
    let c = Rtec.Term.compare f1 f2 in
    if c <> 0 then c else Rtec.Term.compare v1 v2
end)

let finite_duration spans =
  (* Open intervals do not occur in windowed results, but clamp anyway. *)
  Rtec.Interval.duration (Rtec.Interval.clamp 0 (Rtec.Interval.infinity - 1) spans)

let compare_activity ~predicted ~reference ~indicator =
  let collect result =
    List.fold_left
      (fun acc (fv, spans) -> FvpMap.add fv spans acc)
      FvpMap.empty
      (Rtec.Engine.find_fluent result indicator)
  in
  let p = collect predicted and r = collect reference in
  let all_keys =
    FvpMap.fold (fun k _ acc -> FvpMap.add k () acc) p FvpMap.empty
    |> FvpMap.fold (fun k _ acc -> FvpMap.add k () acc) r
  in
  FvpMap.fold
    (fun fv () acc ->
      let ps = Option.value ~default:Rtec.Interval.empty (FvpMap.find_opt fv p) in
      let rs = Option.value ~default:Rtec.Interval.empty (FvpMap.find_opt fv r) in
      let inter = Rtec.Interval.inter ps rs in
      add acc
        {
          tp = finite_duration inter;
          fp = finite_duration (Rtec.Interval.diff ps rs);
          fn = finite_duration (Rtec.Interval.diff rs ps);
        })
    all_keys zero
