(** Time-point predictive accuracy (Section 5.2, "Performance on CER").

    For one activity, the time-points (seconds) at which it is recognised
    by both the evaluated and the reference event description are true
    positives; time-points recognised only by the evaluated (reference)
    description are false positives (negatives). *)

type confusion = { tp : int; fp : int; fn : int }

val zero : confusion
val add : confusion -> confusion -> confusion
val precision : confusion -> float
val recall : confusion -> float
val f1 : confusion -> float
(** Conventions: a perfectly empty comparison (no positives anywhere)
    counts as agreement, i.e. f1 = 1. *)

val compare_activity :
  predicted:Rtec.Engine.result ->
  reference:Rtec.Engine.result ->
  indicator:string * int ->
  confusion
(** Sums interval overlaps/differences over every ground FVP instance of
    the activity appearing in either result. *)
