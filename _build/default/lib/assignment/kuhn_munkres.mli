(** The Kuhn–Munkres ("Hungarian") algorithm for the assignment problem,
    with worst-case cost O(n^3) (Kuhn 1955), as used by Definitions 4.5,
    4.12 and 4.14 of the paper to find the minimum-cost mapping between
    sets of expressions, body conditions and rules. *)

val solve : float array array -> int array * float
(** [solve cost] takes a square [n x n] cost matrix and returns
    [(assignment, total)] where [assignment.(row) = column] describes a
    perfect matching of minimum total cost. Raises [Invalid_argument] on a
    non-square matrix. The empty matrix yields [([||], 0.)]. *)

val solve_rectangular : float array array -> (int * int) list * float
(** Convenience wrapper for an [m x k] matrix with [m >= k]: pads the
    missing columns with zero-cost "unmatched" slots, exactly as the cost
    matrix of Definition 4.3 does, and returns the optimal pairs
    [(row, column)] restricted to real columns, plus the total cost over
    all [m] rows (the padded slots contribute 0). *)
