(** Greedy matching baseline for the assignment problem: repeatedly pair
    the globally cheapest remaining (row, column) cell. Not optimal — used
    as an ablation against {!Kuhn_munkres} to show that the similarity
    metric of the paper needs an optimal mapping. *)

val solve_rectangular : float array array -> (int * int) list * float
(** Same contract as {!Kuhn_munkres.solve_rectangular}: an [m x k] matrix
    with [m >= k]; returns the greedy pairs over real columns and their
    total cost. *)
