lib/assignment/greedy.mli:
