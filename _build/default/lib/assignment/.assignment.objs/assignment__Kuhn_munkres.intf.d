lib/assignment/kuhn_munkres.mli:
