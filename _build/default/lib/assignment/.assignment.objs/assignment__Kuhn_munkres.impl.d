lib/assignment/kuhn_munkres.ml: Array
