lib/assignment/greedy.ml: Array List
