let solve_rectangular cost =
  let m = Array.length cost in
  if m = 0 then ([], 0.)
  else begin
    let k = Array.length cost.(0) in
    if k > m then invalid_arg "Greedy.solve_rectangular: more columns than rows";
    let row_used = Array.make m false and col_used = Array.make k false in
    let pairs = ref [] and total = ref 0. in
    for _ = 1 to k do
      let best = ref None in
      for i = 0 to m - 1 do
        if not row_used.(i) then
          for j = 0 to k - 1 do
            if not col_used.(j) then
              match !best with
              | Some (_, _, c) when c <= cost.(i).(j) -> ()
              | _ -> best := Some (i, j, cost.(i).(j))
          done
      done;
      match !best with
      | None -> ()
      | Some (i, j, c) ->
        row_used.(i) <- true;
        col_used.(j) <- true;
        pairs := (i, j) :: !pairs;
        total := !total +. c
    done;
    (List.rev !pairs, !total)
  end
