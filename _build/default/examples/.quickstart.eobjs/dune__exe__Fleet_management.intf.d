examples/fleet_management.mli:
