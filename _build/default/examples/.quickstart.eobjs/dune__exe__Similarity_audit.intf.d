examples/similarity_audit.mli:
