examples/quickstart.mli:
