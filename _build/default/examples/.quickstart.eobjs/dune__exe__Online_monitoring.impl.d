examples/online_monitoring.ml: Format Hashtbl List Maritime Printf Rtec
