examples/fleet_management.ml: Adg Domain Fleet Format List Rtec Similarity String
