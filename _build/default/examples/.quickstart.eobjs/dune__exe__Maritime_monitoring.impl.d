examples/maritime_monitoring.ml: Evaluation Format List Maritime Printf Rtec
