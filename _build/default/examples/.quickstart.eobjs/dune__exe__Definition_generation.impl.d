examples/definition_generation.ml: Adg Array Evaluation Format List Maritime Printf Rtec String Sys
