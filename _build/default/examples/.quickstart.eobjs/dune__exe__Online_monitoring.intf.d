examples/online_monitoring.mli:
