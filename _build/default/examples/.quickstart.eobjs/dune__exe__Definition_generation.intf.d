examples/definition_generation.mli:
