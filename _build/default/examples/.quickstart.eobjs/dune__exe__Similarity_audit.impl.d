examples/similarity_audit.ml: Adg Array Format List Maritime Parser Printf Rtec Similarity String
