examples/maritime_monitoring.mli:
