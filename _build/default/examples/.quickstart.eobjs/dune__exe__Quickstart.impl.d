examples/quickstart.ml: Format List Rtec
