(* Online operation: instead of handing the whole stream to Rtec.Window,
   drive the engine query by query as batches of AIS messages "arrive",
   carrying fluent states across window boundaries — the run-time loop a
   deployment would implement. Prints detections as they are recognised.

   Run with: dune exec examples/online_monitoring.exe *)

let hms seconds = Printf.sprintf "%02d:%02d" (seconds / 3600) (seconds mod 3600 / 60)

let () =
  let dataset =
    Maritime.Dataset.generate
      ~config:{ Maritime.Dataset.seed = 2025; replicas = 1; nominal = 1 }
      ()
  in
  let ed = Maritime.Gold.event_description in
  let window = 3600 and step = 1800 in
  let lo, hi = Rtec.Stream.extent dataset.stream in
  Format.printf "stream: %d events in [%d, %d]; window %ds, step %ds@.@."
    (Rtec.Stream.size dataset.stream) lo hi window step;

  (* State carried between queries: the FVPs holding at the next window
     start, derived from the previous result. *)
  let carry = ref [] in
  let seen = Hashtbl.create 64 in
  let watched = [ ("trawling", 1); ("pilotBoarding", 2); ("anchoredOrMoored", 1);
                  ("illegalFishing", 1); ("highSpeedNearCoast", 1) ] in
  let q = ref (lo + window - 1) in
  while !q <= hi do
    let from = max lo (!q - window + 1) in
    (match
       Rtec.Engine.run ~carry:!carry ~event_description:ed ~knowledge:dataset.knowledge
         ~stream:dataset.stream ~from ~until:!q ()
     with
    | Error e ->
      Format.printf "[%s] engine error: %s@." (hms !q) e;
      carry := []
    | Ok result ->
      (* Report newly recognised activity instances. *)
      List.iter
        (fun indicator ->
          List.iter
            (fun ((fluent, _), _) ->
              let key = Rtec.Term.to_string fluent in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                Format.printf "[query %s] recognised %s@." (hms !q) key
              end)
            (Rtec.Engine.find_fluent result indicator))
        watched;
      (* FVPs still holding at the next window's start persist by
         inertia. *)
      let next_from = max lo (!q + step - window + 1) in
      carry :=
        List.filter_map
          (fun (fv, spans) -> if Rtec.Interval.mem next_from spans then Some fv else None)
          result);
    q := !q + step
  done;
  Format.printf "@.%d distinct activity instances recognised online.@."
    (Hashtbl.length seen)
