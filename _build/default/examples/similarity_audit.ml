(* Similarity-metric audit: recomputes every worked example of Section 4
   of the paper, live, against this implementation.

   Run with: dune exec examples/similarity_audit.exe *)

open Rtec

let t = Parser.parse_term

let () =
  Format.printf "=== Section 4 worked examples ===@.@.";

  (* Example 4.2: distance between ground expressions. *)
  let e1 = t "happensAt(entersArea(v42, a1), 23)" in
  let e2 = t "happensAt(inArea(v42, a1), 23)" in
  Format.printf "Example 4.2: d(e1, e2) = %.4f (paper: 0.25)@.@."
    (Similarity.Distance.ground e1 e2);

  (* Examples 4.4/4.6: cost matrix and set distance. *)
  let ea =
    [ t "happensAt(entersArea(v42, a1), 23)"; t "areaType(a1, fishing)";
      t "holdsAt(underway(v42) = true, 23)" ]
  in
  let eb = [ t "areaType(a1, fishing)"; t "happensAt(inArea(v42, a1), 23)" ] in
  let matrix =
    Similarity.Distance.cost_matrix Similarity.Distance.ground (Array.of_list ea)
      (Array.of_list eb)
  in
  Format.printf "Example 4.4: cost matrix (rows: Ea, columns: Eb)@.";
  Array.iter
    (fun row ->
      Array.iter (fun c -> Format.printf "  %5.2f" c) row;
      Format.printf "@.")
    matrix;
  let d = Similarity.Distance.ground_sets ea eb in
  Format.printf "Example 4.6: dE(Ea, Eb) = %.4f (paper: 0.4167), similarity %.4f@.@." d
    (1. -. d);

  (* Example 4.10: variable instances of rule (1). *)
  let rule_1 =
    List.hd
      (Parser.parse_clauses
         "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
          happensAt(entersArea(Vl, AreaID), T), areaType(AreaID, AreaType).")
  in
  let vi = Similarity.Var_instance.of_rule rule_1 in
  Format.printf "Example 4.10: variable instances in rule (1)@.";
  List.iter
    (fun v ->
      Format.printf "  vi(%s) = [%s]@." v
        (String.concat "; "
           (List.map
              (fun path ->
                "["
                ^ String.concat ", "
                    (List.map (fun (f, i) -> Printf.sprintf "(%s,%d)" f i) path)
                ^ "]")
              (Similarity.Var_instance.instances vi v))))
    [ "Vl"; "AreaType"; "AreaID"; "T" ];
  Format.printf "@.";

  (* Example 4.13: rule distances. *)
  let rule_6 =
    List.hd
      (Parser.parse_clauses
         "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
          happensAt(entersArea(Vl, Area), T), areaType(Area, AreaType).")
  in
  let rule_7 =
    List.hd
      (Parser.parse_clauses
         "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
          happensAt(entersArea(Vl, AreaID), T), areaType(AreaType, AreaID).")
  in
  Format.printf "Example 4.13: dr(rule 1, rule 6) = %.6f (paper: 0 - renaming)@."
    (Similarity.Distance.rule rule_1 rule_6);
  Format.printf
    "Example 4.13: dr(rule 1, rule 7) = %.6f@.  (per Definition 4.12: \
     (0.015625 + 0.0625 + 0.5) / 3 = 0.192708; the paper's printed result, \
     0.1667, does not match its own sum - see EXPERIMENTS.md)@.@."
    (Similarity.Distance.rule rule_1 rule_7);

  (* Definition 4.14 on a real event description. *)
  let gold = (Maritime.Gold.definition "loitering").rules in
  let confused =
    (Adg.Error_model.apply Adg.Error_model.Confuse_union
       (Maritime.Gold.definition "loitering"))
      .rules
  in
  Format.printf
    "Definition 4.14 on 'loitering' vs. its union/intersect-confused \
     variant: similarity %.4f@."
    (Similarity.Distance.similarity confused gold)
