(* Activity definition generation with a (simulated) LLM: the paper's
   pipeline end to end for one model. Shows the prompts of Section 3, the
   generated rules, the similarity metric of Section 4 and the minimal
   syntactic correction of Section 5.

   Run with: dune exec examples/definition_generation.exe [model]
   where model is one of GPT-4, GPT-4o, o1, Llama-3, Mistral, Gemma-2. *)

let head ?(lines = 8) text =
  let all = String.split_on_char '\n' text in
  let shown = List.filteri (fun i _ -> i < lines) all in
  String.concat "\n" shown
  ^ if List.length all > lines then "\n  [... truncated ...]" else ""

let () =
  let model = if Array.length Sys.argv > 1 then Sys.argv.(1) else "o1" in
  let scheme = Adg.Profiles.reported_scheme model in
  let profile =
    try Adg.Profiles.find ~model ~scheme
    with Not_found ->
      Printf.eprintf "unknown model %S\n" model;
      exit 2
  in
  Format.printf "=== Model: %s, prompting scheme: %s ===@.@." model
    (Adg.Prompt.scheme_name scheme);

  (* The session first teaches the backend the RTEC syntax (prompt R),
     the two fluent kinds (prompt F or F-star), the input vocabulary
     (prompt E) and the thresholds (prompt T). *)
  Format.printf "--- Prompt R (RTEC syntax), first lines ---@.%s@.@."
    (head (Adg.Prompt.rtec_syntax ()));
  Format.printf "--- Prompt E (input events and fluents), first lines ---@.%s@.@."
    (head (Adg.Prompt.events_and_fluents ()));

  let session = Adg.Session.run (Adg.Profiles.backend profile) in

  (* Inspect one generation round: trawling. *)
  let entry = Maritime.Gold.entry "trawling" in
  Format.printf "--- Prompt G for 'trawling' ---@.%s@.@."
    (Adg.Prompt.generation ~activity:entry.name ~description:entry.nl);
  (match
     List.find_opt
       (fun (d : Adg.Session.generated_definition) -> d.activity = "trawling")
       session.definitions
   with
  | Some d -> Format.printf "--- %s's reply ---@.%s@.@." model d.raw
  | None -> ());

  (* Similarity of every generated definition against the gold standard. *)
  Format.printf "--- Similarity vs. the hand-crafted definitions ---@.";
  let scores =
    List.map
      (fun (e : Maritime.Gold.entry) ->
        (e.name, Evaluation.Experiments.similarity_of_definition session e.name))
      Maritime.Gold.entries
  in
  List.iter (fun (name, s) -> Format.printf "  %-20s %.3f@." name s) scores;
  let avg = List.fold_left (fun a (_, s) -> a +. s) 0. scores /. 21. in
  Format.printf "  %-20s %.3f@.@." "average" avg;

  (* Minimal syntactic correction (the filled-symbol step). *)
  let corrected, report = Adg.Correction.correct session in
  Format.printf "--- Syntactic correction: %d renames ---@."
    (List.length report.changes);
  List.iter
    (fun (c : Adg.Correction.change) ->
      Format.printf "  in %-18s %s -> %s@." c.definition c.from_name c.to_name)
    report.changes;
  List.iter
    (fun (d, n) -> Format.printf "  unresolved in %-12s %s@." d n)
    report.unresolved;
  Format.printf "@.usable by the engine after correction: %b@."
    (Rtec.Check.usable ~vocabulary:Maritime.Vocabulary.check_vocabulary corrected)
