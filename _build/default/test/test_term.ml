open Rtec

let v x = Term.Var x
let a x = Term.Atom x
let f name args = Term.app name args

let term_testable = Alcotest.testable Term.pp Term.equal

let test_app () =
  Alcotest.check term_testable "no args gives atom" (a "foo") (f "foo" []);
  Alcotest.check term_testable "args give compound"
    (Term.Compound ("foo", [ v "X" ]))
    (f "foo" [ v "X" ])

let test_functor_arity () =
  Alcotest.(check (pair string int)) "compound" ("entersArea", 2)
    (Term.indicator (f "entersArea" [ v "Vl"; a "a1" ]));
  Alcotest.(check (pair string int)) "atom" ("fishing", 0) (Term.indicator (a "fishing"));
  Alcotest.(check string) "int functor" "#int" (Term.functor_of (Term.Int 3))

let test_ground_and_vars () =
  let t = f "happensAt" [ f "entersArea" [ v "Vl"; a "a1" ]; v "T" ] in
  Alcotest.(check bool) "not ground" false (Term.is_ground t);
  Alcotest.(check (list string)) "vars in order" [ "Vl"; "T" ] (Term.vars t);
  Alcotest.(check bool) "ground" true (Term.is_ground (f "areaType" [ a "a1"; a "fishing" ]))

let test_strip_not () =
  let atom = f "holdsAt" [ Term.eq (a "f") (a "v"); v "T" ] in
  Alcotest.(check bool) "positive" true (fst (Term.strip_not atom));
  Alcotest.(check bool) "single negation" false (fst (Term.strip_not (Term.neg atom)));
  Alcotest.(check bool) "double negation is positive" true
    (fst (Term.strip_not (Term.neg (Term.neg atom))));
  Alcotest.check term_testable "inner atom preserved" atom
    (snd (Term.strip_not (Term.neg atom)))

let test_as_fvp_as_list () =
  Alcotest.(check bool) "fvp decomposes" true
    (Term.as_fvp (Term.eq (a "f") (a "v")) = Some (a "f", a "v"));
  Alcotest.(check bool) "list decomposes" true
    (Term.as_list (Term.list_ [ v "I1"; v "I2" ]) = Some [ v "I1"; v "I2" ]);
  Alcotest.(check bool) "non-list" true (Term.as_list (a "x") = None)

let test_pp () =
  Alcotest.(check string) "infix =" "withinArea(Vl, AreaType) = true"
    (Term.to_string (Term.eq (f "withinArea" [ v "Vl"; v "AreaType" ]) (a "true")));
  Alcotest.(check string) "lists" "[I1, I2]" (Term.to_string (Term.list_ [ v "I1"; v "I2" ]));
  Alcotest.(check string) "nested infix parenthesised" "(Speed - 1.0) > Max"
    (Term.to_string
       (Term.Compound (">", [ Term.Compound ("-", [ v "Speed"; Term.Real 1. ]); v "Max" ])));
  Alcotest.(check string) "negation" "not happensAt(gap_start(Vl), T)"
    (Term.to_string (Term.neg (f "happensAt" [ f "gap_start" [ v "Vl" ]; v "T" ])))

(* --- substitutions and unification --- *)

let subst_of pairs =
  List.fold_left (fun s (x, t) -> Subst.bind x t s) Subst.empty pairs

let test_subst_apply () =
  let s = subst_of [ ("X", a "a1"); ("Y", v "Z"); ("Z", a "b") ] in
  Alcotest.check term_testable "direct" (a "a1") (Subst.apply s (v "X"));
  Alcotest.check term_testable "transitive" (a "b") (Subst.apply s (v "Y"));
  Alcotest.check term_testable "inside compound"
    (f "p" [ a "a1"; a "b" ])
    (Subst.apply s (f "p" [ v "X"; v "Y" ]))

let test_unify_basic () =
  let pat = f "entersArea" [ v "Vl"; v "Area" ] in
  let gd = f "entersArea" [ a "v42"; a "a1" ] in
  (match Unify.unify pat gd with
  | None -> Alcotest.fail "should unify"
  | Some s ->
    Alcotest.check term_testable "Vl bound" (a "v42") (Subst.apply s (v "Vl"));
    Alcotest.check term_testable "Area bound" (a "a1") (Subst.apply s (v "Area")));
  Alcotest.(check bool) "functor mismatch" false
    (Unify.matches (f "entersArea" [ v "X" ]) (f "leavesArea" [ a "v1" ]));
  Alcotest.(check bool) "arity mismatch" false
    (Unify.matches (f "p" [ v "X" ]) (f "p" [ a "a"; a "b" ]))

let test_unify_occurs_check () =
  Alcotest.(check bool) "occurs check" false
    (Unify.matches (v "X") (f "p" [ v "X" ]))

let test_unify_numeric () =
  Alcotest.(check bool) "int unifies with equal real" true
    (Unify.matches (Term.Int 3) (Term.Real 3.0));
  Alcotest.(check bool) "different numbers do not unify" false
    (Unify.matches (Term.Int 3) (Term.Real 3.5))

let test_unify_shared_variable () =
  (* p(X, X) must not match p(a, b). *)
  Alcotest.(check bool) "shared variable consistency" false
    (Unify.matches (f "p" [ v "X"; v "X" ]) (f "p" [ a "a"; a "b" ]));
  Alcotest.(check bool) "shared variable same value" true
    (Unify.matches (f "p" [ v "X"; v "X" ]) (f "p" [ a "a"; a "a" ]))

let test_rename_apart () =
  Alcotest.check term_testable "variables suffixed"
    (f "p" [ v "X_r1"; a "c" ])
    (Unify.rename_apart ~suffix:"r1" (f "p" [ v "X"; a "c" ]))

(* --- properties --- *)

let term_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [ map (fun i -> Term.Int i) (int_bound 50);
        oneofl [ Term.Atom "a"; Term.Atom "b"; Term.Atom "fishing" ];
        oneofl [ Term.Var "X"; Term.Var "Y"; Term.Var "Z" ] ]
  in
  let rec go depth =
    if depth = 0 then base
    else
      frequency
        [ (2, base);
          (1,
           map2 (fun name args -> Term.app name args)
             (oneofl [ "p"; "q"; "entersArea" ])
             (list_size (int_range 1 3) (go (depth - 1)))) ]
  in
  go 3

let arbitrary_term = QCheck.make ~print:Term.to_string term_gen

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let properties =
  [
    prop "unifier unifies" 500 (QCheck.pair arbitrary_term arbitrary_term) (fun (x, y) ->
        match Unify.unify x y with
        | None -> true
        | Some s -> Term.equal (Subst.apply s x) (Subst.apply s y));
    prop "unification is reflexive" 500 arbitrary_term (fun t -> Unify.matches t t);
    prop "unification is symmetric" 500 (QCheck.pair arbitrary_term arbitrary_term)
      (fun (x, y) -> Unify.matches x y = Unify.matches y x);
    prop "compare is a total order with equal" 500
      (QCheck.pair arbitrary_term arbitrary_term)
      (fun (x, y) -> Term.equal x y = (Term.compare x y = 0));
  ]

let suite =
  [
    Alcotest.test_case "app" `Quick test_app;
    Alcotest.test_case "functor and arity" `Quick test_functor_arity;
    Alcotest.test_case "groundness and variables" `Quick test_ground_and_vars;
    Alcotest.test_case "strip_not" `Quick test_strip_not;
    Alcotest.test_case "fvp and list views" `Quick test_as_fvp_as_list;
    Alcotest.test_case "printing" `Quick test_pp;
    Alcotest.test_case "substitution application" `Quick test_subst_apply;
    Alcotest.test_case "unification basics" `Quick test_unify_basic;
    Alcotest.test_case "occurs check" `Quick test_unify_occurs_check;
    Alcotest.test_case "numeric literals" `Quick test_unify_numeric;
    Alcotest.test_case "shared variables" `Quick test_unify_shared_variable;
    Alcotest.test_case "rename apart" `Quick test_rename_apart;
  ]
  @ properties
