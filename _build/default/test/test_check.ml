open Rtec

let ed_of source = [ Parser.parse_definition ~name:"test" source ]

let errors ?vocabulary ed =
  List.filter (fun d -> d.Check.severity = Check.Error) (Check.check ?vocabulary ed)

let warnings ?vocabulary ed =
  List.filter (fun d -> d.Check.severity = Check.Warning) (Check.check ?vocabulary ed)

let test_gold_is_well_formed () =
  let diags =
    errors ~vocabulary:Maritime.Vocabulary.check_vocabulary Maritime.Gold.event_description
  in
  List.iter (fun d -> Format.eprintf "%a@." Check.pp_diagnostic d) diags;
  Alcotest.(check int) "no errors in the gold event description" 0 (List.length diags);
  Alcotest.(check bool) "usable" true
    (Check.usable ~vocabulary:Maritime.Vocabulary.check_vocabulary
       Maritime.Gold.event_description)

let test_first_literal_discipline () =
  (* Definition 2.2: the first body literal of a simple rule must be a
     positive happensAt. *)
  let bad = ed_of "initiatedAt(f(V) = true, T) :- holdsAt(g(V) = true, T)." in
  Alcotest.(check bool) "holdsAt first is an error" true (errors bad <> []);
  let bad2 = ed_of "initiatedAt(f(V) = true, T) :- not happensAt(e(V), T)." in
  Alcotest.(check bool) "negative first literal is an error" true (errors bad2 <> []);
  let ok =
    ed_of "initiatedAt(f(V) = true, T) :- happensAt(e(V), T), not happensAt(g(V), T)."
  in
  Alcotest.(check int) "positive happensAt first is fine" 0 (List.length (errors ok))

let test_empty_body () =
  let bad = ed_of "initiatedAt(f(V) = true, T)." in
  Alcotest.(check bool) "empty body flagged" true (errors bad <> [])

let test_time_point_discipline () =
  let sketchy =
    ed_of
      "initiatedAt(f(V) = true, T) :- happensAt(e(V), T), holdsAt(g(V) = true, T2)."
  in
  Alcotest.(check bool) "different time-point warned" true (warnings sketchy <> [])

let test_mixed_kind () =
  let mixed =
    ed_of
      "initiatedAt(f(V) = true, T) :- happensAt(e(V), T).\n\
       holdsFor(f(V) = true, I) :- holdsFor(g(V) = true, I1), union_all([I1], I)."
  in
  Alcotest.(check bool) "mixed fluent kind is an error" true (errors mixed <> [])

let test_sd_first_literal () =
  let bad =
    ed_of "holdsFor(f(V) = true, I) :- holdsFor(f(V) = true, I1), union_all([I1], I)."
  in
  Alcotest.(check bool) "first literal must concern a different FVP" true (errors bad <> [])

let test_sd_dataflow () =
  let unbound_use =
    ed_of
      "holdsFor(f(V) = true, I) :- holdsFor(g(V) = true, I1), union_all([I1, I2], I)."
  in
  Alcotest.(check bool) "unbound interval variable" true (errors unbound_use <> []);
  let unproduced_head =
    ed_of "holdsFor(f(V) = true, I) :- holdsFor(g(V) = true, I1), union_all([I1], I2)."
  in
  Alcotest.(check bool) "head interval never produced" true (errors unproduced_head <> []);
  let double_bind =
    ed_of
      "holdsFor(f(V) = true, I) :- holdsFor(g(V) = true, I1), holdsFor(h(V) = true, I1), \
       union_all([I1], I)."
  in
  Alcotest.(check bool) "interval variable bound twice" true (errors double_bind <> []);
  let happens_in_sd =
    ed_of "holdsFor(f(V) = true, I) :- holdsFor(g(V) = true, I), happensAt(e(V), T)."
  in
  Alcotest.(check bool) "happensAt in holdsFor body" true (errors happens_in_sd <> [])

let test_vocabulary_checks () =
  let vocabulary =
    { Check.input_events = [ ("e", 1) ]; input_fluents = []; background = [ ("bg", 2) ] }
  in
  let undefined_event = ed_of "initiatedAt(f(V) = true, T) :- happensAt(zap(V), T)." in
  Alcotest.(check bool) "undefined event" true (errors ~vocabulary undefined_event <> []);
  let undefined_activity =
    ed_of
      "initiatedAt(f(V) = true, T) :- happensAt(e(V), T), holdsAt(ghost(V) = true, T)."
  in
  Alcotest.(check bool) "undefined activity (error category 3)" true
    (errors ~vocabulary undefined_activity <> []);
  let unknown_background =
    ed_of "initiatedAt(f(V) = true, T) :- happensAt(e(V), T), weird(V, X)."
  in
  Alcotest.(check bool) "unknown background predicate warned" true
    (warnings ~vocabulary unknown_background <> []);
  let defined_reference_ok =
    ed_of
      "initiatedAt(g(V) = true, T) :- happensAt(e(V), T).\n\
       initiatedAt(f(V) = true, T) :- happensAt(e(V), T), not holdsAt(g(V) = true, T)."
  in
  Alcotest.(check int) "defined fluents may be referenced" 0
    (List.length (errors ~vocabulary defined_reference_ok));
  (* A fluent referring to itself is a dependency cycle. *)
  let self_reference =
    ed_of
      "initiatedAt(f(V) = true, T) :- happensAt(e(V), T), not holdsAt(f(V) = true, T)."
  in
  Alcotest.(check bool) "self-reference is rejected as a cycle" true
    (errors ~vocabulary self_reference <> [])

let test_bad_head () =
  let bad = ed_of "frobnicate(f(V), T) :- happensAt(e(V), T)." in
  Alcotest.(check bool) "unknown head shape" true (errors bad <> [])

let test_dependency_analysis () =
  let deps = Dependency.analyse Maritime.Gold.event_description in
  (match Dependency.evaluation_order deps with
  | Error e -> Alcotest.failf "gold should stratify: %s" e
  | Ok order ->
    let pos name =
      let rec go i = function
        | [] -> Alcotest.failf "%s not in order" name
        | (f, _) :: rest -> if String.equal f name then i else go (i + 1) rest
      in
      go 0 order
    in
    Alcotest.(check bool) "movingSpeed before underWay" true
      (pos "movingSpeed" < pos "underWay");
    Alcotest.(check bool) "underWay before drifting" true (pos "underWay" < pos "drifting");
    Alcotest.(check bool) "stopped before anchoredOrMoored" true
      (pos "stopped" < pos "anchoredOrMoored");
    Alcotest.(check bool) "anchoredOrMoored before loitering" true
      (pos "anchoredOrMoored" < pos "loitering"));
  (match Dependency.info deps ("withinArea", 2) with
  | None -> Alcotest.fail "withinArea not analysed"
  | Some info ->
    Alcotest.(check bool) "withinArea is simple" true
      (info.fluent_class = Dependency.Simple));
  match Dependency.info deps ("underWay", 1) with
  | None -> Alcotest.fail "underWay not analysed"
  | Some info ->
    Alcotest.(check bool) "underWay is statically determined" true
      (info.fluent_class = Dependency.Statically_determined)

let test_external_indicators () =
  let deps = Dependency.analyse Maritime.Gold.event_description in
  let externals = Dependency.external_indicators deps in
  Alcotest.(check bool) "proximity is external" true (List.mem ("proximity", 2) externals);
  Alcotest.(check bool) "velocity event is external" true
    (List.mem ("velocity", 4) externals);
  Alcotest.(check bool) "trawling is not external" false
    (List.mem ("trawling", 1) externals)

let suite =
  [
    Alcotest.test_case "gold event description is well-formed" `Quick
      test_gold_is_well_formed;
    Alcotest.test_case "first-literal discipline (Def 2.2)" `Quick
      test_first_literal_discipline;
    Alcotest.test_case "empty bodies rejected" `Quick test_empty_body;
    Alcotest.test_case "time-point discipline warned" `Quick test_time_point_discipline;
    Alcotest.test_case "mixed fluent kinds rejected" `Quick test_mixed_kind;
    Alcotest.test_case "SD first literal (Def 2.4)" `Quick test_sd_first_literal;
    Alcotest.test_case "SD interval dataflow" `Quick test_sd_dataflow;
    Alcotest.test_case "vocabulary checks" `Quick test_vocabulary_checks;
    Alcotest.test_case "bad head shapes rejected" `Quick test_bad_head;
    Alcotest.test_case "dependency analysis of the gold hierarchy" `Quick
      test_dependency_analysis;
    Alcotest.test_case "external indicators" `Quick test_external_indicators;
  ]
