open Rtec

let term_testable = Alcotest.testable Term.pp Term.equal

let test_parse_atom_and_var () =
  Alcotest.check term_testable "atom" (Term.Atom "fishing") (Parser.parse_term "fishing");
  Alcotest.check term_testable "variable" (Term.Var "Vessel") (Parser.parse_term "Vessel");
  Alcotest.check term_testable "quoted atom" (Term.Atom "hello world")
    (Parser.parse_term "'hello world'")

let test_parse_numbers () =
  Alcotest.check term_testable "int" (Term.Int 42) (Parser.parse_term "42");
  Alcotest.check term_testable "real" (Term.Real 2.5) (Parser.parse_term "2.5");
  Alcotest.check term_testable "negative" (Term.Int (-7)) (Parser.parse_term "-7")

let test_parse_compound () =
  Alcotest.check term_testable "nested"
    (Term.app "happensAt" [ Term.app "entersArea" [ Term.Var "Vl"; Term.Var "A" ]; Term.Var "T" ])
    (Parser.parse_term "happensAt(entersArea(Vl, A), T)")

let test_parse_fvp () =
  Alcotest.check term_testable "equality is infix"
    (Term.eq (Term.app "withinArea" [ Term.Var "Vl"; Term.Atom "fishing" ]) (Term.Atom "true"))
    (Parser.parse_term "withinArea(Vl, fishing) = true")

let test_parse_comparison_and_arith () =
  Alcotest.check term_testable "comparison"
    (Term.Compound (">", [ Term.Var "Speed"; Term.Var "Max" ]))
    (Parser.parse_term "Speed > Max");
  Alcotest.check term_testable "arithmetic is left-associative"
    (Term.Compound
       (">",
        [ Term.Compound ("-", [ Term.Var "CoG"; Term.Var "Heading" ]); Term.Var "Thr" ]))
    (Parser.parse_term "CoG - Heading > Thr");
  Alcotest.check term_testable "precedence * over +"
    (Term.Compound
       ("+", [ Term.Var "A"; Term.Compound ("*", [ Term.Var "B"; Term.Var "C" ]) ]))
    (Parser.parse_term "A + B * C")

let test_parse_list () =
  Alcotest.check term_testable "interval list"
    (Term.list_ [ Term.Var "I1"; Term.Var "I2" ])
    (Parser.parse_term "[I1, I2]");
  Alcotest.check term_testable "empty list" (Term.list_ []) (Parser.parse_term "[]")

let test_parse_clause () =
  let rules =
    Parser.parse_clauses
      "initiatedAt(withinArea(Vl, AreaType) = true, T) :- \
       happensAt(entersArea(Vl, Area), T), areaType(Area, AreaType)."
  in
  Alcotest.(check int) "one rule" 1 (List.length rules);
  let r = List.hd rules in
  Alcotest.(check int) "two body literals" 2 (List.length r.Ast.body)

let test_parse_fact () =
  let rules = Parser.parse_clauses "areaType(a1, fishing)." in
  Alcotest.(check int) "fact has empty body" 0 (List.length (List.hd rules).Ast.body)

let test_parse_negation () =
  let rules =
    Parser.parse_clauses
      "initiatedAt(gap(Vl) = farFromPorts, T) :- happensAt(gap_start(Vl), T), \
       not holdsAt(withinArea(Vl, nearPorts) = true, T)."
  in
  let r = List.hd rules in
  let positive, _ = Term.strip_not (List.nth r.Ast.body 1) in
  Alcotest.(check bool) "second literal is negative" false positive

let test_parse_comments () =
  let rules =
    Parser.parse_clauses
      "% line comment\n/* block\ncomment */\nareaType(a1, fishing). % trailing"
  in
  Alcotest.(check int) "comments ignored" 1 (List.length rules)

let test_parse_errors () =
  let fails input =
    match Parser.parse_clauses_result input with
    | Ok _ -> Alcotest.failf "expected parse failure on %S" input
    | Error _ -> ()
  in
  fails "initiatedAt(f = v, T) :- happensAt(e, T)";
  (* missing final period *)
  fails "initiatedAt(f = v, T) :- .";
  fails "foo(";
  fails "foo)).";
  fails "@@@."

let test_error_line_numbers () =
  match Parser.parse_clauses_result "areaType(a1, fishing).\nbroken(" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions line 2: %s" msg)
      true
      (String.length msg >= 6 && String.sub msg 0 6 = "line 2")

let test_roundtrip_gold () =
  (* Printing and re-parsing every gold rule is the identity. *)
  List.iter
    (fun (e : Maritime.Gold.entry) ->
      let d = Rtec.Parser.parse_definition ~name:e.name e.source in
      let printed = Printer.definition_to_string d in
      let reparsed = Parser.parse_clauses printed in
      Alcotest.(check int)
        (Printf.sprintf "%s rule count preserved" e.name)
        (List.length d.rules) (List.length reparsed);
      List.iter2
        (fun (r1 : Ast.rule) (r2 : Ast.rule) ->
          Alcotest.check term_testable "head round-trips" r1.head r2.head;
          List.iter2 (Alcotest.check term_testable "literal round-trips") r1.body r2.body)
        d.rules reparsed)
    Maritime.Gold.entries

let test_ast_kinds () =
  let d = Maritime.Gold.definition "withinArea" in
  (match Ast.kind_of_rule (List.hd d.rules) with
  | Some (Ast.Initiated { time = Term.Var "T"; _ }) -> ()
  | _ -> Alcotest.fail "expected initiatedAt kind");
  let u = Maritime.Gold.definition "underWay" in
  match Ast.kind_of_rule (List.hd u.rules) with
  | Some (Ast.Holds_for { interval = Term.Var "I"; _ }) -> ()
  | _ -> Alcotest.fail "expected holdsFor kind"

let test_ast_merge () =
  let a = [ { Ast.name = "x"; rules = Parser.parse_clauses "p(a)." } ] in
  let b =
    [ { Ast.name = "x"; rules = Parser.parse_clauses "p(b)." };
      { Ast.name = "y"; rules = Parser.parse_clauses "q(a)." } ]
  in
  let merged = Ast.merge a b in
  Alcotest.(check int) "two definitions" 2 (List.length merged);
  match Ast.definition merged "x" with
  | Some d -> Alcotest.(check int) "rules merged" 2 (List.length d.rules)
  | None -> Alcotest.fail "definition x lost"

(* Printing then re-parsing a random term is the identity. *)
let term_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [ map (fun i -> Term.Int i) (int_bound 1000);
        map (fun f -> Term.Real (Float.of_int f /. 4.)) (int_bound 1000);
        oneofl [ Term.Atom "a"; Term.Atom "fishing"; Term.Atom "gap_start" ];
        oneofl [ Term.Var "X"; Term.Var "Speed"; Term.Var "T" ] ]
  in
  let rec go depth =
    if depth = 0 then base
    else
      frequency
        [ (3, base);
          (2,
           map2 Term.app
             (oneofl [ "p"; "happensAt"; "entersArea" ])
             (list_size (int_range 1 3) (go (depth - 1))));
          (1, map2 Term.eq (go (depth - 1)) (go (depth - 1)));
          (1, map (fun ts -> Term.list_ ts) (list_size (int_bound 3) (go (depth - 1))));
          (1, map Term.neg (go (depth - 1))) ]
  in
  go 3

let prop_print_parse_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"print/parse round-trip on random terms" ~count:500
       (QCheck.make ~print:Term.to_string term_gen)
       (fun t -> Term.equal t (Parser.parse_term (Term.to_string t))))

let suite =
  [
    prop_print_parse_roundtrip;
    Alcotest.test_case "atoms and variables" `Quick test_parse_atom_and_var;
    Alcotest.test_case "numbers" `Quick test_parse_numbers;
    Alcotest.test_case "compound terms" `Quick test_parse_compound;
    Alcotest.test_case "fluent-value pairs" `Quick test_parse_fvp;
    Alcotest.test_case "comparisons and arithmetic" `Quick test_parse_comparison_and_arith;
    Alcotest.test_case "lists" `Quick test_parse_list;
    Alcotest.test_case "clauses" `Quick test_parse_clause;
    Alcotest.test_case "facts" `Quick test_parse_fact;
    Alcotest.test_case "negation-by-failure" `Quick test_parse_negation;
    Alcotest.test_case "comments" `Quick test_parse_comments;
    Alcotest.test_case "malformed input is rejected" `Quick test_parse_errors;
    Alcotest.test_case "errors carry line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "gold event description round-trips" `Quick test_roundtrip_gold;
    Alcotest.test_case "rule kinds" `Quick test_ast_kinds;
    Alcotest.test_case "event description merge" `Quick test_ast_merge;
  ]
