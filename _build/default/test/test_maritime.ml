open Rtec

let small_config = { Maritime.Dataset.seed = 7; replicas = 1; nominal = 1 }
let dataset = lazy (Maritime.Dataset.generate ~config:small_config ())

let test_vocabulary_consistency () =
  Alcotest.(check bool) "threshold lookup" true
    (Maritime.Vocabulary.threshold_value "hcNearCoastMax" = 5.0);
  Alcotest.check_raises "unknown threshold" Not_found (fun () ->
      ignore (Maritime.Vocabulary.threshold_value "nope"));
  (* every threshold id is a known name *)
  List.iter
    (fun (t : Maritime.Vocabulary.threshold) ->
      Alcotest.(check bool) (t.id ^ " is known") true
        (List.mem t.id Maritime.Vocabulary.known_names))
    Maritime.Vocabulary.thresholds

let test_gold_entries () =
  Alcotest.(check int) "25 definitions" 25 (List.length Maritime.Gold.entries);
  Alcotest.(check int) "8 reported activities" 8 (List.length Maritime.Gold.reported);
  Alcotest.(check (list string)) "figure order"
    [ "h"; "aM"; "tr"; "tu"; "p"; "l"; "s"; "d" ]
    (List.map
       (fun (e : Maritime.Gold.entry) -> Option.get e.code)
       Maritime.Gold.reported);
  (* Each definition's head fluent carries the entry name. *)
  List.iter
    (fun (e : Maritime.Gold.entry) ->
      let d = Maritime.Gold.definition e.name in
      match Ast.head_indicator (List.hd d.rules) with
      | Some (f, _) -> Alcotest.(check string) "head matches label" e.name f
      | None -> Alcotest.failf "no head indicator for %s" e.name)
    Maritime.Gold.entries

let test_geography () =
  let geo = Maritime.Geography.default in
  let fishing =
    List.find (fun (a : Maritime.Geography.area) -> a.id = "fish1") geo.areas
  in
  Alcotest.(check bool) "inside rect" true
    (Maritime.Geography.contains fishing ~x:40_000. ~y:40_000.);
  Alcotest.(check bool) "outside rect" false
    (Maritime.Geography.contains fishing ~x:20_000. ~y:40_000.);
  let anchorage =
    List.find (fun (a : Maritime.Geography.area) -> a.id = "anch1") geo.areas
  in
  Alcotest.(check bool) "inside circle" true
    (Maritime.Geography.contains anchorage ~x:12_000. ~y:28_100.);
  Alcotest.(check bool) "circle boundary excluded" false
    (Maritime.Geography.contains anchorage ~x:12_000. ~y:31_000.);
  Alcotest.(check int) "area type facts cover all areas"
    (List.length geo.areas)
    (List.length (Maritime.Geography.area_type_facts geo))

let test_preprocessing_events () =
  let geo = Maritime.Geography.default in
  let msg t speed x y =
    { Maritime.Ais.t; vessel = "v"; x; y; speed; heading = 0.; cog = 0. }
  in
  (* Stop, then slow motion, then a gap. *)
  let messages =
    [ msg 0 0.1 50_000. 50_000.; msg 60 0.1 50_000. 50_000.; msg 120 2.0 50_000. 50_000.;
      msg 180 8.0 50_000. 50_000.; msg 5000 8.0 50_000. 50_000. ]
  in
  let stream = Maritime.Ais.preprocess ~geography:geo messages in
  let count name arity =
    List.length (Stream.events_in stream ~functor_:(name, arity) ~from:0 ~until:10_000)
  in
  Alcotest.(check int) "velocity per message" 5 (count "velocity" 4);
  Alcotest.(check int) "initial stop_start" 1 (count "stop_start" 1);
  Alcotest.(check int) "stop_end on speed-up" 1 (count "stop_end" 1);
  Alcotest.(check int) "slow_motion episodes" 1 (count "slow_motion_start" 1);
  Alcotest.(check int) "slow_motion ends" 1 (count "slow_motion_end" 1);
  (* one mid-track silence gap + the end-of-coverage gap *)
  Alcotest.(check int) "gap starts" 2 (count "gap_start" 1);
  Alcotest.(check int) "gap ends" 1 (count "gap_end" 1);
  Alcotest.(check bool) "speed jump starts change_in_speed" true
    (count "change_in_speed_start" 1 >= 1)

let test_preprocessing_areas () =
  let geo = Maritime.Geography.default in
  let msg t x = { Maritime.Ais.t; vessel = "v"; x; y = 40_000.; speed = 8.0; heading = 0.; cog = 0. } in
  (* Crosses into fish1 (x in [30k, 50k]) and out again. *)
  let messages = [ msg 0 29_000.; msg 60 31_000.; msg 120 49_000.; msg 180 51_000. ] in
  let stream = Maritime.Ais.preprocess ~geography:geo messages in
  let events name = Stream.events_in stream ~functor_:(name, 2) ~from:0 ~until:10_000 in
  Alcotest.(check int) "one entersArea" 1 (List.length (events "entersArea"));
  Alcotest.(check int) "one leavesArea" 1 (List.length (events "leavesArea"))

let test_preprocessing_heading () =
  let geo = Maritime.Geography.default in
  let msg t heading =
    { Maritime.Ais.t; vessel = "v"; x = 50_000.; y = 55_000.; speed = 8.0; heading; cog = heading }
  in
  let messages = [ msg 0 10.; msg 60 12.; msg 120 50.; msg 180 355. ] in
  let stream = Maritime.Ais.preprocess ~geography:geo messages in
  (* 12 -> 50 jumps 38 degrees; 50 -> 355 wraps to 55 degrees. *)
  Alcotest.(check int) "heading changes (with wrap-around)" 2
    (List.length (Stream.events_in stream ~functor_:("change_in_heading", 1) ~from:0 ~until:10_000))

let test_proximity_symmetric () =
  let geo = Maritime.Geography.default in
  let msg v t x = { Maritime.Ais.t; vessel = v; x; y = 40_000.; speed = 3.0; heading = 0.; cog = 0. } in
  let messages =
    [ msg "a" 0 50_000.; msg "b" 0 50_100.; msg "a" 60 50_000.; msg "b" 60 50_100.;
      msg "a" 120 50_000.; msg "b" 120 58_000. ]
  in
  let stream = Maritime.Ais.preprocess ~geography:geo messages in
  let fluents = Stream.input_fluents stream in
  Alcotest.(check int) "both argument orders" 2 (List.length fluents);
  let spans_of a b =
    List.find_map
      (fun ((f, _), spans) ->
        if Term.equal f (Term.app "proximity" [ Term.Atom a; Term.Atom b ]) then Some spans
        else None)
      fluents
  in
  match (spans_of "a" "b", spans_of "b" "a") with
  | Some s1, Some s2 ->
    Alcotest.(check bool) "identical spans" true (Interval.equal s1 s2);
    Alcotest.(check bool) "covers the close samples" true (Interval.mem 60 s1);
    Alcotest.(check bool) "not the far sample" false (Interval.mem 125 s1)
  | _ -> Alcotest.fail "proximity fluents missing"

let test_dataset_generation () =
  let data = Lazy.force dataset in
  Alcotest.(check bool) "has vessels" true (List.length data.vessels > 10);
  Alcotest.(check bool) "has messages" true (List.length data.messages > 1000);
  Alcotest.(check bool) "stream non-empty" true (Stream.size data.stream > 1000);
  Alcotest.(check bool) "knowledge populated" true (Knowledge.size data.knowledge > 20);
  (* Deterministic: same seed, same dataset. *)
  let again = Maritime.Dataset.generate ~config:small_config () in
  Alcotest.(check int) "deterministic size" (Stream.size data.stream)
    (Stream.size again.stream)

let detect ed =
  let data = Lazy.force dataset in
  match
    Window.run ~window:3600 ~step:1800 ~event_description:ed ~knowledge:data.knowledge
      ~stream:data.stream ()
  with
  | Ok (result, _) -> result
  | Error e -> Alcotest.failf "recognition failed: %s" e

let gold_result = lazy (detect Maritime.Gold.event_description)

let total_duration result indicator =
  List.fold_left
    (fun acc (_, spans) -> acc + Interval.duration (Interval.clamp 0 1_000_000 spans))
    0
    (Engine.find_fluent result indicator)

let test_recognition_trawling () =
  let result = Lazy.force gold_result in
  let d = total_duration result ("trawling", 1) in
  (* One trawler towing for 3 hours. *)
  Alcotest.(check bool) (Printf.sprintf "trawling ~3h (got %d)" d) true
    (d > 10_000 && d < 11_500)

let test_recognition_anchored_moored () =
  let result = Lazy.force gold_result in
  let d = total_duration result ("anchoredOrMoored", 1) in
  (* 6h anchored + 5h moored. *)
  Alcotest.(check bool) (Printf.sprintf "anchoredOrMoored ~11h (got %d)" d) true
    (d > 38_000 && d < 41_500)

let test_recognition_high_speed () =
  let result = Lazy.force gold_result in
  let d = total_duration result ("highSpeedNearCoast", 1) in
  Alcotest.(check bool) (Printf.sprintf "high speed near coast ~1h (got %d)" d) true
    (d > 3_000 && d < 6_500)

let test_recognition_pairs () =
  let result = Lazy.force gold_result in
  let tugging = Engine.find_fluent result ("tugging", 2) in
  Alcotest.(check int) "tugging holds in both orders" 2 (List.length tugging);
  let boarding = Engine.find_fluent result ("pilotBoarding", 2) in
  (* Directional: the pilot vessel must be the first argument. *)
  Alcotest.(check int) "one pilot boarding instance" 1 (List.length boarding)

let test_recognition_sar_and_drift () =
  let result = Lazy.force gold_result in
  let sar = total_duration result ("searchAndRescue", 1) in
  Alcotest.(check bool) (Printf.sprintf "search-and-rescue ~4h (got %d)" sar) true
    (sar > 12_000 && sar < 15_500);
  let drift = total_duration result ("drifting", 1) in
  Alcotest.(check bool) (Printf.sprintf "drifting ~3h (got %d)" drift) true
    (drift > 10_000 && drift < 11_500)

let test_recognition_illegal_fishing_and_rendezvous () =
  let result = Lazy.force gold_result in
  let illegal = total_duration result ("illegalFishing", 1) in
  (* One poacher turning at fishing speed inside the Natura area for 2h. *)
  Alcotest.(check bool) (Printf.sprintf "illegal fishing ~2h (got %d)" illegal) true
    (illegal > 6_500 && illegal < 8_000);
  (* The legal trawler in the fishing area must not count as illegal. *)
  let poacher_only =
    List.for_all
      (fun ((f, _), _) ->
        match Term.args f with
        | [ Term.Atom id ] -> String.length id >= 7 && String.sub id 0 7 = "poacher"
        | _ -> false)
      (Engine.find_fluent result ("illegalFishing", 1))
  in
  Alcotest.(check bool) "only the poacher fishes illegally" true poacher_only;
  let rdv = Engine.find_fluent result ("rendezVous", 2) in
  let transfer_pair =
    List.exists
      (fun ((f, _), spans) ->
        match Term.args f with
        | [ Term.Atom a; Term.Atom b ] ->
          String.length a >= 5 && String.sub a 0 5 = "giver"
          && String.length b >= 5 && String.sub b 0 5 = "taker"
          && Interval.duration (Interval.clamp 0 1_000_000 spans) > 9_000
        | _ -> false)
      rdv
  in
  Alcotest.(check bool) "the transfer pair is in rendezVous for ~3h" true transfer_pair

let test_recognition_gap () =
  let result = Lazy.force gold_result in
  let entries = Engine.find_fluent result ("gap", 1) in
  let gapper_far =
    List.exists
      (fun ((f, v), _) ->
        Term.functor_of f = "gap"
        && (match Term.args f with
           | [ Term.Atom id ] -> String.length id >= 6 && String.sub id 0 6 = "gapper"
           | _ -> false)
        && Term.equal v (Term.Atom "farFromPorts"))
      entries
  in
  Alcotest.(check bool) "gapper has farFromPorts gaps" true gapper_far

let suite =
  [
    Alcotest.test_case "vocabulary consistency" `Quick test_vocabulary_consistency;
    Alcotest.test_case "gold entries" `Quick test_gold_entries;
    Alcotest.test_case "geography membership" `Quick test_geography;
    Alcotest.test_case "preprocessing: kinematic events" `Quick test_preprocessing_events;
    Alcotest.test_case "preprocessing: area transitions" `Quick test_preprocessing_areas;
    Alcotest.test_case "preprocessing: heading changes" `Quick test_preprocessing_heading;
    Alcotest.test_case "proximity is symmetric" `Quick test_proximity_symmetric;
    Alcotest.test_case "dataset generation is deterministic" `Quick test_dataset_generation;
    Alcotest.test_case "recognition: trawling" `Quick test_recognition_trawling;
    Alcotest.test_case "recognition: anchored or moored" `Quick
      test_recognition_anchored_moored;
    Alcotest.test_case "recognition: high speed near coast" `Quick
      test_recognition_high_speed;
    Alcotest.test_case "recognition: vessel pairs" `Quick test_recognition_pairs;
    Alcotest.test_case "recognition: SAR and drifting" `Quick test_recognition_sar_and_drift;
    Alcotest.test_case "recognition: illegal fishing and ship-to-ship transfer" `Quick
      test_recognition_illegal_fishing_and_rendezvous;
    Alcotest.test_case "recognition: communication gaps" `Quick test_recognition_gap;
  ]
