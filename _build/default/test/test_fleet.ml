open Rtec

let domain = Fleet.domain

let test_domain_well_formed () =
  let ed = Domain.event_description domain in
  let diags =
    List.filter
      (fun d -> d.Check.severity = Check.Error)
      (Check.check ~vocabulary:(Domain.check_vocabulary domain) ed)
  in
  List.iter (fun d -> Format.eprintf "%a@." Check.pp_diagnostic d) diags;
  Alcotest.(check int) "no errors in the fleet gold standard" 0 (List.length diags);
  Alcotest.(check int) "ten definitions" 10 (List.length domain.entries);
  Alcotest.(check int) "six reported activities" 6 (List.length (Domain.reported domain))

let test_hierarchy () =
  let deps = Dependency.analyse (Domain.event_description domain) in
  match Dependency.evaluation_order deps with
  | Error e -> Alcotest.failf "fleet hierarchy should stratify: %s" e
  | Ok order ->
    let pos name =
      let rec go i = function
        | [] -> Alcotest.failf "%s missing" name
        | (f, _) :: rest -> if String.equal f name then i else go (i + 1) rest
      in
      go 0 order
    in
    Alcotest.(check bool) "punctuality before drivingQuality" true
      (pos "punctuality" < pos "drivingQuality");
    Alcotest.(check bool) "speeding before recklessDriving" true
      (pos "speeding" < pos "recklessDriving")

let recognition =
  lazy
    (let stream, knowledge = Fleet.generate () in
     match
       Window.run ~window:3600 ~step:1800
         ~event_description:(Domain.event_description domain) ~knowledge ~stream ()
     with
     | Ok (result, _) -> result
     | Error e -> Alcotest.failf "fleet recognition failed: %s" e)

let total indicator =
  List.fold_left
    (fun acc (_, spans) -> acc + Interval.duration (Interval.clamp 0 1_000_000 spans))
    0
    (Engine.find_fluent (Lazy.force recognition) indicator)

let test_recognition_personas () =
  (* Aggressive buses (1 and 4) speed and drive recklessly; degraded buses
     (2 and 5) are non-punctual, crowded, hot and noisy. *)
  Alcotest.(check bool) "speeding occurs" true (total ("speeding", 1) > 0);
  Alcotest.(check bool) "reckless driving occurs" true (total ("recklessDriving", 1) > 0);
  Alcotest.(check bool) "passenger comfort reduces" true
    (total ("passengerComfort", 1) > 0);
  Alcotest.(check bool) "passenger safety reduces" true (total ("passengerSafety", 1) > 0);
  Alcotest.(check bool) "driving quality assessed" true (total ("drivingQuality", 1) > 0);
  (* The punctual persona yields high driving quality for bus0/bus3. *)
  let high =
    Engine.find_fluent (Lazy.force recognition) ("drivingQuality", 1)
    |> List.filter (fun ((f, v), _) ->
           Term.equal v (Term.Atom "high")
           &&
           match Term.args f with
           | [ Term.Atom id ] -> id = "bus0" || id = "bus3"
           | _ -> false)
  in
  Alcotest.(check bool) "good buses achieve high driving quality" true (high <> [])

let test_prompts_customised () =
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  (* Prompt R is domain independent and reused verbatim. *)
  Alcotest.(check string) "prompt R reused as-is" (Adg.Prompt.rtec_syntax ())
    (Adg.Prompt.rtec_syntax ());
  let preamble = Adg.Prompt.preamble ~domain Adg.Prompt.Chain_of_thought in
  Alcotest.(check int) "four preamble prompts" 4 (List.length preamble);
  let e_prompt = List.nth preamble 2 in
  Alcotest.(check bool) "prompt E lists fleet events" true
    (contains ~needle:"stop_enter" e_prompt && contains ~needle:"sharp_turn" e_prompt);
  Alcotest.(check bool) "prompt E has no maritime events" false
    (contains ~needle:"entersArea" e_prompt);
  let t_prompt = List.nth preamble 3 in
  Alcotest.(check bool) "prompt T lists fleet thresholds" true
    (contains ~needle:"speedLimit" t_prompt);
  let f_prompt = List.nth preamble 1 in
  Alcotest.(check bool) "prompt F rebuilt from fleet examples" true
    (contains ~needle:"punctuality" f_prompt)

let test_generation_pipeline () =
  let profile = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot in
  let session = Adg.Session.run ~domain (Adg.Profiles.backend ~domain profile) in
  Alcotest.(check int) "one definition per fleet entry" 10
    (List.length session.definitions);
  Alcotest.(check int) "everything parses" 0
    (List.length (Adg.Session.parse_failures session));
  let corrected, _ = Adg.Correction.correct ~domain session in
  Alcotest.(check bool) "corrected fleet description is usable" true
    (Check.usable ~vocabulary:(Domain.check_vocabulary domain) corrected)

let test_generation_determinism () =
  let profile = Adg.Profiles.find ~model:"Gemma-2" ~scheme:Adg.Prompt.Chain_of_thought in
  let run () =
    let session = Adg.Session.run ~domain (Adg.Profiles.backend ~domain profile) in
    List.map (fun (d : Adg.Session.generated_definition) -> d.raw) session.definitions
  in
  Alcotest.(check bool) "same output twice" true (run () = run ())

let suite =
  [
    Alcotest.test_case "fleet gold standard is well-formed" `Quick test_domain_well_formed;
    Alcotest.test_case "fleet hierarchy stratifies" `Quick test_hierarchy;
    Alcotest.test_case "recognition matches the personas" `Quick test_recognition_personas;
    Alcotest.test_case "prompts are customised, prompt R reused" `Quick
      test_prompts_customised;
    Alcotest.test_case "generation pipeline works on the fleet domain" `Quick
      test_generation_pipeline;
    Alcotest.test_case "fleet generation is deterministic" `Quick
      test_generation_determinism;
  ]
