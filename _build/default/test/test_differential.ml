(* Differential testing: the engine against independent, brute-force
   oracles on randomly generated inputs, plus robustness fuzzing. *)

open Rtec

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* --- oracle 1: single boolean fluent under inertia --- *)

(* holdsAt(f=true, t) iff some initiation happened strictly before t and no
   termination happened strictly in between: initiatedAt(F, Ts) yields
   holdsAt(F, Ts+1) even when terminatedAt(F, Ts) also fires. This is the
   canonical Event Calculus semantics, computed pointwise. *)
let inertia_oracle ~starts ~stops t =
  List.exists
    (fun ts ->
      ts < t && not (List.exists (fun te -> ts < te && te < t) stops))
    starts

let times_gen = QCheck.Gen.(list_size (int_bound 12) (int_bound 50))

let inertia_case =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "starts=[%s] stops=[%s]"
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))
    QCheck.Gen.(pair times_gen times_gen)

let run_single_fluent ~starts ~stops =
  let ed =
    [ Parser.parse_definition ~name:"f"
        "initiatedAt(f(x) = true, T) :- happensAt(a(x), T).\n\
         terminatedAt(f(x) = true, T) :- happensAt(b(x), T)." ]
  in
  let events =
    List.map (fun t -> { Stream.time = t; term = Parser.parse_term "a(x)" }) starts
    @ List.map (fun t -> { Stream.time = t; term = Parser.parse_term "b(x)" }) stops
  in
  let stream = Stream.make events in
  match
    Engine.run ~event_description:ed ~knowledge:Knowledge.empty ~stream ~from:0 ~until:60 ()
  with
  | Ok result -> result
  | Error e -> failwith e

let prop_inertia =
  prop "engine matches the pointwise inertia oracle" 300 inertia_case
    (fun (starts, stops) ->
      let result = run_single_fluent ~starts ~stops in
      let fvp = (Parser.parse_term "f(x)", Term.Atom "true") in
      List.for_all
        (fun t -> Engine.holds_at result fvp t = inertia_oracle ~starts ~stops t)
        (List.init 62 (fun i -> i)))

(* --- oracle 2: multi-valued fluent, last setter wins --- *)

let setter_oracle assignments value t =
  (* The value set by the latest assignment strictly before t. *)
  let before = List.filter (fun (ts, _) -> ts < t) assignments in
  match List.sort (fun (a, _) (b, _) -> Int.compare b a) before with
  | (_, v) :: _ -> v = value
  | [] -> false

let setter_case =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (t, v) -> Printf.sprintf "%d:%s" t v) l))
    QCheck.Gen.(
      list_size (int_bound 12) (pair (int_bound 50) (oneofl [ "red"; "green"; "blue" ]))
      >|= fun l ->
      (* distinct time-points: simultaneous assignments are ambiguous *)
      let seen = Hashtbl.create 8 in
      List.filter
        (fun (t, _) ->
          if Hashtbl.mem seen t then false
          else begin
            Hashtbl.add seen t ();
            true
          end)
        l)

let run_setters assignments =
  let ed =
    [ Parser.parse_definition ~name:"light"
        "initiatedAt(light(x) = red, T) :- happensAt(to_red(x), T).\n\
         initiatedAt(light(x) = green, T) :- happensAt(to_green(x), T).\n\
         initiatedAt(light(x) = blue, T) :- happensAt(to_blue(x), T)." ]
  in
  let events =
    List.map
      (fun (t, v) -> { Stream.time = t; term = Parser.parse_term ("to_" ^ v ^ "(x)") })
      assignments
  in
  match
    Engine.run ~event_description:ed ~knowledge:Knowledge.empty
      ~stream:(Stream.make events) ~from:0 ~until:60 ()
  with
  | Ok result -> result
  | Error e -> failwith e

let prop_setters =
  prop "multi-valued fluents: last setter wins" 300 setter_case (fun assignments ->
      let result = run_setters assignments in
      List.for_all
        (fun t ->
          List.for_all
            (fun v ->
              let fvp = (Parser.parse_term "light(x)", Term.Atom v) in
              Engine.holds_at result fvp t = setter_oracle assignments v t)
            [ "red"; "green"; "blue" ])
        (List.init 62 (fun i -> i)))

(* --- oracle 3: windowed run equals a single window --- *)

let window_case =
  QCheck.make
    ~print:(fun (w, s, starts, stops) ->
      Printf.sprintf "window=%d step=%d starts=[%s] stops=[%s]" w s
        (String.concat ";" (List.map string_of_int starts))
        (String.concat ";" (List.map string_of_int stops)))
    QCheck.Gen.(
      int_range 5 40 >>= fun w ->
      int_range 1 w >>= fun s ->
      pair times_gen times_gen >|= fun (a, b) -> (w, s, a, b))

let prop_windowing =
  prop "sliding windows agree with a single window" 200 window_case
    (fun (window, step, starts, stops) ->
      QCheck.assume (starts <> [] || stops <> []);
      let ed =
        [ Parser.parse_definition ~name:"f"
            "initiatedAt(f(x) = true, T) :- happensAt(a(x), T).\n\
             terminatedAt(f(x) = true, T) :- happensAt(b(x), T)." ]
      in
      let events =
        List.map (fun t -> { Stream.time = t; term = Parser.parse_term "a(x)" }) starts
        @ List.map (fun t -> { Stream.time = t; term = Parser.parse_term "b(x)" }) stops
      in
      let stream = Stream.make events in
      match
        ( Window.run ~window ~step ~event_description:ed ~knowledge:Knowledge.empty ~stream (),
          Window.run ~event_description:ed ~knowledge:Knowledge.empty ~stream () )
      with
      | Ok (windowed, _), Ok (single, _) ->
        let fvp = (Parser.parse_term "f(x)", Term.Atom "true") in
        let _, hi = Stream.extent stream in
        List.for_all
          (fun t ->
            Interval.mem t (Engine.intervals windowed fvp)
            = Interval.mem t (Engine.intervals single fvp))
          (List.init (hi + 1) (fun i -> i))
      | _ -> false)

(* --- oracle 4: incremental windowed recognition over the maritime gold
   standard is bit-identical to a from-scratch single-pass evaluation ---

   This is the differential gate for the incremental window layer: the
   delta evaluation (step < window), the plain sliding case (step =
   window), and the carried grounding universe must reproduce exactly the
   FVPs and maximal intervals of one [Engine.run] over the whole extent,
   modulo the final horizon truncation. *)

let maritime_dataset =
  lazy
    (Maritime.Dataset.generate
       ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 1 } ())

let normalised lo hi result =
  List.sort compare
    (List.filter_map
       (fun ((f, v), spans) ->
         let spans = Interval.clamp lo (hi + 2) spans in
         if Interval.is_empty spans then None
         else Some ((Term.to_string f, Term.to_string v), Interval.to_list spans))
       result)

let test_maritime_incremental_equals_single () =
  let data = Lazy.force maritime_dataset in
  let ed = Maritime.Gold.event_description in
  let stream = data.Maritime.Dataset.stream in
  let lo, hi = Stream.extent stream in
  let single =
    match
      Engine.run ~event_description:ed ~knowledge:data.knowledge ~stream ~from:lo ~until:hi ()
    with
    | Ok r -> normalised lo hi r
    | Error e -> Alcotest.failf "single-pass run failed: %s" e
  in
  Alcotest.(check bool) "single-pass recognises activities" true (single <> []);
  List.iter
    (fun (window, step) ->
      match
        Window.run ~window ~step ~event_description:ed ~knowledge:data.knowledge ~stream ()
      with
      | Error e -> Alcotest.failf "windowed run (%d/%d) failed: %s" window step e
      | Ok (result, stats) ->
        Alcotest.(check bool)
          (Printf.sprintf "window=%d step=%d ran several queries" window step)
          true
          (stats.Window.queries > 1);
        Alcotest.(check (list (pair (pair string string) (list (pair int int)))))
          (Printf.sprintf "window=%d step=%d is bit-identical to single-pass" window step)
          single (normalised lo hi result))
    [ (3600, 1800); (7200, 3600); (7200, 7200) ]

(* --- robustness: the engine survives arbitrary mutated event descriptions --- *)

let tiny_dataset =
  lazy (Maritime.Dataset.generate ~config:{ Maritime.Dataset.seed = 3; replicas = 1; nominal = 0 } ())

let mutations_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (oneof
         [ return Adg.Error_model.Confuse_union;
           return Adg.Error_model.Add_redundant;
           return Adg.Error_model.Extra_rule;
           return Adg.Error_model.Wrong_kind;
           map (fun i -> Adg.Error_model.Drop_rule i) (int_bound 6);
           map (fun i -> Adg.Error_model.Drop_condition i) (int_bound 6);
           map2
             (fun a b -> Adg.Error_model.Replace_reference (a, b))
             (oneofl [ "trawlSpeed"; "lowSpeed"; "stopped" ])
             (oneofl [ "ghost"; "phantom" ]);
           return (Adg.Error_model.Transpose_args "areaType") ]))

let mutated_ed_case =
  QCheck.make
    ~print:(fun ed -> Rtec.Printer.event_description_to_string ed)
    QCheck.Gen.(
      list_size (return (List.length Maritime.Gold.entries)) mutations_gen >|= fun ms ->
      List.map2
        (fun (e : Maritime.Gold.entry) mutations ->
          Adg.Error_model.apply_all mutations
            (Parser.parse_definition ~name:e.name e.source))
        Maritime.Gold.entries ms)

let prop_engine_robust =
  prop "the engine never crashes on mutated event descriptions" 25 mutated_ed_case
    (fun ed ->
      let data = Lazy.force tiny_dataset in
      match
        Window.run ~window:7200 ~step:7200 ~event_description:ed
          ~knowledge:data.knowledge ~stream:data.stream ()
      with
      | Ok _ | Error _ -> true)

(* --- fuzzing: the parser returns errors instead of raising --- *)

let garbage_gen =
  QCheck.Gen.(
    oneof
      [ string_size (int_bound 80) ~gen:printable;
        (* byte-level garbage *)
        string_size (int_bound 40) ~gen:(map Char.chr (int_bound 255));
        (* near-miss RTEC text *)
        map
          (fun k ->
            String.concat ""
              (List.filteri (fun i _ -> i <> k)
                 (String.fold_right (fun c acc -> String.make 1 c :: acc)
                    "initiatedAt(f(V) = true, T) :- happensAt(e(V), T)." [])))
          (int_bound 50) ])

let prop_parser_total =
  prop "parse_clauses_result is total" 500 (QCheck.make ~print:(fun s -> s) garbage_gen)
    (fun input ->
      match Parser.parse_clauses_result input with Ok _ | Error _ -> true)

let suite =
  [ prop_inertia; prop_setters; prop_windowing;
    Alcotest.test_case "incremental windowed recognition equals single-pass (maritime)"
      `Quick test_maritime_incremental_equals_single;
    prop_engine_robust; prop_parser_total ]
