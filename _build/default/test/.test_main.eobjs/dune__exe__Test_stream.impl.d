test/test_stream.ml: Alcotest Interval Io Knowledge Lazy List Maritime Option Parser Rtec Stream Subst Term Unify
