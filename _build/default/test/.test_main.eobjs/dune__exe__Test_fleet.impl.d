test/test_fleet.ml: Adg Alcotest Check Dependency Domain Engine Fleet Format Interval Lazy List Rtec String Term Window
