test/test_evaluation.ml: Adg Alcotest Evaluation Interval Lazy List Maritime Parser Printf Rtec String Term
