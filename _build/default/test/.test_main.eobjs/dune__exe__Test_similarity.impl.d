test/test_similarity.ml: Adg Alcotest Array Ast Distance Float List Maritime Parser Printer QCheck QCheck_alcotest Rtec Similarity Unify Var_instance
