test/test_adg.ml: Adg Alcotest Ast Evaluation List Maritime Printer Printf Rtec Similarity String
