test/test_check.ml: Alcotest Check Dependency Format List Maritime Parser Rtec String
