test/test_hungarian.ml: Alcotest Array Assignment Float Greedy Kuhn_munkres List QCheck QCheck_alcotest String
