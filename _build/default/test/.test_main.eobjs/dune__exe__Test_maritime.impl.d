test/test_maritime.ml: Alcotest Ast Engine Interval Knowledge Lazy List Maritime Option Printf Rtec Stream String Term Window
