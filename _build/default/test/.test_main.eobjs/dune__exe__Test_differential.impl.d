test/test_differential.ml: Adg Char Engine Hashtbl Int Interval Knowledge Lazy List Maritime Parser Printf QCheck QCheck_alcotest Rtec Stream String Term Window
