test/test_differential.ml: Adg Alcotest Char Engine Hashtbl Int Interval Knowledge Lazy List Maritime Parser Printf QCheck QCheck_alcotest Rtec Stream String Term Window
