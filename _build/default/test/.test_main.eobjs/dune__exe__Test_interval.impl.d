test/test_interval.ml: Alcotest Interval QCheck QCheck_alcotest Rtec
