test/test_interval.ml: Alcotest Int Interval List QCheck QCheck_alcotest Rtec
