test/test_parser.ml: Alcotest Ast Float List Maritime Parser Printer Printf QCheck QCheck_alcotest Rtec String Term
