test/test_term.ml: Alcotest List QCheck QCheck_alcotest Rtec Subst Term Unify
