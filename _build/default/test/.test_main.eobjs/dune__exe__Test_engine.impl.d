test/test_engine.ml: Alcotest Check Engine Interval Knowledge List Parser Printf Rtec Stream String Term Window
