#!/bin/sh
# Minimal CI: build, tier-1 tests, a few-second benchmark-harness smoke run
# (see bench/dune; it recognises the fleet workload on two worker
# domains — exercising the sharded Runtime, its pool and the per-domain
# telemetry merge — and writes the merged metrics snapshot next to the
# timings, uploaded as a workflow artifact; the smoke subset also covers
# the similarity kernels — rectangular assignment, warm/cold
# event-description distance and the parallel similarity-sweep table —
# so a regression in the fig2a/2b hot path fails CI), and an overhead gate:
# the same smoke subset re-run with telemetry disabled must stay within
# 2% of the committed baseline, so instrumentation can never silently
# tax the disabled path. The gate uses min-of-N estimates (--repeat;
# scheduler/frequency noise is strictly additive, minima converge on
# the true cost) and normalises the instrumented rows by probe-free
# control benchmarks, cancelling whole-machine drift between the
# baseline recording and the CI run. Refreshing the committed baseline
# is a two-step manual recipe: the full sweep records the trajectory
# rows and counters (`dune exec bench/main.exe -- --repeat 3 --json
# BENCH_adg.json --metrics /tmp/m.json`), then a few smoke passes
# re-measure the gated rows under the exact conditions CI runs them
# (`dune exec bench/main.exe -- --smoke --jobs 2 --repeat 4 --json
# BENCH_adg.json --merge`, repeated; rows measured by both keep the
# minimum) — sub-microsecond kernels read 15-20% slower when measured
# in-process with the heavy fig2c workloads, and each process adds its
# own placement noise, either of which would poison the gate's drift
# normalisation.
#
# The smoke run also carries the allocation/compilation gate (--gate in
# bench/dune): single-shot GC gauges per recognition workload and the
# compiled-cache miss rate must stay within fixed bounds of the
# committed baseline (minor words <= 1.25x, miss rate <= baseline +
# 0.02) — iteration-exact measures, so no drift normalisation applies —
# plus two provenance properties with absolute bounds: the recorder-on
# row must price under 1.5x the recorder-off row, and a recorder-on
# fleet run must show a nonzero compiled-cache hit delta (a zero means
# derivation recording forced the interpreted fallback again).
set -eu

dune build
dune runtest
dune build @bench-smoke

# Explain-pipeline smoke: generate the maritime dataset, perturb one body
# condition of the gold description, and check that the provenance diff
# attributes the introduced false positives (exit 3 = divergence found)
# and that the JSON report materialises. A clean self-diff must exit 0.
EXPLAIN_DIR=$(mktemp -d)
trap 'rm -rf "$EXPLAIN_DIR"' EXIT
dune exec bin/rtec_cli.exe -- dataset -o "$EXPLAIN_DIR/ds" --replicas 1 > /dev/null
sed 's/Speed > HcNearCoastMax/Speed > 0.0/' "$EXPLAIN_DIR/ds.ed" > "$EXPLAIN_DIR/pert.ed"
set +e
dune exec bin/rtec_cli.exe -- explain "$EXPLAIN_DIR/ds.ed" "$EXPLAIN_DIR/pert.ed" \
  "$EXPLAIN_DIR/ds.stream" -k "$EXPLAIN_DIR/ds.kb" --json "$EXPLAIN_DIR/explain.json" > /dev/null
status=$?
set -e
[ "$status" -eq 3 ] || { echo "explain smoke: expected divergence exit 3, got $status"; exit 1; }
grep -q '"Speed > HcNearCoastMax"' "$EXPLAIN_DIR/explain.json" \
  || { echo "explain smoke: perturbed condition not blamed"; exit 1; }
dune exec bin/rtec_cli.exe -- explain "$EXPLAIN_DIR/ds.ed" "$EXPLAIN_DIR/ds.ed" \
  "$EXPLAIN_DIR/ds.stream" -k "$EXPLAIN_DIR/ds.kb" > /dev/null \
  || { echo "explain smoke: self-diff should not diverge"; exit 1; }
# Serve smoke: the streaming session must answer exactly like the batch
# path. Pipe the maritime stream through `rtec_cli serve` line by line —
# out-of-order tolerant, ticking on watermark progress — and require the
# emitted intervals to be byte-identical to `recognise` over the same
# files (comment lines carry run stats and differ by design).
dune exec bin/rtec_cli.exe -- recognise "$EXPLAIN_DIR/ds.ed" "$EXPLAIN_DIR/ds.stream" \
  -k "$EXPLAIN_DIR/ds.kb" -w 3600 -s 1800 | grep -v '^%' > "$EXPLAIN_DIR/batch.out"
dune exec bin/rtec_cli.exe -- serve "$EXPLAIN_DIR/ds.ed" -k "$EXPLAIN_DIR/ds.kb" \
  -w 3600 -s 1800 --horizon 1800 --tick-every 1800 < "$EXPLAIN_DIR/ds.stream" \
  | grep -v '^%' > "$EXPLAIN_DIR/serve.out"
diff "$EXPLAIN_DIR/batch.out" "$EXPLAIN_DIR/serve.out" \
  || { echo "serve smoke: serve output diverges from recognise"; exit 1; }

# Multi-client serve smoke: two concurrent TCP clients each send half the
# maritime stream into one `serve --listen --clients 2` session, and every
# client's final emission must be byte-identical to single-client
# `recognise` over the whole stream. With no --tick-every there are no
# mid-stream queries, so the cross-client interleaving (which varies run
# to run) cannot introduce lateness: one drain at the end sees the merged
# stream, whatever order the halves arrived in. The binary is invoked
# directly: concurrent `dune exec` processes serialise on the build lock.
RTEC=./_build/default/bin/rtec_cli.exe
total=$(wc -l < "$EXPLAIN_DIR/ds.stream")
half=$((total / 2))
head -n "$half" "$EXPLAIN_DIR/ds.stream" > "$EXPLAIN_DIR/half1.stream"
tail -n +"$((half + 1))" "$EXPLAIN_DIR/ds.stream" > "$EXPLAIN_DIR/half2.stream"
SERVE_PORT=47613
ADMIN_PORT=47614
"$RTEC" serve "$EXPLAIN_DIR/ds.ed" -k "$EXPLAIN_DIR/ds.kb" -w 3600 -s 1800 \
  --listen "$SERVE_PORT" --clients 2 --admin-port "$ADMIN_PORT" \
  --flight-recorder "$EXPLAIN_DIR/flight.json" 2> "$EXPLAIN_DIR/serve2.err" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q listening "$EXPLAIN_DIR/serve2.err" 2>/dev/null && break
  sleep 0.1
done
"$RTEC" feed "$SERVE_PORT" "$EXPLAIN_DIR/half1.stream" > "$EXPLAIN_DIR/client1.out" &
CLIENT1_PID=$!

# Admin-plane probes while the session is live. The server spawns its
# reader threads only once both clients have connected, so client 2
# streams its half from stdin and then withholds its EOF until the admin
# routes have been scraped: the curls run with every event sent and the
# session guaranteed live (the server cannot finish before the pipe
# closes). The /metrics scrape polls until the decode-stage histogram
# and the queue high-water gauge show up — the reader threads are
# draining both halves concurrently with the probe. Responses are saved
# and asserted after shutdown, in the main shell, where a failure can
# fail the build.
{
  cat "$EXPLAIN_DIR/half2.stream"
  for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$ADMIN_PORT/metrics" > "$EXPLAIN_DIR/metrics.prom" 2>/dev/null \
      && grep -q '^# TYPE service_stage_decode_us histogram' "$EXPLAIN_DIR/metrics.prom" \
      && grep -q '^service_ingest_queue_depth_hwm ' "$EXPLAIN_DIR/metrics.prom" \
      && break
    sleep 0.1
  done
  for route in healthz statusz lastz; do
    curl -fsS "http://127.0.0.1:$ADMIN_PORT/$route" \
      > "$EXPLAIN_DIR/$route.json" 2>/dev/null || true
  done
} | "$RTEC" feed "$SERVE_PORT" > "$EXPLAIN_DIR/client2.out"
wait "$CLIENT1_PID"
wait "$SERVE_PID"
grep -q '^# TYPE service_stage_decode_us histogram' "$EXPLAIN_DIR/metrics.prom" \
  || { echo "admin smoke: /metrics never exposed the decode-stage histogram"; exit 1; }
grep -q '^service_ingest_queue_depth_hwm ' "$EXPLAIN_DIR/metrics.prom" \
  || { echo "admin smoke: /metrics missing the queue high-water gauge"; exit 1; }
for route in healthz statusz lastz; do
  [ -s "$EXPLAIN_DIR/$route.json" ] \
    || { echo "admin smoke: GET /$route failed"; exit 1; }
  "$RTEC" jsonlint "$EXPLAIN_DIR/$route.json" \
    || { echo "admin smoke: /$route is not valid JSON"; exit 1; }
done
grep -q '"status": "ok"' "$EXPLAIN_DIR/healthz.json" \
  || { echo "admin smoke: /healthz did not report ok"; exit 1; }
grep -q '"depth_hwm"' "$EXPLAIN_DIR/statusz.json" \
  || { echo "admin smoke: /statusz missing ingest-queue high-water mark"; exit 1; }
grep -q '"adg-flight/1"' "$EXPLAIN_DIR/lastz.json" \
  || { echo "admin smoke: /lastz is not a flight-recorder dump"; exit 1; }
# The armed flight recorder must leave its black box on disk at exit,
# and the dump must close the session (last kind recorded on the clean
# shutdown path).
[ -s "$EXPLAIN_DIR/flight.json" ] \
  || { echo "admin smoke: flight-recorder file missing after shutdown"; exit 1; }
"$RTEC" jsonlint "$EXPLAIN_DIR/flight.json" \
  || { echo "admin smoke: flight-recorder file is not valid JSON"; exit 1; }
grep -q '"session_end"' "$EXPLAIN_DIR/flight.json" \
  || { echo "admin smoke: flight recorder did not capture session end"; exit 1; }
for c in client1 client2; do
  grep -v '^%' "$EXPLAIN_DIR/$c.out" > "$EXPLAIN_DIR/$c.cmp"
  diff "$EXPLAIN_DIR/batch.out" "$EXPLAIN_DIR/$c.cmp" \
    || { echo "serve smoke: two-client $c output diverges from recognise"; exit 1; }
done

# The multicore smoke row embeds the jobs value in its name, so the
# drift gate only ever compares it against a baseline recorded with the
# same fan-out; the sequential rows are checked as before.
dune exec bench/main.exe -- --smoke --jobs 2 --repeat 8 --json /tmp/bench-smoke-plain.json \
  --check BENCH_adg.json
