#!/bin/sh
# Minimal CI: build, tier-1 tests, a few-second benchmark-harness smoke run
# (see bench/dune; it also writes a telemetry metrics snapshot next to
# the timings, uploaded as a workflow artifact), and an overhead gate:
# the same smoke subset re-run with telemetry disabled must stay within
# 2% of the committed baseline, so instrumentation can never silently
# tax the disabled path. The gate uses min-of-N estimates (--repeat;
# scheduler/frequency noise is strictly additive, minima converge on
# the true cost) and normalises the instrumented rows by probe-free
# control benchmarks, cancelling whole-machine drift between the
# baseline recording and the CI run. The full sweep (`dune exec
# bench/main.exe -- --repeat 3 --json BENCH_adg.json --metrics
# /tmp/m.json`) is run manually when refreshing the trajectory.
set -eu

dune build
dune runtest
dune build @bench-smoke
dune exec bench/main.exe -- --smoke --repeat 8 --json /tmp/bench-smoke-plain.json \
  --check BENCH_adg.json
