#!/bin/sh
# Minimal CI: build, tier-1 tests, and a 2-second benchmark-harness smoke
# run (see bench/dune). The full benchmark sweep (`dune exec bench/main.exe
# -- --json BENCH_adg.json`) is run manually when refreshing the
# performance trajectory.
set -eu

dune build
dune runtest
dune build @bench-smoke
