#!/bin/sh
# Minimal CI: build, tier-1 tests, a few-second benchmark-harness smoke run
# (see bench/dune; it recognises the fleet workload on two worker
# domains — exercising the sharded Runtime, its pool and the per-domain
# telemetry merge — and writes the merged metrics snapshot next to the
# timings, uploaded as a workflow artifact), and an overhead gate:
# the same smoke subset re-run with telemetry disabled must stay within
# 2% of the committed baseline, so instrumentation can never silently
# tax the disabled path. The gate uses min-of-N estimates (--repeat;
# scheduler/frequency noise is strictly additive, minima converge on
# the true cost) and normalises the instrumented rows by probe-free
# control benchmarks, cancelling whole-machine drift between the
# baseline recording and the CI run. The full sweep (`dune exec
# bench/main.exe -- --repeat 3 --json BENCH_adg.json --metrics
# /tmp/m.json`) is run manually when refreshing the trajectory.
set -eu

dune build
dune runtest
dune build @bench-smoke
# The multicore smoke row embeds the jobs value in its name, so the
# drift gate only ever compares it against a baseline recorded with the
# same fan-out; the sequential rows are checked as before.
dune exec bench/main.exe -- --smoke --jobs 2 --repeat 8 --json /tmp/bench-smoke-plain.json \
  --check BENCH_adg.json
