(* generate: run the activity-definition-generation pipeline for one
   model and print either the generated event description, the prompt
   transcript, or the similarity report. *)

open Cmdliner

let model_arg =
  Arg.(value & opt string "o1" & info [ "model"; "m" ] ~docv:"MODEL"
         ~doc:"One of GPT-4, GPT-4o, o1, Llama-3, Mistral, Gemma-2.")

let scheme_arg =
  Arg.(value & opt (some string) None & info [ "scheme"; "s" ] ~docv:"SCHEME"
         ~doc:"few-shot or cot; defaults to the model's reported scheme.")

let mode_arg =
  Arg.(value & opt (enum [ ("rules", `Rules); ("transcript", `Transcript);
                           ("similarity", `Similarity); ("corrected", `Corrected) ])
         `Rules
       & info [ "print"; "p" ] ~docv:"WHAT"
           ~doc:"What to print: rules, transcript, similarity or corrected.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a span trace of the pipeline (per-call LLM latency) and \
                 write it as a Chrome trace_event file.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Collect pipeline metrics (calls, token counters, latency \
                 histograms) and write a JSON snapshot.")

(* Enable the requested telemetry sinks, failing on unwritable targets
   before the session runs. *)
let telemetry_setup ~trace ~metrics =
  let probe flag file =
    match open_out file with
    | oc -> close_out oc
    | exception Sys_error msg ->
      Printf.eprintf "cannot write --%s file: %s\n" flag msg;
      exit 2
  in
  Option.iter
    (fun f ->
      probe "trace" f;
      Telemetry.Trace.enable ())
    trace;
  Option.iter
    (fun f ->
      probe "metrics" f;
      Telemetry.Metrics.enable ())
    metrics

let run model scheme mode trace metrics =
  telemetry_setup ~trace ~metrics;
  let scheme =
    match scheme with
    | None -> Adg.Profiles.reported_scheme model
    | Some "few-shot" -> Adg.Prompt.Few_shot
    | Some "cot" -> Adg.Prompt.Chain_of_thought
    | Some other ->
      Printf.eprintf "unknown scheme %S (expected few-shot or cot)\n" other;
      exit 2
  in
  let profile =
    try Adg.Profiles.find ~model ~scheme
    with Not_found ->
      Printf.eprintf "unknown model %S\n" model;
      exit 2
  in
  let session = Adg.Session.run (Adg.Profiles.backend profile) in
  (match mode with
  | `Rules ->
    Format.printf "%s@."
      (Rtec.Printer.event_description_to_string (Adg.Session.event_description session))
  | `Transcript ->
    List.iteri
      (fun i (prompt, reply) ->
        Format.printf "=== exchange %d ===@.>>> %s@.@.<<< %s@.@." (i + 1) prompt reply)
      session.transcript
  | `Similarity ->
    List.iter
      (fun (e : Maritime.Gold.entry) ->
        Format.printf "%-20s %.3f@." e.name
          (Evaluation.Experiments.similarity_of_definition session e.name))
      Maritime.Gold.entries
  | `Corrected ->
    let ed, report = Adg.Correction.correct session in
    Format.printf "%% %d corrections applied@.%s@."
      (List.length report.changes)
      (Rtec.Printer.event_description_to_string ed));
  Option.iter Telemetry.Trace.write_chrome trace;
  Option.iter Telemetry.Metrics.write metrics

let () =
  let doc = "Generate RTEC activity definitions with a (simulated) LLM." in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "generate" ~doc)
          Term.(const run $ model_arg $ scheme_arg $ mode_arg $ trace_arg $ metrics_arg)))
