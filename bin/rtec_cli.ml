(* rtec_cli: run the RTEC engine from the command line.

   - [recognise] loads an event description, background knowledge and an
     event stream from files and prints the recognised maximal intervals;
   - [serve] runs a long-lived recognition session over a live feed
     (stdin, or several concurrent TCP connections multiplexed into one
     evaluator), with out-of-order revision and periodic emission;
   - [feed] is the matching line-stream TCP client (send a file,
     half-close, print the server's emissions);
   - [check] parses an event description and reports diagnostics;
   - [dataset] writes the synthetic maritime dataset to files usable by
     [recognise].

   Stream file format (see Rtec.Io): one fact per line —
   "happensAt(<event>, <time>)." for events and
   "holdsFor(<fluent> = <value>, [[S, E], ...])." for input fluents. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- telemetry plumbing shared by the subcommands --- *)

let trace_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record a span trace and write it as a Chrome trace_event file \
              (load in chrome://tracing or Perfetto).")

let metrics_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Collect pipeline metrics and write a snapshot \
              (counters, gauges, latency histograms).")

let metrics_format_arg =
  Cmdliner.Arg.(
    value
    & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
    & info [ "metrics-format" ] ~docv:"FORMAT"
        ~doc:"Format of the --metrics snapshot: $(b,json) (indented JSON) or \
              $(b,prom) (Prometheus 0.0.4 text exposition).")

(* Long-running subcommands (serve, feed) route their diagnostics
   through the structured logger; the flag just sets the floor. *)
let log_level_arg =
  Cmdliner.Arg.(
    value
    & opt
        (enum
           [
             ("debug", Telemetry.Log.Debug);
             ("info", Telemetry.Log.Info);
             ("warn", Telemetry.Log.Warn);
             ("error", Telemetry.Log.Error);
           ])
        Telemetry.Log.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Minimum severity for structured stderr log lines: $(b,debug), \
              $(b,info), $(b,warn) or $(b,error).")

(* The enabled sinks are flushed at most once: normally by the explicit
   [telemetry_write] on the success path, otherwise by the [at_exit]
   handler — so a run that dies mid-recognition (exception, [exit 1])
   still leaves a valid trace/metrics file behind. *)
let telemetry_written = ref false

let telemetry_flush ~trace ~metrics ~metrics_format =
  if not !telemetry_written then begin
    telemetry_written := true;
    Option.iter Telemetry.Trace.write_chrome trace;
    Option.iter
      (match metrics_format with
      | `Json -> Telemetry.Metrics.write
      | `Prom -> Telemetry.Metrics.write_prometheus)
      metrics
  end

(* Enable the requested telemetry sinks, failing on unwritable targets
   before any work is done. *)
let telemetry_setup ~trace ~metrics ~metrics_format =
  let probe flag file =
    match open_out file with
    | oc -> close_out oc
    | exception Sys_error msg ->
      Printf.eprintf "cannot write --%s file: %s\n" flag msg;
      exit 2
  in
  Option.iter
    (fun f ->
      probe "trace" f;
      Telemetry.Trace.enable ())
    trace;
  Option.iter
    (fun f ->
      probe "metrics" f;
      Telemetry.Metrics.enable ())
    metrics;
  if Option.is_some trace || Option.is_some metrics then
    at_exit (fun () -> telemetry_flush ~trace ~metrics ~metrics_format)

let telemetry_write = telemetry_flush

(* --- recognition flags shared by [recognise] and [serve] ---

   One reusable Cmdliner term, so the two subcommands cannot drift: the
   same flag names, docs and defaults by construction. *)

type recognition_flags = {
  knowledge : string option;
  window : int option;
  step : int option;
  jobs : int;
  shards : int option;
  interpret : bool;
  provenance : string option;
}

let recognition_flags =
  let kb_arg =
    Arg.(value & opt (some file) None & info [ "knowledge"; "k" ] ~docv:"FILE"
           ~doc:"Background knowledge facts.")
  in
  let window_arg =
    Arg.(value & opt (some int) None & info [ "window"; "w" ] ~docv:"SECONDS"
           ~doc:"Sliding window size; omit for a single query over the whole stream.")
  in
  let step_arg =
    Arg.(value & opt (some int) None & info [ "step"; "s" ] ~docv:"SECONDS"
           ~doc:"Query step (defaults to the window size).")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains: shard the stream by entity and recognise the \
                 shards in parallel. The result is bit-identical to --jobs 1.")
  in
  let shards_arg =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
           ~doc:"Shard-count override (defaults to --jobs); more shards than \
                 jobs gives finer load balancing. (serve shards dynamically, \
                 one entity component per shard, and ignores this flag.)")
  in
  let interpret_arg =
    Arg.(value & flag & info [ "interpret" ]
           ~doc:"Skip rule compilation and run the tree-walking evaluator — the \
                 differential oracle. The result is bit-identical to the default \
                 compiled run.")
  in
  let provenance_arg =
    Arg.(
      value
      & opt ~vopt:(Some "always") (some string) None
      & info [ "provenance" ] ~docv:"MODE"
          ~doc:"Record compact derivation provenance during recognition: \
                $(b,always) (the default when the flag is given bare), \
                $(b,sample:N) (a deterministic 1-in-N window subset) or \
                $(b,sample:N:SEED). Recognition output is unchanged; recorder \
                stats are printed as a comment line.")
  in
  let mk knowledge window step jobs shards interpret provenance =
    { knowledge; window; step; jobs; shards; interpret; provenance }
  in
  Term.(
    const mk $ kb_arg $ window_arg $ step_arg $ jobs_arg $ shards_arg $ interpret_arg
    $ provenance_arg)

let parse_provenance spec =
  match String.split_on_char ':' spec with
  | [ "always" ] -> Rtec.Derivation.Always
  | [ "sample"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Rtec.Derivation.One_in { n; seed = 0 }
    | _ ->
      Printf.eprintf "invalid --provenance sample count: %s\n" spec;
      exit 2)
  | [ "sample"; n; seed ] -> (
    match (int_of_string_opt n, int_of_string_opt seed) with
    | Some n, Some seed when n > 0 -> Rtec.Derivation.One_in { n; seed }
    | _ ->
      Printf.eprintf "invalid --provenance sample spec: %s\n" spec;
      exit 2)
  | _ ->
    Printf.eprintf "invalid --provenance mode: %s (expected always or sample:N[:SEED])\n"
      spec;
    exit 2

let load_event_description file =
  match Rtec.Parser.parse_clauses_result (read_file file) with
  | Error e ->
    Printf.eprintf "parse error in %s: %s\n" file e;
    exit 1
  | Ok rules -> [ { Rtec.Ast.name = Filename.basename file; rules } ]

let load_knowledge = function
  | None -> Rtec.Knowledge.empty
  | Some f -> Rtec.Knowledge.of_source (read_file f)

let print_provenance_stats fmt =
  let s = Rtec.Derivation.stats () in
  Format.fprintf fmt
    "%% provenance: %d records (%d evicted), %d/%d windows sampled, %d KiB retained@."
    s.Rtec.Derivation.records s.Rtec.Derivation.evicted s.Rtec.Derivation.windows_sampled
    (s.Rtec.Derivation.windows_sampled + s.Rtec.Derivation.windows_skipped)
    (s.Rtec.Derivation.retained_words * (Sys.word_size / 8) / 1024)

(* --- check --- *)

let check_cmd =
  let ed_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EVENT_DESCRIPTION")
  in
  let maritime_voc =
    Arg.(value & flag & info [ "maritime" ] ~doc:"Check against the maritime vocabulary.")
  in
  let run ed_file maritime =
    match Rtec.Parser.parse_clauses_result (read_file ed_file) with
    | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      exit 1
    | Ok rules ->
      let ed = [ { Rtec.Ast.name = Filename.basename ed_file; rules } ] in
      let vocabulary =
        if maritime then Some Maritime.Vocabulary.check_vocabulary else None
      in
      let diags = Rtec.Check.check ?vocabulary ed in
      List.iter (fun d -> Format.printf "%a@." Rtec.Check.pp_diagnostic d) diags;
      if Rtec.Check.usable ?vocabulary ed then Format.printf "ok: usable@."
      else exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse an event description and report diagnostics.")
    Term.(const run $ ed_arg $ maritime_voc)

(* --- recognise --- *)

let recognise_cmd =
  let ed_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EVENT_DESCRIPTION")
  in
  (* One or more stream files: batches arriving separately (per-day
     dumps, per-source feeds) are folded into a single ordered stream
     with [Stream.of_batches] — each fold step is an instrumented
     [Stream.append], so the telemetry snapshot reports how the input
     was assembled (stream.appends, stream.append_events). *)
  let stream_arg = Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"STREAM") in
  let fluent_arg =
    Arg.(value & opt (some string) None & info [ "fluent"; "f" ] ~docv:"NAME/ARITY"
           ~doc:"Only print instances of this fluent, e.g. trawling/1.")
  in
  let run ed_file stream_files (flags : recognition_flags) fluent trace metrics
      metrics_format =
    telemetry_setup ~trace ~metrics ~metrics_format;
    let ed = load_event_description ed_file in
    let knowledge = load_knowledge flags.knowledge in
    let stream =
      Rtec.Stream.of_batches
        (List.map (fun f -> Rtec.Io.stream_of_string (read_file f)) stream_files)
    in
    let config =
      Runtime.config ?window:flags.window ?step:flags.step ~jobs:flags.jobs
        ?shards:flags.shards ~compile:(not flags.interpret) ()
    in
    let outcome =
      match flags.provenance with
      | None -> Runtime.run ~config ~event_description:ed ~knowledge ~stream ()
      | Some spec ->
        let sampling = parse_provenance spec in
        Result.map
          (fun (run : Provenance.run) -> (run.Provenance.result, run.Provenance.stats))
          (Provenance.recognise ~config ~sampling ~event_description:ed ~knowledge
             ~stream ())
    in
    match outcome with
    | Error e ->
      Printf.eprintf "recognition failed: %s\n" e;
      exit 1
    | Ok (result, stats) ->
      telemetry_write ~trace ~metrics ~metrics_format;
      Format.printf "%% %d queries, %d window-events, %d shard(s) on %d domain(s)@."
        stats.queries stats.events_processed stats.shards stats.jobs;
      if Option.is_some flags.provenance then print_provenance_stats Format.std_formatter;
      let selected =
        match fluent with
        | None -> result
        | Some spec -> (
          match String.split_on_char '/' spec with
          | [ name; arity ] -> Rtec.Engine.find_fluent result (name, int_of_string arity)
          | _ -> failwith "expected NAME/ARITY")
      in
      List.iter
        (fun ((f, v), spans) ->
          Format.printf "holdsFor(%a = %a, %a).@." Rtec.Term.pp f Rtec.Term.pp v
            Rtec.Interval.pp spans)
        selected
  in
  Cmd.v
    (Cmd.info "recognise"
       ~doc:"Run the engine over one or more stream files (appended in argument \
             order) and print maximal intervals.")
    Term.(
      const run $ ed_arg $ stream_arg $ recognition_flags $ fluent_arg $ trace_arg
      $ metrics_arg $ metrics_format_arg)

(* --- serve --- *)

(* Backpressure instrumentation for the multi-client ingest queue: depth
   is sampled at every push/pop (under the ring lock), blocked counts
   pushes that found the ring full and had to wait for the evaluator,
   dropped counts clients detached after a failed write or a mid-read
   connection error. *)
let m_ingest_blocked = Telemetry.Metrics.counter "service.ingest.blocked"
let g_queue_depth = Telemetry.Metrics.gauge "service.ingest_queue.depth"
let g_queue_hwm = Telemetry.Metrics.gauge "service.ingest_queue.depth_hwm"
let m_clients_dropped = Telemetry.Metrics.counter "service.clients.dropped"

(* The I/O halves of the stage-latency attribution: [decode] brackets
   line → items decoding (on reader threads or the stdin loop), [emit]
   brackets writing one emission to every live sink. The route and
   evaluate stages are recorded inside [Runtime.Service]. *)
let h_stage_decode = Telemetry.Metrics.histogram "service.stage.decode_us"
let h_stage_emit = Telemetry.Metrics.histogram "service.stage.emit_us"

(* Bounded multi-producer single-consumer ring: per-connection reader
   threads push decoded ingestion messages, the evaluator (the main
   thread) pops. A full ring blocks the producer, so backpressure
   reaches a fast client through TCP flow control instead of growing the
   heap without bound. *)
module Ring = struct
  type 'a t = {
    buf : 'a option array;
    mutable head : int;  (* next slot to pop *)
    mutable len : int;
    mutable hwm : int;  (* deepest the queue has ever been *)
    lock : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
  }

  let create capacity =
    {
      buf = Array.make capacity None;
      head = 0;
      len = 0;
      hwm = 0;
      lock = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
    }

  (* Sampled on both push and pop: [depth] is the instantaneous queue
     length (so a post-run snapshot of it alone reads 0 — the evaluator
     drains the ring), [depth_hwm] keeps the deepest point the queue
     reached, which is the number a capacity decision actually needs. *)
  let note_depth t =
    if t.len > t.hwm then t.hwm <- t.len;
    Telemetry.Metrics.set g_queue_depth (float_of_int t.len);
    Telemetry.Metrics.set g_queue_hwm (float_of_int t.hwm)

  let push t x =
    Mutex.lock t.lock;
    let cap = Array.length t.buf in
    if t.len = cap then begin
      Telemetry.Metrics.incr m_ingest_blocked;
      while t.len = cap do
        Condition.wait t.not_full t.lock
      done
    end;
    t.buf.((t.head + t.len) mod cap) <- Some x;
    t.len <- t.len + 1;
    note_depth t;
    Condition.signal t.not_empty;
    Mutex.unlock t.lock

  let pop t =
    Mutex.lock t.lock;
    while t.len = 0 do
      Condition.wait t.not_empty t.lock
    done;
    let x = match t.buf.(t.head) with Some x -> x | None -> assert false in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    note_depth t;
    Condition.signal t.not_full;
    Mutex.unlock t.lock;
    x

  let depth t = Mutex.protect t.lock (fun () -> t.len)
  let high_water t = Mutex.protect t.lock (fun () -> t.hwm)
  let capacity t = Array.length t.buf
end

(* One message per protocol line, decoded on the reader thread (each
   with its own {!Rtec.Io.Codec} so the atom memo persists across the
   connection) — the evaluator never touches bytes. [Client_eof] carries
   whether the connection ended cleanly or died mid-read. *)
type serve_msg =
  | Ingest of Rtec.Stream.item list
  | Tick_at of int
  | Bad_line of string
  | Client_eof of { slot : int; dropped : bool }

(* An emission target: stdout, or one client connection. A failed write
   (EPIPE surfacing as [Sys_error] once SIGPIPE is ignored) marks the
   sink dead and counts it in [service.clients.dropped]; the evaluator
   carries on for the remaining clients. *)
type sink = {
  sink_id : int;
  sink_oc : out_channel;
  sink_fmt : Format.formatter;
  mutable sink_live : bool;
}

let sink_of_channel sink_id oc =
  { sink_id; sink_oc = oc; sink_fmt = Format.formatter_of_out_channel oc; sink_live = true }

let ignore_sigpipe () =
  (* A client that disconnects mid-emission must surface as a write
     error ([EPIPE]/[Sys_error]) on its channel, not kill the process. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* Decode one trimmed protocol line into a queue message. *)
let decode_line codec line =
  match Scanf.sscanf_opt line "tick(%d)." (fun t -> t) with
  | Some t -> Tick_at t
  | None -> (
    match Rtec.Io.Codec.items_of_string codec line with
    | items -> Ingest items
    | exception (Invalid_argument msg | Failure msg) -> Bad_line msg
    | exception Rtec.Parser.Error { line; message } ->
      Bad_line (Printf.sprintf "line %d: %s" line message)
    | exception Rtec.Lexer.Error { line; message } ->
      Bad_line (Printf.sprintf "line %d: %s" line message))

let reader_thread ~slot ~ic ~queue =
  let codec = Rtec.Io.Codec.create () in
  let dropped = ref false in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line.[0] = '%' then ()
       else
         Ring.push queue
           (Telemetry.Metrics.time_us h_stage_decode (fun () ->
                decode_line codec line))
     done
   with
  | End_of_file -> ()
  | Sys_error _ | Unix.Unix_error _ -> dropped := true);
  Ring.push queue (Client_eof { slot; dropped = !dropped })

let serve_cmd =
  let ed_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EVENT_DESCRIPTION")
  in
  let horizon_arg =
    Arg.(value & opt int 0 & info [ "horizon" ] ~docv:"SECONDS"
           ~doc:"Revision horizon: accept an out-of-order event up to this far \
                 behind the last query, rolling the affected entity's state back \
                 and re-evaluating the overlapping windows. Older events are \
                 counted and dropped. Default 0: drop every late event.")
  in
  let ttl_arg =
    Arg.(value & opt (some int) None & info [ "ttl" ] ~docv:"SECONDS"
           ~doc:"Evict an entity's working state once no event has arrived for \
                 it in this long (clamped to at least one window). Its \
                 recognised intervals stay in the emitted result.")
  in
  let listen_arg =
    Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT"
           ~doc:"Accept TCP connections on 127.0.0.1:PORT (as many as \
                 --clients) and serve them instead of stdin/stdout.")
  in
  let clients_arg =
    Arg.(value & opt int 1 & info [ "clients" ] ~docv:"N"
           ~doc:"With --listen: accept this many connections and feed them all \
                 into the one evaluator — each connection gets a reader thread \
                 decoding its lines into a bounded ingest queue, and every \
                 live client receives the emitted intervals. The session ends \
                 once every client has closed its send side.")
  in
  let tick_every_arg =
    Arg.(value & opt (some int) None & info [ "tick-every" ] ~docv:"SECONDS"
           ~doc:"Advance the query grid whenever the event-time watermark has \
                 moved this far since the last tick. Default: tick only on \
                 $(b,tick(T).) control lines and at end of input.")
  in
  let emit_arg =
    Arg.(
      value
      & opt (enum [ ("final", `Final); ("ticks", `Ticks) ]) `Final
      & info [ "emit" ] ~docv:"WHEN"
          ~doc:"When to emit recognised intervals: $(b,final) (once, at end of \
                input — the same output recognise prints) or $(b,ticks) (a full \
                snapshot after every tick, each preceded by a '% tick' comment \
                line).")
  in
  let admin_port_arg =
    Arg.(value & opt (some int) None & info [ "admin-port" ] ~docv:"PORT"
           ~doc:"Serve a live introspection endpoint on 127.0.0.1:PORT (0 picks \
                 an ephemeral port): $(b,/metrics) (Prometheus text exposition), \
                 $(b,/healthz) (liveness and queue saturation), $(b,/statusz) \
                 (session status as JSON) and $(b,/lastz) (flight-recorder \
                 dump). Implies metrics collection.")
  in
  let flight_arg =
    Arg.(value & opt (some string) None & info [ "flight-recorder" ] ~docv:"FILE"
           ~doc:"Dump the in-memory flight recorder (a bounded ring of recent \
                 ingest/tick/revision/eviction/client events) to FILE as JSON \
                 when the session ends, however it ends.")
  in
  let run ed_file (flags : recognition_flags) horizon ttl listen clients tick_every emit
      admin_port flight_file log_level trace metrics metrics_format =
    telemetry_setup ~trace ~metrics ~metrics_format;
    Telemetry.Log.set_level log_level;
    Option.iter Telemetry.Flight.arm flight_file;
    Telemetry.Flight.record Session_start ();
    if clients < 1 then begin
      Telemetry.Log.error ~src:"serve" "--clients must be positive";
      exit 2
    end;
    Option.iter
      (fun spec ->
        Rtec.Derivation.enable ();
        Rtec.Derivation.set_sampling (parse_provenance spec))
      flags.provenance;
    let ed = load_event_description ed_file in
    let knowledge = load_knowledge flags.knowledge in
    let svc =
      Runtime.Service.create
        ~config:
          (Runtime.Service.config ?window:flags.window ?step:flags.step ~jobs:flags.jobs
             ~compile:(not flags.interpret) ~horizon ?ttl ())
        ~event_description:ed ~knowledge ()
    in
    (* --- live introspection state shared with the admin endpoint --- *)
    let serve_start_ns = Telemetry.Clock.now_ns () in
    let last_activity = ref serve_start_ns in
    let touch () = last_activity := Telemetry.Clock.now_ns () in
    (* One slot per client connection ("waiting" → "streaming" → "eof" /
       "dropped_read" / "dropped_write"); stdin mode has the one
       implicit client. Plain string stores: the admin thread only ever
       reads them, advisorily. *)
    let client_states =
      match listen with None -> [| "stdin" |] | Some _ -> Array.make clients "waiting"
    in
    let set_client_state slot state =
      if slot >= 0 && slot < Array.length client_states then
        client_states.(slot) <- state
    in
    (* Filled in by the TCP branch once the ingest ring exists. *)
    let queue_probe : (unit -> int * int * int) option ref = ref None in
    let admin =
      match admin_port with
      | None -> None
      | Some p ->
        (* A scrape target is only useful live: --admin-port implies
           metrics collection even without a --metrics file. *)
        Telemetry.Metrics.enable ();
        let queue_json () =
          match !queue_probe with
          | None -> Telemetry.Json.Null
          | Some probe ->
            let depth, hwm, cap = probe () in
            Telemetry.Json.Obj
              [
                ("depth", Telemetry.Json.Num (float_of_int depth));
                ("depth_hwm", Telemetry.Json.Num (float_of_int hwm));
                ("capacity", Telemetry.Json.Num (float_of_int cap));
              ]
        in
        let healthz () =
          let depth, _, cap =
            match !queue_probe with None -> (0, 0, 0) | Some probe -> probe ()
          in
          let idle_ns =
            Int64.to_int (Int64.sub (Telemetry.Clock.now_ns ()) !last_activity)
          in
          let saturated = cap > 0 && depth = cap in
          (* Unhealthy only when the ingest queue is full AND the
             evaluator has made no progress for 10s — saturation alone is
             backpressure working as designed. *)
          let stalled = saturated && idle_ns > 10_000_000_000 in
          Telemetry.Admin.json
            ~status:(if stalled then 503 else 200)
            (Telemetry.Json.Obj
               [
                 ("status", Telemetry.Json.Str (if stalled then "stalled" else "ok"));
                 ("queue_saturated", Telemetry.Json.Bool saturated);
                 ("idle_ms", Telemetry.Json.Num (float_of_int idle_ns /. 1e6));
               ])
        in
        let statusz () =
          let st = Runtime.Service.stats svc in
          let num i = Telemetry.Json.Num (float_of_int i) in
          Telemetry.Admin.json
            (Telemetry.Json.Obj
               [
                 ( "uptime_s",
                   Telemetry.Json.Num
                     (Int64.to_float
                        (Int64.sub (Telemetry.Clock.now_ns ()) serve_start_ns)
                     /. 1e9) );
                 ( "watermark",
                   match Runtime.Service.watermark svc with
                   | None -> Telemetry.Json.Null
                   | Some w -> num w );
                 ( "stats",
                   Telemetry.Json.Obj
                     [
                       ("queries", num st.queries);
                       ("events_processed", num st.events_processed);
                       ("buckets", num st.buckets);
                       ("jobs", num st.jobs);
                       ("appends", num st.appends);
                       ("late_events", num st.late_events);
                       ("dropped_late", num st.dropped_late);
                       ("revisions", num st.revisions);
                       ("entities_active", num st.entities_active);
                       ("entities_evicted", num st.entities_evicted);
                     ] );
                 ("ingest_queue", queue_json ());
                 ( "clients",
                   Telemetry.Json.List
                     (List.mapi
                        (fun slot state ->
                          Telemetry.Json.Obj
                            [ ("slot", num slot); ("state", Telemetry.Json.Str state) ])
                        (Array.to_list client_states)) );
                 ("flight_recorded", num (Telemetry.Flight.total ()));
               ])
        in
        let routes = function
          | "/metrics" ->
            Some
              {
                Telemetry.Admin.status = 200;
                content_type = "text/plain; version=0.0.4";
                body = Telemetry.Metrics.to_prometheus ();
              }
          | "/healthz" -> Some (healthz ())
          | "/statusz" -> Some (statusz ())
          | "/lastz" -> Some (Telemetry.Admin.json (Telemetry.Flight.to_json ()))
          | _ -> None
        in
        (match Telemetry.Admin.start ~port:p ~routes with
        | Ok a ->
          Telemetry.Log.info ~src:"serve"
            (Printf.sprintf "admin endpoint on 127.0.0.1:%d" (Telemetry.Admin.port a));
          Some a
        | Error e ->
          Telemetry.Log.error ~src:"serve" e;
          exit 2)
    in
    let stop_admin () = Option.iter Telemetry.Admin.stop admin in
    (* Run [f sink_fmt] against every live sink, detaching a sink whose
       write fails instead of propagating — one gone client must not
       take down the session for the others. *)
    let emit_to sinks f =
      Telemetry.Metrics.time_us h_stage_emit (fun () ->
          List.iter
            (fun s ->
              if s.sink_live then
                try
                  f s.sink_fmt;
                  Format.pp_print_flush s.sink_fmt ();
                  flush s.sink_oc
                with Sys_error _ | Unix.Unix_error _ ->
                  s.sink_live <- false;
                  Telemetry.Metrics.incr m_clients_dropped;
                  Telemetry.Flight.record Client_drop ~a:s.sink_id ~b:1 ();
                  set_client_state s.sink_id "dropped_write";
                  Telemetry.Log.warn ~src:"serve" "client dropped (write failed)"
                    ~fields:[ ("client", Telemetry.Log.Int s.sink_id) ])
            sinks)
    in
    let emit_intervals fmt (r : Runtime.Service.result) =
      List.iter
        (fun ((f, v), spans) ->
          Format.fprintf fmt "holdsFor(%a = %a, %a).@." Rtec.Term.pp f Rtec.Term.pp v
            Rtec.Interval.pp spans)
        (Lazy.force r.intervals)
    in
    (* Everything mode-independent: tick/auto-tick plumbing around the
       ingest loop, then the final drain and summary. [loop] is the only
       part stdin and TCP serving disagree on. *)
    let session ~sinks ~cleanup ~loop =
      let fail e =
        cleanup ();
        Telemetry.Log.error ~src:"serve" "recognition failed"
          ~fields:[ ("error", Telemetry.Log.Str e) ];
        exit 1
      in
      (* Live telemetry: refresh the --metrics snapshot at every tick, so
         a scraper sees current counters while the service runs. *)
      let snapshot_metrics () =
        Option.iter
          (match metrics_format with
          | `Json -> Telemetry.Metrics.write
          | `Prom -> Telemetry.Metrics.write_prometheus)
          metrics
      in
      let last_tick = ref None in
      let tick ~now =
        touch ();
        match Runtime.Service.tick svc ~now with
        | Error e -> fail e
        | Ok r ->
          last_tick := Some now;
          snapshot_metrics ();
          if emit = `Ticks then
            emit_to sinks (fun fmt ->
                Format.fprintf fmt
                  "%% tick %d: %d queries, %d entity shard(s), watermark %s@." now
                  r.stats.queries r.stats.buckets
                  (match r.watermark with None -> "-" | Some w -> string_of_int w);
                emit_intervals fmt r)
      in
      let bad_line msg =
        Telemetry.Flight.record Bad_line ~a:(String.length msg) ();
        Telemetry.Log.warn ~src:"serve" "ignoring bad input line"
          ~fields:[ ("error", Telemetry.Log.Str msg) ]
      in
      let ingest items =
        touch ();
        match Runtime.Service.ingest svc items with
        | () -> (
          match (tick_every, Runtime.Service.watermark svc) with
          | Some n, Some wm
            when (match !last_tick with None -> true | Some t -> wm >= t + n) ->
            tick ~now:wm
          | _ -> ())
        | exception Invalid_argument msg -> bad_line msg
      in
      loop ~tick ~ingest ~bad_line;
      (match Runtime.Service.drain svc with
      | Error e -> fail e
      | Ok r ->
        telemetry_write ~trace ~metrics ~metrics_format;
        let s = r.stats in
        emit_to sinks (fun fmt ->
            Format.fprintf fmt
              "%% %d queries, %d window-events, %d shard(s) on %d domain(s)@." s.queries
              s.events_processed s.buckets s.jobs;
            Format.fprintf fmt
              "%% %d appends, %d late events (%d dropped), %d revisions, %d active / %d \
               evicted entities@."
              s.appends s.late_events s.dropped_late s.revisions s.entities_active
              s.entities_evicted;
            if Option.is_some flags.provenance then print_provenance_stats fmt;
            emit_intervals fmt r));
      cleanup ();
      Telemetry.Flight.record Session_end ()
    in
    match listen with
    | None ->
      (* Synchronous stdin serving: one long-lived codec, no threads. *)
      let codec = Rtec.Io.Codec.create () in
      session
        ~sinks:[ sink_of_channel 0 stdout ]
        ~cleanup:(fun () -> stop_admin ())
        ~loop:(fun ~tick ~ingest ~bad_line ->
          try
            while true do
              let line = String.trim (input_line stdin) in
              if line = "" || line.[0] = '%' then ()
              else
                match
                  Telemetry.Metrics.time_us h_stage_decode (fun () ->
                      decode_line codec line)
                with
                | Tick_at t -> tick ~now:t
                | Ingest items -> ingest items
                | Bad_line msg -> bad_line msg
                | Client_eof _ -> assert false
            done
          with End_of_file -> set_client_state 0 "eof")
    | Some port ->
      ignore_sigpipe ();
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen sock clients;
      Telemetry.Log.info ~src:"serve"
        (Printf.sprintf "listening on 127.0.0.1:%d" port)
        ~fields:[ ("clients", Telemetry.Log.Int clients) ];
      let conns =
        List.init clients (fun slot ->
            let conn, _ = Unix.accept sock in
            Telemetry.Flight.record Client_connect ~a:slot ();
            set_client_state slot "streaming";
            Telemetry.Log.info ~src:"serve" "client connected"
              ~fields:[ ("client", Telemetry.Log.Int slot) ];
            (slot, conn))
      in
      let sinks =
        List.map (fun (slot, conn) -> sink_of_channel slot (Unix.out_channel_of_descr conn)) conns
      in
      let queue = Ring.create 1024 in
      queue_probe :=
        Some (fun () -> (Ring.depth queue, Ring.high_water queue, Ring.capacity queue));
      let readers =
        List.map
          (fun (slot, conn) ->
            let ic = Unix.in_channel_of_descr conn in
            Thread.create (fun () -> reader_thread ~slot ~ic ~queue) ())
          conns
      in
      (* No Thread.join in cleanup: on the normal path every reader has
         already pushed its EOF (its last fd use) before the loop exits,
         and on the failure path exit must not wait on a reader still
         blocked in a read. *)
      ignore readers;
      session ~sinks
        ~cleanup:(fun () ->
          List.iter
            (fun (_, conn) -> try Unix.close conn with Unix.Unix_error _ -> ())
            conns;
          (try Unix.close sock with Unix.Unix_error _ -> ());
          stop_admin ())
        ~loop:(fun ~tick ~ingest ~bad_line ->
          let open_clients = ref clients in
          while !open_clients > 0 do
            match Ring.pop queue with
            | Ingest items -> ingest items
            | Tick_at t -> tick ~now:t
            | Bad_line msg -> bad_line msg
            | Client_eof { slot; dropped } ->
              decr open_clients;
              if dropped then begin
                Telemetry.Metrics.incr m_clients_dropped;
                Telemetry.Flight.record Client_drop ~a:slot ~b:0 ();
                set_client_state slot "dropped_read";
                Telemetry.Log.warn ~src:"serve" "client dropped (read failed)"
                  ~fields:[ ("client", Telemetry.Log.Int slot) ]
              end
              else begin
                Telemetry.Flight.record Client_eof ~a:slot ();
                set_client_state slot "eof";
                Telemetry.Log.debug ~src:"serve" "client finished sending"
                  ~fields:[ ("client", Telemetry.Log.Int slot) ]
              end
          done)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a long-lived recognition session over a live feed: stream facts \
             arrive as happensAt/holdsFor lines on stdin (or TCP connections \
             with --listen, up to --clients of them multiplexed into the one \
             evaluator), the query grid advances on tick(T). control lines, \
             --tick-every watermark progress, or end of input, and recognised \
             intervals are emitted incrementally (--emit ticks) or once at the \
             end, to every live client. Out-of-order events within --horizon \
             trigger revision of the affected entity's windows; idle entities \
             are evicted after --ttl. A client that disconnects is dropped \
             without disturbing the rest of the session."
       ~man:
         [
           `S Manpage.s_examples;
           `P "rtec dataset -o /tmp/ais && \\";
           `P "  rtec serve /tmp/ais.ed -k /tmp/ais.kb -w 3600 --horizon 600 \\";
           `P "    --emit ticks --tick-every 3600 < /tmp/ais.stream";
         ])
    Term.(
      const run $ ed_arg $ recognition_flags $ horizon_arg $ ttl_arg $ listen_arg
      $ clients_arg $ tick_every_arg $ emit_arg $ admin_port_arg $ flight_arg
      $ log_level_arg $ trace_arg $ metrics_arg $ metrics_format_arg)

(* --- feed --- *)

(* A minimal line-stream TCP client for [serve --listen]: stream a file
   (or stdin) to the server, half-close the connection, and copy
   everything the server says to stdout. Exists so CI can drive
   multi-client serve sessions without relying on netcat. *)
let feed_cmd =
  let port_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"PORT")
  in
  let file_arg =
    Arg.(value & pos 1 (some file) None & info [] ~docv:"STREAM"
           ~doc:"Stream file to send (defaults to stdin).")
  in
  let run port file log_level =
    Telemetry.Log.set_level log_level;
    ignore_sigpipe ();
    let conn = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect conn (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
     with Unix.Unix_error (e, _, _) ->
       Telemetry.Log.error ~src:"feed"
         (Printf.sprintf "cannot connect to 127.0.0.1:%d" port)
         ~fields:[ ("error", Telemetry.Log.Str (Unix.error_message e)) ];
       exit 1);
    Telemetry.Log.debug ~src:"feed"
      (Printf.sprintf "connected to 127.0.0.1:%d" port);
    let ic = Unix.in_channel_of_descr conn in
    let oc = Unix.out_channel_of_descr conn in
    (* The server may emit at any tick while we are still sending;
       draining it concurrently keeps both socket buffers from filling
       up and deadlocking the pair. *)
    let pump =
      Thread.create
        (fun () ->
          try
            while true do
              print_string (input_line ic);
              print_newline ()
            done
          with End_of_file | Sys_error _ -> ())
        ()
    in
    let src = match file with None -> stdin | Some f -> open_in f in
    (try
       (try
          while true do
            output_string oc (input_line src);
            output_char oc '\n'
          done
        with End_of_file -> ());
       flush oc
     with Sys_error _ -> ());
    if src != stdin then close_in_noerr src;
    (* Half-close: the server sees our EOF and can finish the session
       while we keep reading its emissions. *)
    (try Unix.shutdown conn Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    Thread.join pump;
    (try Unix.close conn with Unix.Unix_error _ -> ())
  in
  Cmd.v
    (Cmd.info "feed"
       ~doc:"Connect to a local $(b,serve --listen) session, send a stream file \
             (or stdin) line by line, half-close, and print everything the \
             server emits until it hangs up.")
    Term.(const run $ port_arg $ file_arg $ log_level_arg)

(* --- jsonlint --- *)

(* Validate a JSON document with the in-repo parser. Exists so CI can
   check the admin endpoint's JSON responses (and any other telemetry
   artefact) without depending on an external jq/python. *)
let jsonlint_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"JSON file to validate ($(b,-) reads stdin).")
  in
  let run file =
    let source =
      if file = "-" then In_channel.input_all stdin else read_file file
    in
    match Telemetry.Json.of_string source with
    | Ok _ -> ()
    | Error e ->
      Printf.eprintf "%s: invalid JSON: %s\n" file e;
      exit 1
  in
  Cmd.v
    (Cmd.info "jsonlint"
       ~doc:"Check that a file parses as JSON; exit 1 with a diagnostic if not.")
    Term.(const run $ file_arg)

(* --- explain --- *)

let explain_cmd =
  let gold_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"GOLD_ED") in
  let gen_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"GENERATED_ED") in
  let stream_arg = Arg.(required & pos 2 (some file) None & info [] ~docv:"STREAM") in
  let kb_arg =
    Arg.(value & opt (some file) None & info [ "knowledge"; "k" ] ~docv:"FILE"
           ~doc:"Background knowledge facts.")
  in
  let window_arg =
    Arg.(value & opt (some int) None & info [ "window"; "w" ] ~docv:"SECONDS"
           ~doc:"Sliding window size; omit for a single query over the whole stream.")
  in
  let step_arg =
    Arg.(value & opt (some int) None & info [ "step"; "s" ] ~docv:"SECONDS"
           ~doc:"Query step (defaults to the window size).")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for each of the two recognition runs.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the attribution report as JSON.")
  in
  let proof_arg =
    Arg.(value & opt (some string) None & info [ "proof" ] ~docv:"FILE"
           ~doc:"Write the generated description's derivation records (proof \
                 trees) as structured JSON.")
  in
  let proof_chrome_arg =
    Arg.(value & opt (some string) None & info [ "proof-chrome" ] ~docv:"FILE"
           ~doc:"Write the generated description's derivation records as a \
                 Chrome trace_event file (one track per activity; load in \
                 chrome://tracing or Perfetto).")
  in
  let sample_arg =
    Arg.(
      value & opt string "full"
      & info [ "sample" ] ~docv:"MODE"
          ~doc:"Provenance recording mode for the two recognition runs: \
                $(b,full) (every window), $(b,divergent) (only windows near \
                diverging spans, located by a recorder-off probe pass) or \
                $(b,sample:N[:SEED]) (a deterministic 1-in-N window subset).")
  in
  let run gold_file gen_file stream_file kb_file window step jobs sample json proof
      proof_chrome trace metrics metrics_format =
    telemetry_setup ~trace ~metrics ~metrics_format;
    let sample =
      match String.split_on_char ':' sample with
      | [ "full" ] -> `Full
      | [ "divergent" ] -> `Divergent
      | [ "sample"; n ] when Option.is_some (int_of_string_opt n) ->
        `One_in (int_of_string n, 0)
      | [ "sample"; n; seed ]
        when Option.is_some (int_of_string_opt n) && Option.is_some (int_of_string_opt seed)
        ->
        `One_in (int_of_string n, int_of_string seed)
      | _ ->
        Printf.eprintf "invalid --sample mode (expected full, divergent or sample:N[:SEED])\n";
        exit 2
    in
    let parse_ed file =
      match Rtec.Parser.parse_clauses_result (read_file file) with
      | Error e ->
        Printf.eprintf "parse error in %s: %s\n" file e;
        exit 1
      | Ok rules ->
        [
          {
            Rtec.Ast.name = Filename.remove_extension (Filename.basename file);
            rules = Rtec.Ast.with_ids ~name:(Filename.remove_extension (Filename.basename file)) rules;
          };
        ]
    in
    let gold = parse_ed gold_file and generated = parse_ed gen_file in
    let knowledge =
      match kb_file with
      | None -> Rtec.Knowledge.empty
      | Some f -> Rtec.Knowledge.of_source (read_file f)
    in
    let stream = Rtec.Io.stream_of_string (read_file stream_file) in
    let config = Runtime.config ?window ?step ~jobs () in
    (match (proof, proof_chrome) with
    | None, None -> ()
    | _ -> (
      match Provenance.recognise ~config ~event_description:generated ~knowledge ~stream () with
      | Error e ->
        Printf.eprintf "recognition failed: %s\n" e;
        exit 1
      | Ok run ->
        (* Force the lazy proof reconstruction now: the Diff runs below
           reset the recorder buffer these records decode from. *)
        let events = Lazy.force run.Provenance.events in
        Option.iter
          (fun f -> Telemetry.Json.write_file ~indent:true f (Provenance.Export.proof_to_json events))
          proof;
        Option.iter
          (fun f -> Telemetry.Json.write_file f (Provenance.Export.proof_to_chrome events))
          proof_chrome));
    match Provenance.Diff.diff ~config ~sample ~gold ~generated ~knowledge ~stream () with
    | Error e ->
      Printf.eprintf "explain failed: %s\n" e;
      exit 1
    | Ok report ->
      telemetry_write ~trace ~metrics ~metrics_format;
      Option.iter
        (fun f -> Telemetry.Json.write_file ~indent:true f (Provenance.Diff.report_to_json report))
        json;
      Format.printf "%a@?" Provenance.Diff.pp_report report;
      if report.Provenance.Diff.total_fp + report.Provenance.Diff.total_fn > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Recognise a gold and a generated event description over the same \
             stream and attribute every diverging (FP/FN) time-point to the \
             responsible rule and body condition. Exits 3 when the \
             descriptions diverge."
       ~man:
         [
           `S Manpage.s_examples;
           `P "rtec explain gold.ed generated.ed dataset.stream -k dataset.kb \\";
           `P "  --json explain.json --proof-chrome proof.trace";
         ])
    Term.(
      const run $ gold_arg $ gen_arg $ stream_arg $ kb_arg $ window_arg $ step_arg
      $ jobs_arg $ sample_arg $ json_arg $ proof_arg $ proof_chrome_arg $ trace_arg
      $ metrics_arg $ metrics_format_arg)

(* --- dataset --- *)

let dataset_cmd =
  let out_arg =
    Arg.(value & opt string "dataset" & info [ "output"; "o" ] ~docv:"PREFIX"
           ~doc:"Output prefix; writes PREFIX.stream and PREFIX.kb.")
  in
  let seed_arg = Arg.(value & opt int 20250325 & info [ "seed" ] ~docv:"N") in
  let replicas_arg = Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"N") in
  let run prefix seed replicas =
    let config = { Maritime.Dataset.seed; replicas; nominal = replicas + 1 } in
    let data = Maritime.Dataset.generate ~config () in
    let oc = open_out (prefix ^ ".stream") in
    Rtec.Io.write_stream oc data.stream;
    close_out oc;
    let oc = open_out (prefix ^ ".kb") in
    Rtec.Io.write_knowledge oc data.knowledge;
    close_out oc;
    let oc = open_out (prefix ^ ".ed") in
    output_string oc (Rtec.Printer.event_description_to_string Maritime.Gold.event_description);
    output_string oc "\n";
    close_out oc;
    Printf.printf "wrote %s.stream (%d events), %s.kb (%d facts), %s.ed\n" prefix
      (Rtec.Stream.size data.stream) prefix
      (Rtec.Knowledge.size data.knowledge)
      prefix
  in
  Cmd.v
    (Cmd.info "dataset" ~doc:"Generate the synthetic maritime dataset as files.")
    Term.(const run $ out_arg $ seed_arg $ replicas_arg)

let () =
  let doc = "Run-Time Event Calculus command-line interface." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "rtec" ~doc)
          [
            check_cmd;
            recognise_cmd;
            serve_cmd;
            feed_cmd;
            jsonlint_cmd;
            explain_cmd;
            dataset_cmd;
          ]))
